//! Ablation benches beyond the paper's figures: per-helper cost, SRH size
//! sweep and map-type lookup cost. These quantify the design choices
//! DESIGN.md calls out (indirect SRH writes, helper-mediated packet
//! mutation, map-backed state).

use criterion::{criterion_group, criterion_main, Criterion};
use ebpf_vm::maps::{ArrayMap, LpmTrieMap, Map, UpdateFlags};
use ebpf_vm::BpfHashMap;
use netpkt::ipv6::proto;
use netpkt::packet::build_srv6_udp_packet;
use netpkt::srh::SegmentRoutingHeader;
use seg6_core::{Nexthop, Seg6Datapath, Seg6LocalAction, Skb};
use std::net::Ipv6Addr;
use std::time::Duration;

fn srv6_packet_with_segments(n: usize) -> Vec<u8> {
    let path: Vec<Ipv6Addr> = (0..n).map(|i| format!("fc00:1::e{i:x}").parse().unwrap()).collect();
    let srh = SegmentRoutingHeader::from_path(proto::UDP, &path);
    build_srv6_udp_packet("2001:db8::1".parse().unwrap(), &srh, 1024, 5001, &[0u8; 64], 64).data().to_vec()
}

fn bench_srh_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_srh_segments");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(150));
    group.measurement_time(Duration::from_millis(400));
    for segments in [2usize, 4, 8] {
        let mut dp = Seg6Datapath::new("fc00:1::1".parse().unwrap());
        dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via("fe80::2".parse().unwrap(), 2)]);
        dp.add_local_sid("fc00:1::e0".parse().unwrap(), Seg6LocalAction::End);
        let template = srv6_packet_with_segments(segments);
        group.bench_function(format!("end_static/{segments}_segments"), |b| {
            b.iter(|| {
                let mut skb = Skb::new(netpkt::PacketBuf::from_slice(&template));
                dp.process(&mut skb, 0)
            })
        });
    }
    group.finish();
}

fn bench_map_lookup_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_map_lookup");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(150));
    group.measurement_time(Duration::from_millis(400));

    let array = ArrayMap::new(16, 256);
    let key = 17u32.to_ne_bytes();
    group.bench_function("array", |b| b.iter(|| array.lookup(&key)));

    let hash = BpfHashMap::new(16, 16, 1024);
    for i in 0..256u64 {
        let mut k = vec![0u8; 16];
        k[..8].copy_from_slice(&i.to_le_bytes());
        hash.update(&k, &[0u8; 16], UpdateFlags::Any).unwrap();
    }
    let mut hkey = vec![0u8; 16];
    hkey[..8].copy_from_slice(&17u64.to_le_bytes());
    group.bench_function("hash", |b| b.iter(|| hash.lookup(&hkey)));

    let lpm = LpmTrieMap::new(20, 16, 256);
    for i in 0..64u8 {
        let mut k = 64u32.to_ne_bytes().to_vec();
        k.extend_from_slice(&[0x20, 0x01, 0x0d, 0xb8, i, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        lpm.update(&k, &[0u8; 16], UpdateFlags::Any).unwrap();
    }
    let mut lkey = 128u32.to_ne_bytes().to_vec();
    lkey.extend_from_slice(&[0x20, 0x01, 0x0d, 0xb8, 17, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
    group.bench_function("lpm_trie", |b| b.iter(|| lpm.lookup(&lkey)));
    group.finish();
}

criterion_group!(benches, bench_srh_size_sweep, bench_map_lookup_cost);
criterion_main!(benches);
