//! Criterion bench regenerating Figure 2: per-packet forwarding cost of the
//! simple endpoint functions (static vs BPF, JIT vs interpreter).
//!
//! Run with `cargo bench -p bench --bench fig2_endpoint_functions`. The
//! normalised bar values the paper plots are printed by
//! `cargo run --release -p bench --bin figures -- fig2`.

use bench::fig2::{build_scenario, Fig2Variant};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_endpoint_functions");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for variant in Fig2Variant::all() {
        let mut scenario = build_scenario(variant);
        group.bench_function(variant.label(), |b| b.iter(|| scenario.forward_one()));
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
