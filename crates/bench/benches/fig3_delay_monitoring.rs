//! Criterion bench regenerating Figure 3: forwarding cost of the passive
//! delay-monitoring programs at probing ratios 1:10000 and 1:100.

use bench::fig3::{build_scenario, Fig3Variant};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_delay_monitoring");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for variant in Fig3Variant::all() {
        let mut scenario = build_scenario(variant);
        group.bench_function(variant.label(), |b| b.iter(|| scenario.forward_one()));
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
