//! Quick-mode regeneration of Figure 4 (aggregated UDP goodput on the CPE
//! as a function of the payload size), run as part of `cargo bench`.
//!
//! This is a simulation experiment, not a Criterion microbenchmark, so it
//! uses a plain `main` (harness = false) and prints the series. The full
//! sweep with longer simulated durations is available through
//! `cargo run --release -p bench --bin figures -- fig4`.

use bench::hybrid::{run_fig4, Fig4Mode};

fn main() {
    let payloads = [200usize, 600, 1000, 1400];
    let duration_ns = 30_000_000; // 30 ms of simulated traffic per point
    println!("# Figure 4 (quick mode): aggregated UDP goodput through the CPE");
    println!("# payload_bytes  mode                goodput_mbps");
    let points = run_fig4(&payloads, duration_ns);
    for mode in Fig4Mode::all() {
        for point in points.iter().filter(|p| p.mode == mode) {
            println!("{:14}  {:18}  {:10.1}", point.payload, point.mode.label(), point.goodput_mbps);
        }
    }
}
