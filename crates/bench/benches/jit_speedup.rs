//! Criterion bench for the §3.2 JIT claim: disabling the JIT divides the
//! Add-TLV throughput by ≈ 1.8. The bench measures the pure program
//! execution cost (pre-decoded JIT vs interpreter) as well as the full
//! datapath cost with each engine.

use bench::fig2::{build_scenario, Fig2Variant};
use criterion::{criterion_group, criterion_main, Criterion};
use ebpf_vm::helpers::HelperRegistry;
use ebpf_vm::interp::InterpreterImage;
use ebpf_vm::program::load;
use ebpf_vm::vm::{NullEnv, RunContext, PKT_BASE};
use ebpf_vm::{interp, jit, Insn};
use std::collections::HashMap;
use std::time::Duration;

/// A compute-heavy straight-line program (no helpers) to isolate the
/// engine cost.
fn arithmetic_program(len: usize) -> Vec<Insn> {
    let mut insns = vec![Insn::mov64_imm(0, 1), Insn::mov64_imm(1, 3)];
    for i in 0..len {
        let op = match i % 4 {
            0 => ebpf_vm::insn::alu::ADD,
            1 => ebpf_vm::insn::alu::MUL,
            2 => ebpf_vm::insn::alu::XOR,
            _ => ebpf_vm::insn::alu::RSH,
        };
        let imm = if op == ebpf_vm::insn::alu::RSH { 1 } else { (i % 13 + 1) as i32 };
        insns.push(Insn::alu64_imm(op, 0, imm));
    }
    insns.push(Insn::exit());
    insns
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("jit_vs_interpreter");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));

    // Pure VM execution of a 200-instruction program.
    let helpers = HelperRegistry::with_base_helpers();
    let prog = ebpf_vm::Program::new("arith", ebpf_vm::ProgramType::SocketFilter, arithmetic_program(200));
    let loaded = load(prog, &HashMap::new(), &helpers).unwrap();
    let compiled = jit::compile(&loaded).unwrap();
    let image = InterpreterImage::new(&loaded);
    let mut ctx = vec![0u8; 64];
    ctx[0..8].copy_from_slice(&PKT_BASE.to_le_bytes());
    let mut packet = vec![0u8; 128];
    let mut env = NullEnv;
    group.bench_function("vm/jit", |b| {
        b.iter(|| {
            let mut rc = RunContext { ctx: &mut ctx, packet: &mut packet, env: &mut env };
            jit::run(&compiled, &loaded, &helpers, &mut rc).unwrap()
        })
    });
    group.bench_function("vm/interpreter", |b| {
        b.iter(|| {
            let mut rc = RunContext { ctx: &mut ctx, packet: &mut packet, env: &mut env };
            interp::run(&image, &loaded, &helpers, &mut rc).unwrap()
        })
    });

    // Full datapath with the Add TLV program, JIT on vs off (the paper's
    // ÷1.8 comparison).
    let mut with_jit = build_scenario(Fig2Variant::AddTlvBpf);
    group.bench_function("datapath/add_tlv_jit", |b| b.iter(|| with_jit.forward_one()));
    let mut no_jit = build_scenario(Fig2Variant::AddTlvBpfNoJit);
    group.bench_function("datapath/add_tlv_no_jit", |b| b.iter(|| no_jit.forward_one()));
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
