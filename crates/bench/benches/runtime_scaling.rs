//! Criterion bench for the multi-queue runtime: how much batching buys on
//! one core, and how aggregate packets/sec scale as worker shards are
//! added, for the `End`, `Tag++` and WRR hybrid-access programs.
//!
//! The interesting comparison (the one the paper's deployment story needs)
//! is `wrr/single_packet` — the one-at-a-time path the seed used — against
//! `wrr/batched_Nworkers`: RSS-steered, batched, with per-worker program
//! instances and private WRR map state.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ebpf_vm::MapHandle;
use netpkt::ipv6::proto;
use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
use netpkt::srh::SegmentRoutingHeader;
use netpkt::{Ipv6Prefix, PacketBuf};
use seg6_core::{Fib, LwtBpfAttachment, LwtHook, Nexthop, Seg6Datapath, Seg6LocalAction, Skb};
use seg6_runtime::{thread_spawn_count, Ingress, PoolConfig, WorkerPool};
use seg6_runtime::{Runtime, RuntimeConfig};
use srv6_nf::{end_program, tag_increment_program, wrr_encap_program, wrr_maps};
use std::collections::HashMap;
use std::net::Ipv6Addr;
use std::time::Duration;

/// Packets per measured iteration (and the element count for throughput).
const POOL: usize = 1024;

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

fn endpoint_sid() -> Ipv6Addr {
    addr("fc00:1::e")
}

/// A pool of SRv6 packets aimed at the endpoint SID, spread over many
/// flows so RSS steering distributes them.
fn srv6_pool() -> Vec<PacketBuf> {
    (0..POOL)
        .map(|i| {
            let srh = SegmentRoutingHeader::from_path(proto::UDP, &[endpoint_sid(), addr("fc00:2::d2")]);
            build_srv6_udp_packet(
                addr(&format!("2001:db8::{:x}", i + 1)),
                &srh,
                (1024 + i % 512) as u16,
                5001,
                &[0u8; 64],
                64,
            )
        })
        .collect()
}

/// A pool of plain IPv6/UDP packets towards the WRR-scheduled prefix.
fn wrr_pool() -> Vec<PacketBuf> {
    (0..POOL)
        .map(|i| {
            build_ipv6_udp_packet(
                addr(&format!("2001:db8:1::{:x}", i + 1)),
                addr(&format!("2001:db8:2::{:x}", i % 64 + 1)),
                (1024 + i % 512) as u16,
                5001,
                &[0u8; 64],
                64,
            )
        })
        .collect()
}

/// A datapath running `action_prog` as an End.BPF SID, pinned to `cpu`.
fn endpoint_datapath(prog: fn() -> ebpf_vm::Program, cpu: u32) -> Seg6Datapath {
    let mut dp = Seg6Datapath::new(addr("fc00:1::1")).on_cpu(cpu);
    dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::2"), 2)]);
    let loaded = ebpf_vm::program::load(prog(), &HashMap::new(), &dp.helpers).expect("program");
    dp.add_local_sid(Ipv6Prefix::host(endpoint_sid()), Seg6LocalAction::EndBpf { prog: loaded });
    dp
}

/// A datapath running the WRR hybrid-access scheduler on the downstream
/// prefix, with its own private WRR state (per-worker, as each CPU of a
/// real deployment keeps its own deficit counters).
fn wrr_datapath_with_prog(cpu: u32) -> (Seg6Datapath, std::sync::Arc<ebpf_vm::LoadedProgram>) {
    let (sid0, sid1) = (addr("fc00:a::1"), addr("fc00:b::1"));
    let mut dp = Seg6Datapath::new(addr("fc00::aa")).on_cpu(cpu);
    dp.add_route(Ipv6Prefix::host(sid0), vec![Nexthop::direct(2)]);
    dp.add_route(Ipv6Prefix::host(sid1), vec![Nexthop::direct(3)]);
    dp.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::direct(2)]);
    let (state, config) = wrr_maps(5, 3, sid0, sid1);
    let mut maps: HashMap<u32, MapHandle> = HashMap::new();
    maps.insert(2, state);
    maps.insert(3, config);
    let prog = ebpf_vm::program::load(wrr_encap_program(2, 3), &maps, &dp.helpers).expect("WRR program");
    dp.attach_lwt_bpf(
        "2001:db8:2::/48".parse().unwrap(),
        LwtBpfAttachment { hook: LwtHook::Xmit, prog: prog.clone() },
    );
    (dp, prog)
}

fn wrr_datapath(cpu: u32) -> Seg6Datapath {
    wrr_datapath_with_prog(cpu).0
}

/// Single-thread, single-packet baseline: the seed's execution model.
fn run_per_packet(dp: &mut Seg6Datapath, pool: &[PacketBuf]) -> u64 {
    let mut forwarded = 0;
    for packet in pool {
        let mut skb = Skb::new(packet.clone());
        if dp.process(&mut skb, 0).is_forward() {
            forwarded += 1;
        }
    }
    forwarded
}

/// Single-thread batched path (same datapath, batch API).
fn run_batched(dp: &mut Seg6Datapath, pool: &[PacketBuf], batch: usize) -> u64 {
    let mut forwarded = 0;
    for chunk in pool.chunks(batch) {
        let mut skbs: Vec<Skb> = chunk.iter().map(|p| Skb::new(p.clone())).collect();
        forwarded += dp.process_batch(&mut skbs, 0).iter().filter(|v| v.is_forward()).count() as u64;
    }
    forwarded
}

fn bench_batch_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_batch");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(POOL as u64));

    let pool = srv6_pool();
    for (name, prog) in [("end_bpf", end_program as fn() -> _), ("tag_inc", tag_increment_program)] {
        let mut dp = endpoint_datapath(prog, 0);
        group.bench_function(format!("{name}/per_packet"), |b| b.iter(|| run_per_packet(&mut dp, &pool)));
        let mut dp = endpoint_datapath(prog, 0);
        group.bench_function(format!("{name}/batched32"), |b| b.iter(|| run_batched(&mut dp, &pool, 32)));
    }
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_scaling");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    group.throughput(Throughput::Elements(POOL as u64));

    let pool = wrr_pool();
    println!(
        "host parallelism: {} core(s) — multi-worker rows only scale past one worker on multicore hosts",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // The seed's runtime model: one thread, one packet at a time, and the
    // JIT image re-derived on every invocation (this PR moved compilation
    // to load time; the extra `jit::compile` reproduces the removed cost).
    let (mut dp, prog) = wrr_datapath_with_prog(0);
    group.bench_function("wrr/single_packet_seed", |b| {
        b.iter(|| {
            let mut forwarded = 0u64;
            for packet in &pool {
                criterion::black_box(ebpf_vm::jit::compile(&prog).expect("compiles"));
                let mut skb = Skb::new(packet.clone());
                if dp.process(&mut skb, 0).is_forward() {
                    forwarded += 1;
                }
            }
            forwarded
        })
    });

    // The current single-packet path (load-time compilation, no batching).
    let mut dp = wrr_datapath(0);
    group.bench_function("wrr/single_packet", |b| b.iter(|| run_per_packet(&mut dp, &pool)));

    // The runtime: RSS steering, batches of 32, N worker threads.
    for workers in [1u32, 2, 4, 8] {
        let config = RuntimeConfig { workers, batch_size: 32, ..Default::default() };
        let mut runtime = Runtime::new(config, wrr_datapath);
        group.bench_function(format!("wrr/batched_{workers}workers"), |b| {
            b.iter(|| {
                runtime.enqueue_all(pool.iter().cloned());
                runtime.run_threaded(0).forwarded
            })
        });
    }

    // End.BPF through the runtime, for the endpoint-function flavour.
    for workers in [1u32, 4] {
        let config = RuntimeConfig { workers, batch_size: 32, ..Default::default() };
        let mut runtime = Runtime::new(config, |cpu| endpoint_datapath(end_program, cpu));
        let pool = srv6_pool();
        group.bench_function(format!("end_bpf/batched_{workers}workers"), |b| {
            b.iter(|| {
                runtime.enqueue_all(pool.iter().cloned());
                runtime.run_threaded(0).forwarded
            })
        });
    }
    group.finish();
}

/// The headline rows of this PR: the same WRR workload through the
/// spawn-per-run mode (`Runtime::run_threaded`, one `thread::spawn` per
/// shard per iteration) and through the **persistent** worker pool
/// (threads spawned once at construction, packets fed over the bounded
/// channels). The spawn counter proves the pool's steady state performs
/// zero thread spawns.
fn bench_worker_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("worker_pool");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    group.throughput(Throughput::Elements(POOL as u64));

    let pool = wrr_pool();
    for workers in [1u32, 2, 4, 8] {
        // Spawn-per-run: every iteration pays `workers` thread spawns.
        let config = RuntimeConfig { workers, batch_size: 32, ..Default::default() };
        let mut rt = Runtime::new(config, wrr_datapath);
        group.bench_function(format!("wrr/spawn_per_run_{workers}w"), |b| {
            b.iter(|| {
                rt.enqueue_all(pool.iter().cloned());
                rt.run_threaded(0).forwarded
            })
        });

        // Persistent pool: the threads exist before the first iteration
        // and are still the same ones after the last.
        let pool_config = PoolConfig { workers, batch_size: 32, queue_depth: 2 * POOL, ..Default::default() };
        let mut wp = WorkerPool::new(pool_config, wrr_datapath);
        let spawns_at_steady_state = thread_spawn_count();
        group.bench_function(format!("wrr/persistent_pool_{workers}w"), |b| {
            b.iter(|| {
                wp.enqueue_all(pool.iter().cloned());
                wp.flush().run.forwarded
            })
        });
        assert_eq!(
            thread_spawn_count(),
            spawns_at_steady_state,
            "the persistent pool must not spawn threads after construction"
        );
        assert_eq!(wp.rejected(), 0, "the bench never overflows a shard queue");
        wp.shutdown();
    }
    group.finish();
    println!(
        "thread spawns this process: {} (spawn-per-run rows keep paying; pool rows paid once)",
        thread_spawn_count()
    );
}

/// The PR-4 headline rows: descriptor handoff cost, transport only. The
/// "before" is the mpsc shape the pool used to ingest with — one
/// mutex-guarded, node-allocating `send` per descriptor into per-shard
/// channels. The "after" is the lock-free SPSC ring with burst publish:
/// descriptors staged per shard and released with one atomic store per
/// burst. Rows sweep 1/2/4/8 shards and burst sizes 1/32/256; the
/// acceptance criterion is ring-burst ≥ 32 beating mpsc per-packet send
/// at every shard count. Consumers are real threads (spawned per row,
/// outside the measured iteration) so both transports pay their genuine
/// cross-thread costs.
fn bench_ring_ingest(c: &mut Criterion) {
    use seg6_runtime::ring::spsc_ring;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{mpsc, Arc};

    let mut group = c.benchmark_group("ring_ingest");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(POOL as u64));

    for shards in [1usize, 2, 4, 8] {
        // --- mpsc baseline: one sync-channel send per descriptor ---
        {
            let processed = Arc::new(AtomicU64::new(0));
            let mut senders = Vec::with_capacity(shards);
            let mut consumers = Vec::with_capacity(shards);
            for _ in 0..shards {
                let (tx, rx) = mpsc::sync_channel::<u64>(2 * POOL);
                let processed = Arc::clone(&processed);
                consumers.push(std::thread::spawn(move || {
                    // Blocking recv — the cheapest consumption mpsc offers.
                    while rx.recv().is_ok() {
                        processed.fetch_add(1, Ordering::Relaxed);
                    }
                }));
                senders.push(tx);
            }
            group.bench_function(format!("mpsc_send_{shards}w"), |b| {
                b.iter(|| {
                    let target = processed.load(Ordering::Relaxed) + POOL as u64;
                    for i in 0..POOL as u64 {
                        senders[i as usize % shards].send(i).expect("consumer alive");
                    }
                    while processed.load(Ordering::Relaxed) < target {
                        std::thread::yield_now();
                    }
                })
            });
            drop(senders);
            for consumer in consumers {
                consumer.join().expect("mpsc consumer");
            }
        }

        // --- SPSC ring: staged descriptors, one publish per burst ---
        for burst in [1usize, 32, 256] {
            let processed = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let mut producers = Vec::with_capacity(shards);
            let mut consumers = Vec::with_capacity(shards);
            for _ in 0..shards {
                let (tx, mut rx) = spsc_ring::<u64>(2 * POOL);
                let processed = Arc::clone(&processed);
                let stop = Arc::clone(&stop);
                consumers.push(std::thread::spawn(move || {
                    let mut out: Vec<u64> = Vec::with_capacity(256);
                    let mut idle = 0u32;
                    loop {
                        out.clear();
                        let got = rx.dequeue_burst(&mut out, 256);
                        if got > 0 {
                            idle = 0;
                            processed.fetch_add(got as u64, Ordering::Relaxed);
                        } else if stop.load(Ordering::Relaxed) {
                            break;
                        } else {
                            idle += 1;
                            if idle.is_multiple_of(64) {
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    }
                }));
                producers.push(tx);
            }
            let mut staging: Vec<Vec<u64>> = vec![Vec::with_capacity(burst); shards];
            group.bench_function(format!("ring_burst_{shards}w_b{burst}"), |b| {
                b.iter(|| {
                    let target = processed.load(Ordering::Relaxed) + POOL as u64;
                    for i in 0..POOL as u64 {
                        let shard = i as usize % shards;
                        staging[shard].push(i);
                        if staging[shard].len() >= burst {
                            while !staging[shard].is_empty() {
                                if producers[shard].enqueue_burst(&mut staging[shard]) == 0 {
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                    for (shard, staged) in staging.iter_mut().enumerate() {
                        while !staged.is_empty() {
                            if producers[shard].enqueue_burst(staged) == 0 {
                                std::thread::yield_now();
                            }
                        }
                    }
                    while processed.load(Ordering::Relaxed) < target {
                        std::thread::yield_now();
                    }
                })
            });
            stop.store(true, Ordering::Relaxed);
            for consumer in consumers {
                consumer.join().expect("ring consumer");
            }
        }
    }
    group.finish();
}

/// The PR-5 headline rows: one **shared** pool serving T tenants against
/// T single-tenant pools ("pool-per-node" — what simnet used to build),
/// at 1/2/4 tenants × 1/2/4 shards. The workload is fixed (1024 packets
/// split evenly across the tenants, enqueue + flush), so the comparison
/// isolates the cost of tenancy itself: descriptor stamping, tenant-run
/// splitting and per-tenant counters on the shared side, versus T times
/// the thread/ring/flush-barrier footprint on the pool-per-node side.
fn bench_tenant_scaling(c: &mut Criterion) {
    use seg6_runtime::{TenantId, TenantQos, TenantSpec};

    let mut group = c.benchmark_group("tenant_scaling");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(POOL as u64));

    /// A minimal forwarding datapath; each tenant routes out of its own
    /// interface so tenancy is observable in the verdicts.
    fn tenant_datapath(oif: u32, cpu: u32) -> Seg6Datapath {
        let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
        dp.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(oif)]);
        dp
    }

    let pool_packets = wrr_pool();
    for workers in [1u32, 2, 4] {
        for tenants in [1usize, 2, 4] {
            let per_tenant = POOL / tenants;
            let config = PoolConfig { workers, batch_size: 32, queue_depth: 2 * POOL, ..Default::default() };

            // Shared pool: T tenants on one set of shards.
            let mut shared = WorkerPool::new(config.clone(), |cpu| tenant_datapath(1, cpu));
            let mut ids = vec![TenantId::DEFAULT];
            for t in 1..tenants {
                ids.push(shared.add_tenant(TenantSpec::build_with(|cpu| tenant_datapath(1 + t as u32, cpu))));
            }
            group.bench_function(format!("shared_{tenants}t_{workers}w"), |b| {
                b.iter(|| {
                    let mut forwarded = 0u64;
                    for (t, id) in ids.iter().enumerate() {
                        let chunk = &pool_packets[t * per_tenant..(t + 1) * per_tenant];
                        shared.tenant(*id).enqueue_all(chunk.iter().cloned());
                    }
                    forwarded += shared.flush().run.forwarded;
                    forwarded
                })
            });
            assert_eq!(shared.rejected(), 0, "the bench never overflows a shard queue");
            shared.shutdown();

            // Pool-per-node: T pools, each with its own shard threads.
            let mut pools: Vec<WorkerPool> = (0..tenants)
                .map(|t| WorkerPool::new(config.clone(), |cpu| tenant_datapath(1 + t as u32, cpu)))
                .collect();
            group.bench_function(format!("per_node_{tenants}t_{workers}w"), |b| {
                b.iter(|| {
                    let mut forwarded = 0u64;
                    for (t, pool) in pools.iter_mut().enumerate() {
                        let chunk = &pool_packets[t * per_tenant..(t + 1) * per_tenant];
                        pool.enqueue_all(chunk.iter().cloned());
                    }
                    for pool in pools.iter_mut() {
                        forwarded += pool.flush().run.forwarded;
                    }
                    forwarded
                })
            });
            for pool in pools {
                assert_eq!(pool.rejected(), 0, "the bench never overflows a shard queue");
                pool.shutdown();
            }
        }
    }

    // Noisy-neighbor rows (PR-7): one flooding tenant (3/4 of the pool's
    // packets) against one quiet tenant (1/4) on a single shard.
    // `noisy_fifo_1w` runs pre-QoS defaults (weight 1, no quota, arrival
    // order = the FIFO baseline); `noisy_qos_1w` caps the flooder at half
    // the ring and gives the quiet tenant a 4× DRR weight — the same
    // packet count flows through both rows, so the delta is the price of
    // quota accounting and deficit-round-robin selection under contention.
    let flood = POOL * 3 / 4;
    for (row, flooder_spec, quiet_weight) in [
        ("noisy_fifo_1w", TenantQos::default(), 1u32),
        ("noisy_qos_1w", TenantQos { weight: 1, ring_quota: Some(0.5), cost_budget: None }, 4),
    ] {
        let config = PoolConfig { workers: 1, batch_size: 32, queue_depth: 2 * POOL, ..Default::default() };
        let mut pool = WorkerPool::new(config, |cpu| tenant_datapath(1, cpu));
        pool.update_tenant_qos(TenantId::DEFAULT, flooder_spec);
        let quiet =
            pool.add_tenant(TenantSpec::build_with(|cpu| tenant_datapath(2, cpu)).weight(quiet_weight));
        group.bench_function(row, |b| {
            b.iter(|| {
                pool.enqueue_all(pool_packets[..flood].iter().cloned());
                pool.tenant(quiet).enqueue_all(pool_packets[flood..].iter().cloned());
                pool.flush().run.forwarded
            })
        });
        // The rings are sized so neither quota nor backpressure sheds in
        // this workload — both rows move the full packet pool.
        assert_eq!(pool.rejected(), 0, "the noisy rows never shed");
        assert_eq!(pool.rejected_over_budget(), 0);
        pool.shutdown();
    }
    group.finish();
}

/// FIB lookup scaling: the LPM trie against the linear scan it replaced,
/// at 10 / 1k / 100k routes. The trie rows must stay flat as the route
/// count grows (O(prefix bits)); the linear rows degrade with O(routes) —
/// the ≥10× advantage at 100k routes is this PR's acceptance criterion.
fn bench_fib_scale(c: &mut Criterion) {
    /// Deterministic xorshift64* so every run builds the same tables.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    const LOOKUPS: usize = 256;

    /// A linear-scan route table: the seed's `Fib` representation.
    type LinearFib = Vec<(Ipv6Prefix, Vec<Nexthop>)>;

    fn random_prefix(rng: &mut Rng) -> Ipv6Prefix {
        let len = 16 + (rng.next() % 97) as u8; // /16 ..= /112
        let addr = std::net::Ipv6Addr::from(((rng.next() as u128) << 64 | rng.next() as u128).to_be_bytes());
        Ipv6Prefix::new(addr, len).expect("valid length")
    }

    /// Builds the same route set into a trie and a linear table, plus a
    /// lookup mix of guaranteed hits (host-bit noise under installed
    /// prefixes) and default-route traffic.
    fn build(routes: usize) -> (Fib, LinearFib, Vec<std::net::Ipv6Addr>) {
        let mut rng = Rng(0xf1b_5ca1e ^ routes as u64);
        let mut trie = Fib::new();
        let mut linear: LinearFib = Vec::with_capacity(routes + 1);
        let insert = |prefix: Ipv6Prefix, nexthops: Vec<Nexthop>, trie: &mut Fib, linear: &mut LinearFib| {
            trie.insert(prefix, nexthops.clone());
            match linear.iter_mut().find(|(p, _)| *p == prefix) {
                Some(slot) => slot.1 = nexthops,
                None => linear.push((prefix, nexthops)),
            }
        };
        insert("::/0".parse().unwrap(), vec![Nexthop::direct(1)], &mut trie, &mut linear);
        let mut prefixes = Vec::with_capacity(routes);
        for i in 0..routes {
            let prefix = random_prefix(&mut rng);
            let oif = 1 + (i % 31) as u32;
            insert(prefix, vec![Nexthop::direct(oif)], &mut trie, &mut linear);
            prefixes.push(prefix);
        }
        let dsts = (0..LOOKUPS)
            .map(|i| {
                if i % 4 == 0 {
                    std::net::Ipv6Addr::from((rng.next() as u128).to_be_bytes())
                } else {
                    let base = prefixes[(rng.next() % prefixes.len() as u64) as usize].addr();
                    std::net::Ipv6Addr::from(
                        (u128::from_be_bytes(base.octets()) | rng.next() as u128).to_be_bytes(),
                    )
                }
            })
            .collect();
        (trie, linear, dsts)
    }

    /// The seed's `Fib::lookup`, verbatim: linear scan, longest prefix,
    /// weighted ECMP selection, cloned next hop — the honest "before".
    fn linear_lookup(
        linear: &[(Ipv6Prefix, Vec<Nexthop>)],
        dst: std::net::Ipv6Addr,
        flow_hash: u64,
    ) -> Option<(Ipv6Prefix, Nexthop, usize)> {
        let (prefix, nexthops) =
            linear.iter().filter(|(p, _)| p.contains(dst)).max_by_key(|(p, _)| p.len())?;
        let total_weight: u64 = nexthops.iter().map(|n| u64::from(n.weight)).sum();
        let mut slot = flow_hash % total_weight.max(1);
        let mut chosen = &nexthops[0];
        for nexthop in nexthops {
            if slot < u64::from(nexthop.weight) {
                chosen = nexthop;
                break;
            }
            slot -= u64::from(nexthop.weight);
        }
        Some((*prefix, *chosen, nexthops.len()))
    }

    let mut group = c.benchmark_group("fib_scale");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(100));
    group.measurement_time(Duration::from_millis(400));
    group.throughput(Throughput::Elements(LOOKUPS as u64));

    for (label, routes) in [("10", 10usize), ("1k", 1_000), ("100k", 100_000)] {
        let (trie, linear, dsts) = build(routes);
        group.bench_function(format!("trie_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (i, dst) in dsts.iter().enumerate() {
                    if let Some(hit) = trie.lookup(*dst, i as u64) {
                        acc += u64::from(hit.nexthop.oif);
                    }
                }
                acc
            })
        });
        group.bench_function(format!("linear_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for (i, dst) in dsts.iter().enumerate() {
                    if let Some((_, nexthop, _)) = linear_lookup(&linear, *dst, i as u64) {
                        acc += u64::from(nexthop.oif);
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

/// The srv6d rows: a full daemon service cycle — socket fill →
/// `FrameBatch` → `enqueue_bytes_all` → rings → workers → flush → TX emit
/// → buffer recycle — through the in-memory backend (transport cost
/// excluded: the daemon path itself) and through real UDP sockets over
/// loopback (the deployable configuration, kernel socket costs included).
fn bench_srv6d_io(c: &mut Criterion) {
    use netpkt::sockio::FrameBatch;
    use srv6d::{Config, MemBackend, Srv6Daemon, UdpBackend};

    /// Frames pushed through the daemon per measured iteration.
    const BURST: usize = 256;
    /// Loopback in-flight cap: small UDP datagrams cost ~768 B of socket
    /// buffer each, so keep well under the default rmem (~212 KB).
    const WINDOW: usize = 64;

    let mut group = c.benchmark_group("srv6d_io");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(500));
    group.throughput(Throughput::Elements(BURST as u64));

    let frames: Vec<Vec<u8>> = (0..BURST as u32)
        .map(|flow| {
            build_ipv6_udp_packet(
                addr(&format!("2001:db8::{:x}", flow + 1)),
                addr("2001:db8:f::1"),
                (1024 + flow % 40_000) as u16,
                5001,
                &[0u8; 64],
                64,
            )
            .data()
            .to_vec()
        })
        .collect();

    // --- In-memory backend: the daemon path without kernel sockets ------
    {
        let config = Config::parse(
            "[daemon]\nworkers = 1\nbatch-size = 32\nqueue-depth = 1024\nrx-burst = 64\n\
             [tenant edge]\nlocal = fc00::1\nlisten = [::1]:47000\npeer = 1 [::1]:47100\n\
             route = ::/0 dev 1",
        )
        .expect("valid config");
        let mem = MemBackend::new(4 * BURST);
        let mut daemon = Srv6Daemon::start(config, Box::new(mem.clone())).expect("daemon starts");
        let mut drain_batch = FrameBatch::new(BURST, 2048);
        group.bench_function("mem_ingest_1w", |b| {
            b.iter(|| {
                for frame in &frames {
                    assert!(mem.inject("edge", 0, frame), "mem link backpressured");
                }
                let mut read = 0;
                while read < BURST {
                    read += daemon.service().rx_frames;
                }
                let mut drained = 0;
                while drained < BURST {
                    drain_batch.clear();
                    drained += mem.drain_egress("edge", 1, &mut drain_batch);
                }
                read
            })
        });
        let report = daemon.drain();
        assert_eq!(report.drain.counters.in_flight(), 0);
    }

    // --- Kernel sockets over loopback: the deployable configurations ----
    // One row per backend, plus a derived syscalls-per-kiloframe figure:
    // wall-clock on loopback is dominated by the copies either way, but
    // the syscall count is deterministic — `recvmmsg`/`sendmmsg` move a
    // burst per call where the std backend pays one call per datagram —
    // so the smoke gate checks the ratio on that number, not on time.
    let socket_row = |group: &mut criterion::BenchmarkGroup<'_>,
                      name: &str,
                      backend: Box<dyn srv6d::IoBackend>,
                      listen_port: u16,
                      peer_port: u16|
     -> f64 {
        let config = Config::parse(&format!(
            "[daemon]\nworkers = 1\nbatch-size = 32\nqueue-depth = 1024\nrx-burst = 64\n\
             [tenant edge]\nlocal = fc00::1\nlisten = [::1]:{listen_port}\npeer = 1 [::1]:{peer_port}\n\
             route = ::/0 dev 1"
        ))
        .expect("valid config");
        // The capture socket must exist before the daemon connects its TX.
        let capture = std::net::UdpSocket::bind(format!("[::1]:{peer_port}")).expect("bind capture");
        capture.set_nonblocking(true).expect("nonblocking capture");
        let mut daemon = Srv6Daemon::start(config, backend).expect("daemon starts");
        let sender = std::net::UdpSocket::bind("[::1]:0").expect("bind sender");
        sender.connect(format!("[::1]:{listen_port}")).expect("connect sender");
        let mut buf = vec![0u8; 2048];
        let mut moved = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sent = 0usize;
                let mut captured = 0usize;
                while captured < BURST {
                    while sent < BURST && sent - captured < WINDOW {
                        sender.send(&frames[sent]).expect("loopback send");
                        sent += 1;
                    }
                    daemon.service();
                    while capture.recv(&mut buf).is_ok() {
                        captured += 1;
                    }
                }
                moved += 2 * BURST as u64; // BURST in, BURST back out
                captured
            })
        });
        let syscalls = daemon.io_syscalls();
        let report = daemon.drain();
        assert_eq!(report.drain.counters.in_flight(), 0);
        syscalls as f64 * 1000.0 / moved.max(1) as f64
    };
    let udp_rate = socket_row(&mut group, "udp_loopback_1w", Box::new(UdpBackend), 47010, 47110);
    let mmsg_rate = socket_row(&mut group, "mmsg_loopback_1w", Box::new(srv6d::MmsgBackend), 47020, 47120);
    group.finish();

    // Emit the syscall figures as extra BENCH_JSON rows (same shape as
    // the shim's) so bench-smoke.sh can gate on the deterministic count.
    if std::env::var_os("CRITERION_JSON").is_some() {
        let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
        let utc = std::env::var("BENCH_UTC").unwrap_or_default();
        for (name, rate) in [("udp_loopback_1w_syscalls", udp_rate), ("mmsg_loopback_1w_syscalls", mmsg_rate)]
        {
            println!(
                "BENCH_JSON {{\"name\":\"srv6d_io/{name}\",\"ns_per_iter\":{rate:.1},\"iters\":1,\
                 \"throughput_per_s\":0,\"throughput_unit\":\"syscalls/kframe\",\
                 \"host_parallelism\":{parallelism},\"utc\":\"{utc}\"}}"
            );
        }
    }
}

/// The unrolled SRH + payload byte walk (one load plus two ALU ops per
/// offset, packet pointer in `r8`, accumulators in `r0`/`r3`), shared by
/// the VM-level `srh_walk` rows and the `end_scan_dp` datapath rows.
fn srh_walk_body(packet_len: usize) -> String {
    let mut body = String::new();
    for off in 40..(packet_len - 8) {
        body.push_str(&format!("ldxb r2, [r8+{off}]\nadd64 r0, r2\nxor64 r3, r0\n"));
    }
    body
}

/// The execution-tier rows: one verified program, four tiers.
///
/// `srh_walk_*` is a compute-heavy straight-line program (an unrolled walk
/// over the SRH and payload bytes, three ALU ops per byte) measured at the
/// VM level with `run_program_with_state`, so the row isolates pure
/// execution cost: interpreter dispatch vs. pre-decoded micro-ops vs. fused
/// superinstructions vs. native x86-64 code with verifier-elided checks.
/// `bench-smoke.sh` gates `srh_walk_native` at `MIN_JIT_SPEEDUP`× (default
/// 3×) over `srh_walk_interp`. The `*_dp_*` rows run endpoint programs
/// through the full datapath: the shipped `End`, `End.X` and `End.T`
/// programs plus `end_scan`, the same byte walk attached as an `End.BPF`
/// policy. `bench-smoke.sh` gates `end_scan_dp` at `MIN_DP_SPEEDUP`×
/// (default 1.15×) and holds `end_dp`/`end_x_dp`/`end_t_dp` — whose
/// programs are a dozen trivial instructions, so per-packet datapath work
/// dominates — to a `MIN_DP_FLOOR` non-regression floor.
fn bench_jit_speedup(c: &mut Criterion) {
    use ebpf_vm::vm::{run_program_with_state, NullEnv, RunContext, RunState, PKT_BASE};
    use ebpf_vm::ExecTier;

    let mut group = c.benchmark_group("jit_speedup");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(500));

    // --- VM-level compute row: the unrolled SRH walk ---
    let srh = SegmentRoutingHeader::from_path(proto::UDP, &[endpoint_sid(), addr("fc00:2::d2")]);
    let template =
        build_srv6_udp_packet(addr("2001:db8::1"), &srh, 1024, 5001, &[0u8; 64], 64).data().to_vec();
    let mut source = String::from("mov64 r9, r1\nldxdw r8, [r9+0]\nmov64 r0, 0\nmov64 r3, 0\n");
    source.push_str(&srh_walk_body(template.len()));
    source.push_str("xor64 r0, r3\nexit\n");
    let insns = ebpf_vm::asm::assemble(&source).expect("srh_walk assembles");
    let prog = ebpf_vm::program::Program::new("srh_walk", ebpf_vm::program::ProgramType::LwtSeg6Local, insns);
    let helpers = ebpf_vm::HelperRegistry::new();
    let walk = ebpf_vm::program::load(prog, &HashMap::new(), &helpers).expect("srh_walk verifies");
    let mut ctx = vec![0u8; 64];
    ctx[0..8].copy_from_slice(&PKT_BASE.to_le_bytes());
    ctx[8..16].copy_from_slice(&(PKT_BASE + template.len() as u64).to_le_bytes());
    let mut state = RunState::new(ctx.len());
    for tier in ExecTier::ALL {
        let mut packet = template.clone();
        let mut ctx = ctx.clone();
        let mut env = NullEnv;
        // One program execution per iteration: the BENCH_JSON rows carry
        // elem/s so the smoke gate can compare tiers by rate, not only ns.
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("srh_walk_{}", tier.name()), |b| {
            b.iter(|| {
                let mut rc = RunContext { ctx: &mut ctx, packet: &mut packet, env: &mut env };
                run_program_with_state(&walk, &helpers, &mut rc, tier, &mut state).expect("srh_walk runs")
            })
        });
    }

    // --- Datapath rows: endpoint programs end-to-end, interp vs native ---
    // `end_scan` attaches the byte walk as an `End.BPF` policy program (an
    // OAM-style per-packet telemetry scan), so one datapath row exists
    // where program execution is a large share of the per-packet cost and
    // the tier ratio is meaningful end-to-end. The walk is guarded by the
    // context `len` field and returns `BPF_OK`.
    let mut scan =
        String::from("mov64 r9, r1\nldxdw r8, [r9+0]\nldxw r7, [r9+16]\nmov64 r0, 0\nmov64 r3, 0\n");
    scan.push_str(&format!("jlt r7, {}, short\n", template.len()));
    scan.push_str(&srh_walk_body(template.len()));
    scan.push_str("short:\nmov64 r0, 0\nexit\n");
    let scan_insns = ebpf_vm::asm::assemble(&scan).expect("end_scan assembles");
    let scan_prog =
        ebpf_vm::program::Program::new("end_scan", ebpf_vm::program::ProgramType::LwtSeg6Local, scan_insns);
    let nexthop = addr("fe80::42");
    let progs: [(&str, ebpf_vm::Program); 4] = [
        ("end", end_program()),
        ("end_x", srv6_nf::end_x_program(nexthop)),
        ("end_t", srv6_nf::end_t_program(100)),
        ("end_scan", scan_prog),
    ];
    for (name, prog) in progs {
        for tier in [ExecTier::Interp, ExecTier::Native] {
            let mut dp = Seg6Datapath::new(addr("fc00:1::1")).on_cpu(0);
            dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::2"), 2)]);
            dp.add_route("fe80::/10".parse().unwrap(), vec![Nexthop::direct(7)]);
            dp.add_route_in_table(100, "fc00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::2"), 2)]);
            let loaded =
                ebpf_vm::program::load(prog.clone(), &HashMap::new(), &dp.helpers).expect("endpoint program");
            loaded.set_exec_tier(tier);
            dp.add_local_sid(Ipv6Prefix::host(endpoint_sid()), Seg6LocalAction::EndBpf { prog: loaded });
            let pool = srv6_pool();
            group.throughput(Throughput::Elements(POOL as u64));
            group.bench_function(format!("{name}_dp_{}", tier.name()), |b| {
                b.iter(|| {
                    let forwarded = run_per_packet(&mut dp, &pool);
                    assert_eq!(forwarded, POOL as u64, "{name} dropped packets");
                    forwarded
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_speedup,
    bench_worker_scaling,
    bench_worker_pool,
    bench_ring_ingest,
    bench_tenant_scaling,
    bench_fib_scale,
    bench_srv6d_io,
    bench_jit_speedup
);
criterion_main!(benches);
