//! Quick-mode regeneration of the §4.2 TCP experiment: goodput of bulk TCP
//! over the WRR-scheduled hybrid access links, with and without the
//! TWD-based delay compensation.
//!
//! Run as part of `cargo bench` (harness = false). Longer runs and the
//! four-flow variant are available through
//! `cargo run --release -p bench --bin figures -- tcp`.

use bench::hybrid::run_tcp;
use simnet::NS_PER_SEC;

fn main() {
    let duration = 4 * NS_PER_SEC;
    println!("# TCP over hybrid access links (quick mode, 4 s simulated)");
    println!("# configuration                 goodput_mbps  out_of_order  compensation_ms");
    for (compensated, flows) in [(false, 1usize), (true, 1)] {
        let result = run_tcp(compensated, flows, duration, 0x7c9);
        let label = if compensated { "WRR + delay compensation" } else { "naive WRR (no compensation)" };
        println!(
            "{label:30}  {:12.1}  {:12}  {:14.1}",
            result.goodput_mbps,
            result.out_of_order,
            result.compensation_ns as f64 / 1e6
        );
    }
}
