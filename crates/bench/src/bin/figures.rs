//! Regenerates every table and figure of the paper's evaluation and prints
//! them next to the values the paper reports.
//!
//! ```text
//! cargo run --release -p bench --bin figures            # everything
//! cargo run --release -p bench --bin figures -- fig2    # one experiment
//! ```
//!
//! Available experiments: `fig2`, `jit`, `fig3`, `fig4`, `tcp`, `sloc`.

use bench::{fig2, fig3, hybrid};
use simnet::NS_PER_SEC;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("fig2") {
        print_fig2();
    }
    if want("jit") {
        print_jit();
    }
    if want("fig3") {
        print_fig3();
    }
    if want("fig4") {
        print_fig4();
    }
    if want("tcp") {
        print_tcp();
    }
    if want("sloc") {
        print_sloc();
    }
}

fn print_fig2() {
    println!("== Figure 2: forwarding rate of simple endpoint functions (normalised) ==");
    println!("{:30} {:>12} {:>12} {:>12}", "variant", "measured pps", "normalised", "paper");
    let rows = fig2::run(200_000);
    for row in rows {
        println!(
            "{:30} {:>12.0} {:>12.3} {:>12.2}",
            row.variant.label(),
            row.pps,
            row.normalized,
            row.paper_normalized
        );
    }
    println!();
}

fn print_jit() {
    println!("== §3.2: JIT vs interpreter (Add TLV) ==");
    let mut with_jit = fig2::build_scenario(fig2::Fig2Variant::AddTlvBpf);
    let mut no_jit = fig2::build_scenario(fig2::Fig2Variant::AddTlvBpfNoJit);
    let jit_pps = with_jit.measure_pps(200_000);
    let nojit_pps = no_jit.measure_pps(200_000);
    println!("Add TLV with JIT     : {jit_pps:>12.0} pps");
    println!("Add TLV interpreter  : {nojit_pps:>12.0} pps");
    println!("throughput ratio     : {:>12.2}  (paper: 1.8)", jit_pps / nojit_pps);
    println!();
}

fn print_fig3() {
    println!("== Figure 3: impact of the delay-monitoring programs (normalised) ==");
    println!("{:30} {:>12} {:>12} {:>12}", "variant", "measured pps", "normalised", "paper");
    for row in fig3::run(200_000) {
        println!(
            "{:30} {:>12.0} {:>12.3} {:>12.3}",
            row.variant.label(),
            row.pps,
            row.normalized,
            row.paper_normalized
        );
    }
    println!();
}

fn print_fig4() {
    println!("== Figure 4: aggregated UDP goodput through the CPE (Mbps) ==");
    let payloads = [200usize, 400, 600, 800, 1000, 1200, 1400];
    let duration_ns = 100_000_000;
    let points = hybrid::run_fig4(&payloads, duration_ns);
    print!("{:>16}", "payload (bytes)");
    for mode in hybrid::Fig4Mode::all() {
        print!(" {:>16}", mode.label());
    }
    println!();
    for &payload in &payloads {
        print!("{payload:>16}");
        for mode in hybrid::Fig4Mode::all() {
            let point = points.iter().find(|p| p.mode == mode && p.payload == payload).unwrap();
            print!(" {:>16.0}", point.goodput_mbps);
        }
        println!();
    }
    println!("(paper: IPv6 forwarding ≈ 300→950 Mbps, kernel decap ≈ 10% lower, eBPF WRR lowest, converging at 1400 B)");
    println!();
}

fn print_tcp() {
    println!("== §4.2: TCP goodput over the hybrid access links ==");
    let duration = 10 * NS_PER_SEC;
    let (owd0, owd1) = hybrid::measure_path_delays(0x1dea);
    println!(
        "measured one-way delays: path0 = {:.1} ms, path1 = {:.1} ms",
        owd0 as f64 / 1e6,
        owd1 as f64 / 1e6
    );
    println!("{:34} {:>14} {:>14}", "configuration", "goodput Mbps", "paper Mbps");
    let naive = hybrid::run_tcp(false, 1, duration, 0x7c9);
    println!("{:34} {:>14.1} {:>14}", "naive WRR, 1 flow", naive.goodput_mbps, "3.8");
    let comp1 = hybrid::run_tcp(true, 1, duration, 0x7c9);
    println!("{:34} {:>14.1} {:>14}", "compensated WRR, 1 flow", comp1.goodput_mbps, "68");
    let comp4 = hybrid::run_tcp(true, 4, duration, 0x7c9);
    println!("{:34} {:>14.1} {:>14}", "compensated WRR, 4 flows", comp4.goodput_mbps, "70");
    println!(
        "(compensation applied: {:.1} ms on the fast path; naive run saw {} out-of-order segments)",
        comp1.compensation_ns as f64 / 1e6,
        naive.out_of_order
    );
    println!();
}

fn print_sloc() {
    println!("== §4 program sizes: paper SLOC vs this reproduction's instruction counts ==");
    let programs: Vec<(&str, usize, &str)> = vec![
        ("End (BPF)", srv6_nf::end_program().len(), "1 SLOC"),
        ("End.T (BPF)", srv6_nf::end_t_program(254).len(), "4 SLOC"),
        ("Tag++", srv6_nf::tag_increment_program().len(), "50 SLOC"),
        ("Add TLV", srv6_nf::add_tlv_program().len(), "60 SLOC"),
        (
            "OWD encapsulation",
            srv6_nf::owd_encap_program(srv6_nf::OwdEncapConfig {
                dm_sid: "fc00::d1".parse().unwrap(),
                controller: "2001:db8::c0".parse().unwrap(),
                controller_port: 9999,
                ratio: 100,
            })
            .len(),
            "130 SLOC",
        ),
        ("End.DM", srv6_nf::end_dm_program(1).len(), "n/a"),
        ("WRR scheduler", srv6_nf::wrr_encap_program(2, 3).len(), "120 SLOC"),
        ("End.OAMP", srv6_nf::end_oamp_program(1).len(), "60 SLOC"),
    ];
    println!("{:22} {:>22} {:>14}", "program", "eBPF instructions here", "paper");
    for (name, insns, paper) in programs {
        println!("{name:22} {insns:>22} {paper:>14}");
    }
    println!();
}
