//! Figure 2: forwarding rate of simple endpoint functions, normalised to
//! plain IPv6 forwarding, plus the §3.2 JIT/interpreter factor.
//!
//! The paper's setup 1 streams 64-byte-payload UDP packets with a
//! two-segment SRH through router R, which executes one endpoint function
//! per packet on a single core. Here the same single-router datapath is
//! driven in a tight loop and the per-packet cost is measured directly.

use netpkt::ipv6::proto;
use netpkt::packet::build_srv6_udp_packet;
use netpkt::srh::SegmentRoutingHeader;
use seg6_core::{Nexthop, Seg6Datapath, Seg6LocalAction, Skb, Verdict};
use srv6_nf::{add_tlv_program, end_program, end_t_program, tag_increment_program};
use std::collections::HashMap;
use std::net::Ipv6Addr;

/// The endpoint-function variants of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig2Variant {
    /// Plain IPv6 forwarding (no seg6local action) — the 100 % reference.
    PlainForwarding,
    /// The static, in-kernel `End` behaviour.
    EndStatic,
    /// `End` written in BPF.
    EndBpf,
    /// The static `End.T` behaviour.
    EndTStatic,
    /// `End.T` written in BPF.
    EndTBpf,
    /// The `Tag++` BPF program.
    TagIncrementBpf,
    /// The `Add TLV` BPF program (JIT enabled).
    AddTlvBpf,
    /// The `Add TLV` BPF program with the JIT disabled (interpreter).
    AddTlvBpfNoJit,
}

impl Fig2Variant {
    /// Every variant, in the order Figure 2 presents them.
    pub fn all() -> [Fig2Variant; 8] {
        [
            Fig2Variant::PlainForwarding,
            Fig2Variant::EndStatic,
            Fig2Variant::EndBpf,
            Fig2Variant::EndTStatic,
            Fig2Variant::EndTBpf,
            Fig2Variant::TagIncrementBpf,
            Fig2Variant::AddTlvBpf,
            Fig2Variant::AddTlvBpfNoJit,
        ]
    }

    /// The label used in the paper's figure.
    pub fn label(&self) -> &'static str {
        match self {
            Fig2Variant::PlainForwarding => "IPv6 forwarding (reference)",
            Fig2Variant::EndStatic => "End static",
            Fig2Variant::EndBpf => "End BPF",
            Fig2Variant::EndTStatic => "End.T static",
            Fig2Variant::EndTBpf => "End.T BPF",
            Fig2Variant::TagIncrementBpf => "Tag++ BPF",
            Fig2Variant::AddTlvBpf => "Add TLV BPF",
            Fig2Variant::AddTlvBpfNoJit => "Add TLV no JIT",
        }
    }
}

/// A ready-to-run Figure 2 scenario: a router datapath with the right SID
/// installed and the template packet `trafgen` would send.
pub struct Fig2Scenario {
    /// The router under test.
    pub datapath: Seg6Datapath,
    /// The packet template (64-byte UDP payload, two-segment SRH, the first
    /// segment owned by the router).
    pub template: Vec<u8>,
    /// Which variant this scenario exercises.
    pub variant: Fig2Variant,
}

/// SID used by the endpoint variants.
pub fn endpoint_sid() -> Ipv6Addr {
    "fc00:1::e".parse().unwrap()
}

/// Builds the scenario for one Figure 2 variant.
pub fn build_scenario(variant: Fig2Variant) -> Fig2Scenario {
    let sid = endpoint_sid();
    let next_segment: Ipv6Addr = "fc00:2::d2".parse().unwrap();
    let mut dp = Seg6Datapath::new("fc00:1::1".parse().unwrap());
    // Routes: everything SRv6 goes out of interface 2; the End.T table 100
    // holds the same route so static and BPF End.T behave identically.
    dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via("fe80::2".parse().unwrap(), 2)]);
    dp.add_route("2001:db8::/32".parse().unwrap(), vec![Nexthop::via("fe80::3".parse().unwrap(), 3)]);
    dp.add_route_in_table(
        100,
        "fc00::/16".parse().unwrap(),
        vec![Nexthop::via("fe80::2".parse().unwrap(), 2)],
    );

    let action = match variant {
        Fig2Variant::PlainForwarding => None,
        Fig2Variant::EndStatic => Some(Seg6LocalAction::End),
        Fig2Variant::EndTStatic => Some(Seg6LocalAction::EndT { table: 100 }),
        Fig2Variant::EndBpf => Some(load_bpf(&dp, end_program(), ebpf_vm::ExecTier::best_supported())),
        Fig2Variant::EndTBpf => Some(load_bpf(&dp, end_t_program(100), ebpf_vm::ExecTier::best_supported())),
        Fig2Variant::TagIncrementBpf => {
            Some(load_bpf(&dp, tag_increment_program(), ebpf_vm::ExecTier::best_supported()))
        }
        Fig2Variant::AddTlvBpf => Some(load_bpf(&dp, add_tlv_program(), ebpf_vm::ExecTier::best_supported())),
        Fig2Variant::AddTlvBpfNoJit => Some(load_bpf(&dp, add_tlv_program(), ebpf_vm::ExecTier::Interp)),
    };
    if let Some(action) = action {
        dp.add_local_sid(netpkt::Ipv6Prefix::host(sid), action);
    }

    // The packet: for endpoint variants the first segment is the SID; for
    // the plain-forwarding reference the destination is simply routed.
    let path = match variant {
        Fig2Variant::PlainForwarding => vec!["fc00:2::99".parse().unwrap(), next_segment],
        _ => vec![sid, next_segment],
    };
    let srh = SegmentRoutingHeader::from_path(proto::UDP, &path);
    let template = build_srv6_udp_packet("2001:db8::1".parse().unwrap(), &srh, 1024, 5001, &[0u8; 64], 64)
        .data()
        .to_vec();
    Fig2Scenario { datapath: dp, template, variant }
}

fn load_bpf(dp: &Seg6Datapath, prog: ebpf_vm::Program, tier: ebpf_vm::ExecTier) -> Seg6LocalAction {
    let loaded =
        ebpf_vm::program::load(prog, &HashMap::new(), &dp.helpers).expect("figure-2 program must verify");
    loaded.set_exec_tier(tier);
    Seg6LocalAction::EndBpf { prog: loaded }
}

impl Fig2Scenario {
    /// Processes one packet built from the template; panics if the datapath
    /// does not forward it (a mis-configured benchmark would otherwise
    /// silently measure the drop path).
    pub fn forward_one(&mut self) {
        let mut skb = Skb::new(netpkt::PacketBuf::from_slice(&self.template));
        let now = self.datapath.stats.received;
        match self.datapath.process(&mut skb, now) {
            Verdict::Forward { .. } => {}
            other => panic!("{:?}: packet was not forwarded: {other:?}", self.variant),
        }
    }

    /// Measures the forwarding rate in packets per second over `count`
    /// packets.
    pub fn measure_pps(&mut self, count: usize) -> f64 {
        crate::measure_rate(count, || self.forward_one()).0
    }
}

/// One row of the Figure 2 result table.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Variant measured.
    pub variant: Fig2Variant,
    /// Absolute forwarding rate measured on this host.
    pub pps: f64,
    /// Rate normalised to the plain-IPv6-forwarding reference.
    pub normalized: f64,
    /// The value the paper reports (fraction of the reference), for
    /// comparison in EXPERIMENTS.md.
    pub paper_normalized: f64,
}

/// The normalised values read off the paper's Figure 2 bars.
pub fn paper_reference(variant: Fig2Variant) -> f64 {
    match variant {
        Fig2Variant::PlainForwarding => 1.0,
        Fig2Variant::EndStatic => 0.78,
        Fig2Variant::EndBpf => 0.75,
        Fig2Variant::EndTStatic => 0.77,
        Fig2Variant::EndTBpf => 0.72,
        Fig2Variant::TagIncrementBpf => 0.72,
        Fig2Variant::AddTlvBpf => 0.70,
        Fig2Variant::AddTlvBpfNoJit => 0.39,
    }
}

/// Runs the whole Figure 2 experiment with `count` packets per variant.
pub fn run(count: usize) -> Vec<Fig2Row> {
    let baseline = build_scenario(Fig2Variant::PlainForwarding).measure_pps(count);
    Fig2Variant::all()
        .into_iter()
        .map(|variant| {
            let pps = if variant == Fig2Variant::PlainForwarding {
                baseline
            } else {
                build_scenario(variant).measure_pps(count)
            };
            Fig2Row { variant, pps, normalized: pps / baseline, paper_normalized: paper_reference(variant) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_forwards_packets() {
        for variant in Fig2Variant::all() {
            let mut scenario = build_scenario(variant);
            scenario.forward_one();
            scenario.forward_one();
            assert_eq!(scenario.datapath.stats.forwarded, 2, "{variant:?}");
        }
    }

    #[test]
    fn bpf_variants_invoke_programs() {
        let mut scenario = build_scenario(Fig2Variant::AddTlvBpf);
        scenario.forward_one();
        assert_eq!(scenario.datapath.stats.bpf_invocations, 1);
        let mut scenario = build_scenario(Fig2Variant::EndStatic);
        scenario.forward_one();
        assert_eq!(scenario.datapath.stats.bpf_invocations, 0);
        assert_eq!(scenario.datapath.stats.seg6local_invocations, 1);
    }

    #[test]
    fn run_produces_normalised_rows_with_sane_ordering() {
        crate::assert_eventually(5, || {
            let rows = run(2_000);
            assert_eq!(rows.len(), 8);
            let get = |v: Fig2Variant| rows.iter().find(|r| r.variant == v).unwrap().normalized;
            // The reference is 1.0 by construction.
            assert!((get(Fig2Variant::PlainForwarding) - 1.0).abs() < 1e-9);
            // BPF End cannot be faster than static End; no-JIT cannot be
            // faster than JIT (allow a small tolerance for measurement
            // noise; a scheduling hiccup retries the whole measurement).
            if get(Fig2Variant::EndBpf) > get(Fig2Variant::EndStatic) * 1.05 {
                return Err(format!("EndBpf outpaced EndStatic: {rows:?}"));
            }
            if get(Fig2Variant::AddTlvBpfNoJit) > get(Fig2Variant::AddTlvBpf) * 1.05 {
                return Err(format!("no-JIT outpaced JIT: {rows:?}"));
            }
            // Every normalised value is positive and below ~1.1.
            for row in &rows {
                if !(row.normalized > 0.0 && row.normalized < 1.2) {
                    return Err(format!("normalised rate out of range: {row:?}"));
                }
            }
            Ok(())
        });
    }
}
