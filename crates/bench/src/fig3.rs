//! Figure 3: forwarding impact of the passive delay-monitoring programs,
//! for probing ratios 1:10000 and 1:100.
//!
//! Two datapaths are measured, as in the paper: the ingress router running
//! the encapsulation LWT-BPF program over a `pktgen` stream of plain IPv6
//! packets, and the egress router running `End.DM` over a `trafgen` stream
//! of probes that all carry the DM TLV.

use ebpf_vm::maps::{Map, MapHandle, PerfEventArray};
use netpkt::packet::build_ipv6_udp_packet;
use seg6_core::{LwtBpfAttachment, LwtHook, Nexthop, Seg6Datapath, Seg6LocalAction, Skb, Verdict};
use srv6_nf::{end_dm_program, owd_encap_program, DelayCollector, OwdEncapConfig};
use std::collections::HashMap;
use std::net::Ipv6Addr;

/// The four measured configurations of Figure 3, plus the pure-IPv6
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig3Variant {
    /// Plain IPv6 forwarding (the 100 % reference, 610 kpps in the paper).
    PlainForwarding,
    /// The encapsulation program with a 1:10000 probing ratio.
    Encap1In10000,
    /// `End.DM` receiving probes at a 1:10000 ratio (probes are 1 in 10⁴ of
    /// the stream; the rest is plain traffic).
    EndDm1In10000,
    /// The encapsulation program with a 1:100 probing ratio.
    Encap1In100,
    /// `End.DM` receiving probes at a 1:100 ratio.
    EndDm1In100,
}

impl Fig3Variant {
    /// All variants in figure order.
    pub fn all() -> [Fig3Variant; 5] {
        [
            Fig3Variant::PlainForwarding,
            Fig3Variant::Encap1In10000,
            Fig3Variant::EndDm1In10000,
            Fig3Variant::Encap1In100,
            Fig3Variant::EndDm1In100,
        ]
    }

    /// Label used by the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Fig3Variant::PlainForwarding => "IPv6 forwarding (reference)",
            Fig3Variant::Encap1In10000 => "Encap. 1:10000",
            Fig3Variant::EndDm1In10000 => "End.DM 1:10000",
            Fig3Variant::Encap1In100 => "Encap. 1:100",
            Fig3Variant::EndDm1In100 => "End.DM 1:100",
        }
    }

    /// The probing ratio of the variant.
    pub fn ratio(&self) -> u32 {
        match self {
            Fig3Variant::PlainForwarding => 0,
            Fig3Variant::Encap1In10000 | Fig3Variant::EndDm1In10000 => 10_000,
            Fig3Variant::Encap1In100 | Fig3Variant::EndDm1In100 => 100,
        }
    }

    /// Normalised forwarding rate read off the paper's Figure 3.
    pub fn paper_normalized(&self) -> f64 {
        match self {
            Fig3Variant::PlainForwarding => 1.0,
            Fig3Variant::Encap1In10000 => 0.955,
            Fig3Variant::EndDm1In10000 => 0.995,
            Fig3Variant::Encap1In100 => 0.95,
            Fig3Variant::EndDm1In100 => 0.99,
        }
    }
}

/// The controller address used by the monitoring programs.
pub fn controller_addr() -> Ipv6Addr {
    "2001:db8:ffff::c0".parse().unwrap()
}

/// SID of the router running `End.DM`.
pub fn dm_sid() -> Ipv6Addr {
    "fc00:1::d".parse().unwrap()
}

/// A Figure 3 scenario: the router under test plus the packet mix it
/// receives.
pub struct Fig3Scenario {
    /// The router under test.
    pub datapath: Seg6Datapath,
    /// Pre-built packets cycled through by the generator (probes are mixed
    /// with plain packets at the configured ratio).
    pub packets: Vec<Vec<u8>>,
    next: usize,
    /// Collector attached to the End.DM perf buffer (empty for the other
    /// variants); lets experiments verify that reports were produced.
    pub collector: Option<DelayCollector>,
    /// Which variant this is.
    pub variant: Fig3Variant,
}

/// Builds a Figure 3 scenario.
pub fn build_scenario(variant: Fig3Variant) -> Fig3Scenario {
    let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
    let client_dst: Ipv6Addr = "2001:db8:2::9".parse().unwrap();
    let mut dp = Seg6Datapath::new("fc00:1::1".parse().unwrap());
    dp.add_route("2001:db8::/32".parse().unwrap(), vec![Nexthop::via("fe80::3".parse().unwrap(), 3)]);
    dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via("fe80::2".parse().unwrap(), 2)]);

    let plain = build_ipv6_udp_packet(src, client_dst, 1024, 5001, &[0u8; 64], 64).data().to_vec();
    let mut collector = None;

    let packets = match variant {
        Fig3Variant::PlainForwarding => vec![plain],
        Fig3Variant::Encap1In10000 | Fig3Variant::Encap1In100 => {
            // The ingress router runs the sampling encapsulation program for
            // every packet towards the monitored destination.
            let prog = owd_encap_program(OwdEncapConfig {
                dm_sid: dm_sid(),
                controller: controller_addr(),
                controller_port: 9999,
                ratio: variant.ratio(),
            });
            let loaded = ebpf_vm::program::load(prog, &HashMap::new(), &dp.helpers).expect("encap program");
            dp.attach_lwt_bpf(
                "2001:db8:2::/48".parse().unwrap(),
                LwtBpfAttachment { hook: LwtHook::Xmit, prog: loaded },
            );
            vec![plain]
        }
        Fig3Variant::EndDm1In10000 | Fig3Variant::EndDm1In100 => {
            // The egress router runs End.DM; one packet in `ratio` is a
            // probe carrying the DM TLV, the rest is plain traffic.
            let perf = PerfEventArray::new(4096);
            let perf_handle: MapHandle = perf.clone();
            let mut maps = HashMap::new();
            maps.insert(1u32, perf_handle);
            let loaded =
                ebpf_vm::program::load(end_dm_program(1), &maps, &dp.helpers).expect("End.DM program");
            dp.add_local_sid(netpkt::Ipv6Prefix::host(dm_sid()), Seg6LocalAction::EndBpf { prog: loaded });
            collector = Some(DelayCollector::new(perf.perf_buffer().expect("perf buffer")));

            // Build the probe by running the encapsulation program once on
            // an ingress datapath (ratio 1 = always encapsulate).
            let mut ingress = Seg6Datapath::new("fc00:0::1".parse().unwrap());
            ingress.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
            let encap = owd_encap_program(OwdEncapConfig {
                dm_sid: dm_sid(),
                controller: controller_addr(),
                controller_port: 9999,
                ratio: 1,
            });
            let encap =
                ebpf_vm::program::load(encap, &HashMap::new(), &ingress.helpers).expect("encap program");
            ingress.attach_lwt_bpf(
                "2001:db8:2::/48".parse().unwrap(),
                LwtBpfAttachment { hook: LwtHook::Xmit, prog: encap },
            );
            let mut skb = Skb::new(netpkt::PacketBuf::from_slice(&plain));
            assert!(ingress.process(&mut skb, 42).is_forward());
            let probe = skb.packet.data().to_vec();

            // The packet mix: one probe every `ratio` packets.
            let ratio = variant.ratio() as usize;
            let mix_len = ratio.min(1_000);
            let mut packets = vec![plain; mix_len];
            packets[0] = probe;
            packets
        }
    };
    Fig3Scenario { datapath: dp, packets, next: 0, collector, variant }
}

impl Fig3Scenario {
    /// Processes the next packet of the generator mix.
    pub fn forward_one(&mut self) {
        let template = &self.packets[self.next];
        self.next = (self.next + 1) % self.packets.len();
        let mut skb = Skb::new(netpkt::PacketBuf::from_slice(template));
        let now = self.datapath.stats.received;
        match self.datapath.process(&mut skb, now) {
            Verdict::Forward { .. } => {}
            other => panic!("{:?}: packet was not forwarded: {other:?}", self.variant),
        }
    }

    /// Measures the forwarding rate in packets per second.
    pub fn measure_pps(&mut self, count: usize) -> f64 {
        crate::measure_rate(count, || self.forward_one()).0
    }
}

/// One row of the Figure 3 table.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Variant measured.
    pub variant: Fig3Variant,
    /// Absolute forwarding rate on this host.
    pub pps: f64,
    /// Rate normalised to plain IPv6 forwarding.
    pub normalized: f64,
    /// Value reported by the paper.
    pub paper_normalized: f64,
}

/// Runs the whole Figure 3 experiment.
pub fn run(count: usize) -> Vec<Fig3Row> {
    // The process warms up measurably over the first measurement (allocator
    // pools, branch predictors, frequency scaling), so a single up-front
    // reference skews every later ratio. Discard one warm-up run, then
    // re-measure the reference right next to each variant and normalise to
    // the adjacent measurement.
    build_scenario(Fig3Variant::PlainForwarding).measure_pps(count);
    Fig3Variant::all()
        .into_iter()
        .map(|variant| {
            let pps = build_scenario(variant).measure_pps(count);
            let baseline = if variant == Fig3Variant::PlainForwarding {
                pps
            } else {
                build_scenario(Fig3Variant::PlainForwarding).measure_pps(count)
            };
            Fig3Row { variant, pps, normalized: pps / baseline, paper_normalized: variant.paper_normalized() }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_and_encap_scenarios_forward() {
        for variant in [Fig3Variant::PlainForwarding, Fig3Variant::Encap1In100] {
            let mut scenario = build_scenario(variant);
            for _ in 0..50 {
                scenario.forward_one();
            }
            assert_eq!(scenario.datapath.stats.forwarded, 50, "{variant:?}");
        }
    }

    #[test]
    fn end_dm_scenario_decapsulates_probes_and_reports() {
        let mut scenario = build_scenario(Fig3Variant::EndDm1In100);
        // Process one full mix cycle: exactly one probe among `ratio` packets.
        let cycle = scenario.packets.len();
        for _ in 0..cycle {
            scenario.forward_one();
        }
        assert_eq!(scenario.datapath.stats.bpf_invocations, 1);
        let collector = scenario.collector.as_mut().unwrap();
        assert_eq!(collector.poll(), 1);
        assert_eq!(collector.reports().len(), 1);
        assert_eq!(collector.reports()[0].controller, controller_addr());
    }

    #[test]
    fn run_reports_small_overheads() {
        crate::assert_eventually(5, || {
            let rows = run(1_500);
            assert_eq!(rows.len(), 5);
            for row in &rows {
                // Unoptimised test builds exaggerate the BPF overhead; the
                // release-mode figures harness reports the realistic
                // ratios. A scheduling hiccup inside one measurement
                // window retries the whole experiment.
                if !(row.normalized > 0.05 && row.normalized < 1.2) {
                    return Err(format!("normalised rate out of range: {row:?}"));
                }
            }
            // The 1:10000 encapsulation cannot be slower than the 1:100
            // one (modulo 10% measurement noise).
            let get = |v: Fig3Variant| rows.iter().find(|r| r.variant == v).unwrap().normalized;
            if get(Fig3Variant::Encap1In10000) < get(Fig3Variant::Encap1In100) * 0.9 {
                return Err(format!("sparser probing measured slower: {rows:?}"));
            }
            Ok(())
        });
    }
}
