//! The hybrid-access experiments (§4.2): Figure 4's aggregated UDP goodput
//! on the CPE, and the TCP goodput with and without delay compensation.
//!
//! Topology (the paper's setup 2):
//!
//! ```text
//!   S1 ---- A ==(two links)== M ---- S2
//!        aggregation box     CPE (Turris Omnia)
//! ```
//!
//! The aggregation box and the CPE each expose two `End.DT6` SIDs, one
//! reachable over each link; the WRR eBPF program encapsulates traffic
//! towards one of the peer's SIDs, which pins the packet to that link.

use ebpf_vm::maps::MapHandle;
use netpkt::ipv6::proto;
use netpkt::packet::build_ipv6_udp_packet;
use netpkt::srh::SegmentRoutingHeader;
use netpkt::PacketBuf;
use seg6_core::srv6_ops;
use seg6_core::{LwtBpfAttachment, LwtHook, Nexthop, Seg6LocalAction, TransitBehaviour};
use simnet::{CpuProfile, LinkConfig, Simulator, NS_PER_SEC};
use srv6_nf::{compute_compensation, wrr_encap_program, wrr_maps};
use std::collections::HashMap;
use std::net::Ipv6Addr;
use trafficgen::{TcpBulkReceiver, TcpBulkSender, UdpFlowSource};

/// Addresses used by the hybrid topology.
pub mod addrs {
    use std::net::Ipv6Addr;
    /// Server host behind the aggregation box.
    pub fn s1() -> Ipv6Addr {
        "2001:db8:1::1".parse().unwrap()
    }
    /// Client host behind the CPE.
    pub fn s2() -> Ipv6Addr {
        "2001:db8:2::1".parse().unwrap()
    }
    /// Aggregation box.
    pub fn agg() -> Ipv6Addr {
        "fc00::a".parse().unwrap()
    }
    /// CPE.
    pub fn cpe() -> Ipv6Addr {
        "fc00::b".parse().unwrap()
    }
    /// Aggregation-box SID reachable over link 0 / link 1.
    pub fn agg_sid(path: usize) -> Ipv6Addr {
        if path == 0 {
            "fd00::a1".parse().unwrap()
        } else {
            "fd00::a2".parse().unwrap()
        }
    }
    /// CPE SID reachable over link 0 / link 1.
    pub fn cpe_sid(path: usize) -> Ipv6Addr {
        if path == 0 {
            "fd00::b1".parse().unwrap()
        } else {
            "fd00::b2".parse().unwrap()
        }
    }
}

/// How the CPE handles traffic in the Figure 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig4Mode {
    /// Plain IPv6 forwarding through the CPE (the figure's upper curve).
    PlainForwarding,
    /// The aggregation box encapsulates; the CPE performs the native
    /// (static) decapsulation.
    KernelDecap,
    /// The CPE runs the eBPF WRR scheduler (interpreter, as on the ARM32
    /// Turris) and aggregates both links upstream.
    EbpfWrr,
}

impl Fig4Mode {
    /// All modes, in the order of the figure's legend.
    pub fn all() -> [Fig4Mode; 3] {
        [Fig4Mode::PlainForwarding, Fig4Mode::KernelDecap, Fig4Mode::EbpfWrr]
    }

    /// Label used in the figure.
    pub fn label(&self) -> &'static str {
        match self {
            Fig4Mode::PlainForwarding => "IPv6 forward.",
            Fig4Mode::KernelDecap => "Kernel decap.",
            Fig4Mode::EbpfWrr => "eBPF WRR",
        }
    }
}

/// The built topology plus the node/link handles experiments need.
pub struct HybridTopology {
    /// The simulator.
    pub sim: Simulator,
    /// Node ids.
    pub s1: usize,
    /// Aggregation box node id.
    pub agg: usize,
    /// CPE node id.
    pub cpe: usize,
    /// Client node id.
    pub s2: usize,
    /// A↔M link ids (link 0 is the higher-bandwidth/higher-latency one).
    pub links: [usize; 2],
}

/// Builds the hybrid topology with the given per-link configurations and
/// CPE CPU profile. Routing and the four `End.DT6` SIDs are installed; the
/// WRR programs are installed separately by the experiments.
pub fn build_topology(
    link0: LinkConfig,
    link1: LinkConfig,
    cpe_cpu: CpuProfile,
    seed: u64,
) -> HybridTopology {
    let mut sim = Simulator::new(seed);
    let s1 = sim.add_node("S1", addrs::s1());
    let agg = sim.add_node("A", addrs::agg());
    let cpe = sim.add_node("M", addrs::cpe());
    let s2 = sim.add_node("S2", addrs::s2());

    let (_, _, agg_if_s1) = sim.connect(s1, agg, LinkConfig::gigabit());
    let (l0, agg_if_l0, cpe_if_l0) = sim.connect(agg, cpe, link0);
    let (l1, agg_if_l1, cpe_if_l1) = sim.connect(agg, cpe, link1);
    let (_, cpe_if_s2, _) = sim.connect(cpe, s2, LinkConfig::gigabit());

    sim.node_mut(cpe).cpu = cpe_cpu;

    // Hosts: default route towards their gateway.
    sim.node_mut(s1).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);
    sim.node_mut(s2).datapath.add_route("::/0".parse().unwrap(), vec![Nexthop::direct(1)]);

    // Aggregation box routing.
    {
        let dp = &mut sim.node_mut(agg).datapath;
        dp.add_route("2001:db8:1::/48".parse().unwrap(), vec![Nexthop::direct(agg_if_s1)]);
        dp.add_route(netpkt::Ipv6Prefix::host(addrs::cpe_sid(0)), vec![Nexthop::direct(agg_if_l0)]);
        dp.add_route(netpkt::Ipv6Prefix::host(addrs::cpe_sid(1)), vec![Nexthop::direct(agg_if_l1)]);
        // Plain downstream route (used by the non-WRR modes): over link 0.
        dp.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::direct(agg_if_l0)]);
        dp.add_route(netpkt::Ipv6Prefix::host(addrs::cpe()), vec![Nexthop::direct(agg_if_l0)]);
        // Upstream decapsulation SIDs.
        dp.add_local_sid(
            netpkt::Ipv6Prefix::host(addrs::agg_sid(0)),
            Seg6LocalAction::EndDT6 { table: seg6_core::MAIN_TABLE },
        );
        dp.add_local_sid(
            netpkt::Ipv6Prefix::host(addrs::agg_sid(1)),
            Seg6LocalAction::EndDT6 { table: seg6_core::MAIN_TABLE },
        );
    }

    // CPE routing.
    {
        let dp = &mut sim.node_mut(cpe).datapath;
        dp.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::direct(cpe_if_s2)]);
        dp.add_route(netpkt::Ipv6Prefix::host(addrs::agg_sid(0)), vec![Nexthop::direct(cpe_if_l0)]);
        dp.add_route(netpkt::Ipv6Prefix::host(addrs::agg_sid(1)), vec![Nexthop::direct(cpe_if_l1)]);
        // Upstream plain route (ACKs and non-WRR traffic): over link 1, the
        // lower-latency path.
        dp.add_route("2001:db8:1::/48".parse().unwrap(), vec![Nexthop::direct(cpe_if_l1)]);
        dp.add_route(netpkt::Ipv6Prefix::host(addrs::agg()), vec![Nexthop::direct(cpe_if_l1)]);
        // Downstream decapsulation SIDs.
        dp.add_local_sid(
            netpkt::Ipv6Prefix::host(addrs::cpe_sid(0)),
            Seg6LocalAction::EndDT6 { table: seg6_core::MAIN_TABLE },
        );
        dp.add_local_sid(
            netpkt::Ipv6Prefix::host(addrs::cpe_sid(1)),
            Seg6LocalAction::EndDT6 { table: seg6_core::MAIN_TABLE },
        );
    }

    HybridTopology { sim, s1, agg, cpe, s2, links: [l0, l1] }
}

/// Installs the WRR eBPF scheduler on `node` for traffic towards `prefix`,
/// encapsulating towards the two SIDs with the given weights.
pub fn install_wrr(
    sim: &mut Simulator,
    node: usize,
    prefix: &str,
    sids: (Ipv6Addr, Ipv6Addr),
    weights: (u32, u32),
    tier: ebpf_vm::ExecTier,
) {
    let (state, config) = wrr_maps(weights.0, weights.1, sids.0, sids.1);
    let mut maps: HashMap<u32, MapHandle> = HashMap::new();
    maps.insert(2, state);
    maps.insert(3, config);
    let dp = &mut sim.node_mut(node).datapath;
    let prog = ebpf_vm::program::load(wrr_encap_program(2, 3), &maps, &dp.helpers).expect("WRR program");
    prog.set_exec_tier(tier);
    dp.attach_lwt_bpf(prefix.parse().unwrap(), LwtBpfAttachment { hook: LwtHook::Xmit, prog });
}

/// One point of the Figure 4 sweep.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// CPE mode.
    pub mode: Fig4Mode,
    /// UDP payload size in bytes.
    pub payload: usize,
    /// Aggregated goodput measured at the receiving host, in Mbps.
    pub goodput_mbps: f64,
}

/// Runs one Figure 4 point: a 1 Gbps UDP flow of `payload`-byte datagrams
/// through the CPE for `duration_ns` of simulated time.
pub fn run_fig4_point(mode: Fig4Mode, payload: usize, duration_ns: u64, seed: u64) -> Fig4Point {
    let mut topo =
        build_topology(LinkConfig::gigabit(), LinkConfig::gigabit(), CpuProfile::turris_omnia(), seed);
    let port = 5001;
    match mode {
        Fig4Mode::PlainForwarding => {}
        Fig4Mode::KernelDecap => {
            // The aggregation box encapsulates all downstream traffic
            // towards the CPE's link-0 SID (static seg6 transit behaviour).
            let dp = &mut topo.sim.node_mut(topo.agg).datapath;
            dp.add_transit(
                "2001:db8:2::/48".parse().unwrap(),
                TransitBehaviour::encap_through(&[addrs::cpe_sid(0)]),
            );
        }
        Fig4Mode::EbpfWrr => {
            // Upstream: the CPE schedules its own traffic over both links
            // towards the aggregation box, which decapsulates. The
            // interpreter tier models the paper's JIT-less ARM32 CPE.
            install_wrr(
                &mut topo.sim,
                topo.cpe,
                "2001:db8:1::/48",
                (addrs::agg_sid(0), addrs::agg_sid(1)),
                (1, 1),
                ebpf_vm::ExecTier::Interp,
            );
        }
    }
    // Source and sink depend on the direction.
    let (src_node, src_addr, dst_addr, sink_node) = match mode {
        Fig4Mode::EbpfWrr => (topo.s2, addrs::s2(), addrs::s1(), topo.s1),
        _ => (topo.s1, addrs::s1(), addrs::s2(), topo.s2),
    };
    let source = UdpFlowSource::new(src_addr, dst_addr, port, payload, 1_000_000_000, duration_ns);
    topo.sim.add_app(src_node, Box::new(source));
    topo.sim.run_until(duration_ns + 200_000_000);
    let sink = topo.sim.node(sink_node).sink(port);
    Fig4Point { mode, payload, goodput_mbps: sink.goodput_bps() / 1e6 }
}

/// Runs the whole Figure 4 sweep.
pub fn run_fig4(payloads: &[usize], duration_ns: u64) -> Vec<Fig4Point> {
    let mut points = Vec::new();
    for mode in Fig4Mode::all() {
        for &payload in payloads {
            points.push(run_fig4_point(mode, payload, duration_ns, 0xf164));
        }
    }
    points
}

/// The hybrid-access link pair of §4.2: 50 Mbps with a 30 ms RTT (±5 ms)
/// and 30 Mbps with a 5 ms RTT (±2 ms). One-way values are half the RTT.
pub fn hybrid_access_links() -> (LinkConfig, LinkConfig) {
    (
        // Queues are sized proportionally to the link rates so both overflow
        // at a similar queueing delay (~20 ms), as BDP-sized buffers would.
        LinkConfig::new(50_000_000, 15).with_jitter_ns(2_500_000).with_queue_bytes(128 * 1024),
        LinkConfig::new(30_000_000, 2).with_jitter_ns(1_000_000).with_queue_bytes(77 * 1024),
    )
}

/// Result of one TCP hybrid-access run.
#[derive(Debug, Clone)]
pub struct TcpRunResult {
    /// Whether the delay compensation was applied.
    pub compensated: bool,
    /// Number of parallel connections.
    pub flows: usize,
    /// Aggregated goodput at the receiver, in Mbps.
    pub goodput_mbps: f64,
    /// Extra delay applied on the fast path (0 when not compensated), ns.
    pub compensation_ns: u64,
    /// Out-of-order segments seen by the receivers.
    pub out_of_order: u64,
}

/// Measures the one-way delay of each A→M path by sending one probe over
/// each link and timing its arrival at the client, reproducing the TWD
/// measurement the paper's daemon performs.
pub fn measure_path_delays(seed: u64) -> (u64, u64) {
    // One probe per path samples the jitter, not the path: with +/- 2.5 ms
    // of jitter a single sample can misestimate the skew by several
    // milliseconds, which is enough residual reordering to defeat the
    // compensation. Like the paper's daemon, probe each path repeatedly
    // (spaced beyond the jitter correlation time) and keep the minimum,
    // which converges on the propagation delay.
    const PROBES: u16 = 5;
    let (link0, link1) = hybrid_access_links();
    let mut topo = build_topology(link0, link1, CpuProfile::turris_omnia(), seed);
    for probe in 0..PROBES {
        let inject_ns = 1_000_000 + u64::from(probe) * 50_000_000;
        for path in 0..2u16 {
            let inner = build_ipv6_udp_packet(
                addrs::agg(),
                addrs::s2(),
                7000,
                7700 + path * 100 + probe,
                &[0u8; 32],
                64,
            );
            let mut packet = inner.data().to_vec();
            let srh = SegmentRoutingHeader::from_path(proto::IPV6, &[addrs::cpe_sid(path as usize)]);
            srv6_ops::push_srh_encap(&mut packet, &srh.to_bytes(), addrs::agg())
                .expect("probe encapsulation");
            topo.sim.inject_at(inject_ns, topo.agg, PacketBuf::from_slice(&packet));
        }
    }
    topo.sim.run_until(2 * NS_PER_SEC);
    let owd = |base: u16| {
        (0..PROBES)
            .map(|probe| {
                let inject_ns = 1_000_000 + u64::from(probe) * 50_000_000;
                topo.sim.node(topo.s2).sink(base + probe).first_arrival_ns.saturating_sub(inject_ns)
            })
            .min()
            .unwrap_or(0)
    };
    (owd(7700), owd(7800))
}

/// Runs the §4.2 TCP experiment: `flows` parallel bulk transfers from S1 to
/// S2 through the WRR-scheduled hybrid links, with or without delay
/// compensation. Returns the aggregated goodput.
pub fn run_tcp(compensated: bool, flows: usize, duration_ns: u64, seed: u64) -> TcpRunResult {
    let (link0, link1) = hybrid_access_links();
    let mut topo = build_topology(link0, link1, CpuProfile::turris_omnia(), seed);
    // Downstream WRR on the aggregation box, weights matching the 50/30
    // capacities.
    install_wrr(
        &mut topo.sim,
        topo.agg,
        "2001:db8:2::/48",
        (addrs::cpe_sid(0), addrs::cpe_sid(1)),
        (5, 3),
        ebpf_vm::ExecTier::best_supported(),
    );

    // Delay compensation: measure both paths, then delay the faster one.
    let mut compensation_ns = 0;
    if compensated {
        let (owd0, owd1) = measure_path_delays(seed ^ 0x5a5a);
        let comp = compute_compensation(2 * owd0, 2 * owd1);
        compensation_ns = comp.extra_delay_ns;
        let link = topo.links[comp.delay_path];
        topo.sim.set_link_extra_delay(link, topo.agg, comp.extra_delay_ns);
    }

    let mut sender_handles = Vec::new();
    let mut receiver_handles = Vec::new();
    for flow in 0..flows {
        let port = 5201 + flow as u16;
        // The sender's RACK-style reordering window (srtt/4, as in Linux)
        // is what separates the two runs: the uncompensated path skew keeps
        // gaps open past the window and triggers collapse-inducing fast
        // retransmits, while compensated runs only see short jitter gaps.
        let (sender, sender_stats) = TcpBulkSender::new(
            addrs::s1(),
            addrs::s2(),
            40_000 + flow as u16,
            port,
            u64::MAX / 2,
            duration_ns,
        );
        let (receiver, receiver_stats) = TcpBulkReceiver::new(addrs::s2(), port);
        topo.sim.add_app(topo.s1, Box::new(sender));
        topo.sim.add_app(topo.s2, Box::new(receiver));
        sender_handles.push(sender_stats);
        receiver_handles.push(receiver_stats);
    }
    topo.sim.run_until(duration_ns);

    let mut goodput = 0.0;
    let mut out_of_order = 0;
    for handle in &receiver_handles {
        let stats = handle.lock();
        goodput += stats.delivered_bytes as f64 * 8.0 / (duration_ns as f64 / 1e9);
        out_of_order += stats.out_of_order_segments;
    }
    TcpRunResult { compensated, flows, goodput_mbps: goodput / 1e6, compensation_ns, out_of_order }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_forwards_plain_traffic_end_to_end() {
        let mut topo =
            build_topology(LinkConfig::gigabit(), LinkConfig::gigabit(), CpuProfile::unconstrained(), 1);
        let pkt = build_ipv6_udp_packet(addrs::s1(), addrs::s2(), 1, 5001, &[0u8; 64], 64);
        topo.sim.inject_at(0, topo.s1, pkt);
        topo.sim.run_to_completion();
        assert_eq!(topo.sim.node(topo.s2).sink(5001).packets, 1);
    }

    #[test]
    fn kernel_decap_mode_delivers_decapsulated_packets() {
        let point = run_fig4_point(Fig4Mode::KernelDecap, 600, 20_000_000, 7);
        assert!(point.goodput_mbps > 10.0, "goodput {}", point.goodput_mbps);
    }

    #[test]
    fn wrr_mode_uses_both_links() {
        let mut topo =
            build_topology(LinkConfig::gigabit(), LinkConfig::gigabit(), CpuProfile::unconstrained(), 3);
        install_wrr(
            &mut topo.sim,
            topo.cpe,
            "2001:db8:1::/48",
            (addrs::agg_sid(0), addrs::agg_sid(1)),
            (1, 1),
            ebpf_vm::ExecTier::best_supported(),
        );
        for i in 0..20u64 {
            let pkt = build_ipv6_udp_packet(addrs::s2(), addrs::s1(), 1, 6001, &[0u8; 200], 64);
            topo.sim.inject_at(i * 100_000, topo.s2, pkt);
        }
        topo.sim.run_to_completion();
        assert_eq!(topo.sim.node(topo.s1).sink(6001).packets, 20);
        let tx0 = topo.sim.link(topo.links[0]).state_from(topo.cpe).tx_packets;
        let tx1 = topo.sim.link(topo.links[1]).state_from(topo.cpe).tx_packets;
        assert!(tx0 > 0 && tx1 > 0, "per-link packets {tx0}/{tx1}");
    }

    #[test]
    fn figure4_orders_the_three_curves() {
        // A single payload size is enough to check the ordering; the full
        // sweep runs in the benchmark harness.
        let duration = 30_000_000;
        let plain = run_fig4_point(Fig4Mode::PlainForwarding, 800, duration, 11).goodput_mbps;
        let decap = run_fig4_point(Fig4Mode::KernelDecap, 800, duration, 11).goodput_mbps;
        let wrr = run_fig4_point(Fig4Mode::EbpfWrr, 800, duration, 11).goodput_mbps;
        assert!(plain > decap, "plain {plain} vs decap {decap}");
        assert!(decap > wrr, "decap {decap} vs wrr {wrr}");
        assert!(wrr > 10.0, "wrr {wrr}");
    }

    #[test]
    fn path_delay_measurement_reflects_the_asymmetry() {
        let (owd0, owd1) = measure_path_delays(21);
        // Path 0 has ~15 ms one-way delay, path 1 ~2 ms.
        assert!(owd0 > owd1 + 5_000_000, "owd0 {owd0} owd1 {owd1}");
    }

    #[test]
    fn delay_compensation_restores_tcp_goodput() {
        let duration = 6 * NS_PER_SEC;
        let naive = run_tcp(false, 1, duration, 31);
        let compensated = run_tcp(true, 1, duration, 31);
        assert!(naive.out_of_order > 0);
        assert!(compensated.compensation_ns > 5_000_000);
        assert!(
            compensated.goodput_mbps > naive.goodput_mbps * 2.0,
            "naive {} vs compensated {}",
            naive.goodput_mbps,
            compensated.goodput_mbps
        );
        assert!(naive.goodput_mbps < 20.0, "naive {}", naive.goodput_mbps);
        assert!(compensated.goodput_mbps > 20.0, "compensated {}", compensated.goodput_mbps);
    }
}
