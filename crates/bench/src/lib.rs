//! # bench — the experiment harness
//!
//! Scenario builders and measurement routines shared by the Criterion
//! benches and by the `figures` binary, one per element of the paper's
//! evaluation:
//!
//! * [`fig2`] — the endpoint-function forwarding microbenchmark (Figure 2
//!   and the §3.2 JIT factor);
//! * [`fig3`] — the delay-monitoring overhead benchmark (Figure 3);
//! * [`hybrid`] — the hybrid-access simulation (Figure 4 and the §4.2 TCP
//!   numbers).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fig2;
pub mod fig3;
pub mod hybrid;

use std::time::Instant;

/// Runs a timing-sensitive check up to `attempts` times, passing if any
/// attempt returns `Ok`. Relative-rate assertions (fig2/fig3 orderings
/// with a few-percent tolerance) measure windows of a few milliseconds; a
/// scheduler preemption landing inside one window flips the ratio on a
/// loaded single-core host. Retrying the *whole measurement* keeps the
/// thresholds strict while making a persistent regression — which fails
/// every attempt — still fail the test.
#[cfg(test)]
pub(crate) fn assert_eventually(attempts: usize, check: impl Fn() -> Result<(), String>) {
    let mut last = String::new();
    for _ in 0..attempts.max(1) {
        match check() {
            Ok(()) => return,
            Err(err) => last = err,
        }
    }
    panic!("failed {attempts} consecutive measurement attempts: {last}");
}

/// Measures how many times `iteration` can run per second, by running it
/// `count` times and timing the whole batch with a monotonic clock. Returns
/// (rate per second, mean nanoseconds per iteration).
pub fn measure_rate(count: usize, mut iteration: impl FnMut()) -> (f64, f64) {
    // A short warm-up so one-time allocations do not pollute the figure.
    for _ in 0..count.min(1_000) {
        iteration();
    }
    let start = Instant::now();
    for _ in 0..count {
        iteration();
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() as f64 / count as f64;
    (1e9 / ns, ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_rate_returns_consistent_values() {
        let mut counter = 0u64;
        let (rate, ns) = measure_rate(10_000, || counter = counter.wrapping_add(1));
        assert!(rate > 0.0);
        assert!(ns > 0.0);
        assert!((rate - 1e9 / ns).abs() / rate < 1e-6);
    }
}
