//! A counting global allocator for zero-allocation regression tests.
//!
//! Only compiled under the test-only `alloc-counter` crate feature. A test
//! binary installs it with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: seg6_core::alloc_counter::CountingAllocator =
//!     seg6_core::alloc_counter::CountingAllocator;
//! ```
//!
//! and then asserts that a hot-path section performed no allocations via
//! [`thread_allocations`] (this thread only — immune to parallel tests) or
//! [`global_allocations`] (process-wide — for workloads that span worker
//! threads).

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A [`System`]-backed allocator that counts every allocation (including
/// reallocations that grow a buffer). Frees are not counted — the tests
/// care about allocation pressure, not balance.
pub struct CountingAllocator;

fn count() {
    GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    // `try_with` keeps the allocator safe during thread teardown, when the
    // thread-local may already be gone.
    let _ = THREAD_ALLOCS.try_with(|n| n.set(n.get() + 1));
}

// SAFETY: defers all allocation to `System`; the counters touch no
// allocator state.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocations performed by the current thread since it started.
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(|n| n.get())
}

/// Allocations performed by the whole process since start.
pub fn global_allocations() -> u64 {
    GLOBAL_ALLOCS.load(Ordering::Relaxed)
}
