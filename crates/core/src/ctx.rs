//! The context structure exposed to LWT and seg6local eBPF programs.
//!
//! Kernel LWT-BPF programs receive a `struct __sk_buff *`; this module
//! defines the equivalent fixed layout our programs see. The first two
//! fields are the packet `data` / `data_end` pointers (at the offsets the
//! `ebpf-vm` verifier expects), followed by the scalar metadata the use
//! cases read: packet length, protocol, mark, ingress interface and the RX
//! software timestamp that `End.DM` needs.

use crate::skb::Skb;
use ebpf_vm::vm::PKT_BASE;

/// EtherType of IPv6, the only protocol the LWT hooks see here.
pub const ETH_P_IPV6: u32 = 0x86dd;

/// Byte offsets of the context fields, usable from eBPF programs.
pub mod offsets {
    /// `data` pointer (u64).
    pub const DATA: i16 = 0;
    /// `data_end` pointer (u64).
    pub const DATA_END: i16 = 8;
    /// Packet length in bytes (u32).
    pub const LEN: i16 = 16;
    /// Protocol / EtherType (u32).
    pub const PROTOCOL: i16 = 20;
    /// Mark (u32), writable by programs.
    pub const MARK: i16 = 24;
    /// Ingress interface index (u32).
    pub const INGRESS_IFINDEX: i16 = 28;
    /// RX software timestamp in nanoseconds (u64).
    pub const TSTAMP: i16 = 32;
    /// Scratch area `cb[0..20]`, preserved across the invocation (20 bytes).
    pub const CB: i16 = 40;
    /// Total size of the context structure.
    pub const SIZE: usize = 64;
}

/// Builds the context byte buffer for one program invocation.
pub fn build_context(skb: &Skb) -> Vec<u8> {
    let mut ctx = Vec::new();
    build_context_into(skb, &mut ctx);
    ctx
}

/// Builds the context into a reusable buffer — the per-packet hot path
/// keeps one in its scratch state instead of allocating per invocation.
pub fn build_context_into(skb: &Skb, ctx: &mut Vec<u8>) {
    ctx.clear();
    ctx.resize(offsets::SIZE, 0);
    write_u64(ctx, offsets::DATA, PKT_BASE);
    write_u64(ctx, offsets::DATA_END, PKT_BASE + skb.len() as u64);
    write_u32(ctx, offsets::LEN, skb.len() as u32);
    write_u32(ctx, offsets::PROTOCOL, ETH_P_IPV6);
    write_u32(ctx, offsets::MARK, skb.mark);
    write_u32(ctx, offsets::INGRESS_IFINDEX, skb.ingress_ifindex);
    write_u64(ctx, offsets::TSTAMP, skb.rx_timestamp_ns);
}

/// Re-synchronises the `data_end` and `len` fields after a helper changed
/// the packet size (SRH growth/shrink, encapsulation, decapsulation).
pub fn refresh_packet_len(ctx: &mut [u8], new_len: usize) {
    write_u64(ctx, offsets::DATA_END, PKT_BASE + new_len as u64);
    write_u32(ctx, offsets::LEN, new_len as u32);
}

/// Copies back the fields a program may legitimately modify (the mark and
/// the cb scratch area are the only ones we honour).
pub fn read_back(ctx: &[u8], skb: &mut Skb) {
    skb.mark = read_u32(ctx, offsets::MARK);
}

/// Reads the mark field from a context buffer.
pub fn read_mark(ctx: &[u8]) -> u32 {
    read_u32(ctx, offsets::MARK)
}

fn write_u64(ctx: &mut [u8], off: i16, value: u64) {
    let off = off as usize;
    ctx[off..off + 8].copy_from_slice(&value.to_le_bytes());
}

fn write_u32(ctx: &mut [u8], off: i16, value: u32) {
    let off = off as usize;
    ctx[off..off + 4].copy_from_slice(&value.to_le_bytes());
}

fn read_u32(ctx: &[u8], off: i16) -> u32 {
    let off = off as usize;
    u32::from_le_bytes([ctx[off], ctx[off + 1], ctx[off + 2], ctx[off + 3]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::PacketBuf;

    #[test]
    fn context_layout_matches_offsets() {
        let mut skb = Skb::received(PacketBuf::from_slice(&[0u8; 100]), 42_000, 3);
        skb.mark = 7;
        let ctx = build_context(&skb);
        assert_eq!(ctx.len(), offsets::SIZE);
        assert_eq!(u64::from_le_bytes(ctx[0..8].try_into().unwrap()), PKT_BASE);
        assert_eq!(u64::from_le_bytes(ctx[8..16].try_into().unwrap()), PKT_BASE + 100);
        assert_eq!(u32::from_le_bytes(ctx[16..20].try_into().unwrap()), 100);
        assert_eq!(u32::from_le_bytes(ctx[20..24].try_into().unwrap()), ETH_P_IPV6);
        assert_eq!(read_mark(&ctx), 7);
        assert_eq!(u32::from_le_bytes(ctx[28..32].try_into().unwrap()), 3);
        assert_eq!(u64::from_le_bytes(ctx[32..40].try_into().unwrap()), 42_000);
    }

    #[test]
    fn refresh_packet_len_updates_bounds() {
        let skb = Skb::new(PacketBuf::from_slice(&[0u8; 10]));
        let mut ctx = build_context(&skb);
        refresh_packet_len(&mut ctx, 50);
        assert_eq!(u64::from_le_bytes(ctx[8..16].try_into().unwrap()), PKT_BASE + 50);
        assert_eq!(u32::from_le_bytes(ctx[16..20].try_into().unwrap()), 50);
    }

    #[test]
    fn read_back_honours_mark_changes() {
        let mut skb = Skb::new(PacketBuf::from_slice(&[0u8; 10]));
        let mut ctx = build_context(&skb);
        ctx[offsets::MARK as usize..offsets::MARK as usize + 4].copy_from_slice(&99u32.to_le_bytes());
        read_back(&ctx, &mut skb);
        assert_eq!(skb.mark, 99);
    }

    #[test]
    fn data_offsets_agree_with_the_vm_convention() {
        assert_eq!(i64::from(offsets::DATA), ebpf_vm::vm::CTX_OFF_DATA);
        assert_eq!(i64::from(offsets::DATA_END), ebpf_vm::vm::CTX_OFF_DATA_END);
        assert!(offsets::SIZE as i64 <= ebpf_vm::verifier::MAX_CTX_SIZE);
    }
}
