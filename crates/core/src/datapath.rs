//! The per-node SRv6 datapath: ties the FIB, the seg6local My-SID table,
//! the seg6 transit behaviours and the BPF LWT hooks together, mirroring
//! the order in which the Linux IPv6 layer consults them.
//!
//! One [`Seg6Datapath`] instance is what a router node in `simnet` runs for
//! every received packet, and what the Figure 2 / Figure 3 benchmarks drive
//! directly (the lab in §3.2 measures exactly this single-router, single
//! core forwarding path).

use crate::fib::{flow_hash, FibCache, LookupResult, Nexthop, RouterTables, TableId, MAIN_TABLE};
use crate::lwt_bpf::{run_lwt_bpf, LwtBpfAttachment, LwtBpfTable, LwtHook};
use crate::scratch::RunScratch;
use crate::seg6local::{apply_action, ActionCtx, LocalSidTable, Seg6LocalAction};
use crate::skb::{RouteOverride, Skb};
use crate::srv6_ops;
use crate::transit::{apply_transit, TransitBehaviour, TransitTable};
use crate::verdict::{ActionOutcome, DropReason, Verdict};
use ebpf_vm::helpers::HelperRegistry;
use netpkt::{Ipv6Header, Ipv6Prefix};
use std::collections::HashMap;
use std::net::Ipv6Addr;
use std::sync::Arc;

/// Counters maintained by the datapath.
#[derive(Debug, Default, Clone)]
pub struct DatapathStats {
    /// Packets handed to [`Seg6Datapath::process`].
    pub received: u64,
    /// Packets that left with a [`Verdict::Forward`].
    pub forwarded: u64,
    /// Packets delivered to the local host stack.
    pub local_delivered: u64,
    /// Packets dropped, by reason.
    pub dropped: HashMap<DropReason, u64>,
    /// seg6local actions executed.
    pub seg6local_invocations: u64,
    /// End.BPF / LWT-BPF programs executed.
    pub bpf_invocations: u64,
    /// Transit behaviours (SRH insertions/encapsulations) applied.
    pub transit_applied: u64,
}

impl DatapathStats {
    /// Total number of dropped packets.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Number of packets dropped for `reason`.
    pub fn dropped_for(&self, reason: DropReason) -> u64 {
        self.dropped.get(&reason).copied().unwrap_or(0)
    }

    /// Counts one verdict into the forwarded/delivered/dropped counters.
    fn count_verdict(&mut self, verdict: &Verdict) {
        match verdict {
            Verdict::Forward { .. } => self.forwarded += 1,
            Verdict::LocalDeliver => self.local_delivered += 1,
            Verdict::Drop(reason) => *self.dropped.entry(*reason).or_insert(0) += 1,
        }
    }

    /// Records one processed packet's outcome — the same accounting
    /// [`Seg6Datapath`] performs internally, exposed for consumers that
    /// execute packets elsewhere (worker-pool shard forks) but keep an
    /// aggregate node-level view. Keeping this here means a new counter or
    /// work class is added in exactly one place.
    pub fn record(&mut self, verdict: &Verdict, work: &WorkSummary) {
        self.received += 1;
        if work.seg6local {
            self.seg6local_invocations += 1;
        }
        if work.bpf {
            self.bpf_invocations += 1;
        }
        if work.transit {
            self.transit_applied += 1;
        }
        self.count_verdict(verdict);
    }
}

/// What the datapath did to one packet of a batch, summarised as the work
/// classes CPU cost models charge for (the simulator's `CpuProfile` prices
/// exactly these). Derived per packet from the statistics deltas, so a
/// batch consumer no longer has to wrap every packet in its own stats
/// snapshot.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkSummary {
    /// A seg6local action ran.
    pub seg6local: bool,
    /// An eBPF program ran (End.BPF or an LWT hook).
    pub bpf: bool,
    /// A transit behaviour (SRH insertion/encapsulation) was applied.
    pub transit: bool,
}

/// The per-packet result of [`Seg6Datapath::process_batch_verdicts`]: the
/// forwarding verdict plus the work the packet cost. This is the batch
/// emit surface the worker-pool runtime and the simulator consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchVerdict {
    /// The forwarding verdict, identical to what [`Seg6Datapath::process`]
    /// returns for the same packet.
    pub verdict: Verdict,
    /// The work classes this packet exercised.
    pub work: WorkSummary,
}

/// How a destination address dispatches inside the datapath. Classification
/// depends only on the destination and the (batch-constant) tables, which
/// is what lets [`Seg6Datapath::process_batch`] compute it once per
/// destination run instead of once per packet. Every variant **borrows**
/// from the configuration tables — classifying a packet clones nothing,
/// however large the attached behaviour (program `Arc`s, SRH templates) is.
enum Dispatch<'a> {
    /// A local SID matched: run its seg6local behaviour.
    Seg6Local {
        /// The matched SID (source address of pushed encapsulations).
        local_sid: Option<Ipv6Addr>,
        /// The behaviour to execute.
        action: &'a Seg6LocalAction,
    },
    /// Local delivery, possibly through an lwt_in program.
    LocalIn(Option<&'a LwtBpfAttachment>),
    /// A BPF LWT xmit program is attached to the route.
    Xmit(&'a LwtBpfAttachment),
    /// A static seg6 transit behaviour applies.
    Transit(&'a TransitBehaviour),
    /// Plain FIB forwarding.
    Forward,
}

/// Decides how `dst` dispatches, in the order the IPv6 receive path
/// consults its tables: seg6local SIDs, local delivery, LWT xmit programs,
/// seg6 transit behaviours, then the plain FIB. A free function over the
/// individual tables (rather than a `&self` method) so the returned
/// borrows stay disjoint from the mutable state (`stats`, `scratch`) the
/// execution step needs.
fn classify_dst<'a>(
    local_sids: &'a LocalSidTable,
    lwt_bpf: &'a LwtBpfTable,
    transit: &'a TransitTable,
    local_addr: Ipv6Addr,
    host_addrs: &[Ipv6Addr],
    dst: Ipv6Addr,
) -> Dispatch<'a> {
    if let Some((sid_prefix, action)) = local_sids.lookup(dst) {
        let local_sid = (sid_prefix.len() == 128).then(|| sid_prefix.addr());
        return Dispatch::Seg6Local { local_sid, action };
    }
    if dst == local_addr || host_addrs.contains(&dst) {
        return Dispatch::LocalIn(lwt_bpf.lookup(dst, LwtHook::In));
    }
    if let Some(attachment) = lwt_bpf.lookup(dst, LwtHook::Xmit) {
        return Dispatch::Xmit(attachment);
    }
    if let Some(behaviour) = transit.lookup(dst) {
        return Dispatch::Transit(behaviour);
    }
    Dispatch::Forward
}

/// A one-entry cache of the last FIB lookup, scoped to one batch (the
/// tables cannot change while `process_batch` holds `&mut self`). Only
/// flow-hash-invariant results — single-path routes and misses — are
/// cached; ECMP routes are re-selected per packet, keeping multipath
/// spreading intact. This is the batch-scoped analogue of the kernel's
/// dst cache.
#[derive(Default)]
struct RouteCache {
    entry: Option<(u32, Ipv6Addr, Option<LookupResult>)>,
}

/// The SRv6 datapath of one node.
pub struct Seg6Datapath {
    /// Address identifying this node (used as encapsulation source and as a
    /// local-delivery address).
    pub local_addr: Ipv6Addr,
    /// Additional addresses considered local.
    pub host_addrs: Vec<Ipv6Addr>,
    /// FIB tables (shared with helper environments).
    pub tables: Arc<RouterTables>,
    /// seg6local My-SID table.
    pub local_sids: LocalSidTable,
    /// seg6 transit behaviours.
    pub transit: TransitTable,
    /// BPF LWT attachments.
    pub lwt_bpf: LwtBpfTable,
    /// Helper registry used for every program this node runs.
    pub helpers: HelperRegistry,
    /// Counters.
    pub stats: DatapathStats,
    /// Logical CPU this datapath instance runs on. The multi-queue runtime
    /// gives every worker shard its own instance with its own id, which is
    /// what eBPF programs see in `bpf_get_smp_processor_id` and what
    /// per-CPU maps index.
    pub cpu_id: u32,
    /// Reusable per-packet buffers (VM state, context, packet working
    /// copy) — the reason the steady state allocates nothing.
    scratch: RunScratch,
    /// This instance's lock-free snapshot of the FIB tables, refreshed
    /// from `tables` only when routes change.
    fib: FibCache,
}

impl Seg6Datapath {
    /// Creates a datapath for a node addressed by `local_addr`, with the
    /// SRv6 helper registry installed.
    pub fn new(local_addr: Ipv6Addr) -> Self {
        Seg6Datapath {
            local_addr,
            host_addrs: Vec::new(),
            tables: Arc::new(RouterTables::new()),
            local_sids: LocalSidTable::new(),
            transit: TransitTable::new(),
            lwt_bpf: LwtBpfTable::new(),
            helpers: crate::helpers::seg6_helper_registry(),
            stats: DatapathStats::default(),
            cpu_id: 0,
            scratch: RunScratch::new(),
            fib: FibCache::new(),
        }
    }

    /// Pins this datapath instance to logical CPU `cpu` (builder form).
    pub fn on_cpu(mut self, cpu: u32) -> Self {
        self.cpu_id = cpu;
        self
    }

    /// Clones this datapath's configuration into a new instance pinned to
    /// logical CPU `cpu` — what the persistent worker pool does once per
    /// shard when a node's single configured datapath must run on N
    /// queues. The FIB tables stay shared (they are behind an `Arc`, and
    /// internally synchronised), so routes installed later reach every
    /// fork. SID, transit and LWT tables are snapshots whose loaded
    /// programs and maps remain shared handles — exactly how kernel CPUs
    /// share map memory while per-CPU maps give each its own slot.
    /// Statistics start at zero.
    pub fn fork_for_cpu(&self, cpu: u32) -> Seg6Datapath {
        Seg6Datapath {
            local_addr: self.local_addr,
            host_addrs: self.host_addrs.clone(),
            tables: Arc::clone(&self.tables),
            local_sids: self.local_sids.clone(),
            transit: self.transit.clone(),
            lwt_bpf: self.lwt_bpf.clone(),
            helpers: self.helpers.clone(),
            stats: DatapathStats::default(),
            cpu_id: cpu,
            scratch: RunScratch::new(),
            fib: FibCache::new(),
        }
    }

    /// Adds an address the node answers for (local delivery).
    pub fn add_host_addr(&mut self, addr: Ipv6Addr) {
        if !self.host_addrs.contains(&addr) {
            self.host_addrs.push(addr);
        }
    }

    /// Installs a route in the main table.
    pub fn add_route(&mut self, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) {
        self.tables.insert_main(prefix, nexthops);
    }

    /// Installs a route in a specific table.
    pub fn add_route_in_table(&mut self, table: TableId, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) {
        self.tables.insert(table, prefix, nexthops);
    }

    /// Registers (or looks up) the VRF `name` on this node's tables and
    /// returns its [`TableId`] — the id to bind `End.T` / `End.DT6`
    /// behaviours to. Forks made with [`Seg6Datapath::fork_for_cpu`] share
    /// the tables `Arc`, so a VRF registered on any handle is visible to
    /// every shard.
    pub fn register_vrf(&self, name: &str) -> TableId {
        self.tables.register_vrf(name)
    }

    /// Installs a route in the VRF `name` (registering it on first use)
    /// and returns the VRF's table id.
    pub fn add_route_in_vrf(&mut self, name: &str, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) -> TableId {
        self.tables.insert_vrf(name, prefix, nexthops)
    }

    /// Binds a seg6local action to a SID.
    pub fn add_local_sid(&mut self, sid: Ipv6Prefix, action: Seg6LocalAction) {
        self.local_sids.insert(sid, action);
    }

    /// Installs a seg6 transit behaviour for traffic towards `prefix`.
    pub fn add_transit(&mut self, prefix: Ipv6Prefix, behaviour: TransitBehaviour) {
        self.transit.insert(prefix, behaviour);
    }

    /// Attaches a BPF LWT program to traffic towards `prefix`.
    pub fn attach_lwt_bpf(&mut self, prefix: Ipv6Prefix, attachment: LwtBpfAttachment) {
        self.lwt_bpf.insert(prefix, attachment);
    }

    /// Whether `dst` is one of this node's local addresses.
    pub fn is_local_addr(&self, dst: Ipv6Addr) -> bool {
        dst == self.local_addr || self.host_addrs.contains(&dst)
    }

    /// Processes one packet, as the IPv6 receive path would, and returns the
    /// forwarding verdict. `now_ns` is the current time (it drives
    /// `bpf_ktime_get_ns` and the `End.DM` timestamps).
    pub fn process(&mut self, skb: &mut Skb, now_ns: u64) -> Verdict {
        self.fib.refresh(&self.tables);
        self.stats.received += 1;
        let verdict = match Ipv6Header::parse(skb.packet.data()) {
            Err(_) => Verdict::Drop(DropReason::Malformed),
            Ok(header) => {
                let dispatch = classify_dst(
                    &self.local_sids,
                    &self.lwt_bpf,
                    &self.transit,
                    self.local_addr,
                    &self.host_addrs,
                    header.dst,
                );
                let mut routes = RouteCache::default();
                Exec {
                    local_addr: self.local_addr,
                    host_addrs: &self.host_addrs,
                    tables: &self.tables,
                    helpers: &self.helpers,
                    fib: &self.fib,
                    stats: &mut self.stats,
                    scratch: &mut self.scratch,
                    cpu: self.cpu_id,
                }
                .execute(&dispatch, skb, &header, now_ns, &mut routes)
            }
        };
        self.stats.count_verdict(&verdict);
        verdict
    }

    /// Processes a batch of packets, amortising the per-packet dispatch.
    ///
    /// The classification step (SID table, LWT attachment and transit
    /// lookups — all linear or longest-prefix scans) depends only on the
    /// destination address, so consecutive packets of one flow — exactly
    /// what RSS steering delivers to a worker shard — reuse the previous
    /// packet's classification instead of re-scanning every table. The
    /// verdicts come back in input order, and each packet's processing is
    /// byte-identical to what [`Seg6Datapath::process`] produces.
    pub fn process_batch(&mut self, skbs: &mut [Skb], now_ns: u64) -> Vec<Verdict> {
        self.process_batch_verdicts(skbs, now_ns).into_iter().map(|b| b.verdict).collect()
    }

    /// Like [`Seg6Datapath::process_batch`], but emits a [`BatchVerdict`]
    /// per packet: the verdict plus a [`WorkSummary`] of what the packet
    /// cost. Consumers that price CPU work per packet (the simulator, the
    /// worker pool's accounting) read the summary instead of diffing
    /// [`DatapathStats`] around every call.
    pub fn process_batch_verdicts(&mut self, skbs: &mut [Skb], now_ns: u64) -> Vec<BatchVerdict> {
        let mut verdicts = Vec::with_capacity(skbs.len());
        self.process_batch_verdicts_into(skbs, now_ns, &mut verdicts);
        verdicts
    }

    /// The allocation-free form of [`Seg6Datapath::process_batch_verdicts`]:
    /// verdicts are appended to a caller-owned buffer (the worker pool
    /// clears and reuses one per shard), so the steady state performs no
    /// heap allocation per packet **or per batch**. The `alloc-counter`
    /// test feature asserts exactly that.
    pub fn process_batch_verdicts_into(
        &mut self,
        skbs: &mut [Skb],
        now_ns: u64,
        out: &mut Vec<BatchVerdict>,
    ) {
        self.fib.refresh(&self.tables);
        out.reserve(skbs.len());
        let mut cached: Option<(Ipv6Addr, Dispatch<'_>)> = None;
        let mut routes = RouteCache::default();
        for skb in skbs.iter_mut() {
            self.stats.received += 1;
            let before =
                (self.stats.seg6local_invocations, self.stats.bpf_invocations, self.stats.transit_applied);
            let verdict = match Ipv6Header::parse(skb.packet.data()) {
                Err(_) => Verdict::Drop(DropReason::Malformed),
                Ok(header) => {
                    let hit = matches!(&cached, Some((dst, _)) if *dst == header.dst);
                    if !hit {
                        cached = Some((
                            header.dst,
                            classify_dst(
                                &self.local_sids,
                                &self.lwt_bpf,
                                &self.transit,
                                self.local_addr,
                                &self.host_addrs,
                                header.dst,
                            ),
                        ));
                    }
                    // The cached dispatch borrows the configuration tables
                    // only; the execution state (stats, scratch) is a
                    // disjoint set of fields, so no clone is needed.
                    let (_, dispatch) = cached.as_ref().expect("cache filled above");
                    Exec {
                        local_addr: self.local_addr,
                        host_addrs: &self.host_addrs,
                        tables: &self.tables,
                        helpers: &self.helpers,
                        fib: &self.fib,
                        stats: &mut self.stats,
                        scratch: &mut self.scratch,
                        cpu: self.cpu_id,
                    }
                    .execute(dispatch, skb, &header, now_ns, &mut routes)
                }
            };
            self.stats.count_verdict(&verdict);
            let work = WorkSummary {
                seg6local: self.stats.seg6local_invocations > before.0,
                bpf: self.stats.bpf_invocations > before.1,
                transit: self.stats.transit_applied > before.2,
            };
            out.push(BatchVerdict { verdict, work });
        }
    }
}

/// The mutable execution state for one packet, split off the configuration
/// tables the cached [`Dispatch`] borrows. Built per packet from disjoint
/// `Seg6Datapath` fields — it is all references, constructing it is free.
struct Exec<'e> {
    local_addr: Ipv6Addr,
    host_addrs: &'e [Ipv6Addr],
    tables: &'e Arc<RouterTables>,
    helpers: &'e HelperRegistry,
    fib: &'e FibCache,
    stats: &'e mut DatapathStats,
    scratch: &'e mut RunScratch,
    cpu: u32,
}

impl Exec<'_> {
    fn is_local_addr(&self, dst: Ipv6Addr) -> bool {
        dst == self.local_addr || self.host_addrs.contains(&dst)
    }

    fn execute(
        &mut self,
        dispatch: &Dispatch<'_>,
        skb: &mut Skb,
        header: &Ipv6Header,
        now_ns: u64,
        routes: &mut RouteCache,
    ) -> Verdict {
        let fhash = flow_hash(header.src, header.dst, header.flow_label);
        match dispatch {
            Dispatch::Seg6Local { local_sid, action } => {
                self.stats.seg6local_invocations += 1;
                if matches!(action, Seg6LocalAction::EndBpf { .. }) {
                    self.stats.bpf_invocations += 1;
                }
                let actx = ActionCtx {
                    local_sid: local_sid.unwrap_or(header.dst),
                    tables: self.tables,
                    helpers: self.helpers,
                    now_ns,
                    cpu: self.cpu,
                };
                let outcome = apply_action(action, skb, &actx, self.scratch);
                self.resolve_outcome(outcome, skb, fhash, routes)
            }
            Dispatch::LocalIn(attachment) => {
                if let Some(attachment) = attachment {
                    self.stats.bpf_invocations += 1;
                    match run_lwt_bpf(
                        attachment,
                        skb,
                        self.local_addr,
                        self.tables,
                        self.helpers,
                        now_ns,
                        self.cpu,
                        self.scratch,
                    ) {
                        ActionOutcome::Drop(reason) => return Verdict::Drop(reason),
                        ActionOutcome::LocalDeliver | ActionOutcome::Forward { .. } => {}
                    }
                }
                Verdict::LocalDeliver
            }
            Dispatch::Xmit(attachment) => {
                self.stats.bpf_invocations += 1;
                let outcome = run_lwt_bpf(
                    attachment,
                    skb,
                    self.local_addr,
                    self.tables,
                    self.helpers,
                    now_ns,
                    self.cpu,
                    self.scratch,
                );
                if matches!(
                    &outcome,
                    ActionOutcome::Forward { route_override, .. } if !route_override.is_set()
                ) {
                    self.stats.transit_applied += 1;
                }
                self.resolve_outcome(outcome, skb, fhash, routes)
            }
            Dispatch::Transit(behaviour) => {
                self.stats.transit_applied += 1;
                let outcome = apply_transit(behaviour, skb, self.local_addr, self.scratch);
                self.resolve_outcome(outcome, skb, fhash, routes)
            }
            Dispatch::Forward => self.resolve_outcome(
                ActionOutcome::Forward { dst: header.dst, route_override: RouteOverride::default() },
                skb,
                fhash,
                routes,
            ),
        }
    }

    /// A FIB lookup through the batch-scoped [`RouteCache`], against this
    /// shard's lock-free snapshot. Results that cannot depend on the flow
    /// hash (single next hop, or no route) are remembered; ECMP results
    /// always re-select.
    fn lookup_cached(
        &self,
        routes: &mut RouteCache,
        table: u32,
        dst: Ipv6Addr,
        fhash: u64,
    ) -> Option<LookupResult> {
        if let Some((cached_table, cached_dst, result)) = &routes.entry {
            if *cached_table == table && *cached_dst == dst {
                return *result;
            }
        }
        let result = self.fib.lookup(table, dst, fhash);
        if result.as_ref().is_none_or(|r| r.ecmp_width == 1) {
            routes.entry = Some((table, dst, result));
        }
        result
    }

    /// Resolves an [`ActionOutcome`] into a final verdict: decrements the
    /// hop limit and performs whatever FIB lookup the outcome still needs.
    fn resolve_outcome(
        &mut self,
        outcome: ActionOutcome,
        skb: &mut Skb,
        fhash: u64,
        routes: &mut RouteCache,
    ) -> Verdict {
        let (dst, over) = match outcome {
            ActionOutcome::Drop(reason) => return Verdict::Drop(reason),
            ActionOutcome::LocalDeliver => return Verdict::LocalDeliver,
            ActionOutcome::Forward { dst, route_override } => (dst, route_override),
        };
        // A seg6local action may have re-targeted the packet at this very
        // node (e.g. the next SID is also ours after decapsulation).
        if self.is_local_addr(dst) && !over.is_set() {
            return Verdict::LocalDeliver;
        }
        match srv6_ops::decrement_hop_limit(skb.packet.data_mut()) {
            Ok(0) | Err(_) => return Verdict::Drop(DropReason::HopLimitExceeded),
            Ok(_) => {}
        }
        // Fully resolved override: nothing left to look up.
        if let (Some(nexthop), Some(oif)) = (over.nexthop, over.oif) {
            return Verdict::Forward { oif, neighbour: nexthop };
        }
        // Next hop known but not the interface: find the interface by
        // looking the next hop itself up.
        if let Some(nexthop) = over.nexthop {
            return match self.lookup_cached(routes, MAIN_TABLE, nexthop, fhash) {
                Some(result) => Verdict::Forward { oif: result.nexthop.oif, neighbour: nexthop },
                None => Verdict::Drop(DropReason::NoRoute),
            };
        }
        // Otherwise: ordinary lookup of the destination in the requested
        // table (End.T / End.DT6) or the main one.
        let table = over.table.unwrap_or(MAIN_TABLE);
        match self.lookup_cached(routes, table, dst, fhash) {
            Some(result) => {
                Verdict::Forward { oif: result.nexthop.oif, neighbour: result.nexthop.neighbour(dst) }
            }
            None => Verdict::Drop(DropReason::NoRoute),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf_vm::asm::assemble;
    use ebpf_vm::program::{load, Program, ProgramType};
    use netpkt::ipv6::proto;
    use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
    use netpkt::srh::SegmentRoutingHeader;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn router() -> Seg6Datapath {
        let mut dp = Seg6Datapath::new(addr("fc00::11"));
        dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::2"), 2)]);
        dp.add_route("2001:db8::/32".parse().unwrap(), vec![Nexthop::via(addr("fe80::3"), 3)]);
        dp
    }

    fn srv6_skb(path: &[&str]) -> Skb {
        let segments: Vec<Ipv6Addr> = path.iter().map(|s| addr(s)).collect();
        let srh = SegmentRoutingHeader::from_path(proto::UDP, &segments);
        Skb::new(build_srv6_udp_packet(addr("2001:db8::1"), &srh, 1000, 2000, &[0u8; 32], 64))
    }

    fn plain_skb(dst: &str) -> Skb {
        Skb::new(build_ipv6_udp_packet(addr("2001:db8::1"), addr(dst), 1, 2, &[0u8; 16], 64))
    }

    #[test]
    fn plain_forwarding_uses_the_fib_and_decrements_hop_limit() {
        let mut dp = router();
        let mut skb = plain_skb("fc00::42");
        let verdict = dp.process(&mut skb, 0);
        assert_eq!(verdict, Verdict::Forward { oif: 2, neighbour: addr("fe80::2") });
        let header = Ipv6Header::parse(skb.packet.data()).unwrap();
        assert_eq!(header.hop_limit, 63);
        assert_eq!(dp.stats.forwarded, 1);
    }

    #[test]
    fn unroutable_packets_are_dropped_and_counted() {
        let mut dp = router();
        let mut skb = plain_skb("3001::1");
        assert_eq!(dp.process(&mut skb, 0), Verdict::Drop(DropReason::NoRoute));
        assert_eq!(dp.stats.dropped_for(DropReason::NoRoute), 1);
        assert_eq!(dp.stats.total_dropped(), 1);
    }

    #[test]
    fn local_delivery_for_host_addresses() {
        let mut dp = router();
        dp.add_host_addr(addr("2001:db8::99"));
        let mut skb = plain_skb("2001:db8::99");
        assert_eq!(dp.process(&mut skb, 0), Verdict::LocalDeliver);
        let mut skb = plain_skb("fc00::11");
        assert_eq!(dp.process(&mut skb, 0), Verdict::LocalDeliver);
        assert_eq!(dp.stats.local_delivered, 2);
    }

    #[test]
    fn seg6local_end_is_invoked_for_matching_sids() {
        let mut dp = router();
        dp.add_local_sid("fc00::e1".parse().unwrap(), Seg6LocalAction::End);
        let mut skb = srv6_skb(&["fc00::e1", "fc00::22"]);
        let verdict = dp.process(&mut skb, 0);
        assert_eq!(verdict, Verdict::Forward { oif: 2, neighbour: addr("fe80::2") });
        assert_eq!(dp.stats.seg6local_invocations, 1);
        assert_eq!(dp.stats.bpf_invocations, 0);
        // The SRH was advanced: the packet's destination is now the next SID.
        let header = Ipv6Header::parse(skb.packet.data()).unwrap();
        assert_eq!(header.dst, addr("fc00::22"));
    }

    #[test]
    fn seg6local_end_bpf_counts_bpf_invocations() {
        let mut dp = router();
        let insns = assemble("mov64 r0, 0\nexit").unwrap();
        let prog = load(
            Program::new("end-bpf", ProgramType::LwtSeg6Local, insns),
            &std::collections::HashMap::new(),
            &dp.helpers,
        )
        .unwrap();
        dp.add_local_sid("fc00::e2".parse().unwrap(), Seg6LocalAction::EndBpf { prog });
        let mut skb = srv6_skb(&["fc00::e2", "fc00::22"]);
        assert!(dp.process(&mut skb, 0).is_forward());
        assert_eq!(dp.stats.bpf_invocations, 1);
        assert_eq!(dp.stats.seg6local_invocations, 1);
    }

    #[test]
    fn end_x_resolves_interface_through_the_nexthop_route() {
        let mut dp = router();
        dp.add_route("fe80::/64".parse().unwrap(), vec![Nexthop::direct(7)]);
        dp.add_local_sid("fc00::e3".parse().unwrap(), Seg6LocalAction::EndX { nexthop: addr("fe80::42") });
        let mut skb = srv6_skb(&["fc00::e3", "fc00::22"]);
        assert_eq!(dp.process(&mut skb, 0), Verdict::Forward { oif: 7, neighbour: addr("fe80::42") });
    }

    #[test]
    fn end_t_uses_the_requested_table() {
        let mut dp = router();
        dp.add_route_in_table(100, "fc00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::9"), 9)]);
        dp.add_local_sid("fc00::e4".parse().unwrap(), Seg6LocalAction::EndT { table: 100 });
        let mut skb = srv6_skb(&["fc00::e4", "fc00::22"]);
        assert_eq!(dp.process(&mut skb, 0), Verdict::Forward { oif: 9, neighbour: addr("fe80::9") });
    }

    #[test]
    fn end_t_routes_via_a_named_vrf_table() {
        let mut dp = router();
        let vrf = dp.add_route_in_vrf(
            "tenant-a",
            "fc00::/16".parse().unwrap(),
            vec![Nexthop::via(addr("fe80::a"), 10)],
        );
        assert_eq!(dp.register_vrf("tenant-a"), vrf, "registration is stable");
        dp.add_local_sid("fc00::e5".parse().unwrap(), Seg6LocalAction::end_t(vrf));
        let mut skb = srv6_skb(&["fc00::e5", "fc00::22"]);
        // The main table routes fc00::/16 via oif 2; the VRF wins because
        // End.T forwards through its table, not "the" FIB.
        assert_eq!(dp.process(&mut skb, 0), Verdict::Forward { oif: 10, neighbour: addr("fe80::a") });
    }

    #[test]
    fn end_dt6_decaps_and_looks_up_in_the_vrf_table() {
        let mut dp = router();
        let vrf = dp.add_route_in_vrf(
            "tenant-b",
            "2001:db8::/32".parse().unwrap(),
            vec![Nexthop::via(addr("fe80::b"), 11)],
        );
        dp.add_local_sid("fc00::d6".parse().unwrap(), Seg6LocalAction::end_dt6(vrf));
        // IPv6-in-IPv6 towards the End.DT6 SID; the inner destination is
        // routed in the VRF after decapsulation.
        let inner = build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::9"), 5, 6, &[0u8; 8], 64)
            .data()
            .to_vec();
        let mut packet = inner;
        let srh = SegmentRoutingHeader::from_path(proto::IPV6, &[addr("fc00::d6")]);
        crate::srv6_ops::push_srh_encap(&mut packet, &srh.to_bytes(), addr("fc00::99")).unwrap();
        let mut skb = Skb::new(netpkt::PacketBuf::from_slice(&packet));
        // Main would route 2001:db8::/32 via oif 3; the VRF must win.
        assert_eq!(dp.process(&mut skb, 0), Verdict::Forward { oif: 11, neighbour: addr("fe80::b") });
        // The packet left decapsulated (inner header on the wire).
        let header = Ipv6Header::parse(skb.packet.data()).unwrap();
        assert_eq!(header.dst, addr("2001:db8::9"));
    }

    #[test]
    fn vrf_registered_on_a_fork_is_visible_to_every_shard() {
        let dp = router();
        let fork_a = dp.fork_for_cpu(1);
        let mut fork_b = dp.fork_for_cpu(2);
        // Register + populate through one fork; route through another.
        let vrf = fork_a.register_vrf("shared-vrf");
        fork_a.tables.insert(vrf, "fc00::/16".parse().unwrap(), vec![Nexthop::direct(9)]);
        fork_b.add_local_sid("fc00::e6".parse().unwrap(), Seg6LocalAction::end_t(vrf));
        let mut skb = srv6_skb(&["fc00::e6", "fc00::22"]);
        assert_eq!(fork_b.process(&mut skb, 0), Verdict::Forward { oif: 9, neighbour: addr("fc00::22") });
    }

    #[test]
    fn transit_encap_applies_to_matching_traffic() {
        let mut dp = router();
        dp.add_transit(
            "2001:db8:1::/48".parse().unwrap(),
            TransitBehaviour::encap_through(&[addr("fc00::a"), addr("2001:db8:1::99")]),
        );
        let mut skb = plain_skb("2001:db8:1::99");
        let before = skb.len();
        let verdict = dp.process(&mut skb, 0);
        // The new destination fc00::a is routed through interface 2.
        assert_eq!(verdict, Verdict::Forward { oif: 2, neighbour: addr("fe80::2") });
        assert!(skb.len() > before);
        assert_eq!(dp.stats.transit_applied, 1);
        let parsed = netpkt::ParsedPacket::parse(skb.packet.data()).unwrap();
        assert_eq!(parsed.outer.dst, addr("fc00::a"));
        assert!(parsed.inner.is_some());
    }

    #[test]
    fn hop_limit_exhaustion_drops() {
        let mut dp = router();
        let mut skb =
            Skb::new(build_ipv6_udp_packet(addr("2001:db8::1"), addr("fc00::42"), 1, 2, &[0u8; 8], 1));
        assert_eq!(dp.process(&mut skb, 0), Verdict::Drop(DropReason::HopLimitExceeded));
    }

    #[test]
    fn malformed_packets_are_dropped() {
        let mut dp = router();
        let mut skb = Skb::new(netpkt::PacketBuf::from_slice(&[0u8; 10]));
        assert_eq!(dp.process(&mut skb, 0), Verdict::Drop(DropReason::Malformed));
    }

    /// A mixed batch covering every dispatch class, for the equivalence
    /// tests below.
    fn mixed_batch() -> Vec<Skb> {
        let mut batch = Vec::new();
        for _ in 0..3 {
            batch.push(srv6_skb(&["fc00::e1", "fc00::22"])); // seg6local End
            batch.push(srv6_skb(&["fc00::e2", "fc00::22"])); // seg6local End.BPF
            batch.push(plain_skb("fc00::42")); // plain forwarding
            batch.push(plain_skb("fc00::11")); // local delivery
            batch.push(plain_skb("3001::1")); // no route
            batch.push(plain_skb("2001:db8:1::9")); // transit encap
            batch.push(Skb::new(netpkt::PacketBuf::from_slice(&[0u8; 6]))); // malformed
        }
        batch
    }

    fn batch_router() -> Seg6Datapath {
        let mut dp = router();
        dp.add_local_sid("fc00::e1".parse().unwrap(), Seg6LocalAction::End);
        let insns = assemble("mov64 r0, 0\nexit").unwrap();
        let prog = load(
            Program::new("end-bpf", ProgramType::LwtSeg6Local, insns),
            &std::collections::HashMap::new(),
            &dp.helpers,
        )
        .unwrap();
        dp.add_local_sid("fc00::e2".parse().unwrap(), Seg6LocalAction::EndBpf { prog });
        dp.add_transit(
            "2001:db8:1::/48".parse().unwrap(),
            TransitBehaviour::encap_through(&[addr("fc00::a")]),
        );
        dp
    }

    #[test]
    fn process_batch_matches_per_packet_processing() {
        let mut dp_single = batch_router();
        let mut dp_batch = batch_router();

        let mut singles = mixed_batch();
        let single_verdicts: Vec<Verdict> = singles.iter_mut().map(|skb| dp_single.process(skb, 7)).collect();

        let mut batched = mixed_batch();
        let batch_verdicts = dp_batch.process_batch(&mut batched, 7);

        assert_eq!(single_verdicts, batch_verdicts);
        // The packets were rewritten identically too.
        for (single, batch) in singles.iter().zip(batched.iter()) {
            assert_eq!(single.packet.data(), batch.packet.data());
        }
        // And the statistics agree.
        assert_eq!(dp_single.stats.received, dp_batch.stats.received);
        assert_eq!(dp_single.stats.forwarded, dp_batch.stats.forwarded);
        assert_eq!(dp_single.stats.local_delivered, dp_batch.stats.local_delivered);
        assert_eq!(dp_single.stats.seg6local_invocations, dp_batch.stats.seg6local_invocations);
        assert_eq!(dp_single.stats.bpf_invocations, dp_batch.stats.bpf_invocations);
        assert_eq!(dp_single.stats.transit_applied, dp_batch.stats.transit_applied);
        assert_eq!(dp_single.stats.dropped, dp_batch.stats.dropped);
    }

    #[test]
    fn process_batch_of_one_flow_reuses_classification() {
        // Same-destination packets (what RSS steers to one worker) must
        // produce the same verdicts as individual processing.
        let mut dp = batch_router();
        let mut batch: Vec<Skb> = (0..16).map(|_| srv6_skb(&["fc00::e1", "fc00::22"])).collect();
        let verdicts = dp.process_batch(&mut batch, 0);
        assert!(verdicts.iter().all(|v| v.is_forward()));
        assert_eq!(dp.stats.seg6local_invocations, 16);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut dp = batch_router();
        assert!(dp.process_batch(&mut [], 0).is_empty());
        assert_eq!(dp.stats.received, 0);
    }

    #[test]
    fn on_cpu_sets_the_worker_id() {
        let dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(3);
        assert_eq!(dp.cpu_id, 3);
    }

    #[test]
    fn batch_verdicts_report_per_packet_work() {
        let mut dp = batch_router();
        let mut batch = vec![
            srv6_skb(&["fc00::e1", "fc00::22"]),                // seg6local End
            srv6_skb(&["fc00::e2", "fc00::22"]),                // seg6local End.BPF
            plain_skb("fc00::42"),                              // plain forwarding
            plain_skb("2001:db8:1::9"),                         // transit encap
            Skb::new(netpkt::PacketBuf::from_slice(&[0u8; 6])), // malformed
        ];
        let verdicts = dp.process_batch_verdicts(&mut batch, 0);
        let works: Vec<WorkSummary> = verdicts.iter().map(|b| b.work).collect();
        assert_eq!(works[0], WorkSummary { seg6local: true, bpf: false, transit: false });
        assert_eq!(works[1], WorkSummary { seg6local: true, bpf: true, transit: false });
        assert_eq!(works[2], WorkSummary::default());
        assert_eq!(works[3], WorkSummary { seg6local: false, bpf: false, transit: true });
        assert_eq!(works[4], WorkSummary::default());
        assert_eq!(verdicts[4].verdict, Verdict::Drop(DropReason::Malformed));
        // The verdicts agree with the plain batch API on a fresh router.
        let plain = batch_router().process_batch(
            &mut [
                srv6_skb(&["fc00::e1", "fc00::22"]),
                srv6_skb(&["fc00::e2", "fc00::22"]),
                plain_skb("fc00::42"),
                plain_skb("2001:db8:1::9"),
                Skb::new(netpkt::PacketBuf::from_slice(&[0u8; 6])),
            ],
            0,
        );
        assert_eq!(plain, verdicts.into_iter().map(|b| b.verdict).collect::<Vec<_>>());
    }

    #[test]
    fn fork_for_cpu_shares_the_fib_and_snapshots_the_rest() {
        let mut dp = batch_router();
        let mut fork = dp.fork_for_cpu(5);
        assert_eq!(fork.cpu_id, 5);
        assert_eq!(fork.stats.received, 0);

        // A SID configured before the fork works on the fork.
        let mut skb = srv6_skb(&["fc00::e1", "fc00::22"]);
        assert!(fork.process(&mut skb, 0).is_forward());
        assert_eq!(fork.stats.seg6local_invocations, 1);
        assert_eq!(dp.stats.seg6local_invocations, 0, "fork stats are private");

        // Routes installed on the original *after* forking reach the fork —
        // the FIB is shared through the Arc.
        dp.add_route("3001::/16".parse().unwrap(), vec![Nexthop::direct(9)]);
        let mut skb = plain_skb("3001::1");
        assert_eq!(fork.process(&mut skb, 0), Verdict::Forward { oif: 9, neighbour: addr("3001::1") });
    }
}
