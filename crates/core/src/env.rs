//! The helper environment handed to eBPF programs by the SRv6 hooks.
//!
//! Helpers run "inside the kernel": they need the router's FIB, the current
//! time, the location of the SRH inside the packet and a place to record
//! the routing decisions they take (the "destination already set in the
//! packet metadata" that `BPF_REDIRECT` refers to in §3.1). [`Seg6Env`]
//! carries all of that; it implements [`ebpf_vm::VmEnv`] so the base
//! helpers (`bpf_ktime_get_ns`, `bpf_get_prandom_u32`, ...) work too, and
//! the SRv6 helpers recover it by downcasting.

use crate::fib::RouterTables;
use crate::skb::RouteOverride;
use ebpf_vm::vm::{EnvSnapshot, VmEnv};
use std::any::Any;
use std::net::Ipv6Addr;
use std::sync::Arc;

/// Everything the SRv6 helpers record during one program invocation, read
/// back by the hook after the program returns.
#[derive(Debug, Default, Clone)]
pub struct EnvOutcome {
    /// Routing decision installed by `bpf_lwt_seg6_action` (End.X/T/DT6/...).
    pub route_override: RouteOverride,
    /// The outer IPv6 header (and SRH) were removed (End.DT6 / End.DX6).
    pub decapped: bool,
    /// An SRH (and possibly an outer IPv6 header) was pushed
    /// (`bpf_lwt_push_encap`, End.B6, End.B6.Encaps).
    pub pushed_encap: bool,
    /// `bpf_lwt_seg6_store_bytes` or `bpf_lwt_seg6_adjust_srh` touched the
    /// SRH; End.BPF re-validates it before forwarding.
    pub srh_modified: bool,
    /// Which `bpf_lwt_seg6_action` action was applied, if any (for stats and
    /// tests).
    pub seg6_action: Option<u32>,
}

/// The environment for one eBPF invocation on the SRv6 data plane.
pub struct Seg6Env {
    /// Current time in nanoseconds (drives `bpf_ktime_get_ns`).
    pub now_ns: u64,
    /// Address of the local SID (or of the router, for LWT hooks); used as
    /// the source of encapsulated packets.
    pub local_addr: Ipv6Addr,
    /// The router's FIB tables, shared with the datapath.
    pub tables: Arc<RouterTables>,
    /// Byte offset of the outermost SRH inside the packet, when there is
    /// one. The seg6 helpers refuse to run without it.
    pub srh_offset: Option<usize>,
    /// Hash identifying the flow, used when a helper performs an ECMP FIB
    /// lookup.
    pub flow_hash: u64,
    /// Logical CPU (worker shard) the program runs on: selects per-CPU map
    /// slots and the perf ring `BPF_F_CURRENT_CPU` targets.
    pub cpu: u32,
    /// Decisions taken by helpers.
    pub out: EnvOutcome,
    /// Messages emitted through `bpf_trace_printk`.
    pub traces: Vec<String>,
    rng_state: u64,
}

impl Seg6Env {
    /// Creates an environment for a program running on the node that owns
    /// `tables`, at time `now_ns`.
    pub fn new(local_addr: Ipv6Addr, tables: Arc<RouterTables>, now_ns: u64) -> Self {
        Seg6Env {
            now_ns,
            local_addr,
            tables,
            srh_offset: None,
            flow_hash: 0,
            cpu: 0,
            out: EnvOutcome::default(),
            traces: Vec::new(),
            rng_state: 0x853c_49e6_748f_ea9b ^ now_ns.max(1),
        }
    }

    /// Sets the SRH offset (used by the seg6local hook before running the
    /// program).
    pub fn with_srh_offset(mut self, offset: usize) -> Self {
        self.srh_offset = Some(offset);
        self
    }

    /// Sets the flow hash used for ECMP decisions taken by helpers.
    pub fn with_flow_hash(mut self, hash: u64) -> Self {
        self.flow_hash = hash;
        self
    }

    /// Sets the logical CPU (worker shard) the program runs on.
    pub fn with_cpu(mut self, cpu: u32) -> Self {
        self.cpu = cpu;
        self
    }
}

impl VmEnv for Seg6Env {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn ktime_ns(&mut self) -> u64 {
        self.now_ns
    }

    fn cpu_id(&mut self) -> u32 {
        self.cpu
    }

    fn prandom_u32(&mut self) -> u32 {
        // xorshift64*: deterministic per (seed, call sequence), which keeps
        // simulations reproducible while still spreading sampling decisions.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as u32
    }

    fn trace(&mut self, message: &str) {
        self.traces.push(message.to_string());
    }

    fn snapshot(&mut self) -> Option<EnvSnapshot> {
        // `now_ns` and `cpu` are fixed for the lifetime of one invocation,
        // so the native tier may inline them (prandom mutates state and
        // stays a real call).
        Some(EnvSnapshot { ktime_ns: self.now_ns, cpu_id: self.cpu })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Seg6Env {
        Seg6Env::new("fc00::1".parse().unwrap(), Arc::new(RouterTables::new()), 1_000)
    }

    #[test]
    fn ktime_returns_now() {
        let mut e = env();
        assert_eq!(e.ktime_ns(), 1_000);
    }

    #[test]
    fn prandom_is_deterministic_for_a_seed_and_varies_across_calls() {
        let mut a = env();
        let mut b = env();
        let seq_a: Vec<u32> = (0..4).map(|_| a.prandom_u32()).collect();
        let seq_b: Vec<u32> = (0..4).map(|_| b.prandom_u32()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn traces_are_collected() {
        let mut e = env();
        e.trace("hello");
        e.trace("world");
        assert_eq!(e.traces, vec!["hello", "world"]);
    }

    #[test]
    fn builder_methods_set_fields() {
        let e = env().with_srh_offset(40).with_flow_hash(99);
        assert_eq!(e.srh_offset, Some(40));
        assert_eq!(e.flow_hash, 99);
        assert!(!e.out.route_override.is_set());
    }
}
