//! Errors surfaced by the SRv6 data plane.

use std::fmt;

/// Why the data plane refused or dropped a packet, or failed to apply a
/// configuration change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The packet could not be parsed.
    Parse(netpkt::Error),
    /// The packet reached a seg6local endpoint but does not satisfy its
    /// preconditions (e.g. no SRH, or segments_left == 0 where a next
    /// segment is required).
    NotAnSrv6Endpoint(&'static str),
    /// No route matched the destination.
    NoRoute,
    /// The eBPF program attached to an End.BPF action failed to load or
    /// faulted at run time.
    Bpf(ebpf_vm::Error),
    /// The SRH failed the post-program validation that End.BPF performs.
    SrhValidation(&'static str),
    /// A configuration operation was invalid (duplicate SID, bad parameter).
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "packet parse error: {e}"),
            Error::NotAnSrv6Endpoint(why) => write!(f, "not a valid SRv6 endpoint packet: {why}"),
            Error::NoRoute => write!(f, "no route to destination"),
            Error::Bpf(e) => write!(f, "eBPF error: {e}"),
            Error::SrhValidation(why) => write!(f, "SRH validation failed after BPF program: {why}"),
            Error::Config(why) => write!(f, "configuration error: {why}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<netpkt::Error> for Error {
    fn from(value: netpkt::Error) -> Self {
        Error::Parse(value)
    }
}

impl From<ebpf_vm::Error> for Error {
    fn from(value: ebpf_vm::Error) -> Self {
        Error::Bpf(value)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let err: Error = netpkt::Error::Malformed("x").into();
        assert!(err.to_string().contains("parse"));
        let err: Error = ebpf_vm::Error::Map("boom".into()).into();
        assert!(err.to_string().contains("boom"));
        assert!(Error::NoRoute.to_string().contains("route"));
    }
}
