//! The IPv6 forwarding information base (FIB).
//!
//! SRv6 relies on ordinary shortest-path forwarding between segments, so
//! every node needs a routing table. This module provides a
//! longest-prefix-match FIB with Equal-Cost Multi-Path (ECMP) support —
//! needed both for normal forwarding and for the paper's `End.OAMP` use
//! case (§4.3), which queries the ECMP next hops of a destination — plus a
//! set of numbered tables as used by `End.T` and `End.DT6`.

use netpkt::Ipv6Prefix;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::Ipv6Addr;

/// Identifier of the main routing table (mirrors `RT_TABLE_MAIN`).
pub const MAIN_TABLE: u32 = 254;

/// A single next hop of a route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nexthop {
    /// Layer-3 gateway; `None` for directly connected prefixes.
    pub via: Option<Ipv6Addr>,
    /// Outgoing interface index.
    pub oif: u32,
    /// Relative weight used by the ECMP hash (>= 1).
    pub weight: u32,
}

impl Nexthop {
    /// A next hop through `via` on interface `oif` with weight 1.
    pub fn via(via: Ipv6Addr, oif: u32) -> Self {
        Nexthop { via: Some(via), oif, weight: 1 }
    }

    /// A directly connected next hop on interface `oif`.
    pub fn direct(oif: u32) -> Self {
        Nexthop { via: None, oif, weight: 1 }
    }

    /// Sets the ECMP weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// The address packets are actually sent to when using this next hop:
    /// the gateway if there is one, otherwise `dst` itself.
    pub fn neighbour(&self, dst: Ipv6Addr) -> Ipv6Addr {
        self.via.unwrap_or(dst)
    }
}

/// A route: a prefix and its (possibly multiple, for ECMP) next hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Ipv6Prefix,
    /// One entry per equal-cost path.
    pub nexthops: Vec<Nexthop>,
}

/// The result of a FIB lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResult {
    /// The matched prefix.
    pub prefix: Ipv6Prefix,
    /// The next hop selected for this flow.
    pub nexthop: Nexthop,
    /// Number of equal-cost next hops the prefix has.
    pub ecmp_width: usize,
}

/// A single routing table with longest-prefix-match lookup and ECMP.
#[derive(Debug, Default, Clone)]
pub struct Fib {
    routes: Vec<Route>,
}

impl Fib {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the route for `prefix`.
    pub fn insert(&mut self, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) {
        assert!(!nexthops.is_empty(), "a route needs at least one next hop");
        match self.routes.iter_mut().find(|r| r.prefix == prefix) {
            Some(route) => route.nexthops = nexthops,
            None => self.routes.push(Route { prefix, nexthops }),
        }
    }

    /// Removes the route for `prefix`, returning whether it existed.
    pub fn remove(&mut self, prefix: &Ipv6Prefix) -> bool {
        let before = self.routes.len();
        self.routes.retain(|r| &r.prefix != prefix);
        self.routes.len() != before
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table has no routes.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// All routes, for inspection.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    fn best_match(&self, dst: Ipv6Addr) -> Option<&Route> {
        self.routes.iter().filter(|r| r.prefix.contains(dst)).max_by_key(|r| r.prefix.len())
    }

    /// Longest-prefix-match lookup. `flow_hash` selects among equal-cost
    /// next hops (weighted), so packets of one flow stick to one path.
    pub fn lookup(&self, dst: Ipv6Addr, flow_hash: u64) -> Option<LookupResult> {
        let route = self.best_match(dst)?;
        let total_weight: u64 = route.nexthops.iter().map(|n| u64::from(n.weight)).sum();
        let mut slot = flow_hash % total_weight.max(1);
        let mut chosen = &route.nexthops[0];
        for nexthop in &route.nexthops {
            if slot < u64::from(nexthop.weight) {
                chosen = nexthop;
                break;
            }
            slot -= u64::from(nexthop.weight);
        }
        Some(LookupResult { prefix: route.prefix, nexthop: chosen.clone(), ecmp_width: route.nexthops.len() })
    }

    /// Every equal-cost next hop for `dst`, as `End.OAMP` reports them.
    pub fn ecmp_nexthops(&self, dst: Ipv6Addr) -> Vec<Nexthop> {
        self.best_match(dst).map(|r| r.nexthops.clone()).unwrap_or_default()
    }
}

/// Computes the flow hash used for ECMP next-hop selection, following the
/// 5-tuple-agnostic approach of RFC 6438: source, destination and flow
/// label. A stable hash keeps a flow on a single path (avoiding the
/// reordering the paper's §4.2 works around), while Paris-traceroute-style
/// probing can vary the flow label to explore all paths.
pub fn flow_hash(src: Ipv6Addr, dst: Ipv6Addr, flow_label: u32) -> u64 {
    // FNV-1a over the concatenated fields: cheap, deterministic, good enough
    // dispersion for path selection.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    };
    for byte in src.octets() {
        mix(byte);
    }
    for byte in dst.octets() {
        mix(byte);
    }
    for byte in flow_label.to_be_bytes() {
        mix(byte);
    }
    hash
}

/// The set of numbered routing tables of one router. `End.T` and `End.DT6`
/// look segments up in specific tables; interior mutability lets the tables
/// be shared with helper environments during eBPF execution.
#[derive(Debug, Default)]
pub struct RouterTables {
    tables: RwLock<HashMap<u32, Fib>>,
}

impl RouterTables {
    /// Creates an empty set of tables (the main table is created lazily).
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a route into table `table`.
    pub fn insert(&self, table: u32, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) {
        self.tables.write().entry(table).or_default().insert(prefix, nexthops);
    }

    /// Inserts a route into the main table.
    pub fn insert_main(&self, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) {
        self.insert(MAIN_TABLE, prefix, nexthops);
    }

    /// Removes a route from table `table`.
    pub fn remove(&self, table: u32, prefix: &Ipv6Prefix) -> bool {
        self.tables.write().get_mut(&table).is_some_and(|fib| fib.remove(prefix))
    }

    /// Looks `dst` up in table `table`.
    pub fn lookup(&self, table: u32, dst: Ipv6Addr, flow_hash: u64) -> Option<LookupResult> {
        self.tables.read().get(&table).and_then(|fib| fib.lookup(dst, flow_hash))
    }

    /// Looks `dst` up in the main table.
    pub fn lookup_main(&self, dst: Ipv6Addr, flow_hash: u64) -> Option<LookupResult> {
        self.lookup(MAIN_TABLE, dst, flow_hash)
    }

    /// ECMP next hops of `dst` in the main table (for `End.OAMP`).
    pub fn ecmp_nexthops(&self, dst: Ipv6Addr) -> Vec<Nexthop> {
        self.tables.read().get(&MAIN_TABLE).map(|fib| fib.ecmp_nexthops(dst)).unwrap_or_default()
    }

    /// Number of routes across all tables.
    pub fn total_routes(&self) -> usize {
        self.tables.read().values().map(Fib::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn prefix(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.insert(prefix("2001:db8::/32"), vec![Nexthop::via(addr("fe80::1"), 1)]);
        fib.insert(prefix("2001:db8:1::/48"), vec![Nexthop::via(addr("fe80::2"), 2)]);
        fib.insert(prefix("::/0"), vec![Nexthop::via(addr("fe80::ff"), 9)]);
        let hit = fib.lookup(addr("2001:db8:1::42"), 0).unwrap();
        assert_eq!(hit.nexthop.oif, 2);
        let hit = fib.lookup(addr("2001:db8:2::42"), 0).unwrap();
        assert_eq!(hit.nexthop.oif, 1);
        let hit = fib.lookup(addr("2abc::1"), 0).unwrap();
        assert_eq!(hit.nexthop.oif, 9);
    }

    #[test]
    fn lookup_miss_returns_none() {
        let mut fib = Fib::new();
        fib.insert(prefix("fc00::/64"), vec![Nexthop::direct(1)]);
        assert!(fib.lookup(addr("2001::1"), 0).is_none());
        assert!(fib.ecmp_nexthops(addr("2001::1")).is_empty());
    }

    #[test]
    fn ecmp_selection_is_deterministic_per_hash_and_covers_all_paths() {
        let mut fib = Fib::new();
        fib.insert(
            prefix("fc00::/16"),
            vec![
                Nexthop::via(addr("fe80::1"), 1),
                Nexthop::via(addr("fe80::2"), 2),
                Nexthop::via(addr("fe80::3"), 3),
            ],
        );
        let mut seen = std::collections::HashSet::new();
        for hash in 0..100u64 {
            let a = fib.lookup(addr("fc00::1"), hash).unwrap();
            let b = fib.lookup(addr("fc00::1"), hash).unwrap();
            assert_eq!(a, b);
            seen.insert(a.nexthop.oif);
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(fib.lookup(addr("fc00::1"), 0).unwrap().ecmp_width, 3);
    }

    #[test]
    fn weighted_ecmp_respects_weights() {
        let mut fib = Fib::new();
        fib.insert(
            prefix("fc00::/16"),
            vec![
                Nexthop::via(addr("fe80::1"), 1).with_weight(3),
                Nexthop::via(addr("fe80::2"), 2).with_weight(1),
            ],
        );
        let mut counts = [0u32; 2];
        for hash in 0..400u64 {
            let hit = fib.lookup(addr("fc00::1"), hash).unwrap();
            counts[(hit.nexthop.oif - 1) as usize] += 1;
        }
        // Weight 3:1 → roughly three quarters on interface 1.
        assert_eq!(counts[0] + counts[1], 400);
        assert_eq!(counts[0], 300);
        assert_eq!(counts[1], 100);
    }

    #[test]
    fn insert_replaces_and_remove_deletes() {
        let mut fib = Fib::new();
        fib.insert(prefix("fc00::/64"), vec![Nexthop::direct(1)]);
        fib.insert(prefix("fc00::/64"), vec![Nexthop::direct(7)]);
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(addr("fc00::1"), 0).unwrap().nexthop.oif, 7);
        assert!(fib.remove(&prefix("fc00::/64")));
        assert!(!fib.remove(&prefix("fc00::/64")));
        assert!(fib.is_empty());
    }

    #[test]
    fn flow_hash_is_stable_and_label_sensitive() {
        let a = flow_hash(addr("2001::1"), addr("2001::2"), 5);
        let b = flow_hash(addr("2001::1"), addr("2001::2"), 5);
        let c = flow_hash(addr("2001::1"), addr("2001::2"), 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn nexthop_neighbour_prefers_gateway() {
        let via = Nexthop::via(addr("fe80::1"), 1);
        assert_eq!(via.neighbour(addr("2001::9")), addr("fe80::1"));
        let direct = Nexthop::direct(2);
        assert_eq!(direct.neighbour(addr("2001::9")), addr("2001::9"));
    }

    #[test]
    fn router_tables_isolate_table_ids() {
        let tables = RouterTables::new();
        tables.insert_main(prefix("fc00::/16"), vec![Nexthop::direct(1)]);
        tables.insert(100, prefix("fc00::/16"), vec![Nexthop::direct(2)]);
        assert_eq!(tables.lookup_main(addr("fc00::1"), 0).unwrap().nexthop.oif, 1);
        assert_eq!(tables.lookup(100, addr("fc00::1"), 0).unwrap().nexthop.oif, 2);
        assert!(tables.lookup(200, addr("fc00::1"), 0).is_none());
        assert_eq!(tables.total_routes(), 2);
        assert!(tables.remove(100, &prefix("fc00::/16")));
        assert_eq!(tables.total_routes(), 1);
    }
}
