//! The IPv6 forwarding information base (FIB).
//!
//! SRv6 relies on ordinary shortest-path forwarding between segments, so
//! every node needs a routing table. This module provides a
//! longest-prefix-match FIB with Equal-Cost Multi-Path (ECMP) support —
//! needed both for normal forwarding and for the paper's `End.OAMP` use
//! case (§4.3), which queries the ECMP next hops of a destination — plus a
//! set of numbered tables as used by `End.T` and `End.DT6`.
//!
//! ## Hot-path design
//!
//! [`Fib`] is a path-compressed binary trie over the destination bits, the
//! same structure as the kernel's `BPF_MAP_TYPE_LPM_TRIE`: a lookup walks
//! at most `O(prefix bits)` nodes regardless of how many routes are
//! installed, where the previous implementation scanned every route.
//! Lookups return [`LookupHit`] — the chosen next hop is a **borrow** into
//! the trie, nothing is cloned per packet.
//!
//! [`RouterTables`] keeps the authoritative tables behind one lock, but the
//! datapath never takes it per packet: each worker shard holds a
//! [`FibCache`] — `Arc` snapshots of the per-table tries, refreshed only
//! when the write-side generation counter moves. Steady-state lookups on N
//! shards touch no shared lock at all.

use netpkt::Ipv6Prefix;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::Ipv6Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of one routing table, as `End.T` / `End.DT6` reference it
/// (mirrors the kernel's numeric `rt_table` ids).
pub type TableId = u32;

/// Identifier of the main routing table (mirrors `RT_TABLE_MAIN`).
pub const MAIN_TABLE: TableId = 254;

/// First table id the VRF registry allocates from. Leaves the kernel's
/// well-known ids (`RT_TABLE_MAIN`, `RT_TABLE_LOCAL`, ...) and the low
/// range operators pick numeric table ids from untouched.
pub const VRF_TABLE_BASE: TableId = 0x1000;

/// A single next hop of a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nexthop {
    /// Layer-3 gateway; `None` for directly connected prefixes.
    pub via: Option<Ipv6Addr>,
    /// Outgoing interface index.
    pub oif: u32,
    /// Relative weight used by the ECMP hash (>= 1).
    pub weight: u32,
}

impl Nexthop {
    /// A next hop through `via` on interface `oif` with weight 1.
    pub fn via(via: Ipv6Addr, oif: u32) -> Self {
        Nexthop { via: Some(via), oif, weight: 1 }
    }

    /// A directly connected next hop on interface `oif`.
    pub fn direct(oif: u32) -> Self {
        Nexthop { via: None, oif, weight: 1 }
    }

    /// Sets the ECMP weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// The address packets are actually sent to when using this next hop:
    /// the gateway if there is one, otherwise `dst` itself.
    pub fn neighbour(&self, dst: Ipv6Addr) -> Ipv6Addr {
        self.via.unwrap_or(dst)
    }
}

/// A route: a prefix and its (possibly multiple, for ECMP) next hops. The
/// trie stores next hops inline; this type is the inspection/export form
/// returned by [`Fib::routes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Ipv6Prefix,
    /// One entry per equal-cost path.
    pub nexthops: Vec<Nexthop>,
}

/// The owned result of a FIB lookup (all fields are `Copy` — carrying it
/// around costs nothing on the heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// The matched prefix.
    pub prefix: Ipv6Prefix,
    /// The next hop selected for this flow.
    pub nexthop: Nexthop,
    /// Number of equal-cost next hops the prefix has.
    pub ecmp_width: usize,
}

/// The borrowing result of a [`Fib::lookup`]: the chosen next hop points
/// into the trie, so the per-packet path clones nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupHit<'a> {
    /// The matched prefix.
    pub prefix: Ipv6Prefix,
    /// The next hop selected for this flow (a borrow into the table).
    pub nexthop: &'a Nexthop,
    /// Number of equal-cost next hops the prefix has.
    pub ecmp_width: usize,
}

impl LookupHit<'_> {
    /// Copies the hit out of the table's lifetime.
    pub fn to_result(self) -> LookupResult {
        LookupResult { prefix: self.prefix, nexthop: *self.nexthop, ecmp_width: self.ecmp_width }
    }
}

// ---------------------------------------------------------------------------
// The LPM trie
// ---------------------------------------------------------------------------

fn key_of(addr: Ipv6Addr) -> u128 {
    u128::from_be_bytes(addr.octets())
}

fn mask_bits(key: u128, len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        key & (u128::MAX << (128 - u32::from(len)))
    }
}

/// The value of bit `idx` (0 = most significant) of `key`. `idx < 128`.
fn bit_at(key: u128, idx: u8) -> usize {
    ((key >> (127 - u32::from(idx))) & 1) as usize
}

/// Length of the common prefix of `a` and `b`, capped at `cap` bits.
fn common_prefix(a: u128, b: u128, cap: u8) -> u8 {
    (((a ^ b).leading_zeros()) as u8).min(cap)
}

/// One trie node: a prefix, the route bound to it (`nexthops` empty for
/// path-compression intermediates), and up to two children whose prefixes
/// extend this one.
#[derive(Debug, Clone)]
struct TrieNode {
    /// The node's prefix bits, masked to `plen`.
    key: u128,
    /// The node's prefix length.
    plen: u8,
    /// The node's prefix in address form, precomputed so lookups return it
    /// without rebuilding (and re-masking) it per packet.
    prefix: Ipv6Prefix,
    /// The route's next hops; empty for intermediate nodes.
    nexthops: Vec<Nexthop>,
    /// Children, indexed by the first bit after `plen`.
    children: [Option<Box<TrieNode>>; 2],
}

impl TrieNode {
    fn leaf(key: u128, plen: u8, nexthops: Vec<Nexthop>) -> TrieNode {
        let prefix = Ipv6Prefix::new(Ipv6Addr::from(key.to_be_bytes()), plen)
            .expect("trie keys carry valid prefix lengths");
        TrieNode { key, plen, prefix, nexthops, children: [None, None] }
    }
}

/// A single routing table: a kernel-style LPM trie with ECMP next hops.
#[derive(Debug, Default, Clone)]
pub struct Fib {
    root: Option<Box<TrieNode>>,
    len: usize,
}

impl Fib {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the route for `prefix`.
    pub fn insert(&mut self, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) {
        assert!(!nexthops.is_empty(), "a route needs at least one next hop");
        let key = mask_bits(key_of(prefix.addr()), prefix.len());
        if insert_rec(&mut self.root, key, prefix.len(), nexthops) {
            self.len += 1;
        }
    }

    /// Removes the route for `prefix`, returning whether it existed.
    pub fn remove(&mut self, prefix: &Ipv6Prefix) -> bool {
        let key = mask_bits(key_of(prefix.addr()), prefix.len());
        let removed = remove_rec(&mut self.root, key, prefix.len());
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no routes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Collects all routes, for inspection and export (walks the trie —
    /// not a hot-path call).
    pub fn routes(&self) -> Vec<Route> {
        let mut out = Vec::with_capacity(self.len);
        collect_rec(&self.root, &mut out);
        out
    }

    /// The trie node holding the longest prefix containing `dst`.
    fn best_match(&self, dst: Ipv6Addr) -> Option<&TrieNode> {
        let key = key_of(dst);
        let mut best: Option<&TrieNode> = None;
        let mut node = self.root.as_deref();
        while let Some(n) = node {
            if mask_bits(key, n.plen) != n.key {
                break;
            }
            if !n.nexthops.is_empty() {
                best = Some(n);
            }
            if n.plen == 128 {
                break;
            }
            node = n.children[bit_at(key, n.plen)].as_deref();
        }
        best
    }

    /// Longest-prefix-match lookup. `flow_hash` selects among equal-cost
    /// next hops (weighted), so packets of one flow stick to one path. The
    /// returned hit borrows from the table — the per-packet path performs
    /// no clone and no allocation.
    pub fn lookup(&self, dst: Ipv6Addr, flow_hash: u64) -> Option<LookupHit<'_>> {
        let node = self.best_match(dst)?;
        // Single-path routes (the overwhelmingly common case) skip the
        // weighted selection entirely.
        let chosen = if node.nexthops.len() == 1 {
            &node.nexthops[0]
        } else {
            let total_weight: u64 = node.nexthops.iter().map(|n| u64::from(n.weight)).sum();
            let mut slot = flow_hash % total_weight.max(1);
            let mut chosen = &node.nexthops[0];
            for nexthop in &node.nexthops {
                if slot < u64::from(nexthop.weight) {
                    chosen = nexthop;
                    break;
                }
                slot -= u64::from(nexthop.weight);
            }
            chosen
        };
        Some(LookupHit { prefix: node.prefix, nexthop: chosen, ecmp_width: node.nexthops.len() })
    }

    /// Every equal-cost next hop for `dst`, as `End.OAMP` reports them —
    /// a borrow into the table, empty on a lookup miss.
    pub fn ecmp_nexthops(&self, dst: Ipv6Addr) -> &[Nexthop] {
        self.best_match(dst).map(|n| n.nexthops.as_slice()).unwrap_or(&[])
    }
}

/// Recursive insert; returns `true` when a new route was created (rather
/// than an existing one replaced).
fn insert_rec(slot: &mut Option<Box<TrieNode>>, key: u128, plen: u8, nexthops: Vec<Nexthop>) -> bool {
    let Some(node) = slot else {
        *slot = Some(Box::new(TrieNode::leaf(key, plen, nexthops)));
        return true;
    };
    let common = common_prefix(node.key, key, node.plen.min(plen));
    if common == node.plen && common == plen {
        // Exactly this node's prefix: replace (or fill an intermediate).
        let was_empty = node.nexthops.is_empty();
        node.nexthops = nexthops;
        return was_empty;
    }
    if common == node.plen {
        // The node's prefix covers the new one: descend.
        return insert_rec(&mut node.children[bit_at(key, node.plen)], key, plen, nexthops);
    }
    // The prefixes diverge before the node's length: split here.
    if common == plen {
        // The new prefix covers the node: the new node becomes the parent.
        let old = std::mem::replace(&mut **node, TrieNode::leaf(key, plen, nexthops));
        let branch = bit_at(old.key, plen);
        node.children[branch] = Some(Box::new(old));
    } else {
        // Neither covers the other: an intermediate node forks the two.
        let im = TrieNode::leaf(mask_bits(key, common), common, Vec::new());
        let old = std::mem::replace(&mut **node, im);
        let old_branch = bit_at(old.key, common);
        node.children[old_branch] = Some(Box::new(old));
        node.children[bit_at(key, common)] = Some(Box::new(TrieNode::leaf(key, plen, nexthops)));
    }
    true
}

/// Recursive remove with path compression: emptied nodes with zero or one
/// child are pruned / collapsed.
fn remove_rec(slot: &mut Option<Box<TrieNode>>, key: u128, plen: u8) -> bool {
    let Some(node) = slot else { return false };
    let removed = if node.plen == plen && node.key == key {
        if node.nexthops.is_empty() {
            return false;
        }
        node.nexthops = Vec::new();
        true
    } else if node.plen < plen && mask_bits(key, node.plen) == node.key {
        remove_rec(&mut node.children[bit_at(key, node.plen)], key, plen)
    } else {
        false
    };
    if removed && node.nexthops.is_empty() {
        let replacement = match (node.children[0].is_some(), node.children[1].is_some()) {
            (false, false) => Some(None),
            (true, false) => Some(node.children[0].take()),
            (false, true) => Some(node.children[1].take()),
            (true, true) => None,
        };
        if let Some(new_slot) = replacement {
            *slot = new_slot;
        }
    }
    removed
}

fn collect_rec(slot: &Option<Box<TrieNode>>, out: &mut Vec<Route>) {
    let Some(node) = slot else { return };
    if !node.nexthops.is_empty() {
        out.push(Route { prefix: node.prefix, nexthops: node.nexthops.clone() });
    }
    collect_rec(&node.children[0], out);
    collect_rec(&node.children[1], out);
}

/// Computes the flow hash used for ECMP next-hop selection, following the
/// 5-tuple-agnostic approach of RFC 6438: source, destination and flow
/// label. A stable hash keeps a flow on a single path (avoiding the
/// reordering the paper's §4.2 works around), while Paris-traceroute-style
/// probing can vary the flow label to explore all paths.
pub fn flow_hash(src: Ipv6Addr, dst: Ipv6Addr, flow_label: u32) -> u64 {
    // FNV-1a over the concatenated fields: cheap, deterministic, good enough
    // dispersion for path selection.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    };
    for byte in src.octets() {
        mix(byte);
    }
    for byte in dst.octets() {
        mix(byte);
    }
    for byte in flow_label.to_be_bytes() {
        mix(byte);
    }
    hash
}

// ---------------------------------------------------------------------------
// RouterTables: authoritative tables + lock-free read snapshots
// ---------------------------------------------------------------------------

/// The name → table-id registry behind [`RouterTables::register_vrf`].
/// `next` remembers where the allocator left off so registering N VRFs
/// stays O(N) even when numeric ids collide with user-chosen tables.
#[derive(Debug, Default)]
struct VrfRegistry {
    names: HashMap<String, TableId>,
    next: TableId,
}

/// The set of numbered routing tables of one router. `End.T` and `End.DT6`
/// look segments up in specific tables; interior mutability lets the tables
/// be shared with helper environments during eBPF execution.
///
/// Writes go through one lock and bump a generation counter; readers that
/// hold a [`FibCache`] (every datapath shard does) only re-enter the lock
/// when the generation moved, so steady-state packet processing on N pool
/// shards contends on nothing.
///
/// Tables can also be **named**: [`RouterTables::register_vrf`] maps a VRF
/// name to a freshly allocated [`TableId`] whose table rides the same
/// generation/snapshot machinery as every numeric table — a registered
/// VRF's routes are visible through [`FibCache`] snapshots exactly like
/// main-table routes, and `End.T { table }` / `End.DT6 { table }` bound to
/// the returned id forward through that VRF.
#[derive(Debug, Default)]
pub struct RouterTables {
    tables: RwLock<HashMap<TableId, Arc<Fib>>>,
    vrfs: RwLock<VrfRegistry>,
    generation: AtomicU64,
}

impl RouterTables {
    /// Creates an empty set of tables (the main table is created lazily).
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a route into table `table`.
    ///
    /// Writes are copy-on-write against live reader snapshots: the first
    /// write after a [`FibCache`] refresh clones the affected table
    /// (`Arc::make_mut`), further writes before the next refresh mutate in
    /// place. Route churn under live traffic therefore costs at most one
    /// table clone per snapshot refresh — for bulk installs, use
    /// [`RouterTables::insert_all`] so the whole batch pays at most one.
    pub fn insert(&self, table: TableId, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) {
        let mut guard = self.tables.write();
        let fib = guard.entry(table).or_default();
        Arc::make_mut(fib).insert(prefix, nexthops);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Inserts a batch of routes into table `table` under one lock
    /// acquisition and (at most) one copy-on-write table clone — the way
    /// to install a large route set while readers hold snapshots, where
    /// per-route [`RouterTables::insert`] interleaved with snapshot
    /// refreshes could clone the table repeatedly.
    pub fn insert_all(&self, table: TableId, routes: impl IntoIterator<Item = (Ipv6Prefix, Vec<Nexthop>)>) {
        let mut guard = self.tables.write();
        let fib = Arc::make_mut(guard.entry(table).or_default());
        for (prefix, nexthops) in routes {
            fib.insert(prefix, nexthops);
        }
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Inserts a route into the main table.
    pub fn insert_main(&self, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) {
        self.insert(MAIN_TABLE, prefix, nexthops);
    }

    /// Registers (or looks up) the VRF `name`, returning the [`TableId`]
    /// its routes live in. The first registration allocates a fresh id at
    /// or above [`VRF_TABLE_BASE`] (skipping numeric ids already in use)
    /// and creates the — initially empty — table, so it is visible to
    /// [`FibCache`] snapshots immediately; later registrations of the same
    /// name return the same id. This is the tenancy hook: one VRF per
    /// tenant, `End.T` / `End.DT6` bound to the returned id.
    pub fn register_vrf(&self, name: &str) -> TableId {
        if let Some(id) = self.vrfs.read().names.get(name) {
            return *id;
        }
        // Lock order: vrfs before tables (the only place both are held).
        let mut vrfs = self.vrfs.write();
        if let Some(id) = vrfs.names.get(name) {
            return *id;
        }
        let mut tables = self.tables.write();
        let mut id = vrfs.next.max(VRF_TABLE_BASE);
        while tables.contains_key(&id) {
            id += 1;
        }
        vrfs.next = id + 1;
        vrfs.names.insert(name.to_string(), id);
        tables.insert(id, Arc::default());
        drop(tables);
        self.generation.fetch_add(1, Ordering::Release);
        id
    }

    /// The table id of VRF `name`, if it was registered.
    pub fn vrf(&self, name: &str) -> Option<TableId> {
        self.vrfs.read().names.get(name).copied()
    }

    /// Every registered VRF as `(name, table id)`, sorted by id (stable
    /// output for inspection and export).
    pub fn vrf_names(&self) -> Vec<(String, TableId)> {
        let mut out: Vec<(String, TableId)> =
            self.vrfs.read().names.iter().map(|(name, id)| (name.clone(), *id)).collect();
        out.sort_by_key(|(_, id)| *id);
        out
    }

    /// Inserts a route into the VRF `name` (registering it on first use)
    /// and returns the VRF's table id.
    pub fn insert_vrf(&self, name: &str, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) -> TableId {
        let table = self.register_vrf(name);
        self.insert(table, prefix, nexthops);
        table
    }

    /// Looks `dst` up in the VRF `name` (`None` on an unregistered VRF or
    /// a lookup miss).
    pub fn lookup_vrf(&self, name: &str, dst: Ipv6Addr, flow_hash: u64) -> Option<LookupResult> {
        self.lookup(self.vrf(name)?, dst, flow_hash)
    }

    /// Removes a route from table `table`.
    pub fn remove(&self, table: TableId, prefix: &Ipv6Prefix) -> bool {
        let mut guard = self.tables.write();
        let removed = guard.get_mut(&table).is_some_and(|fib| Arc::make_mut(fib).remove(prefix));
        if removed {
            self.generation.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// The write-side generation: moves on every route change. Readers use
    /// it to keep their snapshots fresh without taking the lock.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Snapshots the current tables (cheap `Arc` clones, one per table)
    /// into `out`, returning the generation the snapshot corresponds to.
    pub fn snapshot_into(&self, out: &mut Vec<(TableId, Arc<Fib>)>) -> u64 {
        let guard = self.tables.read();
        out.clear();
        out.extend(guard.iter().map(|(id, fib)| (*id, Arc::clone(fib))));
        // Read under the same lock writers bump it under, so the snapshot
        // and the generation always agree.
        self.generation.load(Ordering::Acquire)
    }

    /// Looks `dst` up in table `table`.
    pub fn lookup(&self, table: TableId, dst: Ipv6Addr, flow_hash: u64) -> Option<LookupResult> {
        self.tables.read().get(&table).and_then(|fib| fib.lookup(dst, flow_hash)).map(LookupHit::to_result)
    }

    /// Looks `dst` up in the main table.
    pub fn lookup_main(&self, dst: Ipv6Addr, flow_hash: u64) -> Option<LookupResult> {
        self.lookup(MAIN_TABLE, dst, flow_hash)
    }

    /// ECMP next hops of `dst` in the main table (for `End.OAMP`). Owned,
    /// because the borrow cannot outlive the table lock; per-packet
    /// consumers should use [`RouterTables::with_ecmp_nexthops`] instead.
    pub fn ecmp_nexthops(&self, dst: Ipv6Addr) -> Vec<Nexthop> {
        self.with_ecmp_nexthops(dst, <[Nexthop]>::to_vec)
    }

    /// Runs `f` over the ECMP next hops of `dst` in the main table while
    /// the read lock is held — the allocation-free form of
    /// [`RouterTables::ecmp_nexthops`] for per-packet helpers.
    pub fn with_ecmp_nexthops<R>(&self, dst: Ipv6Addr, f: impl FnOnce(&[Nexthop]) -> R) -> R {
        let guard = self.tables.read();
        let nexthops = guard.get(&MAIN_TABLE).map(|fib| fib.ecmp_nexthops(dst)).unwrap_or(&[]);
        f(nexthops)
    }

    /// Number of routes across all tables.
    pub fn total_routes(&self) -> usize {
        self.tables.read().values().map(|fib| fib.len()).sum()
    }
}

/// A reader-side snapshot of a router's tables, held by each datapath
/// (worker shard). `refresh` is a single relaxed atomic load in the steady
/// state; lookups then walk the shard's own `Arc` snapshots — no lock, no
/// contention, and [`LookupResult`]s that are plain `Copy` values.
#[derive(Debug)]
pub struct FibCache {
    generation: u64,
    tables: Vec<(TableId, Arc<Fib>)>,
}

impl Default for FibCache {
    fn default() -> Self {
        Self::new()
    }
}

impl FibCache {
    /// An empty cache that will load on first refresh.
    pub fn new() -> Self {
        FibCache { generation: u64::MAX, tables: Vec::new() }
    }

    /// Brings the snapshot up to date if routes changed since the last
    /// call. Steady state (no route churn) does one atomic load and
    /// returns.
    pub fn refresh(&mut self, tables: &RouterTables) {
        if tables.generation() != self.generation {
            self.generation = tables.snapshot_into(&mut self.tables);
        }
    }

    /// The cached trie of `table`, if the table exists.
    pub fn table(&self, table: TableId) -> Option<&Fib> {
        self.tables.iter().find(|(id, _)| *id == table).map(|(_, fib)| &**fib)
    }

    /// Longest-prefix-match lookup in the cached snapshot of `table`.
    pub fn lookup(&self, table: TableId, dst: Ipv6Addr, flow_hash: u64) -> Option<LookupResult> {
        self.table(table)?.lookup(dst, flow_hash).map(LookupHit::to_result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn prefix(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.insert(prefix("2001:db8::/32"), vec![Nexthop::via(addr("fe80::1"), 1)]);
        fib.insert(prefix("2001:db8:1::/48"), vec![Nexthop::via(addr("fe80::2"), 2)]);
        fib.insert(prefix("::/0"), vec![Nexthop::via(addr("fe80::ff"), 9)]);
        let hit = fib.lookup(addr("2001:db8:1::42"), 0).unwrap();
        assert_eq!(hit.nexthop.oif, 2);
        assert_eq!(hit.prefix, prefix("2001:db8:1::/48"));
        let hit = fib.lookup(addr("2001:db8:2::42"), 0).unwrap();
        assert_eq!(hit.nexthop.oif, 1);
        let hit = fib.lookup(addr("2abc::1"), 0).unwrap();
        assert_eq!(hit.nexthop.oif, 9);
        assert_eq!(fib.len(), 3);
        assert_eq!(fib.routes().len(), 3);
    }

    #[test]
    fn lookup_miss_returns_none() {
        let mut fib = Fib::new();
        fib.insert(prefix("fc00::/64"), vec![Nexthop::direct(1)]);
        assert!(fib.lookup(addr("2001::1"), 0).is_none());
        assert!(fib.ecmp_nexthops(addr("2001::1")).is_empty());
    }

    #[test]
    fn ecmp_selection_is_deterministic_per_hash_and_covers_all_paths() {
        let mut fib = Fib::new();
        fib.insert(
            prefix("fc00::/16"),
            vec![
                Nexthop::via(addr("fe80::1"), 1),
                Nexthop::via(addr("fe80::2"), 2),
                Nexthop::via(addr("fe80::3"), 3),
            ],
        );
        let mut seen = std::collections::HashSet::new();
        for hash in 0..100u64 {
            let a = fib.lookup(addr("fc00::1"), hash).unwrap();
            let b = fib.lookup(addr("fc00::1"), hash).unwrap();
            assert_eq!(a, b);
            seen.insert(a.nexthop.oif);
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(fib.lookup(addr("fc00::1"), 0).unwrap().ecmp_width, 3);
    }

    #[test]
    fn weighted_ecmp_respects_weights() {
        let mut fib = Fib::new();
        fib.insert(
            prefix("fc00::/16"),
            vec![
                Nexthop::via(addr("fe80::1"), 1).with_weight(3),
                Nexthop::via(addr("fe80::2"), 2).with_weight(1),
            ],
        );
        let mut counts = [0u32; 2];
        for hash in 0..400u64 {
            let hit = fib.lookup(addr("fc00::1"), hash).unwrap();
            counts[(hit.nexthop.oif - 1) as usize] += 1;
        }
        // Weight 3:1 → roughly three quarters on interface 1.
        assert_eq!(counts[0] + counts[1], 400);
        assert_eq!(counts[0], 300);
        assert_eq!(counts[1], 100);
    }

    #[test]
    fn insert_replaces_and_remove_deletes() {
        let mut fib = Fib::new();
        fib.insert(prefix("fc00::/64"), vec![Nexthop::direct(1)]);
        fib.insert(prefix("fc00::/64"), vec![Nexthop::direct(7)]);
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(addr("fc00::1"), 0).unwrap().nexthop.oif, 7);
        assert!(fib.remove(&prefix("fc00::/64")));
        assert!(!fib.remove(&prefix("fc00::/64")));
        assert!(fib.is_empty());
    }

    #[test]
    fn intermediate_nodes_do_not_match_and_survive_removal() {
        // fc00:a::/32 and fc00:b::/32 fork under an intermediate covering
        // neither; the intermediate must never answer a lookup, and
        // removing one branch must keep the other reachable.
        let mut fib = Fib::new();
        fib.insert(prefix("fc00:a::/32"), vec![Nexthop::direct(1)]);
        fib.insert(prefix("fc00:b::/32"), vec![Nexthop::direct(2)]);
        assert!(fib.lookup(addr("fc00:c::1"), 0).is_none());
        assert_eq!(fib.lookup(addr("fc00:a::1"), 0).unwrap().nexthop.oif, 1);
        assert!(fib.remove(&prefix("fc00:a::/32")));
        assert_eq!(fib.len(), 1);
        assert!(fib.lookup(addr("fc00:a::1"), 0).is_none());
        assert_eq!(fib.lookup(addr("fc00:b::1"), 0).unwrap().nexthop.oif, 2);
    }

    #[test]
    fn host_routes_and_default_route_coexist() {
        let mut fib = Fib::new();
        fib.insert(prefix("::/0"), vec![Nexthop::direct(1)]);
        fib.insert(prefix("fc00::1"), vec![Nexthop::direct(2)]);
        assert_eq!(fib.lookup(addr("fc00::1"), 0).unwrap().nexthop.oif, 2);
        assert_eq!(fib.lookup(addr("fc00::2"), 0).unwrap().nexthop.oif, 1);
    }

    #[test]
    fn flow_hash_is_stable_and_label_sensitive() {
        let a = flow_hash(addr("2001::1"), addr("2001::2"), 5);
        let b = flow_hash(addr("2001::1"), addr("2001::2"), 5);
        let c = flow_hash(addr("2001::1"), addr("2001::2"), 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn nexthop_neighbour_prefers_gateway() {
        let via = Nexthop::via(addr("fe80::1"), 1);
        assert_eq!(via.neighbour(addr("2001::9")), addr("fe80::1"));
        let direct = Nexthop::direct(2);
        assert_eq!(direct.neighbour(addr("2001::9")), addr("2001::9"));
    }

    #[test]
    fn router_tables_isolate_table_ids() {
        let tables = RouterTables::new();
        tables.insert_main(prefix("fc00::/16"), vec![Nexthop::direct(1)]);
        tables.insert(100, prefix("fc00::/16"), vec![Nexthop::direct(2)]);
        assert_eq!(tables.lookup_main(addr("fc00::1"), 0).unwrap().nexthop.oif, 1);
        assert_eq!(tables.lookup(100, addr("fc00::1"), 0).unwrap().nexthop.oif, 2);
        assert!(tables.lookup(200, addr("fc00::1"), 0).is_none());
        assert_eq!(tables.total_routes(), 2);
        assert!(tables.remove(100, &prefix("fc00::/16")));
        assert_eq!(tables.total_routes(), 1);
    }

    #[test]
    fn vrf_registration_is_idempotent_and_allocates_distinct_tables() {
        let tables = RouterTables::new();
        let a = tables.register_vrf("tenant-a");
        let b = tables.register_vrf("tenant-b");
        assert!(a >= VRF_TABLE_BASE);
        assert_ne!(a, b);
        assert_eq!(tables.register_vrf("tenant-a"), a, "re-registration returns the same id");
        assert_eq!(tables.vrf("tenant-a"), Some(a));
        assert_eq!(tables.vrf("tenant-c"), None);
        assert_eq!(tables.vrf_names(), vec![("tenant-a".into(), a), ("tenant-b".into(), b)]);

        // Routes in one VRF are invisible to the other and to main.
        tables.insert_vrf("tenant-a", prefix("fc00::/16"), vec![Nexthop::direct(1)]);
        tables.insert_vrf("tenant-b", prefix("fc00::/16"), vec![Nexthop::direct(2)]);
        assert_eq!(tables.lookup_vrf("tenant-a", addr("fc00::1"), 0).unwrap().nexthop.oif, 1);
        assert_eq!(tables.lookup_vrf("tenant-b", addr("fc00::1"), 0).unwrap().nexthop.oif, 2);
        assert!(tables.lookup_main(addr("fc00::1"), 0).is_none());
        assert!(tables.lookup_vrf("tenant-c", addr("fc00::1"), 0).is_none());
    }

    #[test]
    fn vrf_allocator_skips_numeric_ids_already_in_use() {
        let tables = RouterTables::new();
        // An operator grabbed the first VRF-range ids numerically.
        tables.insert(VRF_TABLE_BASE, prefix("fc00::/16"), vec![Nexthop::direct(7)]);
        tables.insert(VRF_TABLE_BASE + 1, prefix("fc00::/16"), vec![Nexthop::direct(8)]);
        let a = tables.register_vrf("tenant-a");
        assert_eq!(a, VRF_TABLE_BASE + 2, "allocation skips occupied ids");
        assert_eq!(tables.lookup(VRF_TABLE_BASE, addr("fc00::1"), 0).unwrap().nexthop.oif, 7);
    }

    #[test]
    fn vrf_tables_ride_the_snapshot_machinery() {
        let tables = RouterTables::new();
        let mut cache = FibCache::new();
        cache.refresh(&tables);

        // Registration alone moves the generation: the empty table shows
        // up in the next snapshot.
        let a = tables.register_vrf("tenant-a");
        cache.refresh(&tables);
        assert!(cache.table(a).is_some(), "registered VRF visible in the snapshot");
        assert!(cache.lookup(a, addr("fc00::1"), 0).is_none());

        // Routes added later reach the cache through the same generation
        // bump numeric tables use.
        tables.insert_vrf("tenant-a", prefix("fc00::/16"), vec![Nexthop::direct(4)]);
        cache.refresh(&tables);
        assert_eq!(cache.lookup(a, addr("fc00::1"), 0).unwrap().nexthop.oif, 4);
    }

    #[test]
    fn fib_cache_tracks_route_changes_through_the_generation() {
        let tables = RouterTables::new();
        let mut cache = FibCache::new();
        cache.refresh(&tables);
        assert!(cache.lookup(MAIN_TABLE, addr("fc00::1"), 0).is_none());

        tables.insert_main(prefix("fc00::/16"), vec![Nexthop::direct(1)]);
        cache.refresh(&tables);
        assert_eq!(cache.lookup(MAIN_TABLE, addr("fc00::1"), 0).unwrap().nexthop.oif, 1);

        // Without a refresh the snapshot intentionally stays stale...
        tables.insert_main(prefix("fc00::/16"), vec![Nexthop::direct(9)]);
        assert_eq!(cache.lookup(MAIN_TABLE, addr("fc00::1"), 0).unwrap().nexthop.oif, 1);
        // ...and one refresh catches up.
        cache.refresh(&tables);
        assert_eq!(cache.lookup(MAIN_TABLE, addr("fc00::1"), 0).unwrap().nexthop.oif, 9);

        // Unchanged generation: refresh must not reload (same Arc).
        let before = cache.table(MAIN_TABLE).unwrap() as *const Fib;
        cache.refresh(&tables);
        let after = cache.table(MAIN_TABLE).unwrap() as *const Fib;
        assert_eq!(before, after);
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let tables = RouterTables::new();
        tables.insert_main(prefix("fc00::/16"), vec![Nexthop::direct(1)]);
        let mut cache = FibCache::new();
        cache.refresh(&tables);
        // A write after the snapshot clones the table (copy-on-write); the
        // snapshot keeps answering with the old state until refreshed.
        tables.insert_main(prefix("fc00::/16"), vec![Nexthop::direct(2)]);
        assert_eq!(cache.lookup(MAIN_TABLE, addr("fc00::1"), 0).unwrap().nexthop.oif, 1);
        assert_eq!(tables.lookup_main(addr("fc00::1"), 0).unwrap().nexthop.oif, 2);
    }
}
