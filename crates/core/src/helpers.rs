//! The four SRv6 eBPF helpers the paper adds to the kernel (§3.1).
//!
//! * [`bpf_lwt_seg6_store_bytes`](helper_seg6_store_bytes) — indirect write
//!   access to the *editable* fields of the SRH (flags, tag, TLVs);
//! * [`bpf_lwt_seg6_adjust_srh`](helper_seg6_adjust_srh) — grow or shrink
//!   the space reserved to TLVs;
//! * [`bpf_lwt_seg6_action`](helper_seg6_action) — apply a basic SRv6
//!   behaviour (End.X, End.T, End.B6, End.B6.Encaps, End.DT6, End.DX6);
//! * [`bpf_lwt_push_encap`](helper_lwt_push_encap) — attach an SRH to plain
//!   IPv6 traffic from a BPF LWT program (inline or encap mode).
//!
//! The first three are restricted to `End.BPF` (`lwt_seg6local`) programs;
//! the last one to the LWT hooks, mirroring the kernel's gating.

use crate::ctx;
use crate::env::Seg6Env;
use crate::fib::MAIN_TABLE;
use crate::srv6_ops;
use ebpf_vm::helpers::{ids, HelperRegistry};
use ebpf_vm::program::ProgramType;
use ebpf_vm::vm::HelperApi;
use std::borrow::Cow;
use std::net::Ipv6Addr;

/// Action codes accepted by `bpf_lwt_seg6_action`, mirroring the kernel's
/// `SEG6_LOCAL_ACTION_*` values.
pub mod action_codes {
    /// `End.X`: forward to a specific IPv6 next hop (parameter: 16-byte
    /// address).
    pub const END_X: u32 = 2;
    /// `End.T`: look the new destination up in a specific table (parameter:
    /// 4-byte table id).
    pub const END_T: u32 = 3;
    /// `End.DX6`: decapsulate and forward to a specific next hop
    /// (parameter: 16-byte address).
    pub const END_DX6: u32 = 5;
    /// `End.DT6`: decapsulate and look the inner destination up in a table
    /// (parameter: 4-byte table id).
    pub const END_DT6: u32 = 7;
    /// `End.B6`: insert a new SRH on top of the existing one (parameter:
    /// the SRH bytes).
    pub const END_B6: u32 = 9;
    /// `End.B6.Encaps`: encapsulate in an outer IPv6 header with a new SRH
    /// (parameter: the SRH bytes).
    pub const END_B6_ENCAP: u32 = 10;
}

/// Encapsulation modes accepted by `bpf_lwt_push_encap`, mirroring
/// `enum bpf_lwt_encap_mode`.
pub mod encap_modes {
    /// Encapsulate the packet in an outer IPv6 header carrying the SRH.
    pub const SEG6: u64 = 0;
    /// Insert the SRH directly into the existing IPv6 packet.
    pub const SEG6_INLINE: u64 = 1;
}

static SEG6LOCAL_ONLY: &[ProgramType] = &[ProgramType::LwtSeg6Local];
static LWT_HOOKS: &[ProgramType] = &[ProgramType::LwtIn, ProgramType::LwtOut, ProgramType::LwtXmit];

/// Builds a helper registry with the base kernel helpers plus the four SRv6
/// helpers, gated by program type exactly as the paper's kernel patch does.
pub fn seg6_helper_registry() -> HelperRegistry {
    let mut registry = HelperRegistry::with_base_helpers();
    registry.register(
        ids::LWT_SEG6_STORE_BYTES,
        "bpf_lwt_seg6_store_bytes",
        helper_seg6_store_bytes,
        Some(SEG6LOCAL_ONLY),
    );
    registry.register(
        ids::LWT_SEG6_ADJUST_SRH,
        "bpf_lwt_seg6_adjust_srh",
        helper_seg6_adjust_srh,
        Some(SEG6LOCAL_ONLY),
    );
    registry.register(ids::LWT_SEG6_ACTION, "bpf_lwt_seg6_action", helper_seg6_action, Some(SEG6LOCAL_ONLY));
    registry.register(ids::LWT_PUSH_ENCAP, "bpf_lwt_push_encap", helper_lwt_push_encap, Some(LWT_HOOKS));
    registry
}

fn env_of<'e>(api: &'e mut HelperApi<'_, '_>) -> Option<&'e mut Seg6Env> {
    api.env_any().downcast_mut::<Seg6Env>()
}

/// Stack-buffer size for variable-size parameter reads — re-exported from
/// the shared `ebpf_vm` implementation so the two layers cannot drift.
const PARAM_STACK: usize = ebpf_vm::helpers::MAX_STACK_PARAM;

/// Reads a variable-size helper parameter without allocating when it fits
/// the caller's stack buffer: the SRv6 helpers' length policy (non-empty,
/// at most 4096 bytes, as the kernel enforces) on top of the shared
/// [`ebpf_vm::helpers::read_param`] read.
fn read_param<'b>(
    api: &HelperApi<'_, '_>,
    ptr: u64,
    len: usize,
    buf: &'b mut [u8; PARAM_STACK],
) -> Option<Cow<'b, [u8]>> {
    if len == 0 || len > 4096 {
        return None;
    }
    ebpf_vm::helpers::read_param(api, ptr, len, buf)
}

/// Reads a fixed-size 16-byte IPv6 address parameter into a stack array —
/// the borrow API means no `Vec` for scalar parameters.
fn read_addr_param(api: &HelperApi<'_, '_>, ptr: u64) -> Option<Ipv6Addr> {
    let mut octets = [0u8; 16];
    api.read_into(ptr, &mut octets).ok()?;
    Some(Ipv6Addr::from(octets))
}

/// Reads a fixed-size 4-byte little-endian parameter (table ids).
fn read_u32_param(api: &HelperApi<'_, '_>, ptr: u64) -> Option<u32> {
    let mut bytes = [0u8; 4];
    api.read_into(ptr, &mut bytes).ok()?;
    Some(u32::from_le_bytes(bytes))
}

/// `long bpf_lwt_seg6_store_bytes(skb, offset, from, len)`
///
/// Writes `len` bytes taken from program memory at `from` into the SRH at
/// `offset` (relative to the start of the SRH). Only the flags octet, the
/// tag and the TLV area may be written; anything else — the segment list,
/// the header length, segments_left — is refused so that the program cannot
/// "jeopardise the integrity of the SRH" (§3).
pub fn helper_seg6_store_bytes(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let offset = args[1] as usize;
    let len = args[3] as usize;
    let mut pbuf = [0u8; PARAM_STACK];
    let Some(bytes) = read_param(api, args[2], len, &mut pbuf) else { return -1 };
    let Some(env) = env_of(api) else { return -1 };
    let Some(srh_off) = env.srh_offset else { return -1 };
    let srh_modified_flag = {
        // Parse enough of the SRH to know which byte ranges are editable.
        let packet = api.packet();
        if packet.len() < srh_off + 8 {
            return -1;
        }
        let srh_len = 8 + usize::from(packet[srh_off + 1]) * 8;
        let last_entry = usize::from(packet[srh_off + 4]);
        let tlv_start = 8 + 16 * (last_entry + 1);
        let end = offset.saturating_add(len);
        let in_flags = offset == 5 && end <= 6;
        let in_tag = offset >= 6 && end <= 8;
        let in_tlv_area = offset >= tlv_start && end <= srh_len;
        if !(in_flags || in_tag || in_tlv_area) {
            return -1;
        }
        if srh_off + end > packet.len() {
            return -1;
        }
        true
    };
    let packet = api.packet_mut();
    packet[srh_off + offset..srh_off + offset + len].copy_from_slice(&bytes);
    if let Some(env) = env_of(api) {
        env.out.srh_modified = srh_modified_flag;
    }
    0
}

/// `long bpf_lwt_seg6_adjust_srh(skb, offset, delta)`
///
/// Grows (`delta > 0`) or shrinks (`delta < 0`) the TLV area of the SRH at
/// `offset` bytes from the start of the SRH. `delta` must be a multiple of
/// eight so the header length stays expressible; the IPv6 payload length,
/// the SRH header length and the program's view of the packet (`data_end`,
/// `len`) are all updated. The newly allocated space is zero-filled and must
/// be turned into valid TLVs by the program before it returns, otherwise the
/// End.BPF post-validation drops the packet.
pub fn helper_seg6_adjust_srh(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let offset = args[1] as usize;
    let delta = args[2] as i64 as i32 as i64; // sign-extend the 32-bit argument
    if delta == 0 {
        return 0;
    }
    if delta % 8 != 0 || delta.unsigned_abs() > 4096 {
        return -1;
    }
    let Some(env) = env_of(api) else { return -1 };
    let Some(srh_off) = env.srh_offset else { return -1 };
    {
        let packet = api.packet();
        if packet.len() < srh_off + 8 {
            return -1;
        }
        let srh_len = 8 + usize::from(packet[srh_off + 1]) * 8;
        let last_entry = usize::from(packet[srh_off + 4]);
        let tlv_start = 8 + 16 * (last_entry + 1);
        // Only offsets after the segment list are accepted.
        if offset < tlv_start || offset > srh_len {
            return -1;
        }
        if delta < 0 && offset.saturating_add(delta.unsigned_abs() as usize) > srh_len {
            return -1;
        }
        let new_hdrlen = (srh_len as i64 + delta - 8) / 8;
        if !(0..=255).contains(&new_hdrlen) {
            return -1;
        }
    }
    let abs_off = srh_off + offset;
    {
        let packet = api.packet_mut();
        if delta > 0 {
            packet.splice(abs_off..abs_off, std::iter::repeat_n(0u8, delta as usize));
        } else {
            packet.drain(abs_off..abs_off + delta.unsigned_abs() as usize);
        }
        // Update the SRH header length (in 8-octet units past the first 8).
        let new_srh_units = i64::from(packet[srh_off + 1]) + delta / 8;
        packet[srh_off + 1] = new_srh_units as u8;
        if srv6_ops::adjust_payload_length(packet, delta as isize).is_err() {
            return -1;
        }
    }
    let new_len = api.packet().len();
    ctx::refresh_packet_len(api.ctx_mut(), new_len);
    if let Some(env) = env_of(api) {
        env.out.srh_modified = true;
    }
    0
}

/// `long bpf_lwt_seg6_action(skb, action, param, param_len)`
///
/// Applies one of the static SRv6 behaviours from inside an `End.BPF`
/// program. Actions that need a FIB lookup perform it immediately and store
/// the result in the packet metadata, which is what makes the program's
/// `BPF_REDIRECT` return value meaningful (§3.1).
pub fn helper_seg6_action(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let action = args[1] as u32;
    let param_len = args[3] as usize;

    // Snapshot what we need from the environment up front to keep borrows
    // short; decisions are written back at the end.
    let (local_addr, tables, flow_hash) = match env_of(api) {
        Some(env) => (env.local_addr, env.tables.clone(), env.flow_hash),
        None => return -1,
    };

    let mut decapped = false;
    let mut pushed = false;
    let outcome: Result<crate::skb::RouteOverride, ()> = (|| {
        let mut over = crate::skb::RouteOverride::default();
        match action {
            action_codes::END_X | action_codes::END_DX6 => {
                if param_len != 16 {
                    return Err(());
                }
                let nexthop = read_addr_param(api, args[2]).ok_or(())?;
                if action == action_codes::END_DX6 {
                    srv6_ops::decap_outer(api.packet_mut()).map_err(|_| ())?;
                    decapped = true;
                }
                over.nexthop = Some(nexthop);
            }
            action_codes::END_T | action_codes::END_DT6 => {
                if param_len != 4 {
                    return Err(());
                }
                let table = read_u32_param(api, args[2]).ok_or(())?;
                let table = if table == 0 { MAIN_TABLE } else { table };
                if action == action_codes::END_DT6 {
                    srv6_ops::decap_outer(api.packet_mut()).map_err(|_| ())?;
                    decapped = true;
                }
                let dst = srv6_ops::outer_dst(api.packet()).map_err(|_| ())?;
                let result = tables.lookup(table, dst, flow_hash).ok_or(())?;
                over.table = Some(table);
                over.nexthop = Some(result.nexthop.neighbour(dst));
                over.oif = Some(result.nexthop.oif);
            }
            action_codes::END_B6 => {
                let mut pbuf = [0u8; PARAM_STACK];
                let param = read_param(api, args[2], param_len, &mut pbuf).ok_or(())?;
                let dst = srv6_ops::insert_srh_inline(api.packet_mut(), &param).map_err(|_| ())?;
                pushed = true;
                if let Some(result) = tables.lookup(MAIN_TABLE, dst, flow_hash) {
                    over.nexthop = Some(result.nexthop.neighbour(dst));
                    over.oif = Some(result.nexthop.oif);
                }
            }
            action_codes::END_B6_ENCAP => {
                let mut pbuf = [0u8; PARAM_STACK];
                let param = read_param(api, args[2], param_len, &mut pbuf).ok_or(())?;
                let dst = srv6_ops::push_srh_encap(api.packet_mut(), &param, local_addr).map_err(|_| ())?;
                pushed = true;
                if let Some(result) = tables.lookup(MAIN_TABLE, dst, flow_hash) {
                    over.nexthop = Some(result.nexthop.neighbour(dst));
                    over.oif = Some(result.nexthop.oif);
                }
            }
            _ => return Err(()),
        }
        Ok(over)
    })();

    let Ok(over) = outcome else { return -1 };
    let new_len = api.packet().len();
    ctx::refresh_packet_len(api.ctx_mut(), new_len);
    if let Some(env) = env_of(api) {
        env.out.route_override = over;
        env.out.decapped = decapped;
        env.out.pushed_encap = pushed;
        env.out.seg6_action = Some(action);
    }
    0
}

/// `long bpf_lwt_push_encap(skb, type, hdr, len)`
///
/// From a BPF LWT program (not an `End.BPF` one): encapsulates the packet
/// with an outer IPv6 header and the SRH built by the program
/// ([`encap_modes::SEG6`]) or inserts the SRH into the existing IPv6 header
/// ([`encap_modes::SEG6_INLINE`]). This is the helper the delay-monitoring
/// ingress program and the hybrid-access WRR scheduler rely on (§4.1, §4.2).
pub fn helper_lwt_push_encap(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let mode = args[1];
    let len = args[3] as usize;
    let mut pbuf = [0u8; PARAM_STACK];
    let Some(srh_bytes) = read_param(api, args[2], len, &mut pbuf) else { return -1 };
    let Some(env) = env_of(api) else { return -1 };
    let local_addr = env.local_addr;
    let result = match mode {
        encap_modes::SEG6 => srv6_ops::push_srh_encap(api.packet_mut(), &srh_bytes, local_addr),
        encap_modes::SEG6_INLINE => srv6_ops::insert_srh_inline(api.packet_mut(), &srh_bytes),
        _ => return -1,
    };
    if result.is_err() {
        return -1;
    }
    let new_len = api.packet().len();
    ctx::refresh_packet_len(api.ctx_mut(), new_len);
    if let Some(env) = env_of(api) {
        env.out.pushed_encap = true;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::build_context;
    use crate::fib::{Nexthop, RouterTables};
    use crate::skb::Skb;
    use ebpf_vm::vm::{RunContext, RunState, STACK_BASE};
    use netpkt::ipv6::proto;
    use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
    use netpkt::srh::{SegmentRoutingHeader, SrhTlv};
    use netpkt::PacketBuf;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn srv6_packet_with_tlv() -> Vec<u8> {
        let mut srh = SegmentRoutingHeader::from_path(proto::UDP, &[addr("fc00::1"), addr("fc00::2")]);
        srh.tlvs.push(SrhTlv::DelayMeasurement { tx_timestamp_ns: 7 });
        build_srv6_udp_packet(addr("2001:db8::1"), &srh, 1000, 2000, &[0u8; 16], 64).data().to_vec()
    }

    struct Harness {
        env: Seg6Env,
        ctx: Vec<u8>,
        packet: Vec<u8>,
        state: RunState,
        maps: HashMap<u32, ebpf_vm::MapHandle>,
    }

    impl Harness {
        fn new(packet: Vec<u8>, tables: Arc<RouterTables>) -> Self {
            let skb = Skb::new(PacketBuf::from_slice(&packet));
            let ctx = build_context(&skb);
            let env = Seg6Env::new(addr("fc00::1"), tables, 1000).with_srh_offset(40);
            Harness { env, ctx, packet, state: RunState::new(64), maps: HashMap::new() }
        }

        fn call(&mut self, f: ebpf_vm::helpers::HelperFn, args: [u64; 5]) -> i64 {
            let mut rc = RunContext { ctx: &mut self.ctx, packet: &mut self.packet, env: &mut self.env };
            let mut api = HelperApi { state: &mut self.state, rc: &mut rc, maps: &self.maps };
            f(&mut api, args)
        }

        fn stage(&mut self, bytes: &[u8]) -> u64 {
            let addr = STACK_BASE + 64;
            let mut rc = RunContext { ctx: &mut self.ctx, packet: &mut self.packet, env: &mut self.env };
            let mut api = HelperApi { state: &mut self.state, rc: &mut rc, maps: &self.maps };
            api.write_bytes(addr, bytes).unwrap();
            addr
        }
    }

    #[test]
    fn registry_gates_helpers_by_hook() {
        let reg = seg6_helper_registry();
        assert!(reg.allowed_for(ids::LWT_SEG6_ACTION, ProgramType::LwtSeg6Local));
        assert!(!reg.allowed_for(ids::LWT_SEG6_ACTION, ProgramType::LwtXmit));
        assert!(reg.allowed_for(ids::LWT_PUSH_ENCAP, ProgramType::LwtXmit));
        assert!(!reg.allowed_for(ids::LWT_PUSH_ENCAP, ProgramType::LwtSeg6Local));
    }

    #[test]
    fn store_bytes_edits_tag_and_tlv_but_not_segments() {
        let tables = Arc::new(RouterTables::new());
        let mut h = Harness::new(srv6_packet_with_tlv(), tables);
        // Write the tag (offset 6, 2 bytes).
        let from = h.stage(&[0xbe, 0xef]);
        assert_eq!(h.call(helper_seg6_store_bytes, [0, 6, from, 2, 0]), 0);
        assert_eq!(&h.packet[40 + 6..40 + 8], &[0xbe, 0xef]);
        assert!(h.env.out.srh_modified);
        // Write the flags byte.
        let from = h.stage(&[0xa5]);
        assert_eq!(h.call(helper_seg6_store_bytes, [0, 5, from, 1, 0]), 0);
        assert_eq!(h.packet[40 + 5], 0xa5);
        // Writing into the segment list is refused.
        let from = h.stage(&[0u8; 16]);
        assert_eq!(h.call(helper_seg6_store_bytes, [0, 8, from, 16, 0]), -1);
        // Writing into the TLV area is allowed (TLVs start after 2 segments).
        let tlv_start = 8 + 2 * 16;
        let from = h.stage(&[124, 8, 0, 0, 0, 0, 0, 0]);
        assert_eq!(h.call(helper_seg6_store_bytes, [0, tlv_start as u64, from, 8, 0]), 0);
        // Out-of-range offsets are refused.
        let from = h.stage(&[0u8; 4]);
        assert_eq!(h.call(helper_seg6_store_bytes, [0, 4000, from, 4, 0]), -1);
    }

    #[test]
    fn adjust_srh_grows_and_shrinks_the_tlv_area() {
        let tables = Arc::new(RouterTables::new());
        let packet = srv6_packet_with_tlv();
        let original_len = packet.len();
        let mut h = Harness::new(packet, tables);
        let srh_len = 8 + usize::from(h.packet[41]) * 8;
        // Grow by 8 bytes at the end of the SRH.
        assert_eq!(h.call(helper_seg6_adjust_srh, [0, srh_len as u64, 8, 0, 0]), 0);
        assert_eq!(h.packet.len(), original_len + 8);
        let new_srh_len = 8 + usize::from(h.packet[41]) * 8;
        assert_eq!(new_srh_len, srh_len + 8);
        // The context was refreshed.
        assert_eq!(u32::from_le_bytes(h.ctx[16..20].try_into().unwrap()) as usize, original_len + 8);
        // IPv6 payload length was adjusted.
        let payload = u16::from_be_bytes([h.packet[4], h.packet[5]]) as usize;
        assert_eq!(payload, h.packet.len() - 40);
        // Shrink it back.
        assert_eq!(h.call(helper_seg6_adjust_srh, [0, srh_len as u64, (-8i64) as u64, 0, 0]), 0);
        assert_eq!(h.packet.len(), original_len);
        // Misaligned deltas and offsets inside the segment list are refused.
        assert_eq!(h.call(helper_seg6_adjust_srh, [0, srh_len as u64, 4, 0, 0]), -1);
        assert_eq!(h.call(helper_seg6_adjust_srh, [0, 8, 8, 0, 0]), -1);
    }

    #[test]
    fn action_end_x_sets_nexthop_override() {
        let tables = Arc::new(RouterTables::new());
        let mut h = Harness::new(srv6_packet_with_tlv(), tables);
        let nh = addr("fe80::42");
        let from = h.stage(&nh.octets());
        assert_eq!(h.call(helper_seg6_action, [0, action_codes::END_X as u64, from, 16, 0]), 0);
        assert_eq!(h.env.out.route_override.nexthop, Some(nh));
        assert_eq!(h.env.out.seg6_action, Some(action_codes::END_X));
        assert!(!h.env.out.decapped);
    }

    #[test]
    fn action_end_t_looks_up_in_the_requested_table() {
        let tables = Arc::new(RouterTables::new());
        tables.insert(100, "fc00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::9"), 7)]);
        let mut h = Harness::new(srv6_packet_with_tlv(), tables);
        let from = h.stage(&100u32.to_le_bytes());
        assert_eq!(h.call(helper_seg6_action, [0, action_codes::END_T as u64, from, 4, 0]), 0);
        assert_eq!(h.env.out.route_override.table, Some(100));
        assert_eq!(h.env.out.route_override.oif, Some(7));
        assert_eq!(h.env.out.route_override.nexthop, Some(addr("fe80::9")));
        // A lookup miss makes the helper fail.
        let tables = Arc::new(RouterTables::new());
        let mut h = Harness::new(srv6_packet_with_tlv(), tables);
        let from = h.stage(&100u32.to_le_bytes());
        assert_eq!(h.call(helper_seg6_action, [0, action_codes::END_T as u64, from, 4, 0]), -1);
    }

    #[test]
    fn action_end_dt6_decapsulates_and_looks_up_inner_destination() {
        // Build an encapsulated packet: outer IPv6 + SRH + inner IPv6/UDP.
        let inner = build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::2"), 5, 6, &[0u8; 8], 64)
            .data()
            .to_vec();
        let mut packet = inner.clone();
        let srh = SegmentRoutingHeader::from_path(proto::IPV6, &[addr("fc00::1")]);
        srv6_ops::push_srh_encap(&mut packet, &srh.to_bytes(), addr("fc00::99")).unwrap();

        let tables = Arc::new(RouterTables::new());
        tables.insert_main("2001:db8::/32".parse().unwrap(), vec![Nexthop::via(addr("fe80::d"), 3)]);
        let mut h = Harness::new(packet, tables);
        let from = h.stage(&0u32.to_le_bytes());
        assert_eq!(h.call(helper_seg6_action, [0, action_codes::END_DT6 as u64, from, 4, 0]), 0);
        assert!(h.env.out.decapped);
        assert_eq!(h.packet, inner);
        assert_eq!(h.env.out.route_override.oif, Some(3));
        // The context length was refreshed to the inner packet length.
        assert_eq!(u32::from_le_bytes(h.ctx[16..20].try_into().unwrap()) as usize, inner.len());
    }

    #[test]
    fn action_end_b6_encap_pushes_a_new_outer_header() {
        let tables = Arc::new(RouterTables::new());
        tables.insert_main("fd00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::b"), 9)]);
        let packet = srv6_packet_with_tlv();
        let original_len = packet.len();
        let mut h = Harness::new(packet, tables);
        let new_srh = SegmentRoutingHeader::from_path(proto::IPV6, &[addr("fd00::1"), addr("fd00::2")]);
        let from = h.stage(&new_srh.to_bytes());
        assert_eq!(
            h.call(
                helper_seg6_action,
                [0, action_codes::END_B6_ENCAP as u64, from, new_srh.wire_len() as u64, 0]
            ),
            0
        );
        assert!(h.env.out.pushed_encap);
        assert_eq!(h.packet.len(), original_len + 40 + new_srh.wire_len());
        assert_eq!(srv6_ops::outer_dst(&h.packet).unwrap(), addr("fd00::1"));
        assert_eq!(h.env.out.route_override.oif, Some(9));
    }

    #[test]
    fn action_rejects_unknown_codes_and_bad_params() {
        let tables = Arc::new(RouterTables::new());
        let mut h = Harness::new(srv6_packet_with_tlv(), tables);
        let from = h.stage(&[0u8; 16]);
        assert_eq!(h.call(helper_seg6_action, [0, 42, from, 16, 0]), -1);
        // END_X with a wrong parameter size.
        assert_eq!(h.call(helper_seg6_action, [0, action_codes::END_X as u64, from, 4, 0]), -1);
    }

    #[test]
    fn push_encap_wraps_plain_ipv6_traffic() {
        let plain = build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::2"), 1, 2, &[0u8; 32], 64)
            .data()
            .to_vec();
        let tables = Arc::new(RouterTables::new());
        let mut h = Harness::new(plain.clone(), tables);
        let srh = SegmentRoutingHeader::from_path(proto::IPV6, &[addr("fc00::a"), addr("2001:db8::2")]);
        let from = h.stage(&srh.to_bytes());
        assert_eq!(h.call(helper_lwt_push_encap, [0, encap_modes::SEG6, from, srh.wire_len() as u64, 0]), 0);
        assert!(h.env.out.pushed_encap);
        assert_eq!(srv6_ops::outer_dst(&h.packet).unwrap(), addr("fc00::a"));
        assert_eq!(srv6_ops::outer_src(&h.packet).unwrap(), addr("fc00::1"));
        assert_eq!(h.packet.len(), plain.len() + 40 + srh.wire_len());
        // Unknown modes are refused.
        let from = h.stage(&srh.to_bytes());
        assert_eq!(h.call(helper_lwt_push_encap, [0, 9, from, srh.wire_len() as u64, 0]), -1);
    }

    #[test]
    fn push_encap_inline_mode_inserts_srh() {
        let plain = build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::2"), 1, 2, &[0u8; 8], 64)
            .data()
            .to_vec();
        let tables = Arc::new(RouterTables::new());
        let mut h = Harness::new(plain.clone(), tables);
        let srh = SegmentRoutingHeader::from_path(proto::NONE, &[addr("fc00::a"), addr("2001:db8::2")]);
        let from = h.stage(&srh.to_bytes());
        assert_eq!(
            h.call(helper_lwt_push_encap, [0, encap_modes::SEG6_INLINE, from, srh.wire_len() as u64, 0]),
            0
        );
        let parsed = netpkt::ParsedPacket::parse(&h.packet).unwrap();
        assert_eq!(parsed.outer.dst, addr("fc00::a"));
        assert!(parsed.srh.is_some());
        assert_eq!(parsed.transport_proto, proto::UDP);
    }
}
