//! # seg6-core — the SRv6 data plane with `End.BPF`
//!
//! This crate is the Rust reproduction of the paper's primary contribution
//! (*Leveraging eBPF for programmable network functions with IPv6 Segment
//! Routing*, CoNEXT 2018): an SRv6 data plane whose endpoint behaviours can
//! be extended with operator-written eBPF programs.
//!
//! It provides:
//!
//! * a per-node [`datapath::Seg6Datapath`] combining an ECMP-capable
//!   [`fib`], the `seg6local` My-SID table ([`seg6local`]), the `seg6`
//!   transit behaviours ([`transit`]) and the BPF LWT hooks ([`lwt_bpf`]);
//! * the full set of static seg6local behaviours (`End`, `End.X`, `End.T`,
//!   `End.DX6`, `End.DT6`, `End.B6`, `End.B6.Encaps`) plus the paper's
//!   **`End.BPF`** action;
//! * the four SRv6 eBPF helpers of §3.1 ([`helpers`]):
//!   `bpf_lwt_seg6_store_bytes`, `bpf_lwt_seg6_adjust_srh`,
//!   `bpf_lwt_seg6_action` and `bpf_lwt_push_encap`, gated by hook exactly
//!   as in the kernel;
//! * the program [`ctx`] layout (the `__sk_buff` analogue) and the helper
//!   [`env`]ironment through which programs reach the FIB, the clock and the
//!   perf-event machinery.
//!
//! ## Quick example: an `End.BPF` SID running a trivial program
//!
//! ```
//! use ebpf_vm::asm::assemble;
//! use ebpf_vm::program::{load, Program, ProgramType};
//! use netpkt::packet::build_srv6_udp_packet;
//! use netpkt::srh::SegmentRoutingHeader;
//! use seg6_core::datapath::Seg6Datapath;
//! use seg6_core::fib::Nexthop;
//! use seg6_core::seg6local::Seg6LocalAction;
//! use seg6_core::skb::Skb;
//! use std::collections::HashMap;
//!
//! let mut dp = Seg6Datapath::new("fc00::1".parse().unwrap());
//! dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via("fe80::2".parse().unwrap(), 2)]);
//!
//! // The "End written in BPF" program from the paper's Figure 2: return
//! // BPF_OK and let the datapath forward to the next segment.
//! let insns = assemble("mov64 r0, 0\nexit").unwrap();
//! let prog = load(
//!     Program::new("end", ProgramType::LwtSeg6Local, insns),
//!     &HashMap::new(),
//!     &dp.helpers,
//! ).unwrap();
//! dp.add_local_sid("fc00::1:0".parse().unwrap(), Seg6LocalAction::EndBpf { prog });
//!
//! // An SRv6 packet whose first segment is that SID.
//! let srh = SegmentRoutingHeader::from_path(
//!     netpkt::proto::UDP,
//!     &["fc00::1:0".parse().unwrap(), "fc00::2:0".parse().unwrap()],
//! );
//! let pkt = build_srv6_udp_packet("2001:db8::1".parse().unwrap(), &srh, 1000, 2000, &[0; 64], 64);
//! let mut skb = Skb::new(pkt);
//! let verdict = dp.process(&mut skb, 0);
//! assert!(verdict.is_forward());
//! ```

#![warn(missing_docs)]
// The test-only `alloc-counter` feature needs one `unsafe impl GlobalAlloc`
// (and nothing else); every production build keeps the blanket ban.
#![cfg_attr(not(feature = "alloc-counter"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-counter", deny(unsafe_code))]

pub mod ctx;
pub mod datapath;
pub mod env;
pub mod error;
pub mod fib;
pub mod helpers;
pub mod lwt_bpf;
pub mod scratch;
pub mod seg6local;
pub mod skb;
pub mod srv6_ops;
pub mod transit;
pub mod verdict;

#[cfg(feature = "alloc-counter")]
pub mod alloc_counter;

pub use datapath::{BatchVerdict, DatapathStats, Seg6Datapath, WorkSummary};
pub use env::{EnvOutcome, Seg6Env};
pub use error::{Error, Result};
pub use fib::{
    Fib, FibCache, LookupHit, LookupResult, Nexthop, Route, RouterTables, TableId, MAIN_TABLE, VRF_TABLE_BASE,
};
pub use helpers::{action_codes, encap_modes, seg6_helper_registry};
pub use lwt_bpf::{LwtBpfAttachment, LwtBpfTable, LwtHook};
pub use scratch::RunScratch;
pub use seg6local::{LocalSidTable, Seg6LocalAction};
pub use skb::{RouteOverride, Skb};
pub use transit::{TransitBehaviour, TransitMode, TransitTable};
pub use verdict::{ActionOutcome, DropReason, Verdict};
