//! The BPF lightweight-tunnel hooks (`lwt_in` / `lwt_out` / `lwt_xmit`).
//!
//! These hooks pre-date the paper (§2.1 calls them "BPF LWT"); they run an
//! eBPF program for traffic matching a route, at the ingress or egress of
//! the IPv6 routing process. The paper uses the xmit hook together with its
//! new `bpf_lwt_push_encap` helper for the delay-monitoring ingress program
//! (§4.1) and the hybrid-access WRR scheduler (§4.2).

use crate::ctx;
use crate::env::Seg6Env;
use crate::fib::{flow_hash, RouterTables};
use crate::scratch::RunScratch;
use crate::skb::Skb;
use crate::srv6_ops;
use crate::verdict::{ActionOutcome, DropReason};
use ebpf_vm::helpers::HelperRegistry;
use ebpf_vm::program::{retcode, LoadedProgram};
use ebpf_vm::vm::RunContext;
use netpkt::{Ipv6Header, Ipv6Prefix};
use std::net::Ipv6Addr;
use std::sync::Arc;

/// Which point of the routing process the program is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LwtHook {
    /// After the route lookup, for packets addressed to the local host.
    In,
    /// After the route lookup, for locally generated packets.
    Out,
    /// Just before transmission of forwarded packets.
    Xmit,
}

/// A BPF program attached to a route.
#[derive(Debug, Clone)]
pub struct LwtBpfAttachment {
    /// Hook point.
    pub hook: LwtHook,
    /// The verified program. Its execution tier
    /// ([`LoadedProgram::exec_tier`]) decides how it runs; use
    /// [`LoadedProgram::set_exec_tier`] to pin one.
    pub prog: Arc<LoadedProgram>,
}

/// Routes with BPF programs attached, keyed by destination prefix.
#[derive(Debug, Default, Clone)]
pub struct LwtBpfTable {
    entries: Vec<(Ipv6Prefix, LwtBpfAttachment)>,
}

impl LwtBpfTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches `attachment` to traffic towards `prefix`.
    pub fn insert(&mut self, prefix: Ipv6Prefix, attachment: LwtBpfAttachment) {
        match self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            Some(slot) => slot.1 = attachment,
            None => self.entries.push((prefix, attachment)),
        }
    }

    /// Removes the attachment for `prefix`.
    pub fn remove(&mut self, prefix: &Ipv6Prefix) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(p, _)| p != prefix);
        self.entries.len() != before
    }

    /// Finds the attachment matching `dst` at `hook` (longest prefix wins).
    pub fn lookup(&self, dst: Ipv6Addr, hook: LwtHook) -> Option<&LwtBpfAttachment> {
        self.entries
            .iter()
            .filter(|(p, a)| p.contains(dst) && a.hook == hook)
            .max_by_key(|(p, _)| p.len())
            .map(|(_, a)| a)
    }

    /// Number of attachments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no program is attached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Runs a BPF LWT program on `skb`, reusing the caller's scratch state so
/// the per-packet path performs no heap allocation.
#[allow(clippy::too_many_arguments)] // mirrors ActionCtx's fields plus the skb and scratch
pub fn run_lwt_bpf(
    attachment: &LwtBpfAttachment,
    skb: &mut Skb,
    local_addr: Ipv6Addr,
    tables: &Arc<RouterTables>,
    helpers: &HelperRegistry,
    now_ns: u64,
    cpu: u32,
    scratch: &mut RunScratch,
) -> ActionOutcome {
    let RunScratch { state, ctx: ctx_bytes, pkt: packet } = scratch;
    packet.clear();
    packet.extend_from_slice(skb.packet.data());
    let header = match Ipv6Header::parse(packet) {
        Ok(h) => h,
        Err(_) => return ActionOutcome::Drop(DropReason::Malformed),
    };
    let fhash = flow_hash(header.src, header.dst, header.flow_label);
    let mut env = Seg6Env::new(local_addr, Arc::clone(tables), now_ns).with_flow_hash(fhash).with_cpu(cpu);
    if let Some((off, _)) = srv6_ops::find_srh(packet) {
        env.srh_offset = Some(off);
    }
    ctx::build_context_into(skb, ctx_bytes);
    let result = {
        let mut rc = RunContext { ctx: ctx_bytes.as_mut_slice(), packet, env: &mut env };
        ebpf_vm::vm::run_program_with_state(
            &attachment.prog,
            helpers,
            &mut rc,
            attachment.prog.exec_tier(),
            state,
        )
    };
    let code = match result {
        Ok(code) => code,
        Err(_) => return ActionOutcome::Drop(DropReason::BpfError),
    };
    let dst = match srv6_ops::outer_dst(packet) {
        Ok(dst) => dst,
        Err(_) => return ActionOutcome::Drop(DropReason::Malformed),
    };
    skb.packet.set_data(packet);
    ctx::read_back(ctx_bytes, skb);
    match code {
        retcode::BPF_OK => ActionOutcome::Forward { dst, route_override: Default::default() },
        retcode::BPF_REDIRECT => ActionOutcome::Forward { dst, route_override: env.out.route_override },
        retcode::BPF_DROP => ActionOutcome::Drop(DropReason::BpfDrop),
        _ => ActionOutcome::Drop(DropReason::BpfError),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::seg6_helper_registry;
    use ebpf_vm::asm::assemble;
    use ebpf_vm::program::{load, Program, ProgramType};
    use netpkt::packet::build_ipv6_udp_packet;
    use std::collections::HashMap;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn load_xmit(source: &str, helpers: &HelperRegistry) -> Arc<LoadedProgram> {
        let prog = Program::new("lwt", ProgramType::LwtXmit, assemble(source).unwrap());
        load(prog, &HashMap::new(), helpers).unwrap()
    }

    fn plain_skb() -> Skb {
        Skb::new(build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::2"), 1, 2, &[0u8; 16], 64))
    }

    #[test]
    fn table_lookup_filters_by_hook() {
        let helpers = seg6_helper_registry();
        let prog = load_xmit("mov64 r0, 0\nexit", &helpers);
        let mut table = LwtBpfTable::new();
        table.insert(
            "2001:db8::/32".parse().unwrap(),
            LwtBpfAttachment { hook: LwtHook::Xmit, prog: prog.clone() },
        );
        assert!(table.lookup(addr("2001:db8::5"), LwtHook::Xmit).is_some());
        assert!(table.lookup(addr("2001:db8::5"), LwtHook::In).is_none());
        assert!(table.lookup(addr("2abc::1"), LwtHook::Xmit).is_none());
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
        assert!(table.remove(&"2001:db8::/32".parse().unwrap()));
    }

    #[test]
    fn bpf_ok_lets_the_packet_continue() {
        let helpers = seg6_helper_registry();
        let tables = Arc::new(RouterTables::new());
        let prog = load_xmit("mov64 r0, 0\nexit", &helpers);
        let attachment = LwtBpfAttachment { hook: LwtHook::Xmit, prog };
        let mut skb = plain_skb();
        let outcome = run_lwt_bpf(
            &attachment,
            &mut skb,
            addr("fc00::99"),
            &tables,
            &helpers,
            0,
            0,
            &mut RunScratch::new(),
        );
        match outcome {
            ActionOutcome::Forward { dst, .. } => assert_eq!(dst, addr("2001:db8::2")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bpf_drop_is_honoured() {
        let helpers = seg6_helper_registry();
        let tables = Arc::new(RouterTables::new());
        let prog = load_xmit("mov64 r0, 2\nexit", &helpers);
        let attachment = LwtBpfAttachment { hook: LwtHook::Xmit, prog };
        let mut skb = plain_skb();
        assert_eq!(
            run_lwt_bpf(
                &attachment,
                &mut skb,
                addr("fc00::99"),
                &tables,
                &helpers,
                0,
                0,
                &mut RunScratch::new()
            ),
            ActionOutcome::Drop(DropReason::BpfDrop)
        );
    }

    #[test]
    fn seg6local_only_helpers_are_rejected_at_load_time() {
        // An lwt_xmit program calling bpf_lwt_seg6_adjust_srh must not load.
        let helpers = seg6_helper_registry();
        let insns = assemble("mov64 r2, 8\nmov64 r3, 8\ncall 75\nexit").unwrap();
        let prog = Program::new("bad", ProgramType::LwtXmit, insns);
        assert!(load(prog, &HashMap::new(), &helpers).is_err());
    }
}
