//! Reusable per-datapath scratch state.
//!
//! Everything a packet's journey through the datapath used to allocate —
//! the VM register/stack state, the program context buffer, the working
//! copy of the packet bytes — lives here once per datapath instance (one
//! per worker shard) and is reused for every packet. After the first
//! packet warms the buffers up, the steady-state hot path performs no heap
//! allocation; the `alloc-counter` test feature proves it.

use ebpf_vm::vm::RunState;

/// Scratch buffers reused across packets by one datapath instance.
#[derive(Debug)]
pub struct RunScratch {
    /// VM state (registers, 512-byte stack, map-value regions); reset —
    /// not reallocated — before every program run.
    pub state: RunState,
    /// The program context buffer (the `__sk_buff` analogue).
    pub ctx: Vec<u8>,
    /// Working copy of the packet bytes for actions that resize it.
    pub pkt: Vec<u8>,
}

impl RunScratch {
    /// Fresh scratch state; buffers grow to their steady-state sizes on
    /// first use and stay there.
    pub fn new() -> Self {
        RunScratch { state: RunState::new(0), ctx: Vec::new(), pkt: Vec::new() }
    }
}

impl Default for RunScratch {
    fn default() -> Self {
        Self::new()
    }
}
