//! The `seg6local` lightweight tunnel: SRv6 endpoint behaviours bound to
//! local SIDs, including the paper's contribution — the `End.BPF` action.
//!
//! A router advertises segments (IPv6 addresses) and installs, for each of
//! them, the behaviour to execute when a packet's current segment matches:
//! the static behaviours (`End`, `End.X`, `End.T`, `End.DX6`, `End.DT6`,
//! `End.B6`, `End.B6.Encaps`) are re-implemented here from their SRv6
//! network-programming definitions, and `End.BPF` advances the SRH and then
//! hands the packet to an eBPF program exactly as §3 of the paper
//! describes.

use crate::ctx;
use crate::env::Seg6Env;
use crate::fib::{flow_hash, RouterTables, TableId, MAIN_TABLE};
use crate::scratch::RunScratch;
use crate::skb::{RouteOverride, Skb};
use crate::srv6_ops;
use crate::verdict::{ActionOutcome, DropReason};
use ebpf_vm::helpers::HelperRegistry;
use ebpf_vm::program::{retcode, LoadedProgram};
use ebpf_vm::vm::RunContext;
use netpkt::srh::SegmentRoutingHeader;
use netpkt::{Ipv6Header, Ipv6Prefix};
use std::net::Ipv6Addr;
use std::sync::Arc;

/// A seg6local behaviour bound to a SID.
#[derive(Debug, Clone)]
pub enum Seg6LocalAction {
    /// `End`: advance to the next segment and forward.
    End,
    /// `End.X`: advance and forward to a specific layer-3 next hop.
    EndX {
        /// The next hop to forward to.
        nexthop: Ipv6Addr,
    },
    /// `End.T`: advance and look the next segment up in a specific table
    /// (a numeric id or a VRF registered with
    /// [`RouterTables::register_vrf`]).
    EndT {
        /// Routing table id.
        table: TableId,
    },
    /// `End.DX6`: decapsulate and forward the inner packet to a next hop.
    EndDX6 {
        /// The next hop to forward the inner packet to.
        nexthop: Ipv6Addr,
    },
    /// `End.DT6`: decapsulate and look the inner destination up in a table
    /// (a numeric id or a VRF registered with
    /// [`RouterTables::register_vrf`]).
    EndDT6 {
        /// Routing table id.
        table: TableId,
    },
    /// `End.B6`: insert a new SRH on top of the existing one.
    EndB6 {
        /// The SRH to insert (segments in wire order).
        srh: SegmentRoutingHeader,
    },
    /// `End.B6.Encaps`: encapsulate in an outer IPv6 header with a new SRH.
    EndB6Encaps {
        /// The SRH of the outer encapsulation.
        srh: SegmentRoutingHeader,
    },
    /// `End.BPF`: advance to the next segment, then run the attached eBPF
    /// program (the paper's new action). The execution tier comes from the
    /// program itself ([`LoadedProgram::exec_tier`], native where the host
    /// supports it); use [`LoadedProgram::set_exec_tier`] to pin one.
    EndBpf {
        /// The verified program to execute.
        prog: Arc<LoadedProgram>,
    },
}

impl Seg6LocalAction {
    /// An `End.T` behaviour forwarding via `table` — pass the id returned
    /// by [`RouterTables::register_vrf`] to route through a named VRF.
    pub fn end_t(table: TableId) -> Self {
        Seg6LocalAction::EndT { table }
    }

    /// An `End.DT6` behaviour decapsulating and looking the inner
    /// destination up in `table` (numeric or VRF-registered).
    pub fn end_dt6(table: TableId) -> Self {
        Seg6LocalAction::EndDT6 { table }
    }

    /// Short name, as `ip -6 route` would print it.
    pub fn name(&self) -> &'static str {
        match self {
            Seg6LocalAction::End => "End",
            Seg6LocalAction::EndX { .. } => "End.X",
            Seg6LocalAction::EndT { .. } => "End.T",
            Seg6LocalAction::EndDX6 { .. } => "End.DX6",
            Seg6LocalAction::EndDT6 { .. } => "End.DT6",
            Seg6LocalAction::EndB6 { .. } => "End.B6",
            Seg6LocalAction::EndB6Encaps { .. } => "End.B6.Encaps",
            Seg6LocalAction::EndBpf { .. } => "End.BPF",
        }
    }
}

/// The "My SID" table: local SIDs and their behaviours.
#[derive(Debug, Default, Clone)]
pub struct LocalSidTable {
    entries: Vec<(Ipv6Prefix, Seg6LocalAction)>,
}

impl LocalSidTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `action` to `sid` (longest prefix wins on lookup; SIDs are
    /// usually /128).
    pub fn insert(&mut self, sid: Ipv6Prefix, action: Seg6LocalAction) {
        match self.entries.iter_mut().find(|(p, _)| *p == sid) {
            Some(slot) => slot.1 = action,
            None => self.entries.push((sid, action)),
        }
    }

    /// Removes the binding for `sid`.
    pub fn remove(&mut self, sid: &Ipv6Prefix) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(p, _)| p != sid);
        self.entries.len() != before
    }

    /// Finds the action bound to `dst`, if any.
    pub fn lookup(&self, dst: Ipv6Addr) -> Option<(&Ipv6Prefix, &Seg6LocalAction)> {
        self.entries.iter().filter(|(p, _)| p.contains(dst)).max_by_key(|(p, _)| p.len()).map(|(p, a)| (p, a))
    }

    /// Number of installed SIDs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the installed SIDs.
    pub fn iter(&self) -> impl Iterator<Item = &(Ipv6Prefix, Seg6LocalAction)> {
        self.entries.iter()
    }
}

/// Everything an action needs from the router it runs on.
pub struct ActionCtx<'a> {
    /// The SID that matched (used as the source of pushed encapsulations).
    pub local_sid: Ipv6Addr,
    /// The router's FIB tables.
    pub tables: &'a Arc<RouterTables>,
    /// Helper registry used to run End.BPF programs.
    pub helpers: &'a HelperRegistry,
    /// Current time in nanoseconds.
    pub now_ns: u64,
    /// Logical CPU (worker shard) executing the action; End.BPF programs
    /// see it as their processor id and per-CPU map slot.
    pub cpu: u32,
}

/// Applies a seg6local action to `skb`. `scratch` supplies the reusable VM
/// state and packet/context buffers; no per-packet allocation happens here
/// once the buffers are warm.
pub fn apply_action(
    action: &Seg6LocalAction,
    skb: &mut Skb,
    actx: &ActionCtx<'_>,
    scratch: &mut RunScratch,
) -> ActionOutcome {
    match action {
        Seg6LocalAction::End => {
            with_advance(skb, |dst| ActionOutcome::Forward { dst, route_override: RouteOverride::default() })
        }
        Seg6LocalAction::EndX { nexthop } => with_advance(skb, |dst| ActionOutcome::Forward {
            dst,
            route_override: RouteOverride { nexthop: Some(*nexthop), ..Default::default() },
        }),
        Seg6LocalAction::EndT { table } => with_advance(skb, |dst| ActionOutcome::Forward {
            dst,
            route_override: RouteOverride { table: Some(*table), ..Default::default() },
        }),
        Seg6LocalAction::EndDX6 { nexthop } => match decap_in_place(skb) {
            Ok(inner_dst) => ActionOutcome::Forward {
                dst: inner_dst,
                route_override: RouteOverride { nexthop: Some(*nexthop), ..Default::default() },
            },
            Err(_) => ActionOutcome::Drop(DropReason::DecapFailed),
        },
        Seg6LocalAction::EndDT6 { table } => match decap_in_place(skb) {
            Ok(inner_dst) => ActionOutcome::Forward {
                dst: inner_dst,
                route_override: RouteOverride { table: Some(*table), ..Default::default() },
            },
            Err(_) => ActionOutcome::Drop(DropReason::DecapFailed),
        },
        Seg6LocalAction::EndB6 { srh } => {
            let pkt = &mut scratch.pkt;
            pkt.clear();
            pkt.extend_from_slice(skb.packet.data());
            match srv6_ops::insert_srh_inline(pkt, &srh.to_bytes()) {
                Ok(dst) => {
                    skb.packet.set_data(pkt);
                    ActionOutcome::Forward { dst, route_override: RouteOverride::default() }
                }
                Err(_) => ActionOutcome::Drop(DropReason::Malformed),
            }
        }
        Seg6LocalAction::EndB6Encaps { srh } => {
            let pkt = &mut scratch.pkt;
            pkt.clear();
            pkt.extend_from_slice(skb.packet.data());
            match srv6_ops::push_srh_encap(pkt, &srh.to_bytes(), actx.local_sid) {
                Ok(dst) => {
                    skb.packet.set_data(pkt);
                    ActionOutcome::Forward { dst, route_override: RouteOverride::default() }
                }
                Err(_) => ActionOutcome::Drop(DropReason::Malformed),
            }
        }
        Seg6LocalAction::EndBpf { prog } => run_end_bpf(skb, prog, actx, scratch),
    }
}

/// Shared "endpoint" precondition handling: the packet must carry an SRH
/// with `segments_left > 0`; the SRH is advanced **in place** (it never
/// changes size) and `then` builds the outcome from the new destination.
fn with_advance(skb: &mut Skb, then: impl FnOnce(Ipv6Addr) -> ActionOutcome) -> ActionOutcome {
    match srv6_ops::advance_srh(skb.packet.data_mut()) {
        Ok(dst) => then(dst),
        Err("packet has no SRH") => ActionOutcome::Drop(DropReason::NoSrh),
        Err("segments_left is zero") => ActionOutcome::Drop(DropReason::SegmentsLeftZero),
        Err(_) => ActionOutcome::Drop(DropReason::Malformed),
    }
}

/// Decapsulation as an `skb_pull`: validate, then move the packet's start
/// forward — the headroom absorbs the removed headers, nothing reallocates.
fn decap_in_place(skb: &mut Skb) -> Result<Ipv6Addr, &'static str> {
    let inner_off = srv6_ops::decap_offset(skb.packet.data())?;
    skb.packet.pull(inner_off).map_err(|_| "pull failed")?;
    srv6_ops::outer_dst(skb.packet.data())
}

/// The `End.BPF` action (§3 of the paper): advance the SRH, run the
/// program, validate the SRH if it was edited, and honour the program's
/// return code (`BPF_OK` / `BPF_DROP` / `BPF_REDIRECT`).
pub fn run_end_bpf(
    skb: &mut Skb,
    prog: &LoadedProgram,
    actx: &ActionCtx<'_>,
    scratch: &mut RunScratch,
) -> ActionOutcome {
    let RunScratch { state, ctx: ctx_bytes, pkt: packet } = scratch;
    // Helpers may resize the packet, so the program runs against the
    // reusable scratch copy and commits back into the skb on success.
    packet.clear();
    packet.extend_from_slice(skb.packet.data());
    // 1. Endpoint precondition + SRH advance.
    match srv6_ops::advance_srh(packet) {
        Ok(_) => {}
        Err("packet has no SRH") => return ActionOutcome::Drop(DropReason::NoSrh),
        Err("segments_left is zero") => return ActionOutcome::Drop(DropReason::SegmentsLeftZero),
        Err(_) => return ActionOutcome::Drop(DropReason::Malformed),
    }
    let Some((srh_off, _)) = srv6_ops::find_srh(packet) else {
        return ActionOutcome::Drop(DropReason::NoSrh);
    };
    // 2. Build the program's context and environment.
    let header = match Ipv6Header::parse(packet) {
        Ok(h) => h,
        Err(_) => return ActionOutcome::Drop(DropReason::Malformed),
    };
    let fhash = flow_hash(header.src, header.dst, header.flow_label);
    let mut env = Seg6Env::new(actx.local_sid, Arc::clone(actx.tables), actx.now_ns)
        .with_srh_offset(srh_off)
        .with_flow_hash(fhash)
        .with_cpu(actx.cpu);
    ctx::build_context_into(skb, ctx_bytes);
    ctx::refresh_packet_len(ctx_bytes, packet.len());
    // 3. Run the program on the reused VM state.
    let result = {
        let mut rc = RunContext { ctx: ctx_bytes.as_mut_slice(), packet, env: &mut env };
        ebpf_vm::vm::run_program_with_state(prog, actx.helpers, &mut rc, prog.exec_tier(), state)
    };
    let code = match result {
        Ok(code) => code,
        Err(_) => return ActionOutcome::Drop(DropReason::BpfError),
    };
    // 4. Post-program SRH validation, as the kernel performs it.
    if env.out.srh_modified && !env.out.decapped && srv6_ops::validate_after_bpf(packet).is_err() {
        return ActionOutcome::Drop(DropReason::SrhValidationFailed);
    }
    let dst = match srv6_ops::outer_dst(packet) {
        Ok(dst) => dst,
        Err(_) => return ActionOutcome::Drop(DropReason::Malformed),
    };
    // 5. Honour the return code.
    skb.packet.set_data(packet);
    ctx::read_back(ctx_bytes, skb);
    match code {
        retcode::BPF_OK => ActionOutcome::Forward { dst, route_override: RouteOverride::default() },
        retcode::BPF_REDIRECT => ActionOutcome::Forward { dst, route_override: env.out.route_override },
        retcode::BPF_DROP => ActionOutcome::Drop(DropReason::BpfDrop),
        _ => ActionOutcome::Drop(DropReason::BpfError),
    }
}

/// Looks up `table` falling back to the main table when the id is zero.
pub fn effective_table(table: Option<TableId>) -> TableId {
    match table {
        Some(0) | None => MAIN_TABLE,
        Some(id) => id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::seg6_helper_registry;
    use ebpf_vm::asm::assemble;
    use ebpf_vm::program::{load, Program, ProgramType};
    use netpkt::ipv6::proto;
    use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
    use std::collections::HashMap;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn srv6_skb(path: &[&str]) -> Skb {
        let segments: Vec<Ipv6Addr> = path.iter().map(|s| addr(s)).collect();
        let srh = SegmentRoutingHeader::from_path(proto::UDP, &segments);
        Skb::new(build_srv6_udp_packet(addr("2001:db8::1"), &srh, 1000, 2000, &[0u8; 32], 64))
    }

    fn encapsulated_skb() -> Skb {
        let inner = build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::2"), 5, 6, &[0u8; 8], 64)
            .data()
            .to_vec();
        let mut packet = inner;
        let srh = SegmentRoutingHeader::from_path(proto::IPV6, &[addr("fc00::11")]);
        srv6_ops::push_srh_encap(&mut packet, &srh.to_bytes(), addr("fc00::99")).unwrap();
        Skb::new(netpkt::PacketBuf::from_slice(&packet))
    }

    fn actx<'a>(tables: &'a Arc<RouterTables>, helpers: &'a HelperRegistry) -> ActionCtx<'a> {
        ActionCtx { local_sid: addr("fc00::11"), tables, helpers, now_ns: 1_000, cpu: 0 }
    }

    fn load_seg6_prog(source: &str, helpers: &HelperRegistry) -> Arc<LoadedProgram> {
        let insns = assemble(source).unwrap();
        let prog = Program::new("test", ProgramType::LwtSeg6Local, insns);
        load(prog, &HashMap::new(), helpers).unwrap()
    }

    #[test]
    fn local_sid_table_longest_prefix_lookup() {
        let mut table = LocalSidTable::new();
        table.insert("fc00::/64".parse().unwrap(), Seg6LocalAction::End);
        table.insert("fc00::1".parse().unwrap(), Seg6LocalAction::EndT { table: 7 });
        assert_eq!(table.len(), 2);
        let (_, action) = table.lookup(addr("fc00::1")).unwrap();
        assert_eq!(action.name(), "End.T");
        let (_, action) = table.lookup(addr("fc00::2")).unwrap();
        assert_eq!(action.name(), "End");
        assert!(table.lookup(addr("2001::1")).is_none());
        assert!(table.remove(&"fc00::1".parse().unwrap()));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn end_advances_and_requests_default_lookup() {
        let tables = Arc::new(RouterTables::new());
        let helpers = seg6_helper_registry();
        let mut skb = srv6_skb(&["fc00::11", "fc00::22"]);
        let outcome =
            apply_action(&Seg6LocalAction::End, &mut skb, &actx(&tables, &helpers), &mut RunScratch::new());
        match outcome {
            ActionOutcome::Forward { dst, route_override } => {
                assert_eq!(dst, addr("fc00::22"));
                assert!(!route_override.is_set());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // The packet's destination was rewritten.
        assert_eq!(srv6_ops::outer_dst(skb.packet.data()).unwrap(), addr("fc00::22"));
    }

    #[test]
    fn end_requires_srh_and_remaining_segments() {
        let tables = Arc::new(RouterTables::new());
        let helpers = seg6_helper_registry();
        let mut plain = Skb::new(build_ipv6_udp_packet(addr("::1"), addr("::2"), 1, 2, &[0; 8], 64));
        assert_eq!(
            apply_action(&Seg6LocalAction::End, &mut plain, &actx(&tables, &helpers), &mut RunScratch::new()),
            ActionOutcome::Drop(DropReason::NoSrh)
        );
        let mut last = srv6_skb(&["fc00::11"]);
        assert_eq!(
            apply_action(&Seg6LocalAction::End, &mut last, &actx(&tables, &helpers), &mut RunScratch::new()),
            ActionOutcome::Drop(DropReason::SegmentsLeftZero)
        );
    }

    #[test]
    fn end_x_and_end_t_install_overrides() {
        let tables = Arc::new(RouterTables::new());
        let helpers = seg6_helper_registry();
        let mut skb = srv6_skb(&["fc00::11", "fc00::22"]);
        let outcome = apply_action(
            &Seg6LocalAction::EndX { nexthop: addr("fe80::1") },
            &mut skb,
            &actx(&tables, &helpers),
            &mut RunScratch::new(),
        );
        match outcome {
            ActionOutcome::Forward { route_override, .. } => {
                assert_eq!(route_override.nexthop, Some(addr("fe80::1")))
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let mut skb = srv6_skb(&["fc00::11", "fc00::22"]);
        let outcome = apply_action(
            &Seg6LocalAction::EndT { table: 9 },
            &mut skb,
            &actx(&tables, &helpers),
            &mut RunScratch::new(),
        );
        match outcome {
            ActionOutcome::Forward { route_override, .. } => assert_eq!(route_override.table, Some(9)),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn end_dt6_decapsulates() {
        let tables = Arc::new(RouterTables::new());
        let helpers = seg6_helper_registry();
        let mut skb = encapsulated_skb();
        let before = skb.len();
        let outcome = apply_action(
            &Seg6LocalAction::EndDT6 { table: MAIN_TABLE },
            &mut skb,
            &actx(&tables, &helpers),
            &mut RunScratch::new(),
        );
        match outcome {
            ActionOutcome::Forward { dst, route_override } => {
                assert_eq!(dst, addr("2001:db8::2"));
                assert_eq!(route_override.table, Some(MAIN_TABLE));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(skb.len() < before);
        // Decapsulating a non-encapsulated packet fails.
        let mut skb = srv6_skb(&["fc00::11", "fc00::22"]);
        assert_eq!(
            apply_action(
                &Seg6LocalAction::EndDT6 { table: MAIN_TABLE },
                &mut skb,
                &actx(&tables, &helpers),
                &mut RunScratch::new()
            ),
            ActionOutcome::Drop(DropReason::DecapFailed)
        );
    }

    #[test]
    fn end_b6_encaps_wraps_the_packet() {
        let tables = Arc::new(RouterTables::new());
        let helpers = seg6_helper_registry();
        let mut skb = srv6_skb(&["fc00::11", "fc00::22"]);
        let before = skb.len();
        let srh = SegmentRoutingHeader::from_path(proto::IPV6, &[addr("fd00::1"), addr("fd00::2")]);
        let outcome = apply_action(
            &Seg6LocalAction::EndB6Encaps { srh: srh.clone() },
            &mut skb,
            &actx(&tables, &helpers),
            &mut RunScratch::new(),
        );
        match outcome {
            ActionOutcome::Forward { dst, .. } => assert_eq!(dst, addr("fd00::1")),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(skb.len(), before + 40 + srh.wire_len());
    }

    #[test]
    fn end_bpf_ok_performs_default_forwarding() {
        let tables = Arc::new(RouterTables::new());
        let helpers = seg6_helper_registry();
        // The simplest possible program: return BPF_OK (the paper's "End"
        // written in BPF, 1 SLOC).
        let prog = load_seg6_prog("mov64 r0, 0\nexit", &helpers);
        let mut skb = srv6_skb(&["fc00::11", "fc00::22"]);
        let outcome = apply_action(
            &Seg6LocalAction::EndBpf { prog },
            &mut skb,
            &actx(&tables, &helpers),
            &mut RunScratch::new(),
        );
        match outcome {
            ActionOutcome::Forward { dst, route_override } => {
                assert_eq!(dst, addr("fc00::22"));
                assert!(!route_override.is_set());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn end_bpf_drop_is_honoured() {
        let tables = Arc::new(RouterTables::new());
        let helpers = seg6_helper_registry();
        let prog = load_seg6_prog("mov64 r0, 2\nexit", &helpers);
        let mut skb = srv6_skb(&["fc00::11", "fc00::22"]);
        assert_eq!(
            apply_action(
                &Seg6LocalAction::EndBpf { prog },
                &mut skb,
                &actx(&tables, &helpers),
                &mut RunScratch::new(),
            ),
            ActionOutcome::Drop(DropReason::BpfDrop)
        );
    }

    #[test]
    fn end_bpf_requires_remaining_segments() {
        let tables = Arc::new(RouterTables::new());
        let helpers = seg6_helper_registry();
        let prog = load_seg6_prog("mov64 r0, 0\nexit", &helpers);
        let mut skb = srv6_skb(&["fc00::11"]);
        assert_eq!(
            apply_action(
                &Seg6LocalAction::EndBpf { prog },
                &mut skb,
                &actx(&tables, &helpers),
                &mut RunScratch::new(),
            ),
            ActionOutcome::Drop(DropReason::SegmentsLeftZero)
        );
    }

    #[test]
    fn end_bpf_unknown_return_code_drops() {
        let tables = Arc::new(RouterTables::new());
        let helpers = seg6_helper_registry();
        let prog = load_seg6_prog("mov64 r0, 99\nexit", &helpers);
        let mut skb = srv6_skb(&["fc00::11", "fc00::22"]);
        assert_eq!(
            apply_action(
                &Seg6LocalAction::EndBpf { prog },
                &mut skb,
                &actx(&tables, &helpers),
                &mut RunScratch::new(),
            ),
            ActionOutcome::Drop(DropReason::BpfError)
        );
    }

    #[test]
    fn end_bpf_all_exec_tiers_agree() {
        let tables = Arc::new(RouterTables::new());
        let helpers = seg6_helper_registry();
        let prog = load_seg6_prog("mov64 r0, 0\nexit", &helpers);
        for tier in ebpf_vm::ExecTier::ALL {
            prog.set_exec_tier(tier);
            let mut skb = srv6_skb(&["fc00::11", "fc00::22"]);
            let outcome = apply_action(
                &Seg6LocalAction::EndBpf { prog: prog.clone() },
                &mut skb,
                &actx(&tables, &helpers),
                &mut RunScratch::new(),
            );
            assert!(matches!(outcome, ActionOutcome::Forward { .. }), "tier {}", tier.name());
        }
    }

    #[test]
    fn action_names_and_effective_table() {
        assert_eq!(Seg6LocalAction::End.name(), "End");
        assert_eq!(Seg6LocalAction::EndDT6 { table: 1 }.name(), "End.DT6");
        assert_eq!(effective_table(None), MAIN_TABLE);
        assert_eq!(effective_table(Some(0)), MAIN_TABLE);
        assert_eq!(effective_table(Some(42)), 42);
    }
}
