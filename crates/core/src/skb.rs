//! The socket-buffer analogue carried through the data plane.
//!
//! A [`Skb`] bundles the packet bytes with the metadata the kernel keeps
//! alongside them: receive timestamp, ingress interface, mark, and — central
//! to the paper's `BPF_REDIRECT` semantics — the destination/next-hop
//! override that `bpf_lwt_seg6_action` installs so that the default
//! endpoint lookup is skipped after the program returns.

use crate::fib::TableId;
use netpkt::PacketBuf;
use std::net::Ipv6Addr;

/// Routing decision attached to the packet by a helper or by the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteOverride {
    /// Forward to this layer-3 neighbour instead of looking the destination
    /// up in the FIB (set by `End.X`).
    pub nexthop: Option<Ipv6Addr>,
    /// Interface the packet must leave through.
    pub oif: Option<u32>,
    /// Table the destination must be looked up in (set by `End.T` /
    /// `End.DT6`).
    pub table: Option<TableId>,
}

impl RouteOverride {
    /// Whether any field is set.
    pub fn is_set(&self) -> bool {
        self.nexthop.is_some() || self.oif.is_some() || self.table.is_some()
    }
}

/// A packet plus its kernel-side metadata.
#[derive(Debug, Clone)]
pub struct Skb {
    /// The packet bytes, starting at the outermost IPv6 header.
    pub packet: PacketBuf,
    /// Time the packet entered the node, in simulation nanoseconds (the "RX
    /// software timestamp" read by `End.DM`).
    pub rx_timestamp_ns: u64,
    /// Interface the packet arrived on.
    pub ingress_ifindex: u32,
    /// Netfilter-style mark, writable by eBPF programs via the context.
    pub mark: u32,
    /// Destination override installed by SRv6 actions.
    pub route_override: RouteOverride,
}

impl Skb {
    /// Wraps a packet with default metadata.
    pub fn new(packet: PacketBuf) -> Self {
        Skb {
            packet,
            rx_timestamp_ns: 0,
            ingress_ifindex: 0,
            mark: 0,
            route_override: RouteOverride::default(),
        }
    }

    /// Wraps a packet received at `rx_timestamp_ns` on `ingress_ifindex`.
    pub fn received(packet: PacketBuf, rx_timestamp_ns: u64, ingress_ifindex: u32) -> Self {
        Skb { packet, rx_timestamp_ns, ingress_ifindex, mark: 0, route_override: RouteOverride::default() }
    }

    /// Consumes the skb and hands its packet buffer back — the recycle
    /// hand-off of the ingestion loop: a worker that has emitted a
    /// packet's verdict pushes the drained storage into its free-ring (and
    /// a dispatcher that has copied an output out returns it to the
    /// `netpkt::BufPool` arena), so the next packet reuses the allocation.
    /// The metadata (timestamps, overrides) is dropped with the skb.
    pub fn into_packet(self) -> PacketBuf {
        self.packet
    }

    /// Packet length in bytes.
    pub fn len(&self) -> usize {
        self.packet.len()
    }

    /// Whether the packet is empty.
    pub fn is_empty(&self) -> bool {
        self.packet.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_no_override() {
        let skb = Skb::new(PacketBuf::from_slice(&[1, 2, 3]));
        assert_eq!(skb.len(), 3);
        assert!(!skb.is_empty());
        assert!(!skb.route_override.is_set());
    }

    #[test]
    fn received_records_timestamp_and_ifindex() {
        let skb = Skb::received(PacketBuf::from_slice(&[0u8; 40]), 123_456, 2);
        assert_eq!(skb.rx_timestamp_ns, 123_456);
        assert_eq!(skb.ingress_ifindex, 2);
    }

    #[test]
    fn route_override_is_set_detection() {
        assert!(!RouteOverride::default().is_set());
        let o = RouteOverride { table: Some(254), ..Default::default() };
        assert!(o.is_set());
        let o = RouteOverride { nexthop: Some("fe80::1".parse().unwrap()), ..Default::default() };
        assert!(o.is_set());
    }
}
