//! Low-level SRv6 packet operations shared by the static seg6local actions,
//! the seg6 transit behaviours and the eBPF helpers.
//!
//! All functions operate on the raw packet bytes (a `Vec<u8>` starting at
//! the outermost IPv6 header) so that both the static datapath and the
//! helper functions running under the VM use exactly the same code.

use netpkt::ipv6::{proto, Ipv6Header, IPV6_HEADER_LEN};
use netpkt::srh::SegmentRoutingHeader;
use std::net::Ipv6Addr;

/// Default hop limit of headers pushed by encapsulation.
pub const ENCAP_HOP_LIMIT: u8 = 64;

/// Offset of the destination address within an IPv6 header.
const DST_OFFSET: usize = 24;
/// Offset of the payload-length field within an IPv6 header.
const PAYLOAD_LEN_OFFSET: usize = 4;
/// Offset of the next-header field within an IPv6 header.
const NEXT_HEADER_OFFSET: usize = 6;
/// Offset of the segments-left field within an SRH.
const SRH_SEGMENTS_LEFT_OFFSET: usize = 3;

/// Result alias with static reasons, convenient for drop accounting.
pub type OpResult<T> = std::result::Result<T, &'static str>;

/// Locates the outermost SRH: returns `(offset, length_in_bytes)`.
pub fn find_srh(packet: &[u8]) -> Option<(usize, usize)> {
    if packet.len() < IPV6_HEADER_LEN {
        return None;
    }
    if packet[NEXT_HEADER_OFFSET] != proto::ROUTING {
        return None;
    }
    let off = IPV6_HEADER_LEN;
    if packet.len() < off + 8 {
        return None;
    }
    let len = 8 + usize::from(packet[off + 1]) * 8;
    if packet.len() < off + len {
        return None;
    }
    Some((off, len))
}

/// Reads the outer destination address.
pub fn outer_dst(packet: &[u8]) -> OpResult<Ipv6Addr> {
    if packet.len() < IPV6_HEADER_LEN {
        return Err("packet shorter than an IPv6 header");
    }
    let mut octets = [0u8; 16];
    octets.copy_from_slice(&packet[DST_OFFSET..DST_OFFSET + 16]);
    Ok(Ipv6Addr::from(octets))
}

/// Reads the outer source address.
pub fn outer_src(packet: &[u8]) -> OpResult<Ipv6Addr> {
    if packet.len() < IPV6_HEADER_LEN {
        return Err("packet shorter than an IPv6 header");
    }
    let mut octets = [0u8; 16];
    octets.copy_from_slice(&packet[8..24]);
    Ok(Ipv6Addr::from(octets))
}

/// Writes the outer destination address.
pub fn set_outer_dst(packet: &mut [u8], dst: Ipv6Addr) -> OpResult<()> {
    if packet.len() < IPV6_HEADER_LEN {
        return Err("packet shorter than an IPv6 header");
    }
    packet[DST_OFFSET..DST_OFFSET + 16].copy_from_slice(&dst.octets());
    Ok(())
}

/// Decrements the hop limit, returning the new value (0 means the packet
/// must be dropped and an ICMPv6 time-exceeded generated).
pub fn decrement_hop_limit(packet: &mut [u8]) -> OpResult<u8> {
    if packet.len() < IPV6_HEADER_LEN {
        return Err("packet shorter than an IPv6 header");
    }
    if packet[7] == 0 {
        return Err("hop limit already zero");
    }
    packet[7] -= 1;
    Ok(packet[7])
}

/// The `End`-style SRH advance: requires an SRH with `segments_left > 0`,
/// decrements it and rewrites the outer destination to the new current
/// segment. Returns the new destination. Operates in place — the packet
/// never changes size, so the hot path advances without copying it.
pub fn advance_srh(packet: &mut [u8]) -> OpResult<Ipv6Addr> {
    let (off, len) = find_srh(packet).ok_or("packet has no SRH")?;
    let segments_left = packet[off + SRH_SEGMENTS_LEFT_OFFSET];
    if segments_left == 0 {
        return Err("segments_left is zero");
    }
    let last_entry = packet[off + 4];
    let new_left = segments_left - 1;
    if usize::from(new_left) > usize::from(last_entry) {
        return Err("segments_left exceeds last_entry");
    }
    let seg_off = off + 8 + 16 * usize::from(new_left);
    if seg_off + 16 > off + len {
        return Err("segment list truncated");
    }
    packet[off + SRH_SEGMENTS_LEFT_OFFSET] = new_left;
    let mut octets = [0u8; 16];
    octets.copy_from_slice(&packet[seg_off..seg_off + 16]);
    let next = Ipv6Addr::from(octets);
    set_outer_dst(packet, next)?;
    Ok(next)
}

/// Validates that the packet is an IPv6-in-IPv6 (possibly via an SRH)
/// encapsulation and returns the byte offset of the inner IPv6 header —
/// the amount a decapsulation pulls off the front. Splitting the check
/// from the removal lets `PacketBuf`-based callers decapsulate with a
/// headroom adjustment instead of a reallocation.
pub fn decap_offset(packet: &[u8]) -> OpResult<usize> {
    if packet.len() < IPV6_HEADER_LEN {
        return Err("packet shorter than an IPv6 header");
    }
    let mut inner_off = IPV6_HEADER_LEN;
    let mut next = packet[NEXT_HEADER_OFFSET];
    if next == proto::ROUTING {
        let (off, len) = find_srh(packet).ok_or("truncated SRH")?;
        next = packet[off];
        inner_off = off + len;
    }
    if next != proto::IPV6 {
        return Err("no inner IPv6 packet to decapsulate");
    }
    if packet.len() < inner_off + IPV6_HEADER_LEN {
        return Err("inner IPv6 header truncated");
    }
    Ok(inner_off)
}

/// Removes the outer IPv6 header (and its SRH, if any), leaving the inner
/// IPv6 packet. Returns the inner destination. This is the decapsulation
/// performed by `End.DT6` / `End.DX6` and natively by the kernel on the
/// hybrid-access CPE (§4.2).
pub fn decap_outer(packet: &mut Vec<u8>) -> OpResult<Ipv6Addr> {
    let inner_off = decap_offset(packet)?;
    packet.drain(..inner_off);
    outer_dst(packet)
}

/// Pushes an outer IPv6 header and the given SRH in front of the packet
/// (SRv6 "encap" mode). The outer source is `src`, the outer destination is
/// the SRH's current segment. Returns the new outer destination.
pub fn push_srh_encap(packet: &mut Vec<u8>, srh_bytes: &[u8], src: Ipv6Addr) -> OpResult<Ipv6Addr> {
    let srh = SegmentRoutingHeader::parse(srh_bytes).map_err(|_| "invalid SRH for encapsulation")?;
    if srh.next_header != proto::IPV6 {
        return Err("encap SRH must carry IPv6 as next header");
    }
    let dst = srh.current_segment().ok_or("SRH has no current segment")?;
    let srh_len = 8 + usize::from(srh.hdr_ext_len()) * 8;
    let outer = Ipv6Header::new(src, dst, proto::ROUTING, (srh_len + packet.len()) as u16, ENCAP_HOP_LIMIT);
    let mut new_packet = Vec::with_capacity(IPV6_HEADER_LEN + srh_len + packet.len());
    new_packet.extend_from_slice(&outer.to_bytes());
    new_packet.extend_from_slice(&srh_bytes[..srh_len]);
    new_packet.extend_from_slice(packet);
    *packet = new_packet;
    Ok(dst)
}

/// Inserts the given SRH between the existing IPv6 header and its payload
/// (SRv6 "inline" mode). The SRH's last segment should be the original
/// destination; the outer destination is rewritten to the SRH's current
/// segment. Returns the new destination.
pub fn insert_srh_inline(packet: &mut Vec<u8>, srh_bytes: &[u8]) -> OpResult<Ipv6Addr> {
    if packet.len() < IPV6_HEADER_LEN {
        return Err("packet shorter than an IPv6 header");
    }
    let mut srh = SegmentRoutingHeader::parse(srh_bytes).map_err(|_| "invalid SRH for inline insertion")?;
    let dst = srh.current_segment().ok_or("SRH has no current segment")?;
    // The inserted SRH must chain to whatever the IPv6 header carried.
    srh.next_header = packet[NEXT_HEADER_OFFSET];
    let srh_bytes = srh.to_bytes();
    packet[NEXT_HEADER_OFFSET] = proto::ROUTING;
    let payload_len = u16::from_be_bytes([packet[PAYLOAD_LEN_OFFSET], packet[PAYLOAD_LEN_OFFSET + 1]]);
    let new_len = payload_len as usize + srh_bytes.len();
    packet[PAYLOAD_LEN_OFFSET..PAYLOAD_LEN_OFFSET + 2].copy_from_slice(&(new_len as u16).to_be_bytes());
    let tail = packet.split_off(IPV6_HEADER_LEN);
    packet.extend_from_slice(&srh_bytes);
    packet.extend_from_slice(&tail);
    set_outer_dst(packet, dst)?;
    Ok(dst)
}

/// Re-validates the outermost SRH after an eBPF program edited it, as
/// End.BPF does before handing the packet back to the IPv6 layer. Also
/// checks that the IPv6 payload length is consistent with the actual packet
/// length.
pub fn validate_after_bpf(packet: &[u8]) -> OpResult<()> {
    let (off, len) = find_srh(packet).ok_or("SRH disappeared")?;
    SegmentRoutingHeader::validate_raw(&packet[off..off + len]).map_err(|_| "SRH failed validation")?;
    let payload_len =
        u16::from_be_bytes([packet[PAYLOAD_LEN_OFFSET], packet[PAYLOAD_LEN_OFFSET + 1]]) as usize;
    if payload_len + IPV6_HEADER_LEN != packet.len() {
        return Err("IPv6 payload length inconsistent with packet length");
    }
    Ok(())
}

/// Updates the IPv6 payload-length field after the packet grew or shrank by
/// `delta` bytes behind the IPv6 header.
pub fn adjust_payload_length(packet: &mut [u8], delta: isize) -> OpResult<()> {
    if packet.len() < IPV6_HEADER_LEN {
        return Err("packet shorter than an IPv6 header");
    }
    let current = u16::from_be_bytes([packet[PAYLOAD_LEN_OFFSET], packet[PAYLOAD_LEN_OFFSET + 1]]) as isize;
    let updated = current + delta;
    if updated < 0 || updated > u16::MAX as isize {
        return Err("payload length out of range");
    }
    packet[PAYLOAD_LEN_OFFSET..PAYLOAD_LEN_OFFSET + 2].copy_from_slice(&(updated as u16).to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
    use netpkt::srh::SegmentRoutingHeader;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn srv6_packet() -> Vec<u8> {
        let srh =
            SegmentRoutingHeader::from_path(proto::UDP, &[addr("fc00::1"), addr("fc00::2"), addr("fc00::3")]);
        build_srv6_udp_packet(addr("2001:db8::1"), &srh, 1000, 2000, &[0u8; 32], 64).data().to_vec()
    }

    #[test]
    fn find_srh_locates_and_rejects() {
        let pkt = srv6_packet();
        let (off, len) = find_srh(&pkt).unwrap();
        assert_eq!(off, IPV6_HEADER_LEN);
        assert_eq!(len, 8 + 3 * 16);
        let plain = build_ipv6_udp_packet(addr("::1"), addr("::2"), 1, 2, &[0; 8], 64);
        assert!(find_srh(plain.data()).is_none());
        assert!(find_srh(&pkt[..45]).is_none());
    }

    #[test]
    fn advance_srh_updates_destination_and_segments_left() {
        let mut pkt = srv6_packet();
        assert_eq!(outer_dst(&pkt).unwrap(), addr("fc00::1"));
        let next = advance_srh(&mut pkt).unwrap();
        assert_eq!(next, addr("fc00::2"));
        assert_eq!(outer_dst(&pkt).unwrap(), addr("fc00::2"));
        let next = advance_srh(&mut pkt).unwrap();
        assert_eq!(next, addr("fc00::3"));
        assert_eq!(advance_srh(&mut pkt).unwrap_err(), "segments_left is zero");
    }

    #[test]
    fn advance_requires_an_srh() {
        let mut plain = build_ipv6_udp_packet(addr("::1"), addr("::2"), 1, 2, &[0; 8], 64).data().to_vec();
        assert_eq!(advance_srh(&mut plain).unwrap_err(), "packet has no SRH");
    }

    #[test]
    fn encap_then_decap_restores_inner_packet() {
        let inner = build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::2"), 5, 6, &[9u8; 16], 64)
            .data()
            .to_vec();
        let mut pkt = inner.clone();
        let srh = SegmentRoutingHeader::from_path(proto::IPV6, &[addr("fc00::a"), addr("fc00::b")]);
        let dst = push_srh_encap(&mut pkt, &srh.to_bytes(), addr("fc00::99")).unwrap();
        assert_eq!(dst, addr("fc00::a"));
        assert_eq!(outer_dst(&pkt).unwrap(), addr("fc00::a"));
        assert_eq!(outer_src(&pkt).unwrap(), addr("fc00::99"));
        assert_eq!(pkt.len(), inner.len() + IPV6_HEADER_LEN + srh.wire_len());
        // The outer payload length must cover SRH + inner packet.
        let parsed = Ipv6Header::parse(&pkt).unwrap();
        assert_eq!(parsed.payload_length as usize, srh.wire_len() + inner.len());

        let inner_dst = decap_outer(&mut pkt).unwrap();
        assert_eq!(inner_dst, addr("2001:db8::2"));
        assert_eq!(pkt, inner);
    }

    #[test]
    fn encap_rejects_srh_not_carrying_ipv6() {
        let mut pkt = build_ipv6_udp_packet(addr("::1"), addr("::2"), 1, 2, &[0; 8], 64).data().to_vec();
        let srh = SegmentRoutingHeader::from_path(proto::UDP, &[addr("fc00::a")]);
        assert!(push_srh_encap(&mut pkt, &srh.to_bytes(), addr("fc00::99")).is_err());
    }

    #[test]
    fn decap_requires_inner_ipv6() {
        let mut pkt = srv6_packet(); // inner is UDP, not IPv6
        assert!(decap_outer(&mut pkt).is_err());
    }

    #[test]
    fn inline_insertion_preserves_the_original_header_chain() {
        let original = build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::2"), 7, 8, &[1u8; 24], 64)
            .data()
            .to_vec();
        let mut pkt = original.clone();
        // Path via fc00::a, then back to the original destination.
        let srh = SegmentRoutingHeader::from_path(proto::NONE, &[addr("fc00::a"), addr("2001:db8::2")]);
        let dst = insert_srh_inline(&mut pkt, &srh.to_bytes()).unwrap();
        assert_eq!(dst, addr("fc00::a"));
        let parsed = netpkt::ParsedPacket::parse(&pkt).unwrap();
        assert_eq!(parsed.outer.dst, addr("fc00::a"));
        let loc = parsed.require_srh().unwrap();
        // The inserted SRH chains to UDP, whatever its builder said.
        assert_eq!(loc.srh.next_header, proto::UDP);
        assert_eq!(parsed.transport_proto, proto::UDP);
        assert_eq!(parsed.outer.payload_length as usize, original.len() - IPV6_HEADER_LEN + loc.len);
    }

    #[test]
    fn hop_limit_decrement_and_exhaustion() {
        let mut pkt = build_ipv6_udp_packet(addr("::1"), addr("::2"), 1, 2, &[0; 8], 2).data().to_vec();
        assert_eq!(decrement_hop_limit(&mut pkt).unwrap(), 1);
        assert_eq!(decrement_hop_limit(&mut pkt).unwrap(), 0);
        assert!(decrement_hop_limit(&mut pkt).is_err());
    }

    #[test]
    fn validate_after_bpf_checks_lengths() {
        let mut pkt = srv6_packet();
        validate_after_bpf(&pkt).unwrap();
        // Corrupt the SRH hdrlen: validation must fail.
        pkt[IPV6_HEADER_LEN + 1] = 200;
        assert!(validate_after_bpf(&pkt).is_err());
    }

    #[test]
    fn adjust_payload_length_tracks_growth_and_rejects_underflow() {
        let mut pkt = srv6_packet();
        let before = Ipv6Header::parse(&pkt).unwrap().payload_length;
        adjust_payload_length(&mut pkt, 8).unwrap();
        assert_eq!(Ipv6Header::parse(&pkt).unwrap().payload_length, before + 8);
        adjust_payload_length(&mut pkt, -8).unwrap();
        assert_eq!(Ipv6Header::parse(&pkt).unwrap().payload_length, before);
        assert!(adjust_payload_length(&mut pkt, -100_000).is_err());
    }
}
