//! The `seg6` lightweight tunnel: SRv6 transit behaviours.
//!
//! Transit behaviours apply to packets *without* an SRH that match a route:
//! either the SRH is inserted directly into the IPv6 packet ("inline" mode)
//! or the packet is encapsulated in an outer IPv6 header carrying the SRH
//! ("encap" mode). This is the static counterpart of what a BPF LWT program
//! does with `bpf_lwt_push_encap`; the Linux implementation the paper builds
//! on exposes both through the `seg6` lightweight tunnel.

use crate::scratch::RunScratch;
use crate::skb::Skb;
use crate::srv6_ops;
use crate::verdict::{ActionOutcome, DropReason};
use netpkt::srh::SegmentRoutingHeader;
use netpkt::Ipv6Prefix;
use std::net::Ipv6Addr;

/// How the SRH is attached to matching traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitMode {
    /// Encapsulate in an outer IPv6 header carrying the SRH.
    Encap,
    /// Insert the SRH into the existing IPv6 header chain.
    Inline,
}

/// A transit behaviour: the SRH to attach and how.
#[derive(Debug, Clone)]
pub struct TransitBehaviour {
    /// Attachment mode.
    pub mode: TransitMode,
    /// The SRH to attach (in wire order).
    pub srh: SegmentRoutingHeader,
}

impl TransitBehaviour {
    /// An encap-mode behaviour routing matching traffic through `path`
    /// (given in visiting order).
    pub fn encap_through(path: &[Ipv6Addr]) -> Self {
        TransitBehaviour {
            mode: TransitMode::Encap,
            srh: SegmentRoutingHeader::from_path(netpkt::proto::IPV6, path),
        }
    }

    /// An inline-mode behaviour routing matching traffic through `path`.
    /// The original destination must be appended by the caller as the last
    /// segment, as SRv6 inline insertion requires.
    pub fn inline_through(path: &[Ipv6Addr]) -> Self {
        TransitBehaviour {
            mode: TransitMode::Inline,
            srh: SegmentRoutingHeader::from_path(netpkt::proto::NONE, path),
        }
    }
}

/// The table of transit behaviours installed on a node, keyed by
/// destination prefix (like `ip -6 route add <prefix> encap seg6 ...`).
#[derive(Debug, Default, Clone)]
pub struct TransitTable {
    entries: Vec<(Ipv6Prefix, TransitBehaviour)>,
}

impl TransitTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs `behaviour` for traffic towards `prefix`.
    pub fn insert(&mut self, prefix: Ipv6Prefix, behaviour: TransitBehaviour) {
        match self.entries.iter_mut().find(|(p, _)| *p == prefix) {
            Some(slot) => slot.1 = behaviour,
            None => self.entries.push((prefix, behaviour)),
        }
    }

    /// Removes the behaviour installed for `prefix`.
    pub fn remove(&mut self, prefix: &Ipv6Prefix) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(p, _)| p != prefix);
        self.entries.len() != before
    }

    /// Finds the behaviour matching `dst` (longest prefix wins).
    pub fn lookup(&self, dst: Ipv6Addr) -> Option<&TransitBehaviour> {
        self.entries.iter().filter(|(p, _)| p.contains(dst)).max_by_key(|(p, _)| p.len()).map(|(_, b)| b)
    }

    /// Number of installed behaviours.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Applies a transit behaviour to a packet, returning the new destination
/// the datapath must forward towards. The packet is rebuilt in the
/// caller's scratch buffer and committed back without a fresh allocation.
pub fn apply_transit(
    behaviour: &TransitBehaviour,
    skb: &mut Skb,
    local_addr: Ipv6Addr,
    scratch: &mut RunScratch,
) -> ActionOutcome {
    let packet = &mut scratch.pkt;
    packet.clear();
    packet.extend_from_slice(skb.packet.data());
    let result = match behaviour.mode {
        TransitMode::Encap => srv6_ops::push_srh_encap(packet, &behaviour.srh.to_bytes(), local_addr),
        TransitMode::Inline => {
            // For inline insertion the original destination becomes the last
            // segment so the packet still reaches it after the detour.
            let original_dst = match srv6_ops::outer_dst(packet) {
                Ok(dst) => dst,
                Err(_) => return ActionOutcome::Drop(DropReason::Malformed),
            };
            let mut srh = behaviour.srh.clone();
            if srh.segments.first() != Some(&original_dst) {
                srh.segments.insert(0, original_dst);
                srh.last_entry = (srh.segments.len() - 1) as u8;
                srh.segments_left = srh.last_entry;
            }
            srv6_ops::insert_srh_inline(packet, &srh.to_bytes())
        }
    };
    match result {
        Ok(dst) => {
            skb.packet.set_data(packet);
            ActionOutcome::Forward { dst, route_override: Default::default() }
        }
        Err(_) => ActionOutcome::Drop(DropReason::Malformed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::packet::build_ipv6_udp_packet;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn plain_skb() -> Skb {
        Skb::new(build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::2"), 1, 2, &[0u8; 16], 64))
    }

    #[test]
    fn table_lookup_prefers_longest_prefix() {
        let mut table = TransitTable::new();
        table.insert("2001:db8::/32".parse().unwrap(), TransitBehaviour::encap_through(&[addr("fc00::1")]));
        table.insert(
            "2001:db8:0:1::/64".parse().unwrap(),
            TransitBehaviour::encap_through(&[addr("fc00::2")]),
        );
        let b = table.lookup(addr("2001:db8:0:1::9")).unwrap();
        assert_eq!(b.srh.current_segment(), Some(addr("fc00::2")));
        let b = table.lookup(addr("2001:db8:9::9")).unwrap();
        assert_eq!(b.srh.current_segment(), Some(addr("fc00::1")));
        assert!(table.lookup(addr("2abc::1")).is_none());
        assert_eq!(table.len(), 2);
        assert!(table.remove(&"2001:db8::/32".parse().unwrap()));
        assert!(!table.remove(&"2001:db8::/32".parse().unwrap()));
    }

    #[test]
    fn encap_mode_wraps_and_targets_first_segment() {
        let mut skb = plain_skb();
        let before = skb.len();
        let behaviour = TransitBehaviour::encap_through(&[addr("fc00::a"), addr("fc00::b")]);
        let outcome = apply_transit(&behaviour, &mut skb, addr("fc00::99"), &mut RunScratch::new());
        match outcome {
            ActionOutcome::Forward { dst, .. } => assert_eq!(dst, addr("fc00::a")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(skb.len() > before);
        let parsed = netpkt::ParsedPacket::parse(skb.packet.data()).unwrap();
        assert_eq!(parsed.outer.src, addr("fc00::99"));
        assert!(parsed.inner.is_some());
    }

    #[test]
    fn inline_mode_keeps_original_destination_reachable() {
        let mut skb = plain_skb();
        let behaviour = TransitBehaviour::inline_through(&[addr("fc00::a")]);
        let outcome = apply_transit(&behaviour, &mut skb, addr("fc00::99"), &mut RunScratch::new());
        match outcome {
            ActionOutcome::Forward { dst, .. } => assert_eq!(dst, addr("fc00::a")),
            other => panic!("unexpected {other:?}"),
        }
        let parsed = netpkt::ParsedPacket::parse(skb.packet.data()).unwrap();
        let srh = &parsed.require_srh().unwrap().srh;
        // The original destination is the final segment of the inserted SRH.
        assert_eq!(srh.segments[0], addr("2001:db8::2"));
        assert_eq!(srh.path().last().copied(), Some(addr("2001:db8::2")));
        assert!(parsed.inner.is_none());
    }
}
