//! Datapath verdicts and drop accounting.

use crate::skb::RouteOverride;
use std::fmt;
use std::net::Ipv6Addr;

/// Why a packet was dropped. Mirrors the per-reason counters a kernel
/// datapath would expose, so experiments can tell configuration errors from
/// program decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The packet could not be parsed as IPv6.
    Malformed,
    /// A seg6local SID was hit by a packet without an SRH.
    NoSrh,
    /// A seg6local endpoint needed a next segment but `segments_left` was 0.
    SegmentsLeftZero,
    /// Decapsulation was requested but there is no inner IPv6 packet.
    DecapFailed,
    /// An End.BPF program returned `BPF_DROP`.
    BpfDrop,
    /// An End.BPF program faulted or returned an unknown code.
    BpfError,
    /// The SRH did not survive the post-program validation.
    SrhValidationFailed,
    /// No route matched the destination.
    NoRoute,
    /// The hop limit reached zero.
    HopLimitExceeded,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            DropReason::Malformed => "malformed packet",
            DropReason::NoSrh => "no SRH on an SRv6 endpoint",
            DropReason::SegmentsLeftZero => "segments_left is zero",
            DropReason::DecapFailed => "decapsulation failed",
            DropReason::BpfDrop => "dropped by BPF program",
            DropReason::BpfError => "BPF program error",
            DropReason::SrhValidationFailed => "SRH validation failed",
            DropReason::NoRoute => "no route to destination",
            DropReason::HopLimitExceeded => "hop limit exceeded",
        };
        f.write_str(text)
    }
}

/// Result of applying a seg6local action (or a transit behaviour) to a
/// packet: either keep forwarding towards `dst` under the given constraints,
/// or drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionOutcome {
    /// Continue forwarding.
    Forward {
        /// Destination the datapath must route towards (usually the outer
        /// destination after the action ran).
        dst: Ipv6Addr,
        /// Constraints installed by the action (specific next hop, interface
        /// or table); empty means "default FIB lookup".
        route_override: RouteOverride,
    },
    /// Deliver the packet to the local host stack.
    LocalDeliver,
    /// Drop the packet.
    Drop(DropReason),
}

/// Final decision of the datapath for one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Send the packet out of interface `oif` towards `neighbour`.
    Forward {
        /// Outgoing interface index.
        oif: u32,
        /// Link-level next hop (the FIB gateway, or the destination itself
        /// when directly connected).
        neighbour: Ipv6Addr,
    },
    /// The packet is addressed to this node; hand it to the host stack.
    LocalDeliver,
    /// Drop the packet.
    Drop(DropReason),
}

impl Verdict {
    /// Whether the verdict forwards the packet.
    pub fn is_forward(&self) -> bool {
        matches!(self, Verdict::Forward { .. })
    }

    /// The drop reason, if the packet was dropped.
    pub fn drop_reason(&self) -> Option<DropReason> {
        match self {
            Verdict::Drop(reason) => Some(*reason),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_helpers() {
        let v = Verdict::Forward { oif: 1, neighbour: "fe80::1".parse().unwrap() };
        assert!(v.is_forward());
        assert_eq!(v.drop_reason(), None);
        let v = Verdict::Drop(DropReason::NoRoute);
        assert!(!v.is_forward());
        assert_eq!(v.drop_reason(), Some(DropReason::NoRoute));
        assert!(!Verdict::LocalDeliver.is_forward());
    }

    #[test]
    fn drop_reasons_have_readable_names() {
        assert!(DropReason::BpfDrop.to_string().contains("BPF"));
        assert!(DropReason::HopLimitExceeded.to_string().contains("hop limit"));
    }
}
