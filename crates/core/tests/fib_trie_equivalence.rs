//! Randomized equivalence test: the LPM-trie [`seg6_core::Fib`] must agree
//! with a straightforward reference implementation (linear scan +
//! max-by-prefix-length, the structure the trie replaced) on every lookup —
//! including the default route, host routes, weighted ECMP selection and
//! post-removal state — over thousands of random prefixes and lookups.

use netpkt::Ipv6Prefix;
use seg6_core::{Fib, Nexthop};
use std::net::Ipv6Addr;

/// Deterministic xorshift64* generator so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The reference: the linear-scan FIB the trie replaced, with the exact
/// same weighted ECMP selection.
#[derive(Default)]
struct LinearFib {
    routes: Vec<(Ipv6Prefix, Vec<Nexthop>)>,
}

impl LinearFib {
    fn insert(&mut self, prefix: Ipv6Prefix, nexthops: Vec<Nexthop>) {
        match self.routes.iter_mut().find(|(p, _)| *p == prefix) {
            Some(slot) => slot.1 = nexthops,
            None => self.routes.push((prefix, nexthops)),
        }
    }

    fn remove(&mut self, prefix: &Ipv6Prefix) -> bool {
        let before = self.routes.len();
        self.routes.retain(|(p, _)| p != prefix);
        self.routes.len() != before
    }

    fn best_match(&self, dst: Ipv6Addr) -> Option<&(Ipv6Prefix, Vec<Nexthop>)> {
        self.routes.iter().filter(|(p, _)| p.contains(dst)).max_by_key(|(p, _)| p.len())
    }

    fn lookup(&self, dst: Ipv6Addr, flow_hash: u64) -> Option<(Ipv6Prefix, Nexthop, usize)> {
        let (prefix, nexthops) = self.best_match(dst)?;
        let total: u64 = nexthops.iter().map(|n| u64::from(n.weight)).sum();
        let mut slot = flow_hash % total.max(1);
        let mut chosen = &nexthops[0];
        for nexthop in nexthops {
            if slot < u64::from(nexthop.weight) {
                chosen = nexthop;
                break;
            }
            slot -= u64::from(nexthop.weight);
        }
        Some((*prefix, *chosen, nexthops.len()))
    }

    fn ecmp_nexthops(&self, dst: Ipv6Addr) -> &[Nexthop] {
        self.best_match(dst).map(|(_, n)| n.as_slice()).unwrap_or(&[])
    }
}

fn random_addr(rng: &mut Rng) -> Ipv6Addr {
    // Cluster addresses into a few /16 pools so random prefixes actually
    // nest and overlap instead of diverging at bit 0.
    let pool: u128 = match rng.below(4) {
        0 => 0xfc00,
        1 => 0x2001,
        2 => 0xfd12,
        _ => 0x2a00,
    } << 112;
    let host = (rng.next() as u128) << 64 | rng.next() as u128;
    Ipv6Addr::from((pool | (host >> 16)).to_be_bytes())
}

fn random_prefix(rng: &mut Rng) -> Ipv6Prefix {
    // Mix of realistic lengths, plus host routes and the default route.
    let len = match rng.below(20) {
        0 => 0,
        1 => 128,
        2..=5 => 16 + rng.below(16) as u8,
        6..=12 => 32 + rng.below(33) as u8,
        _ => 64 + rng.below(65).min(64) as u8,
    };
    Ipv6Prefix::new(random_addr(rng), len).unwrap()
}

fn random_nexthops(rng: &mut Rng) -> Vec<Nexthop> {
    let n = 1 + rng.below(4) as usize;
    (0..n)
        .map(|i| {
            let nh = Nexthop::via(random_addr(rng), 1 + (rng.below(16) as u32));
            if i > 0 || rng.below(2) == 0 {
                nh.with_weight(1 + rng.below(4) as u32)
            } else {
                nh
            }
        })
        .collect()
}

#[test]
fn trie_matches_linear_reference_over_random_workload() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    let mut trie = Fib::new();
    let mut reference = LinearFib::default();

    // ~5k random prefixes (with deliberate replacements when a prefix
    // repeats), including an explicit default route and ECMP weights.
    trie.insert("::/0".parse().unwrap(), vec![Nexthop::direct(999)]);
    reference.insert("::/0".parse().unwrap(), vec![Nexthop::direct(999)]);
    let mut inserted: Vec<Ipv6Prefix> = Vec::new();
    for _ in 0..5_000 {
        let prefix = random_prefix(&mut rng);
        let nexthops = random_nexthops(&mut rng);
        trie.insert(prefix, nexthops.clone());
        reference.insert(prefix, nexthops);
        inserted.push(prefix);
    }
    assert_eq!(trie.len(), reference.routes.len());

    // 10k lookups: half aimed near installed prefixes (hits), half fully
    // random (mostly default-route), each with a random flow hash so the
    // weighted ECMP selection is compared too.
    let check = |trie: &Fib, reference: &LinearFib, rng: &mut Rng, rounds: usize| {
        for i in 0..rounds {
            let dst = if i % 2 == 0 {
                let base = inserted[rng.below(inserted.len() as u64) as usize].addr();
                let noise = rng.next() as u128;
                Ipv6Addr::from((u128::from_be_bytes(base.octets()) ^ noise).to_be_bytes())
            } else {
                random_addr(rng)
            };
            let hash = rng.next();
            let got = trie.lookup(dst, hash).map(|h| (h.prefix, *h.nexthop, h.ecmp_width));
            let want = reference.lookup(dst, hash);
            assert_eq!(got, want, "lookup({dst}, {hash}) diverged");
            assert_eq!(
                trie.ecmp_nexthops(dst),
                reference.ecmp_nexthops(dst),
                "ecmp_nexthops({dst}) diverged"
            );
        }
    };
    check(&trie, &reference, &mut rng, 10_000);

    // Remove a random third of the routes and re-verify: removal must
    // prune/collapse without disturbing surviving routes.
    for _ in 0..inserted.len() / 3 {
        let prefix = inserted[rng.below(inserted.len() as u64) as usize];
        assert_eq!(trie.remove(&prefix), reference.remove(&prefix), "remove({prefix}) diverged");
    }
    assert_eq!(trie.len(), reference.routes.len());
    check(&trie, &reference, &mut rng, 10_000);
}
