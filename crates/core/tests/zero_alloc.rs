//! Zero-allocation regression tests for the per-packet hot path.
//!
//! Run with `cargo test -p seg6-core --features alloc-counter`. The
//! counting global allocator tracks per-thread allocation counts; after one
//! warm-up batch fills every reusable buffer, a steady-state
//! `process_batch_verdicts_into` call must perform **zero** heap
//! allocations, whatever mix of forwarding, seg6local endpoint actions and
//! End.BPF programs the batch exercises.
#![cfg(feature = "alloc-counter")]

use ebpf_vm::helpers::ids;
use ebpf_vm::insn::{jmp, AccessSize};
use ebpf_vm::maps::PerCpuArrayMap;
use ebpf_vm::program::{load, retcode, ProgramType};
use ebpf_vm::{MapHandle, ProgramBuilder};
use netpkt::ipv6::proto;
use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
use netpkt::srh::SegmentRoutingHeader;
use netpkt::Ipv6Prefix;
use seg6_core::alloc_counter::{thread_allocations, CountingAllocator};
use seg6_core::{BatchVerdict, Nexthop, Seg6Datapath, Seg6LocalAction, Skb, Verdict};
use std::collections::HashMap;
use std::net::Ipv6Addr;
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn addr(s: &str) -> Ipv6Addr {
    s.parse().unwrap()
}

/// An `End.BPF` program exercising the rewritten helper paths: a per-CPU
/// map lookup (stack-buffer key read), a counter bump through the returned
/// value region, and an `skb_load_bytes` copy (direct packet→stack copy).
fn counting_program() -> ebpf_vm::Program {
    let mut b = ProgramBuilder::new();
    b.mov_reg(9, 1); // save ctx
    b.store_imm(AccessSize::Word, 10, -4, 0);
    b.load_map_fd(1, 1);
    b.mov_reg(2, 10);
    b.add_imm(2, -4);
    b.call(ids::MAP_LOOKUP_ELEM);
    b.jmp_imm(jmp::JEQ, 0, 0, "out");
    b.load_mem(AccessSize::Double, 1, 0, 0);
    b.add_imm(1, 1);
    b.store_mem(AccessSize::Double, 0, 1, 0);
    // skb_load_bytes(ctx, 0, fp-16, 8)
    b.mov_reg(1, 9);
    b.mov_imm(2, 0);
    b.mov_reg(3, 10);
    b.add_imm(3, -16);
    b.mov_imm(4, 8);
    b.call(ids::SKB_LOAD_BYTES);
    b.label("out");
    b.ret(retcode::BPF_OK as i32);
    b.build_program("count-and-peek", ProgramType::LwtSeg6Local).expect("static program")
}

fn router(tier: ebpf_vm::ExecTier) -> Seg6Datapath {
    let mut dp = Seg6Datapath::new(addr("fc00::1"));
    dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::2"), 2)]);
    dp.add_route("2001:db8::/32".parse().unwrap(), vec![Nexthop::via(addr("fe80::3"), 3)]);
    // An ECMP route, so the weighted selection runs too.
    dp.add_route(
        "fd00::/16".parse().unwrap(),
        vec![Nexthop::via(addr("fe80::a"), 4), Nexthop::via(addr("fe80::b"), 5).with_weight(2)],
    );
    dp.add_local_sid("fc00::e1".parse().unwrap(), Seg6LocalAction::End);
    let counter: MapHandle = PerCpuArrayMap::new(8, 1, 1);
    let mut maps: HashMap<u32, MapHandle> = HashMap::new();
    maps.insert(1, Arc::clone(&counter));
    let prog = load(counting_program(), &maps, &dp.helpers).expect("verified program");
    prog.set_exec_tier(tier);
    dp.add_local_sid(Ipv6Prefix::host(addr("fc00::e2")), Seg6LocalAction::EndBpf { prog });
    dp
}

/// One batch of the steady-state workload: plain forwarding, ECMP
/// forwarding, local delivery, `End`, and `End.BPF`.
fn mixed_batch() -> Vec<Skb> {
    let mut batch = Vec::new();
    for i in 0..8u16 {
        let srh = SegmentRoutingHeader::from_path(proto::UDP, &[addr("fc00::e1"), addr("fc00::99")]);
        batch.push(Skb::new(build_srv6_udp_packet(
            addr("2001:db8::1"),
            &srh,
            1000 + i,
            2000,
            &[0u8; 32],
            64,
        )));
        let srh = SegmentRoutingHeader::from_path(proto::UDP, &[addr("fc00::e2"), addr("fc00::99")]);
        batch.push(Skb::new(build_srv6_udp_packet(
            addr("2001:db8::2"),
            &srh,
            1000 + i,
            2000,
            &[0u8; 32],
            64,
        )));
        batch.push(Skb::new(build_ipv6_udp_packet(
            addr("2001:db8::1"),
            addr("fc00::42"),
            i,
            2,
            &[0u8; 16],
            64,
        )));
        batch.push(Skb::new(build_ipv6_udp_packet(
            addr("2001:db8::1"),
            addr("fd00::7"),
            i,
            2,
            &[0u8; 16],
            64,
        )));
        batch.push(Skb::new(build_ipv6_udp_packet(
            addr("2001:db8::1"),
            addr("fc00::1"),
            i,
            2,
            &[0u8; 16],
            64,
        )));
    }
    batch
}

fn assert_zero_alloc_steady_state(tier: ebpf_vm::ExecTier) {
    let mut dp = router(tier);
    let mut verdicts: Vec<BatchVerdict> = Vec::new();

    // Warm-up: fills the scratch buffers, compiles the program image,
    // loads the FIB snapshot, grows the verdict buffer.
    let mut warmup = mixed_batch();
    dp.process_batch_verdicts_into(&mut warmup, 0, &mut verdicts);
    assert!(verdicts.iter().all(|bv| !matches!(bv.verdict, Verdict::Drop(_))), "warm-up workload dropped");

    // Steady state: pre-build the batches, then measure the processing
    // alone. Zero allocations per packet means zero allocations, full stop.
    let mut batches: Vec<Vec<Skb>> = (0..4).map(|_| mixed_batch()).collect();
    verdicts.clear();
    verdicts.reserve(batches.iter().map(Vec::len).sum());

    let before = thread_allocations();
    for batch in &mut batches {
        dp.process_batch_verdicts_into(batch, 7, &mut verdicts);
    }
    let allocations = thread_allocations() - before;

    let packets: usize = batches.iter().map(Vec::len).sum();
    assert!(verdicts.len() == packets);
    assert!(verdicts.iter().all(|bv| !matches!(bv.verdict, Verdict::Drop(_))), "steady workload dropped");
    assert_eq!(
        allocations, 0,
        "steady-state process_batch_verdicts allocated {allocations} times for {packets} packets"
    );
}

#[test]
fn steady_state_is_allocation_free_with_interpreter() {
    assert_zero_alloc_steady_state(ebpf_vm::ExecTier::Interp);
}

#[test]
fn steady_state_is_allocation_free_with_microop() {
    assert_zero_alloc_steady_state(ebpf_vm::ExecTier::MicroOp);
}

#[test]
fn steady_state_is_allocation_free_with_fused() {
    assert_zero_alloc_steady_state(ebpf_vm::ExecTier::Fused);
}

#[test]
fn steady_state_is_allocation_free_with_native() {
    // Falls back to the fused tier on hosts without a backend, which must
    // be allocation-free either way.
    assert_zero_alloc_steady_state(ebpf_vm::ExecTier::Native);
}

/// The single-packet entry point shares the same scratch state, so it must
/// be allocation-free in the steady state as well.
#[test]
fn steady_state_process_is_allocation_free() {
    let mut dp = router(ebpf_vm::ExecTier::best_supported());
    let mut warmup = mixed_batch();
    for skb in &mut warmup {
        dp.process(skb, 0);
    }
    let mut batch = mixed_batch();
    let before = thread_allocations();
    for skb in &mut batch {
        dp.process(skb, 7);
    }
    let allocations = thread_allocations() - before;
    assert_eq!(allocations, 0, "steady-state process() allocated {allocations} times");
}
