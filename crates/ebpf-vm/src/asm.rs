//! A small text assembler for eBPF programs.
//!
//! The mnemonics match the [`crate::disasm`] output, so programs can be
//! written, dumped and re-assembled losslessly. Labels (an identifier
//! followed by `:`) can be used as jump targets instead of numeric offsets,
//! which keeps the network functions in the `srv6-nf` crate readable.
//!
//! ```
//! use ebpf_vm::asm::assemble;
//!
//! let insns = assemble(r"
//!     ; return the packet length field from the context
//!     ldxw r0, [r1+0]
//!     jeq r0, 0, drop
//!     exit
//! drop:
//!     mov64 r0, 2        ; BPF_DROP
//!     exit
//! ").unwrap();
//! assert_eq!(insns.len(), 5);
//! ```

use crate::error::{Error, Result};
use crate::insn::{alu, jmp, AccessSize, Insn};
use std::collections::HashMap;

/// Assembles a program from its textual representation.
pub fn assemble(source: &str) -> Result<Vec<Insn>> {
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut parsed_lines: Vec<(usize, String)> = Vec::new();

    // First pass: strip comments, collect labels and count instruction slots.
    let mut slot = 0usize;
    for (lineno, raw_line) in source.lines().enumerate() {
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || !is_identifier(label) {
                return Err(Error::Assembler { line: lineno + 1, message: "invalid label name".into() });
            }
            if labels.insert(label.to_string(), slot).is_some() {
                return Err(Error::Assembler {
                    line: lineno + 1,
                    message: format!("duplicate label '{label}'"),
                });
            }
            continue;
        }
        let mnemonic = line.split_whitespace().next().unwrap_or("").to_lowercase();
        slot += if mnemonic == "lddw" { 2 } else { 1 };
        parsed_lines.push((lineno + 1, line));
    }

    // Second pass: emit instructions.
    let mut insns = Vec::with_capacity(slot);
    for (lineno, line) in parsed_lines {
        let pc = insns.len();
        emit_line(&line, lineno, pc, &labels, &mut insns)?;
    }
    Ok(insns)
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(idx) => &line[..idx],
        None => line,
    }
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn emit_line(
    line: &str,
    lineno: usize,
    pc: usize,
    labels: &HashMap<String, usize>,
    insns: &mut Vec<Insn>,
) -> Result<()> {
    let err = |message: String| Error::Assembler { line: lineno, message };
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m.to_lowercase(), r.trim()),
        None => (line.to_lowercase(), ""),
    };
    let operands: Vec<String> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(|s| s.trim().to_string()).collect() };

    let reg = |s: &str| -> Result<u8> {
        let s = s.trim();
        if let Some(num) = s.strip_prefix('r').or_else(|| s.strip_prefix('R')) {
            let n: u8 = num.parse().map_err(|_| err(format!("invalid register '{s}'")))?;
            if n > 10 {
                return Err(err(format!("register r{n} does not exist")));
            }
            return Ok(n);
        }
        Err(err(format!("expected a register, found '{s}'")))
    };
    let imm =
        |s: &str| -> Result<i64> { parse_int(s).ok_or_else(|| err(format!("invalid immediate '{s}'"))) };
    // [rN+off] / [rN-off] / [rN]
    let mem = |s: &str| -> Result<(u8, i16)> {
        let inner = s
            .trim()
            .strip_prefix('[')
            .and_then(|x| x.strip_suffix(']'))
            .ok_or_else(|| err(format!("expected a memory operand like [r1+8], found '{s}'")))?;
        let (reg_part, off) = match inner.find(['+', '-']) {
            Some(idx) => {
                let (r, o) = inner.split_at(idx);
                (r.trim(), parse_int(o.trim()).ok_or_else(|| err(format!("invalid offset in '{s}'")))?)
            }
            None => (inner.trim(), 0),
        };
        Ok((reg(reg_part)?, off as i16))
    };
    // Branch target: label or +N/-N.
    let branch = |s: &str, origin: usize| -> Result<i16> {
        let s = s.trim();
        if let Some(target) = labels.get(s) {
            let delta = *target as i64 - origin as i64 - 1;
            return i16::try_from(delta).map_err(|_| err("branch target too far".into()));
        }
        if let Some(value) = parse_int(s) {
            return i16::try_from(value).map_err(|_| err("branch offset too large".into()));
        }
        Err(err(format!("unknown label '{s}'")))
    };
    let expect = |n: usize| -> Result<()> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(err(format!("expected {n} operands, found {}", operands.len())))
        }
    };

    // ALU mnemonics: <op>32 / <op>64 (with "mov" aliases for mov64).
    let alu_ops: &[(&str, u8)] = &[
        ("add", alu::ADD),
        ("sub", alu::SUB),
        ("mul", alu::MUL),
        ("div", alu::DIV),
        ("or", alu::OR),
        ("and", alu::AND),
        ("lsh", alu::LSH),
        ("rsh", alu::RSH),
        ("mod", alu::MOD),
        ("xor", alu::XOR),
        ("mov", alu::MOV),
        ("arsh", alu::ARSH),
    ];
    for (name, op) in alu_ops {
        for (suffix, is64) in [("64", true), ("32", false), ("", true)] {
            if mnemonic == format!("{name}{suffix}") {
                expect(2)?;
                let dst = reg(&operands[0])?;
                let insn = if operands[1].starts_with('r') || operands[1].starts_with('R') {
                    let src_reg = reg(&operands[1])?;
                    if is64 {
                        Insn::alu64_reg(*op, dst, src_reg)
                    } else {
                        Insn::alu32_reg(*op, dst, src_reg)
                    }
                } else {
                    let value = imm(&operands[1])?;
                    if is64 {
                        Insn::alu64_imm(*op, dst, value as i32)
                    } else {
                        Insn::alu32_imm(*op, dst, value as i32)
                    }
                };
                insns.push(insn);
                return Ok(());
            }
        }
    }

    // Jump mnemonics.
    let jmp_ops: &[(&str, u8)] = &[
        ("jeq", jmp::JEQ),
        ("jgt", jmp::JGT),
        ("jge", jmp::JGE),
        ("jset", jmp::JSET),
        ("jne", jmp::JNE),
        ("jsgt", jmp::JSGT),
        ("jsge", jmp::JSGE),
        ("jlt", jmp::JLT),
        ("jle", jmp::JLE),
        ("jslt", jmp::JSLT),
        ("jsle", jmp::JSLE),
    ];
    for (name, op) in jmp_ops {
        for (suffix, is64) in [("", true), ("32", false)] {
            if mnemonic == format!("{name}{suffix}") {
                expect(3)?;
                let dst = reg(&operands[0])?;
                let off = branch(&operands[2], pc)?;
                let insn = if operands[1].starts_with('r') || operands[1].starts_with('R') {
                    let mut i = Insn::jmp_reg(*op, dst, reg(&operands[1])?, off);
                    if !is64 {
                        i.opcode = (i.opcode & !0x07) | crate::insn::class::JMP32;
                    }
                    i
                } else {
                    let value = imm(&operands[1])? as i32;
                    if is64 {
                        Insn::jmp_imm(*op, dst, value, off)
                    } else {
                        Insn::jmp32_imm(*op, dst, value, off)
                    }
                };
                insns.push(insn);
                return Ok(());
            }
        }
    }

    // Loads / stores: ldx{b,h,w,dw}, stx{...}, st{...}.
    let sizes: &[(&str, AccessSize)] = &[
        ("dw", AccessSize::Double),
        ("w", AccessSize::Word),
        ("h", AccessSize::Half),
        ("b", AccessSize::Byte),
    ];
    for (suffix, size) in sizes {
        if mnemonic == format!("ldx{suffix}") {
            expect(2)?;
            let dst = reg(&operands[0])?;
            let (base, off) = mem(&operands[1])?;
            insns.push(Insn::load(*size, dst, base, off));
            return Ok(());
        }
        if mnemonic == format!("stx{suffix}") {
            expect(2)?;
            let (base, off) = mem(&operands[0])?;
            let src_reg = reg(&operands[1])?;
            insns.push(Insn::store_reg(*size, base, src_reg, off));
            return Ok(());
        }
        if mnemonic == format!("st{suffix}") {
            expect(2)?;
            let (base, off) = mem(&operands[0])?;
            let value = imm(&operands[1])?;
            insns.push(Insn::store_imm(*size, base, off, value as i32));
            return Ok(());
        }
    }

    match mnemonic.as_str() {
        "lddw" => {
            expect(2)?;
            let dst = reg(&operands[0])?;
            let value = parse_int(&operands[1])
                .ok_or_else(|| err(format!("invalid immediate '{}'", operands[1])))?
                as u64;
            insns.push(Insn::lddw_lo(dst, value));
            insns.push(Insn::lddw_hi(value));
            Ok(())
        }
        "neg" | "neg64" | "neg32" => {
            expect(1)?;
            let dst = reg(&operands[0])?;
            let is64 = mnemonic != "neg32";
            let mut insn = Insn::alu64_imm(alu::NEG, dst, 0);
            if !is64 {
                insn = Insn::alu32_imm(alu::NEG, dst, 0);
            }
            insns.push(insn);
            Ok(())
        }
        "be16" | "be32" | "be64" | "le16" | "le32" | "le64" => {
            expect(1)?;
            let dst = reg(&operands[0])?;
            let bits: i32 = mnemonic[2..].parse().unwrap();
            let insn =
                if mnemonic.starts_with("be") { Insn::to_be(dst, bits) } else { Insn::to_le(dst, bits) };
            insns.push(insn);
            Ok(())
        }
        "ja" | "jmp" => {
            expect(1)?;
            let off = branch(&operands[0], pc)?;
            insns.push(Insn::ja(off));
            Ok(())
        }
        "call" => {
            expect(1)?;
            let id = imm(&operands[0])?;
            insns.push(Insn::call(id as u32));
            Ok(())
        }
        "exit" => {
            expect(0)?;
            insns.push(Insn::exit());
            Ok(())
        }
        other => Err(err(format!("unknown mnemonic '{other}'"))),
    }
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok().map(|v| v as i64);
    }
    if let Some(hex) = s.strip_prefix("-0x") {
        return u64::from_str_radix(hex, 16).ok().map(|v| -(v as i64));
    }
    if let Some(rest) = s.strip_prefix('+') {
        return rest.parse().ok();
    }
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use crate::insn::{alu, jmp};

    #[test]
    fn assembles_basic_program() {
        let insns = assemble(
            r"
            mov64 r0, 0
            add64 r0, 42
            exit
        ",
        )
        .unwrap();
        assert_eq!(insns, vec![Insn::mov64_imm(0, 0), Insn::alu64_imm(alu::ADD, 0, 42), Insn::exit()]);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let insns = assemble(
            r"
            mov64 r0, 1
            jeq r0, 1, done
            mov64 r0, 0
        done:
            exit
        ",
        )
        .unwrap();
        assert_eq!(insns[1], Insn::jmp_imm(jmp::JEQ, 0, 1, 1));
    }

    #[test]
    fn memory_operands_and_sizes() {
        let insns = assemble(
            r"
            ldxw r2, [r1+16]
            ldxdw r3, [r1]
            stxb [r10-8], r2
            stdw [r10-16], 7
            exit
        ",
        )
        .unwrap();
        assert_eq!(insns[0], Insn::load(AccessSize::Word, 2, 1, 16));
        assert_eq!(insns[1], Insn::load(AccessSize::Double, 3, 1, 0));
        assert_eq!(insns[2], Insn::store_reg(AccessSize::Byte, 10, 2, -8));
        assert_eq!(insns[3], Insn::store_imm(AccessSize::Double, 10, -16, 7));
    }

    #[test]
    fn lddw_hex_and_call() {
        let insns = assemble(
            r"
            lddw r1, 0xdeadbeef00000001
            call 74
            exit
        ",
        )
        .unwrap();
        assert_eq!(insns.len(), 4);
        assert_eq!(insns[0], Insn::lddw_lo(1, 0xdead_beef_0000_0001));
        assert_eq!(insns[1], Insn::lddw_hi(0xdead_beef_0000_0001));
        assert_eq!(insns[2], Insn::call(74));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let insns = assemble("; a comment\n\n  # another\n mov64 r0, 0 ; trailing\n exit\n").unwrap();
        assert_eq!(insns.len(), 2);
    }

    #[test]
    fn labels_across_lddw_account_for_two_slots() {
        let insns = assemble(
            r"
            lddw r1, 0x10
            jeq r1, 0, out
            mov64 r0, 1
            exit
        out:
            mov64 r0, 0
            exit
        ",
        )
        .unwrap();
        // lddw occupies slots 0-1, jeq is at 2, label 'out' is at slot 5.
        assert_eq!(insns[2], Insn::jmp_imm(jmp::JEQ, 1, 0, 2));
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let err = assemble("mov64 r0, 0\nbogus r1, 2\nexit").unwrap_err();
        match err {
            Error::Assembler { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(assemble("mov64 r11, 0\nexit").is_err());
        assert!(assemble("jeq r0, 0, nowhere\nexit").is_err());
        assert!(assemble("dup:\ndup:\nexit").is_err());
        assert!(assemble("ldxw r0, r1\nexit").is_err());
    }

    #[test]
    fn roundtrips_through_the_disassembler() {
        let source = r"
            mov64 r6, r1
            ldxw r2, [r6+4]
            be32 r2
            jgt r2, 100, +2
            mov64 r0, 0
            exit
            mov64 r0, 2
            exit
        ";
        let insns = assemble(source).unwrap();
        let text = disassemble(&insns);
        let again = assemble(&text).unwrap();
        assert_eq!(insns, again);
    }

    #[test]
    fn negative_and_signed_offsets() {
        let insns = assemble("mov64 r0, -5\nja +1\nexit\nexit").unwrap();
        assert_eq!(insns[0], Insn::mov64_imm(0, -5));
        assert_eq!(insns[1], Insn::ja(1));
    }
}
