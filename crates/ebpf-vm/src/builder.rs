//! A programmatic builder for eBPF programs.
//!
//! The use-case network functions in `srv6-nf` need to embed run-time
//! values — map file descriptors, synthetic base addresses, helper ids —
//! which is awkward in assembler text. [`ProgramBuilder`] offers a typed
//! API with named labels and emits the same [`Insn`] stream the assembler
//! would.

use crate::error::{Error, Result};
use crate::insn::{alu, AccessSize, Insn};
use crate::program::{Program, ProgramType, PSEUDO_MAP_FD};
use std::collections::HashMap;

/// Incrementally builds an instruction stream with label-based branches.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insns: Vec<Insn>,
    labels: HashMap<String, usize>,
    /// (instruction index, label) pairs whose offsets still need patching.
    fixups: Vec<(usize, String)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, insn: Insn) -> &mut Self {
        self.insns.push(insn);
        self
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: &str) -> &mut Self {
        self.labels.insert(label.to_string(), self.insns.len());
        self
    }

    /// `dst = imm` (64-bit).
    pub fn mov_imm(&mut self, dst: u8, imm: i32) -> &mut Self {
        self.push(Insn::mov64_imm(dst, imm))
    }

    /// `dst = src` (64-bit).
    pub fn mov_reg(&mut self, dst: u8, src: u8) -> &mut Self {
        self.push(Insn::mov64_reg(dst, src))
    }

    /// 64-bit ALU op with immediate.
    pub fn alu_imm(&mut self, op: u8, dst: u8, imm: i32) -> &mut Self {
        self.push(Insn::alu64_imm(op, dst, imm))
    }

    /// 64-bit ALU op with register.
    pub fn alu_reg(&mut self, op: u8, dst: u8, src: u8) -> &mut Self {
        self.push(Insn::alu64_reg(op, dst, src))
    }

    /// `dst += imm`.
    pub fn add_imm(&mut self, dst: u8, imm: i32) -> &mut Self {
        self.alu_imm(alu::ADD, dst, imm)
    }

    /// Loads a 64-bit immediate (emits the two `lddw` slots).
    pub fn load_imm64(&mut self, dst: u8, value: u64) -> &mut Self {
        self.push(Insn::lddw_lo(dst, value));
        self.push(Insn::lddw_hi(value))
    }

    /// Loads a map pointer for map file descriptor `fd`.
    pub fn load_map_fd(&mut self, dst: u8, fd: u32) -> &mut Self {
        let mut lo = Insn::lddw_lo(dst, crate::vm::map_ptr_value(fd));
        lo.src = PSEUDO_MAP_FD;
        lo.imm = fd as i32;
        self.push(lo);
        self.push(Insn::lddw_hi(crate::vm::map_ptr_value(fd)))
    }

    /// `dst = *(size *)(src + off)`.
    pub fn load_mem(&mut self, size: AccessSize, dst: u8, src: u8, off: i16) -> &mut Self {
        self.push(Insn::load(size, dst, src, off))
    }

    /// `*(size *)(dst + off) = src`.
    pub fn store_mem(&mut self, size: AccessSize, dst: u8, src: u8, off: i16) -> &mut Self {
        self.push(Insn::store_reg(size, dst, src, off))
    }

    /// `*(size *)(dst + off) = imm`.
    pub fn store_imm(&mut self, size: AccessSize, dst: u8, off: i16, imm: i32) -> &mut Self {
        self.push(Insn::store_imm(size, dst, off, imm))
    }

    /// Byte-swaps the low `bits` bits of `dst` to big-endian.
    pub fn to_be(&mut self, dst: u8, bits: i32) -> &mut Self {
        self.push(Insn::to_be(dst, bits))
    }

    /// Conditional jump (immediate operand) to `label`.
    pub fn jmp_imm(&mut self, op: u8, dst: u8, imm: i32, label: &str) -> &mut Self {
        self.fixups.push((self.insns.len(), label.to_string()));
        self.push(Insn::jmp_imm(op, dst, imm, 0))
    }

    /// Conditional jump (register operand) to `label`.
    pub fn jmp_reg(&mut self, op: u8, dst: u8, src: u8, label: &str) -> &mut Self {
        self.fixups.push((self.insns.len(), label.to_string()));
        self.push(Insn::jmp_reg(op, dst, src, 0))
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: &str) -> &mut Self {
        self.fixups.push((self.insns.len(), label.to_string()));
        self.push(Insn::ja(0))
    }

    /// Calls helper `id`.
    pub fn call(&mut self, id: u32) -> &mut Self {
        self.push(Insn::call(id))
    }

    /// Emits `exit`.
    pub fn exit(&mut self) -> &mut Self {
        self.push(Insn::exit())
    }

    /// Emits `mov r0, code; exit`.
    pub fn ret(&mut self, code: i32) -> &mut Self {
        self.mov_imm(0, code);
        self.exit()
    }

    /// Resolves labels and returns the instruction stream.
    pub fn build(&self) -> Result<Vec<Insn>> {
        let mut insns = self.insns.clone();
        for (idx, label) in &self.fixups {
            let target = self.labels.get(label).ok_or_else(|| Error::Assembler {
                line: *idx,
                message: format!("undefined label '{label}'"),
            })?;
            let delta = *target as i64 - *idx as i64 - 1;
            insns[*idx].off = i16::try_from(delta)
                .map_err(|_| Error::Assembler { line: *idx, message: "branch target too far".into() })?;
        }
        Ok(insns)
    }

    /// Resolves labels and wraps the instructions in a [`Program`].
    pub fn build_program(&self, name: &str, prog_type: ProgramType) -> Result<Program> {
        Ok(Program::new(name, prog_type, self.build()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::HelperRegistry;
    use crate::insn::jmp;
    use crate::maps::ArrayMap;
    use crate::program::load;
    use crate::vm::{run_program, NullEnv, RunContext};
    use std::collections::HashMap as StdHashMap;

    #[test]
    fn builds_and_resolves_labels() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 1);
        b.jmp_imm(jmp::JEQ, 0, 1, "yes");
        b.ret(0);
        b.label("yes");
        b.ret(7);
        let insns = b.build().unwrap();
        // jeq at index 1 must skip the two-ret instructions (indices 2,3).
        assert_eq!(insns[1].off, 2);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.jump("nowhere");
        b.ret(0);
        assert!(b.build().is_err());
    }

    #[test]
    fn built_program_runs() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(6, 20);
        b.add_imm(6, 22);
        b.mov_reg(0, 6);
        b.exit();
        let prog = b.build_program("sum", ProgramType::SocketFilter).unwrap();
        let helpers = HelperRegistry::with_base_helpers();
        let loaded = load(prog, &StdHashMap::new(), &helpers).unwrap();
        let mut ctx = vec![0u8; 16];
        let mut pkt = vec![0u8; 16];
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        assert_eq!(run_program(&loaded, &helpers, &mut rc).unwrap(), 42);
    }

    #[test]
    fn load_map_fd_emits_pseudo_map_load() {
        let mut b = ProgramBuilder::new();
        b.load_map_fd(1, 5);
        b.ret(0);
        let insns = b.build().unwrap();
        assert!(insns[0].is_lddw());
        assert_eq!(insns[0].src, PSEUDO_MAP_FD);
        assert_eq!(insns[0].imm, 5);
        // And it passes the loader when the map exists.
        let mut maps: StdHashMap<u32, crate::maps::MapHandle> = StdHashMap::new();
        maps.insert(5, ArrayMap::new(8, 1));
        let prog = Program::new("m", ProgramType::SocketFilter, insns);
        load(prog, &maps, &HelperRegistry::with_base_helpers()).unwrap();
    }
}
