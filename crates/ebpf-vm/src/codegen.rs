//! Native x86-64 code generation — the `Native` execution tier.
//!
//! This module lowers a program's fused micro-op stream
//! ([`crate::jit::FusedProgram`]) to x86-64 machine code in an executable
//! page region. The pages are obtained with `mmap(PROT_READ|PROT_WRITE)`,
//! the code is copied in, and the region is sealed with
//! `mprotect(PROT_READ|PROT_EXEC)` before the first execution — W^X
//! throughout, declared against raw libc entry points exactly like the
//! `signal(2)` declaration `srv6d` already ships.
//!
//! ## Execution model
//!
//! The generated function has the C signature `fn(*mut NativeFrame)`. The
//! frame is a flat `repr(C)` block holding the eleven BPF registers plus
//! region *biases*: for each directly-accessible region the emitter knows
//! about (stack, context, packet) the frame stores
//! `host_pointer.wrapping_sub(synthetic_base)`, so the host address of a
//! synthetic address `a` is the two-instruction `bias + a` — no compare
//! chain on the fast path. `rbx` (callee-saved) holds the frame pointer for
//! the whole program; BPF registers live in the frame and are loaded into
//! scratch registers per operation, which keeps the register allocator
//! trivial and the emitted code easy to audit.
//!
//! ## Verifier-derived check elision
//!
//! The verifier exports one [`crate::verifier::AccessFact`] per memory
//! instruction ([`crate::verifier::AccessFacts`]):
//!
//! * **Stack** — the access was proven in-bounds against the (fixed-size)
//!   stack on every path. No runtime check is emitted at all.
//! * **Ctx** — the access is at a statically-known context offset, but the
//!   verifier checks against the maximum context size while the embedder
//!   may pass a shorter context at run time; a single
//!   `cmp ctx_len, end; jb fault` guards the unchecked access.
//! * **Packet** — the offset is dynamic; the emitter inlines the bounds
//!   compare against `pkt_len` (with a carry check for wrap-around) and
//!   falls back to the generic resolver on failure so out-of-range
//!   addresses fault exactly like the interpreter.
//! * **Other** — the access goes through a trampoline back into
//!   [`crate::vm::load_scalar`] / [`crate::vm::store_scalar`], byte-for-byte
//!   the interpreter's path (map values, merged pointer states).
//!
//! Helper calls go through a trampoline that rebuilds a [`HelperApi`] and
//! dispatches through the load-time dense helper table by index — no id
//! lookup at run time. Because helpers may grow or reallocate the packet,
//! the trampoline refreshes the packet bias/length after every call.
//!
//! ## Safety argument
//!
//! Only verifier-accepted programs reach the emitter, and every memory
//! access is either (a) proven in-bounds by the verifier (stack), (b)
//! guarded by an emitted bounds check (ctx, packet), or (c) routed through
//! the same safe Rust resolver the interpreter uses. The verifier also
//! guarantees termination (no back-edges, ≤ [`crate::insn::MAX_INSNS`]
//! instructions), which is why native code does not maintain the
//! instruction budget counter: the budget exists to bound runaway loops the
//! verifier already rejects.
//!
//! On non-x86-64 (or non-Linux) hosts the module compiles to a stub whose
//! [`compile`] returns `Ok(None)`; callers fall back to the fused tier with
//! no `cfg` of their own.
#![allow(unsafe_code)]

use crate::error::Result;
use crate::jit::FusedProgram;
use crate::program::LoadedProgram;
use crate::verifier::AccessFacts;
use crate::vm::{RunContext, RunState};

/// Whether this build can emit and execute native code.
pub const fn supported() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux"))
}

/// Which emitter [`compile`] uses on supported hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeMode {
    /// The register-allocating emitter: BPF registers live in host
    /// registers, map values are accessed directly and hot helpers are
    /// inlined. The default.
    RegAlloc,
    /// The original load-op-store frame model, kept selectable (the
    /// `SEG6_NATIVE_REGALLOC=off` kill-switch) for differential testing.
    FrameOnly,
}

impl NativeMode {
    /// The mode selected by the `SEG6_NATIVE_REGALLOC` environment variable
    /// (`off` / `0` / `false` select [`NativeMode::FrameOnly`]).
    pub fn from_env() -> NativeMode {
        match std::env::var("SEG6_NATIVE_REGALLOC") {
            Ok(value) => match value.trim().to_ascii_lowercase().as_str() {
                "off" | "0" | "false" => NativeMode::FrameOnly,
                _ => NativeMode::RegAlloc,
            },
            Err(_) => NativeMode::RegAlloc,
        }
    }
}

/// Compile-time facts about one emitted program, for the
/// `SEG6_JIT_DEBUG=1` dump and the zero-spill assertions in tests.
#[derive(Debug, Clone, Default)]
pub struct NativeDebug {
    /// Whether the register-allocating emitter produced this code.
    pub regalloc: bool,
    /// `(bpf_reg, host_reg_name)` pairs for every register-resident value.
    pub assignments: Vec<(u8, &'static str)>,
    /// BPF registers that stayed frame-resident under register pressure.
    pub spills: u32,
    /// Memory accesses emitted without a trampoline (stack, guarded ctx,
    /// packet fast path, direct map values).
    pub elided_checks: u32,
    /// Helper call sites emitted with an inline fast path.
    pub inlined_helpers: u32,
    /// Array-map lookup sites with a per-state result cache.
    pub lookup_sites: u32,
}

/// A program lowered to executable machine code.
///
/// On unsupported targets the type still exists (so callers need no `cfg`)
/// but can never be constructed: [`compile`] returns `Ok(None)` there.
pub struct NativeProgram {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    buf: x86_64::ExecBuf,
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    debug: NativeDebug,
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    _unconstructable: std::convert::Infallible,
}

impl NativeProgram {
    /// Size of the emitted machine code in bytes.
    pub fn code_len(&self) -> usize {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            self.buf.code_len
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            match self._unconstructable {}
        }
    }

    /// Compile-time facts about the emitted code (register assignment,
    /// spill and inline counts).
    pub fn debug_info(&self) -> &NativeDebug {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            &self.debug
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            match self._unconstructable {}
        }
    }
}

impl std::fmt::Debug for NativeProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeProgram").field("code_len", &self.code_len()).finish()
    }
}

/// Compiles a fused program to native code with the emitter selected by
/// `SEG6_NATIVE_REGALLOC`. Returns `Ok(None)` when the target has no native
/// backend; callers then run the fused tier.
pub fn compile(
    fused: &FusedProgram,
    facts: &AccessFacts,
    loaded: &LoadedProgram,
) -> Result<Option<NativeProgram>> {
    compile_with(fused, facts, loaded, NativeMode::from_env())
}

/// Compiles a fused program to native code with an explicit emitter mode —
/// the differential fuzz harness compiles both modes of one program in the
/// same process. Returns `Ok(None)` when the target has no native backend.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub fn compile_with(
    fused: &FusedProgram,
    facts: &AccessFacts,
    loaded: &LoadedProgram,
    mode: NativeMode,
) -> Result<Option<NativeProgram>> {
    x86_64::compile(fused, facts, loaded, mode).map(Some)
}

/// Compiles a fused program to native code with an explicit emitter mode.
/// Returns `Ok(None)` when the target has no native backend.
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub fn compile_with(
    _fused: &FusedProgram,
    _facts: &AccessFacts,
    _loaded: &LoadedProgram,
    _mode: NativeMode,
) -> Result<Option<NativeProgram>> {
    Ok(None)
}

/// Executes a native program against a caller-owned state (not reset here;
/// [`crate::vm::run_program_with_state`] resets it first, like the other
/// tiers).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub fn run(
    native: &NativeProgram,
    loaded: &LoadedProgram,
    rc: &mut RunContext<'_>,
    state: &mut RunState,
) -> Result<u64> {
    x86_64::run(native, loaded, rc, state)
}

/// Executes a native program. Unreachable on targets without a backend —
/// [`compile`] never produces a [`NativeProgram`] there.
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub fn run(
    native: &NativeProgram,
    _loaded: &LoadedProgram,
    _rc: &mut RunContext<'_>,
    _state: &mut RunState,
) -> Result<u64> {
    match native._unconstructable {}
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod x86_64 {
    use crate::error::{Error, Result};
    use crate::helpers::ids;
    use crate::insn::{alu, jmp, AccessSize, NUM_REGS, STACK_SIZE};
    use crate::jit::{FusedProgram, MicroOp, Operand};
    use crate::maps::MapType;
    use crate::program::LoadedProgram;
    use crate::verifier::{AccessFact, AccessFacts};
    use crate::vm::{HelperApi, RunContext, RunState, CTX_BASE, MAP_VALUE_BASE, PKT_BASE, STACK_BASE};
    use core::ffi::c_void;

    // -----------------------------------------------------------------
    // Executable memory
    // -----------------------------------------------------------------

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const PROT_EXEC: i32 = 4;
    const MAP_PRIVATE: i32 = 2;
    const MAP_ANONYMOUS: i32 = 0x20;

    // Raw libc entry points, declared the same way srv6d declares
    // `signal(2)` — no libc crate in the workspace.
    extern "C" {
        fn mmap(addr: *mut c_void, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut c_void;
        fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An `mmap`ed region sealed read+execute after the code is copied in.
    pub(super) struct ExecBuf {
        ptr: *mut u8,
        len: usize,
        pub(super) code_len: usize,
    }

    // The region is immutable (RX) after construction; sharing raw code
    // pages between threads is safe.
    unsafe impl Send for ExecBuf {}
    unsafe impl Sync for ExecBuf {}

    impl ExecBuf {
        fn new(code: &[u8]) -> Result<ExecBuf> {
            let len = code.len().max(1);
            unsafe {
                let ptr = mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    -1,
                    0,
                );
                if ptr.is_null() || ptr as isize == -1 {
                    return Err(Error::runtime(0, "mmap of code region failed"));
                }
                std::ptr::copy_nonoverlapping(code.as_ptr(), ptr as *mut u8, code.len());
                if mprotect(ptr, len, PROT_READ | PROT_EXEC) != 0 {
                    munmap(ptr, len);
                    return Err(Error::runtime(0, "mprotect(PROT_EXEC) on code region failed"));
                }
                Ok(ExecBuf { ptr: ptr as *mut u8, len, code_len: code.len() })
            }
        }
    }

    impl Drop for ExecBuf {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }

    // -----------------------------------------------------------------
    // The native frame and trampolines
    // -----------------------------------------------------------------

    /// The flat machine-visible state block; `rbx` points here for the
    /// whole program. `bias` fields hold `host_ptr - synthetic_base`
    /// (wrapping), so `bias + synthetic_addr` is the host address.
    #[repr(C)]
    struct NativeFrame {
        regs: [u64; NUM_REGS], // offsets 0..88
        stack_bias: u64,       // 88
        ctx_bias: u64,         // 96
        ctx_len: u64,          // 104
        pkt_bias: u64,         // 112
        pkt_len: u64,          // 120
        tramp_ctx: u64,        // 128
        fault: u64,            // 136: 0 = ok, otherwise faulting slot + 1
        region_tbl: u64,       // 144: RunState's per-region bias table
        site_cache: u64,       // 152: per-(state, program) lookup cache
        inline_flags: u64,     // 160: bit 0 = env snapshot valid
        inline_ktime: u64,     // 168: snapshot ktime_ns
        inline_cpu: u64,       // 176: snapshot cpu_id
        inline_cpu_tag: u64,   // 184: (cpu_id + 1) << 32, the cache tag salt
    }

    const OFF_STACK_BIAS: i32 = 8 * NUM_REGS as i32;
    const OFF_CTX_BIAS: i32 = OFF_STACK_BIAS + 8;
    const OFF_CTX_LEN: i32 = OFF_STACK_BIAS + 16;
    const OFF_PKT_BIAS: i32 = OFF_STACK_BIAS + 24;
    const OFF_PKT_LEN: i32 = OFF_STACK_BIAS + 32;
    const OFF_TRAMP: i32 = OFF_STACK_BIAS + 40;
    const OFF_FAULT: i32 = OFF_STACK_BIAS + 48;
    const OFF_REGION_TBL: i32 = OFF_STACK_BIAS + 56;
    const OFF_SITE_CACHE: i32 = OFF_STACK_BIAS + 64;
    const OFF_INLINE_FLAGS: i32 = OFF_STACK_BIAS + 72;
    const OFF_INLINE_KTIME: i32 = OFF_STACK_BIAS + 80;
    const OFF_INLINE_CPU: i32 = OFF_STACK_BIAS + 88;
    const OFF_INLINE_CPU_TAG: i32 = OFF_STACK_BIAS + 96;

    /// Everything the slow-path trampolines need to re-enter safe Rust.
    /// Lives on `run`'s stack for the duration of one invocation; the
    /// generated code only ever passes its address back to the trampolines
    /// below.
    struct TrampCtx {
        frame: *mut NativeFrame,
        state: *mut RunState,
        rc: *mut RunContext<'static>,
        loaded: *const LoadedProgram,
        error: Option<Error>,
    }

    fn decode_size(size: u32) -> AccessSize {
        match size {
            1 => AccessSize::Byte,
            2 => AccessSize::Half,
            4 => AccessSize::Word,
            _ => AccessSize::Double,
        }
    }

    fn at_slot(err: Error, slot: u32) -> Error {
        match err {
            Error::Runtime { message, .. } => Error::Runtime { insn: slot as usize, message },
            other => other,
        }
    }

    /// Generic load slow path: exact interpreter semantics via
    /// [`crate::vm::load_scalar`]. On error, records the faulting slot in
    /// the frame so the generated code exits, and parks the error for
    /// [`run`] to return.
    unsafe extern "C" fn tramp_load(tc: *mut TrampCtx, addr: u64, size: u32, slot: u32) -> u64 {
        let tc = &mut *tc;
        match crate::vm::load_scalar(&*tc.state, &*tc.rc, addr, decode_size(size)) {
            Ok(value) => value,
            Err(err) => {
                (*tc.frame).fault = u64::from(slot) + 1;
                tc.error = Some(at_slot(err, slot));
                0
            }
        }
    }

    /// Generic store slow path, mirroring [`tramp_load`].
    unsafe extern "C" fn tramp_store(tc: *mut TrampCtx, addr: u64, value: u64, size: u32, slot: u32) {
        let tc = &mut *tc;
        if let Err(err) = crate::vm::store_scalar(&mut *tc.state, &mut *tc.rc, addr, decode_size(size), value)
        {
            (*tc.frame).fault = u64::from(slot) + 1;
            tc.error = Some(at_slot(err, slot));
        }
    }

    /// Helper-call trampoline: args come from the frame registers, the
    /// helper runs with the same [`HelperApi`] every other tier uses, and
    /// the packet bias/length are refreshed afterwards (helpers may grow or
    /// reallocate the packet).
    unsafe extern "C" fn tramp_helper(tc: *mut TrampCtx, idx: u32) -> i64 {
        let tc = &mut *tc;
        let frame = &mut *tc.frame;
        let state = &mut *tc.state;
        let rc = &mut *tc.rc;
        let loaded = &*tc.loaded;
        // Keep the RunState registers coherent around the call so a helper
        // that inspects them sees exactly what the interpreter would show.
        state.regs = frame.regs;
        let args = [frame.regs[1], frame.regs[2], frame.regs[3], frame.regs[4], frame.regs[5]];
        let func = loaded.helper_table()[idx as usize].func;
        let ret = {
            let mut api = HelperApi { state, rc, maps: &loaded.maps };
            func(&mut api, args)
        };
        frame.regs = state.regs;
        frame.pkt_bias = (rc.packet.as_mut_ptr() as u64).wrapping_sub(PKT_BASE);
        frame.pkt_len = rc.packet.len() as u64;
        // A lookup helper may have registered a new value region, growing
        // (and possibly moving) the bias table.
        frame.region_tbl = state.region_bias_ptr() as u64;
        ret
    }

    /// The array-map lookup trampoline: runs the real helper, then — when
    /// the environment snapshot is active — records the result in this call
    /// site's cache slot so the next lookup of the same key (and CPU) is an
    /// inline compare + load. Only emitted for sites the verifier proved to
    /// read a stack-resident u32 key from an array-family map.
    unsafe extern "C" fn tramp_helper_cached(tc: *mut TrampCtx, idx: u32, site: u32) -> i64 {
        let ret = tramp_helper(tc, idx);
        let tc = &mut *tc;
        let frame = &mut *tc.frame;
        if ret != 0 && frame.inline_flags & 1 != 0 && frame.site_cache != 0 {
            // r2 still holds the key pointer (lookup helpers don't touch
            // registers) and the verifier proved it readable.
            if let Ok(key) = crate::vm::load_scalar(&*tc.state, &*tc.rc, frame.regs[2], AccessSize::Word) {
                // key + 1 must stay within the low 32 tag bits.
                if key < u64::from(u32::MAX) {
                    let entry = (frame.site_cache as *mut u64).add(site as usize * 2);
                    *entry = frame.inline_cpu_tag.wrapping_add(key + 1);
                    *entry.add(1) = ret as u64;
                }
            }
        }
        ret
    }

    // -----------------------------------------------------------------
    // The assembler
    // -----------------------------------------------------------------

    const RAX: u8 = 0;
    const RCX: u8 = 1;
    const RDX: u8 = 2;
    const RBX: u8 = 3;
    const RBP: u8 = 5;
    const RSI: u8 = 6;
    const RDI: u8 = 7;
    const R8: u8 = 8;
    const R9: u8 = 9;
    const R10: u8 = 10;
    const R11: u8 = 11;
    const R12: u8 = 12;
    const R13: u8 = 13;
    const R14: u8 = 14;
    const R15: u8 = 15;

    /// Display name of a host register used as a BPF-register home.
    fn host_reg_name(reg: u8) -> &'static str {
        match reg {
            RBP => "rbp",
            R8 => "r8",
            R9 => "r9",
            R10 => "r10",
            R11 => "r11",
            R12 => "r12",
            R13 => "r13",
            R14 => "r14",
            R15 => "r15",
            _ => "?",
        }
    }

    // x86 condition codes (the low nibble of Jcc).
    const CC_B: u8 = 0x2;
    const CC_AE: u8 = 0x3;
    const CC_E: u8 = 0x4;
    const CC_NE: u8 = 0x5;
    const CC_BE: u8 = 0x6;
    const CC_A: u8 = 0x7;
    const CC_L: u8 = 0xc;
    const CC_GE: u8 = 0xd;
    const CC_LE: u8 = 0xe;
    const CC_G: u8 = 0xf;

    #[derive(Default)]
    struct Asm {
        code: Vec<u8>,
    }

    impl Asm {
        fn b(&mut self, byte: u8) {
            self.code.push(byte);
        }
        fn bytes(&mut self, bytes: &[u8]) {
            self.code.extend_from_slice(bytes);
        }
        fn i32v(&mut self, value: i32) {
            self.bytes(&value.to_le_bytes());
        }
        fn u64v(&mut self, value: u64) {
            self.bytes(&value.to_le_bytes());
        }
        fn here(&self) -> usize {
            self.code.len()
        }
        /// ModRM (+ optional disp) for `[base + disp]`. `base` must not be
        /// rsp/rbp (the encodings alias SIB/RIP) — the emitter only uses
        /// rbx, rdx and rsi bases.
        fn modrm_mem(&mut self, reg: u8, base: u8, disp: i32) {
            debug_assert!(base != 4 && base != 5);
            if disp == 0 {
                self.b((reg << 3) | base);
            } else if (-128..=127).contains(&disp) {
                self.b(0x40 | (reg << 3) | base);
                self.b(disp as i8 as u8);
            } else {
                self.b(0x80 | (reg << 3) | base);
                self.i32v(disp);
            }
        }
        /// ModRM+SIB for `[base + index]` (scale 1, no displacement).
        fn modrm_sib(&mut self, reg: u8, base: u8, index: u8) {
            debug_assert!(base != 5 && index != 4);
            self.b((reg << 3) | 0b100);
            self.b((index << 3) | base);
        }

        // --- REX-aware forms (r8–r15 capable) --------------------------
        //
        // The original frame-model emitter only touches rax..rdi and keeps
        // its hand-assembled byte sequences; the register-allocating
        // emitter homes BPF registers in rbp/r8–r15 and goes through these
        // helpers, which emit a REX prefix exactly when the operands (or
        // the 64-bit width) need one. Memory bases stay below r8 — and
        // never rsp/rbp — so only REX.R/REX.B for the reg/rm fields and
        // REX.W for width are ever required.

        /// REX prefix for (`w`, reg extension, rm/base extension); emits
        /// nothing when empty.
        fn rex(&mut self, w: bool, reg: u8, rm: u8) {
            let mut b = 0x40u8;
            if w {
                b |= 8;
            }
            if reg >= 8 {
                b |= 4;
            }
            if rm >= 8 {
                b |= 1;
            }
            if b != 0x40 {
                self.b(b);
            }
        }
        /// `opcodes reg, rm` in register-direct form.
        fn op_rr(&mut self, opcodes: &[u8], w: bool, reg: u8, rm: u8) {
            self.rex(w, reg, rm);
            self.bytes(opcodes);
            self.b(0xC0 | ((reg & 7) << 3) | (rm & 7));
        }
        /// `opcodes reg, [base + disp]` (or the store direction, per
        /// opcode). `base` must be one of the low non-rsp/rbp registers.
        fn op_rm(&mut self, opcodes: &[u8], w: bool, reg: u8, base: u8, disp: i32) {
            debug_assert!(base < 8);
            self.rex(w, reg, base);
            self.bytes(opcodes);
            self.modrm_mem(reg & 7, base, disp);
        }
        /// `opcodes reg, [base + index]` (scale 1).
        fn op_sib(&mut self, opcodes: &[u8], w: bool, reg: u8, base: u8, index: u8) {
            debug_assert!(base < 8 && index < 8);
            self.rex(w, reg, base);
            self.bytes(opcodes);
            self.modrm_sib(reg & 7, base, index);
        }
        /// `mov reg, qword [base + index*8]` — the region-bias table read.
        fn load64_sib8(&mut self, reg: u8, base: u8, index: u8) {
            debug_assert!(base < 8 && (base & 7) != 5 && index < 8 && index != 4);
            self.rex(true, reg, base);
            self.b(0x8B);
            self.b(((reg & 7) << 3) | 0b100);
            self.b(0b1100_0000 | ((index & 7) << 3) | (base & 7));
        }
        /// Immediate-group `0x81 /ext rm, imm32` (add/or/and/sub/xor/cmp).
        fn grp81(&mut self, w: bool, ext: u8, rm: u8, imm: i32) {
            self.rex(w, 0, rm);
            self.b(0x81);
            self.b(0xC0 | (ext << 3) | (rm & 7));
            self.i32v(imm);
        }
        /// Unary-group `0xF7 /ext rm` (test=0 needs an imm the caller adds,
        /// not=2, neg=3, mul=4, div=6).
        fn grp_f7(&mut self, w: bool, ext: u8, rm: u8) {
            self.rex(w, 0, rm);
            self.b(0xF7);
            self.b(0xC0 | (ext << 3) | (rm & 7));
        }
        /// Shift-group `0xC1 /ext rm, imm8`.
        fn shift_imm(&mut self, w: bool, ext: u8, rm: u8, amount: u8) {
            self.rex(w, 0, rm);
            self.b(0xC1);
            self.b(0xC0 | (ext << 3) | (rm & 7));
            self.b(amount);
        }
        /// Shift-group `0xD3 /ext rm, cl`.
        fn shift_cl(&mut self, w: bool, ext: u8, rm: u8) {
            self.rex(w, 0, rm);
            self.b(0xD3);
            self.b(0xC0 | (ext << 3) | (rm & 7));
        }
        /// `mov rm, imm32` (sign-extending when `w`).
        fn mov_ri32(&mut self, w: bool, rm: u8, imm: i32) {
            self.rex(w, 0, rm);
            self.b(0xC7);
            self.b(0xC0 | (rm & 7));
            self.i32v(imm);
        }
        /// `movabs reg, imm64` for any register.
        fn movabs_r(&mut self, reg: u8, imm: u64) {
            self.rex(true, 0, reg);
            self.b(0xB8 + (reg & 7));
            self.u64v(imm);
        }
        /// `bswap reg` (32- or 64-bit).
        fn bswap(&mut self, w: bool, reg: u8) {
            self.rex(w, 0, reg);
            self.b(0x0F);
            self.b(0xC8 + (reg & 7));
        }

        // --- control flow ---------------------------------------------

        /// Long `jcc rel32` with the target patched later.
        fn jcc32(&mut self, cc: u8) -> usize {
            self.b(0x0F);
            self.b(0x80 | cc);
            let pos = self.here();
            self.i32v(0);
            pos
        }
        /// Long `jmp rel32` with the target patched later.
        fn jmp32(&mut self) -> usize {
            self.b(0xE9);
            let pos = self.here();
            self.i32v(0);
            pos
        }
        /// Resolves a local forward rel32 to the current position.
        fn bind(&mut self, pos: usize) {
            let rel = (self.here() as i64 - (pos as i64 + 4)) as i32;
            self.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        /// Short `jcc rel8` with the target patched later.
        fn jcc8(&mut self, cc: u8) -> usize {
            self.b(0x70 | cc);
            let pos = self.here();
            self.b(0);
            pos
        }
        /// Short `jmp rel8` with the target patched later.
        fn jmp8(&mut self) -> usize {
            self.b(0xEB);
            let pos = self.here();
            self.b(0);
            pos
        }
        fn bind8(&mut self, pos: usize) {
            let rel = self.here() as i64 - (pos as i64 + 1);
            debug_assert!((-128..=127).contains(&rel));
            self.code[pos] = rel as i8 as u8;
        }
    }

    /// One pending rel32 fixup.
    enum Fixup {
        /// Branch to a micro-op slot.
        Slot(usize, u32),
        /// Branch to the shared epilogue (normal exit or already-recorded
        /// fault). In the register-allocating emitter this is the *raw*
        /// epilogue — used after trampoline faults, where the frame was
        /// already flushed before the call.
        Epilogue(usize),
        /// Branch to the fault label (`rax` holds slot + 1).
        Fault(usize),
        /// Branch to the flush-then-return label (`Exit` in the
        /// register-allocating emitter).
        FlushExit(usize),
    }

    struct Emitter<'a> {
        asm: Asm,
        facts: &'a AccessFacts,
        offsets: Vec<usize>,
        fixups: Vec<Fixup>,
    }

    impl<'a> Emitter<'a> {
        // --- frame register traffic -----------------------------------

        /// `mov reg, qword [rbx + 8*bpf_reg]`
        fn load_frame64(&mut self, reg: u8, bpf_reg: u8) {
            self.asm.bytes(&[0x48, 0x8B]);
            self.asm.modrm_mem(reg, RBX, 8 * i32::from(bpf_reg));
        }
        /// `mov reg32, dword [rbx + 8*bpf_reg]` (zero-extends).
        fn load_frame32(&mut self, reg: u8, bpf_reg: u8) {
            self.asm.b(0x8B);
            self.asm.modrm_mem(reg, RBX, 8 * i32::from(bpf_reg));
        }
        fn load_frame(&mut self, reg: u8, bpf_reg: u8, is64: bool) {
            if is64 {
                self.load_frame64(reg, bpf_reg);
            } else {
                self.load_frame32(reg, bpf_reg);
            }
        }
        /// `mov qword [rbx + 8*bpf_reg], reg`
        fn store_frame(&mut self, bpf_reg: u8, reg: u8) {
            self.asm.bytes(&[0x48, 0x89]);
            self.asm.modrm_mem(reg, RBX, 8 * i32::from(bpf_reg));
        }
        /// `mov reg, qword [rbx + disp]` for the frame scalar fields.
        fn load_field(&mut self, reg: u8, disp: i32) {
            self.asm.bytes(&[0x48, 0x8B]);
            self.asm.modrm_mem(reg, RBX, disp);
        }
        /// `movabs reg, imm64`
        fn movabs(&mut self, reg: u8, imm: u64) {
            self.asm.b(0x48);
            self.asm.b(0xB8 + reg);
            self.asm.u64v(imm);
        }

        // --- control flow ---------------------------------------------

        /// Long `jcc rel32` with the target patched later.
        fn jcc32(&mut self, cc: u8) -> usize {
            self.asm.b(0x0F);
            self.asm.b(0x80 | cc);
            let pos = self.asm.here();
            self.asm.i32v(0);
            pos
        }
        /// Long `jmp rel32` with the target patched later.
        fn jmp32(&mut self) -> usize {
            self.asm.b(0xE9);
            let pos = self.asm.here();
            self.asm.i32v(0);
            pos
        }
        /// Resolves a local forward rel32 to the current position.
        fn bind(&mut self, pos: usize) {
            let rel = (self.asm.here() as i64 - (pos as i64 + 4)) as i32;
            self.asm.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        /// Short `jcc rel8` with the target patched later.
        fn jcc8(&mut self, cc: u8) -> usize {
            self.asm.b(0x70 | cc);
            let pos = self.asm.here();
            self.asm.b(0);
            pos
        }
        /// Short `jmp rel8` with the target patched later.
        fn jmp8(&mut self) -> usize {
            self.asm.b(0xEB);
            let pos = self.asm.here();
            self.asm.b(0);
            pos
        }
        fn bind8(&mut self, pos: usize) {
            let rel = self.asm.here() as i64 - (pos as i64 + 1);
            debug_assert!((-128..=127).contains(&rel));
            self.asm.code[pos] = rel as i8 as u8;
        }
        /// `jcc fault` taking the branch when `cc` holds: emitted as the
        /// inverted short jump over a `mov eax, slot+1; jmp fault` pair.
        fn fault_if(&mut self, cc: u8, slot: usize) {
            self.asm.b(0x70 | (cc ^ 1));
            self.asm.b(10);
            self.asm.b(0xB8);
            self.asm.i32v(slot as i32 + 1);
            self.asm.b(0xE9);
            let pos = self.asm.here();
            self.asm.i32v(0);
            self.fixups.push(Fixup::Fault(pos));
        }

        // --- memory access helpers ------------------------------------

        /// Width-correct load from `[base + rcx]` into `rax` (zero-extending).
        fn load_mem_rax(&mut self, size: AccessSize, base: u8) {
            match size {
                AccessSize::Byte => {
                    self.asm.bytes(&[0x0F, 0xB6]);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Half => {
                    self.asm.bytes(&[0x0F, 0xB7]);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Word => {
                    self.asm.b(0x8B);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Double => {
                    self.asm.bytes(&[0x48, 0x8B]);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
            }
        }
        /// Width-correct store of `rax`'s low bytes to `[base + rcx]`.
        fn store_mem_rax(&mut self, size: AccessSize, base: u8) {
            match size {
                AccessSize::Byte => {
                    self.asm.b(0x88);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Half => {
                    self.asm.bytes(&[0x66, 0x89]);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Word => {
                    self.asm.b(0x89);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Double => {
                    self.asm.bytes(&[0x48, 0x89]);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
            }
        }
        /// Computes the synthetic address `regs[base] + off` into `rcx`.
        fn addr_to_rcx(&mut self, base: u8, off: i16) {
            self.load_frame64(RCX, base);
            if off != 0 {
                // add rcx, imm32 (sign-extended, matching wrapping_add of
                // the sign-extended 16-bit displacement)
                self.asm.bytes(&[0x48, 0x81, 0xC1]);
                self.asm.i32v(i32::from(off));
            }
        }
        /// Emits the region dispatch for a load at `slot`; leaves the value
        /// in `rax`. `rcx` must hold the synthetic address.
        fn emit_load_access(&mut self, slot: usize, size: AccessSize) {
            match self.facts.get(slot) {
                AccessFact::Stack => {
                    self.load_field(RDX, OFF_STACK_BIAS);
                    self.load_mem_rax(size, RDX);
                }
                AccessFact::Ctx { end } => {
                    self.emit_ctx_guard(slot, end);
                    self.load_field(RDX, OFF_CTX_BIAS);
                    self.load_mem_rax(size, RDX);
                }
                AccessFact::Packet => {
                    // off = addr - PKT_BASE; end = off + len; fault to the
                    // generic resolver on carry or end > pkt_len so
                    // out-of-range addresses (including ones pointing at
                    // other regions) behave exactly like the interpreter.
                    self.movabs(RSI, PKT_BASE);
                    self.asm.bytes(&[0x48, 0x8B, 0xD1]); // mov rdx, rcx
                    self.asm.bytes(&[0x48, 0x2B, 0xD6]); // sub rdx, rsi
                    self.asm.bytes(&[0x48, 0x8B, 0xF2]); // mov rsi, rdx
                    self.asm.bytes(&[0x48, 0x83, 0xC6, size.bytes() as u8]); // add rsi, len
                    let slow_carry = self.jcc32(CC_B);
                    self.asm.bytes(&[0x48, 0x3B]); // cmp rsi, [rbx+pkt_len]
                    self.asm.modrm_mem(RSI, RBX, OFF_PKT_LEN);
                    let slow_len = self.jcc32(CC_A);
                    self.load_field(RSI, OFF_PKT_BIAS);
                    self.load_mem_rax(size, RSI);
                    let done = self.jmp32();
                    self.bind(slow_carry);
                    self.bind(slow_len);
                    self.emit_tramp_load(slot, size);
                    self.bind(done);
                }
                // The frame-model emitter resolves map values generically;
                // only the register-allocating emitter uses the MapValue
                // fact (MapLookup is recorded at call sites, never here).
                AccessFact::Other | AccessFact::MapValue | AccessFact::MapLookup { .. } => {
                    self.emit_tramp_load(slot, size)
                }
            }
        }
        /// Emits the region dispatch for a store at `slot`. `rcx` must hold
        /// the synthetic address and `rax` the value.
        fn emit_store_access(&mut self, slot: usize, size: AccessSize) {
            match self.facts.get(slot) {
                AccessFact::Stack => {
                    self.load_field(RDX, OFF_STACK_BIAS);
                    self.store_mem_rax(size, RDX);
                }
                AccessFact::Ctx { end } => {
                    self.emit_ctx_guard(slot, end);
                    self.load_field(RDX, OFF_CTX_BIAS);
                    self.store_mem_rax(size, RDX);
                }
                // Stores never carry a Packet fact (the verifier rejects
                // direct packet writes); anything else resolves generically
                // in this emitter (the register-allocating emitter handles
                // MapValue directly).
                AccessFact::Packet
                | AccessFact::Other
                | AccessFact::MapValue
                | AccessFact::MapLookup { .. } => self.emit_tramp_store(slot, size),
            }
        }
        /// `cmp qword [rbx+ctx_len], end; jb fault` — the only runtime cost
        /// of a verifier-proven context access (the embedder's context may
        /// be shorter than the verifier's maximum layout).
        fn emit_ctx_guard(&mut self, slot: usize, end: u16) {
            self.asm.bytes(&[0x48, 0x81]);
            self.asm.modrm_mem(7, RBX, OFF_CTX_LEN); // cmp /7
            self.asm.i32v(i32::from(end));
            self.fault_if(CC_B, slot);
        }
        /// Calls [`tramp_load`]; the result lands in `rax`. A recorded
        /// fault aborts to the epilogue (the trampoline already stored the
        /// slot).
        fn emit_tramp_load(&mut self, slot: usize, size: AccessSize) {
            self.load_field(RDI, OFF_TRAMP);
            self.asm.bytes(&[0x48, 0x8B, 0xF1]); // mov rsi, rcx (addr)
            self.asm.b(0xBA); // mov edx, size
            self.asm.i32v(size.bytes() as i32);
            self.asm.b(0xB9); // mov ecx, slot
            self.asm.i32v(slot as i32);
            let f: unsafe extern "C" fn(*mut TrampCtx, u64, u32, u32) -> u64 = tramp_load;
            self.movabs(RAX, f as usize as u64);
            self.asm.bytes(&[0xFF, 0xD0]); // call rax
            self.emit_fault_check();
        }
        /// Calls [`tramp_store`] with the value currently in `rax`.
        fn emit_tramp_store(&mut self, slot: usize, size: AccessSize) {
            self.load_field(RDI, OFF_TRAMP);
            self.asm.bytes(&[0x48, 0x8B, 0xF1]); // mov rsi, rcx (addr)
            self.asm.bytes(&[0x48, 0x8B, 0xD0]); // mov rdx, rax (value)
            self.asm.b(0xB9); // mov ecx, size
            self.asm.i32v(size.bytes() as i32);
            self.asm.bytes(&[0x41, 0xB8]); // mov r8d, slot
            self.asm.i32v(slot as i32);
            let f: unsafe extern "C" fn(*mut TrampCtx, u64, u64, u32, u32) = tramp_store;
            self.movabs(RAX, f as usize as u64);
            self.asm.bytes(&[0xFF, 0xD0]); // call rax
            self.emit_fault_check();
        }
        /// `cmp qword [rbx+fault], 0; jne epilogue` after a trampoline that
        /// may have recorded a fault.
        fn emit_fault_check(&mut self) {
            self.asm.bytes(&[0x48, 0x83]);
            self.asm.modrm_mem(7, RBX, OFF_FAULT); // cmp /7, imm8
            self.asm.b(0);
            let pos = self.jcc32(CC_NE);
            self.fixups.push(Fixup::Epilogue(pos));
        }

        // --- operations -----------------------------------------------

        fn emit_alu_imm(&mut self, op: u8, is64: bool, dst: u8, imm: u64, slot: usize) -> Result<()> {
            if op == alu::MOV {
                if is64 {
                    // mov qword [rbx+8*dst], imm32 (sign-extended — BPF
                    // immediates are sign-extended 32-bit values)
                    self.asm.bytes(&[0x48, 0xC7]);
                    self.asm.modrm_mem(0, RBX, 8 * i32::from(dst));
                    self.asm.i32v(imm as i32);
                } else {
                    self.asm.b(0xB8); // mov eax, imm32 (zero-extends)
                    self.asm.i32v(imm as u32 as i32);
                    self.store_frame(dst, RAX);
                }
                return Ok(());
            }
            self.load_frame(RAX, dst, is64);
            match op {
                alu::ADD | alu::OR | alu::AND | alu::SUB | alu::XOR => {
                    let ext = match op {
                        alu::ADD => 0,
                        alu::OR => 1,
                        alu::AND => 4,
                        alu::SUB => 5,
                        _ => 6, // XOR
                    };
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.b(0x81);
                    self.asm.b(0xC0 | (ext << 3));
                    self.asm.i32v(imm as i32);
                }
                alu::MUL => {
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.bytes(&[0x69, 0xC0]); // imul rax, rax, imm32
                    self.asm.i32v(imm as i32);
                }
                alu::DIV | alu::MOD => {
                    // The verifier rejects DIV/MOD by immediate zero, so no
                    // guard is needed here.
                    if is64 {
                        self.asm.bytes(&[0x48, 0xC7, 0xC1]); // mov rcx, imm32 (sext)
                        self.asm.i32v(imm as i32);
                    } else {
                        self.asm.b(0xB9); // mov ecx, imm32
                        self.asm.i32v(imm as u32 as i32);
                    }
                    self.emit_divmod(op, is64, false);
                }
                alu::LSH | alu::RSH | alu::ARSH => {
                    let ext = match op {
                        alu::LSH => 4,
                        alu::RSH => 5,
                        _ => 7, // ARSH
                    };
                    let amount = (imm as u32) & if is64 { 63 } else { 31 };
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.b(0xC1);
                    self.asm.b(0xC0 | (ext << 3));
                    self.asm.b(amount as u8);
                }
                other => {
                    return Err(Error::runtime(slot, format!("codegen: unsupported ALU op 0x{other:x}")))
                }
            }
            self.store_frame(dst, RAX);
            Ok(())
        }

        fn emit_alu_reg(&mut self, op: u8, is64: bool, dst: u8, src: u8, slot: usize) -> Result<()> {
            if op == alu::MOV {
                self.load_frame(RAX, src, is64);
                self.store_frame(dst, RAX);
                return Ok(());
            }
            self.load_frame(RCX, src, is64);
            self.load_frame(RAX, dst, is64);
            match op {
                alu::ADD | alu::OR | alu::AND | alu::SUB | alu::XOR => {
                    // op rax, rcx via the /r "load" forms: add=03 or=0B
                    // and=23 sub=2B xor=33
                    let opcode = match op {
                        alu::ADD => 0x03,
                        alu::OR => 0x0B,
                        alu::AND => 0x23,
                        alu::SUB => 0x2B,
                        _ => 0x33, // XOR
                    };
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.b(opcode);
                    self.asm.b(0xC1);
                }
                alu::MUL => {
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.bytes(&[0x0F, 0xAF, 0xC1]); // imul rax, rcx
                }
                alu::DIV | alu::MOD => self.emit_divmod(op, is64, true),
                alu::LSH | alu::RSH | alu::ARSH => {
                    // The shift count sits in cl; the hardware masks it by
                    // 63/31, exactly matching wrapping_shl/shr semantics.
                    let ext = match op {
                        alu::LSH => 4,
                        alu::RSH => 5,
                        _ => 7, // ARSH
                    };
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.b(0xD3);
                    self.asm.b(0xC0 | (ext << 3));
                }
                other => {
                    return Err(Error::runtime(slot, format!("codegen: unsupported ALU op 0x{other:x}")))
                }
            }
            self.store_frame(dst, RAX);
            Ok(())
        }

        /// Unsigned divide/remainder of `rax` by `rcx`, with the BPF
        /// division-by-zero semantics (quotient 0, remainder unchanged)
        /// when `guard_zero` is set. The 32-bit dividend was loaded
        /// zero-extending, so the remainder-unchanged path is already
        /// width-correct.
        fn emit_divmod(&mut self, op: u8, is64: bool, guard_zero: bool) {
            let mut zero_jump = None;
            if guard_zero {
                if is64 {
                    self.asm.bytes(&[0x48, 0x85, 0xC9]); // test rcx, rcx
                } else {
                    self.asm.bytes(&[0x85, 0xC9]); // test ecx, ecx
                }
                zero_jump = Some(self.jcc8(CC_E));
            }
            self.asm.bytes(&[0x33, 0xD2]); // xor edx, edx
            if is64 {
                self.asm.bytes(&[0x48, 0xF7, 0xF1]); // div rcx
            } else {
                self.asm.bytes(&[0xF7, 0xF1]); // div ecx
            }
            if op == alu::MOD {
                if is64 {
                    self.asm.bytes(&[0x48, 0x8B, 0xC2]); // mov rax, rdx
                } else {
                    self.asm.bytes(&[0x8B, 0xC2]); // mov eax, edx
                }
            }
            if let Some(pos) = zero_jump {
                let done = self.jmp8();
                self.bind8(pos);
                if op == alu::DIV {
                    self.asm.bytes(&[0x33, 0xC0]); // xor eax, eax
                }
                self.bind8(done);
            }
        }

        fn emit_byteswap(&mut self, dst: u8, bits: u8, to_be: bool, slot: usize) -> Result<()> {
            match (bits, to_be) {
                (16, true) => {
                    self.load_frame64(RAX, dst);
                    self.asm.bytes(&[0x66, 0xC1, 0xC8, 0x08]); // ror ax, 8
                    self.asm.bytes(&[0x0F, 0xB7, 0xC0]); // movzx eax, ax
                }
                (16, false) => {
                    self.load_frame64(RAX, dst);
                    self.asm.bytes(&[0x0F, 0xB7, 0xC0]); // movzx eax, ax
                }
                (32, true) => {
                    self.load_frame32(RAX, dst);
                    self.asm.bytes(&[0x0F, 0xC8]); // bswap eax
                }
                (32, false) => {
                    self.load_frame32(RAX, dst); // zero-extends = truncate
                }
                (64, true) => {
                    self.load_frame64(RAX, dst);
                    self.asm.bytes(&[0x48, 0x0F, 0xC8]); // bswap rax
                }
                (64, false) => return Ok(()), // identity
                _ => return Err(Error::runtime(slot, format!("codegen: unsupported swap width {bits}"))),
            }
            self.store_frame(dst, RAX);
            Ok(())
        }

        fn emit_jump_if(
            &mut self,
            op: u8,
            is64: bool,
            dst: u8,
            rhs: Operand,
            target: u32,
            slot: usize,
        ) -> Result<()> {
            self.load_frame(RAX, dst, is64);
            let is_set = op == jmp::JSET;
            match rhs {
                Operand::Imm(imm) => {
                    if is64 {
                        self.asm.b(0x48);
                    }
                    if is_set {
                        self.asm.bytes(&[0xF7, 0xC0]); // test rax, imm32 (sext)
                    } else {
                        self.asm.bytes(&[0x81, 0xF8]); // cmp rax, imm32 (sext)
                    }
                    self.asm.i32v(imm as i32);
                }
                Operand::Reg(src) => {
                    self.load_frame(RCX, src, is64);
                    if is64 {
                        self.asm.b(0x48);
                    }
                    if is_set {
                        self.asm.bytes(&[0x85, 0xC8]); // test rax, rcx
                    } else {
                        self.asm.bytes(&[0x3B, 0xC1]); // cmp rax, rcx
                    }
                }
            }
            let cc = match op {
                jmp::JEQ => CC_E,
                jmp::JNE | jmp::JSET => CC_NE,
                jmp::JGT => CC_A,
                jmp::JGE => CC_AE,
                jmp::JLT => CC_B,
                jmp::JLE => CC_BE,
                jmp::JSGT => CC_G,
                jmp::JSGE => CC_GE,
                jmp::JSLT => CC_L,
                jmp::JSLE => CC_LE,
                other => {
                    return Err(Error::runtime(slot, format!("codegen: unsupported jump op 0x{other:x}")))
                }
            };
            let pos = self.jcc32(cc);
            self.fixups.push(Fixup::Slot(pos, target));
            Ok(())
        }

        fn emit_op(&mut self, slot: usize, op: &MicroOp) -> Result<()> {
            match *op {
                MicroOp::AluImm { op, is64, dst, imm } => self.emit_alu_imm(op, is64, dst, imm, slot)?,
                MicroOp::AluReg { op, is64, dst, src } => self.emit_alu_reg(op, is64, dst, src, slot)?,
                MicroOp::Neg { is64, dst } => {
                    self.load_frame(RAX, dst, is64);
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.bytes(&[0xF7, 0xD8]); // neg rax / neg eax
                    self.store_frame(dst, RAX);
                }
                MicroOp::ByteSwap { dst, bits, to_be } => self.emit_byteswap(dst, bits, to_be, slot)?,
                MicroOp::LoadImm64 { dst, imm } => {
                    self.movabs(RAX, imm);
                    self.store_frame(dst, RAX);
                }
                MicroOp::Load { size, dst, src, off } => {
                    self.addr_to_rcx(src, off);
                    self.emit_load_access(slot, size);
                    self.store_frame(dst, RAX);
                }
                MicroOp::StoreReg { size, dst, src, off } => {
                    self.addr_to_rcx(dst, off);
                    self.load_frame64(RAX, src);
                    self.emit_store_access(slot, size);
                }
                MicroOp::StoreImm { size, dst, off, imm } => {
                    self.addr_to_rcx(dst, off);
                    self.movabs(RAX, imm);
                    self.emit_store_access(slot, size);
                }
                MicroOp::Jump { target } => {
                    let pos = self.jmp32();
                    self.fixups.push(Fixup::Slot(pos, target));
                }
                MicroOp::JumpIf { op, is64, dst, rhs, target } => {
                    self.emit_jump_if(op, is64, dst, rhs, target, slot)?
                }
                MicroOp::Call { idx, id: _ } => {
                    self.load_field(RDI, OFF_TRAMP);
                    self.asm.b(0xBE); // mov esi, idx
                    self.asm.i32v(idx as i32);
                    let f: unsafe extern "C" fn(*mut TrampCtx, u32) -> i64 = tramp_helper;
                    self.movabs(RAX, f as usize as u64);
                    self.asm.bytes(&[0xFF, 0xD0]); // call rax
                    self.store_frame(0, RAX); // r0 = return value
                }
                MicroOp::Exit => {
                    let pos = self.jmp32();
                    self.fixups.push(Fixup::Epilogue(pos));
                }
                MicroOp::Nop => {}
            }
            Ok(())
        }
    }

    /// The original frame-model emitter (`SEG6_NATIVE_REGALLOC=off`): BPF
    /// registers live in the frame and are loaded per operation.
    fn compile_frame(fused: &FusedProgram, facts: &AccessFacts) -> Result<super::NativeProgram> {
        let ops = fused.expand();
        let mut e =
            Emitter { asm: Asm::default(), facts, offsets: vec![0usize; ops.len()], fixups: Vec::new() };
        // Prologue: push rbx; mov rbx, rdi. The push realigns rsp to a
        // 16-byte boundary, so every `call rax` below lands in the
        // trampolines with standard ABI alignment.
        e.asm.bytes(&[0x53, 0x48, 0x89, 0xFB]);
        for (slot, op) in ops.iter().enumerate() {
            e.offsets[slot] = e.asm.here();
            e.emit_op(slot, op)?;
        }
        // Fell-off-the-end guard: the verifier proves this unreachable, but
        // make it a recorded fault rather than a stray jump if it ever runs.
        e.asm.b(0xB8);
        e.asm.i32v(ops.len() as i32 + 1);
        // Fault label: rax holds slot + 1; store it and fall into the
        // epilogue.
        let fault_label = e.asm.here();
        e.asm.bytes(&[0x48, 0x89]);
        e.asm.modrm_mem(RAX, RBX, OFF_FAULT);
        // Epilogue: pop rbx; ret.
        let epilogue_label = e.asm.here();
        e.asm.bytes(&[0x5B, 0xC3]);
        for fixup in std::mem::take(&mut e.fixups) {
            let (pos, target) = match fixup {
                Fixup::Slot(pos, slot) => (pos, e.offsets[slot as usize]),
                Fixup::Epilogue(pos) | Fixup::FlushExit(pos) => (pos, epilogue_label),
                Fixup::Fault(pos) => (pos, fault_label),
            };
            let rel = (target as i64 - (pos as i64 + 4)) as i32;
            e.asm.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        let buf = ExecBuf::new(&e.asm.code)?;
        Ok(super::NativeProgram { buf, debug: super::NativeDebug::default() })
    }

    // -----------------------------------------------------------------
    // The register-allocating emitter
    // -----------------------------------------------------------------

    /// `r10`'s constant value; the register-allocating emitter folds it
    /// instead of giving the frame pointer a home.
    const STACK_TOP: u64 = STACK_BASE + STACK_SIZE as u64;

    /// Callee-saved candidate homes (preserved across the Rust trampoline
    /// calls, so they only need reloading after a helper — which may write
    /// any BPF register — not after a load/store trampoline).
    const CALLEE_HOMES: [u8; 5] = [R12, R13, R14, R15, RBP];
    /// Caller-saved candidate homes; free to use (no push/pop) but
    /// clobbered by every trampoline call.
    const CALLER_HOMES: [u8; 4] = [R8, R9, R10, R11];

    /// The per-program register assignment: which BPF registers live in
    /// which host registers for the whole program.
    ///
    /// Live intervals are computed over the expanded micro-op stream, but
    /// homes are fixed for the program rather than time-shared between
    /// values: the verifier only accepts forward jumps, so an interval
    /// hand-off point could be jumped over, leaving a home stale. With ten
    /// allocatable BPF registers (`r10` folds to the constant
    /// [`STACK_TOP`]) and nine candidate homes, at most one value stays
    /// frame-resident — the one with the fewest uses.
    struct RegPlan {
        /// Host home per BPF register (`None` = frame-resident).
        home: [Option<u8>; NUM_REGS],
        /// `(bpf_reg, host_reg)` pairs, in assignment order.
        homed: Vec<(u8, u8)>,
        /// Callee-saved homes actually assigned (these get pushed).
        callee_used: Vec<u8>,
        /// The caller-saved subset of `homed`.
        caller_homed: Vec<(u8, u8)>,
        /// Whether any op can call a trampoline (helper call, packet load,
        /// generic access): decides candidate ordering and rsp alignment.
        has_calls: bool,
        /// BPF registers left frame-resident under register pressure.
        spills: u32,
    }

    fn plan_registers(ops: &[MicroOp], facts: &AccessFacts) -> RegPlan {
        let mut uses = [0u32; NUM_REGS];
        let mut first = [usize::MAX; NUM_REGS];
        let mut has_calls = false;
        for (slot, op) in ops.iter().enumerate() {
            op.for_each_reg(|r| {
                let r = usize::from(r);
                uses[r] += 1;
                if first[r] == usize::MAX {
                    first[r] = slot;
                }
            });
            has_calls |= match op {
                MicroOp::Call { .. } => true,
                MicroOp::Load { .. } | MicroOp::StoreReg { .. } | MicroOp::StoreImm { .. } => {
                    matches!(
                        facts.get(slot),
                        AccessFact::Packet | AccessFact::Other | AccessFact::MapLookup { .. }
                    )
                }
                _ => false,
            };
        }
        // Rank r0–r9 by use count (ties: earlier live-interval start
        // first); r10 is excluded — it is a read-only compile-time
        // constant, and its frame slot stays valid because nothing ever
        // writes it.
        let mut ranked: Vec<u8> = (0..10u8).filter(|&r| uses[usize::from(r)] > 0).collect();
        ranked.sort_by_key(|&r| (std::cmp::Reverse(uses[usize::from(r)]), first[usize::from(r)]));
        // Call-free programs prefer caller-saved homes (no pushes at all);
        // programs with trampoline call sites prefer callee-saved homes
        // (fewer reloads around each call).
        let pool: Vec<u8> = if has_calls {
            CALLEE_HOMES.iter().chain(CALLER_HOMES.iter()).copied().collect()
        } else {
            CALLER_HOMES.iter().chain(CALLEE_HOMES.iter()).copied().collect()
        };
        let mut home = [None; NUM_REGS];
        let mut homed = Vec::new();
        for (&bpf, &host) in ranked.iter().zip(pool.iter()) {
            home[usize::from(bpf)] = Some(host);
            homed.push((bpf, host));
        }
        let spills = ranked.len().saturating_sub(pool.len()) as u32;
        let callee_used = homed.iter().map(|&(_, h)| h).filter(|h| CALLEE_HOMES.contains(h)).collect();
        let caller_homed = homed.iter().copied().filter(|(_, h)| CALLER_HOMES.contains(h)).collect();
        RegPlan { home, homed, callee_used, caller_homed, has_calls, spills }
    }

    /// The register-resident emitter. BPF registers live in their homes for
    /// the whole program; the frame doubles as the spill area and as the
    /// coherence point around trampolines — every home is written back
    /// before a call and at the fault/exit edges, so trampolines, helpers
    /// and the fault path see exactly the frame the frame-model emitter
    /// would have produced.
    struct RegEmitter<'a> {
        asm: Asm,
        facts: &'a AccessFacts,
        loaded: &'a LoadedProgram,
        offsets: Vec<usize>,
        fixups: Vec<Fixup>,
        home: [Option<u8>; NUM_REGS],
        homed: Vec<(u8, u8)>,
        caller_homed: Vec<(u8, u8)>,
        elided_checks: u32,
        inlined_helpers: u32,
        lookup_sites: u32,
    }

    impl<'a> RegEmitter<'a> {
        fn home_of(&self, r: u8) -> Option<u8> {
            self.home[usize::from(r)]
        }

        // --- frame traffic (REX-aware: any host register) --------------

        fn load_frame(&mut self, host: u8, bpf_reg: u8, is64: bool) {
            self.asm.op_rm(&[0x8B], is64, host, RBX, 8 * i32::from(bpf_reg));
        }
        fn store_frame(&mut self, bpf_reg: u8, host: u8) {
            self.asm.op_rm(&[0x89], true, host, RBX, 8 * i32::from(bpf_reg));
        }
        fn load_field(&mut self, host: u8, disp: i32) {
            self.asm.op_rm(&[0x8B], true, host, RBX, disp);
        }

        /// Copies BPF register `r` into `host` (zero-extending when 32-bit).
        fn read_reg(&mut self, host: u8, r: u8, is64: bool) {
            if r == 10 {
                self.asm.movabs_r(host, STACK_TOP);
                if !is64 {
                    self.asm.op_rr(&[0x8B], false, host, host); // truncate
                }
            } else if let Some(h) = self.home_of(r) {
                self.asm.op_rr(&[0x8B], is64, host, h);
            } else {
                self.load_frame(host, r, is64);
            }
        }
        /// Writes the full 64-bit value in `host` into BPF register `r`.
        fn write_reg(&mut self, r: u8, host: u8) {
            if let Some(h) = self.home_of(r) {
                if h != host {
                    self.asm.op_rr(&[0x8B], true, h, host);
                }
            } else {
                self.store_frame(r, host);
            }
        }
        /// The host register currently holding `r`'s full value,
        /// materializing frame-resident (or constant-`r10`) values in rax.
        fn reg_to_host(&mut self, r: u8) -> u8 {
            if r != 10 {
                if let Some(h) = self.home_of(r) {
                    return h;
                }
            }
            self.read_reg(RAX, r, true);
            RAX
        }
        /// A host register `dst` can be updated in place: its home, or rax
        /// holding the frame value (loaded when `read`). Pair with
        /// [`Self::release`].
        fn acquire(&mut self, dst: u8, is64: bool, read: bool) -> u8 {
            if let Some(h) = self.home_of(dst) {
                h
            } else {
                if read {
                    self.load_frame(RAX, dst, is64);
                }
                RAX
            }
        }
        fn release(&mut self, dst: u8, work: u8) {
            if self.home_of(dst).is_none() {
                self.store_frame(dst, work);
            }
        }

        // --- home <-> frame coherence ----------------------------------

        /// Writes every register-resident value back to the frame, which
        /// trampolines, helpers and the fault path read.
        fn flush_homes(&mut self) {
            for i in 0..self.homed.len() {
                let (r, h) = self.homed[i];
                self.store_frame(r, h);
            }
        }
        /// Reloads every home from the frame — required after a helper,
        /// which may write any BPF register.
        fn reload_homes(&mut self) {
            for i in 0..self.homed.len() {
                let (r, h) = self.homed[i];
                self.load_frame(h, r, true);
            }
        }
        /// Reloads only the caller-saved homes — enough after a load/store
        /// trampoline, which never writes BPF registers (the callee-saved
        /// homes survive the call untouched).
        fn reload_caller_homes(&mut self) {
            for i in 0..self.caller_homed.len() {
                let (r, h) = self.caller_homed[i];
                self.load_frame(h, r, true);
            }
        }

        // --- guards and slow-path calls --------------------------------

        /// `jcc fault` taking the branch when `cc` holds (see
        /// [`Emitter::fault_if`]).
        fn fault_if(&mut self, cc: u8, slot: usize) {
            self.asm.b(0x70 | (cc ^ 1));
            self.asm.b(10);
            self.asm.b(0xB8);
            self.asm.i32v(slot as i32 + 1);
            self.asm.b(0xE9);
            let pos = self.asm.here();
            self.asm.i32v(0);
            self.fixups.push(Fixup::Fault(pos));
        }
        fn emit_ctx_guard(&mut self, slot: usize, end: u16) {
            self.asm.bytes(&[0x48, 0x81]);
            self.asm.modrm_mem(7, RBX, OFF_CTX_LEN); // cmp /7
            self.asm.i32v(i32::from(end));
            self.fault_if(CC_B, slot);
        }
        /// `cmp qword [rbx+fault], 0; jne epilogue` — the raw epilogue:
        /// the frame was flushed before the trampoline call, and the
        /// trampoline never writes BPF registers on the fault path.
        fn emit_fault_check(&mut self) {
            self.asm.bytes(&[0x48, 0x83]);
            self.asm.modrm_mem(7, RBX, OFF_FAULT); // cmp /7, imm8
            self.asm.b(0);
            let pos = self.asm.jcc32(CC_NE);
            self.fixups.push(Fixup::Epilogue(pos));
        }
        /// `cmp qword [rbx+inline_flags], 0; je <returned pos>` — guards
        /// every inline helper fast path on the per-invocation environment
        /// snapshot being valid.
        fn flag_check(&mut self) -> usize {
            self.asm.bytes(&[0x48, 0x83]);
            self.asm.modrm_mem(7, RBX, OFF_INLINE_FLAGS);
            self.asm.b(0);
            self.asm.jcc32(CC_E)
        }
        fn emit_tramp_load(&mut self, slot: usize, size: AccessSize) {
            self.flush_homes();
            self.load_field(RDI, OFF_TRAMP);
            self.asm.op_rr(&[0x8B], true, RSI, RCX); // mov rsi, rcx (addr)
            self.asm.b(0xBA); // mov edx, size
            self.asm.i32v(size.bytes() as i32);
            self.asm.b(0xB9); // mov ecx, slot
            self.asm.i32v(slot as i32);
            let f: unsafe extern "C" fn(*mut TrampCtx, u64, u32, u32) -> u64 = tramp_load;
            self.asm.movabs_r(RAX, f as usize as u64);
            self.asm.bytes(&[0xFF, 0xD0]); // call rax
            self.emit_fault_check();
            self.reload_caller_homes();
        }
        /// Calls [`tramp_store`] with the value already in `rax`.
        fn emit_tramp_store(&mut self, slot: usize, size: AccessSize) {
            self.flush_homes();
            self.load_field(RDI, OFF_TRAMP);
            self.asm.op_rr(&[0x8B], true, RSI, RCX); // mov rsi, rcx (addr)
            self.asm.op_rr(&[0x8B], true, RDX, RAX); // mov rdx, rax (value)
            self.asm.b(0xB9); // mov ecx, size
            self.asm.i32v(size.bytes() as i32);
            self.asm.bytes(&[0x41, 0xB8]); // mov r8d, slot
            self.asm.i32v(slot as i32);
            let f: unsafe extern "C" fn(*mut TrampCtx, u64, u64, u32, u32) = tramp_store;
            self.asm.movabs_r(RAX, f as usize as u64);
            self.asm.bytes(&[0xFF, 0xD0]); // call rax
            self.emit_fault_check();
            self.reload_caller_homes();
        }

        // --- memory access ---------------------------------------------

        /// Computes the synthetic address `regs[base] + off` into `rcx`;
        /// the constant `r10` folds to an immediate.
        fn addr_to_rcx(&mut self, base: u8, off: i16) {
            if base == 10 {
                self.asm.movabs_r(RCX, STACK_TOP.wrapping_add(i64::from(off) as u64));
                return;
            }
            self.read_reg(RCX, base, true);
            if off != 0 {
                self.asm.grp81(true, 0, RCX, i32::from(off)); // add rcx, imm32
            }
        }
        /// Width-correct zero-extending load from `[base + rcx]` into
        /// `dest`.
        fn load_mem(&mut self, size: AccessSize, base: u8, dest: u8) {
            match size {
                AccessSize::Byte => self.asm.op_sib(&[0x0F, 0xB6], false, dest, base, RCX),
                AccessSize::Half => self.asm.op_sib(&[0x0F, 0xB7], false, dest, base, RCX),
                AccessSize::Word => self.asm.op_sib(&[0x8B], false, dest, base, RCX),
                AccessSize::Double => self.asm.op_sib(&[0x8B], true, dest, base, RCX),
            }
        }
        /// Width-correct store of `value`'s low bytes to `[base + rcx]`.
        fn store_mem(&mut self, size: AccessSize, base: u8, mut value: u8) {
            if size == AccessSize::Byte && (4..8).contains(&value) {
                // rbp as a byte source would encode `ch` without a REX
                // prefix; route it through rax instead.
                self.asm.op_rr(&[0x8B], true, RAX, value);
                value = RAX;
            }
            match size {
                AccessSize::Byte => self.asm.op_sib(&[0x88], false, value, base, RCX),
                AccessSize::Half => {
                    self.asm.b(0x66);
                    self.asm.op_sib(&[0x89], false, value, base, RCX);
                }
                AccessSize::Word => self.asm.op_sib(&[0x89], false, value, base, RCX),
                AccessSize::Double => self.asm.op_sib(&[0x89], true, value, base, RCX),
            }
        }
        /// Resolves the synthetic map-value address in `rcx` to a bias in
        /// `rdx` via the per-state region table: the region index is the
        /// address's upper word minus the `MAP_VALUE_BASE` tag. No bounds
        /// check is needed — the `MapValue` fact proves offset and size,
        /// and the pointer came from a lookup in this run, so the region
        /// is registered (and [`tramp_helper`] refreshes the table pointer
        /// after every helper call).
        fn emit_region_bias_to_rdx(&mut self) {
            self.asm.op_rr(&[0x8B], true, RDX, RCX); // mov rdx, rcx
            self.asm.shift_imm(true, 5, RDX, 32); // shr rdx, 32
            self.asm.grp81(true, 5, RDX, (MAP_VALUE_BASE >> 32) as i32); // sub
            self.load_field(RSI, OFF_REGION_TBL);
            self.asm.load64_sib8(RDX, RSI, RDX); // mov rdx, [rsi + rdx*8]
        }
        /// Region dispatch for a load at `slot`; `rcx` holds the synthetic
        /// address, and the result lands directly in `dst`'s home (or its
        /// frame slot).
        fn emit_load_access(&mut self, slot: usize, size: AccessSize, dst: u8) {
            let dest = self.home_of(dst).unwrap_or(RAX);
            match self.facts.get(slot) {
                AccessFact::Stack => {
                    self.load_field(RDX, OFF_STACK_BIAS);
                    self.load_mem(size, RDX, dest);
                    self.write_reg(dst, dest);
                    self.elided_checks += 1;
                }
                AccessFact::Ctx { end } => {
                    self.emit_ctx_guard(slot, end);
                    self.load_field(RDX, OFF_CTX_BIAS);
                    self.load_mem(size, RDX, dest);
                    self.write_reg(dst, dest);
                    self.elided_checks += 1;
                }
                AccessFact::MapValue => {
                    self.emit_region_bias_to_rdx();
                    self.load_mem(size, RDX, dest);
                    self.write_reg(dst, dest);
                    self.elided_checks += 1;
                }
                AccessFact::Packet => {
                    // Same shape as the frame-model emitter: carry +
                    // length check, falling back to the generic resolver
                    // so faults match the interpreter exactly.
                    self.asm.movabs_r(RSI, PKT_BASE);
                    self.asm.op_rr(&[0x8B], true, RDX, RCX); // mov rdx, rcx
                    self.asm.op_rr(&[0x2B], true, RDX, RSI); // sub rdx, rsi
                    self.asm.op_rr(&[0x8B], true, RSI, RDX); // mov rsi, rdx
                    self.asm.grp81(true, 0, RSI, size.bytes() as i32); // add
                    let slow_carry = self.asm.jcc32(CC_B);
                    self.asm.op_rm(&[0x3B], true, RSI, RBX, OFF_PKT_LEN);
                    let slow_len = self.asm.jcc32(CC_A);
                    self.load_field(RSI, OFF_PKT_BIAS);
                    self.load_mem(size, RSI, dest);
                    self.write_reg(dst, dest);
                    let done = self.asm.jmp32();
                    self.asm.bind(slow_carry);
                    self.asm.bind(slow_len);
                    self.emit_tramp_load(slot, size);
                    self.write_reg(dst, RAX);
                    self.asm.bind(done);
                    self.elided_checks += 1;
                }
                AccessFact::Other | AccessFact::MapLookup { .. } => {
                    self.emit_tramp_load(slot, size);
                    self.write_reg(dst, RAX);
                }
            }
        }
        /// Region dispatch for a store at `slot`; `rcx` holds the
        /// synthetic address and `value` the host register with the value.
        fn emit_store_access(&mut self, slot: usize, size: AccessSize, value: u8) {
            match self.facts.get(slot) {
                AccessFact::Stack => {
                    self.load_field(RDX, OFF_STACK_BIAS);
                    self.store_mem(size, RDX, value);
                    self.elided_checks += 1;
                }
                AccessFact::Ctx { end } => {
                    self.emit_ctx_guard(slot, end);
                    self.load_field(RDX, OFF_CTX_BIAS);
                    self.store_mem(size, RDX, value);
                    self.elided_checks += 1;
                }
                AccessFact::MapValue => {
                    self.emit_region_bias_to_rdx();
                    self.store_mem(size, RDX, value);
                    self.elided_checks += 1;
                }
                AccessFact::Packet | AccessFact::Other | AccessFact::MapLookup { .. } => {
                    if value != RAX {
                        self.asm.op_rr(&[0x8B], true, RAX, value);
                    }
                    self.emit_tramp_store(slot, size);
                }
            }
        }

        // --- helper calls ----------------------------------------------

        /// The generic helper path: flush, call [`tramp_helper`], reload
        /// everything (a helper may write any BPF register), set r0.
        fn emit_helper_tramp(&mut self, idx: u32) {
            self.flush_homes();
            self.load_field(RDI, OFF_TRAMP);
            self.asm.b(0xBE); // mov esi, idx
            self.asm.i32v(idx as i32);
            let f: unsafe extern "C" fn(*mut TrampCtx, u32) -> i64 = tramp_helper;
            self.asm.movabs_r(RAX, f as usize as u64);
            self.asm.bytes(&[0xFF, 0xD0]); // call rax
            self.reload_homes();
            self.write_reg(0, RAX);
        }
        /// Array-map lookup with a per-site result cache: tag = cpu_tag +
        /// key + 1, hit = compare + load, miss = [`tramp_helper_cached`]
        /// (which fills the site on success). The hit path needs no bounds
        /// check — only successful lookups are ever cached.
        fn emit_cached_lookup(&mut self, idx: u32) {
            let site = self.lookup_sites;
            self.lookup_sites += 1;
            self.inlined_helpers += 1;
            let disp = site as i32 * 16;
            let slow = self.flag_check();
            // rcx = host address of the stack-resident key; ecx = key.
            self.read_reg(RCX, 2, true);
            self.asm.op_rm(&[0x03], true, RCX, RBX, OFF_STACK_BIAS); // add
            self.asm.op_rm(&[0x8B], false, RCX, RCX, 0); // mov ecx, [rcx]
            self.load_field(RDX, OFF_INLINE_CPU_TAG);
            self.asm.op_rr(&[0x03], true, RDX, RCX); // add rdx, rcx
            self.asm.bytes(&[0x48, 0xFF, 0xC2]); // inc rdx
            self.load_field(RSI, OFF_SITE_CACHE);
            self.asm.op_rm(&[0x3B], true, RDX, RSI, disp); // cmp rdx, [..]
            let miss = self.asm.jcc32(CC_NE);
            self.asm.op_rm(&[0x8B], true, RAX, RSI, disp + 8); // cached ptr
            self.write_reg(0, RAX);
            let done = self.asm.jmp32();
            self.asm.bind(slow);
            self.asm.bind(miss);
            self.flush_homes();
            self.load_field(RDI, OFF_TRAMP);
            self.asm.b(0xBE); // mov esi, idx
            self.asm.i32v(idx as i32);
            self.asm.b(0xBA); // mov edx, site
            self.asm.i32v(site as i32);
            let f: unsafe extern "C" fn(*mut TrampCtx, u32, u32) -> i64 = tramp_helper_cached;
            self.asm.movabs_r(RAX, f as usize as u64);
            self.asm.bytes(&[0xFF, 0xD0]); // call rax
            self.reload_homes();
            self.write_reg(0, RAX);
            self.asm.bind(done);
        }
        fn emit_call(&mut self, slot: usize, idx: u32, id: u32) {
            // Trivially-pure helpers: one load off the frame's environment
            // snapshot when it is valid, trampoline otherwise (recording
            // environments never publish a snapshot, so their observable
            // call sequence is unchanged).
            if id == ids::KTIME_GET_NS || id == ids::GET_SMP_PROCESSOR_ID {
                let field = if id == ids::KTIME_GET_NS { OFF_INLINE_KTIME } else { OFF_INLINE_CPU };
                let slow = self.flag_check();
                self.load_field(RAX, field);
                self.write_reg(0, RAX);
                let done = self.asm.jmp32();
                self.asm.bind(slow);
                self.emit_helper_tramp(idx);
                self.asm.bind(done);
                self.inlined_helpers += 1;
                return;
            }
            // Array-family lookups with a verifier-proven stack-resident
            // u32 key get the per-site cache fast path.
            if id == ids::MAP_LOOKUP_ELEM {
                if let AccessFact::MapLookup { fd, key_in_stack: true } = self.facts.get(slot) {
                    if let Some(map) = self.loaded.maps.get(&fd) {
                        if matches!(map.map_type(), MapType::Array | MapType::PerCpuArray)
                            && map.key_size() == 4
                        {
                            self.emit_cached_lookup(idx);
                            return;
                        }
                    }
                }
            }
            self.emit_helper_tramp(idx);
        }

        // --- operations ------------------------------------------------

        fn emit_alu_imm(&mut self, op: u8, is64: bool, dst: u8, imm: u64, slot: usize) -> Result<()> {
            if op == alu::MOV {
                if let Some(h) = self.home_of(dst) {
                    // 64-bit form sign-extends, 32-bit zero-extends — both
                    // the BPF semantics.
                    self.asm.mov_ri32(is64, h, imm as i32);
                } else if is64 {
                    self.asm.bytes(&[0x48, 0xC7]); // mov qword [..], imm32
                    self.asm.modrm_mem(0, RBX, 8 * i32::from(dst));
                    self.asm.i32v(imm as i32);
                } else {
                    self.asm.b(0xB8); // mov eax, imm32
                    self.asm.i32v(imm as u32 as i32);
                    self.store_frame(dst, RAX);
                }
                return Ok(());
            }
            match op {
                alu::ADD | alu::OR | alu::AND | alu::SUB | alu::XOR => {
                    let ext = match op {
                        alu::ADD => 0,
                        alu::OR => 1,
                        alu::AND => 4,
                        alu::SUB => 5,
                        _ => 6, // XOR
                    };
                    let work = self.acquire(dst, is64, true);
                    self.asm.grp81(is64, ext, work, imm as i32);
                    self.release(dst, work);
                }
                alu::MUL => {
                    let work = self.acquire(dst, is64, true);
                    self.asm.op_rr(&[0x69], is64, work, work); // imul r, r, imm
                    self.asm.i32v(imm as i32);
                    self.release(dst, work);
                }
                alu::DIV | alu::MOD => {
                    // The verifier rejects DIV/MOD by immediate zero.
                    self.read_reg(RAX, dst, is64);
                    if is64 {
                        self.asm.bytes(&[0x48, 0xC7, 0xC1]); // mov rcx, imm32
                        self.asm.i32v(imm as i32);
                    } else {
                        self.asm.b(0xB9); // mov ecx, imm32
                        self.asm.i32v(imm as u32 as i32);
                    }
                    self.emit_divmod(op, is64, false);
                    self.write_reg(dst, RAX);
                }
                alu::LSH | alu::RSH | alu::ARSH => {
                    let ext = match op {
                        alu::LSH => 4,
                        alu::RSH => 5,
                        _ => 7, // ARSH
                    };
                    let amount = (imm as u32) & if is64 { 63 } else { 31 };
                    let work = self.acquire(dst, is64, true);
                    self.asm.shift_imm(is64, ext, work, amount as u8);
                    self.release(dst, work);
                }
                other => {
                    return Err(Error::runtime(slot, format!("codegen: unsupported ALU op 0x{other:x}")))
                }
            }
            Ok(())
        }

        fn emit_alu_reg(&mut self, op: u8, is64: bool, dst: u8, src: u8, slot: usize) -> Result<()> {
            if op == alu::MOV {
                if let Some(h) = self.home_of(dst) {
                    self.read_reg(h, src, is64);
                } else {
                    self.read_reg(RAX, src, is64);
                    self.store_frame(dst, RAX);
                }
                return Ok(());
            }
            match op {
                alu::ADD | alu::OR | alu::AND | alu::SUB | alu::XOR | alu::MUL => {
                    let opcodes: &[u8] = match op {
                        alu::ADD => &[0x03],
                        alu::OR => &[0x0B],
                        alu::AND => &[0x23],
                        alu::SUB => &[0x2B],
                        alu::XOR => &[0x33],
                        _ => &[0x0F, 0xAF], // imul
                    };
                    let work = self.acquire(dst, is64, true);
                    if src == 10 {
                        self.asm.movabs_r(RDX, STACK_TOP);
                        self.asm.op_rr(opcodes, is64, work, RDX);
                    } else if let Some(hs) = self.home_of(src) {
                        self.asm.op_rr(opcodes, is64, work, hs);
                    } else {
                        self.asm.op_rm(opcodes, is64, work, RBX, 8 * i32::from(src));
                    }
                    self.release(dst, work);
                }
                alu::DIV | alu::MOD => {
                    self.read_reg(RCX, src, is64);
                    self.read_reg(RAX, dst, is64);
                    self.emit_divmod(op, is64, true);
                    self.write_reg(dst, RAX);
                }
                alu::LSH | alu::RSH | alu::ARSH => {
                    let ext = match op {
                        alu::LSH => 4,
                        alu::RSH => 5,
                        _ => 7, // ARSH
                    };
                    self.read_reg(RCX, src, is64);
                    let work = self.acquire(dst, is64, true);
                    self.asm.shift_cl(is64, ext, work);
                    self.release(dst, work);
                }
                other => {
                    return Err(Error::runtime(slot, format!("codegen: unsupported ALU op 0x{other:x}")))
                }
            }
            Ok(())
        }

        /// Identical to [`Emitter::emit_divmod`]: unsigned rax / rcx with
        /// the BPF division-by-zero semantics.
        fn emit_divmod(&mut self, op: u8, is64: bool, guard_zero: bool) {
            let mut zero_jump = None;
            if guard_zero {
                if is64 {
                    self.asm.bytes(&[0x48, 0x85, 0xC9]); // test rcx, rcx
                } else {
                    self.asm.bytes(&[0x85, 0xC9]); // test ecx, ecx
                }
                zero_jump = Some(self.asm.jcc8(CC_E));
            }
            self.asm.bytes(&[0x33, 0xD2]); // xor edx, edx
            if is64 {
                self.asm.bytes(&[0x48, 0xF7, 0xF1]); // div rcx
            } else {
                self.asm.bytes(&[0xF7, 0xF1]); // div ecx
            }
            if op == alu::MOD {
                if is64 {
                    self.asm.bytes(&[0x48, 0x8B, 0xC2]); // mov rax, rdx
                } else {
                    self.asm.bytes(&[0x8B, 0xC2]); // mov eax, edx
                }
            }
            if let Some(pos) = zero_jump {
                let done = self.asm.jmp8();
                self.asm.bind8(pos);
                if op == alu::DIV {
                    self.asm.bytes(&[0x33, 0xC0]); // xor eax, eax
                }
                self.asm.bind8(done);
            }
        }

        fn emit_byteswap(&mut self, dst: u8, bits: u8, to_be: bool, slot: usize) -> Result<()> {
            if bits == 64 && !to_be {
                return Ok(()); // identity
            }
            let work = self.acquire(dst, true, true);
            match (bits, to_be) {
                (16, true) => {
                    self.asm.b(0x66);
                    self.asm.shift_imm(false, 1, work, 8); // ror work16, 8
                    self.asm.op_rr(&[0x0F, 0xB7], false, work, work); // movzx
                }
                (16, false) => {
                    self.asm.op_rr(&[0x0F, 0xB7], false, work, work); // movzx
                }
                (32, true) => self.asm.bswap(false, work),
                (32, false) => {
                    self.asm.op_rr(&[0x8B], false, work, work); // truncate
                }
                (64, true) => self.asm.bswap(true, work),
                _ => return Err(Error::runtime(slot, format!("codegen: unsupported swap width {bits}"))),
            }
            self.release(dst, work);
            Ok(())
        }

        fn emit_jump_if(
            &mut self,
            op: u8,
            is64: bool,
            dst: u8,
            rhs: Operand,
            target: u32,
            slot: usize,
        ) -> Result<()> {
            let lhs = if dst == 10 {
                self.read_reg(RAX, dst, is64);
                RAX
            } else {
                self.acquire(dst, is64, true)
            };
            let is_set = op == jmp::JSET;
            match rhs {
                Operand::Imm(imm) => {
                    if is_set {
                        self.asm.grp_f7(is64, 0, lhs); // test lhs, imm32
                        self.asm.i32v(imm as i32);
                    } else {
                        self.asm.grp81(is64, 7, lhs, imm as i32); // cmp
                    }
                }
                Operand::Reg(src) => {
                    let rhs_host = if src == 10 {
                        self.asm.movabs_r(RDX, STACK_TOP);
                        RDX
                    } else if let Some(hs) = self.home_of(src) {
                        hs
                    } else {
                        self.load_frame(RDX, src, is64);
                        RDX
                    };
                    if is_set {
                        self.asm.op_rr(&[0x85], is64, rhs_host, lhs); // test
                    } else {
                        self.asm.op_rr(&[0x3B], is64, lhs, rhs_host); // cmp
                    }
                }
            }
            let cc = match op {
                jmp::JEQ => CC_E,
                jmp::JNE | jmp::JSET => CC_NE,
                jmp::JGT => CC_A,
                jmp::JGE => CC_AE,
                jmp::JLT => CC_B,
                jmp::JLE => CC_BE,
                jmp::JSGT => CC_G,
                jmp::JSGE => CC_GE,
                jmp::JSLT => CC_L,
                jmp::JSLE => CC_LE,
                other => {
                    return Err(Error::runtime(slot, format!("codegen: unsupported jump op 0x{other:x}")))
                }
            };
            let pos = self.asm.jcc32(cc);
            self.fixups.push(Fixup::Slot(pos, target));
            Ok(())
        }

        fn emit_op(&mut self, slot: usize, op: &MicroOp) -> Result<()> {
            match *op {
                MicroOp::AluImm { op, is64, dst, imm } => self.emit_alu_imm(op, is64, dst, imm, slot)?,
                MicroOp::AluReg { op, is64, dst, src } => self.emit_alu_reg(op, is64, dst, src, slot)?,
                MicroOp::Neg { is64, dst } => {
                    let work = self.acquire(dst, is64, true);
                    self.asm.grp_f7(is64, 3, work); // neg
                    self.release(dst, work);
                }
                MicroOp::ByteSwap { dst, bits, to_be } => self.emit_byteswap(dst, bits, to_be, slot)?,
                MicroOp::LoadImm64 { dst, imm } => {
                    if let Some(h) = self.home_of(dst) {
                        self.asm.movabs_r(h, imm);
                    } else {
                        self.asm.movabs_r(RAX, imm);
                        self.store_frame(dst, RAX);
                    }
                }
                MicroOp::Load { size, dst, src, off } => {
                    self.addr_to_rcx(src, off);
                    self.emit_load_access(slot, size, dst);
                }
                MicroOp::StoreReg { size, dst, src, off } => {
                    self.addr_to_rcx(dst, off);
                    let value = self.reg_to_host(src);
                    self.emit_store_access(slot, size, value);
                }
                MicroOp::StoreImm { size, dst, off, imm } => {
                    self.addr_to_rcx(dst, off);
                    self.asm.movabs_r(RAX, imm);
                    self.emit_store_access(slot, size, RAX);
                }
                MicroOp::Jump { target } => {
                    let pos = self.asm.jmp32();
                    self.fixups.push(Fixup::Slot(pos, target));
                }
                MicroOp::JumpIf { op, is64, dst, rhs, target } => {
                    self.emit_jump_if(op, is64, dst, rhs, target, slot)?
                }
                MicroOp::Call { idx, id } => self.emit_call(slot, idx, id),
                MicroOp::Exit => {
                    let pos = self.asm.jmp32();
                    self.fixups.push(Fixup::FlushExit(pos));
                }
                MicroOp::Nop => {}
            }
            Ok(())
        }
    }

    /// The register-allocating emitter (the default).
    fn compile_regalloc(
        fused: &FusedProgram,
        facts: &AccessFacts,
        loaded: &LoadedProgram,
    ) -> Result<super::NativeProgram> {
        let ops = fused.expand();
        let plan = plan_registers(&ops, facts);
        let mut e = RegEmitter {
            asm: Asm::default(),
            facts,
            loaded,
            offsets: vec![0usize; ops.len()],
            fixups: Vec::new(),
            home: plan.home,
            homed: plan.homed.clone(),
            caller_homed: plan.caller_homed.clone(),
            elided_checks: 0,
            inlined_helpers: 0,
            lookup_sites: 0,
        };
        // Prologue: push rbx + the callee-saved homes. Entry rsp is at
        // 8 mod 16, so an odd push count re-aligns it for the trampoline
        // call sites; pad when the count comes out even.
        e.asm.b(0x53); // push rbx
        for &h in &plan.callee_used {
            if h >= 8 {
                e.asm.b(0x41);
            }
            e.asm.b(0x50 + (h & 7));
        }
        let pad = plan.has_calls && (1 + plan.callee_used.len()).is_multiple_of(2);
        if pad {
            e.asm.bytes(&[0x48, 0x83, 0xEC, 0x08]); // sub rsp, 8
        }
        e.asm.bytes(&[0x48, 0x89, 0xFB]); // mov rbx, rdi
                                          // Load every home: homes are architecturally current from here on.
        for i in 0..e.homed.len() {
            let (r, h) = e.homed[i];
            e.load_frame(h, r, true);
        }
        for (slot, op) in ops.iter().enumerate() {
            e.offsets[slot] = e.asm.here();
            e.emit_op(slot, op)?;
        }
        // Fell-off-the-end guard (verifier-unreachable), as a recorded
        // fault.
        e.asm.b(0xB8);
        e.asm.i32v(ops.len() as i32 + 1);
        // Fault label: rax holds slot + 1; record it, then fall into the
        // flush (homes are current at every guard-fault site).
        let fault_label = e.asm.here();
        e.asm.bytes(&[0x48, 0x89]);
        e.asm.modrm_mem(RAX, RBX, OFF_FAULT);
        // Exit label: write the register-resident values back.
        let flush_label = e.asm.here();
        e.flush_homes();
        // Raw epilogue — also the trampoline-fault target (those flushed
        // before the call; their caller-saved homes are clobbered and must
        // not be written back).
        let epilogue_label = e.asm.here();
        if pad {
            e.asm.bytes(&[0x48, 0x83, 0xC4, 0x08]); // add rsp, 8
        }
        for &h in plan.callee_used.iter().rev() {
            if h >= 8 {
                e.asm.b(0x41);
            }
            e.asm.b(0x58 + (h & 7));
        }
        e.asm.bytes(&[0x5B, 0xC3]); // pop rbx; ret
        for fixup in std::mem::take(&mut e.fixups) {
            let (pos, target) = match fixup {
                Fixup::Slot(pos, slot) => (pos, e.offsets[slot as usize]),
                Fixup::Epilogue(pos) => (pos, epilogue_label),
                Fixup::Fault(pos) => (pos, fault_label),
                Fixup::FlushExit(pos) => (pos, flush_label),
            };
            let rel = (target as i64 - (pos as i64 + 4)) as i32;
            e.asm.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        let debug = super::NativeDebug {
            regalloc: true,
            assignments: e.homed.iter().map(|&(r, h)| (r, host_reg_name(h))).collect(),
            spills: plan.spills,
            elided_checks: e.elided_checks,
            inlined_helpers: e.inlined_helpers,
            lookup_sites: e.lookup_sites,
        };
        let buf = ExecBuf::new(&e.asm.code)?;
        Ok(super::NativeProgram { buf, debug })
    }

    pub(super) fn compile(
        fused: &FusedProgram,
        facts: &AccessFacts,
        loaded: &LoadedProgram,
        mode: super::NativeMode,
    ) -> Result<super::NativeProgram> {
        match mode {
            super::NativeMode::RegAlloc => compile_regalloc(fused, facts, loaded),
            super::NativeMode::FrameOnly => compile_frame(fused, facts),
        }
    }

    pub(super) fn run(
        native: &super::NativeProgram,
        loaded: &LoadedProgram,
        rc: &mut RunContext<'_>,
        state: &mut RunState,
    ) -> Result<u64> {
        // Per-invocation environment snapshot: when the environment opts
        // in, inline helper fast paths read these frame fields instead of
        // calling back into Rust. Recording environments return `None`,
        // which zeroes `inline_flags` and sends every helper through the
        // trampoline — their observable call sequence is unchanged.
        let snapshot = rc.env.snapshot();
        let sites = native.debug.lookup_sites as usize;
        let site_cache =
            if sites > 0 && snapshot.is_some() { state.lookup_cache(loaded.uid(), sites) as u64 } else { 0 };
        let (inline_flags, inline_ktime, inline_cpu) = match snapshot {
            Some(s) => (1u64, s.ktime_ns, u64::from(s.cpu_id)),
            None => (0, 0, 0),
        };
        let mut frame = NativeFrame {
            regs: state.regs,
            stack_bias: (state.stack.as_mut_ptr() as u64).wrapping_sub(STACK_BASE),
            ctx_bias: (rc.ctx.as_mut_ptr() as u64).wrapping_sub(CTX_BASE),
            ctx_len: rc.ctx.len() as u64,
            pkt_bias: (rc.packet.as_mut_ptr() as u64).wrapping_sub(PKT_BASE),
            pkt_len: rc.packet.len() as u64,
            tramp_ctx: 0,
            fault: 0,
            region_tbl: state.region_bias_ptr() as u64,
            site_cache,
            inline_flags,
            inline_ktime,
            inline_cpu,
            // Tag salt: (cpu + 1) << 32 keeps tags nonzero and disjoint
            // across CPUs; the key occupies the low 32 bits.
            inline_cpu_tag: (inline_cpu + 1) << 32,
        };
        let frame_ptr: *mut NativeFrame = &mut frame;
        let mut tc = TrampCtx {
            frame: frame_ptr,
            state: state as *mut RunState,
            // The lifetime is erased for storage only; the pointer never
            // outlives this call.
            rc: (rc as *mut RunContext<'_>).cast(),
            loaded,
            error: None,
        };
        frame.tramp_ctx = (&mut tc as *mut TrampCtx) as u64;
        // SAFETY: the buffer holds code emitted by `compile` for this
        // program, sealed RX; the entry point has the declared signature.
        // All raw pointers stored above outlive the call, and the generated
        // code only dereferences memory the verifier proved (or the emitted
        // guards / trampolines check) to be inside the frame, stack, ctx or
        // packet buffers.
        unsafe {
            let entry: unsafe extern "C" fn(*mut NativeFrame) =
                std::mem::transmute::<*mut u8, unsafe extern "C" fn(*mut NativeFrame)>(native.buf.ptr);
            entry(frame_ptr);
        }
        state.regs = frame.regs;
        if frame.fault != 0 {
            let insn = (frame.fault - 1) as usize;
            return Err(tc
                .error
                .take()
                .unwrap_or_else(|| Error::runtime(insn, format!("invalid memory access at insn {insn}"))));
        }
        Ok(frame.regs[0])
    }
}

#[cfg(all(test, target_arch = "x86_64", target_os = "linux"))]
mod tests {
    use super::*;
    use crate::helpers::HelperRegistry;
    use crate::insn::{alu, jmp, AccessSize, Insn};
    use crate::program::{load, Program, ProgramType};
    use crate::vm::{NullEnv, RunState, CTX_BASE, STACK_BASE};
    use std::collections::HashMap;

    fn run_native(prog: Program, ctx: &mut [u8], pkt: &mut Vec<u8>) -> Result<u64> {
        let helpers = HelperRegistry::with_base_helpers();
        let loaded = load(prog, &HashMap::new(), &helpers).unwrap();
        let fused = crate::jit::fuse(loaded.jit().unwrap());
        let native = compile(&fused, loaded.access_facts(), &loaded).unwrap().expect("x86-64 backend");
        let mut env = NullEnv;
        let mut rc = crate::vm::RunContext { ctx, packet: pkt, env: &mut env };
        let mut state = RunState::new(rc.ctx.len());
        run(&native, &loaded, &mut rc, &mut state)
    }

    #[test]
    fn native_arithmetic_matches_interpreter() {
        let insns = vec![
            Insn::mov64_imm(0, 5),
            Insn::alu64_imm(alu::MUL, 0, 7),
            Insn::alu64_imm(alu::SUB, 0, 1),
            Insn::mov64_imm(1, 0),
            Insn::alu64_reg(alu::ADD, 0, 1),
            Insn::alu64_imm(alu::RSH, 0, 1),
            Insn::exit(),
        ];
        let prog = Program::new("arith", ProgramType::SocketFilter, insns);
        let mut ctx = vec![0u8; 16];
        let mut pkt = vec![0u8; 0];
        assert_eq!(run_native(prog, &mut ctx, &mut pkt).unwrap(), 17);
    }

    #[test]
    fn native_divide_by_zero_register_semantics() {
        let insns = vec![
            Insn::mov64_imm(0, 100),
            Insn::mov64_imm(1, 0),
            Insn::alu64_reg(alu::DIV, 0, 1),
            Insn::exit(),
        ];
        let prog = Program::new("divzero", ProgramType::SocketFilter, insns);
        let mut ctx = vec![0u8; 16];
        let mut pkt = vec![0u8; 0];
        assert_eq!(run_native(prog, &mut ctx, &mut pkt).unwrap(), 0);
    }

    #[test]
    fn native_stack_roundtrip_and_branch() {
        let insns = vec![
            Insn::mov64_imm(1, 0x1234),
            Insn::store_reg(AccessSize::Double, 10, 1, -8),
            Insn::load(AccessSize::Half, 0, 10, -8),
            Insn::jmp_imm(jmp::JEQ, 0, 0x1234, 1),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        let prog = Program::new("stack", ProgramType::SocketFilter, insns);
        let mut ctx = vec![0u8; 16];
        let mut pkt = vec![0u8; 0];
        assert_eq!(run_native(prog, &mut ctx, &mut pkt).unwrap(), 0x1234);
    }

    #[test]
    fn native_ctx_guard_faults_on_short_context() {
        // Load past the runtime context length: the verifier allows it (the
        // maximum layout is larger) but the emitted guard must fault with
        // the interpreter's error position.
        let insns = vec![Insn::load(AccessSize::Double, 0, 1, 64), Insn::exit()];
        let prog = Program::new("shortctx", ProgramType::SocketFilter, insns);
        let mut ctx = vec![0u8; 16];
        let mut pkt = vec![0u8; 0];
        let err = run_native(prog, &mut ctx, &mut pkt).unwrap_err();
        match err {
            crate::error::Error::Runtime { insn, .. } => assert_eq!(insn, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn native_reads_context_bytes() {
        let insns = vec![Insn::load(AccessSize::Word, 0, 1, 4), Insn::exit()];
        let prog = Program::new("ctxread", ProgramType::SocketFilter, insns);
        let mut ctx = vec![0u8; 16];
        ctx[4..8].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        let mut pkt = vec![0u8; 0];
        assert_eq!(run_native(prog, &mut ctx, &mut pkt).unwrap(), 0xdead_beef);
    }

    #[test]
    fn supported_reports_this_target() {
        assert!(supported());
        let _ = (STACK_BASE, CTX_BASE); // silence unused imports on cfg skew
    }
}
