//! Native x86-64 code generation — the `Native` execution tier.
//!
//! This module lowers a program's fused micro-op stream
//! ([`crate::jit::FusedProgram`]) to x86-64 machine code in an executable
//! page region. The pages are obtained with `mmap(PROT_READ|PROT_WRITE)`,
//! the code is copied in, and the region is sealed with
//! `mprotect(PROT_READ|PROT_EXEC)` before the first execution — W^X
//! throughout, declared against raw libc entry points exactly like the
//! `signal(2)` declaration `srv6d` already ships.
//!
//! ## Execution model
//!
//! The generated function has the C signature `fn(*mut NativeFrame)`. The
//! frame is a flat `repr(C)` block holding the eleven BPF registers plus
//! region *biases*: for each directly-accessible region the emitter knows
//! about (stack, context, packet) the frame stores
//! `host_pointer.wrapping_sub(synthetic_base)`, so the host address of a
//! synthetic address `a` is the two-instruction `bias + a` — no compare
//! chain on the fast path. `rbx` (callee-saved) holds the frame pointer for
//! the whole program; BPF registers live in the frame and are loaded into
//! scratch registers per operation, which keeps the register allocator
//! trivial and the emitted code easy to audit.
//!
//! ## Verifier-derived check elision
//!
//! The verifier exports one [`crate::verifier::AccessFact`] per memory
//! instruction ([`crate::verifier::AccessFacts`]):
//!
//! * **Stack** — the access was proven in-bounds against the (fixed-size)
//!   stack on every path. No runtime check is emitted at all.
//! * **Ctx** — the access is at a statically-known context offset, but the
//!   verifier checks against the maximum context size while the embedder
//!   may pass a shorter context at run time; a single
//!   `cmp ctx_len, end; jb fault` guards the unchecked access.
//! * **Packet** — the offset is dynamic; the emitter inlines the bounds
//!   compare against `pkt_len` (with a carry check for wrap-around) and
//!   falls back to the generic resolver on failure so out-of-range
//!   addresses fault exactly like the interpreter.
//! * **Other** — the access goes through a trampoline back into
//!   [`crate::vm::load_scalar`] / [`crate::vm::store_scalar`], byte-for-byte
//!   the interpreter's path (map values, merged pointer states).
//!
//! Helper calls go through a trampoline that rebuilds a [`HelperApi`] and
//! dispatches through the load-time dense helper table by index — no id
//! lookup at run time. Because helpers may grow or reallocate the packet,
//! the trampoline refreshes the packet bias/length after every call.
//!
//! ## Safety argument
//!
//! Only verifier-accepted programs reach the emitter, and every memory
//! access is either (a) proven in-bounds by the verifier (stack), (b)
//! guarded by an emitted bounds check (ctx, packet), or (c) routed through
//! the same safe Rust resolver the interpreter uses. The verifier also
//! guarantees termination (no back-edges, ≤ [`crate::insn::MAX_INSNS`]
//! instructions), which is why native code does not maintain the
//! instruction budget counter: the budget exists to bound runaway loops the
//! verifier already rejects.
//!
//! On non-x86-64 (or non-Linux) hosts the module compiles to a stub whose
//! [`compile`] returns `Ok(None)`; callers fall back to the fused tier with
//! no `cfg` of their own.
#![allow(unsafe_code)]

use crate::error::Result;
use crate::jit::FusedProgram;
use crate::program::LoadedProgram;
use crate::verifier::AccessFacts;
use crate::vm::{RunContext, RunState};

/// Whether this build can emit and execute native code.
pub const fn supported() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux"))
}

/// A program lowered to executable machine code.
///
/// On unsupported targets the type still exists (so callers need no `cfg`)
/// but can never be constructed: [`compile`] returns `Ok(None)` there.
pub struct NativeProgram {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    buf: x86_64::ExecBuf,
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    _unconstructable: std::convert::Infallible,
}

impl NativeProgram {
    /// Size of the emitted machine code in bytes.
    pub fn code_len(&self) -> usize {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            self.buf.code_len
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            match self._unconstructable {}
        }
    }
}

impl std::fmt::Debug for NativeProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeProgram").field("code_len", &self.code_len()).finish()
    }
}

/// Compiles a fused program to native code. Returns `Ok(None)` when the
/// target has no native backend; callers then run the fused tier.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub fn compile(
    fused: &FusedProgram,
    facts: &AccessFacts,
    loaded: &LoadedProgram,
) -> Result<Option<NativeProgram>> {
    x86_64::compile(fused, facts, loaded).map(Some)
}

/// Compiles a fused program to native code. Returns `Ok(None)` when the
/// target has no native backend; callers then run the fused tier.
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub fn compile(
    _fused: &FusedProgram,
    _facts: &AccessFacts,
    _loaded: &LoadedProgram,
) -> Result<Option<NativeProgram>> {
    Ok(None)
}

/// Executes a native program against a caller-owned state (not reset here;
/// [`crate::vm::run_program_with_state`] resets it first, like the other
/// tiers).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub fn run(
    native: &NativeProgram,
    loaded: &LoadedProgram,
    rc: &mut RunContext<'_>,
    state: &mut RunState,
) -> Result<u64> {
    x86_64::run(native, loaded, rc, state)
}

/// Executes a native program. Unreachable on targets without a backend —
/// [`compile`] never produces a [`NativeProgram`] there.
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub fn run(
    native: &NativeProgram,
    _loaded: &LoadedProgram,
    _rc: &mut RunContext<'_>,
    _state: &mut RunState,
) -> Result<u64> {
    match native._unconstructable {}
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod x86_64 {
    use crate::error::{Error, Result};
    use crate::insn::{alu, jmp, AccessSize, NUM_REGS};
    use crate::jit::{FusedProgram, MicroOp, Operand};
    use crate::program::LoadedProgram;
    use crate::verifier::{AccessFact, AccessFacts};
    use crate::vm::{HelperApi, RunContext, RunState, CTX_BASE, PKT_BASE, STACK_BASE};
    use core::ffi::c_void;

    // -----------------------------------------------------------------
    // Executable memory
    // -----------------------------------------------------------------

    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const PROT_EXEC: i32 = 4;
    const MAP_PRIVATE: i32 = 2;
    const MAP_ANONYMOUS: i32 = 0x20;

    // Raw libc entry points, declared the same way srv6d declares
    // `signal(2)` — no libc crate in the workspace.
    extern "C" {
        fn mmap(addr: *mut c_void, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut c_void;
        fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An `mmap`ed region sealed read+execute after the code is copied in.
    pub(super) struct ExecBuf {
        ptr: *mut u8,
        len: usize,
        pub(super) code_len: usize,
    }

    // The region is immutable (RX) after construction; sharing raw code
    // pages between threads is safe.
    unsafe impl Send for ExecBuf {}
    unsafe impl Sync for ExecBuf {}

    impl ExecBuf {
        fn new(code: &[u8]) -> Result<ExecBuf> {
            let len = code.len().max(1);
            unsafe {
                let ptr = mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    -1,
                    0,
                );
                if ptr.is_null() || ptr as isize == -1 {
                    return Err(Error::runtime(0, "mmap of code region failed"));
                }
                std::ptr::copy_nonoverlapping(code.as_ptr(), ptr as *mut u8, code.len());
                if mprotect(ptr, len, PROT_READ | PROT_EXEC) != 0 {
                    munmap(ptr, len);
                    return Err(Error::runtime(0, "mprotect(PROT_EXEC) on code region failed"));
                }
                Ok(ExecBuf { ptr: ptr as *mut u8, len, code_len: code.len() })
            }
        }
    }

    impl Drop for ExecBuf {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }

    // -----------------------------------------------------------------
    // The native frame and trampolines
    // -----------------------------------------------------------------

    /// The flat machine-visible state block; `rbx` points here for the
    /// whole program. `bias` fields hold `host_ptr - synthetic_base`
    /// (wrapping), so `bias + synthetic_addr` is the host address.
    #[repr(C)]
    struct NativeFrame {
        regs: [u64; NUM_REGS], // offsets 0..88
        stack_bias: u64,       // 88
        ctx_bias: u64,         // 96
        ctx_len: u64,          // 104
        pkt_bias: u64,         // 112
        pkt_len: u64,          // 120
        tramp_ctx: u64,        // 128
        fault: u64,            // 136: 0 = ok, otherwise faulting slot + 1
    }

    const OFF_STACK_BIAS: i32 = 8 * NUM_REGS as i32;
    const OFF_CTX_BIAS: i32 = OFF_STACK_BIAS + 8;
    const OFF_CTX_LEN: i32 = OFF_STACK_BIAS + 16;
    const OFF_PKT_BIAS: i32 = OFF_STACK_BIAS + 24;
    const OFF_PKT_LEN: i32 = OFF_STACK_BIAS + 32;
    const OFF_TRAMP: i32 = OFF_STACK_BIAS + 40;
    const OFF_FAULT: i32 = OFF_STACK_BIAS + 48;

    /// Everything the slow-path trampolines need to re-enter safe Rust.
    /// Lives on `run`'s stack for the duration of one invocation; the
    /// generated code only ever passes its address back to the trampolines
    /// below.
    struct TrampCtx {
        frame: *mut NativeFrame,
        state: *mut RunState,
        rc: *mut RunContext<'static>,
        loaded: *const LoadedProgram,
        error: Option<Error>,
    }

    fn decode_size(size: u32) -> AccessSize {
        match size {
            1 => AccessSize::Byte,
            2 => AccessSize::Half,
            4 => AccessSize::Word,
            _ => AccessSize::Double,
        }
    }

    fn at_slot(err: Error, slot: u32) -> Error {
        match err {
            Error::Runtime { message, .. } => Error::Runtime { insn: slot as usize, message },
            other => other,
        }
    }

    /// Generic load slow path: exact interpreter semantics via
    /// [`crate::vm::load_scalar`]. On error, records the faulting slot in
    /// the frame so the generated code exits, and parks the error for
    /// [`run`] to return.
    unsafe extern "C" fn tramp_load(tc: *mut TrampCtx, addr: u64, size: u32, slot: u32) -> u64 {
        let tc = &mut *tc;
        match crate::vm::load_scalar(&*tc.state, &*tc.rc, addr, decode_size(size)) {
            Ok(value) => value,
            Err(err) => {
                (*tc.frame).fault = u64::from(slot) + 1;
                tc.error = Some(at_slot(err, slot));
                0
            }
        }
    }

    /// Generic store slow path, mirroring [`tramp_load`].
    unsafe extern "C" fn tramp_store(tc: *mut TrampCtx, addr: u64, value: u64, size: u32, slot: u32) {
        let tc = &mut *tc;
        if let Err(err) = crate::vm::store_scalar(&mut *tc.state, &mut *tc.rc, addr, decode_size(size), value)
        {
            (*tc.frame).fault = u64::from(slot) + 1;
            tc.error = Some(at_slot(err, slot));
        }
    }

    /// Helper-call trampoline: args come from the frame registers, the
    /// helper runs with the same [`HelperApi`] every other tier uses, and
    /// the packet bias/length are refreshed afterwards (helpers may grow or
    /// reallocate the packet).
    unsafe extern "C" fn tramp_helper(tc: *mut TrampCtx, idx: u32) -> i64 {
        let tc = &mut *tc;
        let frame = &mut *tc.frame;
        let state = &mut *tc.state;
        let rc = &mut *tc.rc;
        let loaded = &*tc.loaded;
        // Keep the RunState registers coherent around the call so a helper
        // that inspects them sees exactly what the interpreter would show.
        state.regs = frame.regs;
        let args = [frame.regs[1], frame.regs[2], frame.regs[3], frame.regs[4], frame.regs[5]];
        let func = loaded.helper_table()[idx as usize].func;
        let ret = {
            let mut api = HelperApi { state, rc, maps: &loaded.maps };
            func(&mut api, args)
        };
        frame.regs = state.regs;
        frame.pkt_bias = (rc.packet.as_mut_ptr() as u64).wrapping_sub(PKT_BASE);
        frame.pkt_len = rc.packet.len() as u64;
        ret
    }

    // -----------------------------------------------------------------
    // The assembler
    // -----------------------------------------------------------------

    const RAX: u8 = 0;
    const RCX: u8 = 1;
    const RDX: u8 = 2;
    const RBX: u8 = 3;
    const RSI: u8 = 6;
    const RDI: u8 = 7;

    // x86 condition codes (the low nibble of Jcc).
    const CC_B: u8 = 0x2;
    const CC_AE: u8 = 0x3;
    const CC_E: u8 = 0x4;
    const CC_NE: u8 = 0x5;
    const CC_BE: u8 = 0x6;
    const CC_A: u8 = 0x7;
    const CC_L: u8 = 0xc;
    const CC_GE: u8 = 0xd;
    const CC_LE: u8 = 0xe;
    const CC_G: u8 = 0xf;

    #[derive(Default)]
    struct Asm {
        code: Vec<u8>,
    }

    impl Asm {
        fn b(&mut self, byte: u8) {
            self.code.push(byte);
        }
        fn bytes(&mut self, bytes: &[u8]) {
            self.code.extend_from_slice(bytes);
        }
        fn i32v(&mut self, value: i32) {
            self.bytes(&value.to_le_bytes());
        }
        fn u64v(&mut self, value: u64) {
            self.bytes(&value.to_le_bytes());
        }
        fn here(&self) -> usize {
            self.code.len()
        }
        /// ModRM (+ optional disp) for `[base + disp]`. `base` must not be
        /// rsp/rbp (the encodings alias SIB/RIP) — the emitter only uses
        /// rbx, rdx and rsi bases.
        fn modrm_mem(&mut self, reg: u8, base: u8, disp: i32) {
            debug_assert!(base != 4 && base != 5);
            if disp == 0 {
                self.b((reg << 3) | base);
            } else if (-128..=127).contains(&disp) {
                self.b(0x40 | (reg << 3) | base);
                self.b(disp as i8 as u8);
            } else {
                self.b(0x80 | (reg << 3) | base);
                self.i32v(disp);
            }
        }
        /// ModRM+SIB for `[base + index]` (scale 1, no displacement).
        fn modrm_sib(&mut self, reg: u8, base: u8, index: u8) {
            debug_assert!(base != 5 && index != 4);
            self.b((reg << 3) | 0b100);
            self.b((index << 3) | base);
        }
    }

    /// One pending rel32 fixup.
    enum Fixup {
        /// Branch to a micro-op slot.
        Slot(usize, u32),
        /// Branch to the shared epilogue (normal exit or already-recorded
        /// fault).
        Epilogue(usize),
        /// Branch to the fault label (`rax` holds slot + 1).
        Fault(usize),
    }

    struct Emitter<'a> {
        asm: Asm,
        facts: &'a AccessFacts,
        offsets: Vec<usize>,
        fixups: Vec<Fixup>,
    }

    impl<'a> Emitter<'a> {
        // --- frame register traffic -----------------------------------

        /// `mov reg, qword [rbx + 8*bpf_reg]`
        fn load_frame64(&mut self, reg: u8, bpf_reg: u8) {
            self.asm.bytes(&[0x48, 0x8B]);
            self.asm.modrm_mem(reg, RBX, 8 * i32::from(bpf_reg));
        }
        /// `mov reg32, dword [rbx + 8*bpf_reg]` (zero-extends).
        fn load_frame32(&mut self, reg: u8, bpf_reg: u8) {
            self.asm.b(0x8B);
            self.asm.modrm_mem(reg, RBX, 8 * i32::from(bpf_reg));
        }
        fn load_frame(&mut self, reg: u8, bpf_reg: u8, is64: bool) {
            if is64 {
                self.load_frame64(reg, bpf_reg);
            } else {
                self.load_frame32(reg, bpf_reg);
            }
        }
        /// `mov qword [rbx + 8*bpf_reg], reg`
        fn store_frame(&mut self, bpf_reg: u8, reg: u8) {
            self.asm.bytes(&[0x48, 0x89]);
            self.asm.modrm_mem(reg, RBX, 8 * i32::from(bpf_reg));
        }
        /// `mov reg, qword [rbx + disp]` for the frame scalar fields.
        fn load_field(&mut self, reg: u8, disp: i32) {
            self.asm.bytes(&[0x48, 0x8B]);
            self.asm.modrm_mem(reg, RBX, disp);
        }
        /// `movabs reg, imm64`
        fn movabs(&mut self, reg: u8, imm: u64) {
            self.asm.b(0x48);
            self.asm.b(0xB8 + reg);
            self.asm.u64v(imm);
        }

        // --- control flow ---------------------------------------------

        /// Long `jcc rel32` with the target patched later.
        fn jcc32(&mut self, cc: u8) -> usize {
            self.asm.b(0x0F);
            self.asm.b(0x80 | cc);
            let pos = self.asm.here();
            self.asm.i32v(0);
            pos
        }
        /// Long `jmp rel32` with the target patched later.
        fn jmp32(&mut self) -> usize {
            self.asm.b(0xE9);
            let pos = self.asm.here();
            self.asm.i32v(0);
            pos
        }
        /// Resolves a local forward rel32 to the current position.
        fn bind(&mut self, pos: usize) {
            let rel = (self.asm.here() as i64 - (pos as i64 + 4)) as i32;
            self.asm.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        /// Short `jcc rel8` with the target patched later.
        fn jcc8(&mut self, cc: u8) -> usize {
            self.asm.b(0x70 | cc);
            let pos = self.asm.here();
            self.asm.b(0);
            pos
        }
        /// Short `jmp rel8` with the target patched later.
        fn jmp8(&mut self) -> usize {
            self.asm.b(0xEB);
            let pos = self.asm.here();
            self.asm.b(0);
            pos
        }
        fn bind8(&mut self, pos: usize) {
            let rel = self.asm.here() as i64 - (pos as i64 + 1);
            debug_assert!((-128..=127).contains(&rel));
            self.asm.code[pos] = rel as i8 as u8;
        }
        /// `jcc fault` taking the branch when `cc` holds: emitted as the
        /// inverted short jump over a `mov eax, slot+1; jmp fault` pair.
        fn fault_if(&mut self, cc: u8, slot: usize) {
            self.asm.b(0x70 | (cc ^ 1));
            self.asm.b(10);
            self.asm.b(0xB8);
            self.asm.i32v(slot as i32 + 1);
            self.asm.b(0xE9);
            let pos = self.asm.here();
            self.asm.i32v(0);
            self.fixups.push(Fixup::Fault(pos));
        }

        // --- memory access helpers ------------------------------------

        /// Width-correct load from `[base + rcx]` into `rax` (zero-extending).
        fn load_mem_rax(&mut self, size: AccessSize, base: u8) {
            match size {
                AccessSize::Byte => {
                    self.asm.bytes(&[0x0F, 0xB6]);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Half => {
                    self.asm.bytes(&[0x0F, 0xB7]);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Word => {
                    self.asm.b(0x8B);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Double => {
                    self.asm.bytes(&[0x48, 0x8B]);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
            }
        }
        /// Width-correct store of `rax`'s low bytes to `[base + rcx]`.
        fn store_mem_rax(&mut self, size: AccessSize, base: u8) {
            match size {
                AccessSize::Byte => {
                    self.asm.b(0x88);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Half => {
                    self.asm.bytes(&[0x66, 0x89]);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Word => {
                    self.asm.b(0x89);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
                AccessSize::Double => {
                    self.asm.bytes(&[0x48, 0x89]);
                    self.asm.modrm_sib(RAX, base, RCX);
                }
            }
        }
        /// Computes the synthetic address `regs[base] + off` into `rcx`.
        fn addr_to_rcx(&mut self, base: u8, off: i16) {
            self.load_frame64(RCX, base);
            if off != 0 {
                // add rcx, imm32 (sign-extended, matching wrapping_add of
                // the sign-extended 16-bit displacement)
                self.asm.bytes(&[0x48, 0x81, 0xC1]);
                self.asm.i32v(i32::from(off));
            }
        }
        /// Emits the region dispatch for a load at `slot`; leaves the value
        /// in `rax`. `rcx` must hold the synthetic address.
        fn emit_load_access(&mut self, slot: usize, size: AccessSize) {
            match self.facts.get(slot) {
                AccessFact::Stack => {
                    self.load_field(RDX, OFF_STACK_BIAS);
                    self.load_mem_rax(size, RDX);
                }
                AccessFact::Ctx { end } => {
                    self.emit_ctx_guard(slot, end);
                    self.load_field(RDX, OFF_CTX_BIAS);
                    self.load_mem_rax(size, RDX);
                }
                AccessFact::Packet => {
                    // off = addr - PKT_BASE; end = off + len; fault to the
                    // generic resolver on carry or end > pkt_len so
                    // out-of-range addresses (including ones pointing at
                    // other regions) behave exactly like the interpreter.
                    self.movabs(RSI, PKT_BASE);
                    self.asm.bytes(&[0x48, 0x8B, 0xD1]); // mov rdx, rcx
                    self.asm.bytes(&[0x48, 0x2B, 0xD6]); // sub rdx, rsi
                    self.asm.bytes(&[0x48, 0x8B, 0xF2]); // mov rsi, rdx
                    self.asm.bytes(&[0x48, 0x83, 0xC6, size.bytes() as u8]); // add rsi, len
                    let slow_carry = self.jcc32(CC_B);
                    self.asm.bytes(&[0x48, 0x3B]); // cmp rsi, [rbx+pkt_len]
                    self.asm.modrm_mem(RSI, RBX, OFF_PKT_LEN);
                    let slow_len = self.jcc32(CC_A);
                    self.load_field(RSI, OFF_PKT_BIAS);
                    self.load_mem_rax(size, RSI);
                    let done = self.jmp32();
                    self.bind(slow_carry);
                    self.bind(slow_len);
                    self.emit_tramp_load(slot, size);
                    self.bind(done);
                }
                AccessFact::Other => self.emit_tramp_load(slot, size),
            }
        }
        /// Emits the region dispatch for a store at `slot`. `rcx` must hold
        /// the synthetic address and `rax` the value.
        fn emit_store_access(&mut self, slot: usize, size: AccessSize) {
            match self.facts.get(slot) {
                AccessFact::Stack => {
                    self.load_field(RDX, OFF_STACK_BIAS);
                    self.store_mem_rax(size, RDX);
                }
                AccessFact::Ctx { end } => {
                    self.emit_ctx_guard(slot, end);
                    self.load_field(RDX, OFF_CTX_BIAS);
                    self.store_mem_rax(size, RDX);
                }
                // Stores never carry a Packet fact (the verifier rejects
                // direct packet writes); anything else resolves generically.
                AccessFact::Packet | AccessFact::Other => self.emit_tramp_store(slot, size),
            }
        }
        /// `cmp qword [rbx+ctx_len], end; jb fault` — the only runtime cost
        /// of a verifier-proven context access (the embedder's context may
        /// be shorter than the verifier's maximum layout).
        fn emit_ctx_guard(&mut self, slot: usize, end: u16) {
            self.asm.bytes(&[0x48, 0x81]);
            self.asm.modrm_mem(7, RBX, OFF_CTX_LEN); // cmp /7
            self.asm.i32v(i32::from(end));
            self.fault_if(CC_B, slot);
        }
        /// Calls [`tramp_load`]; the result lands in `rax`. A recorded
        /// fault aborts to the epilogue (the trampoline already stored the
        /// slot).
        fn emit_tramp_load(&mut self, slot: usize, size: AccessSize) {
            self.load_field(RDI, OFF_TRAMP);
            self.asm.bytes(&[0x48, 0x8B, 0xF1]); // mov rsi, rcx (addr)
            self.asm.b(0xBA); // mov edx, size
            self.asm.i32v(size.bytes() as i32);
            self.asm.b(0xB9); // mov ecx, slot
            self.asm.i32v(slot as i32);
            let f: unsafe extern "C" fn(*mut TrampCtx, u64, u32, u32) -> u64 = tramp_load;
            self.movabs(RAX, f as usize as u64);
            self.asm.bytes(&[0xFF, 0xD0]); // call rax
            self.emit_fault_check();
        }
        /// Calls [`tramp_store`] with the value currently in `rax`.
        fn emit_tramp_store(&mut self, slot: usize, size: AccessSize) {
            self.load_field(RDI, OFF_TRAMP);
            self.asm.bytes(&[0x48, 0x8B, 0xF1]); // mov rsi, rcx (addr)
            self.asm.bytes(&[0x48, 0x8B, 0xD0]); // mov rdx, rax (value)
            self.asm.b(0xB9); // mov ecx, size
            self.asm.i32v(size.bytes() as i32);
            self.asm.bytes(&[0x41, 0xB8]); // mov r8d, slot
            self.asm.i32v(slot as i32);
            let f: unsafe extern "C" fn(*mut TrampCtx, u64, u64, u32, u32) = tramp_store;
            self.movabs(RAX, f as usize as u64);
            self.asm.bytes(&[0xFF, 0xD0]); // call rax
            self.emit_fault_check();
        }
        /// `cmp qword [rbx+fault], 0; jne epilogue` after a trampoline that
        /// may have recorded a fault.
        fn emit_fault_check(&mut self) {
            self.asm.bytes(&[0x48, 0x83]);
            self.asm.modrm_mem(7, RBX, OFF_FAULT); // cmp /7, imm8
            self.asm.b(0);
            let pos = self.jcc32(CC_NE);
            self.fixups.push(Fixup::Epilogue(pos));
        }

        // --- operations -----------------------------------------------

        fn emit_alu_imm(&mut self, op: u8, is64: bool, dst: u8, imm: u64, slot: usize) -> Result<()> {
            if op == alu::MOV {
                if is64 {
                    // mov qword [rbx+8*dst], imm32 (sign-extended — BPF
                    // immediates are sign-extended 32-bit values)
                    self.asm.bytes(&[0x48, 0xC7]);
                    self.asm.modrm_mem(0, RBX, 8 * i32::from(dst));
                    self.asm.i32v(imm as i32);
                } else {
                    self.asm.b(0xB8); // mov eax, imm32 (zero-extends)
                    self.asm.i32v(imm as u32 as i32);
                    self.store_frame(dst, RAX);
                }
                return Ok(());
            }
            self.load_frame(RAX, dst, is64);
            match op {
                alu::ADD | alu::OR | alu::AND | alu::SUB | alu::XOR => {
                    let ext = match op {
                        alu::ADD => 0,
                        alu::OR => 1,
                        alu::AND => 4,
                        alu::SUB => 5,
                        _ => 6, // XOR
                    };
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.b(0x81);
                    self.asm.b(0xC0 | (ext << 3));
                    self.asm.i32v(imm as i32);
                }
                alu::MUL => {
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.bytes(&[0x69, 0xC0]); // imul rax, rax, imm32
                    self.asm.i32v(imm as i32);
                }
                alu::DIV | alu::MOD => {
                    // The verifier rejects DIV/MOD by immediate zero, so no
                    // guard is needed here.
                    if is64 {
                        self.asm.bytes(&[0x48, 0xC7, 0xC1]); // mov rcx, imm32 (sext)
                        self.asm.i32v(imm as i32);
                    } else {
                        self.asm.b(0xB9); // mov ecx, imm32
                        self.asm.i32v(imm as u32 as i32);
                    }
                    self.emit_divmod(op, is64, false);
                }
                alu::LSH | alu::RSH | alu::ARSH => {
                    let ext = match op {
                        alu::LSH => 4,
                        alu::RSH => 5,
                        _ => 7, // ARSH
                    };
                    let amount = (imm as u32) & if is64 { 63 } else { 31 };
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.b(0xC1);
                    self.asm.b(0xC0 | (ext << 3));
                    self.asm.b(amount as u8);
                }
                other => {
                    return Err(Error::runtime(slot, format!("codegen: unsupported ALU op 0x{other:x}")))
                }
            }
            self.store_frame(dst, RAX);
            Ok(())
        }

        fn emit_alu_reg(&mut self, op: u8, is64: bool, dst: u8, src: u8, slot: usize) -> Result<()> {
            if op == alu::MOV {
                self.load_frame(RAX, src, is64);
                self.store_frame(dst, RAX);
                return Ok(());
            }
            self.load_frame(RCX, src, is64);
            self.load_frame(RAX, dst, is64);
            match op {
                alu::ADD | alu::OR | alu::AND | alu::SUB | alu::XOR => {
                    // op rax, rcx via the /r "load" forms: add=03 or=0B
                    // and=23 sub=2B xor=33
                    let opcode = match op {
                        alu::ADD => 0x03,
                        alu::OR => 0x0B,
                        alu::AND => 0x23,
                        alu::SUB => 0x2B,
                        _ => 0x33, // XOR
                    };
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.b(opcode);
                    self.asm.b(0xC1);
                }
                alu::MUL => {
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.bytes(&[0x0F, 0xAF, 0xC1]); // imul rax, rcx
                }
                alu::DIV | alu::MOD => self.emit_divmod(op, is64, true),
                alu::LSH | alu::RSH | alu::ARSH => {
                    // The shift count sits in cl; the hardware masks it by
                    // 63/31, exactly matching wrapping_shl/shr semantics.
                    let ext = match op {
                        alu::LSH => 4,
                        alu::RSH => 5,
                        _ => 7, // ARSH
                    };
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.b(0xD3);
                    self.asm.b(0xC0 | (ext << 3));
                }
                other => {
                    return Err(Error::runtime(slot, format!("codegen: unsupported ALU op 0x{other:x}")))
                }
            }
            self.store_frame(dst, RAX);
            Ok(())
        }

        /// Unsigned divide/remainder of `rax` by `rcx`, with the BPF
        /// division-by-zero semantics (quotient 0, remainder unchanged)
        /// when `guard_zero` is set. The 32-bit dividend was loaded
        /// zero-extending, so the remainder-unchanged path is already
        /// width-correct.
        fn emit_divmod(&mut self, op: u8, is64: bool, guard_zero: bool) {
            let mut zero_jump = None;
            if guard_zero {
                if is64 {
                    self.asm.bytes(&[0x48, 0x85, 0xC9]); // test rcx, rcx
                } else {
                    self.asm.bytes(&[0x85, 0xC9]); // test ecx, ecx
                }
                zero_jump = Some(self.jcc8(CC_E));
            }
            self.asm.bytes(&[0x33, 0xD2]); // xor edx, edx
            if is64 {
                self.asm.bytes(&[0x48, 0xF7, 0xF1]); // div rcx
            } else {
                self.asm.bytes(&[0xF7, 0xF1]); // div ecx
            }
            if op == alu::MOD {
                if is64 {
                    self.asm.bytes(&[0x48, 0x8B, 0xC2]); // mov rax, rdx
                } else {
                    self.asm.bytes(&[0x8B, 0xC2]); // mov eax, edx
                }
            }
            if let Some(pos) = zero_jump {
                let done = self.jmp8();
                self.bind8(pos);
                if op == alu::DIV {
                    self.asm.bytes(&[0x33, 0xC0]); // xor eax, eax
                }
                self.bind8(done);
            }
        }

        fn emit_byteswap(&mut self, dst: u8, bits: u8, to_be: bool, slot: usize) -> Result<()> {
            match (bits, to_be) {
                (16, true) => {
                    self.load_frame64(RAX, dst);
                    self.asm.bytes(&[0x66, 0xC1, 0xC8, 0x08]); // ror ax, 8
                    self.asm.bytes(&[0x0F, 0xB7, 0xC0]); // movzx eax, ax
                }
                (16, false) => {
                    self.load_frame64(RAX, dst);
                    self.asm.bytes(&[0x0F, 0xB7, 0xC0]); // movzx eax, ax
                }
                (32, true) => {
                    self.load_frame32(RAX, dst);
                    self.asm.bytes(&[0x0F, 0xC8]); // bswap eax
                }
                (32, false) => {
                    self.load_frame32(RAX, dst); // zero-extends = truncate
                }
                (64, true) => {
                    self.load_frame64(RAX, dst);
                    self.asm.bytes(&[0x48, 0x0F, 0xC8]); // bswap rax
                }
                (64, false) => return Ok(()), // identity
                _ => return Err(Error::runtime(slot, format!("codegen: unsupported swap width {bits}"))),
            }
            self.store_frame(dst, RAX);
            Ok(())
        }

        fn emit_jump_if(
            &mut self,
            op: u8,
            is64: bool,
            dst: u8,
            rhs: Operand,
            target: u32,
            slot: usize,
        ) -> Result<()> {
            self.load_frame(RAX, dst, is64);
            let is_set = op == jmp::JSET;
            match rhs {
                Operand::Imm(imm) => {
                    if is64 {
                        self.asm.b(0x48);
                    }
                    if is_set {
                        self.asm.bytes(&[0xF7, 0xC0]); // test rax, imm32 (sext)
                    } else {
                        self.asm.bytes(&[0x81, 0xF8]); // cmp rax, imm32 (sext)
                    }
                    self.asm.i32v(imm as i32);
                }
                Operand::Reg(src) => {
                    self.load_frame(RCX, src, is64);
                    if is64 {
                        self.asm.b(0x48);
                    }
                    if is_set {
                        self.asm.bytes(&[0x85, 0xC8]); // test rax, rcx
                    } else {
                        self.asm.bytes(&[0x3B, 0xC1]); // cmp rax, rcx
                    }
                }
            }
            let cc = match op {
                jmp::JEQ => CC_E,
                jmp::JNE | jmp::JSET => CC_NE,
                jmp::JGT => CC_A,
                jmp::JGE => CC_AE,
                jmp::JLT => CC_B,
                jmp::JLE => CC_BE,
                jmp::JSGT => CC_G,
                jmp::JSGE => CC_GE,
                jmp::JSLT => CC_L,
                jmp::JSLE => CC_LE,
                other => {
                    return Err(Error::runtime(slot, format!("codegen: unsupported jump op 0x{other:x}")))
                }
            };
            let pos = self.jcc32(cc);
            self.fixups.push(Fixup::Slot(pos, target));
            Ok(())
        }

        fn emit_op(&mut self, slot: usize, op: &MicroOp) -> Result<()> {
            match *op {
                MicroOp::AluImm { op, is64, dst, imm } => self.emit_alu_imm(op, is64, dst, imm, slot)?,
                MicroOp::AluReg { op, is64, dst, src } => self.emit_alu_reg(op, is64, dst, src, slot)?,
                MicroOp::Neg { is64, dst } => {
                    self.load_frame(RAX, dst, is64);
                    if is64 {
                        self.asm.b(0x48);
                    }
                    self.asm.bytes(&[0xF7, 0xD8]); // neg rax / neg eax
                    self.store_frame(dst, RAX);
                }
                MicroOp::ByteSwap { dst, bits, to_be } => self.emit_byteswap(dst, bits, to_be, slot)?,
                MicroOp::LoadImm64 { dst, imm } => {
                    self.movabs(RAX, imm);
                    self.store_frame(dst, RAX);
                }
                MicroOp::Load { size, dst, src, off } => {
                    self.addr_to_rcx(src, off);
                    self.emit_load_access(slot, size);
                    self.store_frame(dst, RAX);
                }
                MicroOp::StoreReg { size, dst, src, off } => {
                    self.addr_to_rcx(dst, off);
                    self.load_frame64(RAX, src);
                    self.emit_store_access(slot, size);
                }
                MicroOp::StoreImm { size, dst, off, imm } => {
                    self.addr_to_rcx(dst, off);
                    self.movabs(RAX, imm);
                    self.emit_store_access(slot, size);
                }
                MicroOp::Jump { target } => {
                    let pos = self.jmp32();
                    self.fixups.push(Fixup::Slot(pos, target));
                }
                MicroOp::JumpIf { op, is64, dst, rhs, target } => {
                    self.emit_jump_if(op, is64, dst, rhs, target, slot)?
                }
                MicroOp::Call { idx, id: _ } => {
                    self.load_field(RDI, OFF_TRAMP);
                    self.asm.b(0xBE); // mov esi, idx
                    self.asm.i32v(idx as i32);
                    let f: unsafe extern "C" fn(*mut TrampCtx, u32) -> i64 = tramp_helper;
                    self.movabs(RAX, f as usize as u64);
                    self.asm.bytes(&[0xFF, 0xD0]); // call rax
                    self.store_frame(0, RAX); // r0 = return value
                }
                MicroOp::Exit => {
                    let pos = self.jmp32();
                    self.fixups.push(Fixup::Epilogue(pos));
                }
                MicroOp::Nop => {}
            }
            Ok(())
        }
    }

    pub(super) fn compile(
        fused: &FusedProgram,
        facts: &AccessFacts,
        _loaded: &LoadedProgram,
    ) -> Result<super::NativeProgram> {
        let ops = fused.expand();
        let mut e =
            Emitter { asm: Asm::default(), facts, offsets: vec![0usize; ops.len()], fixups: Vec::new() };
        // Prologue: push rbx; mov rbx, rdi. The push realigns rsp to a
        // 16-byte boundary, so every `call rax` below lands in the
        // trampolines with standard ABI alignment.
        e.asm.bytes(&[0x53, 0x48, 0x89, 0xFB]);
        for (slot, op) in ops.iter().enumerate() {
            e.offsets[slot] = e.asm.here();
            e.emit_op(slot, op)?;
        }
        // Fell-off-the-end guard: the verifier proves this unreachable, but
        // make it a recorded fault rather than a stray jump if it ever runs.
        e.asm.b(0xB8);
        e.asm.i32v(ops.len() as i32 + 1);
        // Fault label: rax holds slot + 1; store it and fall into the
        // epilogue.
        let fault_label = e.asm.here();
        e.asm.bytes(&[0x48, 0x89]);
        e.asm.modrm_mem(RAX, RBX, OFF_FAULT);
        // Epilogue: pop rbx; ret.
        let epilogue_label = e.asm.here();
        e.asm.bytes(&[0x5B, 0xC3]);
        for fixup in std::mem::take(&mut e.fixups) {
            let (pos, target) = match fixup {
                Fixup::Slot(pos, slot) => (pos, e.offsets[slot as usize]),
                Fixup::Epilogue(pos) => (pos, epilogue_label),
                Fixup::Fault(pos) => (pos, fault_label),
            };
            let rel = (target as i64 - (pos as i64 + 4)) as i32;
            e.asm.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        let buf = ExecBuf::new(&e.asm.code)?;
        Ok(super::NativeProgram { buf })
    }

    pub(super) fn run(
        native: &super::NativeProgram,
        loaded: &LoadedProgram,
        rc: &mut RunContext<'_>,
        state: &mut RunState,
    ) -> Result<u64> {
        let mut frame = NativeFrame {
            regs: state.regs,
            stack_bias: (state.stack.as_mut_ptr() as u64).wrapping_sub(STACK_BASE),
            ctx_bias: (rc.ctx.as_mut_ptr() as u64).wrapping_sub(CTX_BASE),
            ctx_len: rc.ctx.len() as u64,
            pkt_bias: (rc.packet.as_mut_ptr() as u64).wrapping_sub(PKT_BASE),
            pkt_len: rc.packet.len() as u64,
            tramp_ctx: 0,
            fault: 0,
        };
        let frame_ptr: *mut NativeFrame = &mut frame;
        let mut tc = TrampCtx {
            frame: frame_ptr,
            state: state as *mut RunState,
            // The lifetime is erased for storage only; the pointer never
            // outlives this call.
            rc: (rc as *mut RunContext<'_>).cast(),
            loaded,
            error: None,
        };
        frame.tramp_ctx = (&mut tc as *mut TrampCtx) as u64;
        // SAFETY: the buffer holds code emitted by `compile` for this
        // program, sealed RX; the entry point has the declared signature.
        // All raw pointers stored above outlive the call, and the generated
        // code only dereferences memory the verifier proved (or the emitted
        // guards / trampolines check) to be inside the frame, stack, ctx or
        // packet buffers.
        unsafe {
            let entry: unsafe extern "C" fn(*mut NativeFrame) =
                std::mem::transmute::<*mut u8, unsafe extern "C" fn(*mut NativeFrame)>(native.buf.ptr);
            entry(frame_ptr);
        }
        state.regs = frame.regs;
        if frame.fault != 0 {
            let insn = (frame.fault - 1) as usize;
            return Err(tc
                .error
                .take()
                .unwrap_or_else(|| Error::runtime(insn, format!("invalid memory access at insn {insn}"))));
        }
        Ok(frame.regs[0])
    }
}

#[cfg(all(test, target_arch = "x86_64", target_os = "linux"))]
mod tests {
    use super::*;
    use crate::helpers::HelperRegistry;
    use crate::insn::{alu, jmp, AccessSize, Insn};
    use crate::program::{load, Program, ProgramType};
    use crate::vm::{NullEnv, RunState, CTX_BASE, STACK_BASE};
    use std::collections::HashMap;

    fn run_native(prog: Program, ctx: &mut [u8], pkt: &mut Vec<u8>) -> Result<u64> {
        let helpers = HelperRegistry::with_base_helpers();
        let loaded = load(prog, &HashMap::new(), &helpers).unwrap();
        let fused = crate::jit::fuse(loaded.jit().unwrap());
        let native = compile(&fused, loaded.access_facts(), &loaded).unwrap().expect("x86-64 backend");
        let mut env = NullEnv;
        let mut rc = crate::vm::RunContext { ctx, packet: pkt, env: &mut env };
        let mut state = RunState::new(rc.ctx.len());
        run(&native, &loaded, &mut rc, &mut state)
    }

    #[test]
    fn native_arithmetic_matches_interpreter() {
        let insns = vec![
            Insn::mov64_imm(0, 5),
            Insn::alu64_imm(alu::MUL, 0, 7),
            Insn::alu64_imm(alu::SUB, 0, 1),
            Insn::mov64_imm(1, 0),
            Insn::alu64_reg(alu::ADD, 0, 1),
            Insn::alu64_imm(alu::RSH, 0, 1),
            Insn::exit(),
        ];
        let prog = Program::new("arith", ProgramType::SocketFilter, insns);
        let mut ctx = vec![0u8; 16];
        let mut pkt = vec![0u8; 0];
        assert_eq!(run_native(prog, &mut ctx, &mut pkt).unwrap(), 17);
    }

    #[test]
    fn native_divide_by_zero_register_semantics() {
        let insns = vec![
            Insn::mov64_imm(0, 100),
            Insn::mov64_imm(1, 0),
            Insn::alu64_reg(alu::DIV, 0, 1),
            Insn::exit(),
        ];
        let prog = Program::new("divzero", ProgramType::SocketFilter, insns);
        let mut ctx = vec![0u8; 16];
        let mut pkt = vec![0u8; 0];
        assert_eq!(run_native(prog, &mut ctx, &mut pkt).unwrap(), 0);
    }

    #[test]
    fn native_stack_roundtrip_and_branch() {
        let insns = vec![
            Insn::mov64_imm(1, 0x1234),
            Insn::store_reg(AccessSize::Double, 10, 1, -8),
            Insn::load(AccessSize::Half, 0, 10, -8),
            Insn::jmp_imm(jmp::JEQ, 0, 0x1234, 1),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        let prog = Program::new("stack", ProgramType::SocketFilter, insns);
        let mut ctx = vec![0u8; 16];
        let mut pkt = vec![0u8; 0];
        assert_eq!(run_native(prog, &mut ctx, &mut pkt).unwrap(), 0x1234);
    }

    #[test]
    fn native_ctx_guard_faults_on_short_context() {
        // Load past the runtime context length: the verifier allows it (the
        // maximum layout is larger) but the emitted guard must fault with
        // the interpreter's error position.
        let insns = vec![Insn::load(AccessSize::Double, 0, 1, 64), Insn::exit()];
        let prog = Program::new("shortctx", ProgramType::SocketFilter, insns);
        let mut ctx = vec![0u8; 16];
        let mut pkt = vec![0u8; 0];
        let err = run_native(prog, &mut ctx, &mut pkt).unwrap_err();
        match err {
            crate::error::Error::Runtime { insn, .. } => assert_eq!(insn, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn native_reads_context_bytes() {
        let insns = vec![Insn::load(AccessSize::Word, 0, 1, 4), Insn::exit()];
        let prog = Program::new("ctxread", ProgramType::SocketFilter, insns);
        let mut ctx = vec![0u8; 16];
        ctx[4..8].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        let mut pkt = vec![0u8; 0];
        assert_eq!(run_native(prog, &mut ctx, &mut pkt).unwrap(), 0xdead_beef);
    }

    #[test]
    fn supported_reports_this_target() {
        assert!(supported());
        let _ = (STACK_BASE, CTX_BASE); // silence unused imports on cfg skew
    }
}
