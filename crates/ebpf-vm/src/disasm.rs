//! A disassembler producing the same mnemonics the [`crate::asm`] assembler
//! accepts, so `assemble(disassemble(p)) == p` for every supported
//! instruction.
//!
//! Beyond raw instructions, [`disassemble_fused`] renders the output of the
//! superinstruction fusion pass ([`crate::jit::fuse`]): each fused op is
//! shown with a `fuse.*` mnemonic wrapping its constituent micro-ops, and
//! branch targets are absolute micro-op slots (`=> N`).

use crate::insn::{alu, class, jmp, src, AccessSize, Insn};
use crate::jit::{ChainAlu, FusedOp, FusedProgram, MicroOp, Operand};

fn alu_name(op: u8) -> &'static str {
    match op {
        alu::ADD => "add",
        alu::SUB => "sub",
        alu::MUL => "mul",
        alu::DIV => "div",
        alu::OR => "or",
        alu::AND => "and",
        alu::LSH => "lsh",
        alu::RSH => "rsh",
        alu::NEG => "neg",
        alu::MOD => "mod",
        alu::XOR => "xor",
        alu::MOV => "mov",
        alu::ARSH => "arsh",
        alu::END => "end",
        _ => "alu?",
    }
}

fn jmp_name(op: u8) -> &'static str {
    match op {
        jmp::JA => "ja",
        jmp::JEQ => "jeq",
        jmp::JGT => "jgt",
        jmp::JGE => "jge",
        jmp::JSET => "jset",
        jmp::JNE => "jne",
        jmp::JSGT => "jsgt",
        jmp::JSGE => "jsge",
        jmp::CALL => "call",
        jmp::EXIT => "exit",
        jmp::JLT => "jlt",
        jmp::JLE => "jle",
        jmp::JSLT => "jslt",
        jmp::JSLE => "jsle",
        _ => "jmp?",
    }
}

fn size_suffix(size: AccessSize) -> &'static str {
    match size {
        AccessSize::Byte => "b",
        AccessSize::Half => "h",
        AccessSize::Word => "w",
        AccessSize::Double => "dw",
    }
}

/// Disassembles a single instruction. The second slot of an `lddw` is
/// rendered as a comment-like placeholder; use [`disassemble`] for whole
/// programs, which fuses the two slots.
pub fn disassemble_insn(insn: &Insn) -> String {
    match insn.class() {
        class::ALU | class::ALU64 => {
            let wide = if insn.class() == class::ALU64 { "64" } else { "32" };
            let op = insn.opcode & 0xf0;
            match op {
                alu::NEG => format!("neg{wide} r{}", insn.dst),
                alu::END => {
                    let dir = if insn.opcode & src::X != 0 { "be" } else { "le" };
                    format!("{dir}{} r{}", insn.imm, insn.dst)
                }
                _ if insn.opcode & src::X != 0 => {
                    format!("{}{wide} r{}, r{}", alu_name(op), insn.dst, insn.src)
                }
                _ => format!("{}{wide} r{}, {}", alu_name(op), insn.dst, insn.imm),
            }
        }
        class::LD => {
            if insn.is_lddw() {
                format!("lddw r{}, {}", insn.dst, insn.imm as u32)
            } else {
                format!(".raw 0x{:02x}", insn.opcode)
            }
        }
        class::LDX => {
            let size = AccessSize::from_opcode(insn.opcode);
            format!("ldx{} r{}, [r{}{:+}]", size_suffix(size), insn.dst, insn.src, insn.off)
        }
        class::STX => {
            let size = AccessSize::from_opcode(insn.opcode);
            format!("stx{} [r{}{:+}], r{}", size_suffix(size), insn.dst, insn.off, insn.src)
        }
        class::ST => {
            let size = AccessSize::from_opcode(insn.opcode);
            format!("st{} [r{}{:+}], {}", size_suffix(size), insn.dst, insn.off, insn.imm)
        }
        class::JMP | class::JMP32 => {
            let op = insn.opcode & 0xf0;
            let wide = if insn.class() == class::JMP32 { "32" } else { "" };
            match op {
                jmp::EXIT => "exit".to_string(),
                jmp::CALL => format!("call {}", insn.imm),
                jmp::JA => format!("ja {:+}", insn.off),
                _ if insn.opcode & src::X != 0 => {
                    format!("{}{wide} r{}, r{}, {:+}", jmp_name(op), insn.dst, insn.src, insn.off)
                }
                _ => format!("{}{wide} r{}, {}, {:+}", jmp_name(op), insn.dst, insn.imm, insn.off),
            }
        }
        _ => format!(".raw 0x{:02x}", insn.opcode),
    }
}

/// Disassembles a whole program, one instruction per line, fusing `lddw`
/// pairs into a single `lddw rX, imm64` line.
pub fn disassemble(insns: &[Insn]) -> String {
    let mut out = String::new();
    let mut idx = 0;
    while idx < insns.len() {
        let insn = &insns[idx];
        if insn.is_lddw() && idx + 1 < insns.len() {
            let hi = &insns[idx + 1];
            let value = (u64::from(hi.imm as u32) << 32) | u64::from(insn.imm as u32);
            out.push_str(&format!("lddw r{}, 0x{:x}\n", insn.dst, value));
            idx += 2;
            continue;
        }
        out.push_str(&disassemble_insn(insn));
        out.push('\n');
        idx += 1;
    }
    out
}

fn wide(is64: bool) -> &'static str {
    if is64 {
        "64"
    } else {
        "32"
    }
}

fn operand(rhs: &Operand) -> String {
    match rhs {
        Operand::Imm(v) => format!("{}", *v as i64),
        Operand::Reg(r) => format!("r{r}"),
    }
}

fn chain_step(c: &ChainAlu) -> String {
    format!("{}{} r{}, {}", alu_name(c.op), wide(c.is64), c.dst, c.imm as i64)
}

/// Renders a single pre-decoded micro-op with the assembler's mnemonics.
/// Branch targets are absolute micro-op slots, rendered as `=> N` (the
/// micro-op stream has no labels to name).
pub fn disassemble_micro_op(op: &MicroOp) -> String {
    match op {
        MicroOp::AluImm { op, is64, dst, imm } => {
            format!("{}{} r{}, {}", alu_name(*op), wide(*is64), dst, *imm as i64)
        }
        MicroOp::AluReg { op, is64, dst, src } => {
            format!("{}{} r{}, r{}", alu_name(*op), wide(*is64), dst, src)
        }
        MicroOp::Neg { is64, dst } => format!("neg{} r{}", wide(*is64), dst),
        MicroOp::ByteSwap { dst, bits, to_be } => {
            format!("{}{} r{}", if *to_be { "be" } else { "le" }, bits, dst)
        }
        MicroOp::LoadImm64 { dst, imm } => format!("lddw r{}, 0x{:x}", dst, imm),
        MicroOp::Load { size, dst, src, off } => {
            format!("ldx{} r{}, [r{}{:+}]", size_suffix(*size), dst, src, off)
        }
        MicroOp::StoreReg { size, dst, src, off } => {
            format!("stx{} [r{}{:+}], r{}", size_suffix(*size), dst, off, src)
        }
        MicroOp::StoreImm { size, dst, off, imm } => {
            format!("st{} [r{}{:+}], {}", size_suffix(*size), dst, off, *imm as i64)
        }
        MicroOp::Jump { target } => format!("ja => {target}"),
        MicroOp::JumpIf { op, is64, dst, rhs, target } => {
            let w = if *is64 { "" } else { "32" };
            format!("{}{} r{}, {}, => {}", jmp_name(*op), w, dst, operand(rhs), target)
        }
        MicroOp::Call { idx, id } => format!("call {id} ; table[{idx}]"),
        MicroOp::Exit => "exit".to_string(),
        MicroOp::Nop => "nop".to_string(),
    }
}

/// Renders a single fused superinstruction. Unfused ops render exactly as
/// [`disassemble_micro_op`]; superinstructions get a `fuse.*` mnemonic with
/// the constituent steps joined by `;`.
pub fn disassemble_fused_op(op: &FusedOp) -> String {
    match op {
        FusedOp::Op(inner) => disassemble_micro_op(inner),
        FusedOp::AluImmChain { len, ops } => {
            let steps: Vec<String> = ops[..usize::from(*len)].iter().map(chain_step).collect();
            format!("fuse.chain {{ {} }}", steps.join("; "))
        }
        FusedOp::LoadAluImm { size, dst, src, off, alu } => {
            format!(
                "fuse.ldalu {{ ldx{} r{}, [r{}{:+}]; {} }}",
                size_suffix(*size),
                dst,
                src,
                off,
                chain_step(alu)
            )
        }
        FusedOp::LoadJumpIf { size, dst, src, off, op, is64, rhs, target } => {
            let w = if *is64 { "" } else { "32" };
            format!(
                "fuse.ldjmp {{ ldx{} r{}, [r{}{:+}]; {}{} r{}, {}, => {} }}",
                size_suffix(*size),
                dst,
                src,
                off,
                jmp_name(*op),
                w,
                dst,
                operand(rhs),
                target
            )
        }
        FusedOp::AluImmJumpIf { alu, op, is64, rhs, target } => {
            let w = if *is64 { "" } else { "32" };
            format!(
                "fuse.alujmp {{ {}; {}{} r{}, {}, => {} }}",
                chain_step(alu),
                jmp_name(*op),
                w,
                alu.dst,
                operand(rhs),
                target
            )
        }
    }
}

/// Disassembles a fused program, one line per superinstruction, prefixed
/// with the absolute slot index so `=> N` branch targets can be followed by
/// eye. Slots consumed by a superinstruction's tail are skipped, matching
/// what actually executes.
pub fn disassemble_fused(prog: &FusedProgram) -> String {
    let mut out = String::new();
    let mut slot = 0usize;
    let ops = prog.ops();
    while slot < ops.len() {
        let op = &ops[slot];
        out.push_str(&format!("{slot:4}: {}\n", disassemble_fused_op(op)));
        slot += op.slots();
    }
    out
}

/// Renders the native code generator's per-program compile facts — the
/// `SEG6_JIT_DEBUG=1` dump: emitter kind, register assignment, spill count,
/// and the elided-check / inlined-helper counters.
pub fn native_report(name: &str, debug: &crate::codegen::NativeDebug) -> String {
    let mut out = format!("jit[{name}]: emitter={}", if debug.regalloc { "regalloc" } else { "frame" });
    if debug.regalloc {
        let homes = debug
            .assignments
            .iter()
            .map(|&(bpf, host)| format!("r{bpf}={host}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            " homes=[{homes}] spills={} elided_checks={} inlined_helpers={} lookup_sites={}",
            debug.spills, debug.elided_checks, debug.inlined_helpers, debug.lookup_sites
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{alu, jmp, AccessSize, Insn};

    #[test]
    fn renders_common_instructions() {
        assert_eq!(disassemble_insn(&Insn::mov64_imm(1, 7)), "mov64 r1, 7");
        assert_eq!(disassemble_insn(&Insn::mov32_reg(2, 3)), "mov32 r2, r3");
        assert_eq!(disassemble_insn(&Insn::alu64_imm(alu::ADD, 4, -1)), "add64 r4, -1");
        assert_eq!(disassemble_insn(&Insn::load(AccessSize::Word, 0, 1, 16)), "ldxw r0, [r1+16]");
        assert_eq!(disassemble_insn(&Insn::store_reg(AccessSize::Byte, 10, 2, -8)), "stxb [r10-8], r2");
        assert_eq!(disassemble_insn(&Insn::store_imm(AccessSize::Double, 10, -16, 3)), "stdw [r10-16], 3");
        assert_eq!(disassemble_insn(&Insn::jmp_imm(jmp::JEQ, 1, 0, 4)), "jeq r1, 0, +4");
        assert_eq!(disassemble_insn(&Insn::jmp_reg(jmp::JGT, 1, 2, -3)), "jgt r1, r2, -3");
        assert_eq!(disassemble_insn(&Insn::call(74)), "call 74");
        assert_eq!(disassemble_insn(&Insn::exit()), "exit");
        assert_eq!(disassemble_insn(&Insn::to_be(3, 16)), "be16 r3");
        assert_eq!(disassemble_insn(&Insn::ja(2)), "ja +2");
    }

    #[test]
    fn fuses_lddw_pairs() {
        let insns =
            vec![Insn::lddw_lo(1, 0xdead_beef_0000_0001), Insn::lddw_hi(0xdead_beef_0000_0001), Insn::exit()];
        let text = disassemble(&insns);
        assert!(text.contains("lddw r1, 0xdeadbeef00000001"));
        assert_eq!(text.lines().count(), 2);
    }

    fn fused_for(source: &str) -> (crate::jit::FusedProgram, Vec<MicroOp>) {
        use crate::program::{load, Program, ProgramType};
        let insns = crate::asm::assemble(source).unwrap();
        let prog = Program::new("disasm-fused", ProgramType::LwtSeg6Local, insns);
        let loaded =
            load(prog, &std::collections::HashMap::new(), &crate::helpers::HelperRegistry::new()).unwrap();
        let jit = loaded.jit().unwrap();
        (crate::jit::fuse(jit), jit.ops().to_vec())
    }

    /// A program whose fusion pass produces every superinstruction kind:
    /// an immediate-ALU chain, load+ALU, ALU+branch and load+branch.
    const FUSION_RICH: &str = r"
        mov64 r6, 32
        lsh64 r6, 3
        add64 r6, 8
        stxdw [r10-8], r6
        ldxdw r7, [r10-8]
        and64 r7, 255
        mov64 r2, 5
        jeq r2, 5, taken
        mov64 r0, 1
        exit
    taken:
        ldxw r3, [r10-8]
        jne r3, 0, nonzero
        mov64 r0, 0
        exit
    nonzero:
        mov64 r0, 2
        exit
    ";

    #[test]
    fn fusion_round_trips_to_the_exact_micro_op_stream() {
        for source in [
            FUSION_RICH,
            "mov64 r0, 0\nexit",
            "lddw r1, 0x1122334455667788\nmov64 r0, 0\nexit",
            // A branch landing mid-pattern blocks fusion; the round-trip
            // must still be exact.
            "mov64 r2, 1\njeq r2, 1, t\nmov64 r0, 9\nt:\nadd64 r2, 1\nmov64 r0, 0\nexit",
        ] {
            let (fused, ops) = fused_for(source);
            assert_eq!(fused.expand(), ops, "fusion expand() diverged for:\n{source}");
        }
    }

    #[test]
    fn renders_fused_superinstructions() {
        let (fused, _) = fused_for(FUSION_RICH);
        let text = disassemble_fused(&fused);
        assert!(text.contains("fuse.chain"), "missing chain in:\n{text}");
        assert!(text.contains("fuse.ldalu"), "missing ldalu in:\n{text}");
        assert!(text.contains("fuse.alujmp"), "missing alujmp in:\n{text}");
        assert!(text.contains("fuse.ldjmp"), "missing ldjmp in:\n{text}");
        // Every rendered line is prefixed with its slot, and the line count
        // matches the number of dispatched superinstructions.
        let dispatched =
            std::iter::successors(Some(0usize), |&s| (s < fused.len()).then(|| s + fused.ops()[s].slots()))
                .take_while(|&s| s < fused.len())
                .count();
        assert_eq!(text.lines().count(), dispatched);
    }

    #[test]
    fn renders_unfused_micro_ops_with_slot_targets() {
        assert_eq!(
            disassemble_micro_op(&MicroOp::JumpIf {
                op: jmp::JNE,
                is64: true,
                dst: 3,
                rhs: Operand::Imm(0),
                target: 11
            }),
            "jne r3, 0, => 11"
        );
        assert_eq!(disassemble_micro_op(&MicroOp::Jump { target: 4 }), "ja => 4");
        assert_eq!(disassemble_micro_op(&MicroOp::Call { idx: 0, id: 6 }), "call 6 ; table[0]");
        assert_eq!(
            disassemble_micro_op(&MicroOp::Load { size: AccessSize::Word, dst: 2, src: 1, off: 8 }),
            "ldxw r2, [r1+8]"
        );
    }
}
