//! A disassembler producing the same mnemonics the [`crate::asm`] assembler
//! accepts, so `assemble(disassemble(p)) == p` for every supported
//! instruction.

use crate::insn::{alu, class, jmp, src, AccessSize, Insn};

fn alu_name(op: u8) -> &'static str {
    match op {
        alu::ADD => "add",
        alu::SUB => "sub",
        alu::MUL => "mul",
        alu::DIV => "div",
        alu::OR => "or",
        alu::AND => "and",
        alu::LSH => "lsh",
        alu::RSH => "rsh",
        alu::NEG => "neg",
        alu::MOD => "mod",
        alu::XOR => "xor",
        alu::MOV => "mov",
        alu::ARSH => "arsh",
        alu::END => "end",
        _ => "alu?",
    }
}

fn jmp_name(op: u8) -> &'static str {
    match op {
        jmp::JA => "ja",
        jmp::JEQ => "jeq",
        jmp::JGT => "jgt",
        jmp::JGE => "jge",
        jmp::JSET => "jset",
        jmp::JNE => "jne",
        jmp::JSGT => "jsgt",
        jmp::JSGE => "jsge",
        jmp::CALL => "call",
        jmp::EXIT => "exit",
        jmp::JLT => "jlt",
        jmp::JLE => "jle",
        jmp::JSLT => "jslt",
        jmp::JSLE => "jsle",
        _ => "jmp?",
    }
}

fn size_suffix(size: AccessSize) -> &'static str {
    match size {
        AccessSize::Byte => "b",
        AccessSize::Half => "h",
        AccessSize::Word => "w",
        AccessSize::Double => "dw",
    }
}

/// Disassembles a single instruction. The second slot of an `lddw` is
/// rendered as a comment-like placeholder; use [`disassemble`] for whole
/// programs, which fuses the two slots.
pub fn disassemble_insn(insn: &Insn) -> String {
    match insn.class() {
        class::ALU | class::ALU64 => {
            let wide = if insn.class() == class::ALU64 { "64" } else { "32" };
            let op = insn.opcode & 0xf0;
            match op {
                alu::NEG => format!("neg{wide} r{}", insn.dst),
                alu::END => {
                    let dir = if insn.opcode & src::X != 0 { "be" } else { "le" };
                    format!("{dir}{} r{}", insn.imm, insn.dst)
                }
                _ if insn.opcode & src::X != 0 => {
                    format!("{}{wide} r{}, r{}", alu_name(op), insn.dst, insn.src)
                }
                _ => format!("{}{wide} r{}, {}", alu_name(op), insn.dst, insn.imm),
            }
        }
        class::LD => {
            if insn.is_lddw() {
                format!("lddw r{}, {}", insn.dst, insn.imm as u32)
            } else {
                format!(".raw 0x{:02x}", insn.opcode)
            }
        }
        class::LDX => {
            let size = AccessSize::from_opcode(insn.opcode);
            format!("ldx{} r{}, [r{}{:+}]", size_suffix(size), insn.dst, insn.src, insn.off)
        }
        class::STX => {
            let size = AccessSize::from_opcode(insn.opcode);
            format!("stx{} [r{}{:+}], r{}", size_suffix(size), insn.dst, insn.off, insn.src)
        }
        class::ST => {
            let size = AccessSize::from_opcode(insn.opcode);
            format!("st{} [r{}{:+}], {}", size_suffix(size), insn.dst, insn.off, insn.imm)
        }
        class::JMP | class::JMP32 => {
            let op = insn.opcode & 0xf0;
            let wide = if insn.class() == class::JMP32 { "32" } else { "" };
            match op {
                jmp::EXIT => "exit".to_string(),
                jmp::CALL => format!("call {}", insn.imm),
                jmp::JA => format!("ja {:+}", insn.off),
                _ if insn.opcode & src::X != 0 => {
                    format!("{}{wide} r{}, r{}, {:+}", jmp_name(op), insn.dst, insn.src, insn.off)
                }
                _ => format!("{}{wide} r{}, {}, {:+}", jmp_name(op), insn.dst, insn.imm, insn.off),
            }
        }
        _ => format!(".raw 0x{:02x}", insn.opcode),
    }
}

/// Disassembles a whole program, one instruction per line, fusing `lddw`
/// pairs into a single `lddw rX, imm64` line.
pub fn disassemble(insns: &[Insn]) -> String {
    let mut out = String::new();
    let mut idx = 0;
    while idx < insns.len() {
        let insn = &insns[idx];
        if insn.is_lddw() && idx + 1 < insns.len() {
            let hi = &insns[idx + 1];
            let value = (u64::from(hi.imm as u32) << 32) | u64::from(insn.imm as u32);
            out.push_str(&format!("lddw r{}, 0x{:x}\n", insn.dst, value));
            idx += 2;
            continue;
        }
        out.push_str(&disassemble_insn(insn));
        out.push('\n');
        idx += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{alu, jmp, AccessSize, Insn};

    #[test]
    fn renders_common_instructions() {
        assert_eq!(disassemble_insn(&Insn::mov64_imm(1, 7)), "mov64 r1, 7");
        assert_eq!(disassemble_insn(&Insn::mov32_reg(2, 3)), "mov32 r2, r3");
        assert_eq!(disassemble_insn(&Insn::alu64_imm(alu::ADD, 4, -1)), "add64 r4, -1");
        assert_eq!(disassemble_insn(&Insn::load(AccessSize::Word, 0, 1, 16)), "ldxw r0, [r1+16]");
        assert_eq!(disassemble_insn(&Insn::store_reg(AccessSize::Byte, 10, 2, -8)), "stxb [r10-8], r2");
        assert_eq!(disassemble_insn(&Insn::store_imm(AccessSize::Double, 10, -16, 3)), "stdw [r10-16], 3");
        assert_eq!(disassemble_insn(&Insn::jmp_imm(jmp::JEQ, 1, 0, 4)), "jeq r1, 0, +4");
        assert_eq!(disassemble_insn(&Insn::jmp_reg(jmp::JGT, 1, 2, -3)), "jgt r1, r2, -3");
        assert_eq!(disassemble_insn(&Insn::call(74)), "call 74");
        assert_eq!(disassemble_insn(&Insn::exit()), "exit");
        assert_eq!(disassemble_insn(&Insn::to_be(3, 16)), "be16 r3");
        assert_eq!(disassemble_insn(&Insn::ja(2)), "ja +2");
    }

    #[test]
    fn fuses_lddw_pairs() {
        let insns =
            vec![Insn::lddw_lo(1, 0xdead_beef_0000_0001), Insn::lddw_hi(0xdead_beef_0000_0001), Insn::exit()];
        let text = disassemble(&insns);
        assert!(text.contains("lddw r1, 0xdeadbeef00000001"));
        assert_eq!(text.lines().count(), 2);
    }
}
