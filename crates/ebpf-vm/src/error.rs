//! Error types for the eBPF virtual machine.

use std::fmt;

/// Errors produced while decoding, verifying or executing eBPF programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The byte stream could not be decoded into instructions.
    Decode(String),
    /// The text assembler rejected the source.
    Assembler {
        /// 1-based source line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The verifier rejected the program.
    Verifier {
        /// Index of the offending instruction, when known.
        insn: usize,
        /// What went wrong.
        message: String,
    },
    /// A fault occurred at run time (bad memory access, division by zero,
    /// unknown helper, instruction budget exceeded, ...).
    Runtime {
        /// Index of the faulting instruction.
        insn: usize,
        /// What went wrong.
        message: String,
    },
    /// A map operation failed (wrong key/value size, capacity exceeded, ...).
    Map(String),
    /// A helper reported a fatal error that must abort the program.
    Helper(String),
}

impl Error {
    /// Convenience constructor for verifier errors.
    pub fn verifier(insn: usize, message: impl Into<String>) -> Self {
        Error::Verifier { insn, message: message.into() }
    }

    /// Convenience constructor for runtime errors.
    pub fn runtime(insn: usize, message: impl Into<String>) -> Self {
        Error::Runtime { insn, message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Decode(msg) => write!(f, "decode error: {msg}"),
            Error::Assembler { line, message } => write!(f, "assembler error at line {line}: {message}"),
            Error::Verifier { insn, message } => write!(f, "verifier rejected instruction {insn}: {message}"),
            Error::Runtime { insn, message } => write!(f, "runtime fault at instruction {insn}: {message}"),
            Error::Map(msg) => write!(f, "map error: {msg}"),
            Error::Helper(msg) => write!(f, "helper error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_instruction_index() {
        let err = Error::verifier(7, "uninitialised register r3");
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains("r3"));
        let err = Error::runtime(12, "division by zero");
        assert!(err.to_string().contains("12"));
    }
}
