//! Helper functions and the helper registry.
//!
//! Helpers are the proxies between eBPF programs and the kernel (§2.1 of
//! the paper). A program calls them by numeric id with the `call`
//! instruction; the verifier only accepts ids that are registered for the
//! program's hook. This module provides the base helpers every hook gets
//! (map access, time, randomness, perf events, `skb_load_bytes`) and the
//! registry that embedders — the `seg6-core` crate in this workspace —
//! extend with their own helpers, exactly as the paper added four SRv6
//! helpers to the kernel.

use crate::error::Result;
use crate::maps::{MapType, UpdateFlags};
use crate::perf::PerfEvent;
use crate::program::ProgramType;
use crate::vm::HelperApi;
use std::borrow::Cow;

/// Numeric ids of the helpers known to this workspace. The values mirror
/// the upstream `enum bpf_func_id` so that anyone familiar with the kernel
/// ABI recognises them.
pub mod ids {
    /// `bpf_map_lookup_elem`
    pub const MAP_LOOKUP_ELEM: u32 = 1;
    /// `bpf_map_update_elem`
    pub const MAP_UPDATE_ELEM: u32 = 2;
    /// `bpf_map_delete_elem`
    pub const MAP_DELETE_ELEM: u32 = 3;
    /// `bpf_ktime_get_ns`
    pub const KTIME_GET_NS: u32 = 5;
    /// `bpf_trace_printk`
    pub const TRACE_PRINTK: u32 = 6;
    /// `bpf_get_prandom_u32`
    pub const GET_PRANDOM_U32: u32 = 7;
    /// `bpf_get_smp_processor_id`
    pub const GET_SMP_PROCESSOR_ID: u32 = 8;
    /// `bpf_perf_event_output`
    pub const PERF_EVENT_OUTPUT: u32 = 25;
    /// `bpf_skb_load_bytes`
    pub const SKB_LOAD_BYTES: u32 = 26;
    /// `bpf_lwt_push_encap` — added by the paper for LWT BPF programs.
    pub const LWT_PUSH_ENCAP: u32 = 73;
    /// `bpf_lwt_seg6_store_bytes` — added by the paper for End.BPF.
    pub const LWT_SEG6_STORE_BYTES: u32 = 74;
    /// `bpf_lwt_seg6_adjust_srh` — added by the paper for End.BPF.
    pub const LWT_SEG6_ADJUST_SRH: u32 = 75;
    /// `bpf_lwt_seg6_action` — added by the paper for End.BPF.
    pub const LWT_SEG6_ACTION: u32 = 76;
}

/// Signature of a helper implementation. Arguments are the raw contents of
/// r1–r5; the return value goes to r0.
pub type HelperFn = fn(&mut HelperApi<'_, '_>, [u64; 5]) -> i64;

/// A registered helper.
#[derive(Clone, Copy)]
pub struct HelperDesc {
    /// Helper name, for diagnostics and the disassembler.
    pub name: &'static str,
    /// Implementation.
    pub func: HelperFn,
    /// Hooks allowed to call this helper; `None` means every hook.
    pub allowed: Option<&'static [ProgramType]>,
}

/// The set of helpers available to programs at verification and run time.
///
/// Internally a dense table indexed directly by helper id — helper ids are
/// small (the kernel ABI range plus a handful of local extensions), so a
/// `call` resolves with one bounds-checked array index instead of hashing,
/// and the per-program tables resolved at load time
/// ([`crate::program::LoadedProgram::helper_table`]) copy straight out of
/// it.
#[derive(Clone, Default)]
pub struct HelperRegistry {
    helpers: Vec<Option<HelperDesc>>,
}

impl HelperRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry pre-populated with the base helpers.
    pub fn with_base_helpers() -> Self {
        let mut registry = Self::new();
        registry.register(ids::MAP_LOOKUP_ELEM, "bpf_map_lookup_elem", helper_map_lookup_elem, None);
        registry.register(ids::MAP_UPDATE_ELEM, "bpf_map_update_elem", helper_map_update_elem, None);
        registry.register(ids::MAP_DELETE_ELEM, "bpf_map_delete_elem", helper_map_delete_elem, None);
        registry.register(ids::KTIME_GET_NS, "bpf_ktime_get_ns", helper_ktime_get_ns, None);
        registry.register(ids::TRACE_PRINTK, "bpf_trace_printk", helper_trace_printk, None);
        registry.register(ids::GET_PRANDOM_U32, "bpf_get_prandom_u32", helper_get_prandom_u32, None);
        registry.register(
            ids::GET_SMP_PROCESSOR_ID,
            "bpf_get_smp_processor_id",
            helper_get_smp_processor_id,
            None,
        );
        registry.register(ids::PERF_EVENT_OUTPUT, "bpf_perf_event_output", helper_perf_event_output, None);
        registry.register(ids::SKB_LOAD_BYTES, "bpf_skb_load_bytes", helper_skb_load_bytes, None);
        registry
    }

    /// Registers (or replaces) a helper.
    pub fn register(
        &mut self,
        id: u32,
        name: &'static str,
        func: HelperFn,
        allowed: Option<&'static [ProgramType]>,
    ) {
        let idx = id as usize;
        if idx >= self.helpers.len() {
            self.helpers.resize(idx + 1, None);
        }
        self.helpers[idx] = Some(HelperDesc { name, func, allowed });
    }

    /// Looks a helper up by id — a direct table index.
    pub fn get(&self, id: u32) -> Option<&HelperDesc> {
        self.helpers.get(id as usize).and_then(Option::as_ref)
    }

    /// Whether `prog_type` may call helper `id`.
    pub fn allowed_for(&self, id: u32, prog_type: ProgramType) -> bool {
        match self.get(id) {
            None => false,
            Some(desc) => desc.allowed.is_none_or(|types| types.contains(&prog_type)),
        }
    }

    /// Name of a helper, for diagnostics.
    pub fn name_of(&self, id: u32) -> Option<&'static str> {
        self.get(id).map(|d| d.name)
    }

    /// Number of registered helpers.
    pub fn len(&self) -> usize {
        self.helpers.iter().filter(|slot| slot.is_some()).count()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Base helper implementations
// ---------------------------------------------------------------------------

fn ok_or_minus_one(result: Result<()>) -> i64 {
    match result {
        Ok(()) => 0,
        Err(_) => -1,
    }
}

/// Largest map key / value read through a stack buffer by [`read_param`].
/// Every map in this workspace fits; jumbo values fall back to a heap read.
pub const MAX_STACK_PARAM: usize = 64;

/// Reads `len` program-memory bytes through a caller-provided stack buffer
/// when they fit, falling back to a heap allocation only for jumbo
/// parameters — per-packet helper parameter reads stay allocation-free.
/// Shared by the base helpers here and by embedder helpers (the SRv6 set
/// in `seg6-core` layers its own length policy on top).
pub fn read_param<'b>(
    api: &HelperApi<'_, '_>,
    addr: u64,
    len: usize,
    buf: &'b mut [u8; MAX_STACK_PARAM],
) -> Option<Cow<'b, [u8]>> {
    if len <= MAX_STACK_PARAM {
        api.read_into(addr, &mut buf[..len]).ok()?;
        Some(Cow::Borrowed(&buf[..len]))
    } else {
        api.read_bytes(addr, len).ok().map(Cow::Owned)
    }
}

/// `void *bpf_map_lookup_elem(map, key)` — returns a pointer to the value or
/// NULL. Per-CPU maps resolve to the slot of the CPU the program runs on.
fn helper_map_lookup_elem(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let Ok(map) = api.map_by_ptr(args[0]) else { return 0 };
    let mut kb = [0u8; MAX_STACK_PARAM];
    let Some(key) = read_param(api, args[1], map.key_size(), &mut kb) else { return 0 };
    let cpu = api.env().cpu_id();
    match map.lookup_ref_cpu(&key, cpu) {
        Some(value) => api.register_value_region(value) as i64,
        None => 0,
    }
}

/// `long bpf_map_update_elem(map, key, value, flags)`. A program updating a
/// per-CPU map writes its own CPU's slot, as in the kernel.
fn helper_map_update_elem(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let Ok(map) = api.map_by_ptr(args[0]) else { return -1 };
    let mut kb = [0u8; MAX_STACK_PARAM];
    let Some(key) = read_param(api, args[1], map.key_size(), &mut kb) else { return -1 };
    let mut vb = [0u8; MAX_STACK_PARAM];
    let Some(value) = read_param(api, args[2], map.value_size(), &mut vb) else { return -1 };
    let flags = match args[3] {
        0 => UpdateFlags::Any,
        1 => UpdateFlags::NoExist,
        2 => UpdateFlags::Exist,
        _ => return -1,
    };
    if map.map_type() == MapType::PerCpuArray {
        let cpu = api.env().cpu_id();
        match map.lookup_ref_cpu(&key, cpu) {
            Some(slot) if flags != UpdateFlags::NoExist => {
                slot.write().copy_from_slice(&value);
                return 0;
            }
            _ => return -1,
        }
    }
    ok_or_minus_one(map.update(&key, &value, flags))
}

/// `long bpf_map_delete_elem(map, key)`.
fn helper_map_delete_elem(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let Ok(map) = api.map_by_ptr(args[0]) else { return -1 };
    let mut kb = [0u8; MAX_STACK_PARAM];
    let Some(key) = read_param(api, args[1], map.key_size(), &mut kb) else { return -1 };
    ok_or_minus_one(map.delete(&key))
}

/// `u64 bpf_ktime_get_ns(void)`.
fn helper_ktime_get_ns(api: &mut HelperApi<'_, '_>, _args: [u64; 5]) -> i64 {
    api.env().ktime_ns() as i64
}

/// `long bpf_trace_printk(fmt, fmt_size, ...)` — reads a message from the
/// program and hands it to the environment's trace sink.
fn helper_trace_printk(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let len = (args[1] as usize).min(256);
    let Ok(bytes) = api.read_bytes(args[0], len) else { return -1 };
    let message = String::from_utf8_lossy(&bytes).trim_end_matches('\0').to_string();
    api.env().trace(&message);
    message.len() as i64
}

/// `u32 bpf_get_prandom_u32(void)`.
fn helper_get_prandom_u32(api: &mut HelperApi<'_, '_>, _args: [u64; 5]) -> i64 {
    i64::from(api.env().prandom_u32())
}

/// `u32 bpf_get_smp_processor_id(void)` — the logical CPU (worker shard)
/// the program runs on.
fn helper_get_smp_processor_id(api: &mut HelperApi<'_, '_>, _args: [u64; 5]) -> i64 {
    i64::from(api.env().cpu_id())
}

/// In `bpf_perf_event_output` flags, the low 32 bits select the target CPU
/// ring; this value means "the CPU the program runs on".
pub const BPF_F_CURRENT_CPU: u64 = 0xffff_ffff;
/// Mask of the CPU-index bits in `bpf_perf_event_output` flags.
pub const BPF_F_INDEX_MASK: u64 = 0xffff_ffff;

/// `long bpf_perf_event_output(ctx, map, flags, data, size)` — pushes `size`
/// bytes read from the program's memory into one CPU ring of the perf
/// buffer attached to `map`. The low 32 bits of `flags` select the ring:
/// [`BPF_F_CURRENT_CPU`] (the default every program in this workspace uses)
/// targets the ring of the CPU the program runs on; an explicit index must
/// name an existing ring, as in the kernel.
fn helper_perf_event_output(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let Ok(map) = api.map_by_ptr(args[1]) else { return -1 };
    if map.map_type() != MapType::PerfEventArray {
        return -1;
    }
    let Some(buffer) = map.perf_buffer() else { return -1 };
    // The kernel rejects flags with any bit outside the index mask set
    // (e.g. a sign-extended -1); match that so programs stay portable.
    if args[2] & !BPF_F_INDEX_MASK != 0 {
        return -1;
    }
    let index = args[2] & BPF_F_INDEX_MASK;
    let cpu = if index == BPF_F_CURRENT_CPU {
        api.env().cpu_id()
    } else if index < u64::from(buffer.num_rings()) {
        index as u32
    } else {
        return -1;
    };
    let size = args[4] as usize;
    if size > 4096 {
        return -1;
    }
    let Ok(data) = api.read_bytes(args[3], size) else { return -1 };
    buffer.push(PerfEvent { cpu, data });
    0
}

/// `long bpf_skb_load_bytes(ctx, offset, to, len)` — copies packet bytes to
/// program memory (typically the stack), with no intermediate buffer.
fn helper_skb_load_bytes(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let offset = args[1] as usize;
    let len = args[3] as usize;
    if len == 0 || len > 4096 {
        return -1;
    }
    let packet_len = api.packet().len();
    if offset.checked_add(len).is_none_or(|end| end > packet_len) {
        return -1;
    }
    match api.copy_from_packet(offset, len, args[2]) {
        Ok(()) => 0,
        Err(_) => -1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::{ArrayMap, Map, MapHandle, PerfEventArray};
    use crate::vm::{map_ptr_value, NullEnv, RunContext, RunState, STACK_BASE};
    use std::collections::HashMap as StdHashMap;
    use std::sync::Arc;

    fn setup(maps: &StdHashMap<u32, MapHandle>) -> (RunState, Vec<u8>, Vec<u8>) {
        let _ = maps;
        (RunState::new(16), vec![0u8; 16], (0u8..64).collect())
    }

    #[test]
    fn registry_contains_base_helpers() {
        let registry = HelperRegistry::with_base_helpers();
        assert!(registry.len() >= 8);
        assert!(!registry.is_empty());
        assert_eq!(registry.name_of(ids::MAP_LOOKUP_ELEM), Some("bpf_map_lookup_elem"));
        assert!(registry.get(ids::KTIME_GET_NS).is_some());
        assert!(registry.get(424242).is_none());
        // Unrestricted helpers are allowed everywhere; unknown ids nowhere.
        assert!(registry.allowed_for(ids::KTIME_GET_NS, ProgramType::LwtSeg6Local));
        assert!(!registry.allowed_for(424242, ProgramType::LwtSeg6Local));
    }

    #[test]
    fn restricted_helper_is_gated_by_program_type() {
        static ONLY_SEG6: &[ProgramType] = &[ProgramType::LwtSeg6Local];
        fn noop(_api: &mut HelperApi<'_, '_>, _args: [u64; 5]) -> i64 {
            0
        }
        let mut registry = HelperRegistry::new();
        registry.register(100, "test_helper", noop, Some(ONLY_SEG6));
        assert!(registry.allowed_for(100, ProgramType::LwtSeg6Local));
        assert!(!registry.allowed_for(100, ProgramType::LwtXmit));
    }

    #[test]
    fn map_lookup_and_update_through_helpers() {
        let map: MapHandle = ArrayMap::new(8, 2);
        let mut maps = StdHashMap::new();
        maps.insert(3u32, Arc::clone(&map));
        let (mut state, mut ctx, mut pkt) = setup(&maps);
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };

        // Write key 1 to the stack.
        let key_addr = STACK_BASE + 8;
        {
            let mut api = HelperApi { state: &mut state, rc: &mut rc, maps: &maps };
            api.write_bytes(key_addr, &1u32.to_ne_bytes()).unwrap();
            let value_addr = STACK_BASE + 16;
            api.write_bytes(value_addr, &[9u8; 8]).unwrap();
            // update elem
            let ret = helper_map_update_elem(&mut api, [map_ptr_value(3), key_addr, value_addr, 0, 0]);
            assert_eq!(ret, 0);
            // lookup returns a readable pointer
            let ptr = helper_map_lookup_elem(&mut api, [map_ptr_value(3), key_addr, 0, 0, 0]);
            assert!(ptr > 0);
            assert_eq!(api.read_bytes(ptr as u64, 8).unwrap(), vec![9u8; 8]);
            // unknown fd fails cleanly
            assert_eq!(helper_map_lookup_elem(&mut api, [map_ptr_value(9), key_addr, 0, 0, 0]), 0);
            // delete is not supported on arrays
            assert_eq!(helper_map_delete_elem(&mut api, [map_ptr_value(3), key_addr, 0, 0, 0]), -1);
        }
        assert_eq!(map.lookup(&1u32.to_ne_bytes()), Some(vec![9u8; 8]));
    }

    #[test]
    fn perf_event_output_pushes_to_ring() {
        let perf = PerfEventArray::new(8);
        let map: MapHandle = perf.clone();
        let mut maps = StdHashMap::new();
        maps.insert(1u32, Arc::clone(&map));
        let (mut state, mut ctx, mut pkt) = setup(&maps);
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let mut api = HelperApi { state: &mut state, rc: &mut rc, maps: &maps };
        api.write_bytes(STACK_BASE, &[1, 2, 3, 4]).unwrap();
        let ret = helper_perf_event_output(&mut api, [0, map_ptr_value(1), 0, STACK_BASE, 4]);
        assert_eq!(ret, 0);
        let event = perf.perf_buffer().unwrap().poll().unwrap();
        assert_eq!(event.data, vec![1, 2, 3, 4]);
    }

    struct CpuEnv(u32);
    impl crate::vm::VmEnv for CpuEnv {
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn cpu_id(&mut self) -> u32 {
            self.0
        }
    }

    #[test]
    fn map_lookup_resolves_the_current_cpus_slot() {
        let map: MapHandle = crate::maps::PerCpuArrayMap::new(8, 1, 4);
        let mut maps = StdHashMap::new();
        maps.insert(3u32, Arc::clone(&map));
        let (mut state, mut ctx, mut pkt) = setup(&maps);
        let key_addr = STACK_BASE + 8;
        for cpu in [0u32, 2] {
            let mut env = CpuEnv(cpu);
            let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
            let mut api = HelperApi { state: &mut state, rc: &mut rc, maps: &maps };
            api.write_bytes(key_addr, &0u32.to_ne_bytes()).unwrap();
            let ptr = helper_map_lookup_elem(&mut api, [map_ptr_value(3), key_addr, 0, 0, 0]);
            assert!(ptr > 0);
            // Write the CPU id through the returned pointer.
            api.write_bytes(ptr as u64, &u64::from(cpu).to_le_bytes()).unwrap();
        }
        // Each write landed in its own CPU's slot.
        let per_cpu = map.lookup(&0u32.to_ne_bytes()).unwrap();
        assert_eq!(&per_cpu[0..8], &0u64.to_le_bytes());
        assert_eq!(&per_cpu[8..16], &0u64.to_le_bytes());
        assert_eq!(&per_cpu[16..24], &2u64.to_le_bytes());
    }

    #[test]
    fn smp_processor_id_reads_the_environment() {
        let maps = StdHashMap::new();
        let (mut state, mut ctx, mut pkt) = setup(&maps);
        let mut env = CpuEnv(5);
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let mut api = HelperApi { state: &mut state, rc: &mut rc, maps: &maps };
        assert_eq!(helper_get_smp_processor_id(&mut api, [0; 5]), 5);
    }

    #[test]
    fn perf_event_output_honours_the_cpu_index() {
        let perf = PerfEventArray::per_cpu(8, 4);
        let map: MapHandle = perf.clone();
        let mut maps = StdHashMap::new();
        maps.insert(1u32, Arc::clone(&map));
        let (mut state, mut ctx, mut pkt) = setup(&maps);
        let mut env = CpuEnv(3);
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let mut api = HelperApi { state: &mut state, rc: &mut rc, maps: &maps };
        api.write_bytes(STACK_BASE, &[9]).unwrap();
        // BPF_F_CURRENT_CPU routes to the env's CPU ring.
        assert_eq!(
            helper_perf_event_output(&mut api, [0, map_ptr_value(1), BPF_F_CURRENT_CPU, STACK_BASE, 1]),
            0
        );
        // An explicit in-range index is honoured.
        assert_eq!(helper_perf_event_output(&mut api, [0, map_ptr_value(1), 1, STACK_BASE, 1]), 0);
        // An explicit out-of-range index is rejected, as in the kernel.
        assert_eq!(helper_perf_event_output(&mut api, [0, map_ptr_value(1), 7, STACK_BASE, 1]), -1);
        let buffer = perf.perf_buffer().unwrap();
        assert_eq!(buffer.len_cpu(3), 1);
        assert_eq!(buffer.len_cpu(1), 1);
        assert_eq!(buffer.poll_cpu(3).unwrap().cpu, 3);
    }

    #[test]
    fn skb_load_bytes_copies_packet_data() {
        let maps = StdHashMap::new();
        let (mut state, mut ctx, mut pkt) = setup(&maps);
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let mut api = HelperApi { state: &mut state, rc: &mut rc, maps: &maps };
        let dst = STACK_BASE + 64;
        assert_eq!(helper_skb_load_bytes(&mut api, [0, 10, dst, 4, 0]), 0);
        assert_eq!(api.read_bytes(dst, 4).unwrap(), vec![10, 11, 12, 13]);
        // Out-of-bounds offsets fail.
        assert_eq!(helper_skb_load_bytes(&mut api, [0, 62, dst, 4, 0]), -1);
        assert_eq!(helper_skb_load_bytes(&mut api, [0, 0, dst, 0, 0]), -1);
    }

    #[test]
    fn ktime_and_prandom_use_the_environment() {
        struct FixedEnv;
        impl crate::vm::VmEnv for FixedEnv {
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
            fn ktime_ns(&mut self) -> u64 {
                424242
            }
            fn prandom_u32(&mut self) -> u32 {
                7
            }
        }
        let maps = StdHashMap::new();
        let mut state = RunState::new(0);
        let mut ctx = vec![0u8; 4];
        let mut pkt = vec![0u8; 4];
        let mut env = FixedEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let mut api = HelperApi { state: &mut state, rc: &mut rc, maps: &maps };
        assert_eq!(helper_ktime_get_ns(&mut api, [0; 5]), 424242);
        assert_eq!(helper_get_prandom_u32(&mut api, [0; 5]), 7);
    }

    #[test]
    fn trace_printk_reads_message() {
        #[derive(Default)]
        struct Collecting {
            messages: Vec<String>,
        }
        impl crate::vm::VmEnv for Collecting {
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
            fn trace(&mut self, message: &str) {
                self.messages.push(message.to_string());
            }
        }
        let maps = StdHashMap::new();
        let mut state = RunState::new(0);
        let mut ctx = vec![0u8; 4];
        let mut pkt = vec![0u8; 4];
        let mut env = Collecting::default();
        {
            let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
            let mut api = HelperApi { state: &mut state, rc: &mut rc, maps: &maps };
            api.write_bytes(STACK_BASE, b"hello\0\0\0").unwrap();
            assert_eq!(helper_trace_printk(&mut api, [STACK_BASE, 8, 0, 0, 0]), 5);
        }
        assert_eq!(env.messages, vec!["hello".to_string()]);
    }
}
