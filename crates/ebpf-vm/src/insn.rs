//! The eBPF instruction set.
//!
//! eBPF instructions are 64 bits wide: an 8-bit opcode, two 4-bit register
//! numbers, a 16-bit signed offset and a 32-bit signed immediate. The opcode
//! is split into a 3-bit *class* plus class-specific fields, exactly as in
//! the kernel's `Documentation/networking/filter.txt` (referenced by the
//! paper as [3]). The 64-bit-immediate load (`lddw`) occupies two
//! consecutive instruction slots.

use crate::error::{Error, Result};
use std::fmt;

/// Number of general-purpose registers (r0–r10).
pub const NUM_REGS: usize = 11;
/// The read-only frame pointer register.
pub const REG_FP: u8 = 10;
/// Register carrying the context pointer at program entry.
pub const REG_CTX: u8 = 1;
/// Register carrying the return value.
pub const REG_RET: u8 = 0;
/// Size of the per-invocation stack, in bytes.
pub const STACK_SIZE: usize = 512;
/// Maximum number of instructions accepted by the verifier.
pub const MAX_INSNS: usize = 4096;

/// Instruction classes (lowest 3 bits of the opcode).
pub mod class {
    /// Load from immediate / legacy packet access.
    pub const LD: u8 = 0x00;
    /// Load from memory into a register.
    pub const LDX: u8 = 0x01;
    /// Store an immediate to memory.
    pub const ST: u8 = 0x02;
    /// Store a register to memory.
    pub const STX: u8 = 0x03;
    /// 32-bit arithmetic.
    pub const ALU: u8 = 0x04;
    /// 64-bit jumps.
    pub const JMP: u8 = 0x05;
    /// 32-bit jumps.
    pub const JMP32: u8 = 0x06;
    /// 64-bit arithmetic.
    pub const ALU64: u8 = 0x07;
}

/// ALU / ALU64 operation codes (bits 4–7 of the opcode).
pub mod alu {
    /// dst += src
    pub const ADD: u8 = 0x00;
    /// dst -= src
    pub const SUB: u8 = 0x10;
    /// dst *= src
    pub const MUL: u8 = 0x20;
    /// dst /= src (unsigned)
    pub const DIV: u8 = 0x30;
    /// dst |= src
    pub const OR: u8 = 0x40;
    /// dst &= src
    pub const AND: u8 = 0x50;
    /// dst <<= src
    pub const LSH: u8 = 0x60;
    /// dst >>= src (logical)
    pub const RSH: u8 = 0x70;
    /// dst = -dst
    pub const NEG: u8 = 0x80;
    /// dst %= src (unsigned)
    pub const MOD: u8 = 0x90;
    /// dst ^= src
    pub const XOR: u8 = 0xa0;
    /// dst = src
    pub const MOV: u8 = 0xb0;
    /// dst >>= src (arithmetic)
    pub const ARSH: u8 = 0xc0;
    /// Byte-swap (endianness conversion).
    pub const END: u8 = 0xd0;
}

/// JMP / JMP32 operation codes (bits 4–7 of the opcode).
pub mod jmp {
    /// Unconditional jump.
    pub const JA: u8 = 0x00;
    /// Jump if equal.
    pub const JEQ: u8 = 0x10;
    /// Jump if greater (unsigned).
    pub const JGT: u8 = 0x20;
    /// Jump if greater or equal (unsigned).
    pub const JGE: u8 = 0x30;
    /// Jump if `dst & src` is non-zero.
    pub const JSET: u8 = 0x40;
    /// Jump if not equal.
    pub const JNE: u8 = 0x50;
    /// Jump if greater (signed).
    pub const JSGT: u8 = 0x60;
    /// Jump if greater or equal (signed).
    pub const JSGE: u8 = 0x70;
    /// Call a helper function.
    pub const CALL: u8 = 0x80;
    /// Return from the program.
    pub const EXIT: u8 = 0x90;
    /// Jump if lower (unsigned).
    pub const JLT: u8 = 0xa0;
    /// Jump if lower or equal (unsigned).
    pub const JLE: u8 = 0xb0;
    /// Jump if lower (signed).
    pub const JSLT: u8 = 0xc0;
    /// Jump if lower or equal (signed).
    pub const JSLE: u8 = 0xd0;
}

/// Source-operand selector (bit 3 of ALU/JMP opcodes).
pub mod src {
    /// Use the 32-bit immediate.
    pub const K: u8 = 0x00;
    /// Use the source register.
    pub const X: u8 = 0x08;
}

/// Memory access sizes (bits 3–4 of LD/LDX/ST/STX opcodes).
pub mod size {
    /// 32-bit word.
    pub const W: u8 = 0x00;
    /// 16-bit half word.
    pub const H: u8 = 0x08;
    /// Byte.
    pub const B: u8 = 0x10;
    /// 64-bit double word.
    pub const DW: u8 = 0x18;
}

/// Memory access modes (bits 5–7 of LD/LDX/ST/STX opcodes).
pub mod mode {
    /// Immediate (only used by `lddw`).
    pub const IMM: u8 = 0x00;
    /// Register + offset addressing.
    pub const MEM: u8 = 0x60;
}

/// Width of a memory access, decoded from the opcode size bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessSize {
    /// One byte.
    Byte,
    /// Two bytes.
    Half,
    /// Four bytes.
    Word,
    /// Eight bytes.
    Double,
}

impl AccessSize {
    /// Number of bytes accessed.
    pub fn bytes(self) -> usize {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
            AccessSize::Double => 8,
        }
    }

    /// Decodes the opcode size bits.
    pub fn from_opcode(op: u8) -> AccessSize {
        match op & 0x18 {
            size::B => AccessSize::Byte,
            size::H => AccessSize::Half,
            size::W => AccessSize::Word,
            _ => AccessSize::Double,
        }
    }

    /// Opcode size bits for this width.
    pub fn to_bits(self) -> u8 {
        match self {
            AccessSize::Byte => size::B,
            AccessSize::Half => size::H,
            AccessSize::Word => size::W,
            AccessSize::Double => size::DW,
        }
    }
}

/// A single eBPF instruction in its canonical (unpacked) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Insn {
    /// Opcode byte.
    pub opcode: u8,
    /// Destination register (0–10).
    pub dst: u8,
    /// Source register (0–10).
    pub src: u8,
    /// Signed 16-bit offset (jump target delta or memory displacement).
    pub off: i16,
    /// Signed 32-bit immediate.
    pub imm: i32,
}

impl Insn {
    /// The instruction class (lowest 3 bits of the opcode).
    pub fn class(&self) -> u8 {
        self.opcode & 0x07
    }

    /// Whether this is the first slot of a two-slot `lddw` instruction.
    pub fn is_lddw(&self) -> bool {
        self.opcode == (class::LD | mode::IMM | size::DW)
    }

    /// Encodes the instruction into its 8-byte wire form (little-endian, as
    /// the kernel and LLVM emit it).
    pub fn encode(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0] = self.opcode;
        out[1] = (self.src << 4) | (self.dst & 0x0f);
        out[2..4].copy_from_slice(&self.off.to_le_bytes());
        out[4..8].copy_from_slice(&self.imm.to_le_bytes());
        out
    }

    /// Decodes an instruction from its 8-byte wire form.
    pub fn decode(bytes: &[u8]) -> Result<Insn> {
        if bytes.len() < 8 {
            return Err(Error::Decode("instruction shorter than 8 bytes".into()));
        }
        Ok(Insn {
            opcode: bytes[0],
            dst: bytes[1] & 0x0f,
            src: bytes[1] >> 4,
            off: i16::from_le_bytes([bytes[2], bytes[3]]),
            imm: i32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        })
    }

    // ---- constructors -----------------------------------------------------

    /// `dst = imm` (64-bit move of a 32-bit sign-extended immediate).
    pub fn mov64_imm(dst: u8, imm: i32) -> Insn {
        Insn { opcode: class::ALU64 | src::K | alu::MOV, dst, src: 0, off: 0, imm }
    }

    /// `dst = src` (64-bit register move).
    pub fn mov64_reg(dst: u8, src_reg: u8) -> Insn {
        Insn { opcode: class::ALU64 | src::X | alu::MOV, dst, src: src_reg, off: 0, imm: 0 }
    }

    /// `w(dst) = imm` (32-bit move, upper half zeroed).
    pub fn mov32_imm(dst: u8, imm: i32) -> Insn {
        Insn { opcode: class::ALU | src::K | alu::MOV, dst, src: 0, off: 0, imm }
    }

    /// `w(dst) = w(src)` (32-bit register move, upper half zeroed).
    pub fn mov32_reg(dst: u8, src_reg: u8) -> Insn {
        Insn { opcode: class::ALU | src::X | alu::MOV, dst, src: src_reg, off: 0, imm: 0 }
    }

    /// 64-bit ALU operation with an immediate operand.
    pub fn alu64_imm(op: u8, dst: u8, imm: i32) -> Insn {
        Insn { opcode: class::ALU64 | src::K | op, dst, src: 0, off: 0, imm }
    }

    /// 64-bit ALU operation with a register operand.
    pub fn alu64_reg(op: u8, dst: u8, src_reg: u8) -> Insn {
        Insn { opcode: class::ALU64 | src::X | op, dst, src: src_reg, off: 0, imm: 0 }
    }

    /// 32-bit ALU operation with an immediate operand.
    pub fn alu32_imm(op: u8, dst: u8, imm: i32) -> Insn {
        Insn { opcode: class::ALU | src::K | op, dst, src: 0, off: 0, imm }
    }

    /// 32-bit ALU operation with a register operand.
    pub fn alu32_reg(op: u8, dst: u8, src_reg: u8) -> Insn {
        Insn { opcode: class::ALU | src::X | op, dst, src: src_reg, off: 0, imm: 0 }
    }

    /// `dst = *(size *)(src + off)`.
    pub fn load(sz: AccessSize, dst: u8, src_reg: u8, off: i16) -> Insn {
        Insn { opcode: class::LDX | mode::MEM | sz.to_bits(), dst, src: src_reg, off, imm: 0 }
    }

    /// `*(size *)(dst + off) = src`.
    pub fn store_reg(sz: AccessSize, dst: u8, src_reg: u8, off: i16) -> Insn {
        Insn { opcode: class::STX | mode::MEM | sz.to_bits(), dst, src: src_reg, off, imm: 0 }
    }

    /// `*(size *)(dst + off) = imm`.
    pub fn store_imm(sz: AccessSize, dst: u8, off: i16, imm: i32) -> Insn {
        Insn { opcode: class::ST | mode::MEM | sz.to_bits(), dst, src: 0, off, imm }
    }

    /// First slot of `dst = imm64`; must be followed by [`Insn::lddw_hi`].
    pub fn lddw_lo(dst: u8, imm64: u64) -> Insn {
        Insn { opcode: class::LD | mode::IMM | size::DW, dst, src: 0, off: 0, imm: imm64 as u32 as i32 }
    }

    /// Second slot of `dst = imm64`.
    pub fn lddw_hi(imm64: u64) -> Insn {
        Insn { opcode: 0, dst: 0, src: 0, off: 0, imm: (imm64 >> 32) as u32 as i32 }
    }

    /// Conditional or unconditional 64-bit jump with an immediate operand.
    pub fn jmp_imm(op: u8, dst: u8, imm: i32, off: i16) -> Insn {
        Insn { opcode: class::JMP | src::K | op, dst, src: 0, off, imm }
    }

    /// Conditional 64-bit jump comparing two registers.
    pub fn jmp_reg(op: u8, dst: u8, src_reg: u8, off: i16) -> Insn {
        Insn { opcode: class::JMP | src::X | op, dst, src: src_reg, off, imm: 0 }
    }

    /// Conditional 32-bit jump with an immediate operand.
    pub fn jmp32_imm(op: u8, dst: u8, imm: i32, off: i16) -> Insn {
        Insn { opcode: class::JMP32 | src::K | op, dst, src: 0, off, imm }
    }

    /// Unconditional jump by `off` instructions.
    pub fn ja(off: i16) -> Insn {
        Insn { opcode: class::JMP | jmp::JA, dst: 0, src: 0, off, imm: 0 }
    }

    /// Call the helper with the given numeric id.
    pub fn call(helper_id: u32) -> Insn {
        Insn { opcode: class::JMP | jmp::CALL, dst: 0, src: 0, off: 0, imm: helper_id as i32 }
    }

    /// Return from the program; r0 holds the return value.
    pub fn exit() -> Insn {
        Insn { opcode: class::JMP | jmp::EXIT, dst: 0, src: 0, off: 0, imm: 0 }
    }

    /// Byte-swap the low `bits` bits of `dst` to big-endian (`be16`/`be32`/`be64`).
    pub fn to_be(dst: u8, bits: i32) -> Insn {
        Insn { opcode: class::ALU | src::X | alu::END, dst, src: 0, off: 0, imm: bits }
    }

    /// Byte-swap the low `bits` bits of `dst` to little-endian.
    pub fn to_le(dst: u8, bits: i32) -> Insn {
        Insn { opcode: class::ALU | src::K | alu::END, dst, src: 0, off: 0, imm: bits }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::disasm::disassemble_insn(self))
    }
}

/// Encodes a whole program into its byte representation.
pub fn encode_program(insns: &[Insn]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insns.len() * 8);
    for insn in insns {
        out.extend_from_slice(&insn.encode());
    }
    out
}

/// Decodes a byte buffer into instructions. The length must be a multiple of
/// eight bytes.
pub fn decode_program(bytes: &[u8]) -> Result<Vec<Insn>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(Error::Decode("program length is not a multiple of 8".into()));
    }
    bytes.chunks_exact(8).map(Insn::decode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let insns = vec![
            Insn::mov64_imm(0, -1),
            Insn::mov64_reg(6, 1),
            Insn::load(AccessSize::Word, 2, 6, 16),
            Insn::store_imm(AccessSize::Byte, 10, -8, 0x7f),
            Insn::jmp_imm(jmp::JEQ, 2, 42, 3),
            Insn::call(5),
            Insn::exit(),
        ];
        for insn in insns {
            assert_eq!(Insn::decode(&insn.encode()).unwrap(), insn);
        }
    }

    #[test]
    fn program_roundtrip() {
        let prog = vec![Insn::mov64_imm(0, 0), Insn::exit()];
        let bytes = encode_program(&prog);
        assert_eq!(bytes.len(), 16);
        assert_eq!(decode_program(&bytes).unwrap(), prog);
        assert!(decode_program(&bytes[..12]).is_err());
    }

    #[test]
    fn lddw_occupies_two_slots() {
        let value = 0xdead_beef_cafe_f00du64;
        let lo = Insn::lddw_lo(3, value);
        let hi = Insn::lddw_hi(value);
        assert!(lo.is_lddw());
        assert_eq!(lo.imm as u32, 0xcafe_f00d);
        assert_eq!(hi.imm as u32, 0xdead_beef);
    }

    #[test]
    fn class_extraction() {
        assert_eq!(Insn::mov64_imm(0, 1).class(), class::ALU64);
        assert_eq!(Insn::mov32_imm(0, 1).class(), class::ALU);
        assert_eq!(Insn::exit().class(), class::JMP);
        assert_eq!(Insn::load(AccessSize::Byte, 0, 1, 0).class(), class::LDX);
    }

    #[test]
    fn access_size_bits_roundtrip() {
        for sz in [AccessSize::Byte, AccessSize::Half, AccessSize::Word, AccessSize::Double] {
            assert_eq!(AccessSize::from_opcode(sz.to_bits()), sz);
        }
        assert_eq!(AccessSize::Byte.bytes(), 1);
        assert_eq!(AccessSize::Double.bytes(), 8);
    }

    #[test]
    fn registers_are_packed_in_one_byte() {
        let insn = Insn::mov64_reg(3, 7);
        let enc = insn.encode();
        assert_eq!(enc[1], (7 << 4) | 3);
    }

    #[test]
    fn decode_rejects_short_slice() {
        assert!(Insn::decode(&[0u8; 7]).is_err());
    }
}
