//! The bytecode interpreter.
//!
//! This engine mirrors the kernel's `___bpf_prog_run` interpreter loop: the
//! program is kept in its 8-byte wire encoding and every step fetches,
//! decodes, validates and executes one instruction, checking the
//! instruction budget as it goes. It is the execution mode the paper
//! benchmarks when the JIT compiler is disabled (the "Add TLV no JIT" bar
//! of Figure 2 and the Turris Omnia ARM32 case of §4.2).

use crate::error::{Error, Result};
use crate::helpers::HelperRegistry;
use crate::insn::{class, encode_program, jmp, Insn};
use crate::program::LoadedProgram;
use crate::vm::{execute_insn, Flow, HelperApi, RunContext, RunState};

/// A program stored in wire form, ready for interpretation.
#[derive(Debug, Clone)]
pub struct InterpreterImage {
    raw: Vec<u8>,
    insn_count: usize,
}

impl InterpreterImage {
    /// Encodes a loaded program into its interpretable image.
    pub fn new(loaded: &LoadedProgram) -> Self {
        let raw = encode_program(&loaded.program.insns);
        InterpreterImage { insn_count: loaded.program.insns.len(), raw }
    }

    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.insn_count
    }

    /// Whether the image holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insn_count == 0
    }

    fn fetch(&self, pc: usize) -> Result<Insn> {
        if pc >= self.insn_count {
            return Err(Error::runtime(pc, "program counter out of bounds"));
        }
        Insn::decode(&self.raw[pc * 8..pc * 8 + 8])
    }
}

/// Runs `image` to completion and returns r0.
pub fn run(
    image: &InterpreterImage,
    loaded: &LoadedProgram,
    helpers: &HelperRegistry,
    rc: &mut RunContext<'_>,
) -> Result<u64> {
    let mut state = RunState::new(rc.ctx.len());
    run_with_state(image, loaded, helpers, rc, &mut state)
}

/// Runs `image` with a caller-provided state (so callers can inspect the
/// registers or set a custom instruction budget).
///
/// Helper calls dispatch through the program's **load-time** helper table
/// ([`LoadedProgram::helper_table`]), exactly like the JIT — helpers are
/// fixed at verification, as in the kernel, so the two engines cannot
/// diverge when a caller runs a program under a different registry than it
/// was loaded with.
pub fn run_with_state(
    image: &InterpreterImage,
    loaded: &LoadedProgram,
    helpers: &HelperRegistry,
    rc: &mut RunContext<'_>,
    state: &mut RunState,
) -> Result<u64> {
    let mut pc = 0usize;
    loop {
        let insn = image.fetch(pc)?;
        let is_call =
            (insn.class() == class::JMP || insn.class() == class::JMP32) && insn.opcode & 0xf0 == jmp::CALL;
        if is_call {
            state.insn_executed += 1;
            if state.insn_executed > state.insn_budget {
                return Err(Error::runtime(pc, "instruction budget exceeded"));
            }
            let id = insn.imm as u32;
            let desc = loaded
                .helper_index(id)
                .and_then(|idx| loaded.helper_table().get(idx as usize))
                .ok_or_else(|| Error::runtime(pc, format!("unknown helper {id}")))?;
            let args = [state.regs[1], state.regs[2], state.regs[3], state.regs[4], state.regs[5]];
            let ret = {
                let mut api = HelperApi { state, rc, maps: &loaded.maps };
                (desc.func)(&mut api, args)
            };
            state.regs[0] = ret as u64;
            pc += 1;
            continue;
        }
        let next = if insn.is_lddw() { Some(image.fetch(pc + 1)?) } else { None };
        match execute_insn(state, rc, &loaded.maps, helpers, &insn, next.as_ref(), pc)? {
            Flow::Next => pc += 1,
            Flow::SkipOne => pc += 2,
            Flow::Branch(delta) => {
                let target = pc as i64 + 1 + delta;
                if target < 0 || target as usize >= image.len() {
                    return Err(Error::runtime(pc, "jump target out of bounds"));
                }
                pc = target as usize;
            }
            Flow::Exit => return Ok(state.regs[0]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::HelperRegistry;
    use crate::insn::{alu, jmp, AccessSize, Insn};
    use crate::program::{load, Program, ProgramType};
    use crate::vm::{NullEnv, PKT_BASE};
    use std::collections::HashMap;

    fn run_insns(insns: Vec<Insn>, packet: &mut Vec<u8>) -> Result<u64> {
        let prog = Program::new("test", ProgramType::SocketFilter, insns);
        let helpers = HelperRegistry::with_base_helpers();
        let loaded = load(prog, &HashMap::new(), &helpers).expect("verifier");
        let image = InterpreterImage::new(&loaded);
        let mut ctx = vec![0u8; 32];
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet, env: &mut env };
        run(&image, &loaded, &helpers, &mut rc)
    }

    #[test]
    fn returns_immediate() {
        let mut pkt = vec![0u8; 8];
        let r = run_insns(vec![Insn::mov64_imm(0, 1234), Insn::exit()], &mut pkt).unwrap();
        assert_eq!(r, 1234);
    }

    #[test]
    fn arithmetic_loopless_program() {
        // r0 = (7 * 6) - 2 = 40; r0 += 2 -> 42
        let mut pkt = vec![0u8; 8];
        let insns = vec![
            Insn::mov64_imm(1, 7),
            Insn::mov64_imm(2, 6),
            Insn::alu64_reg(alu::MUL, 1, 2),
            Insn::mov64_reg(0, 1),
            Insn::alu64_imm(alu::SUB, 0, 2),
            Insn::alu64_imm(alu::ADD, 0, 2),
            Insn::exit(),
        ];
        assert_eq!(run_insns(insns, &mut pkt).unwrap(), 42);
    }

    #[test]
    fn conditional_branch_and_packet_read() {
        // Return the first packet byte if it equals 0x60, else 0. The packet
        // pointer is loaded from the LWT context's `data` field, as real
        // programs do.
        let insns = vec![
            Insn::load(AccessSize::Double, 2, 1, 0),
            Insn::load(AccessSize::Byte, 3, 2, 0),
            Insn::mov64_imm(0, 0),
            Insn::jmp_imm(jmp::JNE, 3, 0x60, 1),
            Insn::mov64_reg(0, 3),
            Insn::exit(),
        ];
        let run_lwt = |insns: Vec<Insn>, pkt: &mut Vec<u8>| -> u64 {
            let prog = Program::new("pkt", ProgramType::LwtXmit, insns);
            let helpers = HelperRegistry::with_base_helpers();
            let loaded = load(prog, &HashMap::new(), &helpers).expect("verifier");
            let image = InterpreterImage::new(&loaded);
            let mut ctx = vec![0u8; 32];
            ctx[0..8].copy_from_slice(&PKT_BASE.to_le_bytes());
            ctx[8..16].copy_from_slice(&(PKT_BASE + pkt.len() as u64).to_le_bytes());
            let mut env = NullEnv;
            let mut rc = RunContext { ctx: &mut ctx, packet: pkt, env: &mut env };
            run(&image, &loaded, &helpers, &mut rc).unwrap()
        };
        let mut pkt = vec![0x60u8, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(run_lwt(insns.clone(), &mut pkt), 0x60);
        let mut pkt2 = vec![0x45u8, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(run_lwt(insns, &mut pkt2), 0);
    }

    #[test]
    fn stack_store_and_load() {
        let mut pkt = vec![0u8; 8];
        let insns = vec![
            Insn::store_imm(AccessSize::Double, 10, -8, 0x1122),
            Insn::load(AccessSize::Double, 0, 10, -8),
            Insn::exit(),
        ];
        assert_eq!(run_insns(insns, &mut pkt).unwrap(), 0x1122);
    }

    #[test]
    fn lddw_loads_64_bit_immediates() {
        let mut pkt = vec![0u8; 8];
        let value = 0x1234_5678_9abc_def0u64;
        let insns = vec![Insn::lddw_lo(0, value), Insn::lddw_hi(value), Insn::exit()];
        assert_eq!(run_insns(insns, &mut pkt).unwrap(), value);
    }

    #[test]
    fn byte_swap_to_network_order() {
        let mut pkt = vec![0u8; 8];
        let insns = vec![Insn::mov64_imm(0, 0x1234), Insn::to_be(0, 16), Insn::exit()];
        assert_eq!(run_insns(insns, &mut pkt).unwrap(), 0x3412);
    }

    #[test]
    fn helper_call_ktime() {
        let mut pkt = vec![0u8; 8];
        let insns = vec![Insn::call(crate::helpers::ids::KTIME_GET_NS), Insn::exit()];
        // NullEnv returns 0 for ktime.
        assert_eq!(run_insns(insns, &mut pkt).unwrap(), 0);
    }
}
