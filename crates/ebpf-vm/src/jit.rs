//! The pre-decoded "JIT" engine.
//!
//! A faithful machine-code JIT is out of scope for this reproduction (and
//! would require unsafe code); instead this module does what the kernel JIT
//! does conceptually: it removes the per-instruction fetch/decode/validate
//! work from the hot path. A verified program is compiled once into a
//! vector of [`MicroOp`]s with
//!
//! * operand fields already extracted and sign-extended,
//! * branch targets resolved to absolute instruction indices,
//! * `lddw` pairs fused into a single operation,
//! * no per-step register-index or budget checks (the verifier already
//!   guarantees termination and register validity).
//!
//! The speed difference between [`run`] and the interpreter is what the
//! workspace reports wherever the paper compares JIT and non-JIT numbers
//! (Figure 2's "Add TLV no JIT" bar, §3.2's ÷1.8 factor, §4.2's ARM32
//! discussion).

use crate::error::{Error, Result};
use crate::helpers::{HelperFn, HelperRegistry};
use crate::insn::{alu, class, jmp, src, AccessSize, Insn};
use crate::program::LoadedProgram;
use crate::vm::{jump_taken, load_scalar, store_scalar, HelperApi, RunContext, RunState};

/// Comparison operand of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Immediate operand (already sign-extended to 64 bits).
    Imm(u64),
    /// Register operand.
    Reg(u8),
}

/// A single pre-decoded operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// ALU operation with an immediate operand.
    AluImm {
        /// Operation code (the `alu::*` constants).
        op: u8,
        /// 64-bit (`true`) or 32-bit (`false`) semantics.
        is64: bool,
        /// Destination register.
        dst: u8,
        /// Sign-extended immediate.
        imm: u64,
    },
    /// ALU operation with a register operand.
    AluReg {
        /// Operation code (the `alu::*` constants).
        op: u8,
        /// 64-bit (`true`) or 32-bit (`false`) semantics.
        is64: bool,
        /// Destination register.
        dst: u8,
        /// Source register.
        src: u8,
    },
    /// Arithmetic negation.
    Neg {
        /// 64-bit (`true`) or 32-bit (`false`) semantics.
        is64: bool,
        /// Destination register.
        dst: u8,
    },
    /// Byte-swap.
    ByteSwap {
        /// Destination register.
        dst: u8,
        /// Width in bits (16, 32 or 64).
        bits: u8,
        /// Swap to big-endian (`true`) or little-endian (`false`).
        to_be: bool,
    },
    /// Load a 64-bit immediate (fused `lddw`).
    LoadImm64 {
        /// Destination register.
        dst: u8,
        /// The immediate.
        imm: u64,
    },
    /// Memory load.
    Load {
        /// Access width.
        size: AccessSize,
        /// Destination register.
        dst: u8,
        /// Base-address register.
        src: u8,
        /// Displacement.
        off: i16,
    },
    /// Memory store of a register.
    StoreReg {
        /// Access width.
        size: AccessSize,
        /// Base-address register.
        dst: u8,
        /// Value register.
        src: u8,
        /// Displacement.
        off: i16,
    },
    /// Memory store of an immediate.
    StoreImm {
        /// Access width.
        size: AccessSize,
        /// Base-address register.
        dst: u8,
        /// Displacement.
        off: i16,
        /// Value.
        imm: u64,
    },
    /// Unconditional jump to an absolute micro-op index.
    Jump {
        /// Target index.
        target: u32,
    },
    /// Conditional jump to an absolute micro-op index.
    JumpIf {
        /// Comparison code (the `jmp::*` constants).
        op: u8,
        /// 64-bit (`true`) or 32-bit (`false`) comparison.
        is64: bool,
        /// Left-hand register.
        dst: u8,
        /// Right-hand operand.
        rhs: Operand,
        /// Target index when the condition holds.
        target: u32,
    },
    /// Helper call, pre-resolved at compile time to an index into the
    /// program's dense helper table
    /// ([`LoadedProgram::helper_table`]) — the hot path never looks a
    /// helper id up again.
    Call {
        /// Index into the loaded program's helper table.
        idx: u32,
        /// Helper id, kept for diagnostics.
        id: u32,
    },
    /// Program exit.
    Exit,
    /// Placeholder for the second slot of an `lddw`; never executed.
    Nop,
}

impl MicroOp {
    /// Calls `f` with every BPF register this op reads or writes — the
    /// liveness metadata the native tier's register allocator consumes. A
    /// helper call mentions `r0`–`r5` (arguments and return value), `Exit`
    /// mentions `r0`.
    pub fn for_each_reg(&self, mut f: impl FnMut(u8)) {
        match *self {
            MicroOp::AluImm { dst, .. }
            | MicroOp::Neg { dst, .. }
            | MicroOp::ByteSwap { dst, .. }
            | MicroOp::LoadImm64 { dst, .. }
            | MicroOp::StoreImm { dst, .. } => f(dst),
            MicroOp::AluReg { dst, src, .. }
            | MicroOp::Load { dst, src, .. }
            | MicroOp::StoreReg { dst, src, .. } => {
                f(dst);
                f(src);
            }
            MicroOp::JumpIf { dst, rhs, .. } => {
                f(dst);
                if let Operand::Reg(src) = rhs {
                    f(src);
                }
            }
            MicroOp::Call { .. } => {
                for reg in 0..6 {
                    f(reg);
                }
            }
            MicroOp::Exit => f(0),
            MicroOp::Jump { .. } | MicroOp::Nop => {}
        }
    }
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct JitProgram {
    ops: Vec<MicroOp>,
}

impl JitProgram {
    /// Number of micro-ops (equal to the instruction count; `lddw` second
    /// slots become [`MicroOp::Nop`]).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The micro-ops, for inspection in tests and the disassembler.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }
}

/// Compiles a verified program into micro-ops.
pub fn compile(loaded: &LoadedProgram) -> Result<JitProgram> {
    let insns = &loaded.program.insns;
    let mut ops = Vec::with_capacity(insns.len());
    let mut skip_next = false;
    for (pc, insn) in insns.iter().enumerate() {
        if skip_next {
            ops.push(MicroOp::Nop);
            skip_next = false;
            continue;
        }
        let op = compile_insn(loaded, insn, insns.get(pc + 1), pc, insns.len())?;
        if matches!(op, MicroOp::LoadImm64 { .. }) {
            skip_next = true;
        }
        ops.push(op);
    }
    Ok(JitProgram { ops })
}

fn compile_insn(
    loaded: &LoadedProgram,
    insn: &Insn,
    next: Option<&Insn>,
    pc: usize,
    len: usize,
) -> Result<MicroOp> {
    let branch_target = |off: i16| -> Result<u32> {
        let target = pc as i64 + 1 + i64::from(off);
        if target < 0 || target as usize >= len {
            return Err(Error::verifier(pc, "jump target out of bounds"));
        }
        Ok(target as u32)
    };
    let op = match insn.class() {
        class::ALU | class::ALU64 => {
            let is64 = insn.class() == class::ALU64;
            let aluop = insn.opcode & 0xf0;
            if aluop == alu::NEG {
                MicroOp::Neg { is64, dst: insn.dst }
            } else if aluop == alu::END {
                MicroOp::ByteSwap { dst: insn.dst, bits: insn.imm as u8, to_be: insn.opcode & src::X != 0 }
            } else if insn.opcode & src::X != 0 {
                MicroOp::AluReg { op: aluop, is64, dst: insn.dst, src: insn.src }
            } else {
                MicroOp::AluImm { op: aluop, is64, dst: insn.dst, imm: insn.imm as i64 as u64 }
            }
        }
        class::LD => {
            if !insn.is_lddw() {
                return Err(Error::verifier(pc, "unsupported LD mode"));
            }
            let hi = next.ok_or_else(|| Error::verifier(pc, "lddw missing second slot"))?;
            let imm = (u64::from(hi.imm as u32) << 32) | u64::from(insn.imm as u32);
            MicroOp::LoadImm64 { dst: insn.dst, imm }
        }
        class::LDX => MicroOp::Load {
            size: AccessSize::from_opcode(insn.opcode),
            dst: insn.dst,
            src: insn.src,
            off: insn.off,
        },
        class::STX => MicroOp::StoreReg {
            size: AccessSize::from_opcode(insn.opcode),
            dst: insn.dst,
            src: insn.src,
            off: insn.off,
        },
        class::ST => MicroOp::StoreImm {
            size: AccessSize::from_opcode(insn.opcode),
            dst: insn.dst,
            off: insn.off,
            imm: insn.imm as i64 as u64,
        },
        class::JMP | class::JMP32 => {
            let is64 = insn.class() == class::JMP;
            match insn.opcode & 0xf0 {
                jmp::CALL => {
                    let id = insn.imm as u32;
                    let idx = loaded
                        .helper_index(id)
                        .ok_or_else(|| Error::verifier(pc, format!("unknown helper {id}")))?;
                    MicroOp::Call { idx, id }
                }
                jmp::EXIT => MicroOp::Exit,
                jmp::JA => MicroOp::Jump { target: branch_target(insn.off)? },
                cond => {
                    let rhs = if insn.opcode & src::X != 0 {
                        Operand::Reg(insn.src)
                    } else {
                        Operand::Imm(insn.imm as i64 as u64)
                    };
                    MicroOp::JumpIf { op: cond, is64, dst: insn.dst, rhs, target: branch_target(insn.off)? }
                }
            }
        }
        other => return Err(Error::verifier(pc, format!("unknown instruction class {other}"))),
    };
    Ok(op)
}

fn alu_apply(op: u8, is64: bool, dst: u64, rhs: u64) -> u64 {
    let value = match op {
        alu::ADD => dst.wrapping_add(rhs),
        alu::SUB => dst.wrapping_sub(rhs),
        alu::MUL => dst.wrapping_mul(rhs),
        alu::DIV => {
            if is64 {
                dst.checked_div(rhs).unwrap_or(0)
            } else {
                (dst as u32).checked_div(rhs as u32).map_or(0, u64::from)
            }
        }
        alu::MOD => {
            if is64 {
                if rhs == 0 {
                    dst
                } else {
                    dst % rhs
                }
            } else if rhs as u32 == 0 {
                dst
            } else {
                u64::from(dst as u32 % rhs as u32)
            }
        }
        alu::OR => dst | rhs,
        alu::AND => dst & rhs,
        alu::XOR => dst ^ rhs,
        alu::LSH => {
            if is64 {
                dst.wrapping_shl(rhs as u32)
            } else {
                u64::from((dst as u32).wrapping_shl(rhs as u32))
            }
        }
        alu::RSH => {
            if is64 {
                dst.wrapping_shr(rhs as u32)
            } else {
                u64::from((dst as u32).wrapping_shr(rhs as u32))
            }
        }
        alu::ARSH => {
            if is64 {
                (dst as i64).wrapping_shr(rhs as u32) as u64
            } else {
                u64::from((dst as i32).wrapping_shr(rhs as u32) as u32)
            }
        }
        alu::MOV => rhs,
        _ => dst,
    };
    if is64 {
        value
    } else {
        u64::from(value as u32)
    }
}

/// Runs a compiled program and returns r0.
pub fn run(
    compiled: &JitProgram,
    loaded: &LoadedProgram,
    helpers: &HelperRegistry,
    rc: &mut RunContext<'_>,
) -> Result<u64> {
    let mut state = RunState::new(rc.ctx.len());
    run_with_state(compiled, loaded, helpers, rc, &mut state)
}

/// Runs a compiled program with a caller-provided state. The registry is
/// unused here — helper calls dispatch through the program's load-time
/// table — but kept in the signature so the two engines stay
/// interchangeable.
pub fn run_with_state(
    compiled: &JitProgram,
    loaded: &LoadedProgram,
    _helpers: &HelperRegistry,
    rc: &mut RunContext<'_>,
    state: &mut RunState,
) -> Result<u64> {
    let ops = &compiled.ops;
    let mut pc = 0usize;
    loop {
        let op = ops.get(pc).ok_or_else(|| Error::runtime(pc, "program counter out of bounds"))?;
        match op {
            MicroOp::AluImm { op, is64, dst, imm } => {
                let d = usize::from(*dst);
                state.regs[d] = alu_apply(*op, *is64, state.regs[d], *imm);
                pc += 1;
            }
            MicroOp::AluReg { op, is64, dst, src } => {
                let d = usize::from(*dst);
                let rhs = state.regs[usize::from(*src)];
                state.regs[d] = alu_apply(*op, *is64, state.regs[d], rhs);
                pc += 1;
            }
            MicroOp::Neg { is64, dst } => {
                let d = usize::from(*dst);
                state.regs[d] = if *is64 {
                    (state.regs[d] as i64).wrapping_neg() as u64
                } else {
                    u64::from((state.regs[d] as i32).wrapping_neg() as u32)
                };
                pc += 1;
            }
            MicroOp::ByteSwap { dst, bits, to_be } => {
                let d = usize::from(*dst);
                let value = state.regs[d];
                state.regs[d] = match (bits, to_be) {
                    (16, true) => u64::from((value as u16).swap_bytes()),
                    (16, false) => u64::from(value as u16),
                    (32, true) => u64::from((value as u32).swap_bytes()),
                    (32, false) => u64::from(value as u32),
                    (64, true) => value.swap_bytes(),
                    _ => value,
                };
                pc += 1;
            }
            MicroOp::LoadImm64 { dst, imm } => {
                state.regs[usize::from(*dst)] = *imm;
                pc += 2;
            }
            MicroOp::Load { size, dst, src, off } => {
                let addr = state.regs[usize::from(*src)].wrapping_add(*off as i64 as u64);
                state.regs[usize::from(*dst)] = load_scalar(state, rc, addr, *size).map_err(|e| at(e, pc))?;
                pc += 1;
            }
            MicroOp::StoreReg { size, dst, src, off } => {
                let addr = state.regs[usize::from(*dst)].wrapping_add(*off as i64 as u64);
                let value = state.regs[usize::from(*src)];
                store_scalar(state, rc, addr, *size, value).map_err(|e| at(e, pc))?;
                pc += 1;
            }
            MicroOp::StoreImm { size, dst, off, imm } => {
                let addr = state.regs[usize::from(*dst)].wrapping_add(*off as i64 as u64);
                store_scalar(state, rc, addr, *size, *imm).map_err(|e| at(e, pc))?;
                pc += 1;
            }
            MicroOp::Jump { target } => {
                pc = *target as usize;
            }
            MicroOp::JumpIf { op, is64, dst, rhs, target } => {
                let lhs = state.regs[usize::from(*dst)];
                let rhs = match rhs {
                    Operand::Imm(v) => *v,
                    Operand::Reg(r) => state.regs[usize::from(*r)],
                };
                if jump_taken(*op, *is64, lhs, rhs) {
                    pc = *target as usize;
                } else {
                    pc += 1;
                }
            }
            MicroOp::Call { idx, id } => {
                let desc = loaded
                    .helper_table()
                    .get(*idx as usize)
                    .ok_or_else(|| Error::runtime(pc, format!("unknown helper {id}")))?;
                let func: HelperFn = desc.func;
                let args = [state.regs[1], state.regs[2], state.regs[3], state.regs[4], state.regs[5]];
                let ret = {
                    let mut api = HelperApi { state, rc, maps: &loaded.maps };
                    (func)(&mut api, args)
                };
                state.regs[0] = ret as u64;
                pc += 1;
            }
            MicroOp::Exit => return Ok(state.regs[0]),
            MicroOp::Nop => pc += 1,
        }
        state.insn_executed += 1;
    }
}

fn at(err: Error, pc: usize) -> Error {
    match err {
        Error::Runtime { message, .. } => Error::Runtime { insn: pc, message },
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Superinstruction fusion
// ---------------------------------------------------------------------------

/// Maximum number of immediate-ALU ops fused into one chain.
pub const MAX_CHAIN: usize = 4;

/// One immediate-ALU step inside a fused superinstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainAlu {
    /// Operation code (the `alu::*` constants).
    pub op: u8,
    /// 64-bit (`true`) or 32-bit (`false`) semantics.
    pub is64: bool,
    /// Destination register.
    pub dst: u8,
    /// Sign-extended immediate.
    pub imm: u64,
}

/// A superinstruction: one dispatch covering a short straight-line run of
/// micro-ops that no branch targets in the middle of. The fused stream is
/// both an execution tier of its own (the portable fallback where native
/// code generation is unavailable) and the input the x86-64 emitter lowers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedOp {
    /// A micro-op that did not fuse with its neighbours.
    Op(MicroOp),
    /// `2..=MAX_CHAIN` consecutive immediate-ALU ops — the `lsh r7, 3;
    /// add r7, 8` style address computations End.BPF programs are full of.
    AluImmChain {
        /// Number of live entries in `ops`.
        len: u8,
        /// The chain, in program order.
        ops: [ChainAlu; MAX_CHAIN],
    },
    /// A load immediately followed by an immediate-ALU op on the loaded
    /// register (mask / extend / offset patterns).
    LoadAluImm {
        /// Access width of the load.
        size: AccessSize,
        /// Register loaded into (also the ALU destination).
        dst: u8,
        /// Base-address register.
        src: u8,
        /// Displacement.
        off: i16,
        /// The follow-on ALU step.
        alu: ChainAlu,
    },
    /// A load immediately followed by a conditional branch on the loaded
    /// register.
    LoadJumpIf {
        /// Access width of the load.
        size: AccessSize,
        /// Register loaded into (also the branch's left-hand side).
        dst: u8,
        /// Base-address register.
        src: u8,
        /// Displacement.
        off: i16,
        /// Comparison code (the `jmp::*` constants).
        op: u8,
        /// 64-bit (`true`) or 32-bit (`false`) comparison.
        is64: bool,
        /// Right-hand operand.
        rhs: Operand,
        /// Target slot when the condition holds.
        target: u32,
    },
    /// An immediate-ALU op immediately followed by a conditional branch on
    /// its destination register (the compare-and-branch idiom).
    AluImmJumpIf {
        /// The ALU step.
        alu: ChainAlu,
        /// Comparison code (the `jmp::*` constants).
        op: u8,
        /// 64-bit (`true`) or 32-bit (`false`) comparison.
        is64: bool,
        /// Right-hand operand.
        rhs: Operand,
        /// Target slot when the condition holds.
        target: u32,
    },
}

impl FusedOp {
    /// Number of micro-op slots this superinstruction covers.
    pub fn slots(&self) -> usize {
        match self {
            FusedOp::Op(MicroOp::LoadImm64 { .. }) => 2,
            FusedOp::Op(_) => 1,
            FusedOp::AluImmChain { len, .. } => usize::from(*len),
            FusedOp::LoadAluImm { .. } | FusedOp::LoadJumpIf { .. } | FusedOp::AluImmJumpIf { .. } => 2,
        }
    }
}

/// A program after the fusion pass. The op vector stays slot-aligned with
/// the micro-op stream — a superinstruction occupies the slot of its first
/// constituent and the consumed follow-on slots hold never-executed
/// placeholders — so branch targets remain valid micro-op indices.
#[derive(Debug, Clone)]
pub struct FusedProgram {
    ops: Vec<FusedOp>,
}

impl FusedProgram {
    /// Number of slots (equal to the micro-op count).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The fused ops, for inspection in tests and the disassembler.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Expands the fused stream back into the exact micro-op stream the
    /// fusion pass consumed — the round-trip the disassembler tests rely
    /// on.
    pub fn expand(&self) -> Vec<MicroOp> {
        let mut out = Vec::with_capacity(self.ops.len());
        let mut slot = 0usize;
        while slot < self.ops.len() {
            let op = &self.ops[slot];
            match op {
                FusedOp::Op(inner) => {
                    out.push(*inner);
                    if matches!(inner, MicroOp::LoadImm64 { .. }) {
                        out.push(MicroOp::Nop);
                    }
                }
                FusedOp::AluImmChain { len, ops } => {
                    for c in &ops[..usize::from(*len)] {
                        out.push(MicroOp::AluImm { op: c.op, is64: c.is64, dst: c.dst, imm: c.imm });
                    }
                }
                FusedOp::LoadAluImm { size, dst, src, off, alu } => {
                    out.push(MicroOp::Load { size: *size, dst: *dst, src: *src, off: *off });
                    out.push(MicroOp::AluImm { op: alu.op, is64: alu.is64, dst: alu.dst, imm: alu.imm });
                }
                FusedOp::LoadJumpIf { size, dst, src, off, op, is64, rhs, target } => {
                    out.push(MicroOp::Load { size: *size, dst: *dst, src: *src, off: *off });
                    out.push(MicroOp::JumpIf { op: *op, is64: *is64, dst: *dst, rhs: *rhs, target: *target });
                }
                FusedOp::AluImmJumpIf { alu, op, is64, rhs, target } => {
                    out.push(MicroOp::AluImm { op: alu.op, is64: alu.is64, dst: alu.dst, imm: alu.imm });
                    out.push(MicroOp::JumpIf {
                        op: *op,
                        is64: *is64,
                        dst: alu.dst,
                        rhs: *rhs,
                        target: *target,
                    });
                }
            }
            slot += op.slots();
        }
        out
    }
}

/// Runs the superinstruction fusion pass over a compiled micro-op stream.
///
/// Fusion is only legal when no branch lands in the middle of the fused
/// run, so the pass first computes the branch-target set and never fuses
/// across a target slot.
pub fn fuse(compiled: &JitProgram) -> FusedProgram {
    let ops = &compiled.ops;
    let mut is_target = vec![false; ops.len()];
    for op in ops {
        match op {
            MicroOp::Jump { target } | MicroOp::JumpIf { target, .. } => {
                if let Some(t) = is_target.get_mut(*target as usize) {
                    *t = true;
                }
            }
            _ => {}
        }
    }
    let chain_of = |op: &MicroOp| -> Option<ChainAlu> {
        match op {
            MicroOp::AluImm { op, is64, dst, imm } => {
                Some(ChainAlu { op: *op, is64: *is64, dst: *dst, imm: *imm })
            }
            _ => None,
        }
    };
    let mut fused = Vec::with_capacity(ops.len());
    let mut slot = 0usize;
    while slot < ops.len() {
        // `fusable(k)` — the k-th follow-on slot exists and no branch lands
        // on it.
        let fusable = |k: usize| slot + k < ops.len() && !is_target[slot + k];
        let op = ops[slot];
        let out = match op {
            MicroOp::AluImm { .. } => {
                let mut chain = [ChainAlu { op: 0, is64: false, dst: 0, imm: 0 }; MAX_CHAIN];
                chain[0] = chain_of(&op).expect("AluImm matched above");
                let mut len = 1usize;
                while len < MAX_CHAIN && fusable(len) {
                    match chain_of(&ops[slot + len]) {
                        Some(c) => {
                            chain[len] = c;
                            len += 1;
                        }
                        None => break,
                    }
                }
                if len >= 2 {
                    FusedOp::AluImmChain { len: len as u8, ops: chain }
                } else if fusable(1) {
                    match ops[slot + 1] {
                        MicroOp::JumpIf { op: jop, is64, dst, rhs, target } if dst == chain[0].dst => {
                            FusedOp::AluImmJumpIf { alu: chain[0], op: jop, is64, rhs, target }
                        }
                        _ => FusedOp::Op(op),
                    }
                } else {
                    FusedOp::Op(op)
                }
            }
            MicroOp::Load { size, dst, src, off } if fusable(1) => match ops[slot + 1] {
                MicroOp::AluImm { op: aop, is64, dst: adst, imm } if adst == dst => FusedOp::LoadAluImm {
                    size,
                    dst,
                    src,
                    off,
                    alu: ChainAlu { op: aop, is64, dst: adst, imm },
                },
                MicroOp::JumpIf { op: jop, is64, dst: jdst, rhs, target } if jdst == dst => {
                    FusedOp::LoadJumpIf { size, dst, src, off, op: jop, is64, rhs, target }
                }
                _ => FusedOp::Op(op),
            },
            other => FusedOp::Op(other),
        };
        let covered = out.slots();
        fused.push(out);
        // Consumed follow-on slots become never-executed placeholders so the
        // vector stays slot-aligned (branch targets keep their meaning).
        for _ in 1..covered {
            fused.push(FusedOp::Op(MicroOp::Nop));
        }
        slot += covered;
    }
    FusedProgram { ops: fused }
}

/// Runs a fused program with a caller-provided state — the portable
/// fallback tier on hosts without native code generation. The registry
/// parameter is unused (helper dispatch goes through the program's
/// load-time table) but kept so all engines share a shape.
pub fn run_fused_with_state(
    compiled: &FusedProgram,
    loaded: &LoadedProgram,
    _helpers: &HelperRegistry,
    rc: &mut RunContext<'_>,
    state: &mut RunState,
) -> Result<u64> {
    let ops = &compiled.ops;
    let mut pc = 0usize;
    loop {
        let op = ops.get(pc).ok_or_else(|| Error::runtime(pc, "program counter out of bounds"))?;
        match op {
            FusedOp::Op(op) => match op {
                MicroOp::AluImm { op, is64, dst, imm } => {
                    let d = usize::from(*dst);
                    state.regs[d] = alu_apply(*op, *is64, state.regs[d], *imm);
                    state.insn_executed += 1;
                    pc += 1;
                }
                MicroOp::AluReg { op, is64, dst, src } => {
                    let d = usize::from(*dst);
                    let rhs = state.regs[usize::from(*src)];
                    state.regs[d] = alu_apply(*op, *is64, state.regs[d], rhs);
                    state.insn_executed += 1;
                    pc += 1;
                }
                MicroOp::Neg { is64, dst } => {
                    let d = usize::from(*dst);
                    state.regs[d] = if *is64 {
                        (state.regs[d] as i64).wrapping_neg() as u64
                    } else {
                        u64::from((state.regs[d] as i32).wrapping_neg() as u32)
                    };
                    state.insn_executed += 1;
                    pc += 1;
                }
                MicroOp::ByteSwap { dst, bits, to_be } => {
                    let d = usize::from(*dst);
                    let value = state.regs[d];
                    state.regs[d] = match (bits, to_be) {
                        (16, true) => u64::from((value as u16).swap_bytes()),
                        (16, false) => u64::from(value as u16),
                        (32, true) => u64::from((value as u32).swap_bytes()),
                        (32, false) => u64::from(value as u32),
                        (64, true) => value.swap_bytes(),
                        _ => value,
                    };
                    state.insn_executed += 1;
                    pc += 1;
                }
                MicroOp::LoadImm64 { dst, imm } => {
                    state.regs[usize::from(*dst)] = *imm;
                    state.insn_executed += 1;
                    pc += 2;
                }
                MicroOp::Load { size, dst, src, off } => {
                    let addr = state.regs[usize::from(*src)].wrapping_add(*off as i64 as u64);
                    state.regs[usize::from(*dst)] =
                        load_scalar(state, rc, addr, *size).map_err(|e| at(e, pc))?;
                    state.insn_executed += 1;
                    pc += 1;
                }
                MicroOp::StoreReg { size, dst, src, off } => {
                    let addr = state.regs[usize::from(*dst)].wrapping_add(*off as i64 as u64);
                    let value = state.regs[usize::from(*src)];
                    store_scalar(state, rc, addr, *size, value).map_err(|e| at(e, pc))?;
                    state.insn_executed += 1;
                    pc += 1;
                }
                MicroOp::StoreImm { size, dst, off, imm } => {
                    let addr = state.regs[usize::from(*dst)].wrapping_add(*off as i64 as u64);
                    store_scalar(state, rc, addr, *size, *imm).map_err(|e| at(e, pc))?;
                    state.insn_executed += 1;
                    pc += 1;
                }
                MicroOp::Jump { target } => {
                    state.insn_executed += 1;
                    pc = *target as usize;
                }
                MicroOp::JumpIf { op, is64, dst, rhs, target } => {
                    let lhs = state.regs[usize::from(*dst)];
                    let rhs = match rhs {
                        Operand::Imm(v) => *v,
                        Operand::Reg(r) => state.regs[usize::from(*r)],
                    };
                    state.insn_executed += 1;
                    if jump_taken(*op, *is64, lhs, rhs) {
                        pc = *target as usize;
                    } else {
                        pc += 1;
                    }
                }
                MicroOp::Call { idx, id } => {
                    let desc = loaded
                        .helper_table()
                        .get(*idx as usize)
                        .ok_or_else(|| Error::runtime(pc, format!("unknown helper {id}")))?;
                    let func: HelperFn = desc.func;
                    let args = [state.regs[1], state.regs[2], state.regs[3], state.regs[4], state.regs[5]];
                    let ret = {
                        let mut api = HelperApi { state, rc, maps: &loaded.maps };
                        (func)(&mut api, args)
                    };
                    state.regs[0] = ret as u64;
                    state.insn_executed += 1;
                    pc += 1;
                }
                MicroOp::Exit => return Ok(state.regs[0]),
                MicroOp::Nop => pc += 1,
            },
            FusedOp::AluImmChain { len, ops: chain } => {
                for c in &chain[..usize::from(*len)] {
                    let d = usize::from(c.dst);
                    state.regs[d] = alu_apply(c.op, c.is64, state.regs[d], c.imm);
                }
                state.insn_executed += u64::from(*len);
                pc += usize::from(*len);
            }
            FusedOp::LoadAluImm { size, dst, src, off, alu } => {
                let addr = state.regs[usize::from(*src)].wrapping_add(*off as i64 as u64);
                state.regs[usize::from(*dst)] = load_scalar(state, rc, addr, *size).map_err(|e| at(e, pc))?;
                let d = usize::from(alu.dst);
                state.regs[d] = alu_apply(alu.op, alu.is64, state.regs[d], alu.imm);
                state.insn_executed += 2;
                pc += 2;
            }
            FusedOp::LoadJumpIf { size, dst, src, off, op, is64, rhs, target } => {
                let addr = state.regs[usize::from(*src)].wrapping_add(*off as i64 as u64);
                let lhs = load_scalar(state, rc, addr, *size).map_err(|e| at(e, pc))?;
                state.regs[usize::from(*dst)] = lhs;
                let rhs = match rhs {
                    Operand::Imm(v) => *v,
                    Operand::Reg(r) => state.regs[usize::from(*r)],
                };
                state.insn_executed += 2;
                if jump_taken(*op, *is64, lhs, rhs) {
                    pc = *target as usize;
                } else {
                    pc += 2;
                }
            }
            FusedOp::AluImmJumpIf { alu, op, is64, rhs, target } => {
                let d = usize::from(alu.dst);
                state.regs[d] = alu_apply(alu.op, alu.is64, state.regs[d], alu.imm);
                let lhs = state.regs[d];
                let rhs = match rhs {
                    Operand::Imm(v) => *v,
                    Operand::Reg(r) => state.regs[usize::from(*r)],
                };
                state.insn_executed += 2;
                if jump_taken(*op, *is64, lhs, rhs) {
                    pc = *target as usize;
                } else {
                    pc += 2;
                }
            }
        }
    }
}

/// Convenience: the [`Flow`] type is re-exported so embedders running both
/// engines only import from one place.
pub use crate::vm::Flow as _Flow;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::HelperRegistry;
    use crate::insn::{alu, jmp, AccessSize, Insn};
    use crate::interp;
    use crate::program::{load, Program, ProgramType};
    use crate::vm::{NullEnv, RunContext, PKT_BASE};
    use std::collections::HashMap;

    fn load_prog(insns: Vec<Insn>) -> (std::sync::Arc<LoadedProgram>, HelperRegistry) {
        let helpers = HelperRegistry::with_base_helpers();
        let prog = Program::new("jit-test", ProgramType::LwtXmit, insns);
        (load(prog, &HashMap::new(), &helpers).unwrap(), helpers)
    }

    fn lwt_ctx(packet_len: usize) -> Vec<u8> {
        let mut ctx = vec![0u8; 32];
        ctx[0..8].copy_from_slice(&PKT_BASE.to_le_bytes());
        ctx[8..16].copy_from_slice(&(PKT_BASE + packet_len as u64).to_le_bytes());
        ctx
    }

    fn run_both(insns: Vec<Insn>, packet: Vec<u8>) -> (u64, u64) {
        let (loaded, helpers) = load_prog(insns);
        let compiled = compile(&loaded).unwrap();
        let image = interp::InterpreterImage::new(&loaded);

        let mut env = NullEnv;
        let mut ctx = lwt_ctx(packet.len());
        let mut pkt1 = packet.clone();
        let jit_result = {
            let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt1, env: &mut env };
            run(&compiled, &loaded, &helpers, &mut rc).unwrap()
        };
        let mut ctx2 = lwt_ctx(packet.len());
        let mut pkt2 = packet;
        let interp_result = {
            let mut rc = RunContext { ctx: &mut ctx2, packet: &mut pkt2, env: &mut env };
            interp::run(&image, &loaded, &helpers, &mut rc).unwrap()
        };
        (jit_result, interp_result)
    }

    #[test]
    fn jit_matches_interpreter_on_arithmetic() {
        let insns = vec![
            Insn::mov64_imm(1, 100),
            Insn::alu64_imm(alu::MUL, 1, 3),
            Insn::alu64_imm(alu::SUB, 1, 58),
            Insn::mov64_reg(0, 1),
            Insn::alu32_imm(alu::ADD, 0, 1),
            Insn::exit(),
        ];
        let (a, b) = run_both(insns, vec![0u8; 8]);
        assert_eq!(a, b);
        assert_eq!(a, 243);
    }

    #[test]
    fn jit_matches_interpreter_on_branches_and_memory() {
        let insns = vec![
            Insn::load(AccessSize::Double, 2, 1, 0),
            Insn::load(AccessSize::Half, 3, 2, 0),
            Insn::to_be(3, 16),
            Insn::store_reg(AccessSize::Double, 10, 3, -8),
            Insn::load(AccessSize::Double, 0, 10, -8),
            Insn::jmp_imm(jmp::JGT, 0, 0x1000, 1),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        let (a, b) = run_both(insns.clone(), vec![0x12, 0x34, 0, 0, 0, 0, 0, 0]);
        assert_eq!(a, b);
        assert_eq!(a, 0x1234);
        let (a, b) = run_both(insns, vec![0x00, 0x34, 0, 0, 0, 0, 0, 0]);
        assert_eq!(a, b);
        assert_eq!(a, 0);
    }

    #[test]
    fn compile_resolves_branch_targets() {
        let insns = vec![
            Insn::mov64_imm(0, 0),
            Insn::jmp_imm(jmp::JEQ, 0, 0, 1),
            Insn::mov64_imm(0, 1),
            Insn::exit(),
        ];
        let (loaded, _) = load_prog(insns);
        let compiled = compile(&loaded).unwrap();
        match compiled.ops()[1] {
            MicroOp::JumpIf { target, .. } => assert_eq!(target, 3),
            ref other => panic!("unexpected op {other:?}"),
        }
        assert_eq!(compiled.len(), 4);
        assert!(!compiled.is_empty());
    }

    #[test]
    fn lddw_second_slot_becomes_nop() {
        let insns = vec![Insn::lddw_lo(0, 5), Insn::lddw_hi(5), Insn::exit()];
        let (loaded, _) = load_prog(insns);
        let compiled = compile(&loaded).unwrap();
        assert_eq!(compiled.ops()[1], MicroOp::Nop);
    }

    #[test]
    fn helper_call_through_jit() {
        let insns = vec![Insn::call(crate::helpers::ids::GET_PRANDOM_U32), Insn::exit()];
        let (a, b) = run_both(insns, vec![0u8; 8]);
        assert_eq!(a, b); // NullEnv's deterministic value
    }
}
