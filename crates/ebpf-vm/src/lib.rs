//! # ebpf-vm — a user-space eBPF virtual machine
//!
//! This crate is the substrate underneath the SRv6 `End.BPF` reproduction:
//! a self-contained implementation of the eBPF execution model described in
//! §2.1 of *Leveraging eBPF for programmable network functions with IPv6
//! Segment Routing* (CoNEXT 2018).
//!
//! It provides:
//!
//! * the 64-bit RISC-like **instruction set** ([`insn`]), with an
//!   [`asm`]sembler, a [`disasm`]sembler and a typed [`builder`];
//! * a **static verifier** ([`verifier`]) enforcing the kernel-era rules the
//!   paper relies on (no loops, no invalid memory accesses, helper gating);
//! * four execution tiers ([`program::ExecTier`]): a faithful
//!   **interpreter** ([`interp`]), a pre-decoded micro-op "**JIT**"
//!   ([`jit`]), a **superinstruction-fused** stream (also [`jit`]) and a
//!   true **native x86-64** code generator ([`codegen`]), auto-selected at
//!   load time (non-x86-64 hosts fall back to the fused tier);
//! * **maps** ([`maps`]): array, hash, LPM-trie, per-CPU array and
//!   perf-event arrays, with both the program-side pointer semantics and the
//!   user-space copy semantics;
//! * **helpers** ([`helpers`]): the base kernel helpers plus a registry that
//!   embedders (the `seg6-core` crate) extend with their own, exactly as the
//!   paper added four SRv6 helpers to the kernel;
//! * a **perf-event ring buffer** ([`perf`]) for pushing data to user-space
//!   daemons.
//!
//! ## Quick example
//!
//! ```
//! use ebpf_vm::asm::assemble;
//! use ebpf_vm::helpers::HelperRegistry;
//! use ebpf_vm::program::{load, Program, ProgramType};
//! use ebpf_vm::vm::{run_program, NullEnv, RunContext};
//! use std::collections::HashMap;
//!
//! let insns = assemble("mov64 r0, 40\nadd64 r0, 2\nexit").unwrap();
//! let program = Program::new("quick", ProgramType::SocketFilter, insns);
//! let helpers = HelperRegistry::with_base_helpers();
//! let loaded = load(program, &HashMap::new(), &helpers).unwrap();
//!
//! let mut ctx = vec![0u8; 16];
//! let mut packet = vec![0u8; 64];
//! let mut env = NullEnv;
//! let mut rc = RunContext { ctx: &mut ctx, packet: &mut packet, env: &mut env };
//! assert_eq!(run_program(&loaded, &helpers, &mut rc).unwrap(), 42);
//! ```

#![warn(missing_docs)]
// Unsafe code is confined to the `codegen` module (executable-page
// management and the native-code entry point); everything else stays
// statically free of it.
#![deny(unsafe_code)]

pub mod asm;
pub mod builder;
pub mod codegen;
pub mod disasm;
pub mod error;
pub mod helpers;
pub mod insn;
pub mod interp;
pub mod jit;
pub mod maps;
pub mod perf;
pub mod program;
pub mod verifier;
pub mod vm;

pub use builder::ProgramBuilder;
pub use error::{Error, Result};
pub use helpers::{ids as helper_ids, HelperRegistry};
pub use insn::{AccessSize, Insn};
pub use maps::{
    ArrayMap, HashMap as BpfHashMap, LpmTrieMap, Map, MapHandle, MapType, PerCpuArrayMap, PerfEventArray,
    UpdateFlags, DEFAULT_NUM_CPUS,
};
pub use perf::{PerfEvent, PerfEventBuffer};
pub use program::{load, retcode, ExecTier, LoadedProgram, Program, ProgramType};
pub use verifier::{AccessFact, AccessFacts, VerifierStats};
pub use vm::{run_program, HelperApi, NullEnv, RunContext, RunState, VmEnv, CTX_BASE, PKT_BASE, STACK_BASE};
