//! eBPF maps: the persistent state shared between programs and user space.
//!
//! The paper (§2.1) relies on maps for two things: keeping state across
//! program invocations (the WRR scheduler's weights and last-chosen path)
//! and exchanging data with user-space daemons. This module implements the
//! map types the use cases need — arrays, hash maps, longest-prefix-match
//! tries, per-CPU arrays and perf-event arrays — behind a common [`Map`]
//! trait with both copy semantics (the user-space `bpf()` syscall view) and
//! pointer semantics (`bpf_map_lookup_elem` returning a value reference).

use crate::error::{Error, Result};
use crate::perf::PerfEventBuffer;
use parking_lot::RwLock;
use std::collections::HashMap as StdHashMap;
use std::sync::Arc;

/// Shared, mutable reference to a map value, handed to programs by
/// `bpf_map_lookup_elem`.
pub type ValueRef = Arc<RwLock<Vec<u8>>>;

/// Shared handle to a map.
pub type MapHandle = Arc<dyn Map>;

/// The map types implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapType {
    /// Fixed-size array indexed by a 32-bit key.
    Array,
    /// Hash map with arbitrary fixed-size keys.
    Hash,
    /// Longest-prefix-match trie (e.g. for per-destination policies).
    LpmTrie,
    /// Per-CPU array: every entry holds one independent value slot per
    /// logical CPU (worker shard), and programs transparently address the
    /// slot of the CPU they run on.
    PerCpuArray,
    /// Perf-event array used by `bpf_perf_event_output`.
    PerfEventArray,
}

/// Update flags mirroring `BPF_ANY` / `BPF_NOEXIST` / `BPF_EXIST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateFlags {
    /// Create or overwrite.
    #[default]
    Any,
    /// Only create; fail if the key exists.
    NoExist,
    /// Only overwrite; fail if the key does not exist.
    Exist,
}

/// Common interface of all maps.
pub trait Map: Send + Sync {
    /// The map's type.
    fn map_type(&self) -> MapType;
    /// Key size in bytes.
    fn key_size(&self) -> usize;
    /// Value size in bytes.
    fn value_size(&self) -> usize;
    /// Maximum number of entries.
    fn max_entries(&self) -> usize;
    /// Copy-out lookup (user-space view). For per-CPU maps this returns the
    /// concatenation of every CPU's slot, as the `bpf()` syscall does.
    fn lookup(&self, key: &[u8]) -> Option<Vec<u8>>;
    /// Reference lookup (program view, as `bpf_map_lookup_elem` returns a
    /// pointer into the value).
    fn lookup_ref(&self, key: &[u8]) -> Option<ValueRef>;
    /// Reference lookup on behalf of a program running on `cpu`. Ordinary
    /// maps have one shared slot and ignore the CPU; per-CPU maps return
    /// the slot owned by that CPU.
    fn lookup_ref_cpu(&self, key: &[u8], cpu: u32) -> Option<ValueRef> {
        let _ = cpu;
        self.lookup_ref(key)
    }
    /// Number of per-CPU slots each entry holds (1 for ordinary maps).
    fn num_cpus(&self) -> u32 {
        1
    }
    /// Insert or update an element.
    fn update(&self, key: &[u8], value: &[u8], flags: UpdateFlags) -> Result<()>;
    /// Delete an element.
    fn delete(&self, key: &[u8]) -> Result<()>;
    /// Snapshot of the current keys (user-space iteration).
    fn keys(&self) -> Vec<Vec<u8>>;
    /// The perf-event buffer, for [`MapType::PerfEventArray`] maps only.
    fn perf_buffer(&self) -> Option<Arc<PerfEventBuffer>> {
        None
    }
}

fn check_key(map: &dyn Map, key: &[u8]) -> Result<()> {
    if key.len() != map.key_size() {
        return Err(Error::Map(format!("key size mismatch: expected {}, got {}", map.key_size(), key.len())));
    }
    Ok(())
}

fn check_value(map: &dyn Map, value: &[u8]) -> Result<()> {
    if value.len() != map.value_size() {
        return Err(Error::Map(format!(
            "value size mismatch: expected {}, got {}",
            map.value_size(),
            value.len()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Array map
// ---------------------------------------------------------------------------

/// `BPF_MAP_TYPE_ARRAY`: a fixed-size array of zero-initialised values,
/// indexed by a host-endian 32-bit key. Entries can never be deleted.
pub struct ArrayMap {
    values: Vec<ValueRef>,
    value_size: usize,
}

impl ArrayMap {
    /// Creates an array map with `max_entries` zeroed values of
    /// `value_size` bytes.
    pub fn new(value_size: usize, max_entries: usize) -> Arc<Self> {
        Arc::new(ArrayMap {
            values: (0..max_entries).map(|_| Arc::new(RwLock::new(vec![0u8; value_size]))).collect(),
            value_size,
        })
    }

    /// Creates a per-CPU array map sized for [`DEFAULT_NUM_CPUS`] logical
    /// CPUs. Use [`PerCpuArrayMap::new`] to pick the CPU count explicitly.
    pub fn new_per_cpu(value_size: usize, max_entries: usize) -> Arc<PerCpuArrayMap> {
        PerCpuArrayMap::new(value_size, max_entries, DEFAULT_NUM_CPUS)
    }

    fn index(&self, key: &[u8]) -> Option<usize> {
        if key.len() != 4 {
            return None;
        }
        let idx = u32::from_ne_bytes([key[0], key[1], key[2], key[3]]) as usize;
        (idx < self.values.len()).then_some(idx)
    }
}

impl Map for ArrayMap {
    fn map_type(&self) -> MapType {
        MapType::Array
    }
    fn key_size(&self) -> usize {
        4
    }
    fn value_size(&self) -> usize {
        self.value_size
    }
    fn max_entries(&self) -> usize {
        self.values.len()
    }
    fn lookup(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.index(key).map(|i| self.values[i].read().clone())
    }
    fn lookup_ref(&self, key: &[u8]) -> Option<ValueRef> {
        self.index(key).map(|i| Arc::clone(&self.values[i]))
    }
    fn update(&self, key: &[u8], value: &[u8], flags: UpdateFlags) -> Result<()> {
        check_key(self, key)?;
        check_value(self, value)?;
        if flags == UpdateFlags::NoExist {
            return Err(Error::Map("array entries always exist".into()));
        }
        let idx = self.index(key).ok_or_else(|| Error::Map("array index out of bounds".into()))?;
        self.values[idx].write().copy_from_slice(value);
        Ok(())
    }
    fn delete(&self, _key: &[u8]) -> Result<()> {
        Err(Error::Map("array entries cannot be deleted".into()))
    }
    fn keys(&self) -> Vec<Vec<u8>> {
        (0..self.values.len() as u32).map(|i| i.to_ne_bytes().to_vec()).collect()
    }
}

// ---------------------------------------------------------------------------
// Per-CPU array map
// ---------------------------------------------------------------------------

/// Default number of logical CPUs a per-CPU map is provisioned for when the
/// embedder does not say. Large enough for any worker count the runtime
/// accepts.
pub const DEFAULT_NUM_CPUS: u32 = 64;

/// `BPF_MAP_TYPE_PERCPU_ARRAY`: a fixed-size array where every entry holds
/// one independent value slot *per logical CPU*.
///
/// A program calling `bpf_map_lookup_elem` receives a pointer to the slot
/// of the CPU it runs on ([`Map::lookup_ref_cpu`] with the environment's
/// CPU id), so concurrent workers never contend or race on shared state —
/// the property the paper's End.BPF datapath gets from the kernel and that
/// the multi-queue runtime reproduces by giving each worker shard its own
/// CPU id. User-space reads see every slot at once, as the `bpf()` syscall
/// does.
pub struct PerCpuArrayMap {
    /// `values[entry][cpu]`.
    values: Vec<Vec<ValueRef>>,
    value_size: usize,
}

impl PerCpuArrayMap {
    /// Creates a per-CPU array with `max_entries` entries of `value_size`
    /// bytes, one slot per CPU for `num_cpus` CPUs.
    pub fn new(value_size: usize, max_entries: usize, num_cpus: u32) -> Arc<Self> {
        let num_cpus = num_cpus.max(1);
        Arc::new(PerCpuArrayMap {
            values: (0..max_entries)
                .map(|_| (0..num_cpus).map(|_| Arc::new(RwLock::new(vec![0u8; value_size]))).collect())
                .collect(),
            value_size,
        })
    }

    fn index(&self, key: &[u8]) -> Option<usize> {
        if key.len() != 4 {
            return None;
        }
        let idx = u32::from_ne_bytes([key[0], key[1], key[2], key[3]]) as usize;
        (idx < self.values.len()).then_some(idx)
    }

    fn cpu_slot(&self, entry: usize, cpu: u32) -> &ValueRef {
        // Out-of-range CPU ids wrap rather than fault: programs obtain the
        // id from the environment, which the embedder already bounds, and
        // wrapping keeps the map usable if it was provisioned for fewer
        // CPUs than the runtime grew to.
        let slots = &self.values[entry];
        &slots[cpu as usize % slots.len()]
    }

    /// User-space view of one CPU's slot.
    pub fn lookup_cpu(&self, key: &[u8], cpu: u32) -> Option<Vec<u8>> {
        self.index(key).map(|i| self.cpu_slot(i, cpu).read().clone())
    }

    /// User-space update of one CPU's slot.
    pub fn update_cpu(&self, key: &[u8], cpu: u32, value: &[u8]) -> Result<()> {
        if value.len() != self.value_size {
            return Err(Error::Map(format!(
                "value size mismatch: expected {}, got {}",
                self.value_size,
                value.len()
            )));
        }
        let idx = self.index(key).ok_or_else(|| Error::Map("array index out of bounds".into()))?;
        self.cpu_slot(idx, cpu).write().copy_from_slice(value);
        Ok(())
    }
}

impl Map for PerCpuArrayMap {
    fn map_type(&self) -> MapType {
        MapType::PerCpuArray
    }
    fn key_size(&self) -> usize {
        4
    }
    fn value_size(&self) -> usize {
        self.value_size
    }
    fn max_entries(&self) -> usize {
        self.values.len()
    }
    fn num_cpus(&self) -> u32 {
        self.values.first().map_or(1, |slots| slots.len() as u32)
    }
    /// The user-space view: all CPU slots of the entry, concatenated in CPU
    /// order (the layout `bpf_map_lookup_elem` presents to the syscall).
    fn lookup(&self, key: &[u8]) -> Option<Vec<u8>> {
        let idx = self.index(key)?;
        let mut out = Vec::with_capacity(self.value_size * self.values[idx].len());
        for slot in &self.values[idx] {
            out.extend_from_slice(&slot.read());
        }
        Some(out)
    }
    fn lookup_ref(&self, key: &[u8]) -> Option<ValueRef> {
        self.lookup_ref_cpu(key, 0)
    }
    fn lookup_ref_cpu(&self, key: &[u8], cpu: u32) -> Option<ValueRef> {
        self.index(key).map(|i| Arc::clone(self.cpu_slot(i, cpu)))
    }
    /// User-space update: writes the same value into *every* CPU slot (the
    /// common initialisation pattern). Use [`PerCpuArrayMap::update_cpu`]
    /// to touch one slot.
    fn update(&self, key: &[u8], value: &[u8], flags: UpdateFlags) -> Result<()> {
        check_key(self, key)?;
        check_value(self, value)?;
        if flags == UpdateFlags::NoExist {
            return Err(Error::Map("array entries always exist".into()));
        }
        let idx = self.index(key).ok_or_else(|| Error::Map("array index out of bounds".into()))?;
        for slot in &self.values[idx] {
            slot.write().copy_from_slice(value);
        }
        Ok(())
    }
    fn delete(&self, _key: &[u8]) -> Result<()> {
        Err(Error::Map("array entries cannot be deleted".into()))
    }
    fn keys(&self) -> Vec<Vec<u8>> {
        (0..self.values.len() as u32).map(|i| i.to_ne_bytes().to_vec()).collect()
    }
}

// ---------------------------------------------------------------------------
// Hash map
// ---------------------------------------------------------------------------

/// `BPF_MAP_TYPE_HASH`: a bounded hash map with fixed-size keys and values.
pub struct HashMap {
    entries: RwLock<StdHashMap<Vec<u8>, ValueRef>>,
    key_size: usize,
    value_size: usize,
    max_entries: usize,
}

impl HashMap {
    /// Creates an empty hash map.
    pub fn new(key_size: usize, value_size: usize, max_entries: usize) -> Arc<Self> {
        Arc::new(HashMap { entries: RwLock::new(StdHashMap::new()), key_size, value_size, max_entries })
    }
}

impl Map for HashMap {
    fn map_type(&self) -> MapType {
        MapType::Hash
    }
    fn key_size(&self) -> usize {
        self.key_size
    }
    fn value_size(&self) -> usize {
        self.value_size
    }
    fn max_entries(&self) -> usize {
        self.max_entries
    }
    fn lookup(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.entries.read().get(key).map(|v| v.read().clone())
    }
    fn lookup_ref(&self, key: &[u8]) -> Option<ValueRef> {
        self.entries.read().get(key).map(Arc::clone)
    }
    fn update(&self, key: &[u8], value: &[u8], flags: UpdateFlags) -> Result<()> {
        check_key(self, key)?;
        check_value(self, value)?;
        let mut entries = self.entries.write();
        let exists = entries.contains_key(key);
        match flags {
            UpdateFlags::NoExist if exists => return Err(Error::Map("key already exists".into())),
            UpdateFlags::Exist if !exists => return Err(Error::Map("key does not exist".into())),
            _ => {}
        }
        if !exists && entries.len() >= self.max_entries {
            return Err(Error::Map("hash map is full".into()));
        }
        match entries.get(key) {
            Some(slot) => slot.write().copy_from_slice(value),
            None => {
                entries.insert(key.to_vec(), Arc::new(RwLock::new(value.to_vec())));
            }
        }
        Ok(())
    }
    fn delete(&self, key: &[u8]) -> Result<()> {
        check_key(self, key)?;
        if self.entries.write().remove(key).is_none() {
            return Err(Error::Map("key does not exist".into()));
        }
        Ok(())
    }
    fn keys(&self) -> Vec<Vec<u8>> {
        self.entries.read().keys().cloned().collect()
    }
}

// ---------------------------------------------------------------------------
// LPM trie
// ---------------------------------------------------------------------------

/// `BPF_MAP_TYPE_LPM_TRIE`: keys are a 32-bit prefix length (host endian)
/// followed by the key data; lookups return the entry with the longest
/// prefix covering the searched key.
pub struct LpmTrieMap {
    /// (prefix_len_bits, data) -> value, kept as a flat list; the entry count
    /// in our workloads is small enough that a linear longest-match scan is
    /// not a bottleneck and keeps the structure obviously correct.
    entries: RwLock<Vec<(u32, Vec<u8>, ValueRef)>>,
    key_size: usize,
    value_size: usize,
    max_entries: usize,
}

impl LpmTrieMap {
    /// Creates an empty LPM trie. `key_size` includes the 4-byte prefix
    /// length field, as in the kernel ABI.
    pub fn new(key_size: usize, value_size: usize, max_entries: usize) -> Arc<Self> {
        assert!(key_size > 4, "LPM trie keys must include the 4-byte prefix length");
        Arc::new(LpmTrieMap { entries: RwLock::new(Vec::new()), key_size, value_size, max_entries })
    }

    fn split_key<'k>(&self, key: &'k [u8]) -> Result<(u32, &'k [u8])> {
        if key.len() != self.key_size {
            return Err(Error::Map("LPM key size mismatch".into()));
        }
        let prefix_len = u32::from_ne_bytes([key[0], key[1], key[2], key[3]]);
        let data = &key[4..];
        if prefix_len as usize > data.len() * 8 {
            return Err(Error::Map("LPM prefix length exceeds key width".into()));
        }
        Ok((prefix_len, data))
    }

    fn matches(prefix_len: u32, prefix: &[u8], key: &[u8]) -> bool {
        let full_bytes = (prefix_len / 8) as usize;
        let rem_bits = prefix_len % 8;
        if prefix[..full_bytes] != key[..full_bytes] {
            return false;
        }
        if rem_bits == 0 {
            return true;
        }
        let mask = 0xffu8 << (8 - rem_bits);
        (prefix[full_bytes] & mask) == (key[full_bytes] & mask)
    }
}

impl Map for LpmTrieMap {
    fn map_type(&self) -> MapType {
        MapType::LpmTrie
    }
    fn key_size(&self) -> usize {
        self.key_size
    }
    fn value_size(&self) -> usize {
        self.value_size
    }
    fn max_entries(&self) -> usize {
        self.max_entries
    }
    fn lookup(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.lookup_ref(key).map(|v| v.read().clone())
    }
    fn lookup_ref(&self, key: &[u8]) -> Option<ValueRef> {
        let (_, data) = self.split_key(key).ok()?;
        let entries = self.entries.read();
        entries
            .iter()
            .filter(|(len, prefix, _)| Self::matches(*len, prefix, data))
            .max_by_key(|(len, _, _)| *len)
            .map(|(_, _, value)| Arc::clone(value))
    }
    fn update(&self, key: &[u8], value: &[u8], flags: UpdateFlags) -> Result<()> {
        check_value(self, value)?;
        let (prefix_len, data) = self.split_key(key)?;
        let mut entries = self.entries.write();
        let existing = entries.iter().position(|(len, prefix, _)| *len == prefix_len && prefix == data);
        match (existing, flags) {
            (Some(_), UpdateFlags::NoExist) => Err(Error::Map("prefix already exists".into())),
            (None, UpdateFlags::Exist) => Err(Error::Map("prefix does not exist".into())),
            (Some(idx), _) => {
                entries[idx].2.write().copy_from_slice(value);
                Ok(())
            }
            (None, _) => {
                if entries.len() >= self.max_entries {
                    return Err(Error::Map("LPM trie is full".into()));
                }
                entries.push((prefix_len, data.to_vec(), Arc::new(RwLock::new(value.to_vec()))));
                Ok(())
            }
        }
    }
    fn delete(&self, key: &[u8]) -> Result<()> {
        let (prefix_len, data) = self.split_key(key)?;
        let mut entries = self.entries.write();
        match entries.iter().position(|(len, prefix, _)| *len == prefix_len && prefix == data) {
            Some(idx) => {
                entries.remove(idx);
                Ok(())
            }
            None => Err(Error::Map("prefix does not exist".into())),
        }
    }
    fn keys(&self) -> Vec<Vec<u8>> {
        self.entries
            .read()
            .iter()
            .map(|(len, data, _)| {
                let mut key = len.to_ne_bytes().to_vec();
                key.extend_from_slice(data);
                key
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Perf event array
// ---------------------------------------------------------------------------

/// `BPF_MAP_TYPE_PERF_EVENT_ARRAY`: the map handed to
/// `bpf_perf_event_output`. Lookups are meaningless; the interesting part is
/// the attached ring buffer that user-space daemons poll.
pub struct PerfEventArray {
    buffer: Arc<PerfEventBuffer>,
}

impl PerfEventArray {
    /// Creates a perf-event array backed by a single ring of `capacity`
    /// events.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(PerfEventArray { buffer: Arc::new(PerfEventBuffer::new(capacity)) })
    }

    /// Creates a perf-event array with one `capacity`-event ring per CPU,
    /// the shape the multi-queue runtime attaches so worker shards never
    /// contend on event output.
    pub fn per_cpu(capacity: usize, num_cpus: u32) -> Arc<Self> {
        Arc::new(PerfEventArray { buffer: Arc::new(PerfEventBuffer::with_rings(capacity, num_cpus)) })
    }
}

impl Map for PerfEventArray {
    fn map_type(&self) -> MapType {
        MapType::PerfEventArray
    }
    fn key_size(&self) -> usize {
        4
    }
    fn value_size(&self) -> usize {
        4
    }
    fn max_entries(&self) -> usize {
        1
    }
    fn lookup(&self, _key: &[u8]) -> Option<Vec<u8>> {
        None
    }
    fn lookup_ref(&self, _key: &[u8]) -> Option<ValueRef> {
        None
    }
    fn update(&self, _key: &[u8], _value: &[u8], _flags: UpdateFlags) -> Result<()> {
        Err(Error::Map("perf event arrays are not updated directly".into()))
    }
    fn delete(&self, _key: &[u8]) -> Result<()> {
        Err(Error::Map("perf event arrays are not updated directly".into()))
    }
    fn keys(&self) -> Vec<Vec<u8>> {
        Vec::new()
    }
    fn perf_buffer(&self) -> Option<Arc<PerfEventBuffer>> {
        Some(Arc::clone(&self.buffer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_lookup_update_roundtrip() {
        let map = ArrayMap::new(8, 4);
        assert_eq!(map.lookup(&0u32.to_ne_bytes()), Some(vec![0u8; 8]));
        map.update(&2u32.to_ne_bytes(), &[1, 2, 3, 4, 5, 6, 7, 8], UpdateFlags::Any).unwrap();
        assert_eq!(map.lookup(&2u32.to_ne_bytes()), Some(vec![1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(map.lookup(&9u32.to_ne_bytes()), None);
        assert!(map.delete(&0u32.to_ne_bytes()).is_err());
        assert_eq!(map.keys().len(), 4);
    }

    #[test]
    fn array_rejects_bad_sizes_and_out_of_bounds() {
        let map = ArrayMap::new(8, 2);
        assert!(map.update(&[0u8; 3], &[0u8; 8], UpdateFlags::Any).is_err());
        assert!(map.update(&0u32.to_ne_bytes(), &[0u8; 7], UpdateFlags::Any).is_err());
        assert!(map.update(&5u32.to_ne_bytes(), &[0u8; 8], UpdateFlags::Any).is_err());
    }

    #[test]
    fn array_lookup_ref_aliases_storage() {
        let map = ArrayMap::new(4, 1);
        let slot = map.lookup_ref(&0u32.to_ne_bytes()).unwrap();
        slot.write().copy_from_slice(&[9, 9, 9, 9]);
        assert_eq!(map.lookup(&0u32.to_ne_bytes()), Some(vec![9, 9, 9, 9]));
    }

    #[test]
    fn hash_map_update_flags() {
        let map = HashMap::new(2, 2, 2);
        map.update(&[1, 1], &[10, 10], UpdateFlags::NoExist).unwrap();
        assert!(map.update(&[1, 1], &[11, 11], UpdateFlags::NoExist).is_err());
        assert!(map.update(&[2, 2], &[20, 20], UpdateFlags::Exist).is_err());
        map.update(&[1, 1], &[12, 12], UpdateFlags::Exist).unwrap();
        assert_eq!(map.lookup(&[1, 1]), Some(vec![12, 12]));
    }

    #[test]
    fn hash_map_capacity_and_delete() {
        let map = HashMap::new(1, 1, 2);
        map.update(&[1], &[1], UpdateFlags::Any).unwrap();
        map.update(&[2], &[2], UpdateFlags::Any).unwrap();
        assert!(map.update(&[3], &[3], UpdateFlags::Any).is_err());
        map.delete(&[1]).unwrap();
        assert!(map.delete(&[1]).is_err());
        map.update(&[3], &[3], UpdateFlags::Any).unwrap();
        assert_eq!(map.keys().len(), 2);
    }

    #[test]
    fn lpm_trie_longest_match_wins() {
        // Keys are 4-byte prefix length + 4 bytes of data (an IPv4-sized key
        // keeps the test readable; the semantics are length-generic).
        let map = LpmTrieMap::new(8, 1, 16);
        let key = |len: u32, data: [u8; 4]| {
            let mut k = len.to_ne_bytes().to_vec();
            k.extend_from_slice(&data);
            k
        };
        map.update(&key(8, [10, 0, 0, 0]), &[1], UpdateFlags::Any).unwrap();
        map.update(&key(16, [10, 1, 0, 0]), &[2], UpdateFlags::Any).unwrap();
        map.update(&key(0, [0, 0, 0, 0]), &[3], UpdateFlags::Any).unwrap();
        assert_eq!(map.lookup(&key(32, [10, 1, 2, 3])), Some(vec![2]));
        assert_eq!(map.lookup(&key(32, [10, 9, 2, 3])), Some(vec![1]));
        assert_eq!(map.lookup(&key(32, [192, 168, 0, 1])), Some(vec![3]));
    }

    #[test]
    fn lpm_trie_partial_byte_prefixes() {
        let map = LpmTrieMap::new(8, 1, 16);
        let key = |len: u32, data: [u8; 4]| {
            let mut k = len.to_ne_bytes().to_vec();
            k.extend_from_slice(&data);
            k
        };
        // /12 prefix: second byte only matches on its top nibble.
        map.update(&key(12, [10, 0x40, 0, 0]), &[7], UpdateFlags::Any).unwrap();
        assert_eq!(map.lookup(&key(32, [10, 0x4f, 1, 1])), Some(vec![7]));
        assert_eq!(map.lookup(&key(32, [10, 0x50, 1, 1])), None);
    }

    #[test]
    fn lpm_trie_delete_and_errors() {
        let map = LpmTrieMap::new(8, 1, 1);
        let mut key = 8u32.to_ne_bytes().to_vec();
        key.extend_from_slice(&[10, 0, 0, 0]);
        map.update(&key, &[1], UpdateFlags::Any).unwrap();
        assert!(map.update(&key, &[2], UpdateFlags::NoExist).is_err());
        map.delete(&key).unwrap();
        assert!(map.delete(&key).is_err());
        // Prefix length beyond the key width is rejected.
        let mut bad = 64u32.to_ne_bytes().to_vec();
        bad.extend_from_slice(&[0, 0, 0, 0]);
        assert!(map.update(&bad, &[1], UpdateFlags::Any).is_err());
    }

    #[test]
    fn perf_event_array_exposes_its_buffer() {
        let map = PerfEventArray::new(8);
        assert!(map.perf_buffer().is_some());
        assert!(map.update(&[0; 4], &[0; 4], UpdateFlags::Any).is_err());
        assert_eq!(map.map_type(), MapType::PerfEventArray);
    }

    #[test]
    fn per_cpu_array_gives_each_cpu_its_own_slot() {
        let map = PerCpuArrayMap::new(4, 2, 4);
        assert_eq!(map.map_type(), MapType::PerCpuArray);
        assert_eq!(map.num_cpus(), 4);
        let key = 1u32.to_ne_bytes();
        // Writes through a CPU's reference land only in that CPU's slot.
        for cpu in 0..4u32 {
            let slot = map.lookup_ref_cpu(&key, cpu).unwrap();
            slot.write().copy_from_slice(&[cpu as u8; 4]);
        }
        for cpu in 0..4u32 {
            assert_eq!(map.lookup_cpu(&key, cpu), Some(vec![cpu as u8; 4]));
        }
        // Distinct CPUs share nothing; the same CPU sees its own state.
        assert_ne!(map.lookup_cpu(&key, 0), map.lookup_cpu(&key, 1));
        // User-space sees every slot concatenated in CPU order.
        assert_eq!(map.lookup(&key), Some(vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]));
    }

    #[test]
    fn per_cpu_array_user_space_update_hits_every_slot() {
        let map = PerCpuArrayMap::new(2, 1, 3);
        let key = 0u32.to_ne_bytes();
        map.update(&key, &[7, 7], UpdateFlags::Any).unwrap();
        for cpu in 0..3 {
            assert_eq!(map.lookup_cpu(&key, cpu), Some(vec![7, 7]));
        }
        map.update_cpu(&key, 1, &[9, 9]).unwrap();
        assert_eq!(map.lookup_cpu(&key, 1), Some(vec![9, 9]));
        assert_eq!(map.lookup_cpu(&key, 0), Some(vec![7, 7]));
        // Out-of-range CPU ids wrap.
        assert_eq!(map.lookup_cpu(&key, 4), Some(vec![9, 9]));
        assert!(map.update_cpu(&key, 0, &[1]).is_err());
        assert!(map.delete(&key).is_err());
        assert_eq!(map.keys().len(), 1);
    }

    #[test]
    fn new_per_cpu_provisions_default_cpu_count() {
        let map = ArrayMap::new_per_cpu(4, 2);
        assert_eq!(map.map_type(), MapType::PerCpuArray);
        assert_eq!(map.num_cpus(), DEFAULT_NUM_CPUS);
    }
}
