//! Perf-event ring buffer.
//!
//! The paper's delay-monitoring use case (§4.1) pushes timestamps from the
//! `End.DM` eBPF program to a user-space daemon through perf events, because
//! "an eBPF program is not capable of sending out-of-band replies". This
//! module reproduces the mechanism: a bounded ring buffer of raw byte
//! records that programs write through `bpf_perf_event_output` and daemons
//! drain.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A single record pushed by `bpf_perf_event_output`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfEvent {
    /// Logical CPU the event was emitted from (always 0 in this single-core
    /// reproduction).
    pub cpu: u32,
    /// The raw bytes the program emitted.
    pub data: Vec<u8>,
}

/// A bounded ring buffer of perf events.
///
/// When the buffer is full the oldest events are dropped and counted, which
/// is the observable behaviour of an overrun kernel ring buffer.
#[derive(Debug)]
pub struct PerfEventBuffer {
    inner: Mutex<Inner>,
    capacity: usize,
}

#[derive(Debug)]
struct Inner {
    events: VecDeque<PerfEvent>,
    dropped: u64,
    total: u64,
}

impl PerfEventBuffer {
    /// Creates a ring buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        PerfEventBuffer {
            inner: Mutex::new(Inner { events: VecDeque::with_capacity(capacity), dropped: 0, total: 0 }),
            capacity: capacity.max(1),
        }
    }

    /// Pushes an event, dropping the oldest one if the buffer is full.
    pub fn push(&self, event: PerfEvent) {
        let mut inner = self.inner.lock();
        inner.total += 1;
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// Removes and returns the oldest event, if any.
    pub fn poll(&self) -> Option<PerfEvent> {
        self.inner.lock().events.pop_front()
    }

    /// Drains every pending event.
    pub fn drain(&self) -> Vec<PerfEvent> {
        self.inner.lock().events.drain(..).collect()
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Total number of events ever pushed (including dropped ones).
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().total
    }
}

/// Convenience alias for sharing a buffer between the datapath and daemons.
pub type SharedPerfBuffer = Arc<PerfEventBuffer>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_poll_in_fifo_order() {
        let buf = PerfEventBuffer::new(4);
        buf.push(PerfEvent { cpu: 0, data: vec![1] });
        buf.push(PerfEvent { cpu: 0, data: vec![2] });
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.poll().unwrap().data, vec![1]);
        assert_eq!(buf.poll().unwrap().data, vec![2]);
        assert!(buf.poll().is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn overrun_drops_oldest_and_counts() {
        let buf = PerfEventBuffer::new(2);
        for i in 0..5u8 {
            buf.push(PerfEvent { cpu: 0, data: vec![i] });
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        assert_eq!(buf.total_pushed(), 5);
        let remaining = buf.drain();
        assert_eq!(remaining.iter().map(|e| e.data[0]).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let buf = PerfEventBuffer::new(0);
        buf.push(PerfEvent { cpu: 0, data: vec![1] });
        buf.push(PerfEvent { cpu: 0, data: vec![2] });
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.poll().unwrap().data, vec![2]);
    }
}
