//! Perf-event ring buffers.
//!
//! The paper's delay-monitoring use case (§4.1) pushes timestamps from the
//! `End.DM` eBPF program to a user-space daemon through perf events, because
//! "an eBPF program is not capable of sending out-of-band replies". This
//! module reproduces the mechanism with the kernel's actual shape: a
//! `BPF_MAP_TYPE_PERF_EVENT_ARRAY` owns **one ring per CPU**, a program
//! writes through `bpf_perf_event_output` into the ring selected by the
//! helper's CPU-index argument (usually `BPF_F_CURRENT_CPU`, i.e. the
//! worker the program runs on), and user-space daemons drain the rings.
//! Per-CPU rings are what make event output lock-free between worker
//! shards in the multi-queue runtime.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A single record pushed by `bpf_perf_event_output`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfEvent {
    /// Logical CPU (worker shard) the event was emitted from.
    pub cpu: u32,
    /// The raw bytes the program emitted.
    pub data: Vec<u8>,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<PerfEvent>,
    dropped: u64,
    total: u64,
}

/// A set of bounded per-CPU rings of perf events.
///
/// When a ring is full its oldest events are dropped and counted, which is
/// the observable behaviour of an overrun kernel ring buffer. The
/// aggregate accessors ([`poll`](Self::poll), [`drain`](Self::drain),
/// [`len`](Self::len), ...) see every ring; the `_cpu` variants address a
/// single worker's ring, which is what a daemon pinned to one shard reads.
#[derive(Debug)]
pub struct PerfEventBuffer {
    rings: Vec<Mutex<Ring>>,
    capacity: usize,
}

impl PerfEventBuffer {
    /// Creates a single-ring buffer holding at most `capacity` events —
    /// the single-CPU shape used outside the multi-queue runtime.
    pub fn new(capacity: usize) -> Self {
        Self::with_rings(capacity, 1)
    }

    /// Creates one ring of `capacity` events per CPU for `num_cpus` CPUs.
    pub fn with_rings(capacity: usize, num_cpus: u32) -> Self {
        PerfEventBuffer {
            rings: (0..num_cpus.max(1)).map(|_| Mutex::new(Ring::default())).collect(),
            capacity: capacity.max(1),
        }
    }

    /// Number of per-CPU rings.
    pub fn num_rings(&self) -> u32 {
        self.rings.len() as u32
    }

    fn ring(&self, cpu: u32) -> &Mutex<Ring> {
        // Like per-CPU maps, out-of-range ids wrap instead of faulting.
        &self.rings[cpu as usize % self.rings.len()]
    }

    /// Pushes an event into the ring of `event.cpu`, dropping that ring's
    /// oldest event if it is full.
    pub fn push(&self, event: PerfEvent) {
        let mut ring = self.ring(event.cpu).lock();
        ring.total += 1;
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Removes and returns the oldest event across all rings (scanning in
    /// CPU order), if any.
    pub fn poll(&self) -> Option<PerfEvent> {
        self.rings.iter().find_map(|ring| ring.lock().events.pop_front())
    }

    /// Removes and returns the oldest event of `cpu`'s ring, if any.
    pub fn poll_cpu(&self, cpu: u32) -> Option<PerfEvent> {
        self.ring(cpu).lock().events.pop_front()
    }

    /// Drains every pending event from every ring, in CPU order.
    pub fn drain(&self) -> Vec<PerfEvent> {
        self.rings.iter().flat_map(|ring| ring.lock().events.drain(..).collect::<Vec<_>>()).collect()
    }

    /// Drains every pending event of `cpu`'s ring.
    pub fn drain_cpu(&self, cpu: u32) -> Vec<PerfEvent> {
        self.ring(cpu).lock().events.drain(..).collect()
    }

    /// Drains `cpu`'s ring into `out` (appending), returning how many
    /// events were taken. This is the batch-drain entry point worker-shard
    /// daemons call after every processed batch: the caller's buffer is
    /// reused across batches, so the steady state allocates nothing and
    /// the ring's lock is held only for the copy-out.
    pub fn take_cpu(&self, cpu: u32, out: &mut Vec<PerfEvent>) -> usize {
        let mut ring = self.ring(cpu).lock();
        let taken = ring.events.len();
        out.extend(ring.events.drain(..));
        taken
    }

    /// Number of events dropped because `cpu`'s ring was full.
    pub fn dropped_cpu(&self, cpu: u32) -> u64 {
        self.ring(cpu).lock().dropped
    }

    /// Total number of events ever pushed to `cpu`'s ring (including
    /// dropped ones).
    pub fn total_pushed_cpu(&self, cpu: u32) -> u64 {
        self.ring(cpu).lock().total
    }

    /// Number of events currently queued across all rings.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|ring| ring.lock().events.len()).sum()
    }

    /// Number of events queued in `cpu`'s ring.
    pub fn len_cpu(&self, cpu: u32) -> usize {
        self.ring(cpu).lock().events.len()
    }

    /// Whether no events are queued in any ring.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped because a ring was full, across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|ring| ring.lock().dropped).sum()
    }

    /// Total number of events ever pushed (including dropped ones).
    pub fn total_pushed(&self) -> u64 {
        self.rings.iter().map(|ring| ring.lock().total).sum()
    }
}

/// Convenience alias for sharing a buffer between the datapath and daemons.
pub type SharedPerfBuffer = Arc<PerfEventBuffer>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_poll_in_fifo_order() {
        let buf = PerfEventBuffer::new(4);
        buf.push(PerfEvent { cpu: 0, data: vec![1] });
        buf.push(PerfEvent { cpu: 0, data: vec![2] });
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.poll().unwrap().data, vec![1]);
        assert_eq!(buf.poll().unwrap().data, vec![2]);
        assert!(buf.poll().is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn overrun_drops_oldest_and_counts() {
        let buf = PerfEventBuffer::new(2);
        for i in 0..5u8 {
            buf.push(PerfEvent { cpu: 0, data: vec![i] });
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        assert_eq!(buf.total_pushed(), 5);
        let remaining = buf.drain();
        assert_eq!(remaining.iter().map(|e| e.data[0]).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let buf = PerfEventBuffer::new(0);
        buf.push(PerfEvent { cpu: 0, data: vec![1] });
        buf.push(PerfEvent { cpu: 0, data: vec![2] });
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.poll().unwrap().data, vec![2]);
    }

    #[test]
    fn events_route_to_their_cpus_ring() {
        let buf = PerfEventBuffer::with_rings(2, 3);
        assert_eq!(buf.num_rings(), 3);
        buf.push(PerfEvent { cpu: 0, data: vec![0] });
        buf.push(PerfEvent { cpu: 2, data: vec![2] });
        buf.push(PerfEvent { cpu: 2, data: vec![22] });
        assert_eq!(buf.len_cpu(0), 1);
        assert_eq!(buf.len_cpu(1), 0);
        assert_eq!(buf.len_cpu(2), 2);
        assert_eq!(buf.poll_cpu(2).unwrap().data, vec![2]);
        assert_eq!(buf.drain_cpu(2).len(), 1);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn per_cpu_overruns_are_independent() {
        // Filling CPU 1's ring must not evict CPU 0's events.
        let buf = PerfEventBuffer::with_rings(1, 2);
        buf.push(PerfEvent { cpu: 0, data: vec![42] });
        for i in 0..3u8 {
            buf.push(PerfEvent { cpu: 1, data: vec![i] });
        }
        assert_eq!(buf.dropped(), 2);
        assert_eq!(buf.poll_cpu(0).unwrap().data, vec![42]);
        assert_eq!(buf.poll_cpu(1).unwrap().data, vec![2]);
    }

    #[test]
    fn take_cpu_appends_into_a_reused_buffer() {
        let buf = PerfEventBuffer::with_rings(8, 2);
        buf.push(PerfEvent { cpu: 0, data: vec![1] });
        buf.push(PerfEvent { cpu: 1, data: vec![2] });
        buf.push(PerfEvent { cpu: 1, data: vec![3] });
        let mut out = Vec::new();
        assert_eq!(buf.take_cpu(1, &mut out), 2);
        assert_eq!(buf.take_cpu(1, &mut out), 0);
        // Ring 0 is untouched; the buffer accumulates across calls.
        assert_eq!(buf.take_cpu(0, &mut out), 1);
        assert_eq!(out.iter().map(|e| e.data[0]).collect::<Vec<_>>(), vec![2, 3, 1]);
        assert!(buf.is_empty());
    }

    #[test]
    fn per_ring_counters_are_scoped_to_their_cpu() {
        let buf = PerfEventBuffer::with_rings(1, 2);
        buf.push(PerfEvent { cpu: 0, data: vec![0] });
        buf.push(PerfEvent { cpu: 1, data: vec![1] });
        buf.push(PerfEvent { cpu: 1, data: vec![2] });
        assert_eq!(buf.total_pushed_cpu(0), 1);
        assert_eq!(buf.total_pushed_cpu(1), 2);
        assert_eq!(buf.dropped_cpu(0), 0);
        assert_eq!(buf.dropped_cpu(1), 1);
    }

    #[test]
    fn aggregate_accessors_scan_all_rings() {
        let buf = PerfEventBuffer::with_rings(4, 2);
        buf.push(PerfEvent { cpu: 1, data: vec![1] });
        assert!(!buf.is_empty());
        // poll() finds the event even though ring 0 is empty.
        assert_eq!(buf.poll().unwrap().cpu, 1);
        // Out-of-range CPU ids wrap onto existing rings.
        buf.push(PerfEvent { cpu: 5, data: vec![9] });
        assert_eq!(buf.len_cpu(1), 1);
    }
}
