//! Program containers and the loader.
//!
//! A [`Program`] is the unverified unit an operator writes (by hand, with
//! the [`crate::asm`] assembler or the [`crate::builder::ProgramBuilder`]).
//! Loading it — as `bpf(BPF_PROG_LOAD)` does in the kernel — runs the
//! verifier and resolves the map file descriptors referenced by
//! `lddw`-with-pseudo-map-fd instructions, producing a [`LoadedProgram`]
//! that the interpreter or the JIT can execute.

use crate::error::{Error, Result};
use crate::helpers::{HelperDesc, HelperRegistry};
use crate::insn::{class, jmp, Insn};
use crate::maps::MapHandle;
use crate::verifier::{self, AccessFacts, VerifierStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// The source-register value marking an `lddw` as a pseudo map-fd load,
/// mirroring the kernel's `BPF_PSEUDO_MAP_FD`.
pub const PSEUDO_MAP_FD: u8 = 1;

/// Hook a program is written for. The hook determines which helpers the
/// verifier lets the program call and what its context looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgramType {
    /// The paper's new hook: `seg6local` `End.BPF` endpoint programs.
    LwtSeg6Local,
    /// Lightweight-tunnel input hook.
    LwtIn,
    /// Lightweight-tunnel output hook.
    LwtOut,
    /// Lightweight-tunnel transmit hook (where `bpf_lwt_push_encap` lives).
    LwtXmit,
    /// Classic socket filter (used in tests).
    SocketFilter,
}

impl ProgramType {
    /// Human-readable name, as `bpftool` would print it.
    pub fn name(&self) -> &'static str {
        match self {
            ProgramType::LwtSeg6Local => "lwt_seg6local",
            ProgramType::LwtIn => "lwt_in",
            ProgramType::LwtOut => "lwt_out",
            ProgramType::LwtXmit => "lwt_xmit",
            ProgramType::SocketFilter => "socket_filter",
        }
    }
}

/// Return codes understood by the seg6local and LWT hooks, as defined in the
/// paper (§3.1).
pub mod retcode {
    /// Continue with the default processing (FIB lookup on the new
    /// destination for `End.BPF`).
    pub const BPF_OK: u64 = 0;
    /// Drop the packet.
    pub const BPF_DROP: u64 = 2;
    /// Skip the default lookup; the destination was already set through a
    /// helper (`bpf_lwt_seg6_action` with a lookup-performing action).
    pub const BPF_REDIRECT: u64 = 7;
}

/// An unverified eBPF program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Name used in diagnostics (mirrors the kernel's 16-byte prog name).
    pub name: String,
    /// Hook the program targets.
    pub prog_type: ProgramType,
    /// The instruction stream.
    pub insns: Vec<Insn>,
    /// License string; GPL-compatible licenses unlock all helpers, as in the
    /// kernel.
    pub license: String,
}

impl Program {
    /// Creates a program with the GPL license.
    pub fn new(name: impl Into<String>, prog_type: ProgramType, insns: Vec<Insn>) -> Self {
        Program { name: name.into(), prog_type, insns, license: "GPL".to_string() }
    }

    /// Number of instructions (two-slot `lddw` counts as two).
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

/// How a loaded program is executed.
///
/// The loader auto-selects the best tier the host supports —
/// [`ExecTier::Native`] on x86-64 Linux, [`ExecTier::Fused`] elsewhere —
/// and every tier's artifact is built eagerly at load time, so switching
/// tiers later (tests, benchmarks, the `SEG6_EXEC_TIER` override) never
/// allocates on the packet path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecTier {
    /// The faithful per-instruction interpreter ([`crate::interp`]).
    Interp,
    /// The pre-decoded micro-op stream ([`crate::jit`]).
    MicroOp,
    /// The superinstruction-fused micro-op stream ([`crate::jit::fuse`]).
    Fused,
    /// Native x86-64 machine code ([`crate::codegen`]); execution falls
    /// back to [`ExecTier::Fused`] when the host has no backend.
    Native,
}

impl ExecTier {
    /// All tiers, in increasing order of sophistication.
    pub const ALL: [ExecTier; 4] = [ExecTier::Interp, ExecTier::MicroOp, ExecTier::Fused, ExecTier::Native];

    /// Short lowercase name, as accepted by the `SEG6_EXEC_TIER`
    /// environment override.
    pub fn name(self) -> &'static str {
        match self {
            ExecTier::Interp => "interp",
            ExecTier::MicroOp => "microop",
            ExecTier::Fused => "fused",
            ExecTier::Native => "native",
        }
    }

    /// Parses a tier name (the `SEG6_EXEC_TIER` values).
    pub fn parse(name: &str) -> Option<ExecTier> {
        match name {
            "interp" => Some(ExecTier::Interp),
            "microop" => Some(ExecTier::MicroOp),
            "fused" => Some(ExecTier::Fused),
            "native" => Some(ExecTier::Native),
            _ => None,
        }
    }

    /// The tier the loader picks on this host absent any override: native
    /// where a backend exists, fused elsewhere.
    pub fn best_supported() -> ExecTier {
        if crate::codegen::supported() {
            ExecTier::Native
        } else {
            ExecTier::Fused
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            ExecTier::Interp => 0,
            ExecTier::MicroOp => 1,
            ExecTier::Fused => 2,
            ExecTier::Native => 3,
        }
    }

    fn from_u8(value: u8) -> ExecTier {
        match value {
            0 => ExecTier::Interp,
            1 => ExecTier::MicroOp,
            2 => ExecTier::Fused,
            _ => ExecTier::Native,
        }
    }
}

/// The program's current tier selection — atomic so tests and benchmarks
/// can flip a shared `Arc<LoadedProgram>` without synchronisation.
struct TierCell(AtomicU8);

impl TierCell {
    fn new(tier: ExecTier) -> Self {
        TierCell(AtomicU8::new(tier.to_u8()))
    }
    fn get(&self) -> ExecTier {
        ExecTier::from_u8(self.0.load(Ordering::Relaxed))
    }
    fn set(&self, tier: ExecTier) {
        self.0.store(tier.to_u8(), Ordering::Relaxed);
    }
}

impl Clone for TierCell {
    fn clone(&self) -> Self {
        TierCell(AtomicU8::new(self.0.load(Ordering::Relaxed)))
    }
}

/// A verified program with its maps resolved, ready for execution.
#[derive(Clone)]
pub struct LoadedProgram {
    /// The original program.
    pub program: Program,
    /// Maps referenced by the program, keyed by the fd used in the bytecode.
    pub maps: HashMap<u32, MapHandle>,
    /// Statistics reported by the verifier.
    pub verifier_stats: VerifierStats,
    /// The helpers this program calls, resolved from the registry once at
    /// load time. The JIT's `Call` micro-op carries an index into this
    /// table, so the per-packet dispatch is a bounds-checked array read of
    /// a pre-resolved function pointer — no id lookup at all.
    helper_table: Vec<HelperDesc>,
    /// Helper ids parallel to `helper_table`, for diagnostics and the
    /// compile-time id → index resolution.
    helper_ids: Vec<u32>,
    /// Per-memory-instruction bounds facts exported by the verifier; the
    /// native code generator uses them to elide per-access checks.
    access_facts: AccessFacts,
    /// The selected execution tier.
    tier: TierCell,
    /// The pre-decoded JIT image, built once on first use — the kernel
    /// compiles at load time, and re-deriving the image per invocation is
    /// pure overhead on the per-packet hot path.
    jit_cache: OnceLock<crate::jit::JitProgram>,
    /// The interpreter's wire-form image, likewise built once.
    interp_cache: OnceLock<crate::interp::InterpreterImage>,
    /// The superinstruction-fused stream, built once (at load time).
    fused_cache: OnceLock<crate::jit::FusedProgram>,
    /// The native code, built once (at load time); `None` on hosts without
    /// a backend. Shared behind an `Arc` so cloning a program shares the
    /// executable pages instead of re-emitting them.
    native_cache: OnceLock<Option<Arc<crate::codegen::NativeProgram>>>,
    /// Process-unique load identity. Per-state native caches (the
    /// map-lookup site cache) are keyed by this rather than by pointer —
    /// a freed program's address can be reused by a later load, which
    /// would let a persistent state serve another program's cache entries.
    uid: u64,
}

impl LoadedProgram {
    /// The helpers this program calls, resolved at load time.
    pub fn helper_table(&self) -> &[HelperDesc] {
        &self.helper_table
    }

    /// The table index of helper `id`, if the program calls it.
    pub fn helper_index(&self, id: u32) -> Option<u32> {
        self.helper_ids.iter().position(|&h| h == id).map(|idx| idx as u32)
    }
    /// The program's compiled (pre-decoded JIT) image, compiling it on the
    /// first call. Each `LoadedProgram` instance owns its own image, so a
    /// worker shard that loads its own program instance also owns its own
    /// compiled code, as each CPU's JIT output is private in the kernel.
    pub fn jit(&self) -> Result<&crate::jit::JitProgram> {
        if self.jit_cache.get().is_none() {
            let compiled = crate::jit::compile(self)?;
            let _ = self.jit_cache.set(compiled);
        }
        Ok(self.jit_cache.get().expect("cache populated above"))
    }

    /// The program's interpreter image, encoding it on the first call.
    pub fn interp_image(&self) -> &crate::interp::InterpreterImage {
        self.interp_cache.get_or_init(|| crate::interp::InterpreterImage::new(self))
    }

    /// The verifier's per-memory-instruction bounds facts.
    pub fn access_facts(&self) -> &AccessFacts {
        &self.access_facts
    }

    /// The superinstruction-fused micro-op stream, built on the first call
    /// (the loader calls this eagerly).
    pub fn fused(&self) -> Result<&crate::jit::FusedProgram> {
        if self.fused_cache.get().is_none() {
            let fused = crate::jit::fuse(self.jit()?);
            let _ = self.fused_cache.set(fused);
        }
        Ok(self.fused_cache.get().expect("cache populated above"))
    }

    /// The native code for this program, or `None` when the host has no
    /// backend. Built on the first call (the loader calls this eagerly);
    /// the per-packet dispatch is a cache read.
    pub fn native(&self) -> Result<Option<&crate::codegen::NativeProgram>> {
        if self.native_cache.get().is_none() {
            let native = crate::codegen::compile(self.fused()?, &self.access_facts, self)?;
            let _ = self.native_cache.set(native.map(Arc::new));
        }
        Ok(self.native_cache.get().expect("cache populated above").as_deref())
    }

    /// Process-unique identity of this load, for per-state native caches.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The execution tier [`crate::vm::run_program`] will use.
    pub fn exec_tier(&self) -> ExecTier {
        self.tier.get()
    }

    /// Overrides the execution tier (tests, benchmarks, the CI matrix).
    /// Selecting [`ExecTier::Native`] on a host without a backend is
    /// allowed; execution falls back to the fused tier.
    pub fn set_exec_tier(&self, tier: ExecTier) {
        self.tier.set(tier);
    }
}

impl std::fmt::Debug for LoadedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadedProgram")
            .field("name", &self.program.name)
            .field("type", &self.program.prog_type)
            .field("insns", &self.program.insns.len())
            .field("maps", &self.maps.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Loads (verifies) a program, resolving the map fds it references against
/// `maps`. Fails if the program references an fd that is not provided, or if
/// the verifier rejects it.
pub fn load(
    program: Program,
    maps: &HashMap<u32, MapHandle>,
    helpers: &HelperRegistry,
) -> Result<Arc<LoadedProgram>> {
    // Every pseudo-map-fd lddw must resolve to a provided map.
    let mut used = HashMap::new();
    for (idx, insn) in program.insns.iter().enumerate() {
        if insn.is_lddw() && insn.src == PSEUDO_MAP_FD {
            let fd = insn.imm as u32;
            match maps.get(&fd) {
                Some(handle) => {
                    used.insert(fd, Arc::clone(handle));
                }
                None => {
                    return Err(Error::verifier(idx, format!("unknown map fd {fd}")));
                }
            }
        }
    }
    let (verifier_stats, access_facts) = verifier::verify_with_facts(&program, helpers, maps)?;
    // Resolve every helper the program calls into a dense per-program
    // table; the verifier has already guaranteed the ids exist and are
    // allowed for this hook. (`lddw` second slots carry opcode 0, so a
    // plain scan cannot mistake one for a call.)
    let mut helper_table = Vec::new();
    let mut helper_ids: Vec<u32> = Vec::new();
    for (idx, insn) in program.insns.iter().enumerate() {
        let is_call =
            (insn.class() == class::JMP || insn.class() == class::JMP32) && insn.opcode & 0xf0 == jmp::CALL;
        if !is_call {
            continue;
        }
        let id = insn.imm as u32;
        if helper_ids.contains(&id) {
            continue;
        }
        let desc = helpers.get(id).ok_or_else(|| Error::verifier(idx, format!("unknown helper {id}")))?;
        helper_ids.push(id);
        helper_table.push(*desc);
    }
    static NEXT_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    let loaded = Arc::new(LoadedProgram {
        program,
        maps: used,
        verifier_stats,
        helper_table,
        helper_ids,
        access_facts,
        tier: TierCell::new(default_tier()),
        jit_cache: OnceLock::new(),
        interp_cache: OnceLock::new(),
        fused_cache: OnceLock::new(),
        native_cache: OnceLock::new(),
        uid: NEXT_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    });
    // Build every tier's artifact now, as the kernel JIT compiles at
    // BPF_PROG_LOAD time: the per-packet path only ever reads caches, and
    // a later tier switch (tests, the CI matrix) allocates nothing.
    let _ = loaded.interp_image();
    loaded.jit()?;
    loaded.fused()?;
    if let Some(native) = loaded.native()? {
        if std::env::var("SEG6_JIT_DEBUG").is_ok_and(|v| v == "1") {
            eprintln!("{}", crate::disasm::native_report(&loaded.program.name, native.debug_info()));
        }
    }
    Ok(loaded)
}

/// The tier new programs start on: the `SEG6_EXEC_TIER` environment
/// variable (`interp`, `microop`, `fused`, `native`) when set — the CI
/// matrix uses it to force every tier through the full test suites — and
/// the best tier the host supports otherwise. A forced `native` on a host
/// without a backend falls back to `fused` at dispatch, so the override is
/// portable.
fn default_tier() -> ExecTier {
    match std::env::var("SEG6_EXEC_TIER") {
        Ok(name) => ExecTier::parse(name.trim()).unwrap_or_else(ExecTier::best_supported),
        Err(_) => ExecTier::best_supported(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::HelperRegistry;
    use crate::insn::Insn;

    #[test]
    fn program_type_names() {
        assert_eq!(ProgramType::LwtSeg6Local.name(), "lwt_seg6local");
        assert_eq!(ProgramType::LwtXmit.name(), "lwt_xmit");
    }

    #[test]
    fn load_trivial_program() {
        let prog = Program::new("noop", ProgramType::SocketFilter, vec![Insn::mov64_imm(0, 0), Insn::exit()]);
        assert_eq!(prog.len(), 2);
        assert!(!prog.is_empty());
        let loaded = load(prog, &HashMap::new(), &HelperRegistry::with_base_helpers()).unwrap();
        assert!(loaded.maps.is_empty());
        assert!(loaded.verifier_stats.insns_processed >= 2);
    }

    #[test]
    fn load_rejects_unknown_map_fd() {
        let value = crate::vm::map_ptr_value(9);
        let mut lo = Insn::lddw_lo(1, value);
        lo.src = PSEUDO_MAP_FD;
        lo.imm = 9;
        let prog = Program::new(
            "bad-map",
            ProgramType::SocketFilter,
            vec![lo, Insn::lddw_hi(0), Insn::mov64_imm(0, 0), Insn::exit()],
        );
        let err = load(prog, &HashMap::new(), &HelperRegistry::with_base_helpers()).unwrap_err();
        assert!(matches!(err, Error::Verifier { .. }));
    }
}
