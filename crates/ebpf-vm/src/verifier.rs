//! The static verifier.
//!
//! Loading an eBPF program into the kernel first runs a verifier that
//! guarantees the program "cannot threaten the stability and security of
//! the kernel (no invalid memory accesses, possible infinite loops, ...)"
//! (§2.1 of the paper). This module reproduces the checks that matter for
//! the paper's era (Linux 4.18, i.e. before bounded loops were allowed):
//!
//! * structural validity: known opcodes, register numbers in range, `lddw`
//!   pairs complete, jump targets inside the program and not into the
//!   middle of an `lddw`;
//! * termination: the control-flow graph must be acyclic;
//! * register safety: reads of uninitialised registers are rejected, `r10`
//!   is read-only, `r1`–`r5` are clobbered by helper calls, `r0` must be
//!   initialised at `exit`;
//! * memory safety: stack and context accesses must fall inside their
//!   objects with statically-known offsets, packet memory is read-only,
//!   map-value pointers must be null-checked before being dereferenced;
//! * helper gating: only helpers registered for the program's hook may be
//!   called, and map file descriptors must resolve.
//!
//! Compared to the kernel the main simplification is bounds tracking for
//! variable packet offsets: packet reads at offsets that are not statically
//! known are accepted here and bounds-checked at run time (the run-time
//! check drops the packet, which is also what a malformed-SRH packet would
//! experience in the kernel datapath).

use crate::error::{Error, Result};
use crate::helpers::{ids, HelperRegistry};
use crate::insn::{alu, class, jmp, src, AccessSize, Insn, MAX_INSNS, NUM_REGS, REG_FP, STACK_SIZE};
use crate::maps::MapHandle;
use crate::program::{Program, PSEUDO_MAP_FD};
use std::collections::HashMap;

/// Upper bound used for context accesses; embedder context structures are
/// smaller than this.
pub const MAX_CTX_SIZE: i64 = 256;

/// Cap on the total number of (instruction, state) pairs explored, mirroring
/// the kernel's complexity limit.
const MAX_PROCESSED: usize = 131_072;

/// Statistics reported by a successful verification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifierStats {
    /// Number of instructions symbolically executed (over all paths).
    pub insns_processed: usize,
    /// Number of conditional branches explored.
    pub branches: usize,
    /// Deepest stack offset the program touches, in bytes from the frame
    /// pointer.
    pub stack_depth: usize,
}

/// What the verifier proved about one load/store instruction, over every
/// path that reaches it. The native code generator uses these facts to
/// elide the per-access region dispatch: an access proven [`AccessFact::Stack`]
/// needs no run-time check at all (the verifier bounds-checked the exact
/// offset against the same 512-byte stack the VM uses), a
/// [`AccessFact::Ctx`] access needs only a single length compare (the
/// verifier checked against [`MAX_CTX_SIZE`], but the embedder's context
/// may be smaller), and a [`AccessFact::Packet`] access needs only the
/// bounds compare the kernel's direct-packet-access contract requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessFact {
    /// Nothing uniform was proven (paths disagreeing on the region, or a
    /// map-value access whose offset could not be bounded statically):
    /// resolve the access generically at run time.
    #[default]
    Other,
    /// Every path reaches the insn with an in-bounds stack pointer at a
    /// statically known offset.
    Stack,
    /// Every path reaches the insn with a context pointer at the same
    /// static offset; `end` is `offset + access size`, the bound to compare
    /// against the embedder's actual context length.
    Ctx {
        /// One past the last context byte the access touches.
        end: u16,
    },
    /// Every path reaches the insn with a packet pointer (loads only —
    /// packet stores are rejected outright).
    Packet,
    /// Every path reaches the insn with a null-checked map-value pointer
    /// whose statically-known offset plus access size fits inside the
    /// map's value: the native tier accesses the value bytes directly
    /// through the per-run region table, no trampoline needed.
    MapValue,
    /// Recorded at the `call bpf_map_lookup_elem` instruction itself (not a
    /// load/store): every path reaches the call with the same map handle in
    /// `r1`. The native tier uses this to emit the array-lookup fast path.
    MapLookup {
        /// The map file descriptor `r1` holds on every path.
        fd: u32,
        /// Whether `r2` (the key pointer) is a statically-bounded stack
        /// pointer on every path — required for the inline key read.
        key_in_stack: bool,
    },
}

/// Per-instruction memory-access facts for a verified program, indexed by
/// instruction position.
#[derive(Debug, Clone, Default)]
pub struct AccessFacts {
    facts: Vec<Option<AccessFact>>,
}

impl AccessFacts {
    /// The fact proven for the load/store at `pc` ([`AccessFact::Other`]
    /// for instructions that are not memory accesses).
    pub fn get(&self, pc: usize) -> AccessFact {
        self.facts.get(pc).copied().flatten().unwrap_or(AccessFact::Other)
    }

    /// Merges `fact` into position `pc`: the first path to reach an insn
    /// seeds the fact, later paths must agree exactly or the fact degrades
    /// to [`AccessFact::Other`] (generic run-time resolution is always
    /// sound).
    fn record(&mut self, pc: usize, fact: AccessFact) {
        if self.facts.len() <= pc {
            self.facts.resize(pc + 1, None);
        }
        self.facts[pc] = match self.facts[pc] {
            None => Some(fact),
            Some(prev) if prev == fact => Some(fact),
            Some(_) => Some(AccessFact::Other),
        };
    }
}

/// Abstract value tracked for each register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegType {
    /// Never written on this path.
    Uninit,
    /// A number; `Some` when the exact value is statically known.
    Scalar(Option<i64>),
    /// Pointer into the context structure at a known offset.
    PtrToCtx(i64),
    /// Pointer into the stack; offset is relative to the stack base
    /// (`r10` starts at `STACK_SIZE`).
    PtrToStack(i64),
    /// Pointer into the packet. Offset is `None` once the program added a
    /// non-constant value to it.
    PtrToPacket(Option<i64>),
    /// Pointer to a map value returned by `bpf_map_lookup_elem`;
    /// `maybe_null` is cleared by a null check.
    PtrToMapValue {
        /// Whether the pointer may still be NULL on this path.
        maybe_null: bool,
        /// Byte offset from the start of the value; `None` once the program
        /// added a non-constant amount to the pointer.
        offset: Option<i64>,
        /// Size of the map's values, captured from the map handle at the
        /// lookup call site (0 when the map could not be identified).
        value_size: u32,
    },
    /// Opaque map handle loaded by a pseudo-map-fd `lddw`.
    MapPtr(u32),
}

impl RegType {
    fn is_pointer(&self) -> bool {
        matches!(
            self,
            RegType::PtrToCtx(_)
                | RegType::PtrToStack(_)
                | RegType::PtrToPacket(_)
                | RegType::PtrToMapValue { .. }
                | RegType::MapPtr(_)
        )
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct RegFile {
    regs: [RegType; NUM_REGS],
}

impl RegFile {
    fn entry() -> Self {
        let mut regs = [RegType::Uninit; NUM_REGS];
        regs[1] = RegType::PtrToCtx(0);
        regs[10] = RegType::PtrToStack(STACK_SIZE as i64);
        RegFile { regs }
    }
}

struct Verifier<'a> {
    program: &'a Program,
    helpers: &'a HelperRegistry,
    maps: &'a HashMap<u32, MapHandle>,
    /// Marks the second slot of every `lddw`.
    is_lddw_hi: Vec<bool>,
    stats: VerifierStats,
    facts: AccessFacts,
}

/// Verifies `program`, returning statistics on success.
pub fn verify(
    program: &Program,
    helpers: &HelperRegistry,
    maps: &HashMap<u32, MapHandle>,
) -> Result<VerifierStats> {
    verify_with_facts(program, helpers, maps).map(|(stats, _)| stats)
}

/// Verifies `program`, additionally returning the per-instruction memory
/// facts the symbolic execution proved — the input the native code
/// generator uses to elide per-access checks.
pub fn verify_with_facts(
    program: &Program,
    helpers: &HelperRegistry,
    maps: &HashMap<u32, MapHandle>,
) -> Result<(VerifierStats, AccessFacts)> {
    let mut verifier = Verifier {
        program,
        helpers,
        maps,
        is_lddw_hi: Vec::new(),
        stats: VerifierStats::default(),
        facts: AccessFacts::default(),
    };
    verifier.check_structure()?;
    verifier.check_no_loops()?;
    verifier.symbolic_execution()?;
    Ok((verifier.stats, verifier.facts))
}

impl<'a> Verifier<'a> {
    fn insns(&self) -> &[Insn] {
        &self.program.insns
    }

    // -- structural checks ---------------------------------------------------

    fn check_structure(&mut self) -> Result<()> {
        let insns: Vec<Insn> = self.program.insns.clone();
        if insns.is_empty() {
            return Err(Error::verifier(0, "program has no instructions"));
        }
        if insns.len() > MAX_INSNS {
            return Err(Error::verifier(0, format!("program exceeds {MAX_INSNS} instructions")));
        }
        self.is_lddw_hi = vec![false; insns.len()];
        let mut idx = 0;
        while idx < insns.len() {
            let insn = &insns[idx];
            if usize::from(insn.dst) >= NUM_REGS || usize::from(insn.src) >= NUM_REGS {
                return Err(Error::verifier(idx, "register number out of range"));
            }
            if insn.is_lddw() {
                if idx + 1 >= insns.len() {
                    return Err(Error::verifier(idx, "lddw is missing its second slot"));
                }
                let hi = &insns[idx + 1];
                if hi.opcode != 0 || hi.dst != 0 || hi.off != 0 {
                    return Err(Error::verifier(idx + 1, "malformed lddw second slot"));
                }
                if insn.src == PSEUDO_MAP_FD && !self.maps.contains_key(&(insn.imm as u32)) {
                    return Err(Error::verifier(idx, format!("unknown map fd {}", insn.imm)));
                }
                self.is_lddw_hi[idx + 1] = true;
                idx += 2;
                continue;
            }
            self.check_opcode(idx, insn)?;
            idx += 1;
        }
        // The last instruction must not fall through past the end.
        let last = &insns[insns.len() - 1];
        let last_is_terminal = matches!(last.class(), class::JMP | class::JMP32)
            && matches!(last.opcode & 0xf0, jmp::EXIT | jmp::JA);
        if !last_is_terminal && !self.is_lddw_hi[insns.len() - 1] {
            return Err(Error::verifier(
                insns.len() - 1,
                "program may fall through past the last instruction",
            ));
        }
        // Jump targets must land on real instructions.
        for (idx, insn) in insns.iter().enumerate() {
            if self.is_lddw_hi[idx] {
                continue;
            }
            if matches!(insn.class(), class::JMP | class::JMP32) {
                let op = insn.opcode & 0xf0;
                if op == jmp::EXIT || op == jmp::CALL {
                    continue;
                }
                let target = idx as i64 + 1 + i64::from(insn.off);
                if target < 0 || target as usize >= insns.len() {
                    return Err(Error::verifier(idx, "jump target out of bounds"));
                }
                if self.is_lddw_hi[target as usize] {
                    return Err(Error::verifier(idx, "jump target lands inside an lddw"));
                }
            }
        }
        Ok(())
    }

    fn check_opcode(&self, idx: usize, insn: &Insn) -> Result<()> {
        match insn.class() {
            class::ALU | class::ALU64 => {
                let op = insn.opcode & 0xf0;
                let known = [
                    alu::ADD,
                    alu::SUB,
                    alu::MUL,
                    alu::DIV,
                    alu::OR,
                    alu::AND,
                    alu::LSH,
                    alu::RSH,
                    alu::NEG,
                    alu::MOD,
                    alu::XOR,
                    alu::MOV,
                    alu::ARSH,
                    alu::END,
                ];
                if !known.contains(&op) {
                    return Err(Error::verifier(idx, format!("unknown ALU op 0x{op:x}")));
                }
                if (op == alu::DIV || op == alu::MOD) && insn.opcode & src::X == 0 && insn.imm == 0 {
                    return Err(Error::verifier(idx, "division by constant zero"));
                }
                if op == alu::END && ![16, 32, 64].contains(&insn.imm) {
                    return Err(Error::verifier(idx, "byte swap width must be 16, 32 or 64"));
                }
                Ok(())
            }
            class::LD => Err(Error::verifier(idx, "only lddw is supported in the LD class")),
            class::LDX | class::ST | class::STX => Ok(()),
            class::JMP | class::JMP32 => {
                let op = insn.opcode & 0xf0;
                let known = [
                    jmp::JA,
                    jmp::JEQ,
                    jmp::JGT,
                    jmp::JGE,
                    jmp::JSET,
                    jmp::JNE,
                    jmp::JSGT,
                    jmp::JSGE,
                    jmp::CALL,
                    jmp::EXIT,
                    jmp::JLT,
                    jmp::JLE,
                    jmp::JSLT,
                    jmp::JSLE,
                ];
                if !known.contains(&op) {
                    return Err(Error::verifier(idx, format!("unknown JMP op 0x{op:x}")));
                }
                if insn.class() == class::JMP32 && (op == jmp::CALL || op == jmp::EXIT) {
                    return Err(Error::verifier(idx, "call/exit must use the 64-bit JMP class"));
                }
                Ok(())
            }
            other => Err(Error::verifier(idx, format!("unknown instruction class {other}"))),
        }
    }

    // -- loop detection -------------------------------------------------------

    fn successors(&self, idx: usize) -> Vec<usize> {
        let insn = &self.insns()[idx];
        if self.is_lddw_hi[idx] {
            return vec![idx + 1].into_iter().filter(|&t| t < self.insns().len()).collect();
        }
        if insn.is_lddw() {
            return vec![idx + 2].into_iter().filter(|&t| t < self.insns().len()).collect();
        }
        match insn.class() {
            class::JMP | class::JMP32 => {
                let op = insn.opcode & 0xf0;
                match op {
                    jmp::EXIT => vec![],
                    jmp::CALL => vec![idx + 1],
                    jmp::JA => vec![(idx as i64 + 1 + i64::from(insn.off)) as usize],
                    _ => {
                        let target = (idx as i64 + 1 + i64::from(insn.off)) as usize;
                        vec![idx + 1, target]
                    }
                }
            }
            _ => vec![idx + 1],
        }
        .into_iter()
        .filter(|&t| t < self.insns().len())
        .collect()
    }

    fn check_no_loops(&mut self) -> Result<()> {
        // Iterative DFS with colours: 0 = white, 1 = on stack, 2 = done.
        let n = self.insns().len();
        let mut colour = vec![0u8; n];
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        colour[0] = 1;
        let mut order: Vec<usize> = vec![0];
        while let Some((node, child_idx)) = stack.pop() {
            let succs = self.successors(node);
            if child_idx < succs.len() {
                stack.push((node, child_idx + 1));
                let next = succs[child_idx];
                match colour[next] {
                    0 => {
                        colour[next] = 1;
                        order.push(next);
                        stack.push((next, 0));
                    }
                    1 => {
                        return Err(Error::verifier(node, "back-edge detected: loops are not allowed"));
                    }
                    _ => {}
                }
            } else {
                colour[node] = 2;
            }
        }
        Ok(())
    }

    // -- symbolic execution ---------------------------------------------------

    fn symbolic_execution(&mut self) -> Result<()> {
        let mut worklist: Vec<(usize, RegFile)> = vec![(0, RegFile::entry())];
        while let Some((pc, mut regs)) = worklist.pop() {
            let mut pc = pc;
            loop {
                if self.stats.insns_processed >= MAX_PROCESSED {
                    return Err(Error::verifier(pc, "program is too complex to verify"));
                }
                self.stats.insns_processed += 1;
                if pc >= self.insns().len() {
                    return Err(Error::verifier(pc, "execution fell past the end of the program"));
                }
                let insn = self.insns()[pc];
                match self.step(pc, &insn, &mut regs)? {
                    Step::Next => pc += 1,
                    Step::SkipOne => pc += 2,
                    Step::Jump(target) => pc = target,
                    Step::BranchBoth { taken, fallthrough, taken_regs } => {
                        self.stats.branches += 1;
                        worklist.push((taken, taken_regs));
                        pc = fallthrough;
                    }
                    Step::Exit => break,
                }
            }
        }
        Ok(())
    }

    fn read_reg(&self, pc: usize, regs: &RegFile, r: u8) -> Result<RegType> {
        let value = regs.regs[usize::from(r)];
        if value == RegType::Uninit {
            return Err(Error::verifier(pc, format!("read of uninitialised register r{r}")));
        }
        Ok(value)
    }

    fn write_reg(&self, pc: usize, regs: &mut RegFile, r: u8, value: RegType) -> Result<()> {
        if r == REG_FP {
            return Err(Error::verifier(pc, "r10 (frame pointer) is read-only"));
        }
        regs.regs[usize::from(r)] = value;
        Ok(())
    }

    fn check_mem_access(
        &mut self,
        pc: usize,
        base: RegType,
        off: i64,
        size: AccessSize,
        is_store: bool,
    ) -> Result<()> {
        let len = size.bytes() as i64;
        match base {
            RegType::PtrToStack(stack_off) => {
                let start = stack_off + off;
                if start < 0 || start + len > STACK_SIZE as i64 {
                    return Err(Error::verifier(pc, format!("stack access out of bounds at offset {start}")));
                }
                let depth = STACK_SIZE as i64 - start;
                self.stats.stack_depth = self.stats.stack_depth.max(depth as usize);
                self.facts.record(pc, AccessFact::Stack);
                Ok(())
            }
            RegType::PtrToCtx(ctx_off) => {
                let start = ctx_off + off;
                if start < 0 || start + len > MAX_CTX_SIZE {
                    return Err(Error::verifier(
                        pc,
                        format!("context access out of bounds at offset {start}"),
                    ));
                }
                self.facts.record(pc, AccessFact::Ctx { end: (start + len) as u16 });
                Ok(())
            }
            RegType::PtrToPacket(_) => {
                if is_store {
                    return Err(Error::verifier(pc, "packet memory is read-only; use a helper to modify it"));
                }
                // Offsets may be data-dependent (e.g. a TLV walk); bounds are
                // enforced at run time.
                self.facts.record(pc, AccessFact::Packet);
                Ok(())
            }
            RegType::PtrToMapValue { maybe_null, offset, value_size } => {
                if maybe_null {
                    return Err(Error::verifier(pc, "possible NULL map-value dereference; add a null check"));
                }
                // A statically-bounded access inside the value earns the
                // direct-access fact; anything the symbolic execution could
                // not bound stays on the generic run-time path (which
                // faults out-of-bounds accesses exactly as before).
                let fact = match offset {
                    Some(o) if o + off >= 0 && value_size > 0 && o + off + len <= i64::from(value_size) => {
                        AccessFact::MapValue
                    }
                    _ => AccessFact::Other,
                };
                self.facts.record(pc, fact);
                Ok(())
            }
            RegType::MapPtr(_) => Err(Error::verifier(pc, "map handles cannot be dereferenced directly")),
            RegType::Scalar(_) | RegType::Uninit => {
                Err(Error::verifier(pc, "memory access through a non-pointer register"))
            }
        }
    }

    fn step(&mut self, pc: usize, insn: &Insn, regs: &mut RegFile) -> Result<Step> {
        match insn.class() {
            class::ALU | class::ALU64 => {
                self.step_alu(pc, insn, regs)?;
                Ok(Step::Next)
            }
            class::LD => {
                // Structure pass guarantees this is a well-formed lddw.
                let value = if insn.src == PSEUDO_MAP_FD {
                    RegType::MapPtr(insn.imm as u32)
                } else {
                    let hi = self.insns()[pc + 1];
                    let imm = (u64::from(hi.imm as u32) << 32) | u64::from(insn.imm as u32);
                    RegType::Scalar(Some(imm as i64))
                };
                self.write_reg(pc, regs, insn.dst, value)?;
                Ok(Step::SkipOne)
            }
            class::LDX => {
                let base = self.read_reg(pc, regs, insn.src)?;
                let size = AccessSize::from_opcode(insn.opcode);
                self.check_mem_access(pc, base, i64::from(insn.off), size, false)?;
                // Loading the `data` field of an LWT context yields a packet
                // pointer (the run-time value is PKT_BASE); everything else
                // is a scalar.
                let is_lwt = matches!(
                    self.program.prog_type,
                    crate::program::ProgramType::LwtSeg6Local
                        | crate::program::ProgramType::LwtIn
                        | crate::program::ProgramType::LwtOut
                        | crate::program::ProgramType::LwtXmit
                );
                let result = match base {
                    RegType::PtrToCtx(ctx_off)
                        if is_lwt
                            && size == AccessSize::Double
                            && ctx_off + i64::from(insn.off) == crate::vm::CTX_OFF_DATA =>
                    {
                        RegType::PtrToPacket(Some(0))
                    }
                    _ => RegType::Scalar(None),
                };
                self.write_reg(pc, regs, insn.dst, result)?;
                Ok(Step::Next)
            }
            class::ST | class::STX => {
                let base = self.read_reg(pc, regs, insn.dst)?;
                if insn.class() == class::STX {
                    self.read_reg(pc, regs, insn.src)?;
                }
                self.check_mem_access(
                    pc,
                    base,
                    i64::from(insn.off),
                    AccessSize::from_opcode(insn.opcode),
                    true,
                )?;
                Ok(Step::Next)
            }
            class::JMP | class::JMP32 => self.step_jmp(pc, insn, regs),
            _ => Err(Error::verifier(pc, "unknown instruction class")),
        }
    }

    fn step_alu(&mut self, pc: usize, insn: &Insn, regs: &mut RegFile) -> Result<()> {
        let op = insn.opcode & 0xf0;
        let is_imm = insn.opcode & src::X == 0;
        if op == alu::MOV {
            let value = if is_imm {
                RegType::Scalar(Some(i64::from(insn.imm)))
            } else {
                self.read_reg(pc, regs, insn.src)?
            };
            return self.write_reg(pc, regs, insn.dst, value);
        }
        if op == alu::NEG || op == alu::END {
            let current = self.read_reg(pc, regs, insn.dst)?;
            if current.is_pointer() {
                return Err(Error::verifier(pc, "arithmetic on pointers is limited to add/sub"));
            }
            return self.write_reg(pc, regs, insn.dst, RegType::Scalar(None));
        }
        let dst_type = self.read_reg(pc, regs, insn.dst)?;
        let rhs = if is_imm {
            RegType::Scalar(Some(i64::from(insn.imm)))
        } else {
            self.read_reg(pc, regs, insn.src)?
        };
        if rhs.is_pointer() && dst_type.is_pointer() {
            return Err(Error::verifier(pc, "pointer-pointer arithmetic is not allowed"));
        }
        let result = if dst_type.is_pointer() {
            if op != alu::ADD && op != alu::SUB {
                return Err(Error::verifier(pc, "arithmetic on pointers is limited to add/sub"));
            }
            let delta = match rhs {
                RegType::Scalar(Some(v)) => Some(if op == alu::ADD { v } else { -v }),
                RegType::Scalar(None) => None,
                _ => unreachable!("checked above"),
            };
            match (dst_type, delta) {
                (RegType::PtrToStack(off), Some(d)) => RegType::PtrToStack(off + d),
                (RegType::PtrToCtx(off), Some(d)) => RegType::PtrToCtx(off + d),
                (RegType::PtrToPacket(Some(off)), Some(d)) => RegType::PtrToPacket(Some(off + d)),
                (RegType::PtrToPacket(_), None) => RegType::PtrToPacket(None),
                (RegType::PtrToStack(_) | RegType::PtrToCtx(_), None) => {
                    return Err(Error::verifier(pc, "variable offset into stack or context is not allowed"));
                }
                (RegType::PtrToMapValue { maybe_null, offset, value_size }, delta) => {
                    if maybe_null {
                        return Err(Error::verifier(pc, "arithmetic on a possibly-NULL map value pointer"));
                    }
                    let offset = match (offset, delta) {
                        (Some(o), Some(d)) => Some(o + d),
                        _ => None,
                    };
                    RegType::PtrToMapValue { maybe_null: false, offset, value_size }
                }
                (RegType::MapPtr(_), _) => {
                    return Err(Error::verifier(pc, "arithmetic on map handles is not allowed"));
                }
                (RegType::PtrToPacket(None), Some(_)) => RegType::PtrToPacket(None),
                _ => unreachable!(),
            }
        } else if rhs.is_pointer() {
            // scalar += pointer : the result is a pointer only for ADD.
            if op == alu::ADD {
                rhs
            } else {
                return Err(Error::verifier(pc, "pointer used as a scalar operand"));
            }
        } else {
            // scalar op scalar: fold constants for the cases that matter to
            // downstream pointer arithmetic.
            let known = match (dst_type, rhs) {
                (RegType::Scalar(Some(a)), RegType::Scalar(Some(b))) => match op {
                    alu::ADD => a.checked_add(b),
                    alu::SUB => a.checked_sub(b),
                    alu::MUL => a.checked_mul(b),
                    alu::AND => Some(a & b),
                    alu::OR => Some(a | b),
                    alu::XOR => Some(a ^ b),
                    alu::LSH => a.checked_shl(b as u32),
                    alu::RSH => Some(((a as u64) >> (b as u32 & 63)) as i64),
                    _ => None,
                },
                _ => None,
            };
            RegType::Scalar(known)
        };
        self.write_reg(pc, regs, insn.dst, result)
    }

    fn step_jmp(&mut self, pc: usize, insn: &Insn, regs: &mut RegFile) -> Result<Step> {
        let op = insn.opcode & 0xf0;
        match op {
            jmp::EXIT => {
                if regs.regs[0] == RegType::Uninit {
                    return Err(Error::verifier(pc, "r0 is not initialised at exit"));
                }
                Ok(Step::Exit)
            }
            jmp::CALL => {
                let id = insn.imm as u32;
                if self.helpers.get(id).is_none() {
                    return Err(Error::verifier(pc, format!("call to unknown helper {id}")));
                }
                if !self.helpers.allowed_for(id, self.program.prog_type) {
                    return Err(Error::verifier(
                        pc,
                        format!(
                            "helper {} is not allowed for {} programs",
                            self.helpers.name_of(id).unwrap_or("?"),
                            self.program.prog_type.name()
                        ),
                    ));
                }
                // For map lookups, capture what r1 (the map handle) and r2
                // (the key pointer) hold *before* the call clobbers them —
                // the native tier uses these facts for its inline fast path
                // and to bound later dereferences of the returned pointer.
                let mut value_size = 0u32;
                if id == ids::MAP_LOOKUP_ELEM {
                    if let RegType::MapPtr(fd) = regs.regs[1] {
                        if let Some(map) = self.maps.get(&fd) {
                            value_size = map.value_size() as u32;
                            let key_in_stack = match regs.regs[2] {
                                RegType::PtrToStack(off) => {
                                    off >= 0 && off + map.key_size() as i64 <= STACK_SIZE as i64
                                }
                                _ => false,
                            };
                            self.facts.record(pc, AccessFact::MapLookup { fd, key_in_stack });
                        }
                    }
                }
                // r1-r5 are clobbered, r0 carries the result.
                for r in 1..=5 {
                    regs.regs[r] = RegType::Uninit;
                }
                regs.regs[0] = if id == ids::MAP_LOOKUP_ELEM {
                    RegType::PtrToMapValue { maybe_null: true, offset: Some(0), value_size }
                } else {
                    RegType::Scalar(None)
                };
                Ok(Step::Next)
            }
            jmp::JA => Ok(Step::Jump((pc as i64 + 1 + i64::from(insn.off)) as usize)),
            _ => {
                let dst_type = self.read_reg(pc, regs, insn.dst)?;
                let compares_to_zero_imm = insn.opcode & src::X == 0 && insn.imm == 0;
                if insn.opcode & src::X != 0 {
                    self.read_reg(pc, regs, insn.src)?;
                }
                let target = (pc as i64 + 1 + i64::from(insn.off)) as usize;
                let mut taken_regs = regs.clone();
                // Null-check refinement: `if (ptr == 0)` / `if (ptr != 0)`
                // clears `maybe_null` on the branch where the pointer is
                // known to be non-NULL.
                if let RegType::PtrToMapValue { maybe_null: true, offset, value_size } = dst_type {
                    let non_null = RegType::PtrToMapValue { maybe_null: false, offset, value_size };
                    if compares_to_zero_imm && op == jmp::JEQ {
                        // taken: ptr is NULL; fallthrough: non-NULL.
                        taken_regs.regs[usize::from(insn.dst)] = RegType::Scalar(Some(0));
                        regs.regs[usize::from(insn.dst)] = non_null;
                    } else if compares_to_zero_imm && op == jmp::JNE {
                        taken_regs.regs[usize::from(insn.dst)] = non_null;
                        regs.regs[usize::from(insn.dst)] = RegType::Scalar(Some(0));
                    }
                }
                Ok(Step::BranchBoth { taken: target, fallthrough: pc + 1, taken_regs })
            }
        }
    }
}

#[allow(clippy::large_enum_variant)]
enum Step {
    Next,
    SkipOne,
    Jump(usize),
    BranchBoth { taken: usize, fallthrough: usize, taken_regs: RegFile },
    Exit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helpers::HelperRegistry;
    use crate::insn::{alu, jmp, AccessSize, Insn};
    use crate::maps::ArrayMap;
    use crate::program::{Program, ProgramType};
    use crate::vm::map_ptr_value;

    fn verify_insns(insns: Vec<Insn>) -> Result<VerifierStats> {
        let prog = Program::new("t", ProgramType::SocketFilter, insns);
        verify(&prog, &HelperRegistry::with_base_helpers(), &HashMap::new())
    }

    fn verify_with_map(insns: Vec<Insn>) -> Result<VerifierStats> {
        let prog = Program::new("t", ProgramType::SocketFilter, insns);
        let mut maps: HashMap<u32, MapHandle> = HashMap::new();
        maps.insert(1, ArrayMap::new(8, 4));
        verify(&prog, &HelperRegistry::with_base_helpers(), &maps)
    }

    #[test]
    fn accepts_minimal_program() {
        let stats = verify_insns(vec![Insn::mov64_imm(0, 0), Insn::exit()]).unwrap();
        assert!(stats.insns_processed >= 2);
    }

    #[test]
    fn rejects_empty_program() {
        assert!(verify_insns(vec![]).is_err());
    }

    #[test]
    fn rejects_uninitialised_register_read() {
        let err = verify_insns(vec![Insn::mov64_reg(0, 3), Insn::exit()]).unwrap_err();
        assert!(err.to_string().contains("uninitialised"));
    }

    #[test]
    fn rejects_uninitialised_r0_at_exit() {
        assert!(verify_insns(vec![Insn::exit()]).is_err());
    }

    #[test]
    fn rejects_write_to_frame_pointer() {
        assert!(verify_insns(vec![Insn::mov64_imm(10, 0), Insn::mov64_imm(0, 0), Insn::exit()]).is_err());
    }

    #[test]
    fn rejects_fallthrough_past_end() {
        assert!(verify_insns(vec![Insn::mov64_imm(0, 0)]).is_err());
    }

    #[test]
    fn rejects_loops() {
        let insns = vec![Insn::mov64_imm(0, 0), Insn::alu64_imm(alu::ADD, 0, 1), Insn::ja(-2)];
        let err = verify_insns(insns).unwrap_err();
        assert!(err.to_string().contains("back-edge") || err.to_string().contains("loop"));
    }

    #[test]
    fn rejects_out_of_range_jump() {
        assert!(verify_insns(vec![Insn::mov64_imm(0, 0), Insn::ja(5), Insn::exit()]).is_err());
        assert!(verify_insns(vec![Insn::jmp_imm(jmp::JEQ, 1, 0, -5), Insn::mov64_imm(0, 0), Insn::exit()])
            .is_err());
    }

    #[test]
    fn rejects_jump_into_lddw() {
        let insns = vec![
            Insn::ja(1),
            Insn::lddw_lo(2, 0x1234),
            Insn::lddw_hi(0x1234),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        assert!(verify_insns(insns).is_err());
    }

    #[test]
    fn rejects_truncated_lddw() {
        assert!(verify_insns(vec![Insn::lddw_lo(2, 1)]).is_err());
    }

    #[test]
    fn rejects_stack_out_of_bounds() {
        // Below the frame.
        assert!(verify_insns(vec![
            Insn::store_imm(AccessSize::Double, 10, -520, 1),
            Insn::mov64_imm(0, 0),
            Insn::exit()
        ])
        .is_err());
        // Above the frame pointer.
        assert!(verify_insns(vec![
            Insn::store_imm(AccessSize::Double, 10, 8, 1),
            Insn::mov64_imm(0, 0),
            Insn::exit()
        ])
        .is_err());
    }

    #[test]
    fn accepts_stack_access_and_reports_depth() {
        let stats = verify_insns(vec![
            Insn::store_imm(AccessSize::Double, 10, -64, 1),
            Insn::load(AccessSize::Double, 0, 10, -64),
            Insn::exit(),
        ])
        .unwrap();
        assert_eq!(stats.stack_depth, 64);
    }

    #[test]
    fn rejects_memory_access_through_scalar() {
        let insns = vec![Insn::mov64_imm(2, 1000), Insn::load(AccessSize::Word, 0, 2, 0), Insn::exit()];
        assert!(verify_insns(insns).is_err());
    }

    #[test]
    fn rejects_store_to_packet_pointer() {
        // r1 is the ctx pointer; a load from ctx yields a scalar, so build a
        // packet pointer the honest way is impossible here — instead check
        // the ctx path: stores inside the ctx bound are allowed, outside are
        // rejected.
        assert!(verify_insns(vec![
            Insn::store_imm(AccessSize::Word, 1, 300, 0),
            Insn::mov64_imm(0, 0),
            Insn::exit()
        ])
        .is_err());
        assert!(verify_insns(vec![
            Insn::store_imm(AccessSize::Word, 1, 16, 0),
            Insn::mov64_imm(0, 0),
            Insn::exit()
        ])
        .is_ok());
    }

    #[test]
    fn rejects_unknown_helper_and_division_by_zero() {
        assert!(verify_insns(vec![Insn::call(9999), Insn::exit()]).is_err());
        assert!(
            verify_insns(vec![Insn::mov64_imm(0, 1), Insn::alu64_imm(alu::DIV, 0, 0), Insn::exit()]).is_err()
        );
    }

    #[test]
    fn helper_call_clobbers_caller_saved_registers() {
        // r1 must not be readable after a call without re-initialisation.
        let insns = vec![
            Insn::call(crate::helpers::ids::KTIME_GET_NS),
            Insn::mov64_reg(2, 1),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        assert!(verify_insns(insns).is_err());
    }

    #[test]
    fn map_lookup_requires_null_check() {
        let fd = 1u32;
        let mut lddw = Insn::lddw_lo(1, map_ptr_value(fd));
        lddw.src = PSEUDO_MAP_FD;
        lddw.imm = fd as i32;
        // Without a null check the dereference must be rejected.
        let without_check = vec![
            lddw,
            Insn::lddw_hi(0),
            Insn::mov64_reg(2, 10),
            Insn::alu64_imm(alu::ADD, 2, -8),
            Insn::store_imm(AccessSize::Word, 10, -8, 0),
            Insn::call(ids::MAP_LOOKUP_ELEM),
            Insn::load(AccessSize::Double, 3, 0, 0),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        assert!(verify_with_map(without_check).is_err());

        // With a null check the same access is accepted.
        let with_check = vec![
            lddw,
            Insn::lddw_hi(0),
            Insn::mov64_reg(2, 10),
            Insn::alu64_imm(alu::ADD, 2, -8),
            Insn::store_imm(AccessSize::Word, 10, -8, 0),
            Insn::call(ids::MAP_LOOKUP_ELEM),
            Insn::jmp_imm(jmp::JEQ, 0, 0, 2),
            Insn::load(AccessSize::Double, 3, 0, 0),
            Insn::mov64_imm(0, 0),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        verify_with_map(with_check).unwrap();
    }

    #[test]
    fn map_value_accesses_earn_direct_facts() {
        let fd = 1u32;
        let mut lddw = Insn::lddw_lo(1, map_ptr_value(fd));
        lddw.src = PSEUDO_MAP_FD;
        lddw.imm = fd as i32;
        // lookup; null check; 4-byte loads at offsets 0 and 4 (value is 8
        // bytes, so both are statically in bounds); then a load through the
        // pointer after adding an unknown scalar (degrades to Other).
        let insns = vec![
            lddw,
            Insn::lddw_hi(0),
            Insn::mov64_reg(2, 10),
            Insn::alu64_imm(alu::ADD, 2, -8),
            Insn::store_imm(AccessSize::Word, 10, -8, 0),
            Insn::call(ids::MAP_LOOKUP_ELEM),
            Insn::jmp_imm(jmp::JEQ, 0, 0, 5),
            Insn::load(AccessSize::Word, 3, 0, 0),
            Insn::load(AccessSize::Word, 4, 0, 4),
            Insn::alu64_reg(alu::ADD, 0, 3),
            Insn::load(AccessSize::Byte, 5, 0, 0),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        let prog = Program::new("t", ProgramType::SocketFilter, insns);
        let mut maps: HashMap<u32, MapHandle> = HashMap::new();
        maps.insert(1, ArrayMap::new(8, 4));
        let (_, facts) = verify_with_facts(&prog, &HelperRegistry::with_base_helpers(), &maps).unwrap();
        assert_eq!(facts.get(5), AccessFact::MapLookup { fd: 1, key_in_stack: true });
        assert_eq!(facts.get(7), AccessFact::MapValue);
        assert_eq!(facts.get(8), AccessFact::MapValue);
        assert_eq!(facts.get(10), AccessFact::Other, "unknown offset must stay generic");
    }

    #[test]
    fn map_value_facts_degrade_past_the_value_bound() {
        let fd = 1u32;
        let mut lddw = Insn::lddw_lo(1, map_ptr_value(fd));
        lddw.src = PSEUDO_MAP_FD;
        lddw.imm = fd as i32;
        // An 8-byte load at offset 4 of an 8-byte value crosses the bound:
        // still accepted (the run-time path faults it, as before), but it
        // must not earn the direct-access fact.
        let insns = vec![
            lddw,
            Insn::lddw_hi(0),
            Insn::mov64_reg(2, 10),
            Insn::alu64_imm(alu::ADD, 2, -8),
            Insn::store_imm(AccessSize::Word, 10, -8, 0),
            Insn::call(ids::MAP_LOOKUP_ELEM),
            Insn::jmp_imm(jmp::JEQ, 0, 0, 2),
            Insn::load(AccessSize::Double, 3, 0, 4),
            Insn::mov64_imm(0, 0),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        let prog = Program::new("t", ProgramType::SocketFilter, insns);
        let mut maps: HashMap<u32, MapHandle> = HashMap::new();
        maps.insert(1, ArrayMap::new(8, 4));
        let (_, facts) = verify_with_facts(&prog, &HelperRegistry::with_base_helpers(), &maps).unwrap();
        assert_eq!(facts.get(7), AccessFact::Other);
    }

    #[test]
    fn rejects_pointer_multiplication() {
        let insns = vec![
            Insn::mov64_reg(2, 10),
            Insn::alu64_imm(alu::MUL, 2, 8),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        assert!(verify_insns(insns).is_err());
    }

    #[test]
    fn rejects_pointer_pointer_arithmetic() {
        let insns = vec![
            Insn::mov64_reg(2, 10),
            Insn::alu64_reg(alu::ADD, 2, 1),
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        assert!(verify_insns(insns).is_err());
    }

    #[test]
    fn gates_helpers_by_program_type() {
        static ONLY_XMIT: &[ProgramType] = &[ProgramType::LwtXmit];
        fn noop(_api: &mut crate::vm::HelperApi<'_, '_>, _args: [u64; 5]) -> i64 {
            0
        }
        let mut helpers = HelperRegistry::with_base_helpers();
        helpers.register(200, "xmit_only", noop, Some(ONLY_XMIT));
        let insns = vec![Insn::call(200), Insn::exit()];
        let seg6 = Program::new("t", ProgramType::LwtSeg6Local, insns.clone());
        assert!(verify(&seg6, &helpers, &HashMap::new()).is_err());
        let xmit = Program::new("t", ProgramType::LwtXmit, insns);
        verify(&xmit, &helpers, &HashMap::new()).unwrap();
    }

    #[test]
    fn access_facts_classify_regions() {
        let insns = vec![
            Insn::store_imm(AccessSize::Double, 10, -8, 7), // stack store
            Insn::load(AccessSize::Word, 0, 1, 16),         // ctx load
            Insn::exit(),
        ];
        let prog = Program::new("t", ProgramType::SocketFilter, insns);
        let (_, facts) =
            verify_with_facts(&prog, &HelperRegistry::with_base_helpers(), &HashMap::new()).unwrap();
        assert_eq!(facts.get(0), AccessFact::Stack);
        assert_eq!(facts.get(1), AccessFact::Ctx { end: 20 });
        assert_eq!(facts.get(2), AccessFact::Other);
    }

    #[test]
    fn access_facts_mark_packet_loads() {
        // LWT programs get a packet pointer from ctx[0].
        let insns = vec![
            Insn::load(AccessSize::Double, 2, 1, 0), // r2 = packet ptr
            Insn::load(AccessSize::Byte, 0, 2, 3),   // packet load
            Insn::exit(),
        ];
        let prog = Program::new("t", ProgramType::LwtXmit, insns);
        let (_, facts) =
            verify_with_facts(&prog, &HelperRegistry::with_base_helpers(), &HashMap::new()).unwrap();
        assert_eq!(facts.get(0), AccessFact::Ctx { end: 8 });
        assert_eq!(facts.get(1), AccessFact::Packet);
    }

    #[test]
    fn access_facts_degrade_on_conflicting_paths() {
        // One path loads through a ctx pointer, the other through a stack
        // pointer, both via r2 at the same insn — the fact must degrade to
        // Other so the native tier falls back to generic resolution.
        let insns = vec![
            Insn::mov64_reg(2, 1), // r2 = ctx ptr
            Insn::load(AccessSize::Byte, 0, 1, 0),
            Insn::jmp_imm(jmp::JEQ, 0, 0, 2),
            Insn::mov64_reg(2, 10), // fallthrough: r2 = fp
            Insn::alu64_imm(alu::ADD, 2, -16),
            Insn::load(AccessSize::Byte, 3, 2, 4), // ctx+4 on one path, stack-12 on the other
            Insn::mov64_imm(0, 0),
            Insn::exit(),
        ];
        let prog = Program::new("t", ProgramType::SocketFilter, insns);
        let (_, facts) =
            verify_with_facts(&prog, &HelperRegistry::with_base_helpers(), &HashMap::new()).unwrap();
        assert_eq!(facts.get(5), AccessFact::Other);
    }

    #[test]
    fn counts_branches() {
        let insns = vec![
            Insn::mov64_imm(0, 1),
            Insn::jmp_imm(jmp::JEQ, 0, 1, 1),
            Insn::mov64_imm(0, 2),
            Insn::exit(),
        ];
        let stats = verify_insns(insns).unwrap();
        assert_eq!(stats.branches, 1);
    }
}
