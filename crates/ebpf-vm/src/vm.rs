//! The virtual-machine execution core.
//!
//! This module defines the synthetic address space programs see, the
//! per-invocation run state (registers, stack, map-value regions), the
//! [`RunContext`] an embedder supplies (context struct, packet bytes and a
//! [`VmEnv`] for kernel-side services), and [`execute_insn`], the single
//! instruction-execution routine shared by the interpreter and the
//! pre-decoded "JIT".
//!
//! ## Address space
//!
//! eBPF programs manipulate 64-bit values that may be pointers. Instead of
//! exposing host addresses, the VM places every accessible object at a
//! fixed synthetic base:
//!
//! | region      | base              | access |
//! |-------------|-------------------|--------|
//! | context     | [`CTX_BASE`]      | read/write |
//! | packet      | [`PKT_BASE`]      | read-only (writes must go through helpers, as the paper mandates) |
//! | stack       | [`STACK_BASE`]    | read/write |
//! | map values  | [`MAP_VALUE_BASE`]| read/write |
//! | map handles | [`MAP_PTR_BASE`]  | opaque (only passed to helpers) |

use crate::error::{Error, Result};
use crate::helpers::HelperRegistry;
use crate::insn::{alu, class, jmp, src, AccessSize, Insn, NUM_REGS, STACK_SIZE};
use crate::maps::{MapHandle, ValueRef};
use crate::program::LoadedProgram;
use std::any::Any;
use std::collections::HashMap;

/// Base address of the context structure.
pub const CTX_BASE: u64 = 0x1000_0000_0000;
/// Base address of the packet bytes.
pub const PKT_BASE: u64 = 0x2000_0000_0000;
/// Base address of the stack; `r10` points at `STACK_BASE + STACK_SIZE`.
pub const STACK_BASE: u64 = 0x3000_0000_0000;
/// Base address of map-value regions returned by `bpf_map_lookup_elem`.
pub const MAP_VALUE_BASE: u64 = 0x4000_0000_0000;
/// Base of the opaque map-handle pointers loaded by pseudo-map-fd `lddw`.
pub const MAP_PTR_BASE: u64 = 0x5000_0000_0000;
/// Address stride between two map-value regions.
pub const MAP_VALUE_STRIDE: u64 = 0x1_0000_0000;

/// Default instruction budget per invocation, matching the kernel's
/// complexity limit order of magnitude.
pub const DEFAULT_INSN_BUDGET: u64 = 1_000_000;

/// Byte offset, inside every LWT-style context structure, of the 64-bit
/// `data` pointer to the first packet byte. The verifier gives loads from
/// this offset the packet-pointer type and embedders must place
/// [`PKT_BASE`] there when building the context.
pub const CTX_OFF_DATA: i64 = 0;
/// Byte offset of the 64-bit `data_end` pointer (one past the last packet
/// byte) inside every LWT-style context structure.
pub const CTX_OFF_DATA_END: i64 = 8;

/// The opaque pointer value representing the map with file descriptor `fd`.
pub fn map_ptr_value(fd: u32) -> u64 {
    MAP_PTR_BASE | u64::from(fd)
}

/// Recovers the map file descriptor from an opaque map pointer.
pub fn fd_from_map_ptr(value: u64) -> Option<u32> {
    if value & !0xffff_ffff == MAP_PTR_BASE {
        Some(value as u32)
    } else {
        None
    }
}

/// A per-invocation snapshot of the trivially-pure helper results, used by
/// the native tier to inline `bpf_ktime_get_ns` / `bpf_get_smp_processor_id`
/// (and to tag the array-map lookup cache) as direct loads instead of
/// trampoline calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvSnapshot {
    /// The value `ktime_ns()` returns for the whole invocation.
    pub ktime_ns: u64,
    /// The value `cpu_id()` returns for the whole invocation.
    pub cpu_id: u32,
}

/// Kernel-side services available to helpers.
///
/// The base implementation is enough for pure computation; embedders such as
/// `seg6-core` supply an environment that also carries the datapath state
/// (FIB, timestamps, the SRv6 action machinery) and is recovered by the
/// SRv6-specific helpers through [`VmEnv::as_any_mut`].
pub trait VmEnv {
    /// Downcasting hook so embedder-specific helpers can reach their state.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Monotonic clock in nanoseconds (`bpf_ktime_get_ns`).
    fn ktime_ns(&mut self) -> u64 {
        0
    }
    /// Logical CPU the program runs on (`bpf_get_smp_processor_id`). The
    /// multi-queue runtime sets this to the worker shard id, which is also
    /// the slot per-CPU maps index.
    fn cpu_id(&mut self) -> u32 {
        0
    }
    /// Pseudo-random number (`bpf_get_prandom_u32`).
    fn prandom_u32(&mut self) -> u32 {
        0x9e37_79b9
    }
    /// Sink for `bpf_trace_printk`.
    fn trace(&mut self, _message: &str) {}

    /// Environments whose `ktime_ns`/`cpu_id` are stable for the duration of
    /// one program run may return a snapshot of them, which lets the native
    /// tier inline those helpers as direct loads. Environments that log,
    /// count or otherwise observe each helper call (e.g. the differential
    /// fuzz recorder) must keep the default `None` so every call still goes
    /// through the trampoline.
    fn snapshot(&mut self) -> Option<EnvSnapshot> {
        None
    }
}

/// A [`VmEnv`] with no services, for tests and pure programs.
#[derive(Debug, Default)]
pub struct NullEnv;

impl VmEnv for NullEnv {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn snapshot(&mut self) -> Option<EnvSnapshot> {
        Some(EnvSnapshot { ktime_ns: 0, cpu_id: 0 })
    }
}

/// Everything the embedder passes for one program invocation.
pub struct RunContext<'a> {
    /// The context structure (e.g. the `__sk_buff`-like layout built by the
    /// seg6local hook). `r1` points at its first byte.
    pub ctx: &'a mut [u8],
    /// The packet bytes, readable by the program and mutable by helpers.
    pub packet: &'a mut Vec<u8>,
    /// Kernel-side services.
    pub env: &'a mut dyn VmEnv,
}

/// Per-invocation machine state.
#[derive(Debug)]
pub struct RunState {
    /// General-purpose registers r0–r10.
    pub regs: [u64; NUM_REGS],
    /// The 512-byte stack.
    pub stack: Vec<u8>,
    /// Map-value regions made visible to the program by lookups.
    value_regions: Vec<ValueRef>,
    /// Per-region bias (`host data pointer - synthetic region base`), kept
    /// parallel to `value_regions` so the native tier can turn a synthetic
    /// map-value address into a host address with one table load.
    region_bias: Vec<u64>,
    /// Dedup index from the `ValueRef` allocation to its region, so repeated
    /// lookups of the same value return the same synthetic address.
    region_dedup: HashMap<usize, u64>,
    /// Native-tier array-lookup site caches, keyed by program uid. Entries
    /// are `[tag, addr]` pairs per call site (see `codegen`).
    site_caches: Vec<(u64, Box<[u64]>)>,
    /// Number of instructions executed so far.
    pub insn_executed: u64,
    /// Maximum number of instructions before aborting.
    pub insn_budget: u64,
}

impl RunState {
    /// Creates a fresh state with `r1` pointing at the context and `r10` at
    /// the top of the stack.
    pub fn new(ctx_len: usize) -> Self {
        let mut regs = [0u64; NUM_REGS];
        regs[1] = CTX_BASE;
        regs[10] = STACK_BASE + STACK_SIZE as u64;
        let _ = ctx_len;
        RunState {
            regs,
            stack: vec![0u8; STACK_SIZE],
            value_regions: Vec::new(),
            region_bias: Vec::new(),
            region_dedup: HashMap::new(),
            site_caches: Vec::new(),
            insn_executed: 0,
            insn_budget: DEFAULT_INSN_BUDGET,
        }
    }

    /// Returns the state to its freshly-created condition without releasing
    /// any of its buffers, so one `RunState` can be reused across program
    /// invocations (the per-packet hot path keeps one per datapath instead
    /// of allocating a 512-byte stack per packet).
    pub fn reset(&mut self) {
        self.regs = [0u64; NUM_REGS];
        self.regs[1] = CTX_BASE;
        self.regs[10] = STACK_BASE + STACK_SIZE as u64;
        self.stack.fill(0);
        // Map-value regions deliberately persist across runs: like kernel
        // map-value pointers, the addresses handed out stay valid, repeated
        // lookups of the same value return the same address (the dedup
        // below), and the native tier's per-site lookup cache relies on
        // both. The set is bounded by the distinct values ever looked up.
        self.insn_executed = 0;
        self.insn_budget = DEFAULT_INSN_BUDGET;
    }

    /// Registers a map value region and returns the synthetic address the
    /// program can use to access it. Registering the same value twice
    /// returns the same address.
    pub fn register_value_region(&mut self, value: ValueRef) -> u64 {
        let key = std::sync::Arc::as_ptr(&value) as *const u8 as usize;
        if let Some(&idx) = self.region_dedup.get(&key) {
            return MAP_VALUE_BASE + idx * MAP_VALUE_STRIDE;
        }
        let idx = self.value_regions.len() as u64;
        let base = MAP_VALUE_BASE + idx * MAP_VALUE_STRIDE;
        // The buffer pointer is stable: map values are fixed-size and
        // updated in place, so the Vec behind the lock never reallocates.
        self.region_bias.push((value.read().as_ptr() as u64).wrapping_sub(base));
        self.region_dedup.insert(key, idx);
        self.value_regions.push(value);
        base
    }

    /// Base pointer of the per-region bias table (see `region_bias`). The
    /// table may move when a new region is registered, so the native tier
    /// re-reads this after every helper call.
    pub(crate) fn region_bias_ptr(&self) -> *const u64 {
        self.region_bias.as_ptr()
    }

    /// Returns (creating it on first use) the array-lookup site cache for
    /// the program identified by `uid`, with room for `sites` entries of
    /// two words each. The cache persists with the state, like the regions
    /// its cached addresses point into.
    pub(crate) fn lookup_cache(&mut self, uid: u64, sites: usize) -> *mut u64 {
        if let Some(pos) = self.site_caches.iter().position(|(u, _)| *u == uid) {
            return self.site_caches[pos].1.as_mut_ptr();
        }
        self.site_caches.push((uid, vec![0u64; sites * 2].into_boxed_slice()));
        self.site_caches.last_mut().expect("just pushed").1.as_mut_ptr()
    }
}

/// Control-flow outcome of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Fall through to the next instruction.
    Next,
    /// The instruction consumed two slots (`lddw`).
    SkipOne,
    /// Branch by `delta` instructions relative to the *next* instruction.
    Branch(i64),
    /// The program returned; `r0` holds the result.
    Exit,
}

// ---------------------------------------------------------------------------
// Memory access
// ---------------------------------------------------------------------------

enum Target {
    Stack(usize),
    Ctx(usize),
    Packet(usize),
    MapValue { region: usize, offset: usize },
}

fn resolve(state: &RunState, rc: &RunContext<'_>, addr: u64, len: usize) -> Result<Target> {
    let end_ok = |start: usize, region_len: usize| start.checked_add(len).is_some_and(|e| e <= region_len);
    if (STACK_BASE..STACK_BASE + STACK_SIZE as u64).contains(&addr) {
        let off = (addr - STACK_BASE) as usize;
        if end_ok(off, STACK_SIZE) {
            return Ok(Target::Stack(off));
        }
    } else if addr >= CTX_BASE && addr < CTX_BASE + rc.ctx.len() as u64 {
        let off = (addr - CTX_BASE) as usize;
        if end_ok(off, rc.ctx.len()) {
            return Ok(Target::Ctx(off));
        }
    } else if addr >= PKT_BASE && addr < PKT_BASE + rc.packet.len() as u64 {
        let off = (addr - PKT_BASE) as usize;
        if end_ok(off, rc.packet.len()) {
            return Ok(Target::Packet(off));
        }
    } else if (MAP_VALUE_BASE..MAP_PTR_BASE).contains(&addr) {
        let region = ((addr - MAP_VALUE_BASE) / MAP_VALUE_STRIDE) as usize;
        let offset = ((addr - MAP_VALUE_BASE) % MAP_VALUE_STRIDE) as usize;
        if let Some(value) = state.value_regions.get(region) {
            if end_ok(offset, value.read().len()) {
                return Ok(Target::MapValue { region, offset });
            }
        }
    }
    Err(Error::Runtime { insn: 0, message: format!("invalid memory access at 0x{addr:x} len {len}") })
}

/// Runs `f` over the `len` bytes at `addr` without copying them: the slice
/// borrows straight from the resolved region (stack, context, packet or a
/// map value, the latter under its read guard). This is the borrow surface
/// the allocation-free hot path is built on; [`read_into`] and
/// [`read_bytes`] are conveniences layered on top of it.
pub fn with_bytes<R>(
    state: &RunState,
    rc: &RunContext<'_>,
    addr: u64,
    len: usize,
    f: impl FnOnce(&[u8]) -> R,
) -> Result<R> {
    match resolve(state, rc, addr, len)? {
        Target::Stack(off) => Ok(f(&state.stack[off..off + len])),
        Target::Ctx(off) => Ok(f(&rc.ctx[off..off + len])),
        Target::Packet(off) => Ok(f(&rc.packet[off..off + len])),
        Target::MapValue { region, offset } => {
            let guard = state.value_regions[region].read();
            Ok(f(&guard[offset..offset + len]))
        }
    }
}

/// Copies the bytes at `addr` into `buf` — the allocation-free read used for
/// fixed-size helper parameters (IPv6 addresses, table ids, map keys), which
/// land in stack arrays instead of fresh `Vec`s.
pub fn read_into(state: &RunState, rc: &RunContext<'_>, addr: u64, buf: &mut [u8]) -> Result<()> {
    with_bytes(state, rc, addr, buf.len(), |bytes| buf.copy_from_slice(bytes))
}

/// Reads `len` bytes at `addr` into a freshly allocated buffer. Prefer
/// [`with_bytes`] / [`read_into`] anywhere the read happens per packet.
pub fn read_bytes(state: &RunState, rc: &RunContext<'_>, addr: u64, len: usize) -> Result<Vec<u8>> {
    with_bytes(state, rc, addr, len, |bytes| bytes.to_vec())
}

/// Copies `len` packet bytes starting at `pkt_off` directly into program
/// memory at `dst` — what `bpf_skb_load_bytes` does, without the
/// intermediate buffer the old `read_bytes`/`write_bytes` pairing required.
pub fn copy_from_packet(
    state: &mut RunState,
    rc: &mut RunContext<'_>,
    pkt_off: usize,
    len: usize,
    dst: u64,
) -> Result<()> {
    if pkt_off.checked_add(len).is_none_or(|end| end > rc.packet.len()) {
        return Err(Error::Runtime { insn: 0, message: "packet read out of bounds".into() });
    }
    match resolve(state, rc, dst, len)? {
        Target::Stack(off) => state.stack[off..off + len].copy_from_slice(&rc.packet[pkt_off..pkt_off + len]),
        Target::Ctx(off) => {
            let RunContext { ctx, packet, .. } = rc;
            ctx[off..off + len].copy_from_slice(&packet[pkt_off..pkt_off + len]);
        }
        Target::Packet(_) => {
            return Err(Error::Runtime {
                insn: 0,
                message: "direct packet writes are not allowed; use a seg6 helper".into(),
            })
        }
        Target::MapValue { region, offset } => state.value_regions[region].write()[offset..offset + len]
            .copy_from_slice(&rc.packet[pkt_off..pkt_off + len]),
    }
    Ok(())
}

/// Writes `bytes` at `addr`. The packet region is rejected: the paper's
/// design forbids direct packet writes from seg6local programs.
pub fn write_bytes(state: &mut RunState, rc: &mut RunContext<'_>, addr: u64, bytes: &[u8]) -> Result<()> {
    match resolve(state, rc, addr, bytes.len())? {
        Target::Stack(off) => state.stack[off..off + bytes.len()].copy_from_slice(bytes),
        Target::Ctx(off) => rc.ctx[off..off + bytes.len()].copy_from_slice(bytes),
        Target::Packet(_) => {
            return Err(Error::Runtime {
                insn: 0,
                message: "direct packet writes are not allowed; use a seg6 helper".into(),
            })
        }
        Target::MapValue { region, offset } => {
            state.value_regions[region].write()[offset..offset + bytes.len()].copy_from_slice(bytes)
        }
    }
    Ok(())
}

/// Loads an unsigned little-endian value of the given width. Reads borrow
/// straight from the resolved region — this is the `LDX` hot path and it
/// performs no heap allocation.
pub fn load_scalar(state: &RunState, rc: &RunContext<'_>, addr: u64, size: AccessSize) -> Result<u64> {
    let len = size.bytes();
    let mut buf = [0u8; 8];
    with_bytes(state, rc, addr, len, |bytes| buf[..len].copy_from_slice(bytes))?;
    Ok(u64::from_le_bytes(buf))
}

/// Stores the low bytes of `value` little-endian at `addr`.
pub fn store_scalar(
    state: &mut RunState,
    rc: &mut RunContext<'_>,
    addr: u64,
    size: AccessSize,
    value: u64,
) -> Result<()> {
    let bytes = value.to_le_bytes();
    write_bytes(state, rc, addr, &bytes[..size.bytes()])
}

// ---------------------------------------------------------------------------
// Helper API
// ---------------------------------------------------------------------------

/// The view of the machine a helper function receives.
pub struct HelperApi<'r, 'a> {
    /// The run state (registers, stack, value regions).
    pub state: &'r mut RunState,
    /// The embedder-provided context, packet and environment.
    pub rc: &'r mut RunContext<'a>,
    /// Maps attached to the program, keyed by fd.
    pub maps: &'r HashMap<u32, MapHandle>,
}

impl<'r, 'a> HelperApi<'r, 'a> {
    /// Reads program-visible memory (stack, ctx, packet or map values) into
    /// a fresh allocation. Prefer [`HelperApi::read_into`] /
    /// [`HelperApi::with_bytes`] for per-packet reads.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>> {
        read_bytes(self.state, self.rc, addr, len)
    }

    /// Copies program-visible memory into `buf` — the allocation-free read
    /// for fixed-size parameters (addresses, table ids, map keys).
    pub fn read_into(&self, addr: u64, buf: &mut [u8]) -> Result<()> {
        read_into(self.state, self.rc, addr, buf)
    }

    /// Runs `f` over program-visible memory without copying it.
    pub fn with_bytes<R>(&self, addr: u64, len: usize, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        with_bytes(self.state, self.rc, addr, len, f)
    }

    /// Copies packet bytes straight into program memory (the
    /// `bpf_skb_load_bytes` primitive), with no intermediate buffer.
    pub fn copy_from_packet(&mut self, pkt_off: usize, len: usize, dst: u64) -> Result<()> {
        copy_from_packet(self.state, self.rc, pkt_off, len, dst)
    }

    /// Writes program-visible memory (everything but the packet).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<()> {
        write_bytes(self.state, self.rc, addr, bytes)
    }

    /// The packet bytes.
    pub fn packet(&self) -> &[u8] {
        self.rc.packet
    }

    /// Mutable access to the packet bytes — only helpers may modify packets.
    pub fn packet_mut(&mut self) -> &mut Vec<u8> {
        self.rc.packet
    }

    /// The context structure bytes.
    pub fn ctx(&self) -> &[u8] {
        self.rc.ctx
    }

    /// Mutable access to the context structure.
    pub fn ctx_mut(&mut self) -> &mut [u8] {
        self.rc.ctx
    }

    /// The embedder environment.
    pub fn env(&mut self) -> &mut dyn VmEnv {
        self.rc.env
    }

    /// The embedder environment as `Any`, for downcasting to a concrete
    /// type (e.g. the seg6 datapath environment).
    pub fn env_any(&mut self) -> &mut dyn Any {
        self.rc.env.as_any_mut()
    }

    /// Resolves an opaque map pointer (produced by a pseudo-map-fd `lddw`)
    /// to the attached map.
    pub fn map_by_ptr(&self, ptr: u64) -> Result<MapHandle> {
        let fd = fd_from_map_ptr(ptr).ok_or_else(|| Error::Helper("argument is not a map pointer".into()))?;
        self.maps
            .get(&fd)
            .cloned()
            .ok_or_else(|| Error::Helper(format!("map fd {fd} not attached to this program")))
    }

    /// Makes a map value accessible to the program and returns its address.
    pub fn register_value_region(&mut self, value: ValueRef) -> u64 {
        self.state.register_value_region(value)
    }
}

// ---------------------------------------------------------------------------
// Instruction execution
// ---------------------------------------------------------------------------

fn alu_compute(op: u8, is64: bool, dst: u64, srcv: u64, pc: usize) -> Result<u64> {
    let value = match op {
        alu::ADD => dst.wrapping_add(srcv),
        alu::SUB => dst.wrapping_sub(srcv),
        alu::MUL => dst.wrapping_mul(srcv),
        alu::DIV => {
            if (is64 && srcv == 0) || (!is64 && srcv as u32 == 0) {
                0
            } else if is64 {
                dst / srcv
            } else {
                u64::from((dst as u32) / (srcv as u32))
            }
        }
        alu::MOD => {
            if (is64 && srcv == 0) || (!is64 && srcv as u32 == 0) {
                dst
            } else if is64 {
                dst % srcv
            } else {
                u64::from((dst as u32) % (srcv as u32))
            }
        }
        alu::OR => dst | srcv,
        alu::AND => dst & srcv,
        alu::XOR => dst ^ srcv,
        alu::LSH => {
            if is64 {
                dst.wrapping_shl(srcv as u32)
            } else {
                u64::from((dst as u32).wrapping_shl(srcv as u32))
            }
        }
        alu::RSH => {
            if is64 {
                dst.wrapping_shr(srcv as u32)
            } else {
                u64::from((dst as u32).wrapping_shr(srcv as u32))
            }
        }
        alu::ARSH => {
            if is64 {
                (dst as i64).wrapping_shr(srcv as u32) as u64
            } else {
                u64::from(((dst as i32).wrapping_shr(srcv as u32)) as u32)
            }
        }
        alu::MOV => srcv,
        _ => return Err(Error::runtime(pc, format!("unsupported ALU op 0x{op:x}"))),
    };
    Ok(if is64 { value } else { u64::from(value as u32) })
}

fn byte_swap(value: u64, bits: i32, to_be: bool, pc: usize) -> Result<u64> {
    // On a little-endian VM, "to big endian" swaps bytes and "to little
    // endian" truncates.
    let swapped = match bits {
        16 => {
            if to_be {
                u64::from((value as u16).swap_bytes())
            } else {
                u64::from(value as u16)
            }
        }
        32 => {
            if to_be {
                u64::from((value as u32).swap_bytes())
            } else {
                u64::from(value as u32)
            }
        }
        64 => {
            if to_be {
                value.swap_bytes()
            } else {
                value
            }
        }
        _ => return Err(Error::runtime(pc, format!("unsupported byte swap width {bits}"))),
    };
    Ok(swapped)
}

/// Evaluates a jump condition.
pub fn jump_taken(op: u8, is64: bool, dst: u64, srcv: u64) -> bool {
    let (d, s, ds, ss) = if is64 {
        (dst, srcv, dst as i64, srcv as i64)
    } else {
        (u64::from(dst as u32), u64::from(srcv as u32), i64::from(dst as i32), i64::from(srcv as i32))
    };
    match op {
        jmp::JA => true,
        jmp::JEQ => d == s,
        jmp::JNE => d != s,
        jmp::JGT => d > s,
        jmp::JGE => d >= s,
        jmp::JLT => d < s,
        jmp::JLE => d <= s,
        jmp::JSET => d & s != 0,
        jmp::JSGT => ds > ss,
        jmp::JSGE => ds >= ss,
        jmp::JSLT => ds < ss,
        jmp::JSLE => ds <= ss,
        _ => false,
    }
}

/// Executes one instruction. `next` is the instruction that would follow in
/// program order (needed only by `lddw` to fetch its second slot).
pub fn execute_insn(
    state: &mut RunState,
    rc: &mut RunContext<'_>,
    maps: &HashMap<u32, MapHandle>,
    helpers: &HelperRegistry,
    insn: &Insn,
    next: Option<&Insn>,
    pc: usize,
) -> Result<Flow> {
    state.insn_executed += 1;
    if state.insn_executed > state.insn_budget {
        return Err(Error::runtime(pc, "instruction budget exceeded"));
    }
    let dst = usize::from(insn.dst);
    let srcr = usize::from(insn.src);
    if dst >= NUM_REGS || srcr >= NUM_REGS {
        return Err(Error::runtime(pc, "register index out of range"));
    }
    match insn.class() {
        class::ALU | class::ALU64 => {
            let is64 = insn.class() == class::ALU64;
            let op = insn.opcode & 0xf0;
            if op == alu::NEG {
                let value = if is64 {
                    (state.regs[dst] as i64).wrapping_neg() as u64
                } else {
                    u64::from((state.regs[dst] as i32).wrapping_neg() as u32)
                };
                state.regs[dst] = value;
            } else if op == alu::END {
                state.regs[dst] = byte_swap(state.regs[dst], insn.imm, insn.opcode & src::X != 0, pc)?;
            } else {
                let operand =
                    if insn.opcode & src::X != 0 { state.regs[srcr] } else { insn.imm as i64 as u64 };
                state.regs[dst] = alu_compute(op, is64, state.regs[dst], operand, pc)?;
            }
            Ok(Flow::Next)
        }
        class::LD => {
            if !insn.is_lddw() {
                return Err(Error::runtime(pc, "unsupported LD mode (only lddw is implemented)"));
            }
            let hi = next.ok_or_else(|| Error::runtime(pc, "lddw missing second slot"))?;
            let value = (u64::from(hi.imm as u32) << 32) | u64::from(insn.imm as u32);
            state.regs[dst] = value;
            Ok(Flow::SkipOne)
        }
        class::LDX => {
            let size = AccessSize::from_opcode(insn.opcode);
            let addr = state.regs[srcr].wrapping_add(insn.off as i64 as u64);
            state.regs[dst] = load_scalar(state, rc, addr, size).map_err(|e| relocate(e, pc))?;
            Ok(Flow::Next)
        }
        class::ST | class::STX => {
            let size = AccessSize::from_opcode(insn.opcode);
            let addr = state.regs[dst].wrapping_add(insn.off as i64 as u64);
            let value = if insn.class() == class::STX { state.regs[srcr] } else { insn.imm as i64 as u64 };
            store_scalar(state, rc, addr, size, value).map_err(|e| relocate(e, pc))?;
            Ok(Flow::Next)
        }
        class::JMP | class::JMP32 => {
            let is64 = insn.class() == class::JMP;
            let op = insn.opcode & 0xf0;
            match op {
                jmp::CALL => {
                    let id = insn.imm as u32;
                    let args = [state.regs[1], state.regs[2], state.regs[3], state.regs[4], state.regs[5]];
                    let func =
                        helpers.get(id).ok_or_else(|| Error::runtime(pc, format!("unknown helper {id}")))?;
                    let mut api = HelperApi { state, rc, maps };
                    let ret = (func.func)(&mut api, args);
                    state.regs[0] = ret as u64;
                    Ok(Flow::Next)
                }
                jmp::EXIT => Ok(Flow::Exit),
                jmp::JA => Ok(Flow::Branch(i64::from(insn.off))),
                _ => {
                    let operand =
                        if insn.opcode & src::X != 0 { state.regs[srcr] } else { insn.imm as i64 as u64 };
                    if jump_taken(op, is64, state.regs[dst], operand) {
                        Ok(Flow::Branch(i64::from(insn.off)))
                    } else {
                        Ok(Flow::Next)
                    }
                }
            }
        }
        other => Err(Error::runtime(pc, format!("unknown instruction class {other}"))),
    }
}

fn relocate(err: Error, pc: usize) -> Error {
    match err {
        Error::Runtime { message, .. } => Error::Runtime { insn: pc, message },
        other => other,
    }
}

/// Executes a loaded program on its selected execution tier
/// ([`LoadedProgram::exec_tier`]). This is the highest-level convenience
/// entry point; the dedicated [`crate::interp`], [`crate::jit`] and
/// [`crate::codegen`] modules expose the engines separately for
/// benchmarking.
pub fn run_program(loaded: &LoadedProgram, helpers: &HelperRegistry, rc: &mut RunContext<'_>) -> Result<u64> {
    let mut state = RunState::new(rc.ctx.len());
    run_program_with_state(loaded, helpers, rc, loaded.exec_tier(), &mut state)
}

/// Like [`run_program`], but reuses a caller-owned [`RunState`] (resetting
/// it first) instead of allocating a fresh one, and takes the tier
/// explicitly — the per-packet entry point of the zero-allocation datapath.
/// Every tier's artifact was built at load time, so no branch of this
/// dispatch allocates. [`crate::program::ExecTier::Native`] falls back to
/// the fused tier on hosts without a native backend.
pub fn run_program_with_state(
    loaded: &LoadedProgram,
    helpers: &HelperRegistry,
    rc: &mut RunContext<'_>,
    tier: crate::program::ExecTier,
    state: &mut RunState,
) -> Result<u64> {
    use crate::program::ExecTier;
    state.reset();
    match tier {
        ExecTier::Interp => crate::interp::run_with_state(loaded.interp_image(), loaded, helpers, rc, state),
        ExecTier::MicroOp => crate::jit::run_with_state(loaded.jit()?, loaded, helpers, rc, state),
        ExecTier::Fused => crate::jit::run_fused_with_state(loaded.fused()?, loaded, helpers, rc, state),
        ExecTier::Native => match loaded.native()? {
            Some(native) => crate::codegen::run(native, loaded, rc, state),
            None => crate::jit::run_fused_with_state(loaded.fused()?, loaded, helpers, rc, state),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;
    use crate::maps::Map;

    fn state_and_ctx() -> (RunState, Vec<u8>, Vec<u8>) {
        (RunState::new(16), vec![0u8; 16], vec![0xaa; 32])
    }

    #[test]
    fn map_ptr_roundtrip() {
        assert_eq!(fd_from_map_ptr(map_ptr_value(7)), Some(7));
        assert_eq!(fd_from_map_ptr(0x1234), None);
        assert_eq!(fd_from_map_ptr(PKT_BASE), None);
    }

    #[test]
    fn stack_read_write_roundtrip() {
        let (mut state, mut ctx, mut pkt) = state_and_ctx();
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let addr = STACK_BASE + 100;
        store_scalar(&mut state, &mut rc, addr, AccessSize::Double, 0xdead_beef_1234_5678).unwrap();
        assert_eq!(load_scalar(&state, &rc, addr, AccessSize::Double).unwrap(), 0xdead_beef_1234_5678);
        assert_eq!(load_scalar(&state, &rc, addr, AccessSize::Byte).unwrap(), 0x78);
    }

    #[test]
    fn packet_is_read_only() {
        let (mut state, mut ctx, mut pkt) = state_and_ctx();
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        assert_eq!(load_scalar(&state, &rc, PKT_BASE, AccessSize::Byte).unwrap(), 0xaa);
        assert!(store_scalar(&mut state, &mut rc, PKT_BASE, AccessSize::Byte, 1).is_err());
    }

    #[test]
    fn out_of_bounds_accesses_fault() {
        let (mut state, mut ctx, mut pkt) = state_and_ctx();
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        assert!(load_scalar(&state, &rc, PKT_BASE + 31, AccessSize::Word).is_err());
        assert!(load_scalar(&state, &rc, STACK_BASE + STACK_SIZE as u64, AccessSize::Byte).is_err());
        assert!(load_scalar(&state, &rc, 0x42, AccessSize::Byte).is_err());
        assert!(store_scalar(&mut state, &mut rc, CTX_BASE + 15, AccessSize::Word, 0).is_err());
    }

    #[test]
    fn map_value_regions_are_shared_with_the_map() {
        let (mut state, mut ctx, mut pkt) = state_and_ctx();
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let map = crate::maps::ArrayMap::new(8, 1);
        let slot = map.lookup_ref(&0u32.to_ne_bytes()).unwrap();
        let addr = state.register_value_region(slot);
        store_scalar(&mut state, &mut rc, addr, AccessSize::Word, 0x0102_0304).unwrap();
        assert_eq!(map.lookup(&0u32.to_ne_bytes()).unwrap()[..4], [4, 3, 2, 1]);
    }

    #[test]
    fn alu_compute_basics() {
        assert_eq!(alu_compute(alu::ADD, true, 5, 7, 0).unwrap(), 12);
        assert_eq!(alu_compute(alu::SUB, true, 5, 7, 0).unwrap(), (5u64).wrapping_sub(7));
        assert_eq!(alu_compute(alu::SUB, false, 5, 7, 0).unwrap(), u64::from(5u32.wrapping_sub(7)));
        assert_eq!(alu_compute(alu::MUL, true, 3, 4, 0).unwrap(), 12);
        assert_eq!(alu_compute(alu::DIV, true, 10, 3, 0).unwrap(), 3);
        assert_eq!(alu_compute(alu::DIV, true, 10, 0, 0).unwrap(), 0);
        assert_eq!(alu_compute(alu::MOD, true, 10, 0, 0).unwrap(), 10);
        assert_eq!(alu_compute(alu::MOD, true, 10, 3, 0).unwrap(), 1);
        assert_eq!(alu_compute(alu::ARSH, true, (-8i64) as u64, 1, 0).unwrap(), (-4i64) as u64);
        assert_eq!(alu_compute(alu::MOV, false, 0, 0xffff_ffff_ffff_ffff, 0).unwrap(), 0xffff_ffff);
    }

    #[test]
    fn byte_swap_be16() {
        assert_eq!(byte_swap(0x1234, 16, true, 0).unwrap(), 0x3412);
        assert_eq!(byte_swap(0xaabb_ccdd, 32, true, 0).unwrap(), 0xddcc_bbaa);
        assert_eq!(byte_swap(0x1234_5678, 64, false, 0).unwrap(), 0x1234_5678);
        assert!(byte_swap(0, 8, true, 0).is_err());
    }

    #[test]
    fn jump_conditions() {
        assert!(jump_taken(jmp::JEQ, true, 5, 5));
        assert!(!jump_taken(jmp::JEQ, true, 5, 6));
        assert!(jump_taken(jmp::JNE, true, 5, 6));
        assert!(jump_taken(jmp::JGT, true, 6, 5));
        assert!(jump_taken(jmp::JSGT, true, 1, (-1i64) as u64));
        assert!(!jump_taken(jmp::JGT, true, 1, (-1i64) as u64));
        assert!(jump_taken(jmp::JSET, true, 0b1010, 0b0010));
        assert!(jump_taken(jmp::JSLT, true, (-5i64) as u64, 3));
        // 32-bit comparison ignores the upper half.
        assert!(jump_taken(jmp::JEQ, false, 0xffff_ffff_0000_0001, 1));
    }

    #[test]
    fn execute_simple_alu_and_exit() {
        let (mut state, mut ctx, mut pkt) = state_and_ctx();
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let maps = HashMap::new();
        let helpers = HelperRegistry::with_base_helpers();
        let insn = Insn::mov64_imm(0, 41);
        assert_eq!(execute_insn(&mut state, &mut rc, &maps, &helpers, &insn, None, 0).unwrap(), Flow::Next);
        let insn = Insn::alu64_imm(alu::ADD, 0, 1);
        execute_insn(&mut state, &mut rc, &maps, &helpers, &insn, None, 1).unwrap();
        assert_eq!(state.regs[0], 42);
        let insn = Insn::exit();
        assert_eq!(execute_insn(&mut state, &mut rc, &maps, &helpers, &insn, None, 2).unwrap(), Flow::Exit);
    }

    #[test]
    fn execute_unknown_helper_faults() {
        let (mut state, mut ctx, mut pkt) = state_and_ctx();
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let maps = HashMap::new();
        let helpers = HelperRegistry::with_base_helpers();
        let insn = Insn::call(9999);
        assert!(execute_insn(&mut state, &mut rc, &maps, &helpers, &insn, None, 0).is_err());
    }

    #[test]
    fn insn_budget_is_enforced() {
        let (mut state, mut ctx, mut pkt) = state_and_ctx();
        state.insn_budget = 2;
        let mut env = NullEnv;
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let maps = HashMap::new();
        let helpers = HelperRegistry::with_base_helpers();
        let insn = Insn::mov64_imm(0, 0);
        assert!(execute_insn(&mut state, &mut rc, &maps, &helpers, &insn, None, 0).is_ok());
        assert!(execute_insn(&mut state, &mut rc, &maps, &helpers, &insn, None, 0).is_ok());
        assert!(execute_insn(&mut state, &mut rc, &maps, &helpers, &insn, None, 0).is_err());
    }
}
