//! Differential fuzzing across the four execution tiers.
//!
//! A deterministic xorshift generator builds ~1000 randomized,
//! verifier-accepted LWT seg6local programs and runs each through the
//! interpreter, the micro-op tier, the fused-superinstruction tier and the
//! native x86-64 tier (where the host has one; elsewhere `Native`
//! transparently falls back to `Fused`, which still must agree). Every tier
//! must produce an identical exit value, register file, stack image,
//! context bytes, packet bytes and helper-call sequence — including on the
//! fault paths the out-of-bounds accesses deliberately provoke.
//!
//! The generator keeps the invariants the verifier cares about at every
//! snippet boundary: `r0`–`r7` hold scalars, `r8` holds the packet pointer,
//! `r9` holds the context pointer, and `r1`–`r5` are re-initialised after
//! each helper call. Branches only jump forward to snippet boundaries, so
//! every path sees the same register typing.

use ebpf_vm::program::{load, Program, ProgramType};
use ebpf_vm::vm::{run_program_with_state, RunContext, RunState, VmEnv, PKT_BASE};
use ebpf_vm::{Error, ExecTier, HelperRegistry};
use std::any::Any;
use std::collections::HashMap;

/// Number of verifier-accepted programs to push through all tiers.
const PROGRAMS: usize = 1000;
/// Generation attempts before giving up (the generator is tuned so nearly
/// every program verifies; this is a backstop, not a budget).
const MAX_ATTEMPTS: usize = 3 * PROGRAMS;

const PACKET_LEN: usize = 150;
const CTX_LEN: usize = 64;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

// ---------------------------------------------------------------------------
// Recording environment: makes helper-call sequences observable
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RecordingEnv {
    /// `(which, value)` per env service call, in order.
    log: Vec<(u8, u64)>,
    tick: u64,
}

impl VmEnv for RecordingEnv {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn ktime_ns(&mut self) -> u64 {
        self.tick += 1;
        let v = 0x4000 + self.tick * 7;
        self.log.push((0, v));
        v
    }

    fn cpu_id(&mut self) -> u32 {
        self.log.push((1, 3));
        3
    }

    fn prandom_u32(&mut self) -> u32 {
        self.tick += 1;
        let v = (self.tick as u32).wrapping_mul(0x9e37_79b9);
        self.log.push((2, u64::from(v)));
        v
    }
}

// ---------------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------------

/// Stack slots the prologue initialises; loads are restricted to these so
/// every verifier path sees them written.
const WARM_SLOTS: [i32; 4] = [-8, -16, -24, -32];

fn emit_scalar_alu(out: &mut String, rng: &mut Rng) {
    let dst = rng.below(8);
    let wide = if rng.chance(70) { "64" } else { "32" };
    let ops = ["add", "sub", "mul", "div", "mod", "or", "and", "xor", "lsh", "rsh", "arsh", "mov"];
    let op = ops[rng.below(ops.len() as u64) as usize];
    if rng.chance(50) {
        let imm: i64 = match op {
            "lsh" | "rsh" | "arsh" => {
                if wide == "64" {
                    rng.below(64) as i64
                } else {
                    rng.below(32) as i64
                }
            }
            "div" | "mod" => 1 + rng.below(254) as i64,
            _ => (rng.next() as u32 as i64) - (i64::from(u32::MAX) / 2),
        };
        out.push_str(&format!("{op}{wide} r{dst}, {imm}\n"));
    } else {
        let src = rng.below(8);
        out.push_str(&format!("{op}{wide} r{dst}, r{src}\n"));
    }
}

fn emit_unary(out: &mut String, rng: &mut Rng) {
    let dst = rng.below(8);
    match rng.below(4) {
        0 => out.push_str(&format!("neg64 r{dst}\n")),
        1 => out.push_str(&format!("neg32 r{dst}\n")),
        2 => {
            let bits = [16, 32, 64][rng.below(3) as usize];
            out.push_str(&format!("be{bits} r{dst}\n"));
        }
        _ => {
            let bits = [16, 32, 64][rng.below(3) as usize];
            out.push_str(&format!("le{bits} r{dst}\n"));
        }
    }
}

fn emit_stack_op(out: &mut String, rng: &mut Rng) {
    let (sz, bytes) = [("b", 1), ("h", 2), ("w", 4), ("dw", 8)][rng.below(4) as usize];
    if rng.chance(50) {
        // Store anywhere in the first 64 bytes of the frame.
        let slot = -8 * (1 + rng.below(8) as i32);
        let off = slot + (rng.below((8 / bytes) as u64) as i32) * bytes;
        if rng.chance(70) {
            let src = rng.below(8);
            out.push_str(&format!("stx{sz} [r10{off}], r{src}\n"));
        } else {
            let imm = rng.next() as u32 as i64 % 1000;
            out.push_str(&format!("st{sz} [r10{off}], {imm}\n"));
        }
    } else {
        // Load only from the prologue-warmed slots.
        let slot = WARM_SLOTS[rng.below(WARM_SLOTS.len() as u64) as usize];
        let off = slot + (rng.below((8 / bytes) as u64) as i32) * bytes;
        let dst = rng.below(8);
        out.push_str(&format!("ldx{sz} r{dst}, [r10{off}]\n"));
    }
}

fn emit_ctx_op(out: &mut String, rng: &mut Rng, oob: bool) {
    if rng.chance(60) {
        // Scalar read of a metadata field (past the two pointer fields).
        let (sz, step) = if rng.chance(50) { ("w", 4u64) } else { ("dw", 8u64) };
        let off = if oob {
            // Past the 64-byte runtime context but inside the verifier's
            // static MAX_CTX_SIZE — faults at run time on every tier.
            CTX_LEN as u64 + rng.below(16) * step
        } else {
            16 + rng.below((CTX_LEN as u64 - 16) / step) * step
        };
        let dst = rng.below(8);
        out.push_str(&format!("ldx{sz} r{dst}, [r9+{off}]\n"));
    } else {
        // Write to mark / the cb scratch area.
        let offs = [24u64, 40, 44, 48, 52, 56];
        let off = offs[rng.below(offs.len() as u64) as usize];
        if rng.chance(60) {
            let src = rng.below(8);
            out.push_str(&format!("stxw [r9+{off}], r{src}\n"));
        } else {
            out.push_str(&format!("stw [r9+{off}], {}\n", rng.below(0xffff)));
        }
    }
}

fn emit_packet_load(out: &mut String, rng: &mut Rng, oob: bool) {
    let (sz, bytes) = [("b", 1u64), ("h", 2), ("w", 4), ("dw", 8)][rng.below(4) as usize];
    let dst = rng.below(8);
    if rng.chance(70) {
        let off = if oob { PACKET_LEN as u64 + rng.below(60) } else { rng.below(PACKET_LEN as u64 - bytes) };
        out.push_str(&format!("ldx{sz} r{dst}, [r8+{off}]\n"));
    } else {
        // Variable offset: mask a scalar, add it to a packet-pointer copy,
        // load through it, then re-scalarise the temporary.
        let idx = rng.below(8);
        out.push_str(&format!("and64 r{idx}, 63\n"));
        out.push_str("mov64 r3, r8\n");
        out.push_str(&format!("add64 r3, r{idx}\n"));
        out.push_str(&format!("ldx{sz} r{dst}, [r3+0]\n"));
        out.push_str(&format!("mov64 r3, {}\n", rng.below(256)));
    }
}

fn emit_helper_call(out: &mut String, rng: &mut Rng) {
    match rng.below(4) {
        0 => out.push_str("call 5\n"), // bpf_ktime_get_ns
        1 => out.push_str("call 7\n"), // bpf_get_prandom_u32
        2 => out.push_str("call 8\n"), // bpf_get_smp_processor_id
        _ => {
            // bpf_skb_load_bytes(ctx, off, fp-16, 8): copies packet bytes
            // into the stack through the helper path.
            out.push_str("mov64 r1, r9\n");
            out.push_str(&format!("mov64 r2, {}\n", rng.below(PACKET_LEN as u64 + 16)));
            out.push_str("mov64 r3, r10\n");
            out.push_str("add64 r3, -16\n");
            out.push_str("mov64 r4, 8\n");
            out.push_str("call 26\n");
        }
    }
    // Calls clobber r1-r5; restore the all-scalars invariant.
    for r in 1..=5 {
        out.push_str(&format!("mov64 r{r}, {}\n", rng.below(512)));
    }
}

fn emit_branch(out: &mut String, rng: &mut Rng, target: u64) {
    let ops = ["jeq", "jne", "jgt", "jge", "jlt", "jle", "jsgt", "jsge", "jslt", "jsle", "jset"];
    let op = ops[rng.below(ops.len() as u64) as usize];
    let wide = if rng.chance(75) { "" } else { "32" };
    let dst = rng.below(8);
    if rng.chance(50) {
        let imm = rng.below(1024) as i64 - 512;
        out.push_str(&format!("{op}{wide} r{dst}, {imm}, s{target}\n"));
    } else {
        let src = rng.below(8);
        out.push_str(&format!("{op}{wide} r{dst}, r{src}, s{target}\n"));
    }
}

/// Generates one program as assembler text. `oob` sprinkles out-of-bounds
/// context/packet accesses so the fault paths get differential coverage.
fn generate(rng: &mut Rng) -> String {
    let oob = rng.chance(4);
    let mut s = String::new();
    // Prologue: pin the pointer registers, scalarise everything else, warm
    // the stack slots loads are allowed to touch.
    s.push_str("mov64 r9, r1\n");
    s.push_str("ldxdw r8, [r9+0]\n");
    for r in 0..8 {
        s.push_str(&format!("mov64 r{r}, {}\n", rng.below(0xffff)));
    }
    for slot in WARM_SLOTS {
        s.push_str(&format!("stxdw [r10{slot}], r{}\n", rng.below(8)));
    }
    let snippets = 6 + rng.below(6);
    for i in 0..snippets {
        s.push_str(&format!("s{i}:\n"));
        for _ in 0..(2 + rng.below(5)) {
            let kind = rng.below(100);
            let oob_here = oob && rng.chance(30);
            match kind {
                0..=34 => emit_scalar_alu(&mut s, rng),
                35..=44 => emit_unary(&mut s, rng),
                45..=59 => emit_stack_op(&mut s, rng),
                60..=71 => emit_ctx_op(&mut s, rng, oob_here),
                72..=84 => emit_packet_load(&mut s, rng, oob_here),
                85..=92 => emit_helper_call(&mut s, rng),
                _ => s.push_str(&format!("lddw r{}, 0x{:x}\n", rng.below(8), rng.next())),
            }
        }
        if i + 1 < snippets && rng.chance(60) {
            let target = i + 1 + rng.below(snippets - i - 1);
            emit_branch(&mut s, rng, target);
        }
    }
    s.push_str(&format!("s{snippets}:\n"));
    // Fold a couple of registers into the exit value so divergence in any
    // of them shows up even without the register-file comparison.
    s.push_str("mov64 r0, r6\n");
    s.push_str("xor64 r0, r7\n");
    s.push_str("exit\n");
    s
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

fn fresh_ctx() -> Vec<u8> {
    let mut ctx = vec![0u8; CTX_LEN];
    ctx[0..8].copy_from_slice(&PKT_BASE.to_le_bytes());
    ctx[8..16].copy_from_slice(&(PKT_BASE + PACKET_LEN as u64).to_le_bytes());
    ctx[16..20].copy_from_slice(&(PACKET_LEN as u32).to_le_bytes());
    ctx[20..24].copy_from_slice(&0x86ddu32.to_le_bytes());
    ctx
}

fn fresh_packet() -> Vec<u8> {
    (0..PACKET_LEN).map(|i| (i as u8).wrapping_mul(7).wrapping_add(13)).collect()
}

/// Everything one tier's run produced, in comparable form.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    /// `Ok(exit)` or the faulting instruction index. Fast-path native
    /// faults synthesise their own message, so errors compare by location
    /// and variant, not text.
    result: Result<u64, (u8, usize)>,
    regs: [u64; 11],
    stack: Vec<u8>,
    ctx: Vec<u8>,
    packet: Vec<u8>,
    helper_log: Vec<(u8, u64)>,
}

fn error_key(e: &Error) -> (u8, usize) {
    match e {
        Error::Runtime { insn, .. } => (0, *insn),
        Error::Helper(_) => (1, 0),
        Error::Map(_) => (2, 0),
        other => panic!("unexpected error class from a verified program: {other:?}"),
    }
}

fn observe(
    prog: &std::sync::Arc<ebpf_vm::program::LoadedProgram>,
    helpers: &HelperRegistry,
    tier: ExecTier,
) -> Observation {
    let mut ctx = fresh_ctx();
    let mut packet = fresh_packet();
    let mut env = RecordingEnv::default();
    let mut state = RunState::new(ctx.len());
    let result = {
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut packet, env: &mut env };
        run_program_with_state(prog, helpers, &mut rc, tier, &mut state)
    };
    Observation {
        result: result.map_err(|e| error_key(&e)),
        regs: state.regs,
        stack: state.stack.clone(),
        ctx,
        packet,
        helper_log: env.log,
    }
}

#[test]
fn all_tiers_agree_on_randomized_programs() {
    let helpers = HelperRegistry::with_base_helpers();
    let maps = HashMap::new();
    let mut accepted = 0usize;
    let mut faulted = 0usize;
    let mut attempts = 0usize;
    let mut rng = Rng::new(0x5eed_cafe);
    while accepted < PROGRAMS {
        attempts += 1;
        assert!(attempts <= MAX_ATTEMPTS, "generator accept rate collapsed: {accepted}/{attempts} verified");
        let source = generate(&mut rng);
        let insns = match ebpf_vm::asm::assemble(&source) {
            Ok(insns) => insns,
            Err(e) => panic!("generator produced unassemblable source: {e}\n{source}"),
        };
        let prog = Program::new("fuzz", ProgramType::LwtSeg6Local, insns);
        let loaded = match load(prog, &maps, &helpers) {
            Ok(loaded) => loaded,
            // A rare reject (e.g. a shift chain the tracker widens into a
            // pointer-looking value) just costs one attempt.
            Err(_) => continue,
        };
        accepted += 1;

        let reference = observe(&loaded, &helpers, ExecTier::Interp);
        if reference.result.is_err() {
            faulted += 1;
        }
        for tier in [ExecTier::MicroOp, ExecTier::Fused, ExecTier::Native] {
            let got = observe(&loaded, &helpers, tier);
            assert_eq!(
                got, reference,
                "tier {tier:?} diverged from the interpreter on program #{accepted}:\n{source}"
            );
        }
    }
    // The OOB sprinkling must actually exercise the fault paths.
    assert!(faulted > 0, "no generated program faulted; fault-path parity went untested");
    eprintln!(
        "tier differential: {accepted} programs ({attempts} attempts, {faulted} faulting) \
         agreed across {:?}",
        ExecTier::ALL
    );
}
