//! Differential fuzzing across the four execution tiers and both native
//! emitters.
//!
//! A deterministic xorshift generator builds randomized, verifier-accepted
//! LWT seg6local programs and runs each through the interpreter, the
//! micro-op tier, the fused-superinstruction tier and the native x86-64
//! tier (where the host has one; elsewhere `Native` transparently falls
//! back to `Fused`, which still must agree). On hosts with a native
//! backend, two more legs compile the program explicitly with
//! [`NativeMode::RegAlloc`] and [`NativeMode::FrameOnly`] — the
//! `SEG6_NATIVE_REGALLOC=off` kill-switch path — so both emitters are
//! compared in the same process regardless of the environment. Every leg
//! must produce an identical exit value, register file, stack image,
//! context bytes, packet bytes and helper-call sequence — including on the
//! fault paths the out-of-bounds accesses deliberately provoke.
//!
//! Three generators feed the harness:
//!
//! * [`generate`] — the general mix of ALU, stack, context, packet, helper
//!   and branch snippets.
//! * [`generate_pressure`] — register-pressure-heavy programs: all ten
//!   allocatable BPF registers carry long live chains, so one register
//!   always outlives the allocator's nine homes and stays frame-resident;
//!   the spill load/store paths run on nearly every instruction. A no-call
//!   variant exercises the caller-saved home pool, a call-heavy variant
//!   the callee-saved pool and the flush/reload protocol around
//!   trampolines.
//! * [`generate_map_dense`] — helper- and map-dense programs with real
//!   array maps attached, driving the verifier's `MapValue`/`MapLookup`
//!   facts, the direct map-value access path and the per-state array-map
//!   lookup cache. These run twice against one `RunState` so the second
//!   run takes the cache-hit path, and run under both a plain recording
//!   environment and one that opts into the inline `ktime`/`cpu` fast
//!   paths via [`EnvSnapshot`].
//!
//! The generators keep the invariants the verifier cares about at every
//! snippet boundary: `r0`–`r7` hold scalars, `r8` holds the packet pointer,
//! `r9` holds the context pointer, and `r1`–`r5` are re-initialised after
//! each helper call. Branches only jump forward, and every join point sees
//! the same register typing.

use ebpf_vm::codegen::{self, NativeMode, NativeProgram};
use ebpf_vm::insn::Insn;
use ebpf_vm::maps::{ArrayMap, MapHandle, PerCpuArrayMap};
use ebpf_vm::program::{load, LoadedProgram, Program, ProgramType, PSEUDO_MAP_FD};
use ebpf_vm::vm::{
    map_ptr_value, run_program_with_state, EnvSnapshot, RunContext, RunState, VmEnv, PKT_BASE,
};
use ebpf_vm::{Error, ExecTier, HelperRegistry};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Number of verifier-accepted programs the general generator pushes
/// through all legs.
const PROGRAMS: usize = 1000;
/// Programs per specialised generator (pressure, map-dense).
const SPECIAL_PROGRAMS: usize = 120;
/// Generation attempts before giving up (the generators are tuned so nearly
/// every program verifies; this is a backstop, not a budget).
const MAX_ATTEMPTS_FACTOR: usize = 3;

const PACKET_LEN: usize = 150;
const CTX_LEN: usize = 64;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

// ---------------------------------------------------------------------------
// Observable environments
// ---------------------------------------------------------------------------

/// An environment whose service calls the harness can compare across legs.
trait FuzzEnv: VmEnv + Default {
    fn log(&self) -> &[(u8, u64)];
}

/// Records every env service call. Does not implement
/// [`VmEnv::snapshot`], so the native tier keeps calling through the
/// trampoline and the full call sequence stays observable.
#[derive(Default)]
struct RecordingEnv {
    /// `(which, value)` per env service call, in order.
    log: Vec<(u8, u64)>,
    tick: u64,
}

impl VmEnv for RecordingEnv {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn ktime_ns(&mut self) -> u64 {
        self.tick += 1;
        let v = 0x4000 + self.tick * 7;
        self.log.push((0, v));
        v
    }

    fn cpu_id(&mut self) -> u32 {
        self.log.push((1, 3));
        3
    }

    fn prandom_u32(&mut self) -> u32 {
        self.tick += 1;
        let v = (self.tick as u32).wrapping_mul(0x9e37_79b9);
        self.log.push((2, u64::from(v)));
        v
    }
}

impl FuzzEnv for RecordingEnv {
    fn log(&self) -> &[(u8, u64)] {
        &self.log
    }
}

/// Opts into the native tier's inline fast paths: `ktime`/`cpu` are
/// invocation constants published through [`VmEnv::snapshot`] and are *not*
/// logged (the inlined code never calls the env, so logging them would make
/// the comparison diverge by design), while `prandom` mutates state and
/// stays an observable real call on every leg. A `Some` snapshot also arms
/// the per-state array-map lookup cache.
#[derive(Default)]
struct InlineEnv {
    log: Vec<(u8, u64)>,
    tick: u64,
}

const INLINE_KTIME: u64 = 0x7000_1234;
const INLINE_CPU: u32 = 5;

impl VmEnv for InlineEnv {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn ktime_ns(&mut self) -> u64 {
        INLINE_KTIME
    }

    fn cpu_id(&mut self) -> u32 {
        INLINE_CPU
    }

    fn prandom_u32(&mut self) -> u32 {
        self.tick += 1;
        let v = (self.tick as u32).wrapping_mul(0x8541_7717);
        self.log.push((2, u64::from(v)));
        v
    }

    fn snapshot(&mut self) -> Option<EnvSnapshot> {
        Some(EnvSnapshot { ktime_ns: INLINE_KTIME, cpu_id: INLINE_CPU })
    }
}

impl FuzzEnv for InlineEnv {
    fn log(&self) -> &[(u8, u64)] {
        &self.log
    }
}

// ---------------------------------------------------------------------------
// Program generators
// ---------------------------------------------------------------------------

/// Stack slots the prologue initialises; loads are restricted to these so
/// every verifier path sees them written.
const WARM_SLOTS: [i32; 4] = [-8, -16, -24, -32];

fn emit_scalar_alu(out: &mut String, rng: &mut Rng) {
    let dst = rng.below(8);
    let wide = if rng.chance(70) { "64" } else { "32" };
    let ops = ["add", "sub", "mul", "div", "mod", "or", "and", "xor", "lsh", "rsh", "arsh", "mov"];
    let op = ops[rng.below(ops.len() as u64) as usize];
    if rng.chance(50) {
        let imm: i64 = match op {
            "lsh" | "rsh" | "arsh" => {
                if wide == "64" {
                    rng.below(64) as i64
                } else {
                    rng.below(32) as i64
                }
            }
            "div" | "mod" => 1 + rng.below(254) as i64,
            _ => (rng.next() as u32 as i64) - (i64::from(u32::MAX) / 2),
        };
        out.push_str(&format!("{op}{wide} r{dst}, {imm}\n"));
    } else {
        let src = rng.below(8);
        out.push_str(&format!("{op}{wide} r{dst}, r{src}\n"));
    }
}

fn emit_unary(out: &mut String, rng: &mut Rng) {
    let dst = rng.below(8);
    match rng.below(4) {
        0 => out.push_str(&format!("neg64 r{dst}\n")),
        1 => out.push_str(&format!("neg32 r{dst}\n")),
        2 => {
            let bits = [16, 32, 64][rng.below(3) as usize];
            out.push_str(&format!("be{bits} r{dst}\n"));
        }
        _ => {
            let bits = [16, 32, 64][rng.below(3) as usize];
            out.push_str(&format!("le{bits} r{dst}\n"));
        }
    }
}

fn emit_stack_op(out: &mut String, rng: &mut Rng) {
    let (sz, bytes) = [("b", 1), ("h", 2), ("w", 4), ("dw", 8)][rng.below(4) as usize];
    if rng.chance(50) {
        // Store anywhere in the first 64 bytes of the frame.
        let slot = -8 * (1 + rng.below(8) as i32);
        let off = slot + (rng.below((8 / bytes) as u64) as i32) * bytes;
        if rng.chance(70) {
            let src = rng.below(8);
            out.push_str(&format!("stx{sz} [r10{off}], r{src}\n"));
        } else {
            let imm = rng.next() as u32 as i64 % 1000;
            out.push_str(&format!("st{sz} [r10{off}], {imm}\n"));
        }
    } else {
        // Load only from the prologue-warmed slots.
        let slot = WARM_SLOTS[rng.below(WARM_SLOTS.len() as u64) as usize];
        let off = slot + (rng.below((8 / bytes) as u64) as i32) * bytes;
        let dst = rng.below(8);
        out.push_str(&format!("ldx{sz} r{dst}, [r10{off}]\n"));
    }
}

fn emit_ctx_op(out: &mut String, rng: &mut Rng, oob: bool) {
    if rng.chance(60) {
        // Scalar read of a metadata field (past the two pointer fields).
        let (sz, step) = if rng.chance(50) { ("w", 4u64) } else { ("dw", 8u64) };
        let off = if oob {
            // Past the 64-byte runtime context but inside the verifier's
            // static MAX_CTX_SIZE — faults at run time on every tier.
            CTX_LEN as u64 + rng.below(16) * step
        } else {
            16 + rng.below((CTX_LEN as u64 - 16) / step) * step
        };
        let dst = rng.below(8);
        out.push_str(&format!("ldx{sz} r{dst}, [r9+{off}]\n"));
    } else {
        // Write to mark / the cb scratch area.
        let offs = [24u64, 40, 44, 48, 52, 56];
        let off = offs[rng.below(offs.len() as u64) as usize];
        if rng.chance(60) {
            let src = rng.below(8);
            out.push_str(&format!("stxw [r9+{off}], r{src}\n"));
        } else {
            out.push_str(&format!("stw [r9+{off}], {}\n", rng.below(0xffff)));
        }
    }
}

fn emit_packet_load(out: &mut String, rng: &mut Rng, oob: bool) {
    let (sz, bytes) = [("b", 1u64), ("h", 2), ("w", 4), ("dw", 8)][rng.below(4) as usize];
    let dst = rng.below(8);
    if rng.chance(70) {
        let off = if oob { PACKET_LEN as u64 + rng.below(60) } else { rng.below(PACKET_LEN as u64 - bytes) };
        out.push_str(&format!("ldx{sz} r{dst}, [r8+{off}]\n"));
    } else {
        // Variable offset: mask a scalar, add it to a packet-pointer copy,
        // load through it, then re-scalarise the temporary.
        let idx = rng.below(8);
        out.push_str(&format!("and64 r{idx}, 63\n"));
        out.push_str("mov64 r3, r8\n");
        out.push_str(&format!("add64 r3, r{idx}\n"));
        out.push_str(&format!("ldx{sz} r{dst}, [r3+0]\n"));
        out.push_str(&format!("mov64 r3, {}\n", rng.below(256)));
    }
}

fn emit_helper_call(out: &mut String, rng: &mut Rng) {
    match rng.below(4) {
        0 => out.push_str("call 5\n"), // bpf_ktime_get_ns
        1 => out.push_str("call 7\n"), // bpf_get_prandom_u32
        2 => out.push_str("call 8\n"), // bpf_get_smp_processor_id
        _ => {
            // bpf_skb_load_bytes(ctx, off, fp-16, 8): copies packet bytes
            // into the stack through the helper path.
            out.push_str("mov64 r1, r9\n");
            out.push_str(&format!("mov64 r2, {}\n", rng.below(PACKET_LEN as u64 + 16)));
            out.push_str("mov64 r3, r10\n");
            out.push_str("add64 r3, -16\n");
            out.push_str("mov64 r4, 8\n");
            out.push_str("call 26\n");
        }
    }
    // Calls clobber r1-r5; restore the all-scalars invariant.
    for r in 1..=5 {
        out.push_str(&format!("mov64 r{r}, {}\n", rng.below(512)));
    }
}

fn emit_branch(out: &mut String, rng: &mut Rng, target: u64) {
    let ops = ["jeq", "jne", "jgt", "jge", "jlt", "jle", "jsgt", "jsge", "jslt", "jsle", "jset"];
    let op = ops[rng.below(ops.len() as u64) as usize];
    let wide = if rng.chance(75) { "" } else { "32" };
    let dst = rng.below(8);
    if rng.chance(50) {
        let imm = rng.below(1024) as i64 - 512;
        out.push_str(&format!("{op}{wide} r{dst}, {imm}, s{target}\n"));
    } else {
        let src = rng.below(8);
        out.push_str(&format!("{op}{wide} r{dst}, r{src}, s{target}\n"));
    }
}

/// Shared prologue: pin the pointer registers, scalarise everything else,
/// warm the stack slots loads are allowed to touch.
fn emit_prologue(s: &mut String, rng: &mut Rng) {
    s.push_str("mov64 r9, r1\n");
    s.push_str("ldxdw r8, [r9+0]\n");
    for r in 0..8 {
        s.push_str(&format!("mov64 r{r}, {}\n", rng.below(0xffff)));
    }
    for slot in WARM_SLOTS {
        s.push_str(&format!("stxdw [r10{slot}], r{}\n", rng.below(8)));
    }
}

/// Generates one program as assembler text. `oob` sprinkles out-of-bounds
/// context/packet accesses so the fault paths get differential coverage.
fn generate(rng: &mut Rng) -> String {
    let oob = rng.chance(4);
    let mut s = String::new();
    emit_prologue(&mut s, rng);
    let snippets = 6 + rng.below(6);
    for i in 0..snippets {
        s.push_str(&format!("s{i}:\n"));
        for _ in 0..(2 + rng.below(5)) {
            let kind = rng.below(100);
            let oob_here = oob && rng.chance(30);
            match kind {
                0..=34 => emit_scalar_alu(&mut s, rng),
                35..=44 => emit_unary(&mut s, rng),
                45..=59 => emit_stack_op(&mut s, rng),
                60..=71 => emit_ctx_op(&mut s, rng, oob_here),
                72..=84 => emit_packet_load(&mut s, rng, oob_here),
                85..=92 => emit_helper_call(&mut s, rng),
                _ => s.push_str(&format!("lddw r{}, 0x{:x}\n", rng.below(8), rng.next())),
            }
        }
        if i + 1 < snippets && rng.chance(60) {
            let target = i + 1 + rng.below(snippets - i - 1);
            emit_branch(&mut s, rng, target);
        }
    }
    s.push_str(&format!("s{snippets}:\n"));
    // Fold a couple of registers into the exit value so divergence in any
    // of them shows up even without the register-file comparison.
    s.push_str("mov64 r0, r6\n");
    s.push_str("xor64 r0, r7\n");
    s.push_str("exit\n");
    s
}

/// Register-pressure-heavy generator. Every snippet chains all eight
/// scalar registers through each other, so — together with the two pinned
/// pointer registers — ten values stay live from the prologue to the exit
/// fold and the allocator must leave one of them frame-resident.
/// `with_calls` selects the call-heavy variant (callee-saved home pool,
/// flush/reload around trampolines, fault sites with register-resident
/// state) versus the pure ALU/stack/ctx variant (caller-saved pool, no
/// trampolines at all).
fn generate_pressure(rng: &mut Rng, with_calls: bool) -> String {
    let oob = with_calls && rng.chance(15);
    let mut s = String::new();
    emit_prologue(&mut s, rng);
    let snippets = 4 + rng.below(4);
    for i in 0..snippets {
        s.push_str(&format!("s{i}:\n"));
        // The live chains: touch every scalar register, reading another.
        for r in 0..8u64 {
            let other = (r + 1 + rng.below(7)) % 8;
            let ops = ["add", "xor", "sub", "or"];
            let op = ops[rng.below(ops.len() as u64) as usize];
            let wide = if rng.chance(70) { "64" } else { "32" };
            s.push_str(&format!("{op}{wide} r{r}, r{other}\n"));
        }
        for _ in 0..(1 + rng.below(3)) {
            let kind = rng.below(100);
            let oob_here = oob && rng.chance(30);
            if with_calls {
                match kind {
                    0..=29 => emit_scalar_alu(&mut s, rng),
                    30..=49 => emit_stack_op(&mut s, rng),
                    50..=64 => emit_ctx_op(&mut s, rng, oob_here),
                    65..=79 => emit_packet_load(&mut s, rng, oob_here),
                    _ => emit_helper_call(&mut s, rng),
                }
            } else {
                match kind {
                    0..=39 => emit_scalar_alu(&mut s, rng),
                    40..=69 => emit_stack_op(&mut s, rng),
                    70..=84 => emit_ctx_op(&mut s, rng, false),
                    _ => emit_unary(&mut s, rng),
                }
            }
        }
        if i + 1 < snippets && rng.chance(50) {
            let target = i + 1 + rng.below(snippets - i - 1);
            emit_branch(&mut s, rng, target);
        }
    }
    s.push_str(&format!("s{snippets}:\n"));
    // Fold every chained register into the exit value: a wrong spill slot
    // or a stale home shows up in r0 even before the register comparison.
    s.push_str("mov64 r0, r1\n");
    for r in 2..8 {
        s.push_str(&format!("xor64 r0, r{r}\n"));
    }
    s.push_str("exit\n");
    s
}

/// Map fds the dense generator references; attached by the test.
const MAP_FDS: [u32; 3] = [1, 2, 3];
const MAP_ENTRIES: u64 = 4;
const MAP_VALUE_SIZE: i64 = 64;

/// `lddw` immediates with this pattern in the upper half are rewritten into
/// pseudo-map-fd loads after assembly (the assembler has no map syntax).
const MAP_SENTINEL: u64 = 0x6d70_c0de_0000_0000;

fn patch_map_loads(insns: &mut [Insn]) {
    let mut i = 0;
    while i < insns.len() {
        if insns[i].is_lddw() {
            if i + 1 < insns.len() {
                let value = (insns[i].imm as u32 as u64) | ((insns[i + 1].imm as u32 as u64) << 32);
                if value & 0xffff_ffff_0000_0000 == MAP_SENTINEL {
                    let fd = (value & 0xffff) as u32;
                    insns[i].src = PSEUDO_MAP_FD;
                    insns[i].imm = fd as i32;
                    insns[i + 1].imm = (map_ptr_value(fd) >> 32) as i32;
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
}

/// One `bpf_map_lookup_elem` sequence: store a key on the stack, load the
/// map pointer, call, null-check, and hammer the value with loads and
/// stores on the hit path. Keys sometimes exceed `max_entries` so the null
/// path runs too. `label` disambiguates the inner join labels.
fn emit_map_lookup(out: &mut String, rng: &mut Rng, label: usize) {
    let fd = MAP_FDS[rng.below(MAP_FDS.len() as u64) as usize];
    let slot = -8 * (1 + rng.below(4) as i32);
    let key = rng.below(MAP_ENTRIES + 2);
    out.push_str(&format!("stw [r10{slot}], {key}\n"));
    out.push_str(&format!("lddw r1, 0x{:x}\n", MAP_SENTINEL | u64::from(fd)));
    out.push_str("mov64 r2, r10\n");
    out.push_str(&format!("add64 r2, {slot}\n"));
    out.push_str("call 1\n");
    out.push_str(&format!("jeq r0, 0, m{label}\n"));
    for _ in 0..(1 + rng.below(3)) {
        let (sz, bytes) = [("b", 1i64), ("h", 2), ("w", 4), ("dw", 8)][rng.below(4) as usize];
        let off = rng.below((MAP_VALUE_SIZE / bytes) as u64) as i64 * bytes;
        if rng.chance(60) {
            // Not into r0 (it is the value pointer) or r1-r5 reads later —
            // loads may target r1-r7, they only write.
            let dst = 1 + rng.below(7);
            out.push_str(&format!("ldx{sz} r{dst}, [r0+{off}]\n"));
        } else {
            // Store sources must have survived the call: only r6/r7 are
            // still initialised here (the call clobbered r1-r5).
            let src = 6 + rng.below(2);
            out.push_str(&format!("stx{sz} [r0+{off}], r{src}\n"));
        }
    }
    out.push_str(&format!("m{label}:\n"));
    // Both paths reach here with different r0 types (value pointer vs the
    // null scalar); re-scalarise it, and restore the r1-r5 invariant the
    // call clobbered.
    out.push_str(&format!("mov64 r0, {}\n", rng.below(512)));
    for r in 1..=5 {
        out.push_str(&format!("mov64 r{r}, {}\n", rng.below(512)));
    }
}

/// Helper- and map-dense generator: roughly a third of the instruction
/// budget goes to `bpf_map_lookup_elem` sequences against attached array /
/// per-CPU array maps, and another chunk to the plain helpers, so the
/// trampoline, inline-helper, direct map-value and lookup-cache paths all
/// run hot.
fn generate_map_dense(rng: &mut Rng) -> String {
    let mut s = String::new();
    let mut label = 0usize;
    emit_prologue(&mut s, rng);
    let snippets = 4 + rng.below(4);
    for i in 0..snippets {
        s.push_str(&format!("s{i}:\n"));
        for _ in 0..(2 + rng.below(3)) {
            match rng.below(100) {
                0..=34 => {
                    emit_map_lookup(&mut s, rng, label);
                    label += 1;
                }
                35..=54 => emit_helper_call(&mut s, rng),
                55..=69 => emit_scalar_alu(&mut s, rng),
                70..=79 => emit_stack_op(&mut s, rng),
                80..=89 => emit_ctx_op(&mut s, rng, false),
                _ => emit_packet_load(&mut s, rng, false),
            }
        }
        if i + 1 < snippets && rng.chance(40) {
            let target = i + 1 + rng.below(snippets - i - 1);
            emit_branch(&mut s, rng, target);
        }
    }
    s.push_str(&format!("s{snippets}:\n"));
    s.push_str("mov64 r0, r6\n");
    s.push_str("xor64 r0, r7\n");
    s.push_str("exit\n");
    s
}

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

fn fresh_ctx() -> Vec<u8> {
    let mut ctx = vec![0u8; CTX_LEN];
    ctx[0..8].copy_from_slice(&PKT_BASE.to_le_bytes());
    ctx[8..16].copy_from_slice(&(PKT_BASE + PACKET_LEN as u64).to_le_bytes());
    ctx[16..20].copy_from_slice(&(PACKET_LEN as u32).to_le_bytes());
    ctx[20..24].copy_from_slice(&0x86ddu32.to_le_bytes());
    ctx
}

fn fresh_packet() -> Vec<u8> {
    (0..PACKET_LEN).map(|i| (i as u8).wrapping_mul(7).wrapping_add(13)).collect()
}

/// Everything one run produced, in comparable form.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    /// `Ok(exit)` or the faulting instruction index. Fast-path native
    /// faults synthesise their own message, so errors compare by location
    /// and variant, not text.
    result: Result<u64, (u8, usize)>,
    regs: [u64; 11],
    stack: Vec<u8>,
    ctx: Vec<u8>,
    packet: Vec<u8>,
    helper_log: Vec<(u8, u64)>,
    /// Concatenated contents of every attached map (fd order, key order,
    /// every CPU slot) — map stores must land identically on every leg.
    maps: Vec<u8>,
}

/// Re-seeds every map value to a deterministic per-entry pattern, so each
/// leg starts from identical map state no matter what the previous leg
/// stored. Values persist *within* one leg's repeated runs, like
/// consecutive packets sharing a datapath map.
fn reset_maps(maps: &HashMap<u32, MapHandle>) {
    for (fd, map) in maps {
        for key in map.keys() {
            for cpu in 0..map.num_cpus() {
                if let Some(value) = map.lookup_ref_cpu(&key, cpu) {
                    let mut guard = value.write();
                    for (i, byte) in guard.iter_mut().enumerate() {
                        *byte = (*fd as u8)
                            .wrapping_mul(37)
                            .wrapping_add(key[0].wrapping_mul(11))
                            .wrapping_add(cpu as u8)
                            .wrapping_add(i as u8);
                    }
                }
            }
        }
    }
}

/// Snapshot of every attached map's contents, in a stable order.
fn map_image(maps: &HashMap<u32, MapHandle>) -> Vec<u8> {
    let mut fds: Vec<u32> = maps.keys().copied().collect();
    fds.sort_unstable();
    let mut out = Vec::new();
    for fd in fds {
        let map = &maps[&fd];
        let mut keys = map.keys();
        keys.sort();
        for key in keys {
            if let Some(value) = map.lookup(&key) {
                out.extend_from_slice(&value);
            }
        }
    }
    out
}

fn error_key(e: &Error) -> (u8, usize) {
    match e {
        Error::Runtime { insn, .. } => (0, *insn),
        Error::Helper(_) => (1, 0),
        Error::Map(_) => (2, 0),
        other => panic!("unexpected error class from a verified program: {other:?}"),
    }
}

fn snapshot_run<E: FuzzEnv>(
    state: &RunState,
    env: &E,
    result: Result<u64, Error>,
    ctx: Vec<u8>,
    packet: Vec<u8>,
    maps: &HashMap<u32, MapHandle>,
) -> Observation {
    Observation {
        result: result.map_err(|e| error_key(&e)),
        regs: state.regs,
        stack: state.stack.clone(),
        ctx,
        packet,
        helper_log: env.log().to_vec(),
        maps: map_image(maps),
    }
}

/// Runs a program `runs` times through one tier against a single
/// [`RunState`] (fresh ctx/packet/env per run). Reusing the state lets
/// repeated runs hit the per-state array-map lookup cache, exactly like
/// consecutive packets on the datapath.
fn observe_tier<E: FuzzEnv>(
    prog: &Arc<LoadedProgram>,
    helpers: &HelperRegistry,
    maps: &HashMap<u32, MapHandle>,
    tier: ExecTier,
    runs: usize,
) -> Vec<Observation> {
    reset_maps(maps);
    let mut state = RunState::new(CTX_LEN);
    (0..runs)
        .map(|_| {
            let mut ctx = fresh_ctx();
            let mut packet = fresh_packet();
            let mut env = E::default();
            let result = {
                let mut rc = RunContext { ctx: &mut ctx, packet: &mut packet, env: &mut env };
                run_program_with_state(prog, helpers, &mut rc, tier, &mut state)
            };
            snapshot_run(&state, &env, result, ctx, packet, maps)
        })
        .collect()
}

/// Like [`observe_tier`], but executes an explicitly-compiled native
/// program — the harness compiles both [`NativeMode`]s itself, so the
/// frame-only kill-switch path is tested even when the environment selects
/// the register-allocating emitter (and vice versa).
fn observe_native<E: FuzzEnv>(
    prog: &Arc<LoadedProgram>,
    native: &NativeProgram,
    maps: &HashMap<u32, MapHandle>,
    runs: usize,
) -> Vec<Observation> {
    reset_maps(maps);
    let mut state = RunState::new(CTX_LEN);
    (0..runs)
        .map(|_| {
            let mut ctx = fresh_ctx();
            let mut packet = fresh_packet();
            let mut env = E::default();
            let result = {
                let mut rc = RunContext { ctx: &mut ctx, packet: &mut packet, env: &mut env };
                state.reset();
                codegen::run(native, prog, &mut rc, &mut state)
            };
            snapshot_run(&state, &env, result, ctx, packet, maps)
        })
        .collect()
}

/// Both native emitters' output for one program (`None` off x86-64 Linux).
struct ModeLegs {
    regalloc: Option<NativeProgram>,
    frame_only: Option<NativeProgram>,
}

fn compile_modes(loaded: &LoadedProgram) -> ModeLegs {
    let fused = loaded.fused().expect("fused stream");
    let facts = loaded.access_facts();
    ModeLegs {
        regalloc: codegen::compile_with(fused, facts, loaded, NativeMode::RegAlloc)
            .expect("regalloc compile"),
        frame_only: codegen::compile_with(fused, facts, loaded, NativeMode::FrameOnly)
            .expect("frame-only compile"),
    }
}

/// Runs one program through every leg under environment `E` and asserts
/// they all match the interpreter. Returns whether the reference run
/// faulted.
fn check_parity<E: FuzzEnv>(
    prog: &Arc<LoadedProgram>,
    helpers: &HelperRegistry,
    maps: &HashMap<u32, MapHandle>,
    modes: &ModeLegs,
    source: &str,
    runs: usize,
) -> bool {
    let reference = observe_tier::<E>(prog, helpers, maps, ExecTier::Interp, runs);
    for tier in [ExecTier::MicroOp, ExecTier::Fused, ExecTier::Native] {
        let got = observe_tier::<E>(prog, helpers, maps, tier, runs);
        assert_eq!(got, reference, "tier {tier:?} diverged from the interpreter on:\n{source}");
    }
    for (name, native) in [("regalloc", &modes.regalloc), ("frame-only", &modes.frame_only)] {
        if let Some(native) = native {
            let got = observe_native::<E>(prog, native, maps, runs);
            assert_eq!(got, reference, "native emitter '{name}' diverged from the interpreter on:\n{source}");
        }
    }
    reference[0].result.is_err()
}

fn load_generated(
    source: &str,
    maps: &HashMap<u32, MapHandle>,
    helpers: &HelperRegistry,
) -> Option<Arc<LoadedProgram>> {
    let mut insns = match ebpf_vm::asm::assemble(source) {
        Ok(insns) => insns,
        Err(e) => panic!("generator produced unassemblable source: {e}\n{source}"),
    };
    patch_map_loads(&mut insns);
    let prog = Program::new("fuzz", ProgramType::LwtSeg6Local, insns);
    // A rare reject (e.g. a shift chain the tracker widens into a
    // pointer-looking value) just costs one attempt.
    match load(prog, maps, helpers) {
        Ok(l) => Some(l),
        Err(e) => {
            if std::env::var("FUZZ_DEBUG_REJECTS").is_ok() {
                eprintln!("REJECT: {e}");
            }
            None
        }
    }
}

#[test]
fn all_tiers_agree_on_randomized_programs() {
    let helpers = HelperRegistry::with_base_helpers();
    let maps = HashMap::new();
    let mut accepted = 0usize;
    let mut faulted = 0usize;
    let mut attempts = 0usize;
    let mut rng = Rng::new(0x5eed_cafe);
    while accepted < PROGRAMS {
        attempts += 1;
        assert!(
            attempts <= MAX_ATTEMPTS_FACTOR * PROGRAMS,
            "generator accept rate collapsed: {accepted}/{attempts} verified"
        );
        let source = generate(&mut rng);
        let Some(loaded) = load_generated(&source, &maps, &helpers) else { continue };
        accepted += 1;
        let modes = compile_modes(&loaded);
        if check_parity::<RecordingEnv>(&loaded, &helpers, &maps, &modes, &source, 1) {
            faulted += 1;
        }
    }
    // The OOB sprinkling must actually exercise the fault paths.
    assert!(faulted > 0, "no generated program faulted; fault-path parity went untested");
    eprintln!(
        "tier differential: {accepted} programs ({attempts} attempts, {faulted} faulting) \
         agreed across {:?} + both native emitters",
        ExecTier::ALL
    );
}

#[test]
fn register_pressure_programs_agree_and_spill() {
    let helpers = HelperRegistry::with_base_helpers();
    let maps = HashMap::new();
    let mut accepted = 0usize;
    let mut faulted = 0usize;
    let mut attempts = 0usize;
    let mut rng = Rng::new(0x1337_5b11);
    while accepted < SPECIAL_PROGRAMS {
        attempts += 1;
        assert!(
            attempts <= MAX_ATTEMPTS_FACTOR * SPECIAL_PROGRAMS,
            "pressure generator accept rate collapsed: {accepted}/{attempts} verified"
        );
        let with_calls = accepted.is_multiple_of(2);
        let source = generate_pressure(&mut rng, with_calls);
        let Some(loaded) = load_generated(&source, &maps, &helpers) else { continue };
        accepted += 1;
        let modes = compile_modes(&loaded);
        if let Some(native) = &modes.regalloc {
            // Ten live registers against nine homes: exactly one register
            // must have stayed frame-resident, so the parity runs below
            // exercise the spill paths on every program.
            let debug = native.debug_info();
            assert!(debug.regalloc);
            assert_eq!(
                debug.spills, 1,
                "pressure program did not spill (homes {:?}):\n{source}",
                debug.assignments
            );
        }
        if check_parity::<RecordingEnv>(&loaded, &helpers, &maps, &modes, &source, 1) {
            faulted += 1;
        }
    }
    assert!(faulted > 0, "no pressure program faulted; spilled fault paths went untested");
    eprintln!(
        "pressure differential: {accepted} programs ({attempts} attempts, {faulted} faulting) \
         agreed, all with one spilled register"
    );
}

#[test]
fn helper_and_map_dense_programs_agree() {
    let helpers = HelperRegistry::with_base_helpers();
    let mut maps: HashMap<u32, MapHandle> = HashMap::new();
    maps.insert(MAP_FDS[0], ArrayMap::new(MAP_VALUE_SIZE as usize, MAP_ENTRIES as usize));
    maps.insert(MAP_FDS[1], ArrayMap::new(MAP_VALUE_SIZE as usize, MAP_ENTRIES as usize));
    maps.insert(MAP_FDS[2], PerCpuArrayMap::new(MAP_VALUE_SIZE as usize, MAP_ENTRIES as usize, 8));
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    let mut with_lookups = 0usize;
    let mut rng = Rng::new(0xdeed_beef);
    while accepted < SPECIAL_PROGRAMS {
        attempts += 1;
        assert!(
            attempts <= MAX_ATTEMPTS_FACTOR * SPECIAL_PROGRAMS,
            "map-dense generator accept rate collapsed: {accepted}/{attempts} verified"
        );
        let source = generate_map_dense(&mut rng);
        let Some(loaded) = load_generated(&source, &maps, &helpers) else { continue };
        accepted += 1;
        let modes = compile_modes(&loaded);
        if let Some(native) = &modes.regalloc {
            let debug = native.debug_info();
            if debug.lookup_sites > 0 {
                with_lookups += 1;
            }
        }
        // Two runs per leg against one state: the second native run takes
        // the lookup-cache hit path where the first one filled it. The
        // inline environment arms the cache and the ktime/cpu fast paths;
        // the recording environment keeps every helper an observable
        // trampoline call.
        check_parity::<RecordingEnv>(&loaded, &helpers, &maps, &modes, &source, 2);
        check_parity::<InlineEnv>(&loaded, &helpers, &maps, &modes, &source, 2);
    }
    if codegen::supported() {
        assert!(
            with_lookups > SPECIAL_PROGRAMS / 2,
            "only {with_lookups}/{accepted} programs compiled cacheable lookup sites"
        );
    }
    eprintln!(
        "map-dense differential: {accepted} programs ({attempts} attempts, {with_lookups} with \
         cached lookup sites) agreed across all legs and both environments"
    );
}
