//! An `sk_buff`-like packet buffer with headroom.
//!
//! SRv6 processing constantly pushes and pulls headers: transit behaviours
//! prepend an outer IPv6 header and an SRH, `End.DT6` removes them again,
//! and `bpf_lwt_seg6_adjust_srh` grows or shrinks the TLV area in the middle
//! of the packet. [`PacketBuf`] mirrors the relevant parts of the kernel's
//! `sk_buff`: a contiguous allocation with spare *headroom* in front of the
//! packet data so that prepending a header usually does not reallocate.

use crate::error::{Error, Result};

/// Default headroom reserved by [`PacketBuf::new`], enough for an outer IPv6
/// header plus an SRH with a handful of segments.
pub const DEFAULT_HEADROOM: usize = 128;

/// A packet buffer with headroom, similar to the kernel's `sk_buff`.
///
/// The packet's bytes live in `storage[offset..]`. Pushing a header moves
/// `offset` towards zero; pulling a header moves it forward. Middle-of-packet
/// insertion and removal (needed by the SRH TLV helpers) are also supported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketBuf {
    storage: Vec<u8>,
    offset: usize,
}

impl Default for PacketBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketBuf {
    /// Creates an empty buffer with [`DEFAULT_HEADROOM`] bytes of headroom.
    pub fn new() -> Self {
        Self::with_headroom(DEFAULT_HEADROOM)
    }

    /// Creates an empty buffer with `headroom` bytes reserved in front.
    pub fn with_headroom(headroom: usize) -> Self {
        PacketBuf { storage: vec![0; headroom], offset: headroom }
    }

    /// Creates a buffer holding `data`, with [`DEFAULT_HEADROOM`] bytes of
    /// headroom in front of it.
    pub fn from_slice(data: &[u8]) -> Self {
        let mut buf = Self::with_headroom(DEFAULT_HEADROOM);
        buf.append(data);
        buf
    }

    /// Current packet length in bytes (excluding headroom).
    pub fn len(&self) -> usize {
        self.storage.len() - self.offset
    }

    /// Whether the packet currently holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining headroom in bytes.
    pub fn headroom(&self) -> usize {
        self.offset
    }

    /// Read-only view of the packet bytes.
    pub fn data(&self) -> &[u8] {
        &self.storage[self.offset..]
    }

    /// Mutable view of the packet bytes.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.storage[self.offset..]
    }

    /// Appends `bytes` at the end of the packet (tail).
    pub fn append(&mut self, bytes: &[u8]) {
        self.storage.extend_from_slice(bytes);
    }

    /// Prepends `header` in front of the packet, like `skb_push`.
    ///
    /// Grows the headroom if the buffer does not have enough of it.
    pub fn push_header(&mut self, header: &[u8]) {
        if header.len() > self.offset {
            self.grow_headroom(header.len().max(DEFAULT_HEADROOM));
        }
        self.offset -= header.len();
        self.storage[self.offset..self.offset + header.len()].copy_from_slice(header);
    }

    /// Removes `len` bytes from the front of the packet, like `skb_pull`.
    pub fn pull(&mut self, len: usize) -> Result<()> {
        if len > self.len() {
            return Err(Error::Truncated { needed: len, available: self.len() });
        }
        self.offset += len;
        Ok(())
    }

    /// Inserts `len` zero bytes at `at` (an offset inside the packet data).
    ///
    /// This is the primitive behind `bpf_lwt_seg6_adjust_srh` with a positive
    /// delta: the TLV area of the SRH grows in the middle of the packet.
    pub fn expand_at(&mut self, at: usize, len: usize) -> Result<()> {
        if at > self.len() {
            return Err(Error::NoSpace("expand offset beyond end of packet"));
        }
        let abs = self.offset + at;
        self.storage.splice(abs..abs, std::iter::repeat_n(0u8, len));
        Ok(())
    }

    /// Removes `len` bytes starting at `at` (an offset inside the packet
    /// data). This is `bpf_lwt_seg6_adjust_srh` with a negative delta.
    pub fn shrink_at(&mut self, at: usize, len: usize) -> Result<()> {
        if at.checked_add(len).is_none_or(|end| end > self.len()) {
            return Err(Error::Truncated { needed: at + len, available: self.len() });
        }
        let abs = self.offset + at;
        self.storage.drain(abs..abs + len);
        Ok(())
    }

    /// Copies `bytes` into the packet at offset `at`.
    pub fn write_at(&mut self, at: usize, bytes: &[u8]) -> Result<()> {
        if at.checked_add(bytes.len()).is_none_or(|end| end > self.len()) {
            return Err(Error::NoSpace("write beyond end of packet"));
        }
        let abs = self.offset + at;
        self.storage[abs..abs + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Returns `len` bytes starting at offset `at`.
    pub fn slice(&self, at: usize, len: usize) -> Result<&[u8]> {
        if at.checked_add(len).is_none_or(|end| end > self.len()) {
            return Err(Error::Truncated { needed: at + len, available: self.len() });
        }
        Ok(&self.data()[at..at + len])
    }

    /// Replaces the packet bytes with `data`, reusing the buffer's existing
    /// allocation and keeping its current headroom. This is the
    /// write-back primitive of the zero-allocation datapath: a worker that
    /// rebuilt a packet in a scratch buffer commits it without a fresh
    /// `PacketBuf`.
    pub fn set_data(&mut self, data: &[u8]) {
        self.storage.truncate(self.offset);
        self.storage.extend_from_slice(data);
    }

    /// Resets the buffer to an empty packet with `headroom` bytes of
    /// headroom, **reusing the existing allocation**. This is the recycle
    /// primitive of [`BufPool`](crate::BufPool): a drained buffer returns
    /// to the arena with its storage intact, so refilling it with a
    /// same-sized packet performs no allocation.
    pub fn reset(&mut self, headroom: usize) {
        self.storage.clear();
        self.storage.resize(headroom, 0);
        self.offset = headroom;
    }

    /// Bytes of storage this buffer owns (headroom + data + spare
    /// capacity): what a recycled buffer can hold without reallocating.
    pub fn storage_capacity(&self) -> usize {
        self.storage.capacity()
    }

    /// Truncates the packet to `len` bytes (drops the tail).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.storage.truncate(self.offset + len);
        }
    }

    fn grow_headroom(&mut self, extra: usize) {
        let mut storage = vec![0u8; self.storage.len() + extra];
        storage[extra + self.offset..].copy_from_slice(&self.storage[self.offset..]);
        self.storage = storage;
        self.offset += extra;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_data_roundtrip() {
        let mut buf = PacketBuf::new();
        buf.append(&[1, 2, 3, 4]);
        assert_eq!(buf.data(), &[1, 2, 3, 4]);
        assert_eq!(buf.len(), 4);
        assert!(!buf.is_empty());
    }

    #[test]
    fn push_header_prepends() {
        let mut buf = PacketBuf::from_slice(&[9, 9]);
        buf.push_header(&[1, 2, 3]);
        assert_eq!(buf.data(), &[1, 2, 3, 9, 9]);
    }

    #[test]
    fn push_header_grows_headroom_when_exhausted() {
        let mut buf = PacketBuf::with_headroom(2);
        buf.append(&[7]);
        buf.push_header(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(buf.data(), &[1, 2, 3, 4, 5, 6, 7, 8, 7]);
    }

    #[test]
    fn pull_removes_front_bytes() {
        let mut buf = PacketBuf::from_slice(&[1, 2, 3, 4]);
        buf.pull(2).unwrap();
        assert_eq!(buf.data(), &[3, 4]);
        assert!(buf.pull(10).is_err());
    }

    #[test]
    fn expand_at_inserts_zeroes_in_the_middle() {
        let mut buf = PacketBuf::from_slice(&[1, 2, 3, 4]);
        buf.expand_at(2, 3).unwrap();
        assert_eq!(buf.data(), &[1, 2, 0, 0, 0, 3, 4]);
    }

    #[test]
    fn shrink_at_removes_middle_bytes() {
        let mut buf = PacketBuf::from_slice(&[1, 2, 3, 4, 5]);
        buf.shrink_at(1, 3).unwrap();
        assert_eq!(buf.data(), &[1, 5]);
        assert!(buf.shrink_at(1, 5).is_err());
    }

    #[test]
    fn write_at_and_slice() {
        let mut buf = PacketBuf::from_slice(&[0; 6]);
        buf.write_at(2, &[0xaa, 0xbb]).unwrap();
        assert_eq!(buf.slice(2, 2).unwrap(), &[0xaa, 0xbb]);
        assert!(buf.write_at(5, &[1, 2]).is_err());
        assert!(buf.slice(5, 2).is_err());
    }

    #[test]
    fn truncate_drops_tail_only() {
        let mut buf = PacketBuf::from_slice(&[1, 2, 3, 4]);
        buf.truncate(2);
        assert_eq!(buf.data(), &[1, 2]);
        buf.truncate(10);
        assert_eq!(buf.data(), &[1, 2]);
    }

    #[test]
    fn headroom_tracks_pushes_and_pulls() {
        let mut buf = PacketBuf::with_headroom(16);
        assert_eq!(buf.headroom(), 16);
        buf.push_header(&[0; 10]);
        assert_eq!(buf.headroom(), 6);
        buf.pull(4).unwrap();
        assert_eq!(buf.headroom(), 10);
    }
}
