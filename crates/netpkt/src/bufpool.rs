//! A packet-buffer recycling arena.
//!
//! Kernel drivers never allocate an `sk_buff` per packet on the hot path:
//! RX descriptors are refilled from a per-queue page pool, and a drained
//! buffer goes back to the pool instead of the allocator. [`BufPool`] is
//! that arena for [`PacketBuf`]: a free list of reset-but-still-allocated
//! buffers, so steady-state ingestion (same-sized packets round after
//! round) performs **zero** heap allocations — the property the
//! `alloc-counter` gates in `seg6-core` and `seg6-runtime` prove.
//!
//! The pool itself is single-threaded by design (one per dispatcher); the
//! cross-thread leg of the recycle loop — workers handing drained buffers
//! back — is a lock-free free-ring owned by the runtime crate. The full
//! descriptor lifecycle is: dispatcher [`take`](BufPool::take) →
//! descriptor ring → worker (process, drain) → free-ring →
//! dispatcher [`put`](BufPool::put) → [`take`](BufPool::take) again.

use crate::buf::{PacketBuf, DEFAULT_HEADROOM};

/// A recycling arena of [`PacketBuf`]s. See the [module docs](self).
#[derive(Debug)]
pub struct BufPool {
    free: Vec<PacketBuf>,
    headroom: usize,
    max_retained: usize,
    allocated: u64,
    recycled: u64,
}

impl BufPool {
    /// Creates an arena retaining at most `max_retained` free buffers
    /// (excess [`put`](BufPool::put)s fall through to the allocator), with
    /// [`DEFAULT_HEADROOM`] on every buffer it hands out.
    pub fn new(max_retained: usize) -> Self {
        Self::with_headroom(max_retained, DEFAULT_HEADROOM)
    }

    /// [`BufPool::new`] with an explicit per-buffer headroom.
    pub fn with_headroom(max_retained: usize, headroom: usize) -> Self {
        BufPool { free: Vec::new(), headroom, max_retained, allocated: 0, recycled: 0 }
    }

    /// Takes an empty buffer: recycled storage when the free list has
    /// any, a fresh allocation otherwise.
    pub fn take(&mut self) -> PacketBuf {
        match self.free.pop() {
            Some(buf) => {
                self.recycled += 1;
                buf
            }
            None => {
                self.allocated += 1;
                PacketBuf::with_headroom(self.headroom)
            }
        }
    }

    /// Takes a buffer and fills it with a copy of `frame`. Allocation-free
    /// when a recycled buffer with enough storage is available.
    pub fn take_filled(&mut self, frame: &[u8]) -> PacketBuf {
        let mut buf = self.take();
        buf.append(frame);
        buf
    }

    /// Returns a drained buffer to the arena: its storage is kept and its
    /// packet reset (empty, headroom restored). Buffers beyond the
    /// retention cap are dropped — the arena never grows without bound.
    pub fn put(&mut self, mut buf: PacketBuf) {
        if self.free.len() < self.max_retained {
            buf.reset(self.headroom);
            self.free.push(buf);
        }
    }

    /// Free buffers currently retained.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Buffers handed out that needed a fresh allocation.
    pub fn allocations(&self) -> u64 {
        self.allocated
    }

    /// Buffers handed out from the free list (the recycle hit count).
    pub fn recycle_hits(&self) -> u64 {
        self.recycled
    }

    /// The headroom every buffer this arena hands out carries.
    pub fn headroom(&self) -> usize {
        self.headroom
    }

    /// Adds an externally minted buffer to the free list, counted as an
    /// allocation (it is one — just performed elsewhere, e.g. on a worker
    /// thread first-touching its arena segment so the pages land on that
    /// worker's NUMA node). Buffers beyond the retention cap are dropped
    /// like excess [`put`](BufPool::put)s.
    pub fn adopt(&mut self, mut buf: PacketBuf) {
        self.allocated += 1;
        if self.free.len() < self.max_retained {
            buf.reset(self.headroom);
            self.free.push(buf);
        }
    }

    /// Raises (or lowers) the retention cap. The worker pool calls this
    /// when a tenant registers: the in-flight bound — and therefore the
    /// number of buffers the arena must be able to retain for the steady
    /// state to stay mint-free — grows with the tenant count. Lowering the
    /// cap does not drop already-retained buffers; they drain naturally as
    /// excess `put`s are refused.
    pub fn set_max_retained(&mut self, max_retained: usize) {
        self.max_retained = max_retained;
    }

    /// Grows the free list to at least `n` retained buffers (counted as
    /// allocations), paying the whole mint cost up front — provision the
    /// arena with its workload's in-flight bound and the steady state
    /// becomes mint-free *deterministically*, not merely when the
    /// consumers keep up.
    pub fn prefill(&mut self, n: usize) {
        while self.free.len() < n.min(self.max_retained) {
            self.allocated += 1;
            self.free.push(PacketBuf::with_headroom(self.headroom));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_put_buffers() {
        let mut pool = BufPool::new(8);
        let mut buf = pool.take();
        assert_eq!(pool.allocations(), 1);
        buf.append(&[1, 2, 3]);
        let storage = buf.storage_capacity();
        pool.put(buf);
        assert_eq!(pool.available(), 1);
        let buf = pool.take_filled(&[9, 9]);
        assert_eq!(pool.recycle_hits(), 1);
        assert_eq!(pool.allocations(), 1, "no fresh allocation on recycle");
        assert_eq!(buf.data(), &[9, 9]);
        assert_eq!(buf.headroom(), DEFAULT_HEADROOM, "recycled buffer headroom restored");
        assert!(buf.storage_capacity() >= storage.min(DEFAULT_HEADROOM + 2));
    }

    #[test]
    fn retention_cap_drops_excess_buffers() {
        let mut pool = BufPool::new(2);
        for _ in 0..4 {
            pool.put(PacketBuf::from_slice(&[0; 16]));
        }
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn prefill_respects_the_cap() {
        let mut pool = BufPool::with_headroom(4, 32);
        pool.prefill(10);
        assert_eq!(pool.available(), 4);
        let buf = pool.take();
        assert_eq!(buf.headroom(), 32);
        assert_eq!(pool.recycle_hits(), 1);
    }
}
