//! Internet checksum helpers (RFC 1071) with IPv6 pseudo-header support.
//!
//! UDP and TCP over IPv6 mandate a transport checksum that covers a
//! pseudo-header containing the source and destination addresses, the
//! upper-layer packet length and the next-header value (RFC 8200 §8.1).

use std::net::Ipv6Addr;

/// Incrementally computed one's-complement sum.
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Creates a checksum accumulator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a byte slice into the accumulator. Odd-length slices are padded
    /// with a trailing zero byte, as RFC 1071 specifies.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Feeds a single big-endian 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Feeds a big-endian 32-bit word.
    pub fn add_u32(&mut self, word: u32) {
        self.add_u16((word >> 16) as u16);
        self.add_u16(word as u16);
    }

    /// Folds the accumulator and returns the one's-complement checksum.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Computes the transport checksum of `payload` (a full UDP or TCP segment
/// with its checksum field set to zero) over the IPv6 pseudo-header.
pub fn ipv6_transport_checksum(src: &Ipv6Addr, dst: &Ipv6Addr, next_header: u8, payload: &[u8]) -> u16 {
    let mut csum = Checksum::new();
    csum.add_bytes(&src.octets());
    csum.add_bytes(&dst.octets());
    csum.add_u32(payload.len() as u32);
    csum.add_u32(u32::from(next_header));
    csum.add_bytes(payload);
    let value = csum.finish();
    // Per RFC 768 / RFC 8200, a computed checksum of zero is transmitted as
    // all ones for UDP; doing it unconditionally is harmless for TCP since a
    // zero checksum there simply never verifies as zero.
    if value == 0 {
        0xffff
    } else {
        value
    }
}

/// Verifies a transport checksum: recomputing over a segment that already
/// contains a correct checksum must yield zero (or the segment carried
/// 0xffff for an all-zero sum).
pub fn verify_ipv6_transport_checksum(
    src: &Ipv6Addr,
    dst: &Ipv6Addr,
    next_header: u8,
    segment: &[u8],
) -> bool {
    let mut csum = Checksum::new();
    csum.add_bytes(&src.octets());
    csum.add_bytes(&dst.octets());
    csum.add_u32(segment.len() as u32);
    csum.add_u32(u32::from(next_header));
    csum.add_bytes(segment);
    // finish() returns the complement; a valid segment sums to 0xffff before
    // complementing, i.e. finish() == 0.
    csum.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_of_zero_bytes_is_all_ones() {
        let mut c = Checksum::new();
        c.add_bytes(&[0, 0, 0, 0]);
        assert_eq!(c.finish(), 0xffff);
    }

    #[test]
    fn odd_length_is_padded() {
        let mut a = Checksum::new();
        a.add_bytes(&[0x12, 0x34, 0x56]);
        let mut b = Checksum::new();
        b.add_bytes(&[0x12, 0x34, 0x56, 0x00]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn known_rfc1071_example() {
        // Example from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        let mut c = Checksum::new();
        c.add_bytes(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
        assert_eq!(c.finish(), !0xddf2);
    }

    #[test]
    fn transport_checksum_roundtrip() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let mut segment = vec![
            0x13, 0x88, 0x17, 0x70, // ports 5000 -> 6000
            0x00, 0x0c, 0x00, 0x00, // length 12, checksum 0
            0xde, 0xad, 0xbe, 0xef, // payload
        ];
        let csum = ipv6_transport_checksum(&src, &dst, 17, &segment);
        segment[6..8].copy_from_slice(&csum.to_be_bytes());
        assert!(verify_ipv6_transport_checksum(&src, &dst, 17, &segment));
        // Corrupting a payload byte must break verification.
        segment[9] ^= 0x01;
        assert!(!verify_ipv6_transport_checksum(&src, &dst, 17, &segment));
    }
}
