//! Error type shared by all parsers and builders in this crate.

use std::fmt;

/// Errors returned by packet parsing and construction routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the header that was expected at its start.
    Truncated {
        /// Number of bytes that were required.
        needed: usize,
        /// Number of bytes actually available.
        available: usize,
    },
    /// A header field holds a value that the parser cannot accept.
    Malformed(&'static str),
    /// A length field is inconsistent with the rest of the packet.
    BadLength(&'static str),
    /// The requested operation does not fit in the buffer (e.g. not enough
    /// headroom to push a header).
    NoSpace(&'static str),
    /// An SRH TLV walk failed validation.
    BadTlv(&'static str),
    /// A field value was out of the range representable on the wire.
    ValueOutOfRange(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated { needed, available } => {
                write!(f, "truncated packet: needed {needed} bytes, have {available}")
            }
            Error::Malformed(what) => write!(f, "malformed header: {what}"),
            Error::BadLength(what) => write!(f, "inconsistent length: {what}"),
            Error::NoSpace(what) => write!(f, "no space in buffer: {what}"),
            Error::BadTlv(what) => write!(f, "invalid SRH TLV: {what}"),
            Error::ValueOutOfRange(what) => write!(f, "value out of range: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Checks that `buf` holds at least `needed` bytes, returning
/// [`Error::Truncated`] otherwise.
pub fn ensure_len(buf: &[u8], needed: usize) -> Result<()> {
    if buf.len() < needed {
        Err(Error::Truncated { needed, available: buf.len() })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_len_accepts_exact_and_longer() {
        assert!(ensure_len(&[0; 4], 4).is_ok());
        assert!(ensure_len(&[0; 8], 4).is_ok());
    }

    #[test]
    fn ensure_len_rejects_short() {
        let err = ensure_len(&[0; 3], 4).unwrap_err();
        assert_eq!(err, Error::Truncated { needed: 4, available: 3 });
    }

    #[test]
    fn display_is_human_readable() {
        let err = Error::Malformed("bad version");
        assert!(err.to_string().contains("bad version"));
        let err = Error::Truncated { needed: 40, available: 2 };
        assert!(err.to_string().contains("40"));
    }
}
