//! RSS-style flow classification: the 5-tuple flow key, the Toeplitz hash
//! and receive-queue steering.
//!
//! A multi-queue NIC spreads incoming packets over its receive queues by
//! hashing the flow identity (source/destination address, transport
//! protocol and ports) with the Toeplitz hash and indexing an indirection
//! table with the result. The `seg6-runtime` crate reproduces exactly that
//! architecture in software: every packet is classified here, hashed, and
//! steered to a worker shard. Keeping all packets of one flow on one worker
//! preserves ordering and makes per-worker (per-CPU) map state coherent
//! without locks — the same argument the kernel makes for RSS + per-CPU
//! maps in the paper's End.BPF datapath.

use crate::ipv6::{proto, IPV6_HEADER_LEN};
use std::net::Ipv6Addr;

/// The identity of a transport flow: the classic 5-tuple.
///
/// For packets without a parseable transport header (ICMPv6, fragments,
/// unknown extension chains) the ports are zero and the hash degrades to a
/// 3-tuple — flows still steer consistently, they just share buckets more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source address of the innermost parsed IPv6 header.
    pub src: Ipv6Addr,
    /// Destination address of the innermost parsed IPv6 header.
    pub dst: Ipv6Addr,
    /// Transport protocol (`proto::UDP`, `proto::TCP`, ...).
    pub protocol: u8,
    /// Transport source port (0 when not applicable).
    pub src_port: u16,
    /// Transport destination port (0 when not applicable).
    pub dst_port: u16,
}

impl FlowKey {
    /// Returns the key with source and destination (addresses and ports)
    /// swapped — the key of the reverse direction of the same flow.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            protocol: self.protocol,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// Canonical form for symmetric hashing: both directions of a flow map
    /// to the same key (the lexicographically smaller endpoint first).
    pub fn symmetric(&self) -> FlowKey {
        let forward = (self.src, self.src_port) <= (self.dst, self.dst_port);
        if forward {
            *self
        } else {
            self.reversed()
        }
    }
}

/// Extracts the [`FlowKey`] from a raw IPv6 packet.
///
/// The walk mirrors what NIC parsers do for SRv6 traffic: follow the outer
/// header through a routing extension header and at most one level of
/// IPv6-in-IPv6 encapsulation, then read the transport ports. Hashing the
/// *inner* addresses keeps a flow on the same queue before and after
/// encapsulation or decapsulation, which matters when a probe or tunnel
/// traverses several runtime nodes.
///
/// Returns `None` only when the buffer does not even hold an IPv6 header.
pub fn flow_key(packet: &[u8]) -> Option<FlowKey> {
    // Direct byte walk rather than the full header parsers: steering runs
    // once per packet before any processing, and the flow key needs no
    // validation or allocation (the SRH parser would build a segment list
    // per packet, pure waste here). NIC RSS parsers do the same.
    let addr_at = |offset: usize| {
        let mut octets = [0u8; 16];
        octets.copy_from_slice(&packet[offset..offset + 16]);
        Ipv6Addr::from(octets)
    };
    if packet.len() < IPV6_HEADER_LEN || packet[0] >> 4 != 6 {
        return None;
    }
    let mut offset = IPV6_HEADER_LEN;
    let mut next = packet[6];
    let (mut src_off, mut dst_off) = (8usize, 24usize);
    // Follow routing headers and one encapsulation level. Bounded loop: at
    // most one SRH per IPv6 header and one inner header.
    for _ in 0..2 {
        if next == proto::ROUTING {
            if packet.len() < offset + 8 {
                break;
            }
            let ext_len = 8 + usize::from(packet[offset + 1]) * 8;
            next = packet[offset];
            offset += ext_len;
        }
        if next == proto::IPV6 {
            if packet.len() < offset + IPV6_HEADER_LEN {
                break;
            }
            next = packet[offset + 6];
            src_off = offset + 8;
            dst_off = offset + 24;
            offset += IPV6_HEADER_LEN;
        } else {
            break;
        }
    }
    let (src_port, dst_port) = match next {
        proto::UDP | proto::TCP if packet.len() >= offset + 4 => {
            let sp = u16::from_be_bytes([packet[offset], packet[offset + 1]]);
            let dp = u16::from_be_bytes([packet[offset + 2], packet[offset + 3]]);
            (sp, dp)
        }
        _ => (0, 0),
    };
    Some(FlowKey { src: addr_at(src_off), dst: addr_at(dst_off), protocol: next, src_port, dst_port })
}

/// The Microsoft RSS reference hash key, as programmed into NICs by default
/// (40 bytes covers the IPv6 5-tuple input width).
pub const RSS_DEFAULT_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0,
    0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c, 0x6a, 0x42,
    0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// The Toeplitz hash over `input` with `key`, as defined by the RSS
/// specification: for every set bit of the input, XOR in the 32-bit window
/// of the key starting at that bit position.
pub fn toeplitz_hash(key: &[u8; 40], input: &[u8]) -> u32 {
    assert!(input.len() * 8 + 32 <= key.len() * 8, "input too wide for the key");
    let mut hash = 0u32;
    // The sliding 32-bit window of the key, advanced bit by bit.
    let mut window = u32::from_be_bytes([key[0], key[1], key[2], key[3]]);
    let mut next_key_bit = 32;
    for &byte in input {
        for bit in (0..8).rev() {
            if byte >> bit & 1 == 1 {
                hash ^= window;
            }
            let incoming = key[next_key_bit / 8] >> (7 - next_key_bit % 8) & 1;
            window = window << 1 | u32::from(incoming);
            next_key_bit += 1;
        }
    }
    hash
}

/// Per-(byte-position, byte-value) contribution tables for
/// [`RSS_DEFAULT_KEY`], turning the bit-serial Toeplitz definition into 36
/// table lookups — the same trick NIC drivers and DPDK use in software RSS.
/// ~37 KiB, built once.
fn default_key_tables() -> &'static [[u32; 256]; 36] {
    static TABLES: std::sync::OnceLock<Box<[[u32; 256]; 36]>> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = Box::new([[0u32; 256]; 36]);
        for (pos, table) in tables.iter_mut().enumerate() {
            // The 32-bit key window starting at bit `pos * 8 + bit`.
            let window_at = |bitpos: usize| -> u32 {
                let mut window = 0u32;
                for i in 0..32 {
                    let bit = bitpos + i;
                    let key_bit = RSS_DEFAULT_KEY[bit / 8] >> (7 - bit % 8) & 1;
                    window = window << 1 | u32::from(key_bit);
                }
                window
            };
            for (value, slot) in table.iter_mut().enumerate() {
                let mut hash = 0u32;
                for bit in 0..8 {
                    if value >> (7 - bit) & 1 == 1 {
                        hash ^= window_at(pos * 8 + bit);
                    }
                }
                *slot = hash;
            }
        }
        tables
    })
}

/// The RSS hash of a flow key: the Toeplitz hash over the concatenated
/// IPv6 5-tuple (source address, destination address, source port,
/// destination port), the input ordering NICs use for `TCP/UDP over IPv6`.
///
/// The protocol byte is mixed into the final value rather than the Toeplitz
/// input so the function stays bit-compatible with the hardware hash for
/// TCP and UDP.
pub fn rss_hash(key: &FlowKey) -> u32 {
    let mut input = [0u8; 36];
    input[..16].copy_from_slice(&key.src.octets());
    input[16..32].copy_from_slice(&key.dst.octets());
    input[32..34].copy_from_slice(&key.src_port.to_be_bytes());
    input[34..36].copy_from_slice(&key.dst_port.to_be_bytes());
    let tables = default_key_tables();
    let mut hash = 0u32;
    for (pos, &byte) in input.iter().enumerate() {
        hash ^= tables[pos][usize::from(byte)];
    }
    if key.protocol == proto::UDP || key.protocol == proto::TCP {
        hash
    } else {
        hash ^ u32::from(key.protocol).wrapping_mul(0x9e37_79b9)
    }
}

/// The RSS hash computed directly from a packet. Packets too short to carry
/// an IPv6 header all hash to zero (and thus steer to queue zero).
pub fn rss_hash_packet(packet: &[u8]) -> u32 {
    flow_key(packet).map_or(0, |key| rss_hash(&key))
}

/// Symmetric variant of [`rss_hash_packet`]: both directions of a flow
/// produce the same hash, so request and response traffic steers to the
/// same worker (needed by stateful functions such as the delay-monitoring
/// collector).
pub fn rss_hash_packet_symmetric(packet: &[u8]) -> u32 {
    flow_key(packet).map_or(0, |key| rss_hash(&key.symmetric()))
}

/// Maps a flow hash to one of `queues` receive queues, as the RSS
/// indirection table does. `queues` must be non-zero.
pub fn steer(hash: u32, queues: usize) -> usize {
    assert!(queues > 0, "cannot steer to zero queues");
    hash as usize % queues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv6::Ipv6Header;
    use crate::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
    use crate::srh::SegmentRoutingHeader;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn udp_packet(src: &str, dst: &str, sp: u16, dp: u16) -> Vec<u8> {
        build_ipv6_udp_packet(addr(src), addr(dst), sp, dp, &[0u8; 32], 64).data().to_vec()
    }

    #[test]
    fn flow_key_reads_the_five_tuple() {
        let pkt = udp_packet("2001:db8::1", "2001:db8::2", 1234, 5678);
        let key = flow_key(&pkt).unwrap();
        assert_eq!(key.src, addr("2001:db8::1"));
        assert_eq!(key.dst, addr("2001:db8::2"));
        assert_eq!(key.protocol, proto::UDP);
        assert_eq!(key.src_port, 1234);
        assert_eq!(key.dst_port, 5678);
    }

    #[test]
    fn flow_key_follows_srh_and_encapsulation() {
        // An SRv6 packet: the transport sits behind the SRH.
        let srh = SegmentRoutingHeader::from_path(proto::UDP, &[addr("fc00::e1"), addr("fc00::e2")]);
        let pkt = build_srv6_udp_packet(addr("2001:db8::1"), &srh, 10, 20, &[0u8; 16], 64);
        let key = flow_key(pkt.data()).unwrap();
        assert_eq!(key.protocol, proto::UDP);
        assert_eq!(key.src_port, 10);
        assert_eq!(key.dst_port, 20);

        // IPv6-in-IPv6: the key uses the inner addresses, so the flow stays
        // on the same queue across encapsulation.
        let inner = udp_packet("2001:db8::1", "2001:db8::2", 7, 8);
        let inner_key = flow_key(&inner).unwrap();
        let mut encapped = inner.clone();
        let outer_srh = SegmentRoutingHeader::from_path(proto::IPV6, &[addr("fc00::a")]);
        seg6_encap_for_test(&mut encapped, &outer_srh);
        let outer_key = flow_key(&encapped).unwrap();
        assert_eq!(inner_key, outer_key);
    }

    /// Minimal encapsulation helper (outer IPv6 + SRH pushed in front),
    /// mirroring what `seg6-core`'s `push_srh_encap` produces.
    fn seg6_encap_for_test(packet: &mut Vec<u8>, srh: &SegmentRoutingHeader) {
        let srh_bytes = srh.to_bytes();
        let payload_len = (packet.len() + srh_bytes.len()) as u16;
        let outer = Ipv6Header::new(
            addr("fc00::99"),
            srh.current_segment().unwrap(),
            proto::ROUTING,
            payload_len,
            64,
        );
        let mut out = outer.to_bytes().to_vec();
        out.extend_from_slice(&srh_bytes);
        out.extend_from_slice(packet);
        *packet = out;
    }

    #[test]
    fn malformed_packets_hash_to_zero() {
        assert!(flow_key(&[0u8; 8]).is_none());
        assert_eq!(rss_hash_packet(&[0u8; 8]), 0);
    }

    #[test]
    fn toeplitz_matches_the_published_ipv6_test_vectors() {
        // Verification suite from the Microsoft RSS specification
        // ("Verifying the RSS Hash Calculation", TCP/IPv6 examples):
        // destination address, source address, then destination/source port
        // concatenated in network order.
        let vectors: [(&str, u16, &str, u16, u32); 3] = [
            ("3ffe:2501:200:3::1", 1766, "3ffe:2501:200:1fff::7", 2794, 0x4020_7d3d),
            ("ff02::1", 4739, "3ffe:501:8::260:97ff:fe40:efab", 14230, 0xdde5_1bbf),
            ("fe80::200:f8ff:fe21:67cf", 38024, "3ffe:1900:4545:3:200:f8ff:fe21:67cf", 44251, 0x02d1_feef),
        ];
        for (dst, dst_port, src, src_port, expected) in vectors {
            let mut input = [0u8; 36];
            input[..16].copy_from_slice(&addr(src).octets());
            input[16..32].copy_from_slice(&addr(dst).octets());
            input[32..34].copy_from_slice(&src_port.to_be_bytes());
            input[34..36].copy_from_slice(&dst_port.to_be_bytes());
            assert_eq!(toeplitz_hash(&RSS_DEFAULT_KEY, &input), expected, "vector for {src}");
            // The table-driven fast path agrees with the bit-serial
            // definition (rss_hash uses it internally).
            let key = FlowKey { src: addr(src), dst: addr(dst), protocol: proto::TCP, src_port, dst_port };
            assert_eq!(rss_hash(&key), expected, "table path for {src}");
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let pkt = udp_packet("2001:db8::1", "2001:db8::2", 1234, 5678);
        let h1 = rss_hash_packet(&pkt);
        let h2 = rss_hash_packet(&pkt);
        assert_eq!(h1, h2);
        // And sensitive to every element of the tuple.
        assert_ne!(h1, rss_hash_packet(&udp_packet("2001:db8::1", "2001:db8::2", 1234, 5679)));
        assert_ne!(h1, rss_hash_packet(&udp_packet("2001:db8::1", "2001:db8::3", 1234, 5678)));
    }

    #[test]
    fn symmetric_hash_matches_in_both_directions() {
        let fwd = udp_packet("2001:db8::1", "2001:db8::2", 1234, 5678);
        let rev = udp_packet("2001:db8::2", "2001:db8::1", 5678, 1234);
        // The plain hash differs per direction (as hardware RSS does)...
        assert_ne!(rss_hash_packet(&fwd), rss_hash_packet(&rev));
        // ...the symmetric variant does not.
        assert_eq!(rss_hash_packet_symmetric(&fwd), rss_hash_packet_symmetric(&rev));
        let key = flow_key(&fwd).unwrap();
        assert_eq!(key.symmetric(), key.reversed().symmetric());
    }

    #[test]
    fn steering_spreads_flows_evenly() {
        // 4096 distinct flows over 8 queues: expect every queue to get
        // within 25% of the fair share (512).
        let queues = 8;
        let mut counts = vec![0usize; queues];
        for i in 0..4096u32 {
            let pkt = udp_packet(
                &format!("2001:db8::{:x}", i + 1),
                "2001:db8:ffff::1",
                1024 + (i % 512) as u16,
                5001,
            );
            counts[steer(rss_hash_packet(&pkt), queues)] += 1;
        }
        let fair = 4096 / queues;
        for (queue, &count) in counts.iter().enumerate() {
            assert!(
                count > fair * 3 / 4 && count < fair * 5 / 4,
                "queue {queue} got {count} of {fair} fair share: {counts:?}"
            );
        }
    }

    #[test]
    fn same_flow_always_steers_to_the_same_queue() {
        let pkt = udp_packet("2001:db8::a", "2001:db8::b", 40000, 443);
        let q = steer(rss_hash_packet(&pkt), 16);
        for _ in 0..10 {
            assert_eq!(steer(rss_hash_packet(&pkt), 16), q);
        }
    }
}
