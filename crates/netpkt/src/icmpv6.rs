//! A minimal ICMPv6 (RFC 4443) subset: echo request/reply, time exceeded
//! and destination unreachable.
//!
//! The End.OAMP use case (§4.3) extends traceroute; when a hop does not
//! expose the SRv6 eBPF function, the prober falls back to the classic
//! ICMPv6 time-exceeded mechanism, which this module provides.

use crate::error::{ensure_len, Error, Result};

/// ICMPv6 message types used by the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Icmpv6Type {
    /// Destination unreachable (type 1).
    DestinationUnreachable,
    /// Time exceeded — hop limit reached zero (type 3).
    TimeExceeded,
    /// Echo request (type 128).
    EchoRequest,
    /// Echo reply (type 129).
    EchoReply,
}

impl Icmpv6Type {
    /// Wire value of the type field.
    pub fn code(self) -> u8 {
        match self {
            Icmpv6Type::DestinationUnreachable => 1,
            Icmpv6Type::TimeExceeded => 3,
            Icmpv6Type::EchoRequest => 128,
            Icmpv6Type::EchoReply => 129,
        }
    }

    /// Parses a wire type value.
    pub fn from_code(code: u8) -> Result<Self> {
        match code {
            1 => Ok(Icmpv6Type::DestinationUnreachable),
            3 => Ok(Icmpv6Type::TimeExceeded),
            128 => Ok(Icmpv6Type::EchoRequest),
            129 => Ok(Icmpv6Type::EchoReply),
            _ => Err(Error::Malformed("unsupported ICMPv6 type")),
        }
    }
}

/// Length of the fixed ICMPv6 header (type, code, checksum, 4-byte body).
pub const ICMPV6_HEADER_LEN: usize = 8;

/// An ICMPv6 header with its 4-byte type-specific field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Icmpv6Header {
    /// Message type.
    pub msg_type: Icmpv6Type,
    /// Message code (0 for everything we emit).
    pub code: u8,
    /// Checksum (0 when not yet computed).
    pub checksum: u16,
    /// For echo messages: identifier (high 16 bits) and sequence (low 16
    /// bits). For errors: unused / MTU.
    pub rest: u32,
}

impl Icmpv6Header {
    /// Builds an echo-request header with the given identifier and sequence.
    pub fn echo_request(identifier: u16, sequence: u16) -> Self {
        Icmpv6Header {
            msg_type: Icmpv6Type::EchoRequest,
            code: 0,
            checksum: 0,
            rest: (u32::from(identifier) << 16) | u32::from(sequence),
        }
    }

    /// Builds an echo-reply header answering `request`.
    pub fn echo_reply_to(request: &Icmpv6Header) -> Self {
        Icmpv6Header { msg_type: Icmpv6Type::EchoReply, ..*request }
    }

    /// Builds a hop-limit-exceeded error header.
    pub fn time_exceeded() -> Self {
        Icmpv6Header { msg_type: Icmpv6Type::TimeExceeded, code: 0, checksum: 0, rest: 0 }
    }

    /// Echo identifier (only meaningful for echo messages).
    pub fn identifier(&self) -> u16 {
        (self.rest >> 16) as u16
    }

    /// Echo sequence number (only meaningful for echo messages).
    pub fn sequence(&self) -> u16 {
        self.rest as u16
    }

    /// Parses the fixed ICMPv6 header from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, ICMPV6_HEADER_LEN)?;
        Ok(Icmpv6Header {
            msg_type: Icmpv6Type::from_code(buf[0])?,
            code: buf[1],
            checksum: u16::from_be_bytes([buf[2], buf[3]]),
            rest: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
        })
    }

    /// Serialises the fixed header.
    pub fn to_bytes(&self) -> [u8; ICMPV6_HEADER_LEN] {
        let mut out = [0u8; ICMPV6_HEADER_LEN];
        out[0] = self.msg_type.code();
        out[1] = self.code;
        out[2..4].copy_from_slice(&self.checksum.to_be_bytes());
        out[4..8].copy_from_slice(&self.rest.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_request_roundtrip() {
        let hdr = Icmpv6Header::echo_request(0x1234, 7);
        let parsed = Icmpv6Header::parse(&hdr.to_bytes()).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(parsed.identifier(), 0x1234);
        assert_eq!(parsed.sequence(), 7);
    }

    #[test]
    fn echo_reply_preserves_id_and_seq() {
        let req = Icmpv6Header::echo_request(9, 3);
        let reply = Icmpv6Header::echo_reply_to(&req);
        assert_eq!(reply.msg_type, Icmpv6Type::EchoReply);
        assert_eq!(reply.identifier(), 9);
        assert_eq!(reply.sequence(), 3);
    }

    #[test]
    fn time_exceeded_roundtrip() {
        let hdr = Icmpv6Header::time_exceeded();
        assert_eq!(Icmpv6Header::parse(&hdr.to_bytes()).unwrap(), hdr);
    }

    #[test]
    fn unknown_type_is_rejected() {
        let bytes = [200u8, 0, 0, 0, 0, 0, 0, 0];
        assert!(Icmpv6Header::parse(&bytes).is_err());
    }
}
