//! The fixed IPv6 header (RFC 8200 §3).

use crate::error::{ensure_len, Error, Result};
use std::net::Ipv6Addr;

/// Length in bytes of the fixed IPv6 header.
pub const IPV6_HEADER_LEN: usize = 40;

/// Next-header (protocol) numbers used in this workspace.
pub mod proto {
    /// IPv6 Routing extension header (the SRH uses routing type 4).
    pub const ROUTING: u8 = 43;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// IPv6-in-IPv6 encapsulation, used by SRv6 encap mode.
    pub const IPV6: u8 = 41;
    /// ICMPv6.
    pub const ICMPV6: u8 = 58;
    /// No next header.
    pub const NONE: u8 = 59;
}

/// A parsed or to-be-serialised fixed IPv6 header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Traffic class (DSCP + ECN).
    pub traffic_class: u8,
    /// 20-bit flow label. SRv6 ECMP hashing uses it as entropy input.
    pub flow_label: u32,
    /// Length of everything after the fixed header, in bytes.
    pub payload_length: u16,
    /// Protocol of the following header.
    pub next_header: u8,
    /// Hop limit, decremented at each forwarding hop.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// Creates a header with a zero traffic class and flow label.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, payload_length: u16, hop_limit: u8) -> Self {
        Ipv6Header { traffic_class: 0, flow_label: 0, payload_length, next_header, hop_limit, src, dst }
    }

    /// Parses the first [`IPV6_HEADER_LEN`] bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, IPV6_HEADER_LEN)?;
        let version = buf[0] >> 4;
        if version != 6 {
            return Err(Error::Malformed("IPv6 version field is not 6"));
        }
        let traffic_class = (buf[0] << 4) | (buf[1] >> 4);
        let flow_label = (u32::from(buf[1] & 0x0f) << 16) | (u32::from(buf[2]) << 8) | u32::from(buf[3]);
        let payload_length = u16::from_be_bytes([buf[4], buf[5]]);
        let next_header = buf[6];
        let hop_limit = buf[7];
        let mut src = [0u8; 16];
        src.copy_from_slice(&buf[8..24]);
        let mut dst = [0u8; 16];
        dst.copy_from_slice(&buf[24..40]);
        Ok(Ipv6Header {
            traffic_class,
            flow_label,
            payload_length,
            next_header,
            hop_limit,
            src: Ipv6Addr::from(src),
            dst: Ipv6Addr::from(dst),
        })
    }

    /// Serialises the header to its 40-byte wire representation.
    pub fn to_bytes(&self) -> [u8; IPV6_HEADER_LEN] {
        let mut out = [0u8; IPV6_HEADER_LEN];
        self.write_to(&mut out);
        out
    }

    /// Serialises the header into the first 40 bytes of `buf`.
    ///
    /// # Panics
    /// Panics if `buf` is shorter than [`IPV6_HEADER_LEN`].
    pub fn write_to(&self, buf: &mut [u8]) {
        let flow = self.flow_label & 0x000f_ffff;
        buf[0] = (6 << 4) | (self.traffic_class >> 4);
        buf[1] = ((self.traffic_class & 0x0f) << 4) | ((flow >> 16) as u8);
        buf[2] = (flow >> 8) as u8;
        buf[3] = flow as u8;
        buf[4..6].copy_from_slice(&self.payload_length.to_be_bytes());
        buf[6] = self.next_header;
        buf[7] = self.hop_limit;
        buf[8..24].copy_from_slice(&self.src.octets());
        buf[24..40].copy_from_slice(&self.dst.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Header {
        Ipv6Header {
            traffic_class: 0xb8,
            flow_label: 0xabcde,
            payload_length: 1280,
            next_header: proto::UDP,
            hop_limit: 63,
            src: "2001:db8::1".parse().unwrap(),
            dst: "fc00::42".parse().unwrap(),
        }
    }

    #[test]
    fn roundtrip() {
        let hdr = sample();
        let bytes = hdr.to_bytes();
        assert_eq!(Ipv6Header::parse(&bytes).unwrap(), hdr);
    }

    #[test]
    fn version_nibble_is_six() {
        assert_eq!(sample().to_bytes()[0] >> 4, 6);
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x45; // IPv4-looking first byte
        assert_eq!(Ipv6Header::parse(&bytes).unwrap_err(), Error::Malformed("IPv6 version field is not 6"));
    }

    #[test]
    fn parse_rejects_short_buffer() {
        assert!(matches!(Ipv6Header::parse(&[0x60; 39]), Err(Error::Truncated { .. })));
    }

    #[test]
    fn flow_label_is_masked_to_20_bits() {
        let mut hdr = sample();
        hdr.flow_label = 0xfff_ffff;
        let parsed = Ipv6Header::parse(&hdr.to_bytes()).unwrap();
        assert_eq!(parsed.flow_label, 0x000f_ffff);
    }

    #[test]
    fn traffic_class_straddles_bytes() {
        let hdr = sample();
        let bytes = hdr.to_bytes();
        let parsed = Ipv6Header::parse(&bytes).unwrap();
        assert_eq!(parsed.traffic_class, 0xb8);
    }
}
