//! # netpkt — wire formats for the SRv6 eBPF reproduction
//!
//! This crate provides the packet formats used throughout the workspace:
//! IPv6, the Segment Routing Header (SRH) with its TLVs, UDP, TCP and
//! ICMPv6, plus a small `skb`-like packet buffer ([`PacketBuf`]) that
//! supports pushing and pulling headers the way the Linux kernel does when
//! encapsulating and decapsulating SRv6 traffic.
//!
//! Everything here is plain, allocation-friendly Rust: packets are built
//! and parsed in memory and handed to the `seg6-core` data plane or to the
//! `simnet` simulator. The one I/O-touching module is [`sockio`], the
//! batched socket front-end (`recvmmsg`-shaped burst reads behind a small
//! trait seam) that the `srv6d` daemon feeds the worker pool from.
//!
//! ## Quick example
//!
//! ```
//! use netpkt::{Ipv6Header, SegmentRoutingHeader, UdpHeader, PacketBuf, proto};
//! use std::net::Ipv6Addr;
//!
//! // Build an SRv6 packet with two segments and a UDP payload.
//! let segments = vec![
//!     "fc00::2".parse::<Ipv6Addr>().unwrap(),
//!     "fc00::1".parse::<Ipv6Addr>().unwrap(),
//! ];
//! let srh = SegmentRoutingHeader::new(proto::UDP, segments, 1);
//! let udp = UdpHeader::new(5000, 6000, 64);
//! let payload = vec![0u8; 64];
//!
//! let mut pkt = PacketBuf::with_headroom(128);
//! pkt.append(&payload);
//! pkt.push_header(&udp.to_bytes());
//! pkt.push_header(&srh.to_bytes());
//! let ip = Ipv6Header::new(
//!     "2001:db8::1".parse().unwrap(),
//!     "fc00::1".parse().unwrap(),
//!     proto::ROUTING,
//!     pkt.len() as u16,
//!     64,
//! );
//! pkt.push_header(&ip.to_bytes());
//!
//! let parsed = Ipv6Header::parse(pkt.data()).unwrap();
//! assert_eq!(parsed.next_header, proto::ROUTING);
//! ```

// Unsafe is denied crate-wide; the one exception is `sockio::mmsg`, the
// raw `recvmmsg`/`sendmmsg` FFI backend, which carries its own
// `#[allow(unsafe_code)]` and documents every unsafe block — the same
// policy `seg6-runtime` applies to its `ring` module.
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod buf;
pub mod bufpool;
pub mod checksum;
pub mod error;
pub mod flow;
pub mod icmpv6;
pub mod ipv6;
pub mod packet;
pub mod prefix;
pub mod sockio;
pub mod srh;
pub mod tcp;
pub mod udp;

pub use buf::PacketBuf;
pub use bufpool::BufPool;
pub use error::{Error, Result};
pub use flow::{flow_key, rss_hash, rss_hash_packet, rss_hash_packet_symmetric, steer, FlowKey};
pub use icmpv6::{Icmpv6Header, Icmpv6Type};
pub use ipv6::{proto, Ipv6Header, IPV6_HEADER_LEN};
pub use packet::ParsedPacket;
pub use prefix::Ipv6Prefix;
pub use sockio::mmsg::{MmsgRx, MmsgTx};
pub use sockio::{FrameBatch, MemRx, MemTx, PacketRx, PacketTx, UdpRx, UdpTx};
pub use srh::{SegmentRoutingHeader, SrhTlv, TlvKind, SRH_FIXED_LEN};
pub use tcp::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
pub use udp::{UdpHeader, UDP_HEADER_LEN};
