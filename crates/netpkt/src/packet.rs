//! Whole-packet parsing and building helpers.
//!
//! [`ParsedPacket`] walks an IPv6 packet from its outermost header and
//! records where each header lives inside the buffer, so the SRv6 data plane
//! can locate the SRH (to advance or edit it) and the transport header
//! without re-parsing from scratch at every step.

use crate::buf::PacketBuf;
use crate::error::{Error, Result};
use crate::ipv6::{proto, Ipv6Header, IPV6_HEADER_LEN};
use crate::srh::SegmentRoutingHeader;
use crate::udp::UdpHeader;
use std::net::Ipv6Addr;

/// Location and parsed form of the SRH inside a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrhLocation {
    /// Byte offset of the SRH from the start of the packet.
    pub offset: usize,
    /// Length of the SRH in bytes.
    pub len: usize,
    /// Parsed header.
    pub srh: SegmentRoutingHeader,
}

/// A parsed view of an IPv6 packet (outer header, optional SRH, optional
/// inner IPv6 header for encapsulated traffic, transport offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket {
    /// The outermost IPv6 header.
    pub outer: Ipv6Header,
    /// The SRH attached to the outermost header, if any.
    pub srh: Option<SrhLocation>,
    /// The inner IPv6 header, when the packet is IPv6-in-IPv6 encapsulated.
    pub inner: Option<Ipv6Header>,
    /// Byte offset of the inner IPv6 header, if present.
    pub inner_offset: Option<usize>,
    /// Protocol of the upper-layer header located at `transport_offset`.
    pub transport_proto: u8,
    /// Byte offset of the upper-layer (UDP/TCP/ICMPv6) header.
    pub transport_offset: usize,
}

impl ParsedPacket {
    /// Parses `data` as an IPv6 packet, following a routing extension header
    /// and at most one level of IPv6-in-IPv6 encapsulation.
    pub fn parse(data: &[u8]) -> Result<Self> {
        let outer = Ipv6Header::parse(data)?;
        let mut offset = IPV6_HEADER_LEN;
        let mut next = outer.next_header;
        let mut srh = None;
        if next == proto::ROUTING {
            let parsed = SegmentRoutingHeader::parse(&data[offset..])?;
            let len = 8 + usize::from(parsed.hdr_ext_len()) * 8;
            next = parsed.next_header;
            srh = Some(SrhLocation { offset, len, srh: parsed });
            offset += len;
        }
        let (inner, inner_offset, transport_proto, transport_offset) = if next == proto::IPV6 {
            let inner_hdr = Ipv6Header::parse(&data[offset..])?;
            let inner_off = offset;
            let mut t_off = offset + IPV6_HEADER_LEN;
            let mut t_proto = inner_hdr.next_header;
            // Follow an inner SRH too (e.g. nested B6 encapsulation); we only
            // record the transport location in that case.
            if t_proto == proto::ROUTING {
                let inner_srh = SegmentRoutingHeader::parse(&data[t_off..])?;
                t_proto = inner_srh.next_header;
                t_off += 8 + usize::from(inner_srh.hdr_ext_len()) * 8;
            }
            (Some(inner_hdr), Some(inner_off), t_proto, t_off)
        } else {
            (None, None, next, offset)
        };
        Ok(ParsedPacket { outer, srh, inner, inner_offset, transport_proto, transport_offset })
    }

    /// Parses the packet held by a [`PacketBuf`].
    pub fn parse_buf(buf: &PacketBuf) -> Result<Self> {
        Self::parse(buf.data())
    }

    /// The SRH if present, or an error tailored to seg6local processing.
    pub fn require_srh(&self) -> Result<&SrhLocation> {
        self.srh.as_ref().ok_or(Error::Malformed("packet has no Segment Routing Header"))
    }
}

/// Builds a plain IPv6/UDP packet, as `pktgen` produces in the paper's
/// experiments.
pub fn build_ipv6_udp_packet(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    hop_limit: u8,
) -> PacketBuf {
    let udp = UdpHeader::build_datagram(&src, &dst, src_port, dst_port, payload);
    let ip = Ipv6Header::new(src, dst, proto::UDP, udp.len() as u16, hop_limit);
    let mut pkt = PacketBuf::with_headroom(128);
    pkt.append(&udp);
    pkt.push_header(&ip.to_bytes());
    pkt
}

/// Builds an SRv6 UDP packet: an outer IPv6 header whose destination is the
/// SRH's current segment, the SRH itself, and a UDP datagram, as `trafgen`
/// produces in the paper's experiments (§3.2).
pub fn build_srv6_udp_packet(
    src: Ipv6Addr,
    srh: &SegmentRoutingHeader,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    hop_limit: u8,
) -> PacketBuf {
    let current = srh.current_segment().expect("SRH must have at least one segment");
    let udp = UdpHeader::build_datagram(&src, &current, src_port, dst_port, payload);
    let srh_bytes = srh.to_bytes();
    let ip = Ipv6Header::new(src, current, proto::ROUTING, (srh_bytes.len() + udp.len()) as u16, hop_limit);
    let mut pkt = PacketBuf::with_headroom(128);
    pkt.append(&udp);
    pkt.push_header(&srh_bytes);
    pkt.push_header(&ip.to_bytes());
    pkt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srh::{SrhTlv, TlvKind};

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn parse_plain_udp_packet() {
        let pkt = build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::2"), 1000, 2000, &[0; 64], 64);
        let parsed = ParsedPacket::parse_buf(&pkt).unwrap();
        assert!(parsed.srh.is_none());
        assert!(parsed.inner.is_none());
        assert_eq!(parsed.transport_proto, proto::UDP);
        assert_eq!(parsed.transport_offset, IPV6_HEADER_LEN);
        assert_eq!(parsed.outer.payload_length as usize, pkt.len() - IPV6_HEADER_LEN);
        assert!(parsed.require_srh().is_err());
    }

    #[test]
    fn parse_srv6_udp_packet() {
        let srh = SegmentRoutingHeader::from_path(proto::UDP, &[addr("fc00::1"), addr("fc00::2")]);
        let pkt = build_srv6_udp_packet(addr("2001:db8::1"), &srh, 1000, 2000, &[0; 64], 64);
        let parsed = ParsedPacket::parse_buf(&pkt).unwrap();
        let loc = parsed.require_srh().unwrap();
        assert_eq!(loc.offset, IPV6_HEADER_LEN);
        assert_eq!(loc.srh.current_segment(), Some(addr("fc00::1")));
        assert_eq!(parsed.outer.dst, addr("fc00::1"));
        assert_eq!(parsed.transport_proto, proto::UDP);
        assert_eq!(parsed.transport_offset, IPV6_HEADER_LEN + loc.len);
    }

    #[test]
    fn parse_encapsulated_packet() {
        // inner plain packet
        let inner = build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8::2"), 1, 2, &[0; 16], 64);
        // outer encapsulation with an SRH carrying a DM TLV
        let mut srh = SegmentRoutingHeader::from_path(proto::IPV6, &[addr("fc00::a"), addr("fc00::b")]);
        srh.tlvs.push(SrhTlv::DelayMeasurement { tx_timestamp_ns: 42 });
        let srh_bytes = srh.to_bytes();
        let mut pkt = inner.clone();
        pkt.push_header(&srh_bytes);
        let outer_ip = Ipv6Header::new(
            addr("fc00::99"),
            addr("fc00::a"),
            proto::ROUTING,
            (srh_bytes.len() + inner.len()) as u16,
            64,
        );
        pkt.push_header(&outer_ip.to_bytes());

        let parsed = ParsedPacket::parse_buf(&pkt).unwrap();
        assert_eq!(parsed.outer.dst, addr("fc00::a"));
        let loc = parsed.require_srh().unwrap();
        assert!(loc.srh.find_tlv(TlvKind::DelayMeasurement).is_some());
        let inner_hdr = parsed.inner.clone().unwrap();
        assert_eq!(inner_hdr.dst, addr("2001:db8::2"));
        assert_eq!(parsed.transport_proto, proto::UDP);
        assert_eq!(parsed.inner_offset, Some(IPV6_HEADER_LEN + loc.len));
        assert_eq!(parsed.transport_offset, IPV6_HEADER_LEN + loc.len + IPV6_HEADER_LEN);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ParsedPacket::parse(&[0u8; 10]).is_err());
    }
}
