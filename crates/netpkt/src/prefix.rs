//! IPv6 prefixes, used by the FIB and by the seg6local My-SID table.

use crate::error::{Error, Result};
use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

/// An IPv6 prefix: an address plus a prefix length in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv6Prefix {
    addr: Ipv6Addr,
    len: u8,
}

impl Ipv6Prefix {
    /// Creates a prefix, masking `addr` down to `len` bits.
    ///
    /// Returns an error if `len` exceeds 128.
    pub fn new(addr: Ipv6Addr, len: u8) -> Result<Self> {
        if len > 128 {
            return Err(Error::ValueOutOfRange("prefix length exceeds 128"));
        }
        Ok(Ipv6Prefix { addr: mask(addr, len), len })
    }

    /// A /128 prefix covering exactly `addr`.
    pub fn host(addr: Ipv6Addr) -> Self {
        Ipv6Prefix { addr, len: 128 }
    }

    /// The (masked) network address.
    pub fn addr(&self) -> Ipv6Addr {
        self.addr
    }

    /// The prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is not "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the default route `::/0`.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside the prefix.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        mask(addr, self.len) == self.addr
    }

    /// Whether `other` is entirely contained in this prefix.
    pub fn covers(&self, other: &Ipv6Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }
}

fn mask(addr: Ipv6Addr, len: u8) -> Ipv6Addr {
    let value = u128::from_be_bytes(addr.octets());
    let masked = if len == 0 { 0 } else { value & (u128::MAX << (128 - u32::from(len))) };
    Ipv6Addr::from(masked.to_be_bytes())
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        match s.split_once('/') {
            Some((addr, len)) => {
                let addr: Ipv6Addr =
                    addr.parse().map_err(|_| Error::Malformed("invalid IPv6 address in prefix"))?;
                let len: u8 = len.parse().map_err(|_| Error::Malformed("invalid prefix length"))?;
                Ipv6Prefix::new(addr, len)
            }
            None => {
                let addr: Ipv6Addr = s.parse().map_err(|_| Error::Malformed("invalid IPv6 address"))?;
                Ok(Ipv6Prefix::host(addr))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_masks_host_bits() {
        let p = Ipv6Prefix::new("2001:db8::ffff".parse().unwrap(), 64).unwrap();
        assert_eq!(p.addr(), "2001:db8::".parse::<Ipv6Addr>().unwrap());
        assert_eq!(p.len(), 64);
    }

    #[test]
    fn rejects_length_over_128() {
        assert!(Ipv6Prefix::new(Ipv6Addr::UNSPECIFIED, 129).is_err());
    }

    #[test]
    fn contains_and_covers() {
        let p: Ipv6Prefix = "fc00:1::/32".parse().unwrap();
        assert!(p.contains("fc00:1::42".parse().unwrap()));
        assert!(!p.contains("fc00:2::42".parse().unwrap()));
        let narrower: Ipv6Prefix = "fc00:1:2::/48".parse().unwrap();
        assert!(p.covers(&narrower));
        assert!(!narrower.covers(&p));
    }

    #[test]
    fn default_route_contains_everything() {
        let p: Ipv6Prefix = "::/0".parse().unwrap();
        assert!(p.is_default());
        assert!(p.contains("2001:db8::1".parse().unwrap()));
        assert!(p.contains(Ipv6Addr::UNSPECIFIED));
    }

    #[test]
    fn parse_without_slash_is_host_prefix() {
        let p: Ipv6Prefix = "fc00::1".parse().unwrap();
        assert_eq!(p.len(), 128);
        assert!(p.contains("fc00::1".parse().unwrap()));
        assert!(!p.contains("fc00::2".parse().unwrap()));
    }

    #[test]
    fn display_roundtrip() {
        let p: Ipv6Prefix = "2001:db8:abcd::/48".parse().unwrap();
        let again: Ipv6Prefix = p.to_string().parse().unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn parse_errors() {
        assert!("not-an-address/64".parse::<Ipv6Prefix>().is_err());
        assert!("2001:db8::/xyz".parse::<Ipv6Prefix>().is_err());
        assert!("2001:db8::/200".parse::<Ipv6Prefix>().is_err());
    }
}
