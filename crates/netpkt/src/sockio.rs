//! Batched socket I/O behind a small trait seam — the daemon's packet
//! front-end.
//!
//! A deployable datapath reads frames from real sockets, and it reads
//! them in **batches**: `recvmmsg` moves a burst of datagrams per
//! syscall, and every serious userspace datapath (DPDK, AF_XDP, the
//! Solana streamer) amortises its syscall cost the same way. This module
//! gives the repository that shape without committing the daemon to one
//! transport:
//!
//! * [`FrameBatch`] is the reusable burst buffer: a fixed set of
//!   fixed-size frame slots allocated once, filled by a receiver and
//!   drained as `&[u8]` slices. After construction it never allocates —
//!   the property the pool's zero-allocation byte-ingestion path
//!   ([`enqueue_bytes_all`](https://docs.rs) in `seg6-runtime`) wants
//!   from its feeder.
//! * [`PacketRx`] / [`PacketTx`] are the I/O traits: object-safe, so a
//!   daemon can hold `Box<dyn PacketRx>` per receive queue and swap the
//!   transport per deployment — and so tests can run the whole daemon on
//!   an in-memory link with deterministic delivery.
//! * [`UdpRx`] / [`UdpTx`] are the standard-library UDP implementation:
//!   non-blocking sockets drained (and fed) in bursts. Each datagram
//!   still costs one `recvfrom`/`send` syscall — the trait is exactly
//!   the seam where a `recvmmsg`/`sendmmsg` implementation would slot in
//!   without touching any caller.
//! * [`mem_link`] builds the in-memory fake: a bounded SPSC-style frame
//!   queue with buffer recycling, so steady-state traffic through the
//!   fake performs zero allocations too (the daemon's `alloc-counter`
//!   gate runs over it).

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::sync::{Arc, Mutex};

#[allow(unsafe_code)]
pub mod mmsg;

/// Default size of one receive-frame slot: enough for any packet this
/// lab builds, far below a jumbo frame.
pub const DEFAULT_FRAME_CAP: usize = 2048;

/// A reusable burst of received frames: `capacity` slots of `frame_cap`
/// bytes each, allocated once at construction. Receivers fill slots in
/// place ([`FrameBatch::begin_frame`] / [`FrameBatch::commit_frame`] or
/// [`FrameBatch::push`]); consumers iterate [`FrameBatch::frames`] and
/// [`FrameBatch::clear`] for the next burst. No method allocates after
/// construction.
#[derive(Debug)]
pub struct FrameBatch {
    /// Slot storage, `capacity * frame_cap` bytes, slot `i` at
    /// `i * frame_cap`.
    storage: Vec<u8>,
    /// Filled length of each committed slot.
    lens: Vec<usize>,
    frame_cap: usize,
    capacity: usize,
}

impl FrameBatch {
    /// A batch of `capacity` slots, each holding up to `frame_cap` bytes.
    pub fn new(capacity: usize, frame_cap: usize) -> Self {
        let capacity = capacity.max(1);
        let frame_cap = frame_cap.max(1);
        FrameBatch {
            storage: vec![0; capacity * frame_cap],
            lens: Vec::with_capacity(capacity),
            frame_cap,
            capacity,
        }
    }

    /// A batch of `capacity` slots of [`DEFAULT_FRAME_CAP`] bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        FrameBatch::new(capacity, DEFAULT_FRAME_CAP)
    }

    /// Number of committed frames.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// Whether no frame has been committed.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Whether every slot is committed (the burst is complete).
    pub fn is_full(&self) -> bool {
        self.lens.len() == self.capacity
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Per-slot byte capacity.
    pub fn frame_cap(&self) -> usize {
        self.frame_cap
    }

    /// Forgets every committed frame (the storage is reused).
    pub fn clear(&mut self) {
        self.lens.clear();
    }

    /// The next free slot, for a receiver to fill in place. `None` when
    /// the burst is full. Follow with [`FrameBatch::commit_frame`] once
    /// the received length is known.
    pub fn begin_frame(&mut self) -> Option<&mut [u8]> {
        if self.is_full() {
            return None;
        }
        let start = self.lens.len() * self.frame_cap;
        Some(&mut self.storage[start..start + self.frame_cap])
    }

    /// Commits the slot handed out by the last [`FrameBatch::begin_frame`]
    /// with its received length (clamped to the slot capacity).
    pub fn commit_frame(&mut self, len: usize) {
        debug_assert!(!self.is_full(), "commit without a begin_frame slot");
        self.lens.push(len.min(self.frame_cap));
    }

    /// Copies one frame into the next slot (truncating at the slot
    /// capacity). Returns `false` when the burst is full.
    pub fn push(&mut self, frame: &[u8]) -> bool {
        match self.begin_frame() {
            Some(slot) => {
                let len = frame.len().min(slot.len());
                slot[..len].copy_from_slice(&frame[..len]);
                self.commit_frame(len);
                true
            }
            None => false,
        }
    }

    /// The committed frames, in arrival order.
    pub fn frames(&self) -> impl Iterator<Item = &[u8]> {
        self.lens
            .iter()
            .enumerate()
            .map(move |(i, len)| &self.storage[i * self.frame_cap..i * self.frame_cap + len])
    }

    /// One committed frame by index.
    pub fn frame(&self, index: usize) -> &[u8] {
        &self.storage[index * self.frame_cap..index * self.frame_cap + self.lens[index]]
    }
}

/// A batched, non-blocking frame receiver — one receive queue's intake.
///
/// Object-safe so daemons can hold one boxed receiver per queue and tests
/// can substitute [`mem_link`] fakes for UDP sockets.
pub trait PacketRx: Send {
    /// Appends available frames to `batch` until the batch is full or the
    /// source has nothing more, and returns how many frames were added.
    /// Never blocks: an idle source returns `Ok(0)`.
    fn fill(&mut self, batch: &mut FrameBatch) -> io::Result<usize>;

    /// Receive syscalls issued so far (0 for syscall-free transports).
    /// Lets benches compare per-burst syscall cost across backends.
    fn syscalls(&self) -> u64 {
        0
    }
}

/// A batched frame transmitter — one egress destination.
///
/// [`PacketTx::send_frame`] hands over one frame; callers emit a whole
/// flush window per TX stage and call [`PacketTx::flush_tx`] once at the
/// end of the burst. This is the seam where a gathering `sendmmsg`
/// implementation would buffer in `send_frame` and submit in `flush_tx`.
pub trait PacketTx: Send {
    /// Sends one frame. `Ok(false)` means the frame was dropped —
    /// backpressure (a full link) or a transient transport condition (see
    /// [`transient_send_error`]); errors are persistent transport failures.
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<bool>;

    /// Sends a whole burst and returns how many frames the transport
    /// accepted; frames it did not accept were dropped. The default loops
    /// [`PacketTx::send_frame`]; gathering transports override this with
    /// one `sendmmsg` per call.
    fn send_frames(&mut self, frames: &[&[u8]]) -> io::Result<usize> {
        let mut sent = 0;
        for frame in frames {
            if self.send_frame(frame)? {
                sent += 1;
            }
        }
        Ok(sent)
    }

    /// Completes the current burst (no-op for eager transports).
    fn flush_tx(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Send syscalls issued so far (0 for syscall-free transports).
    fn syscalls(&self) -> u64 {
        0
    }
}

/// Whether a send error is a transient per-datagram condition that a
/// datapath counts as a *drop* and keeps going, rather than a transport
/// failure that should abort the burst.
///
/// Connected UDP surfaces ICMP errors from an earlier datagram on the
/// *next* send: the peer being momentarily gone (`ECONNREFUSED`) or
/// unroutable (`EHOSTUNREACH`/`ENETUNREACH`) is exactly the packet loss a
/// NIC would eat silently, not a reason to stop transmitting. Both the
/// std and mmsg backends classify with this one predicate so their drop
/// accounting stays identical.
pub fn transient_send_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::HostUnreachable
            | io::ErrorKind::NetworkUnreachable
    )
}

/// Sends every frame of a burst through `tx`, flushing once at the end.
/// Returns how many frames the transport accepted.
pub fn send_batch<'a>(
    tx: &mut (impl PacketTx + ?Sized),
    frames: impl IntoIterator<Item = &'a [u8]>,
) -> io::Result<usize> {
    let mut sent = 0;
    for frame in frames {
        if tx.send_frame(frame)? {
            sent += 1;
        }
    }
    tx.flush_tx()?;
    Ok(sent)
}

/// Batched receive over a non-blocking UDP socket: one bound socket per
/// receive queue, drained a burst at a time.
#[derive(Debug)]
pub struct UdpRx {
    socket: UdpSocket,
    syscalls: u64,
}

impl UdpRx {
    /// Binds `addr` and puts the socket in non-blocking mode.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        Ok(UdpRx { socket, syscalls: 0 })
    }

    /// Wraps an already-bound socket (switched to non-blocking).
    pub fn from_socket(socket: UdpSocket) -> io::Result<Self> {
        socket.set_nonblocking(true)?;
        Ok(UdpRx { socket, syscalls: 0 })
    }

    /// The bound local address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl PacketRx for UdpRx {
    fn fill(&mut self, batch: &mut FrameBatch) -> io::Result<usize> {
        let mut got = 0;
        while let Some(slot) = batch.begin_frame() {
            self.syscalls += 1;
            match self.socket.recv_from(slot) {
                Ok((len, _from)) => {
                    batch.commit_frame(len);
                    got += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        Ok(got)
    }

    fn syscalls(&self) -> u64 {
        self.syscalls
    }
}

/// Batched transmit over a connected, non-blocking UDP socket — one
/// egress interface's emitter, pointed at a fixed peer.
#[derive(Debug)]
pub struct UdpTx {
    socket: UdpSocket,
    syscalls: u64,
}

impl UdpTx {
    /// Binds an ephemeral local socket and connects it to `peer`.
    pub fn connect(peer: impl ToSocketAddrs) -> io::Result<Self> {
        let mut last = None;
        for peer in peer.to_socket_addrs()? {
            let bind_addr: SocketAddr =
                if peer.is_ipv6() { "[::]:0".parse().unwrap() } else { "0.0.0.0:0".parse().unwrap() };
            match UdpSocket::bind(bind_addr).and_then(|s| {
                s.connect(peer)?;
                s.set_nonblocking(true)?;
                Ok(s)
            }) {
                Ok(socket) => return Ok(UdpTx { socket, syscalls: 0 }),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to")))
    }

    /// The connected local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl PacketTx for UdpTx {
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<bool> {
        self.syscalls += 1;
        match self.socket.send(frame) {
            Ok(_) => Ok(true),
            // A full socket buffer is backpressure, not an error — the
            // same drop-and-count a NIC TX ring performs.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(false),
            Err(e) if transient_send_error(&e) => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn syscalls(&self) -> u64 {
        self.syscalls
    }
}

/// Shared state of one in-memory link: a bounded queue of filled frames
/// plus a free list recycling their storage.
#[derive(Debug, Default)]
struct MemLinkState {
    filled: VecDeque<Vec<u8>>,
    free: Vec<Vec<u8>>,
}

/// One direction of an in-memory link (see [`mem_link`]).
#[derive(Debug)]
pub struct MemTx {
    state: Arc<Mutex<MemLinkState>>,
    capacity: usize,
}

/// The receive end of an in-memory link (see [`mem_link`]).
#[derive(Debug)]
pub struct MemRx {
    state: Arc<Mutex<MemLinkState>>,
}

/// Builds an in-memory frame link holding at most `capacity` undelivered
/// frames: the test/bench stand-in for a UDP socket pair. Delivery is
/// FIFO and lossless up to the bound; a send beyond it reports
/// backpressure (`Ok(false)`), like a full ring. Frame storage is
/// recycled through a free list, so steady-state traffic allocates
/// nothing once every buffer has been minted.
pub fn mem_link(capacity: usize) -> (MemTx, MemRx) {
    let state = Arc::new(Mutex::new(MemLinkState::default()));
    (MemTx { state: Arc::clone(&state), capacity: capacity.max(1) }, MemRx { state })
}

impl PacketTx for MemTx {
    fn send_frame(&mut self, frame: &[u8]) -> io::Result<bool> {
        let mut state = self.state.lock().expect("mem link lock");
        if state.filled.len() >= self.capacity {
            return Ok(false);
        }
        let mut buf = state.free.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(frame);
        state.filled.push_back(buf);
        Ok(true)
    }
}

impl PacketRx for MemRx {
    fn fill(&mut self, batch: &mut FrameBatch) -> io::Result<usize> {
        let mut state = self.state.lock().expect("mem link lock");
        let mut got = 0;
        while !batch.is_full() {
            match state.filled.pop_front() {
                Some(buf) => {
                    batch.push(&buf);
                    state.free.push(buf);
                    got += 1;
                }
                None => break,
            }
        }
        Ok(got)
    }
}

impl MemRx {
    /// Undelivered frames currently queued on the link.
    pub fn backlog(&self) -> usize {
        self.state.lock().expect("mem link lock").filled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_batch_fills_and_drains_in_place() {
        let mut batch = FrameBatch::new(3, 8);
        assert!(batch.push(&[1, 2, 3]));
        let slot = batch.begin_frame().unwrap();
        slot[..2].copy_from_slice(&[9, 9]);
        batch.commit_frame(2);
        assert!(batch.push(&[0xaa; 16]), "oversized frames truncate at the slot cap");
        assert!(batch.is_full());
        assert!(!batch.push(&[7]));
        let frames: Vec<&[u8]> = batch.frames().collect();
        assert_eq!(frames, vec![&[1u8, 2, 3][..], &[9, 9], &[0xaa; 8]]);
        assert_eq!(batch.frame(1), &[9, 9]);
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.frames().count(), 0);
    }

    #[test]
    fn udp_pair_moves_bursts_over_loopback() {
        let mut rx = UdpRx::bind("[::1]:0").expect("bind loopback");
        let addr = rx.local_addr().unwrap();
        let mut tx = UdpTx::connect(addr).expect("connect loopback");
        let frames: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 32]).collect();
        assert_eq!(send_batch(&mut tx, frames.iter().map(Vec::as_slice)).unwrap(), 16);

        let mut batch = FrameBatch::new(32, 64);
        let mut got = 0;
        for _ in 0..200 {
            got += rx.fill(&mut batch).expect("recv burst");
            if got == 16 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, 16, "all frames arrive on loopback");
        let received: Vec<&[u8]> = batch.frames().collect();
        for (i, frame) in received.iter().enumerate() {
            assert_eq!(*frame, &frames[i][..], "frame {i} intact and in order");
        }
        // An idle socket reports an empty burst, never a block.
        batch.clear();
        assert_eq!(rx.fill(&mut batch).unwrap(), 0);
    }

    #[test]
    fn mem_link_is_bounded_fifo_with_recycling() {
        let (mut tx, mut rx) = mem_link(4);
        for i in 0..4u8 {
            assert!(tx.send_frame(&[i; 10]).unwrap());
        }
        assert!(!tx.send_frame(&[9; 10]).unwrap(), "full link reports backpressure");
        assert_eq!(rx.backlog(), 4);

        let mut batch = FrameBatch::new(8, 16);
        assert_eq!(rx.fill(&mut batch).unwrap(), 4);
        let frames: Vec<&[u8]> = batch.frames().collect();
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(*frame, &[i as u8; 10][..]);
        }
        assert_eq!(rx.backlog(), 0);
        // Storage went to the free list: the next send reuses it.
        assert!(tx.send_frame(&[7; 10]).unwrap());
        assert_eq!(tx.state.lock().unwrap().free.len(), 3);
    }

    #[test]
    fn transient_send_errors_count_as_drops_not_aborts() {
        use io::ErrorKind as K;
        for kind in [K::ConnectionRefused, K::ConnectionReset, K::HostUnreachable, K::NetworkUnreachable] {
            assert!(transient_send_error(&io::Error::from(kind)), "{kind:?} is a drop");
        }
        for kind in [K::WouldBlock, K::PermissionDenied, K::InvalidInput, K::AddrNotAvailable] {
            assert!(!transient_send_error(&io::Error::from(kind)), "{kind:?} is not a drop");
        }

        // A vanished peer surfaces ICMP port-unreachable as
        // ConnectionRefused on a *later* send. The burst must keep going
        // with the refused frames counted as drops (`Ok(false)`), never
        // abort the flush mid-batch with an `Err`.
        let victim = UdpRx::bind("[::1]:0").unwrap();
        let addr = victim.local_addr().unwrap();
        drop(victim);
        let mut tx = UdpTx::connect(addr).unwrap();
        let frames: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 16]).collect();
        let mut saw_drop = false;
        for _ in 0..50 {
            let sent = send_batch(&mut tx, frames.iter().map(Vec::as_slice))
                .expect("refused sends are drops, not batch-aborting errors");
            if sent < frames.len() {
                saw_drop = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(saw_drop, "ICMP refusal on loopback reported as drops");
    }

    #[test]
    fn batch_respects_partial_room() {
        let (mut tx, mut rx) = mem_link(8);
        for i in 0..8u8 {
            tx.send_frame(&[i]).unwrap();
        }
        let mut batch = FrameBatch::new(3, 16);
        assert_eq!(rx.fill(&mut batch).unwrap(), 3, "burst stops at batch capacity");
        assert_eq!(rx.backlog(), 5);
    }
}
