//! Raw `recvmmsg(2)`/`sendmmsg(2)` socket backend: one syscall per burst.
//!
//! The std backend ([`UdpRx`](super::UdpRx)/[`UdpTx`](super::UdpTx)) pays
//! one syscall per datagram. This module implements the same
//! [`PacketRx`]/[`PacketTx`] seam with the kernel's multi-message calls:
//! a whole [`FrameBatch`] is filled by a single `recvmmsg`, and a whole
//! flush window leaves through a single `sendmmsg`. The `mmsghdr`/`iovec`
//! arrays are built once and reused; receive iovecs point directly into
//! the batch's slot storage and transmit iovecs borrow the caller's
//! frames in place, so batching adds zero copies and zero steady-state
//! allocations.
//!
//! The FFI is libc-free in the repository's sense — no `libc` crate, just
//! `extern "C"` declarations of the wrappers std already links, the same
//! pattern as srv6d's `signal(2)` handler and `ebpf-vm::codegen`'s
//! `mmap`/`mprotect`. Non-Linux hosts compile clean: the types exist
//! everywhere, constructors report [`io::ErrorKind::Unsupported`], and
//! [`supported`] lets callers fall back without any `cfg` of their own.

/// Whether this host has the mmsg backend (Linux only).
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(target_os = "linux")]
mod imp {
    use crate::sockio::{transient_send_error, FrameBatch, PacketRx, PacketTx};
    use std::io;
    use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
    use std::os::fd::{AsRawFd, RawFd};
    use std::ptr;

    const MSG_DONTWAIT: i32 = 0x40;
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;

    /// `struct iovec`.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    /// `struct msghdr` (x86-64 layout; `repr(C)` inserts the padding after
    /// `namelen` exactly like the C compiler does).
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    struct MsgHdr {
        name: *mut u8,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    /// `struct mmsghdr`.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    struct Mmsghdr {
        hdr: MsgHdr,
        len: u32,
    }

    extern "C" {
        fn recvmmsg(fd: RawFd, msgvec: *mut Mmsghdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
        fn sendmmsg(fd: RawFd, msgvec: *mut Mmsghdr, vlen: u32, flags: i32) -> i32;
        fn setsockopt(fd: RawFd, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
    }

    fn null_mmsghdr() -> Mmsghdr {
        Mmsghdr {
            hdr: MsgHdr {
                name: ptr::null_mut(),
                namelen: 0,
                iov: ptr::null_mut(),
                iovlen: 0,
                control: ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        }
    }

    /// Grows the reused header arrays to hold at least `want` messages.
    /// Only ever allocates on growth, so steady-state bursts of a stable
    /// size never touch the allocator.
    fn ensure_slots(iovs: &mut Vec<IoVec>, hdrs: &mut Vec<Mmsghdr>, want: usize) {
        if iovs.len() < want {
            iovs.resize(want, IoVec { base: ptr::null_mut(), len: 0 });
            hdrs.resize(want, null_mmsghdr());
        }
    }

    /// Points `iovs[..n]`/`hdrs[..n]` at `n` single-iovec messages whose
    /// bases are produced by `base(i)`.
    fn arm_headers(
        iovs: &mut [IoVec],
        hdrs: &mut [Mmsghdr],
        n: usize,
        mut slot: impl FnMut(usize) -> (*mut u8, usize),
    ) {
        let iov_base = iovs.as_mut_ptr();
        for i in 0..n {
            let (base, len) = slot(i);
            iovs[i] = IoVec { base, len };
            let mut hdr = null_mmsghdr();
            // SAFETY: `i < n <= iovs.len()`, so the pointer stays inside
            // the reused iovec array, which outlives the syscall it is
            // handed to (both live in the same Rx/Tx struct).
            hdr.hdr.iov = unsafe { iov_base.add(i) };
            hdr.hdr.iovlen = 1;
            hdrs[i] = hdr;
        }
    }

    /// Batched receive via `recvmmsg(2)`: one syscall fills a whole
    /// [`FrameBatch`], with the kernel scattering each datagram straight
    /// into its slot storage.
    #[derive(Debug)]
    pub struct MmsgRx {
        socket: UdpSocket,
        iovs: Vec<IoVec>,
        hdrs: Vec<Mmsghdr>,
        syscalls: u64,
    }

    // SAFETY: the raw pointers in `iovs`/`hdrs` are only ever written and
    // handed to the kernel inside one `fill` call, against a `FrameBatch`
    // borrowed for that call; between calls they are stale and never
    // dereferenced. The socket itself is `Send`.
    unsafe impl Send for MmsgRx {}

    impl MmsgRx {
        /// Binds `addr` and puts the socket in non-blocking mode.
        pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
            let socket = UdpSocket::bind(addr)?;
            Self::from_socket(socket)
        }

        /// Wraps an already-bound socket (switched to non-blocking).
        pub fn from_socket(socket: UdpSocket) -> io::Result<Self> {
            socket.set_nonblocking(true)?;
            Ok(MmsgRx { socket, iovs: Vec::new(), hdrs: Vec::new(), syscalls: 0 })
        }

        /// The bound local address (useful after binding port 0).
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.socket.local_addr()
        }
    }

    impl PacketRx for MmsgRx {
        fn fill(&mut self, batch: &mut FrameBatch) -> io::Result<usize> {
            let mut got = 0;
            loop {
                let free = batch.capacity() - batch.len();
                if free == 0 {
                    return Ok(got);
                }
                ensure_slots(&mut self.iovs, &mut self.hdrs, free);
                let frame_cap = batch.frame_cap();
                let first = batch.len();
                let storage = batch.storage.as_mut_ptr();
                arm_headers(&mut self.iovs, &mut self.hdrs, free, |i| {
                    // SAFETY: slot `first + i` lies inside the batch's
                    // `capacity * frame_cap` storage because
                    // `first + free == capacity`.
                    (unsafe { storage.add((first + i) * frame_cap) }, frame_cap)
                });
                self.syscalls += 1;
                // SAFETY: every header points at one in-bounds batch slot
                // armed above; the null timeout means "don't wait", and
                // MSG_DONTWAIT keeps even the first message non-blocking.
                let n = unsafe {
                    recvmmsg(
                        self.socket.as_raw_fd(),
                        self.hdrs.as_mut_ptr(),
                        free as u32,
                        MSG_DONTWAIT,
                        ptr::null_mut(),
                    )
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    match e.kind() {
                        io::ErrorKind::WouldBlock => return Ok(got),
                        io::ErrorKind::Interrupted => continue,
                        _ => return Err(e),
                    }
                }
                let n = n as usize;
                for hdr in &self.hdrs[..n] {
                    batch.commit_frame(hdr.len as usize);
                }
                got += n;
                if n < free {
                    // The kernel returned fewer than it had room for: the
                    // queue is drained, no second syscall needed.
                    return Ok(got);
                }
            }
        }

        fn syscalls(&self) -> u64 {
            self.syscalls
        }
    }

    /// Batched transmit via `sendmmsg(2)` over a connected, non-blocking
    /// UDP socket: one syscall drains a whole flush window, with partial
    /// sends resumed where the kernel stopped.
    #[derive(Debug)]
    pub struct MmsgTx {
        socket: UdpSocket,
        iovs: Vec<IoVec>,
        hdrs: Vec<Mmsghdr>,
        syscalls: u64,
    }

    // SAFETY: as for `MmsgRx` — the header pointers borrow the frames
    // passed to one `send_frames` call and are stale between calls.
    unsafe impl Send for MmsgTx {}

    impl MmsgTx {
        /// Binds an ephemeral local socket and connects it to `peer`.
        pub fn connect(peer: impl ToSocketAddrs) -> io::Result<Self> {
            let mut last = None;
            for peer in peer.to_socket_addrs()? {
                let bind_addr: SocketAddr =
                    if peer.is_ipv6() { "[::]:0".parse().unwrap() } else { "0.0.0.0:0".parse().unwrap() };
                match UdpSocket::bind(bind_addr).and_then(|s| {
                    s.connect(peer)?;
                    s.set_nonblocking(true)?;
                    Ok(s)
                }) {
                    Ok(socket) => {
                        return Ok(MmsgTx { socket, iovs: Vec::new(), hdrs: Vec::new(), syscalls: 0 })
                    }
                    Err(e) => last = Some(e),
                }
            }
            Err(last
                .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to")))
        }

        /// Wraps an already-connected datagram socket (switched to
        /// non-blocking). `sendmmsg` is family-agnostic, so this also
        /// accepts a Unix datagram socket smuggled in as a `UdpSocket` —
        /// the fault-injection tests use that for real backpressure.
        pub fn from_socket(socket: UdpSocket) -> io::Result<Self> {
            socket.set_nonblocking(true)?;
            Ok(MmsgTx { socket, iovs: Vec::new(), hdrs: Vec::new(), syscalls: 0 })
        }

        /// The connected local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.socket.local_addr()
        }

        /// Shrinks the kernel send buffer to roughly `bytes` — a fault
        /// injector for tests: a tiny `SO_SNDBUF` makes `sendmmsg` stop
        /// mid-burst with a partial send or `EAGAIN` on loopback.
        pub fn set_send_buffer(&self, bytes: usize) -> io::Result<()> {
            let val = bytes as i32;
            // SAFETY: optval points at 4 valid bytes and optlen says so.
            let rc = unsafe {
                setsockopt(self.socket.as_raw_fd(), SOL_SOCKET, SO_SNDBUF, &val as *const i32 as *const u8, 4)
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl PacketTx for MmsgTx {
        fn send_frame(&mut self, frame: &[u8]) -> io::Result<bool> {
            // Single frames go through the plain send path — identical
            // drop semantics to the std backend, still one syscall.
            self.syscalls += 1;
            match self.socket.send(frame) {
                Ok(_) => Ok(true),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(false),
                Err(e) if transient_send_error(&e) => Ok(false),
                Err(e) => Err(e),
            }
        }

        fn send_frames(&mut self, frames: &[&[u8]]) -> io::Result<usize> {
            if frames.is_empty() {
                return Ok(0);
            }
            ensure_slots(&mut self.iovs, &mut self.hdrs, frames.len());
            arm_headers(&mut self.iovs, &mut self.hdrs, frames.len(), |i| {
                // The kernel never writes through a send iovec; the cast
                // to *mut is the C API's, not a mutation.
                (frames[i].as_ptr() as *mut u8, frames[i].len())
            });
            let mut sent = 0;
            let mut off = 0;
            while off < frames.len() {
                self.syscalls += 1;
                // SAFETY: headers `off..frames.len()` were armed above and
                // their iovecs borrow `frames`, alive for this whole call.
                let n = unsafe {
                    sendmmsg(
                        self.socket.as_raw_fd(),
                        self.hdrs.as_mut_ptr().add(off),
                        (frames.len() - off) as u32,
                        MSG_DONTWAIT,
                    )
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    if e.kind() == io::ErrorKind::WouldBlock {
                        // Backpressure: the rest of the burst is dropped,
                        // exactly what the std backend's per-frame
                        // `Ok(false)` loop would report.
                        break;
                    }
                    if transient_send_error(&e) {
                        // sendmmsg only errors when the *first* datagram
                        // fails: drop that one and resume with the rest.
                        off += 1;
                        continue;
                    }
                    return Err(e);
                }
                // Partial send: the kernel took the first `n`, resume at
                // the first unsent frame.
                sent += n as usize;
                off += n as usize;
            }
            Ok(sent)
        }

        fn syscalls(&self) -> u64 {
            self.syscalls
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use crate::sockio::{FrameBatch, PacketRx, PacketTx};
    use std::io;
    use std::net::{SocketAddr, ToSocketAddrs};

    fn unsupported() -> io::Error {
        io::Error::new(io::ErrorKind::Unsupported, "mmsg backend requires Linux")
    }

    /// Stub on non-Linux hosts: constructors report `Unsupported`.
    #[derive(Debug)]
    pub struct MmsgRx {}

    impl MmsgRx {
        /// Always fails off Linux.
        pub fn bind(_addr: impl ToSocketAddrs) -> io::Result<Self> {
            Err(unsupported())
        }

        /// Always fails off Linux.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            Err(unsupported())
        }
    }

    impl PacketRx for MmsgRx {
        fn fill(&mut self, _batch: &mut FrameBatch) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Stub on non-Linux hosts: constructors report `Unsupported`.
    #[derive(Debug)]
    pub struct MmsgTx {}

    impl MmsgTx {
        /// Always fails off Linux.
        pub fn connect(_peer: impl ToSocketAddrs) -> io::Result<Self> {
            Err(unsupported())
        }

        /// Always fails off Linux.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            Err(unsupported())
        }

        /// Always fails off Linux.
        pub fn set_send_buffer(&self, _bytes: usize) -> io::Result<()> {
            Err(unsupported())
        }
    }

    impl PacketTx for MmsgTx {
        fn send_frame(&mut self, _frame: &[u8]) -> io::Result<bool> {
            Err(unsupported())
        }
    }
}

pub use imp::{MmsgRx, MmsgTx};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::sockio::{send_batch, FrameBatch, PacketRx, PacketTx};

    fn wait_fill(rx: &mut MmsgRx, batch: &mut FrameBatch, want: usize) -> usize {
        let mut got = 0;
        for _ in 0..500 {
            got += rx.fill(batch).expect("recvmmsg burst");
            if got >= want {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        got
    }

    #[test]
    fn mmsg_pair_moves_bursts_over_loopback() {
        assert!(supported());
        let mut rx = MmsgRx::bind("[::1]:0").expect("bind loopback");
        let addr = rx.local_addr().unwrap();
        let mut tx = MmsgTx::connect(addr).expect("connect loopback");

        let frames: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 32]).collect();
        let refs: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        assert_eq!(tx.send_frames(&refs).unwrap(), 16, "one burst accepted whole");
        let tx_syscalls = tx.syscalls();
        assert!(tx_syscalls <= 2, "a burst is 1 sendmmsg (saw {tx_syscalls})");

        let mut batch = FrameBatch::new(32, 64);
        assert_eq!(wait_fill(&mut rx, &mut batch, 16), 16, "all frames arrive");
        let received: Vec<&[u8]> = batch.frames().collect();
        for (i, frame) in received.iter().enumerate() {
            assert_eq!(*frame, &frames[i][..], "frame {i} intact and in order");
        }
        // A drained socket reports an empty burst, never a block, and the
        // whole 16-frame burst cost far fewer syscalls than 16.
        batch.clear();
        assert_eq!(rx.fill(&mut batch).unwrap(), 0);
        assert!(rx.syscalls() < 16, "recvmmsg batches ({} syscalls)", rx.syscalls());
    }

    #[test]
    fn mmsg_interops_with_std_backend() {
        // mmsg TX → std RX and std TX → mmsg RX: it is the same wire
        // format, only the syscall shape differs.
        let mut std_rx = crate::sockio::UdpRx::bind("[::1]:0").unwrap();
        let mut tx = MmsgTx::connect(std_rx.local_addr().unwrap()).unwrap();
        let frames: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i ^ 0x5a; 24]).collect();
        let refs: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        assert_eq!(tx.send_frames(&refs).unwrap(), 8);
        let mut batch = FrameBatch::new(16, 64);
        let mut got = 0;
        for _ in 0..500 {
            got += std_rx.fill(&mut batch).unwrap();
            if got >= 8 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, 8);

        let mut mmsg_rx = MmsgRx::bind("[::1]:0").unwrap();
        let mut std_tx = crate::sockio::UdpTx::connect(mmsg_rx.local_addr().unwrap()).unwrap();
        assert_eq!(send_batch(&mut std_tx, refs.iter().copied()).unwrap(), 8);
        let mut batch = FrameBatch::new(16, 64);
        assert_eq!(wait_fill(&mut mmsg_rx, &mut batch, 8), 8);
        let received: Vec<&[u8]> = batch.frames().collect();
        for (i, frame) in received.iter().enumerate() {
            assert_eq!(*frame, &frames[i][..]);
        }
    }

    #[test]
    fn tiny_sndbuf_forces_partial_send_reported_as_drops() {
        // UDP loopback orphans skbs at xmit, so SO_SNDBUF never back-
        // pressures there. A Unix datagram socketpair charges in-flight
        // skbs to the *sender's* send buffer until the peer reads them —
        // real EAGAIN, deterministic, and lossless for everything the
        // kernel did accept. `sendmmsg`/`recvmmsg` are family-agnostic.
        use std::os::fd::{FromRawFd, IntoRawFd};
        use std::os::unix::net::UnixDatagram;

        let (a, b) = UnixDatagram::pair().expect("socketpair");
        // SAFETY: each raw fd is a valid, owned datagram socket whose
        // ownership moves into exactly one UdpSocket.
        let tx_sock = unsafe { std::net::UdpSocket::from_raw_fd(a.into_raw_fd()) };
        let rx_sock = unsafe { std::net::UdpSocket::from_raw_fd(b.into_raw_fd()) };
        let mut tx = MmsgTx::from_socket(tx_sock).unwrap();
        let mut rx = MmsgRx::from_socket(rx_sock).unwrap();

        // SO_SNDBUF floors at SOCK_MIN_SNDBUF (~4.5 KiB), so a burst of
        // 256 × 1500 B cannot possibly be in flight at once: the kernel
        // must stop mid-burst with a partial send or EAGAIN.
        tx.set_send_buffer(1).expect("shrink send buffer");
        let frames: Vec<Vec<u8>> = (0..=255u8).map(|i| vec![i; 1500]).collect();
        let refs: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        let sent = tx.send_frames(&refs).expect("partial send is not an error");
        assert!(sent >= 1, "at least the first frame fits the send buffer");
        assert!(sent < 256, "tiny SO_SNDBUF must truncate the burst (sent {sent})");

        // The accepted prefix is exactly frames[..sent], in order.
        let mut batch = FrameBatch::new(256, 2048);
        assert_eq!(rx.fill(&mut batch).unwrap(), sent, "unix dgram is lossless");
        for (i, frame) in batch.frames().enumerate() {
            assert_eq!(frame, &frames[i][..], "partial send resumed in order");
        }

        // Once the peer drained the queue, the suffix goes through: the
        // transport recovered, nothing was poisoned by the EAGAIN.
        let resent = tx.send_frames(&refs[sent..sent + 1]).unwrap();
        assert_eq!(resent, 1);
    }
}
