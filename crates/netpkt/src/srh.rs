//! The IPv6 Segment Routing Header (SRH, RFC 8754 / draft-ietf-6man-segment-routing-header).
//!
//! The SRH is an IPv6 routing extension header (routing type 4). It carries
//! the ordered list of segments — 128-bit IPv6 addresses — that the packet
//! must visit, stored in *reverse* order on the wire (`Segment List[0]` is
//! the final segment), plus optional TLVs. `Segments Left` indexes the
//! current segment.
//!
//! The fields an `End.BPF` program may edit through
//! `bpf_lwt_seg6_store_bytes` are the flags, the tag and the TLV area; the
//! offsets of those fields are exported as constants so the `seg6-core`
//! helpers and the verifier-side checks agree on them.

use crate::error::{ensure_len, Error, Result};
use std::net::Ipv6Addr;

/// Length of the fixed part of the SRH (before the segment list), in bytes.
pub const SRH_FIXED_LEN: usize = 8;
/// Routing type value assigned to Segment Routing (RFC 8754).
pub const SRH_ROUTING_TYPE: u8 = 4;
/// Byte offset of the flags field inside the SRH.
pub const SRH_FLAGS_OFFSET: usize = 5;
/// Byte offset of the 16-bit tag field inside the SRH.
pub const SRH_TAG_OFFSET: usize = 6;

/// TLV type for Pad1 (a single padding byte, no length field).
pub const TLV_TYPE_PAD1: u8 = 0;
/// TLV type for PadN.
pub const TLV_TYPE_PADN: u8 = 4;
/// TLV type used by the delay-measurement use case to carry a TX timestamp.
///
/// draft-ali-spring-srv6-pm does not have an IANA allocation; the paper's
/// artefact used an experimental value and so do we.
pub const TLV_TYPE_DM: u8 = 124;
/// TLV type carrying the IPv6 address and UDP port of the delay controller.
pub const TLV_TYPE_CONTROLLER: u8 = 125;
/// TLV type used by the End.OAMP use case to carry the prober's address.
pub const TLV_TYPE_OAM_REPLY_TO: u8 = 126;

/// A single SRH TLV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SrhTlv {
    /// One byte of padding.
    Pad1,
    /// `n` bytes of padding (including the type and length octets).
    PadN {
        /// Number of zero bytes in the value (total TLV size is `len + 2`).
        len: u8,
    },
    /// Delay-Measurement TLV: a 64-bit transmission timestamp in nanoseconds.
    DelayMeasurement {
        /// TX timestamp, nanoseconds since the simulation epoch.
        tx_timestamp_ns: u64,
    },
    /// Address and UDP port of the controller collecting delay reports.
    Controller {
        /// Controller IPv6 address.
        addr: Ipv6Addr,
        /// Controller UDP port.
        port: u16,
    },
    /// Address the End.OAMP function must send its ECMP report to.
    OamReplyTo {
        /// Prober IPv6 address.
        addr: Ipv6Addr,
        /// Prober UDP port.
        port: u16,
    },
    /// Any other TLV, kept as raw type + value bytes.
    Opaque {
        /// TLV type octet.
        kind: u8,
        /// Raw value bytes.
        value: Vec<u8>,
    },
}

/// Discriminant-only view of a TLV, useful for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlvKind {
    /// Pad1 padding.
    Pad1,
    /// PadN padding.
    PadN,
    /// Delay-Measurement TLV.
    DelayMeasurement,
    /// Controller address TLV.
    Controller,
    /// OAM reply-to TLV.
    OamReplyTo,
    /// Unrecognised TLV.
    Opaque(u8),
}

impl SrhTlv {
    /// The TLV's kind.
    pub fn kind(&self) -> TlvKind {
        match self {
            SrhTlv::Pad1 => TlvKind::Pad1,
            SrhTlv::PadN { .. } => TlvKind::PadN,
            SrhTlv::DelayMeasurement { .. } => TlvKind::DelayMeasurement,
            SrhTlv::Controller { .. } => TlvKind::Controller,
            SrhTlv::OamReplyTo { .. } => TlvKind::OamReplyTo,
            SrhTlv::Opaque { kind, .. } => TlvKind::Opaque(*kind),
        }
    }

    /// Size of the TLV on the wire, in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            SrhTlv::Pad1 => 1,
            SrhTlv::PadN { len } => 2 + usize::from(*len),
            SrhTlv::DelayMeasurement { .. } => 2 + 8,
            SrhTlv::Controller { .. } | SrhTlv::OamReplyTo { .. } => 2 + 18,
            SrhTlv::Opaque { value, .. } => 2 + value.len(),
        }
    }

    /// Serialises the TLV, appending to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        match self {
            SrhTlv::Pad1 => out.push(TLV_TYPE_PAD1),
            SrhTlv::PadN { len } => {
                out.push(TLV_TYPE_PADN);
                out.push(*len);
                out.extend(std::iter::repeat_n(0u8, usize::from(*len)));
            }
            SrhTlv::DelayMeasurement { tx_timestamp_ns } => {
                out.push(TLV_TYPE_DM);
                out.push(8);
                out.extend_from_slice(&tx_timestamp_ns.to_be_bytes());
            }
            SrhTlv::Controller { addr, port } => {
                out.push(TLV_TYPE_CONTROLLER);
                out.push(18);
                out.extend_from_slice(&addr.octets());
                out.extend_from_slice(&port.to_be_bytes());
            }
            SrhTlv::OamReplyTo { addr, port } => {
                out.push(TLV_TYPE_OAM_REPLY_TO);
                out.push(18);
                out.extend_from_slice(&addr.octets());
                out.extend_from_slice(&port.to_be_bytes());
            }
            SrhTlv::Opaque { kind, value } => {
                out.push(*kind);
                out.push(value.len() as u8);
                out.extend_from_slice(value);
            }
        }
    }

    fn parse_one(buf: &[u8]) -> Result<(SrhTlv, usize)> {
        ensure_len(buf, 1)?;
        let kind = buf[0];
        if kind == TLV_TYPE_PAD1 {
            return Ok((SrhTlv::Pad1, 1));
        }
        ensure_len(buf, 2)?;
        let len = usize::from(buf[1]);
        ensure_len(buf, 2 + len)?;
        let value = &buf[2..2 + len];
        let tlv = match kind {
            TLV_TYPE_PADN => SrhTlv::PadN { len: len as u8 },
            TLV_TYPE_DM => {
                if len != 8 {
                    return Err(Error::BadTlv("DM TLV value must be 8 bytes"));
                }
                let mut ts = [0u8; 8];
                ts.copy_from_slice(value);
                SrhTlv::DelayMeasurement { tx_timestamp_ns: u64::from_be_bytes(ts) }
            }
            TLV_TYPE_CONTROLLER | TLV_TYPE_OAM_REPLY_TO => {
                if len != 18 {
                    return Err(Error::BadTlv("address TLV value must be 18 bytes"));
                }
                let mut addr = [0u8; 16];
                addr.copy_from_slice(&value[..16]);
                let port = u16::from_be_bytes([value[16], value[17]]);
                if kind == TLV_TYPE_CONTROLLER {
                    SrhTlv::Controller { addr: Ipv6Addr::from(addr), port }
                } else {
                    SrhTlv::OamReplyTo { addr: Ipv6Addr::from(addr), port }
                }
            }
            other => SrhTlv::Opaque { kind: other, value: value.to_vec() },
        };
        Ok((tlv, 2 + len))
    }
}

/// A parsed or to-be-serialised Segment Routing Header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRoutingHeader {
    /// Protocol of the header following the SRH.
    pub next_header: u8,
    /// Index of the currently active segment (counts down to zero).
    pub segments_left: u8,
    /// Index of the last element of the segment list (`segments.len() - 1`).
    pub last_entry: u8,
    /// Flags octet. No flag bits are defined by RFC 8754; End.BPF programs
    /// may nevertheless write it through `bpf_lwt_seg6_store_bytes`.
    pub flags: u8,
    /// Operator-defined tag grouping packets (the paper's `Tag++` program
    /// increments it from eBPF).
    pub tag: u16,
    /// The segment list in wire order (`segments[0]` is the *final* segment).
    pub segments: Vec<Ipv6Addr>,
    /// Optional TLVs following the segment list.
    pub tlvs: Vec<SrhTlv>,
}

impl SegmentRoutingHeader {
    /// Creates an SRH from a segment list already in wire order.
    ///
    /// `segments_left` selects the active segment; `last_entry` is derived
    /// from the list length.
    pub fn new(next_header: u8, segments: Vec<Ipv6Addr>, segments_left: u8) -> Self {
        let last = segments.len().saturating_sub(1) as u8;
        SegmentRoutingHeader {
            next_header,
            segments_left,
            last_entry: last,
            flags: 0,
            tag: 0,
            segments,
            tlvs: Vec::new(),
        }
    }

    /// Creates an SRH from segments given in *path order* (first segment to
    /// visit first). The list is reversed into wire order and
    /// `segments_left` is initialised to point at the first segment of the
    /// path, which matches what an SRv6 source node emits.
    pub fn from_path(next_header: u8, path: &[Ipv6Addr]) -> Self {
        let mut segments: Vec<Ipv6Addr> = path.to_vec();
        segments.reverse();
        let left = segments.len().saturating_sub(1) as u8;
        Self::new(next_header, segments, left)
    }

    /// The currently active segment, i.e. `segments[segments_left]`.
    pub fn current_segment(&self) -> Option<Ipv6Addr> {
        self.segments.get(usize::from(self.segments_left)).copied()
    }

    /// The full path in visiting order (reverse of wire order).
    pub fn path(&self) -> Vec<Ipv6Addr> {
        let mut p = self.segments.clone();
        p.reverse();
        p
    }

    /// Decrements `segments_left` and returns the new active segment, as the
    /// `End` behaviour does. Returns an error if `segments_left` is already
    /// zero (the packet reached its last segment).
    pub fn advance(&mut self) -> Result<Ipv6Addr> {
        if self.segments_left == 0 {
            return Err(Error::Malformed("cannot advance SRH: segments_left is zero"));
        }
        self.segments_left -= 1;
        self.current_segment().ok_or(Error::Malformed("segments_left out of range"))
    }

    /// Total size of the serialised header in bytes, including TLV padding.
    pub fn wire_len(&self) -> usize {
        let tlv_len: usize = self.tlvs.iter().map(SrhTlv::wire_len).sum();
        let unpadded = SRH_FIXED_LEN + 16 * self.segments.len() + tlv_len;
        // The whole extension header must be a multiple of 8 bytes; the
        // serialiser pads the TLV area accordingly.
        unpadded.div_ceil(8) * 8
    }

    /// Byte offset (from the start of the SRH) where the TLV area begins.
    pub fn tlv_offset(&self) -> usize {
        SRH_FIXED_LEN + 16 * self.segments.len()
    }

    /// The value the Hdr Ext Len field will carry: SRH length in 8-octet
    /// units, not counting the first 8 octets.
    pub fn hdr_ext_len(&self) -> u8 {
        ((self.wire_len() - 8) / 8) as u8
    }

    /// Serialises the SRH, padding the TLV area to an 8-byte multiple with
    /// Pad1/PadN TLVs as required by RFC 8754.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.push(self.next_header);
        out.push(self.hdr_ext_len());
        out.push(SRH_ROUTING_TYPE);
        out.push(self.segments_left);
        out.push(self.last_entry);
        out.push(self.flags);
        out.extend_from_slice(&self.tag.to_be_bytes());
        for seg in &self.segments {
            out.extend_from_slice(&seg.octets());
        }
        for tlv in &self.tlvs {
            tlv.write_to(&mut out);
        }
        let target = self.wire_len();
        let missing = target - out.len();
        match missing {
            0 => {}
            1 => out.push(TLV_TYPE_PAD1),
            n => {
                out.push(TLV_TYPE_PADN);
                out.push((n - 2) as u8);
                out.extend(std::iter::repeat_n(0u8, n - 2));
            }
        }
        debug_assert_eq!(out.len(), target);
        out
    }

    /// Parses an SRH from the start of `buf`. Trailing bytes beyond the
    /// header's declared length are ignored.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, SRH_FIXED_LEN)?;
        let next_header = buf[0];
        let hdr_ext_len = usize::from(buf[1]);
        let total_len = 8 + hdr_ext_len * 8;
        ensure_len(buf, total_len)?;
        if buf[2] != SRH_ROUTING_TYPE {
            return Err(Error::Malformed("routing type is not 4 (Segment Routing)"));
        }
        let segments_left = buf[3];
        let last_entry = buf[4];
        let flags = buf[5];
        let tag = u16::from_be_bytes([buf[6], buf[7]]);
        let n_segments = usize::from(last_entry) + 1;
        let seg_end = SRH_FIXED_LEN + 16 * n_segments;
        if seg_end > total_len {
            return Err(Error::BadLength("segment list exceeds SRH length"));
        }
        if usize::from(segments_left) >= n_segments {
            return Err(Error::Malformed("segments_left exceeds last_entry"));
        }
        let mut segments = Vec::with_capacity(n_segments);
        for i in 0..n_segments {
            let start = SRH_FIXED_LEN + 16 * i;
            let mut octets = [0u8; 16];
            octets.copy_from_slice(&buf[start..start + 16]);
            segments.push(Ipv6Addr::from(octets));
        }
        let mut tlvs = Vec::new();
        let mut off = seg_end;
        while off < total_len {
            let (tlv, consumed) = SrhTlv::parse_one(&buf[off..total_len])?;
            off += consumed;
            tlvs.push(tlv);
        }
        if off != total_len {
            return Err(Error::BadTlv("TLV walk overran the SRH"));
        }
        Ok(SegmentRoutingHeader { next_header, segments_left, last_entry, flags, tag, segments, tlvs })
    }

    /// Validates a raw SRH in place, as the kernel does after an `End.BPF`
    /// program has edited it: the declared length must cover the segment
    /// list, `segments_left` must stay within bounds and the TLV area must
    /// parse end-to-end. Returns the total SRH length on success.
    pub fn validate_raw(buf: &[u8]) -> Result<usize> {
        let parsed = Self::parse(buf)?;
        Ok(8 + usize::from(parsed.hdr_ext_len()) * 8)
    }

    /// Finds the first TLV of the given kind.
    pub fn find_tlv(&self, kind: TlvKind) -> Option<&SrhTlv> {
        self.tlvs.iter().find(|t| t.kind() == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn sample() -> SegmentRoutingHeader {
        SegmentRoutingHeader::from_path(17, &[addr("fc00::1"), addr("fc00::2"), addr("fc00::3")])
    }

    #[test]
    fn from_path_reverses_and_sets_segments_left() {
        let srh = sample();
        assert_eq!(srh.segments_left, 2);
        assert_eq!(srh.last_entry, 2);
        assert_eq!(srh.current_segment(), Some(addr("fc00::1")));
        assert_eq!(srh.segments[0], addr("fc00::3"));
        assert_eq!(srh.path(), vec![addr("fc00::1"), addr("fc00::2"), addr("fc00::3")]);
    }

    #[test]
    fn advance_walks_the_path() {
        let mut srh = sample();
        assert_eq!(srh.advance().unwrap(), addr("fc00::2"));
        assert_eq!(srh.advance().unwrap(), addr("fc00::3"));
        assert!(srh.advance().is_err());
    }

    #[test]
    fn roundtrip_without_tlvs() {
        let srh = sample();
        let bytes = srh.to_bytes();
        assert_eq!(bytes.len() % 8, 0);
        let parsed = SegmentRoutingHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, srh);
    }

    #[test]
    fn roundtrip_with_dm_and_controller_tlvs() {
        let mut srh = sample();
        srh.tag = 0xbeef;
        srh.tlvs.push(SrhTlv::DelayMeasurement { tx_timestamp_ns: 123_456_789 });
        srh.tlvs.push(SrhTlv::Controller { addr: addr("2001:db8::99"), port: 9999 });
        let bytes = srh.to_bytes();
        assert_eq!(bytes.len() % 8, 0);
        let parsed = SegmentRoutingHeader::parse(&bytes).unwrap();
        assert_eq!(parsed.tag, 0xbeef);
        assert_eq!(
            parsed.find_tlv(TlvKind::DelayMeasurement),
            Some(&SrhTlv::DelayMeasurement { tx_timestamp_ns: 123_456_789 })
        );
        assert_eq!(
            parsed.find_tlv(TlvKind::Controller),
            Some(&SrhTlv::Controller { addr: addr("2001:db8::99"), port: 9999 })
        );
    }

    #[test]
    fn serialiser_pads_odd_tlv_area() {
        let mut srh = sample();
        // A 3-byte opaque TLV leaves the TLV area misaligned; the serialiser
        // must pad to an 8-byte boundary and the result must still parse.
        srh.tlvs.push(SrhTlv::Opaque { kind: 200, value: vec![1, 2, 3] });
        let bytes = srh.to_bytes();
        assert_eq!(bytes.len() % 8, 0);
        let parsed = SegmentRoutingHeader::parse(&bytes).unwrap();
        assert_eq!(
            parsed.find_tlv(TlvKind::Opaque(200)),
            Some(&SrhTlv::Opaque { kind: 200, value: vec![1, 2, 3] })
        );
    }

    #[test]
    fn parse_rejects_wrong_routing_type() {
        let mut bytes = sample().to_bytes();
        bytes[2] = 3;
        assert!(SegmentRoutingHeader::parse(&bytes).is_err());
    }

    #[test]
    fn parse_rejects_segments_left_out_of_range() {
        let mut bytes = sample().to_bytes();
        bytes[3] = 7;
        assert!(SegmentRoutingHeader::parse(&bytes).is_err());
    }

    #[test]
    fn parse_rejects_truncated_segment_list() {
        let bytes = sample().to_bytes();
        assert!(SegmentRoutingHeader::parse(&bytes[..16]).is_err());
    }

    #[test]
    fn validate_raw_catches_corrupted_tlv_area() {
        let mut srh = sample();
        srh.tlvs.push(SrhTlv::DelayMeasurement { tx_timestamp_ns: 1 });
        let mut bytes = srh.to_bytes();
        assert!(SegmentRoutingHeader::validate_raw(&bytes).is_ok());
        // Corrupt the DM TLV length so the walk overruns.
        let tlv_off = srh.tlv_offset();
        bytes[tlv_off + 1] = 200;
        assert!(SegmentRoutingHeader::validate_raw(&bytes).is_err());
    }

    #[test]
    fn wire_len_matches_serialised_length() {
        let mut srh = sample();
        srh.tlvs.push(SrhTlv::OamReplyTo { addr: addr("fc00::aa"), port: 4242 });
        assert_eq!(srh.wire_len(), srh.to_bytes().len());
    }

    #[test]
    fn field_offsets_match_wire_layout() {
        let mut srh = sample();
        srh.flags = 0xa5;
        srh.tag = 0x1234;
        let bytes = srh.to_bytes();
        assert_eq!(bytes[SRH_FLAGS_OFFSET], 0xa5);
        assert_eq!(&bytes[SRH_TAG_OFFSET..SRH_TAG_OFFSET + 2], &[0x12, 0x34]);
    }

    #[test]
    fn single_segment_srh() {
        let srh = SegmentRoutingHeader::from_path(41, &[addr("fc00::9")]);
        assert_eq!(srh.segments_left, 0);
        assert_eq!(srh.last_entry, 0);
        assert_eq!(srh.current_segment(), Some(addr("fc00::9")));
        let parsed = SegmentRoutingHeader::parse(&srh.to_bytes()).unwrap();
        assert_eq!(parsed, srh);
    }
}
