//! A TCP header (RFC 793), without options.
//!
//! The hybrid-access experiment of the paper (§4.2) measures TCP goodput
//! over two aggregated links. The Reno-style model in `trafficgen` only
//! needs the base header: sequence/acknowledgement numbers, flags and the
//! receive window.

use crate::error::{ensure_len, Error, Result};

/// Length of the option-less TCP header in bytes.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN: sender has finished sending.
    pub fin: bool,
    /// SYN: synchronise sequence numbers.
    pub syn: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push buffered data to the application.
    pub psh: bool,
    /// ACK: the acknowledgement number is valid.
    pub ack: bool,
}

impl TcpFlags {
    /// A segment carrying only an acknowledgement.
    pub const ACK: TcpFlags = TcpFlags { fin: false, syn: false, rst: false, psh: false, ack: true };
    /// A SYN segment.
    pub const SYN: TcpFlags = TcpFlags { fin: false, syn: true, rst: false, psh: false, ack: false };

    fn to_byte(self) -> u8 {
        u8::from(self.fin)
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP header without options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Next sequence number the sender expects to receive.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub window: u16,
    /// Transport checksum (0 when not yet computed).
    pub checksum: u16,
}

impl TcpHeader {
    /// Creates a header with the given endpoints and numbers.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags, window: u16) -> Self {
        TcpHeader { src_port, dst_port, seq, ack, flags, window, checksum: 0 }
    }

    /// Parses a TCP header from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, TCP_HEADER_LEN)?;
        let data_offset = usize::from(buf[12] >> 4) * 4;
        if data_offset < TCP_HEADER_LEN {
            return Err(Error::Malformed("TCP data offset below 5 words"));
        }
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags::from_byte(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            checksum: u16::from_be_bytes([buf[16], buf[17]]),
        })
    }

    /// Serialises the header (data offset fixed at 5 words, no options).
    pub fn to_bytes(&self) -> [u8; TCP_HEADER_LEN] {
        let mut out = [0u8; TCP_HEADER_LEN];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = 5 << 4;
        out[13] = self.flags.to_byte();
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = TcpHeader::new(49152, 5001, 0xdead_beef, 0x1234_5678, TcpFlags::ACK, 65535);
        assert_eq!(TcpHeader::parse(&hdr.to_bytes()).unwrap(), hdr);
    }

    #[test]
    fn flags_roundtrip_all_combinations() {
        for bits in 0u8..32 {
            let flags = TcpFlags::from_byte(bits);
            assert_eq!(flags.to_byte(), bits);
        }
    }

    #[test]
    fn parse_rejects_short_header() {
        assert!(TcpHeader::parse(&[0; 19]).is_err());
    }

    #[test]
    fn parse_rejects_bad_data_offset() {
        let mut bytes = TcpHeader::new(1, 2, 3, 4, TcpFlags::SYN, 10).to_bytes();
        bytes[12] = 2 << 4;
        assert!(TcpHeader::parse(&bytes).is_err());
    }
}
