//! The UDP header (RFC 768).

use crate::checksum::ipv6_transport_checksum;
use crate::error::{ensure_len, Result};
use std::net::Ipv6Addr;

/// Length of the UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload, in bytes.
    pub length: u16,
    /// Transport checksum (0 when not yet computed).
    pub checksum: u16,
}

impl UdpHeader {
    /// Creates a header for a datagram carrying `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: u16) -> Self {
        UdpHeader { src_port, dst_port, length: payload_len + UDP_HEADER_LEN as u16, checksum: 0 }
    }

    /// Parses a UDP header from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        ensure_len(buf, UDP_HEADER_LEN)?;
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
            checksum: u16::from_be_bytes([buf[6], buf[7]]),
        })
    }

    /// Serialises the header.
    pub fn to_bytes(&self) -> [u8; UDP_HEADER_LEN] {
        let mut out = [0u8; UDP_HEADER_LEN];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.length.to_be_bytes());
        out[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        out
    }

    /// Builds a full UDP datagram (header + payload) with a valid checksum
    /// over the IPv6 pseudo-header.
    pub fn build_datagram(
        src: &Ipv6Addr,
        dst: &Ipv6Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Vec<u8> {
        let header = UdpHeader::new(src_port, dst_port, payload.len() as u16);
        let mut segment = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
        segment.extend_from_slice(&header.to_bytes());
        segment.extend_from_slice(payload);
        let csum = ipv6_transport_checksum(src, dst, crate::ipv6::proto::UDP, &segment);
        segment[6..8].copy_from_slice(&csum.to_be_bytes());
        segment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::verify_ipv6_transport_checksum;

    #[test]
    fn roundtrip() {
        let hdr = UdpHeader { src_port: 4242, dst_port: 53, length: 120, checksum: 0xabcd };
        assert_eq!(UdpHeader::parse(&hdr.to_bytes()).unwrap(), hdr);
    }

    #[test]
    fn new_accounts_for_header_length() {
        let hdr = UdpHeader::new(1, 2, 100);
        assert_eq!(hdr.length, 108);
    }

    #[test]
    fn parse_rejects_short_buffer() {
        assert!(UdpHeader::parse(&[0; 7]).is_err());
    }

    #[test]
    fn build_datagram_has_valid_checksum() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let dgram = UdpHeader::build_datagram(&src, &dst, 5000, 6000, &[1, 2, 3, 4, 5]);
        assert_eq!(dgram.len(), UDP_HEADER_LEN + 5);
        assert!(verify_ipv6_transport_checksum(&src, &dst, crate::ipv6::proto::UDP, &dgram));
    }
}
