//! User-space daemons accompanying the network functions.
//!
//! The paper pairs each in-kernel program with a small user-space component:
//! a Python/bcc daemon that forwards delay reports to a controller (§4.1,
//! 100 SLOC), a daemon on the aggregation box that measures the two-way
//! delay of each hybrid link and compensates the difference with `tc netem`
//! (§4.2), and a modified traceroute that consumes the `End.OAMP` reports
//! (§4.3). These are their Rust equivalents; they consume the same
//! perf-event ring buffers the programs write to.

use crate::events::{DelayEvent, OamEvent};
use ebpf_vm::perf::PerfEventBuffer;
use std::collections::BTreeMap;
use std::net::Ipv6Addr;
use std::sync::Arc;

/// The delay-collector daemon of §4.1: drains the perf ring buffer fed by
/// `End.DM` and aggregates one-way-delay statistics per controller (the
/// paper's daemon forwards each report to the controller over UDP; here the
/// aggregation is local, which is equivalent for the experiments).
#[derive(Debug)]
pub struct DelayCollector {
    buffer: Arc<PerfEventBuffer>,
    reports: Vec<DelayEvent>,
    malformed: u64,
}

impl DelayCollector {
    /// Creates a collector reading from `buffer`.
    pub fn new(buffer: Arc<PerfEventBuffer>) -> Self {
        DelayCollector { buffer, reports: Vec::new(), malformed: 0 }
    }

    /// Drains every pending perf event, returning how many reports were
    /// parsed.
    pub fn poll(&mut self) -> usize {
        let mut parsed = 0;
        for event in self.buffer.drain() {
            match DelayEvent::parse(&event.data) {
                Some(report) => {
                    self.reports.push(report);
                    parsed += 1;
                }
                None => self.malformed += 1,
            }
        }
        parsed
    }

    /// All reports collected so far.
    pub fn reports(&self) -> &[DelayEvent] {
        &self.reports
    }

    /// Number of perf events that failed to parse.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Mean one-way delay over all collected reports, in nanoseconds.
    pub fn mean_owd_ns(&self) -> Option<u64> {
        if self.reports.is_empty() {
            return None;
        }
        let sum: u128 = self.reports.iter().map(|r| u128::from(r.one_way_delay_ns())).sum();
        Some((sum / self.reports.len() as u128) as u64)
    }

    /// Maximum one-way delay observed, in nanoseconds.
    pub fn max_owd_ns(&self) -> Option<u64> {
        self.reports.iter().map(DelayEvent::one_way_delay_ns).max()
    }
}

/// The delay-compensation logic of the hybrid-access use case (§4.2): given
/// the two-way delays measured on the two links, compute the extra one-way
/// delay to apply (with `tc netem`) on the *fastest* path so both paths have
/// comparable latency and per-packet load balancing stops reordering TCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayCompensation {
    /// Index (0 or 1) of the path the extra delay must be applied to.
    pub delay_path: usize,
    /// Extra one-way delay to apply, in nanoseconds.
    pub extra_delay_ns: u64,
}

/// Computes the compensation from the measured two-way delays of both paths.
pub fn compute_compensation(twd_path0_ns: u64, twd_path1_ns: u64) -> DelayCompensation {
    if twd_path0_ns >= twd_path1_ns {
        DelayCompensation { delay_path: 1, extra_delay_ns: (twd_path0_ns - twd_path1_ns) / 2 }
    } else {
        DelayCompensation { delay_path: 0, extra_delay_ns: (twd_path1_ns - twd_path0_ns) / 2 }
    }
}

/// One hop of an [`EcmpTraceroute`] result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracerouteHop {
    /// Hop index (1-based, as traceroute prints it).
    pub ttl: u8,
    /// Address of the reporting hop, when known.
    pub hop: Option<Ipv6Addr>,
    /// ECMP next hops reported by `End.OAMP`, empty when the hop fell back
    /// to the legacy ICMP mechanism.
    pub ecmp_nexthops: Vec<Ipv6Addr>,
    /// Whether the information came from `End.OAMP` (`true`) or from the
    /// ICMP fallback (`false`).
    pub via_oamp: bool,
}

/// The multipath-aware traceroute client of §4.3: it accumulates `End.OAMP`
/// reports (drained from the hops' perf buffers by the experiment harness)
/// and falls back to plain ICMP knowledge for hops that do not expose the
/// function.
#[derive(Debug, Default)]
pub struct EcmpTraceroute {
    hops: BTreeMap<u8, TracerouteHop>,
}

impl EcmpTraceroute {
    /// Creates an empty result set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an `End.OAMP` report for hop `ttl`.
    pub fn record_oamp(&mut self, ttl: u8, hop: Ipv6Addr, event: &OamEvent) {
        self.hops.insert(
            ttl,
            TracerouteHop { ttl, hop: Some(hop), ecmp_nexthops: event.nexthops.clone(), via_oamp: true },
        );
    }

    /// Records a legacy ICMP time-exceeded style answer for hop `ttl`.
    pub fn record_icmp(&mut self, ttl: u8, hop: Option<Ipv6Addr>) {
        self.hops.entry(ttl).or_insert(TracerouteHop {
            ttl,
            hop,
            ecmp_nexthops: Vec::new(),
            via_oamp: false,
        });
    }

    /// The hops discovered so far, in TTL order.
    pub fn hops(&self) -> Vec<&TracerouteHop> {
        self.hops.values().collect()
    }

    /// Renders the result like the paper's enhanced traceroute would.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for hop in self.hops.values() {
            let name = hop.hop.map(|a| a.to_string()).unwrap_or_else(|| "*".to_string());
            if hop.via_oamp {
                let nexthops: Vec<String> = hop.ecmp_nexthops.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!("{:2}  {}  [OAMP ecmp: {}]\n", hop.ttl, name, nexthops.join(", ")));
            } else {
                out.push_str(&format!("{:2}  {}  [icmp]\n", hop.ttl, name));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf_vm::perf::PerfEvent;

    #[test]
    fn delay_collector_aggregates_reports() {
        let buffer = Arc::new(PerfEventBuffer::new(16));
        let event = DelayEvent {
            tx_timestamp_ns: 100,
            rx_timestamp_ns: 400,
            controller: "2001:db8::c0".parse().unwrap(),
            controller_port: 9,
        };
        buffer.push(PerfEvent { cpu: 0, data: event.to_bytes().to_vec() });
        let slow = DelayEvent { rx_timestamp_ns: 1_100, ..event };
        buffer.push(PerfEvent { cpu: 0, data: slow.to_bytes().to_vec() });
        buffer.push(PerfEvent { cpu: 0, data: vec![1, 2, 3] });
        let mut collector = DelayCollector::new(buffer);
        assert_eq!(collector.poll(), 2);
        assert_eq!(collector.reports().len(), 2);
        assert_eq!(collector.malformed(), 1);
        assert_eq!(collector.mean_owd_ns(), Some((300 + 1_000) / 2));
        assert_eq!(collector.max_owd_ns(), Some(1_000));
        // Nothing left to poll.
        assert_eq!(collector.poll(), 0);
    }

    #[test]
    fn empty_collector_has_no_statistics() {
        let collector = DelayCollector::new(Arc::new(PerfEventBuffer::new(4)));
        assert_eq!(collector.mean_owd_ns(), None);
        assert_eq!(collector.max_owd_ns(), None);
    }

    #[test]
    fn compensation_targets_the_faster_path() {
        // Path 0 has a 60 ms RTT, path 1 a 10 ms RTT: delay path 1 by 25 ms.
        let comp = compute_compensation(60_000_000, 10_000_000);
        assert_eq!(comp, DelayCompensation { delay_path: 1, extra_delay_ns: 25_000_000 });
        let comp = compute_compensation(10_000_000, 60_000_000);
        assert_eq!(comp, DelayCompensation { delay_path: 0, extra_delay_ns: 25_000_000 });
        assert_eq!(compute_compensation(5, 5).extra_delay_ns, 0);
    }

    #[test]
    fn traceroute_records_and_renders_hops() {
        let mut tr = EcmpTraceroute::new();
        let event = OamEvent {
            queried_dst: "2001:db8::9".parse().unwrap(),
            reply_to: "2001:db8::50".parse().unwrap(),
            reply_port: 33434,
            nexthops: vec!["fe80::1".parse().unwrap(), "fe80::2".parse().unwrap()],
        };
        tr.record_oamp(2, "fc00::21".parse().unwrap(), &event);
        tr.record_icmp(1, Some("fc00::11".parse().unwrap()));
        tr.record_icmp(3, None);
        let hops = tr.hops();
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[0].ttl, 1);
        assert!(!hops[0].via_oamp);
        assert!(hops[1].via_oamp);
        assert_eq!(hops[1].ecmp_nexthops.len(), 2);
        let rendered = tr.render();
        assert!(rendered.contains("OAMP"));
        assert!(rendered.contains("fe80::1"));
        assert!(rendered.contains('*'));
    }
}
