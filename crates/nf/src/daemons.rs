//! User-space daemons accompanying the network functions.
//!
//! The paper pairs each in-kernel program with a small user-space component:
//! a Python/bcc daemon that forwards delay reports to a controller (§4.1,
//! 100 SLOC), a daemon on the aggregation box that measures the two-way
//! delay of each hybrid link and compensates the difference with `tc netem`
//! (§4.2), and a modified traceroute that consumes the `End.OAMP` reports
//! (§4.3). These are their Rust equivalents; they consume the same
//! perf-event ring buffers the programs write to.

use crate::events::{DelayEvent, OamEvent};
use ebpf_vm::perf::{PerfEvent, PerfEventBuffer};
use parking_lot::Mutex;
use seg6_runtime::BatchDrain;
use std::collections::BTreeMap;
use std::net::Ipv6Addr;
use std::sync::Arc;

/// The delay-collector daemon of §4.1: drains the perf ring buffer fed by
/// `End.DM` and aggregates one-way-delay statistics per controller (the
/// paper's daemon forwards each report to the controller over UDP; here the
/// aggregation is local, which is equivalent for the experiments).
#[derive(Debug)]
pub struct DelayCollector {
    buffer: Arc<PerfEventBuffer>,
    reports: Vec<DelayEvent>,
    malformed: u64,
    scratch: Vec<PerfEvent>,
}

impl DelayCollector {
    /// Creates a collector reading from `buffer`.
    pub fn new(buffer: Arc<PerfEventBuffer>) -> Self {
        DelayCollector { buffer, reports: Vec::new(), malformed: 0, scratch: Vec::new() }
    }

    /// Drains every pending perf event (all rings), returning how many
    /// reports were parsed.
    pub fn poll(&mut self) -> usize {
        let events = self.buffer.drain();
        self.ingest(events)
    }

    /// Drains only logical CPU `cpu`'s ring — the per-worker flavour a
    /// shard's drain daemon calls after each batch. The internal scratch
    /// buffer is reused, so the steady state allocates nothing.
    pub fn poll_cpu(&mut self, cpu: u32) -> usize {
        let mut events = std::mem::take(&mut self.scratch);
        self.buffer.take_cpu(cpu, &mut events);
        let parsed = self.ingest(events.drain(..));
        self.scratch = events;
        parsed
    }

    fn ingest(&mut self, events: impl IntoIterator<Item = PerfEvent>) -> usize {
        let mut parsed = 0;
        for event in events {
            match DelayEvent::parse(&event.data) {
                Some(report) => {
                    self.reports.push(report);
                    parsed += 1;
                }
                None => self.malformed += 1,
            }
        }
        parsed
    }

    /// Builds the worker-pool drain daemon for `collector`: attached to a
    /// shard via `ShardSetup::with_drain`, it runs on the worker after
    /// every processed batch and pulls that shard's per-CPU perf ring into
    /// the shared collector. Every shard of a pool gets its own daemon
    /// instance draining only its own ring, so daemons never contend on
    /// ring locks — only briefly on the collector when a batch actually
    /// produced events.
    pub fn shard_drain(collector: Arc<Mutex<DelayCollector>>) -> BatchDrain {
        Box::new(move |cpu| {
            collector.lock().poll_cpu(cpu);
        })
    }

    /// All reports collected so far.
    pub fn reports(&self) -> &[DelayEvent] {
        &self.reports
    }

    /// Number of perf events that failed to parse.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Mean one-way delay over all collected reports, in nanoseconds.
    pub fn mean_owd_ns(&self) -> Option<u64> {
        if self.reports.is_empty() {
            return None;
        }
        let sum: u128 = self.reports.iter().map(|r| u128::from(r.one_way_delay_ns())).sum();
        Some((sum / self.reports.len() as u128) as u64)
    }

    /// Maximum one-way delay observed, in nanoseconds.
    pub fn max_owd_ns(&self) -> Option<u64> {
        self.reports.iter().map(DelayEvent::one_way_delay_ns).max()
    }
}

/// The delay-compensation logic of the hybrid-access use case (§4.2): given
/// the two-way delays measured on the two links, compute the extra one-way
/// delay to apply (with `tc netem`) on the *fastest* path so both paths have
/// comparable latency and per-packet load balancing stops reordering TCP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayCompensation {
    /// Index (0 or 1) of the path the extra delay must be applied to.
    pub delay_path: usize,
    /// Extra one-way delay to apply, in nanoseconds.
    pub extra_delay_ns: u64,
}

/// Computes the compensation from the measured two-way delays of both paths.
pub fn compute_compensation(twd_path0_ns: u64, twd_path1_ns: u64) -> DelayCompensation {
    if twd_path0_ns >= twd_path1_ns {
        DelayCompensation { delay_path: 1, extra_delay_ns: (twd_path0_ns - twd_path1_ns) / 2 }
    } else {
        DelayCompensation { delay_path: 0, extra_delay_ns: (twd_path1_ns - twd_path0_ns) / 2 }
    }
}

/// One hop of an [`EcmpTraceroute`] result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracerouteHop {
    /// Hop index (1-based, as traceroute prints it).
    pub ttl: u8,
    /// Address of the reporting hop, when known.
    pub hop: Option<Ipv6Addr>,
    /// ECMP next hops reported by `End.OAMP`, empty when the hop fell back
    /// to the legacy ICMP mechanism.
    pub ecmp_nexthops: Vec<Ipv6Addr>,
    /// Whether the information came from `End.OAMP` (`true`) or from the
    /// ICMP fallback (`false`).
    pub via_oamp: bool,
}

/// The multipath-aware traceroute client of §4.3: it accumulates `End.OAMP`
/// reports (drained from the hops' perf buffers by the experiment harness)
/// and falls back to plain ICMP knowledge for hops that do not expose the
/// function.
#[derive(Debug, Default)]
pub struct EcmpTraceroute {
    hops: BTreeMap<u8, TracerouteHop>,
}

impl EcmpTraceroute {
    /// Creates an empty result set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an `End.OAMP` report for hop `ttl`.
    pub fn record_oamp(&mut self, ttl: u8, hop: Ipv6Addr, event: &OamEvent) {
        self.hops.insert(
            ttl,
            TracerouteHop { ttl, hop: Some(hop), ecmp_nexthops: event.nexthops.clone(), via_oamp: true },
        );
    }

    /// Records a legacy ICMP time-exceeded style answer for hop `ttl`.
    pub fn record_icmp(&mut self, ttl: u8, hop: Option<Ipv6Addr>) {
        self.hops.entry(ttl).or_insert(TracerouteHop {
            ttl,
            hop,
            ecmp_nexthops: Vec::new(),
            via_oamp: false,
        });
    }

    /// The hops discovered so far, in TTL order.
    pub fn hops(&self) -> Vec<&TracerouteHop> {
        self.hops.values().collect()
    }

    /// Renders the result like the paper's enhanced traceroute would.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for hop in self.hops.values() {
            let name = hop.hop.map(|a| a.to_string()).unwrap_or_else(|| "*".to_string());
            if hop.via_oamp {
                let nexthops: Vec<String> = hop.ecmp_nexthops.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!("{:2}  {}  [OAMP ecmp: {}]\n", hop.ttl, name, nexthops.join(", ")));
            } else {
                out.push_str(&format!("{:2}  {}  [icmp]\n", hop.ttl, name));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf_vm::perf::PerfEvent;

    #[test]
    fn delay_collector_aggregates_reports() {
        let buffer = Arc::new(PerfEventBuffer::new(16));
        let event = DelayEvent {
            tx_timestamp_ns: 100,
            rx_timestamp_ns: 400,
            controller: "2001:db8::c0".parse().unwrap(),
            controller_port: 9,
        };
        buffer.push(PerfEvent { cpu: 0, data: event.to_bytes().to_vec() });
        let slow = DelayEvent { rx_timestamp_ns: 1_100, ..event };
        buffer.push(PerfEvent { cpu: 0, data: slow.to_bytes().to_vec() });
        buffer.push(PerfEvent { cpu: 0, data: vec![1, 2, 3] });
        let mut collector = DelayCollector::new(buffer);
        assert_eq!(collector.poll(), 2);
        assert_eq!(collector.reports().len(), 2);
        assert_eq!(collector.malformed(), 1);
        assert_eq!(collector.mean_owd_ns(), Some((300 + 1_000) / 2));
        assert_eq!(collector.max_owd_ns(), Some(1_000));
        // Nothing left to poll.
        assert_eq!(collector.poll(), 0);
    }

    #[test]
    fn poll_cpu_drains_only_that_ring() {
        let buffer = Arc::new(PerfEventBuffer::with_rings(16, 2));
        let event = DelayEvent {
            tx_timestamp_ns: 1,
            rx_timestamp_ns: 2,
            controller: "2001:db8::c0".parse().unwrap(),
            controller_port: 9,
        };
        buffer.push(PerfEvent { cpu: 0, data: event.to_bytes().to_vec() });
        buffer.push(PerfEvent { cpu: 1, data: event.to_bytes().to_vec() });
        let mut collector = DelayCollector::new(Arc::clone(&buffer));
        assert_eq!(collector.poll_cpu(1), 1);
        assert_eq!(buffer.len_cpu(0), 1, "cpu 0's ring is untouched");
        assert_eq!(collector.poll_cpu(0), 1);
        assert_eq!(collector.reports().len(), 2);
        assert_eq!(collector.poll_cpu(0), 0);
    }

    /// Satellite coverage for §4.1 under multi-worker load: `End.DM`
    /// probes spread over a pool's shards, every report emitted with
    /// `BPF_F_CURRENT_CPU`, per-shard `DelayCollector` drain daemons
    /// flushing after each batch — all reports collected exactly once,
    /// including those of the final partial batches drained at shutdown.
    #[test]
    fn pool_delay_daemons_collect_every_report_once() {
        use crate::progs::{end_dm_program, owd_encap_program, OwdEncapConfig};
        use ebpf_vm::maps::PerfEventArray;
        use ebpf_vm::program::load;
        use ebpf_vm::{Map, MapHandle};
        use netpkt::packet::build_ipv6_udp_packet;
        use netpkt::PacketBuf;
        use seg6_core::{LwtBpfAttachment, LwtHook, Nexthop, Seg6Datapath, Seg6LocalAction, Skb};
        use seg6_runtime::{Ingress, PoolConfig, ShardSetup, WorkerPool};
        use std::collections::HashMap;

        const WORKERS: u32 = 4;
        const PROBES: u32 = 203; // not a batch multiple: exercises shutdown drain
        let addr = |s: &str| s.parse::<std::net::Ipv6Addr>().unwrap();
        let dm_sid = addr("fc00::d1");

        // Ingress router: encapsulate every downstream packet through the
        // DM SID, stamping the TX timestamp (sampling ratio 1).
        let mut ingress = Seg6Datapath::new(addr("fc00::a0"));
        ingress.add_route("::/0".parse().unwrap(), vec![Nexthop::via(addr("fe80::1"), 1)]);
        let encap = load(
            owd_encap_program(OwdEncapConfig {
                dm_sid,
                controller: addr("2001:db8::c0"),
                controller_port: 9999,
                ratio: 1,
            }),
            &HashMap::new(),
            &ingress.helpers,
        )
        .unwrap();
        ingress.attach_lwt_bpf(
            "2001:db8:2::/48".parse().unwrap(),
            LwtBpfAttachment { hook: LwtHook::Xmit, prog: encap },
        );

        // Probe packets: unique TX timestamp per probe, many flows so RSS
        // spreads them over the shards.
        let probes: Vec<(u64, PacketBuf)> = (0..PROBES)
            .map(|i| {
                let mut skb = Skb::new(build_ipv6_udp_packet(
                    addr(&format!("2001:db8::{:x}", i + 1)),
                    addr("2001:db8:2::9"),
                    (1024 + i) as u16,
                    5001,
                    &[0u8; 16],
                    64,
                ));
                let tx_ns = u64::from(i) * 1_000;
                assert!(ingress.process(&mut skb, tx_ns).is_forward());
                (tx_ns, skb.packet)
            })
            .collect();

        // The DM router runs as a pool: each shard loads its own End.DM
        // program instance against the shared per-CPU perf array, with a
        // DelayCollector drain daemon attached.
        let perf = PerfEventArray::per_cpu(64, WORKERS);
        let ring = perf.perf_buffer().unwrap();
        let collector = Arc::new(Mutex::new(DelayCollector::new(Arc::clone(&ring))));
        let config = PoolConfig { workers: WORKERS, batch_size: 8, ..Default::default() };
        let mut pool = WorkerPool::new(config, |cpu| {
            let mut dp = Seg6Datapath::new(addr("fc00::1")).on_cpu(cpu);
            dp.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::via(addr("fe80::5"), 5)]);
            let mut maps: HashMap<u32, MapHandle> = HashMap::new();
            maps.insert(1, perf.clone());
            let prog = load(end_dm_program(1), &maps, &dp.helpers).unwrap();
            dp.add_local_sid(netpkt::Ipv6Prefix::host(dm_sid), Seg6LocalAction::EndBpf { prog });
            ShardSetup::new(dp).with_drain(DelayCollector::shard_drain(Arc::clone(&collector)))
        });

        // Every probe arrives 40 µs after it was stamped.
        for (tx_ns, packet) in probes {
            assert!(pool.enqueue_at(tx_ns + 40_000, packet));
        }
        let per_shard: Vec<u64> = pool.shard_stats().iter().map(|s| s.enqueued).collect();
        assert!(per_shard.iter().all(|&n| n > 0), "steering collapsed: {per_shard:?}");
        let totals = pool.shutdown();
        assert_eq!(totals.iter().map(|s| s.forwarded).sum::<u64>(), u64::from(PROBES));

        // The daemons drained everything on the workers: nothing stranded,
        // nothing dropped, nothing duplicated.
        assert!(ring.is_empty(), "reports stranded in a per-CPU ring");
        assert_eq!(ring.dropped(), 0);
        let collector = collector.lock();
        assert_eq!(collector.malformed(), 0);
        assert_eq!(collector.reports().len(), PROBES as usize);
        let mut tx_seen: Vec<u64> = collector.reports().iter().map(|r| r.tx_timestamp_ns).collect();
        tx_seen.sort_unstable();
        let expected: Vec<u64> = (0..u64::from(PROBES)).map(|i| i * 1_000).collect();
        assert_eq!(tx_seen, expected, "reports lost or duplicated");
        for report in collector.reports() {
            assert_eq!(report.one_way_delay_ns(), 40_000);
            assert_eq!(report.controller, addr("2001:db8::c0"));
        }
    }

    #[test]
    fn empty_collector_has_no_statistics() {
        let collector = DelayCollector::new(Arc::new(PerfEventBuffer::new(4)));
        assert_eq!(collector.mean_owd_ns(), None);
        assert_eq!(collector.max_owd_ns(), None);
    }

    #[test]
    fn compensation_targets_the_faster_path() {
        // Path 0 has a 60 ms RTT, path 1 a 10 ms RTT: delay path 1 by 25 ms.
        let comp = compute_compensation(60_000_000, 10_000_000);
        assert_eq!(comp, DelayCompensation { delay_path: 1, extra_delay_ns: 25_000_000 });
        let comp = compute_compensation(10_000_000, 60_000_000);
        assert_eq!(comp, DelayCompensation { delay_path: 0, extra_delay_ns: 25_000_000 });
        assert_eq!(compute_compensation(5, 5).extra_delay_ns, 0);
    }

    #[test]
    fn traceroute_records_and_renders_hops() {
        let mut tr = EcmpTraceroute::new();
        let event = OamEvent {
            queried_dst: "2001:db8::9".parse().unwrap(),
            reply_to: "2001:db8::50".parse().unwrap(),
            reply_port: 33434,
            nexthops: vec!["fe80::1".parse().unwrap(), "fe80::2".parse().unwrap()],
        };
        tr.record_oamp(2, "fc00::21".parse().unwrap(), &event);
        tr.record_icmp(1, Some("fc00::11".parse().unwrap()));
        tr.record_icmp(3, None);
        let hops = tr.hops();
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[0].ttl, 1);
        assert!(!hops[0].via_oamp);
        assert!(hops[1].via_oamp);
        assert_eq!(hops[1].ecmp_nexthops.len(), 2);
        let rendered = tr.render();
        assert!(rendered.contains("OAMP"));
        assert!(rendered.contains("fe80::1"));
        assert!(rendered.contains('*'));
    }
}
