//! Wire formats of the perf events the use-case programs push to user
//! space.
//!
//! The paper's `End.DM` function "sends both timestamps and the information
//! regarding the controller to a user space daemon using a perf event"
//! (§4.1); `End.OAMP` similarly reports the ECMP next hops it discovered
//! (§4.3). The structures below define those records so the eBPF programs
//! (which build them with store instructions) and the Rust daemons (which
//! parse them) agree on the layout.

use std::net::Ipv6Addr;

/// Size in bytes of a serialised [`DelayEvent`].
pub const DELAY_EVENT_SIZE: usize = 40;
/// Maximum number of next hops an [`OamEvent`] can carry.
pub const OAM_MAX_NEXTHOPS: usize = 4;
/// Size in bytes of a serialised [`OamEvent`].
pub const OAM_EVENT_SIZE: usize = 40 + OAM_MAX_NEXTHOPS * 16;

/// A delay measurement report (one per sampled probe packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayEvent {
    /// Transmission timestamp inserted by the ingress router, nanoseconds.
    pub tx_timestamp_ns: u64,
    /// Reception timestamp read by `End.DM`, nanoseconds.
    pub rx_timestamp_ns: u64,
    /// Controller that must receive the measurement.
    pub controller: Ipv6Addr,
    /// Controller UDP port.
    pub controller_port: u16,
}

impl DelayEvent {
    /// One-way delay in nanoseconds (saturating, in case of clock skew).
    pub fn one_way_delay_ns(&self) -> u64 {
        self.rx_timestamp_ns.saturating_sub(self.tx_timestamp_ns)
    }

    /// Serialises the event in the layout the `End.DM` program emits.
    pub fn to_bytes(&self) -> [u8; DELAY_EVENT_SIZE] {
        let mut out = [0u8; DELAY_EVENT_SIZE];
        out[0..8].copy_from_slice(&self.tx_timestamp_ns.to_le_bytes());
        out[8..16].copy_from_slice(&self.rx_timestamp_ns.to_le_bytes());
        out[16..32].copy_from_slice(&self.controller.octets());
        out[32..34].copy_from_slice(&self.controller_port.to_be_bytes());
        out
    }

    /// Parses an event emitted by the `End.DM` program.
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < DELAY_EVENT_SIZE {
            return None;
        }
        let mut addr = [0u8; 16];
        addr.copy_from_slice(&data[16..32]);
        Some(DelayEvent {
            tx_timestamp_ns: u64::from_le_bytes(data[0..8].try_into().ok()?),
            rx_timestamp_ns: u64::from_le_bytes(data[8..16].try_into().ok()?),
            controller: Ipv6Addr::from(addr),
            controller_port: u16::from_be_bytes([data[32], data[33]]),
        })
    }
}

/// An ECMP next-hop report emitted by `End.OAMP`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OamEvent {
    /// Destination whose next hops were queried.
    pub queried_dst: Ipv6Addr,
    /// Prober address the reply must be sent to.
    pub reply_to: Ipv6Addr,
    /// Prober UDP port.
    pub reply_port: u16,
    /// The ECMP next hops found in the FIB (up to [`OAM_MAX_NEXTHOPS`]).
    pub nexthops: Vec<Ipv6Addr>,
}

impl OamEvent {
    /// Serialises the event in the layout the `End.OAMP` program emits.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; OAM_EVENT_SIZE];
        out[0..16].copy_from_slice(&self.queried_dst.octets());
        out[16..32].copy_from_slice(&self.reply_to.octets());
        out[32..34].copy_from_slice(&self.reply_port.to_be_bytes());
        out[34] = self.nexthops.len().min(OAM_MAX_NEXTHOPS) as u8;
        for (i, nh) in self.nexthops.iter().take(OAM_MAX_NEXTHOPS).enumerate() {
            out[40 + i * 16..40 + (i + 1) * 16].copy_from_slice(&nh.octets());
        }
        out
    }

    /// Parses an event emitted by the `End.OAMP` program.
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < OAM_EVENT_SIZE {
            return None;
        }
        let addr = |off: usize| {
            let mut a = [0u8; 16];
            a.copy_from_slice(&data[off..off + 16]);
            Ipv6Addr::from(a)
        };
        let count = usize::from(data[34]).min(OAM_MAX_NEXTHOPS);
        let nexthops = (0..count).map(|i| addr(40 + i * 16)).collect();
        Some(OamEvent {
            queried_dst: addr(0),
            reply_to: addr(16),
            reply_port: u16::from_be_bytes([data[32], data[33]]),
            nexthops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_event_roundtrip() {
        let event = DelayEvent {
            tx_timestamp_ns: 1_000,
            rx_timestamp_ns: 4_500,
            controller: "2001:db8::c0".parse().unwrap(),
            controller_port: 9999,
        };
        let parsed = DelayEvent::parse(&event.to_bytes()).unwrap();
        assert_eq!(parsed, event);
        assert_eq!(parsed.one_way_delay_ns(), 3_500);
        assert!(DelayEvent::parse(&[0u8; 10]).is_none());
    }

    #[test]
    fn delay_is_saturating() {
        let event = DelayEvent {
            tx_timestamp_ns: 100,
            rx_timestamp_ns: 50,
            controller: Ipv6Addr::UNSPECIFIED,
            controller_port: 0,
        };
        assert_eq!(event.one_way_delay_ns(), 0);
    }

    #[test]
    fn oam_event_roundtrip() {
        let event = OamEvent {
            queried_dst: "2001:db8::1".parse().unwrap(),
            reply_to: "2001:db8::99".parse().unwrap(),
            reply_port: 33434,
            nexthops: vec!["fe80::1".parse().unwrap(), "fe80::2".parse().unwrap()],
        };
        let parsed = OamEvent::parse(&event.to_bytes()).unwrap();
        assert_eq!(parsed, event);
    }

    #[test]
    fn oam_event_truncates_to_max_nexthops() {
        let many: Vec<Ipv6Addr> = (0..6).map(|i| format!("fe80::{i}").parse().unwrap()).collect();
        let event = OamEvent {
            queried_dst: Ipv6Addr::UNSPECIFIED,
            reply_to: Ipv6Addr::UNSPECIFIED,
            reply_port: 0,
            nexthops: many,
        };
        let parsed = OamEvent::parse(&event.to_bytes()).unwrap();
        assert_eq!(parsed.nexthops.len(), OAM_MAX_NEXTHOPS);
    }
}
