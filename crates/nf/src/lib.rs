//! # srv6-nf — the paper's use-case network functions
//!
//! The point of the `End.BPF` hook is that operators can write their own
//! SRv6 network functions as eBPF programs. This crate contains the three
//! use cases of §4 (plus the Figure 2 microbenchmark programs), written as
//! real eBPF bytecode against the `ebpf-vm` instruction set and loaded
//! through the verifier with the SRv6 helper registry:
//!
//! * **Figure 2 programs** ([`progs::end_program`], [`progs::end_t_program`],
//!   [`progs::tag_increment_program`], [`progs::add_tlv_program`]);
//! * **Passive delay monitoring** (§4.1): [`progs::owd_encap_program`] on
//!   the ingress LWT hook and [`progs::end_dm_program`] as an `End.BPF`
//!   SID, with the [`daemons::DelayCollector`] user-space daemon;
//! * **Hybrid access networks** (§4.2): the [`progs::wrr_encap_program`]
//!   per-packet scheduler, its maps ([`progs::wrr_maps`]) and the
//!   delay-compensation logic ([`daemons::compute_compensation`]);
//! * **ECMP next-hop discovery** (§4.3): [`progs::end_oamp_program`], the
//!   custom [`oam`] helper it calls and the
//!   [`daemons::EcmpTraceroute`] client.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod daemons;
pub mod events;
pub mod oam;
pub mod progs;

pub use daemons::{compute_compensation, DelayCollector, DelayCompensation, EcmpTraceroute, TracerouteHop};
pub use events::{DelayEvent, OamEvent, DELAY_EVENT_SIZE, OAM_EVENT_SIZE, OAM_MAX_NEXTHOPS};
pub use oam::{helper_fib_ecmp_nexthops, oam_helper_registry, HELPER_FIB_ECMP_NEXTHOPS};
pub use progs::{
    add_tlv_program, end_dm_program, end_oamp_program, end_program, end_t_program, end_x_program,
    owd_encap_program, tag_increment_program, wrr_encap_program, wrr_maps, OwdEncapConfig, ADD_TLV_TYPE,
};
