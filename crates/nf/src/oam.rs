//! The custom kernel helper behind `End.OAMP` (§4.3).
//!
//! The paper notes that extending the helper set is easy: their ECMP
//! next-hop query helper "required only 50 SLOC in the kernel". This module
//! is the reproduction of that extension: a helper registered on top of the
//! standard SRv6 registry that looks a destination up in the FIB and
//! returns every equal-cost next hop.

use ebpf_vm::helpers::HelperRegistry;
use ebpf_vm::program::ProgramType;
use ebpf_vm::vm::HelperApi;
use seg6_core::Seg6Env;
use std::net::Ipv6Addr;

/// Helper id of `bpf_fib_ecmp_nexthops` (outside the upstream range, as a
/// local extension would be).
pub const HELPER_FIB_ECMP_NEXTHOPS: u32 = 100;

static SEG6LOCAL_ONLY: &[ProgramType] = &[ProgramType::LwtSeg6Local];

/// `long bpf_fib_ecmp_nexthops(dst, out, max)`
///
/// Reads a 16-byte IPv6 destination at `dst`, looks it up in the node's
/// main table and writes up to `max` equal-cost next-hop addresses (16
/// bytes each) at `out`. Returns the number written, or a negative value on
/// error.
pub fn helper_fib_ecmp_nexthops(api: &mut HelperApi<'_, '_>, args: [u64; 5]) -> i64 {
    let mut octets = [0u8; 16];
    if api.read_into(args[0], &mut octets).is_err() {
        return -1;
    }
    let dst = Ipv6Addr::from(octets);
    let max = (args[2] as usize).min(16);
    let Some(env) = api.env_any().downcast_mut::<Seg6Env>() else { return -1 };
    // At most 16 next hops of 16 bytes each: a stack buffer filled while
    // the FIB read lock is held — no allocation per call.
    let mut out = [0u8; 16 * 16];
    let written = env.tables.with_ecmp_nexthops(dst, |nexthops| {
        let mut written = 0usize;
        for nexthop in nexthops.iter().take(max) {
            // Report the gateway when there is one, the destination itself
            // for connected routes (what traceroute would display).
            out[written * 16..(written + 1) * 16].copy_from_slice(&nexthop.neighbour(dst).octets());
            written += 1;
        }
        written
    });
    if written > 0 && api.write_bytes(args[1], &out[..written * 16]).is_err() {
        return -1;
    }
    written as i64
}

/// Returns the SRv6 helper registry extended with the OAM helper, gated to
/// `End.BPF` programs like the other seg6local helpers.
pub fn oam_helper_registry() -> HelperRegistry {
    let mut registry = seg6_core::seg6_helper_registry();
    registry.register(
        HELPER_FIB_ECMP_NEXTHOPS,
        "bpf_fib_ecmp_nexthops",
        helper_fib_ecmp_nexthops,
        Some(SEG6LOCAL_ONLY),
    );
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebpf_vm::vm::{RunContext, RunState, STACK_BASE};
    use seg6_core::{Nexthop, RouterTables};
    use std::collections::HashMap;
    use std::sync::Arc;

    #[test]
    fn registry_contains_the_custom_helper() {
        let registry = oam_helper_registry();
        assert!(registry.get(HELPER_FIB_ECMP_NEXTHOPS).is_some());
        assert!(registry.allowed_for(HELPER_FIB_ECMP_NEXTHOPS, ProgramType::LwtSeg6Local));
        assert!(!registry.allowed_for(HELPER_FIB_ECMP_NEXTHOPS, ProgramType::LwtXmit));
    }

    #[test]
    fn helper_reports_ecmp_nexthops() {
        let tables = Arc::new(RouterTables::new());
        tables.insert_main(
            "2001:db8::/32".parse().unwrap(),
            vec![Nexthop::via("fe80::1".parse().unwrap(), 1), Nexthop::via("fe80::2".parse().unwrap(), 2)],
        );
        let mut env = Seg6Env::new("fc00::1".parse().unwrap(), tables, 0);
        let mut state = RunState::new(0);
        let mut ctx = vec![0u8; 64];
        let mut pkt = vec![0u8; 64];
        let maps = HashMap::new();
        let mut rc = RunContext { ctx: &mut ctx, packet: &mut pkt, env: &mut env };
        let mut api = HelperApi { state: &mut state, rc: &mut rc, maps: &maps };
        let dst: Ipv6Addr = "2001:db8::42".parse().unwrap();
        api.write_bytes(STACK_BASE, &dst.octets()).unwrap();
        let count = helper_fib_ecmp_nexthops(&mut api, [STACK_BASE, STACK_BASE + 32, 4, 0, 0]);
        assert_eq!(count, 2);
        let out = api.read_bytes(STACK_BASE + 32, 32).unwrap();
        assert_eq!(&out[0..16], &"fe80::1".parse::<Ipv6Addr>().unwrap().octets());
        assert_eq!(&out[16..32], &"fe80::2".parse::<Ipv6Addr>().unwrap().octets());
        // Unknown destinations report zero next hops.
        let other: Ipv6Addr = "3001::1".parse().unwrap();
        api.write_bytes(STACK_BASE, &other.octets()).unwrap();
        assert_eq!(helper_fib_ecmp_nexthops(&mut api, [STACK_BASE, STACK_BASE + 32, 4, 0, 0]), 0);
    }
}
