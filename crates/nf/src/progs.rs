//! The paper's use-case network functions, written as eBPF bytecode.
//!
//! Every function here builds a [`Program`] with the [`ProgramBuilder`],
//! loads nothing by itself (loading — i.e. verification — happens through
//! [`ebpf_vm::program::load`] with the SRv6 helper registry), and mirrors a
//! program the paper describes:
//!
//! | paper program | builder | SLOC in the paper |
//! |---|---|---|
//! | `End` in BPF (Figure 2) | [`end_program`] | 1 |
//! | `End.T` in BPF (Figure 2) | [`end_t_program`] | 4 |
//! | `Tag++` (Figure 2) | [`tag_increment_program`] | 50 |
//! | `Add TLV` (Figure 2) | [`add_tlv_program`] | 60 |
//! | OWD encapsulation (§4.1, Figure 3) | [`owd_encap_program`] | 130 |
//! | `End.DM` (§4.1, Figure 3) | [`end_dm_program`] | — |
//! | WRR hybrid-access scheduler (§4.2, Figure 4) | [`wrr_encap_program`] | 120 |
//! | `End.OAMP` (§4.3) | [`end_oamp_program`] | 60 |

use crate::oam::HELPER_FIB_ECMP_NEXTHOPS;
use ebpf_vm::builder::ProgramBuilder;
use ebpf_vm::helpers::ids;
use ebpf_vm::insn::{alu, jmp, AccessSize};
use ebpf_vm::maps::{ArrayMap, Map, MapHandle, UpdateFlags};
use ebpf_vm::program::{retcode, Program, ProgramType};
use netpkt::srh::SegmentRoutingHeader;
use seg6_core::action_codes;
use std::net::Ipv6Addr;

/// Register conventions shared by the programs below.
const R_CTX_SAVED: u8 = 9;
const R_DATA: u8 = 6;

/// Offset of the SRH inside the packets these endpoint programs see (the
/// fixed IPv6 header always precedes it).
const SRH_PKT_OFFSET: i16 = 40;

fn addr_halves(addr: Ipv6Addr) -> (u64, u64) {
    let octets = addr.octets();
    (
        u64::from_le_bytes(octets[0..8].try_into().unwrap()),
        u64::from_le_bytes(octets[8..16].try_into().unwrap()),
    )
}

/// The simplest `End.BPF` program: do nothing and let the datapath forward
/// to the next segment (the paper's 1-SLOC baseline in Figure 2).
pub fn end_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.ret(retcode::BPF_OK as i32);
    Program::new("nf_end", ProgramType::LwtSeg6Local, b.build().expect("static program"))
}

/// The BPF counterpart of `End.T`: ask `bpf_lwt_seg6_action` to look the new
/// destination up in `table`, then return `BPF_REDIRECT` (4 SLOC in the
/// paper).
pub fn end_t_program(table: u32) -> Program {
    let mut b = ProgramBuilder::new();
    // *(u32 *)(r10 - 8) = table; seg6_action(skb, END_T, &table, 4)
    b.store_imm(AccessSize::Word, 10, -8, table as i32);
    b.mov_imm(2, action_codes::END_T as i32);
    b.mov_reg(3, 10);
    b.add_imm(3, -8);
    b.mov_imm(4, 4);
    b.call(ids::LWT_SEG6_ACTION);
    b.jmp_imm(jmp::JNE, 0, 0, "drop");
    b.ret(retcode::BPF_REDIRECT as i32);
    b.label("drop");
    b.ret(retcode::BPF_DROP as i32);
    Program::new("nf_end_t", ProgramType::LwtSeg6Local, b.build().expect("static program"))
}

/// The BPF counterpart of `End.X`: ask `bpf_lwt_seg6_action` to
/// cross-connect to a specific layer-3 nexthop (`END_X` with the 16-byte
/// address parameter), then return `BPF_REDIRECT`.
pub fn end_x_program(nexthop: Ipv6Addr) -> Program {
    let (lo, hi) = addr_halves(nexthop);
    let mut b = ProgramBuilder::new();
    // Spill the nexthop to fp[-16..0]; seg6_action(skb, END_X, &nexthop, 16)
    b.load_imm64(6, lo);
    b.store_mem(AccessSize::Double, 10, 6, -16);
    b.load_imm64(6, hi);
    b.store_mem(AccessSize::Double, 10, 6, -8);
    b.mov_imm(2, action_codes::END_X as i32);
    b.mov_reg(3, 10);
    b.add_imm(3, -16);
    b.mov_imm(4, 16);
    b.call(ids::LWT_SEG6_ACTION);
    b.jmp_imm(jmp::JNE, 0, 0, "drop");
    b.ret(retcode::BPF_REDIRECT as i32);
    b.label("drop");
    b.ret(retcode::BPF_DROP as i32);
    Program::new("nf_end_x", ProgramType::LwtSeg6Local, b.build().expect("static program"))
}

/// `Tag++`: fetch the SRH tag, increment it and write it back through
/// `bpf_lwt_seg6_store_bytes` (the paper's 50-SLOC example).
pub fn tag_increment_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.mov_reg(R_CTX_SAVED, 1);
    b.load_mem(AccessSize::Double, R_DATA, 1, 0);
    // Read the 16-bit tag (network order) at SRH offset 6.
    b.load_mem(AccessSize::Half, 2, R_DATA, SRH_PKT_OFFSET + 6);
    b.to_be(2, 16);
    b.add_imm(2, 1);
    b.alu_imm(alu::AND, 2, 0xffff);
    b.to_be(2, 16);
    b.store_mem(AccessSize::Half, 10, 2, -8);
    // store_bytes(skb, offset = 6, from = r10-8, len = 2)
    b.mov_reg(1, R_CTX_SAVED);
    b.mov_imm(2, 6);
    b.mov_reg(3, 10);
    b.add_imm(3, -8);
    b.mov_imm(4, 2);
    b.call(ids::LWT_SEG6_STORE_BYTES);
    b.jmp_imm(jmp::JNE, 0, 0, "drop");
    b.ret(retcode::BPF_OK as i32);
    b.label("drop");
    b.ret(retcode::BPF_DROP as i32);
    Program::new("nf_tag_increment", ProgramType::LwtSeg6Local, b.build().expect("static program"))
}

/// TLV type written by [`add_tlv_program`].
pub const ADD_TLV_TYPE: u8 = 200;

/// `Add TLV`: grow the SRH by eight bytes with `bpf_lwt_seg6_adjust_srh`
/// and fill the new space with an 8-byte TLV through
/// `bpf_lwt_seg6_store_bytes` (the paper's 60-SLOC example).
pub fn add_tlv_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.mov_reg(R_CTX_SAVED, 1);
    b.load_mem(AccessSize::Double, R_DATA, 1, 0);
    // r7 = current SRH length = 8 + 8 * hdr_ext_len (append position).
    b.load_mem(AccessSize::Byte, 7, R_DATA, SRH_PKT_OFFSET + 1);
    b.alu_imm(alu::LSH, 7, 3);
    b.add_imm(7, 8);
    // adjust_srh(skb, offset = r7, delta = 8)
    b.mov_reg(1, R_CTX_SAVED);
    b.mov_reg(2, 7);
    b.mov_imm(3, 8);
    b.call(ids::LWT_SEG6_ADJUST_SRH);
    b.jmp_imm(jmp::JNE, 0, 0, "drop");
    // Stage the TLV bytes on the stack: type, len = 6, six bytes of payload.
    // r5 is free here (the upcoming call clobbers it anyway), and staying
    // within nine live registers keeps the program spill-free under the
    // native tier's register allocator.
    let tlv_bytes = [ADD_TLV_TYPE, 6, 0xab, 0xab, 0xab, 0xab, 0xab, 0xab];
    b.load_imm64(5, u64::from_le_bytes(tlv_bytes));
    b.store_mem(AccessSize::Double, 10, 5, -8);
    // store_bytes(skb, offset = r7, from = r10-8, len = 8)
    b.mov_reg(1, R_CTX_SAVED);
    b.mov_reg(2, 7);
    b.mov_reg(3, 10);
    b.add_imm(3, -8);
    b.mov_imm(4, 8);
    b.call(ids::LWT_SEG6_STORE_BYTES);
    b.jmp_imm(jmp::JNE, 0, 0, "drop");
    b.ret(retcode::BPF_OK as i32);
    b.label("drop");
    b.ret(retcode::BPF_DROP as i32);
    Program::new("nf_add_tlv", ProgramType::LwtSeg6Local, b.build().expect("static program"))
}

/// Parameters of the one-way-delay monitoring ingress program (§4.1).
#[derive(Debug, Clone, Copy)]
pub struct OwdEncapConfig {
    /// SID of the router running `End.DM` (the end of the monitored path).
    pub dm_sid: Ipv6Addr,
    /// Controller collecting the measurements.
    pub controller: Ipv6Addr,
    /// Controller UDP port.
    pub controller_port: u16,
    /// Probing ratio: one packet in `ratio` is encapsulated (1 = every
    /// packet, 100 = "1:100" in Figure 3).
    pub ratio: u32,
}

/// Total size of the SRH built by [`owd_encap_program`].
pub const OWD_SRH_LEN: usize = 72;
/// Offset of the DM TLV inside that SRH.
pub const OWD_DM_TLV_OFFSET: usize = 40;
/// Offset of the controller TLV inside that SRH.
pub const OWD_CTRL_TLV_OFFSET: usize = 50;

/// The transit (LWT-BPF) program of the delay-monitoring use case: for one
/// packet in `ratio`, encapsulate it with an SRH carrying a DM TLV (TX
/// timestamp) and a controller TLV, the last segment pointing at the
/// `End.DM` SID (130 SLOC in the paper).
pub fn owd_encap_program(config: OwdEncapConfig) -> Program {
    let mut b = ProgramBuilder::new();
    b.mov_reg(R_CTX_SAVED, 1);
    // Sampling: encapsulate only when prandom % ratio == 0.
    b.call(ids::GET_PRANDOM_U32);
    b.alu_imm(alu::MOD, 0, config.ratio.max(1) as i32);
    b.jmp_imm(jmp::JNE, 0, 0, "pass");
    b.load_mem(AccessSize::Double, R_DATA, R_CTX_SAVED, 0);
    // r8 = &srh[0] on the stack (72 bytes at r10-80).
    b.mov_reg(8, 10);
    b.add_imm(8, -80);
    // Fixed part: next_header = 41 (IPv6), hdr_ext_len = 8, routing type 4,
    // segments_left = 1, last_entry = 1, flags = 0, tag = 0.
    let header = u64::from_le_bytes([41, 8, 4, 1, 1, 0, 0, 0]);
    b.load_imm64(2, header);
    b.store_mem(AccessSize::Double, 8, 2, 0);
    // Segment[0] (wire order = final segment) = the packet's original
    // destination, copied from the IPv6 header.
    b.load_mem(AccessSize::Double, 2, R_DATA, 24);
    b.store_mem(AccessSize::Double, 8, 2, 8);
    b.load_mem(AccessSize::Double, 2, R_DATA, 32);
    b.store_mem(AccessSize::Double, 8, 2, 16);
    // Segment[1] (current segment) = the End.DM SID.
    let (sid_lo, sid_hi) = addr_halves(config.dm_sid);
    b.load_imm64(2, sid_lo);
    b.store_mem(AccessSize::Double, 8, 2, 24);
    b.load_imm64(2, sid_hi);
    b.store_mem(AccessSize::Double, 8, 2, 32);
    // DM TLV: type 124, length 8, then the TX timestamp in network order.
    b.store_imm(AccessSize::Half, 8, OWD_DM_TLV_OFFSET as i16, i32::from(u16::from_le_bytes([124, 8])));
    b.call(ids::KTIME_GET_NS);
    b.to_be(0, 64);
    b.store_mem(AccessSize::Double, 8, 0, (OWD_DM_TLV_OFFSET + 2) as i16);
    // Controller TLV: type 125, length 18, address and UDP port.
    b.store_imm(AccessSize::Half, 8, OWD_CTRL_TLV_OFFSET as i16, i32::from(u16::from_le_bytes([125, 18])));
    let (ctrl_lo, ctrl_hi) = addr_halves(config.controller);
    b.load_imm64(2, ctrl_lo);
    b.store_mem(AccessSize::Double, 8, 2, (OWD_CTRL_TLV_OFFSET + 2) as i16);
    b.load_imm64(2, ctrl_hi);
    b.store_mem(AccessSize::Double, 8, 2, (OWD_CTRL_TLV_OFFSET + 10) as i16);
    b.store_imm(
        AccessSize::Half,
        8,
        (OWD_CTRL_TLV_OFFSET + 18) as i16,
        i32::from(config.controller_port.swap_bytes()),
    );
    // PadN (type 4, length 0) to keep the SRH 8-byte aligned.
    b.store_imm(AccessSize::Half, 8, 70, i32::from(u16::from_le_bytes([4, 0])));
    // push_encap(skb, BPF_LWT_ENCAP_SEG6, &srh, 72)
    b.mov_reg(1, R_CTX_SAVED);
    b.mov_imm(2, seg6_core::encap_modes::SEG6 as i32);
    b.mov_reg(3, 8);
    b.mov_imm(4, OWD_SRH_LEN as i32);
    b.call(ids::LWT_PUSH_ENCAP);
    b.jmp_imm(jmp::JNE, 0, 0, "drop");
    b.label("pass");
    b.ret(retcode::BPF_OK as i32);
    b.label("drop");
    b.ret(retcode::BPF_DROP as i32);
    Program::new("nf_owd_encap", ProgramType::LwtXmit, b.build().expect("static program"))
}

/// The `End.DM` program (§4.1): read the TX timestamp from the DM TLV and
/// the controller address from its TLV, read the RX software timestamp from
/// the context, push everything to user space as a perf event, then
/// decapsulate with `End.DT6` and return `BPF_REDIRECT`.
///
/// `perf_fd` is the map file descriptor of the perf-event array the report
/// is pushed to. The packet layout is the one produced by
/// [`owd_encap_program`].
pub fn end_dm_program(perf_fd: u32) -> Program {
    // Offsets inside the received packet (outer IPv6 at 0, SRH at 40).
    let tlv_area = SRH_PKT_OFFSET + 8 + 32;
    let dm_value = tlv_area + 2;
    let ctrl_addr = tlv_area + 10 + 2;
    let ctrl_port = ctrl_addr + 16;
    let mut b = ProgramBuilder::new();
    b.mov_reg(R_CTX_SAVED, 1);
    b.load_mem(AccessSize::Double, R_DATA, 1, 0);
    // r7 = &event[0] (40 bytes at r10-48).
    b.mov_reg(7, 10);
    b.add_imm(7, -48);
    // event.tx_timestamp (convert from network order).
    b.load_mem(AccessSize::Double, 2, R_DATA, dm_value);
    b.to_be(2, 64);
    b.store_mem(AccessSize::Double, 7, 2, 0);
    // event.rx_timestamp from the context's tstamp field.
    b.load_mem(AccessSize::Double, 2, R_CTX_SAVED, seg6_core::ctx::offsets::TSTAMP);
    b.store_mem(AccessSize::Double, 7, 2, 8);
    // event.controller address + port (kept in network order).
    b.load_mem(AccessSize::Double, 2, R_DATA, ctrl_addr);
    b.store_mem(AccessSize::Double, 7, 2, 16);
    b.load_mem(AccessSize::Double, 2, R_DATA, ctrl_addr + 8);
    b.store_mem(AccessSize::Double, 7, 2, 24);
    b.load_mem(AccessSize::Half, 2, R_DATA, ctrl_port);
    b.store_mem(AccessSize::Half, 7, 2, 32);
    // perf_event_output(skb, perf_map, BPF_F_CURRENT_CPU, &event, 40):
    // report on the ring of the worker that saw the probe. The constant
    // must be the zero-extended 0xffffffff — the kernel rejects flags with
    // non-zero upper bits, so a sign-extended -1 would fail there.
    b.mov_reg(1, R_CTX_SAVED);
    b.load_map_fd(2, perf_fd);
    b.load_imm64(3, 0xffff_ffff);
    b.mov_reg(4, 7);
    b.mov_imm(5, crate::events::DELAY_EVENT_SIZE as i32);
    b.call(ids::PERF_EVENT_OUTPUT);
    // seg6_action(skb, END_DT6, &table(main), 4): decapsulate and route the
    // inner packet.
    b.store_imm(AccessSize::Word, 10, -56, 0);
    b.mov_reg(1, R_CTX_SAVED);
    b.mov_imm(2, action_codes::END_DT6 as i32);
    b.mov_reg(3, 10);
    b.add_imm(3, -56);
    b.mov_imm(4, 4);
    b.call(ids::LWT_SEG6_ACTION);
    b.jmp_imm(jmp::JNE, 0, 0, "drop");
    b.ret(retcode::BPF_REDIRECT as i32);
    b.label("drop");
    b.ret(retcode::BPF_DROP as i32);
    Program::new("nf_end_dm", ProgramType::LwtSeg6Local, b.build().expect("static program"))
}

/// Layout of the WRR scheduler's state map value (16 bytes):
/// `[current_path: u32, remaining_credit: u32, weight0: u32, weight1: u32]`.
pub const WRR_STATE_VALUE_SIZE: usize = 16;
/// Size of one SRH template stored in the WRR configuration map (a single
/// segment SRH: 8 + 16 bytes).
pub const WRR_TEMPLATE_SIZE: usize = 24;

/// Creates and populates the two maps the WRR scheduler uses: the state map
/// (weights + deficit counters) and the configuration map holding one SRH
/// template per path (the SID of the aggregation box / CPE reachable over
/// that path).
pub fn wrr_maps(weight0: u32, weight1: u32, sid0: Ipv6Addr, sid1: Ipv6Addr) -> (MapHandle, MapHandle) {
    let state = ArrayMap::new(WRR_STATE_VALUE_SIZE, 1);
    let mut value = Vec::with_capacity(WRR_STATE_VALUE_SIZE);
    value.extend_from_slice(&0u32.to_le_bytes());
    value.extend_from_slice(&weight0.max(1).to_le_bytes());
    value.extend_from_slice(&weight0.max(1).to_le_bytes());
    value.extend_from_slice(&weight1.max(1).to_le_bytes());
    state.update(&0u32.to_ne_bytes(), &value, UpdateFlags::Any).expect("state map sized for one entry");

    let config = ArrayMap::new(WRR_TEMPLATE_SIZE, 2);
    for (key, sid) in [(0u32, sid0), (1u32, sid1)] {
        let srh = SegmentRoutingHeader::new(netpkt::proto::IPV6, vec![sid], 0);
        let bytes = srh.to_bytes();
        assert_eq!(bytes.len(), WRR_TEMPLATE_SIZE);
        config
            .update(&key.to_ne_bytes(), &bytes, UpdateFlags::Any)
            .expect("config map sized for two entries");
    }
    (state, config)
}

/// The hybrid-access per-packet Weighted-Round-Robin scheduler (§4.2,
/// 120 SLOC in the paper): pick one of two paths according to the
/// configured weights (kept in the state map), then encapsulate the packet
/// towards the SID of that path with `bpf_lwt_push_encap`.
pub fn wrr_encap_program(state_fd: u32, config_fd: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.mov_reg(R_CTX_SAVED, 1);
    // state = bpf_map_lookup_elem(state_map, &0)
    b.store_imm(AccessSize::Word, 10, -4, 0);
    b.load_map_fd(1, state_fd);
    b.mov_reg(2, 10);
    b.add_imm(2, -4);
    b.call(ids::MAP_LOOKUP_ELEM);
    b.jmp_imm(jmp::JEQ, 0, 0, "pass");
    b.mov_reg(8, 0);
    // r2 = current path, r3 = remaining credit.
    b.load_mem(AccessSize::Word, 2, 8, 0);
    b.load_mem(AccessSize::Word, 3, 8, 4);
    b.jmp_imm(jmp::JNE, 3, 0, "have_credit");
    // Credit exhausted: switch path and reload its weight.
    b.alu_imm(alu::XOR, 2, 1);
    b.mov_reg(4, 2);
    b.alu_imm(alu::LSH, 4, 2);
    b.add_imm(4, 8);
    b.mov_reg(5, 8);
    b.alu_reg(alu::ADD, 5, 4);
    b.load_mem(AccessSize::Word, 3, 5, 0);
    b.label("have_credit");
    b.alu_imm(alu::SUB, 3, 1);
    b.store_mem(AccessSize::Word, 8, 2, 0);
    b.store_mem(AccessSize::Word, 8, 3, 4);
    // template = bpf_map_lookup_elem(config_map, &current_path)
    b.store_mem(AccessSize::Word, 10, 2, -8);
    b.load_map_fd(1, config_fd);
    b.mov_reg(2, 10);
    b.add_imm(2, -8);
    b.call(ids::MAP_LOOKUP_ELEM);
    b.jmp_imm(jmp::JEQ, 0, 0, "pass");
    b.mov_reg(7, 0);
    // push_encap(skb, BPF_LWT_ENCAP_SEG6, template, 24)
    b.mov_reg(1, R_CTX_SAVED);
    b.mov_imm(2, seg6_core::encap_modes::SEG6 as i32);
    b.mov_reg(3, 7);
    b.mov_imm(4, WRR_TEMPLATE_SIZE as i32);
    b.call(ids::LWT_PUSH_ENCAP);
    b.label("pass");
    b.ret(retcode::BPF_OK as i32);
    Program::new("nf_wrr_encap", ProgramType::LwtXmit, b.build().expect("static program"))
}

/// The `End.OAMP` program (§4.3, 60 SLOC in the paper): when a probe
/// carrying an OAM reply-to TLV hits the SID, query the ECMP next hops of
/// the probe's destination through the custom
/// [`crate::oam::helper_fib_ecmp_nexthops`] helper and push a report to
/// user space; the probe then continues towards its destination.
pub fn end_oamp_program(perf_fd: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.mov_reg(R_CTX_SAVED, 1);
    b.load_mem(AccessSize::Double, R_DATA, 1, 0);
    // r3 = offset of the TLV area: 40 + 8 + 16 * (last_entry + 1).
    b.load_mem(AccessSize::Byte, 3, R_DATA, SRH_PKT_OFFSET + 4);
    b.add_imm(3, 1);
    b.alu_imm(alu::LSH, 3, 4);
    b.add_imm(3, i32::from(SRH_PKT_OFFSET) + 8);
    // r4 = pointer to the first TLV.
    b.mov_reg(4, R_DATA);
    b.alu_reg(alu::ADD, 4, 3);
    b.load_mem(AccessSize::Byte, 5, 4, 0);
    b.jmp_imm(jmp::JNE, 5, i32::from(netpkt::srh::TLV_TYPE_OAM_REPLY_TO), "pass");
    // r7 = &event[0] (104 bytes at r10-104).
    b.mov_reg(7, 10);
    b.add_imm(7, -104);
    // event.queried_dst = the packet's destination after the SRH advance.
    b.load_mem(AccessSize::Double, 2, R_DATA, 24);
    b.store_mem(AccessSize::Double, 7, 2, 0);
    b.load_mem(AccessSize::Double, 2, R_DATA, 32);
    b.store_mem(AccessSize::Double, 7, 2, 8);
    // event.reply_to / reply_port, copied from the TLV.
    b.load_mem(AccessSize::Double, 2, 4, 2);
    b.store_mem(AccessSize::Double, 7, 2, 16);
    b.load_mem(AccessSize::Double, 2, 4, 10);
    b.store_mem(AccessSize::Double, 7, 2, 24);
    b.load_mem(AccessSize::Half, 2, 4, 18);
    b.store_mem(AccessSize::Half, 7, 2, 32);
    // count = bpf_fib_ecmp_nexthops(&event.queried_dst, &event.nexthops, 4)
    b.mov_reg(1, 7);
    b.mov_reg(2, 7);
    b.add_imm(2, 40);
    b.mov_imm(3, crate::events::OAM_MAX_NEXTHOPS as i32);
    b.call(HELPER_FIB_ECMP_NEXTHOPS);
    b.store_mem(AccessSize::Byte, 7, 0, 34);
    // perf_event_output(skb, perf_map, BPF_F_CURRENT_CPU, &event,
    // OAM_EVENT_SIZE) — zero-extended, as above.
    b.mov_reg(1, R_CTX_SAVED);
    b.load_map_fd(2, perf_fd);
    b.load_imm64(3, 0xffff_ffff);
    b.mov_reg(4, 7);
    b.mov_imm(5, crate::events::OAM_EVENT_SIZE as i32);
    b.call(ids::PERF_EVENT_OUTPUT);
    b.label("pass");
    b.ret(retcode::BPF_OK as i32);
    Program::new("nf_end_oamp", ProgramType::LwtSeg6Local, b.build().expect("static program"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{DelayEvent, OamEvent};
    use crate::oam::oam_helper_registry;
    use ebpf_vm::maps::PerfEventArray;
    use ebpf_vm::program::load;
    use netpkt::ipv6::proto;
    use netpkt::packet::{build_ipv6_udp_packet, build_srv6_udp_packet};
    use netpkt::srh::{SrhTlv, TlvKind};
    use netpkt::ParsedPacket;
    use seg6_core::seg6local::Seg6LocalAction;
    use seg6_core::{LwtBpfAttachment, LwtHook, Nexthop, Seg6Datapath, Skb, Verdict};
    use std::collections::HashMap;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    fn router() -> Seg6Datapath {
        let mut dp = Seg6Datapath::new(addr("fc00::11"));
        dp.add_route("fc00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::2"), 2)]);
        dp.add_route("2001:db8::/32".parse().unwrap(), vec![Nexthop::via(addr("fe80::3"), 3)]);
        dp
    }

    fn srv6_skb(path: &[&str]) -> Skb {
        let segments: Vec<Ipv6Addr> = path.iter().map(|s| addr(s)).collect();
        let srh = SegmentRoutingHeader::from_path(proto::UDP, &segments);
        Skb::new(build_srv6_udp_packet(addr("2001:db8::1"), &srh, 1000, 2000, &[0u8; 32], 64))
    }

    #[test]
    fn all_programs_pass_the_verifier() {
        let registry = oam_helper_registry();
        let perf: MapHandle = PerfEventArray::new(16);
        let mut maps = HashMap::new();
        maps.insert(1u32, perf);
        let (state, config) = wrr_maps(5, 3, addr("fd00::a1"), addr("fd00::a2"));
        maps.insert(2u32, state);
        maps.insert(3u32, config);
        for prog in [
            end_program(),
            end_t_program(254),
            end_x_program(addr("fe80::42")),
            tag_increment_program(),
            add_tlv_program(),
            owd_encap_program(OwdEncapConfig {
                dm_sid: addr("fc00::d1"),
                controller: addr("2001:db8::c0"),
                controller_port: 9999,
                ratio: 100,
            }),
            end_dm_program(1),
            wrr_encap_program(2, 3),
            end_oamp_program(1),
        ] {
            let name = prog.name.clone();
            load(prog, &maps, &registry).unwrap_or_else(|e| panic!("{name} rejected: {e}"));
        }
    }

    #[test]
    fn shipped_programs_compile_with_zero_spills_and_inline_the_hot_helpers() {
        if !ebpf_vm::codegen::supported() {
            return;
        }
        let registry = oam_helper_registry();
        let perf: MapHandle = PerfEventArray::new(16);
        let mut maps = HashMap::new();
        maps.insert(1u32, perf);
        let (state, config) = wrr_maps(5, 3, addr("fd00::a1"), addr("fd00::a2"));
        maps.insert(2u32, state);
        maps.insert(3u32, config);
        // `(program, minimum inlined-helper sites)`: `owd_encap` calls
        // `bpf_ktime_get_ns`, `wrr_encap` performs two array-map lookups
        // that must each get the cached fast path.
        let cases = [
            (end_program(), 0),
            (end_t_program(254), 0),
            (end_x_program(addr("fe80::42")), 0),
            (tag_increment_program(), 0),
            (add_tlv_program(), 0),
            (
                owd_encap_program(OwdEncapConfig {
                    dm_sid: addr("fc00::d1"),
                    controller: addr("2001:db8::c0"),
                    controller_port: 9999,
                    ratio: 100,
                }),
                1,
            ),
            (end_dm_program(1), 0),
            (wrr_encap_program(2, 3), 2),
            (end_oamp_program(1), 0),
        ];
        for (prog, min_inlined) in cases {
            let name = prog.name.clone();
            let loaded = load(prog, &maps, &registry).unwrap_or_else(|e| panic!("{name} rejected: {e}"));
            // Compile the register-allocating emitter explicitly so the
            // assertions hold even under `SEG6_NATIVE_REGALLOC=off`.
            let native = ebpf_vm::codegen::compile_with(
                loaded.fused().unwrap(),
                loaded.access_facts(),
                &loaded,
                ebpf_vm::codegen::NativeMode::RegAlloc,
            )
            .unwrap()
            .expect("native backend available");
            let debug = native.debug_info();
            assert!(debug.regalloc, "{name}: frame-only emitter selected");
            assert_eq!(
                debug.spills, 0,
                "{name} spilled under register allocation (homes {:?})",
                debug.assignments
            );
            assert!(
                debug.inlined_helpers >= min_inlined,
                "{name}: {} inlined helper sites, expected at least {min_inlined}",
                debug.inlined_helpers
            );
            let report = ebpf_vm::disasm::native_report(&name, debug);
            assert!(report.contains("spills=0"), "unexpected debug report: {report}");
        }
    }

    #[test]
    fn end_bpf_forwards_like_static_end() {
        let mut dp = router();
        let prog = load(end_program(), &HashMap::new(), &dp.helpers).unwrap();
        dp.add_local_sid("fc00::e1".parse().unwrap(), Seg6LocalAction::EndBpf { prog });
        let mut skb = srv6_skb(&["fc00::e1", "fc00::22"]);
        let verdict = dp.process(&mut skb, 0);
        assert_eq!(verdict, Verdict::Forward { oif: 2, neighbour: addr("fe80::2") });
    }

    #[test]
    fn end_t_bpf_uses_the_requested_table() {
        let mut dp = router();
        dp.add_route_in_table(100, "fc00::/16".parse().unwrap(), vec![Nexthop::via(addr("fe80::9"), 9)]);
        let prog = load(end_t_program(100), &HashMap::new(), &dp.helpers).unwrap();
        dp.add_local_sid("fc00::e2".parse().unwrap(), Seg6LocalAction::EndBpf { prog });
        let mut skb = srv6_skb(&["fc00::e2", "fc00::22"]);
        assert_eq!(dp.process(&mut skb, 0), Verdict::Forward { oif: 9, neighbour: addr("fe80::9") });
    }

    #[test]
    fn end_x_bpf_redirects_through_the_configured_nexthop() {
        for tier in ebpf_vm::ExecTier::ALL {
            let mut dp = router();
            // The override carries the nexthop only; the datapath finds
            // the interface by looking the nexthop itself up.
            dp.add_route("fe80::/10".parse().unwrap(), vec![Nexthop::direct(7)]);
            let prog = load(end_x_program(addr("fe80::42")), &HashMap::new(), &dp.helpers).unwrap();
            prog.set_exec_tier(tier);
            dp.add_local_sid("fc00::e3".parse().unwrap(), Seg6LocalAction::EndBpf { prog });
            let mut skb = srv6_skb(&["fc00::e3", "fc00::22"]);
            assert_eq!(
                dp.process(&mut skb, 0),
                Verdict::Forward { oif: 7, neighbour: addr("fe80::42") },
                "tier {tier:?}"
            );
        }
    }

    #[test]
    fn tag_increment_updates_the_srh_tag() {
        let mut dp = router();
        let prog = load(tag_increment_program(), &HashMap::new(), &dp.helpers).unwrap();
        dp.add_local_sid("fc00::e3".parse().unwrap(), Seg6LocalAction::EndBpf { prog: prog.clone() });
        for tier in ebpf_vm::ExecTier::ALL {
            prog.set_exec_tier(tier);
            let mut skb = srv6_skb(&["fc00::e3", "fc00::22"]);
            assert!(dp.process(&mut skb, 0).is_forward());
            let parsed = ParsedPacket::parse(skb.packet.data()).unwrap();
            assert_eq!(parsed.require_srh().unwrap().srh.tag, 1, "tier {}", tier.name());
        }
    }

    #[test]
    fn add_tlv_grows_the_srh() {
        let mut dp = router();
        let prog = load(add_tlv_program(), &HashMap::new(), &dp.helpers).unwrap();
        dp.add_local_sid("fc00::e4".parse().unwrap(), Seg6LocalAction::EndBpf { prog });
        let mut skb = srv6_skb(&["fc00::e4", "fc00::22"]);
        let before = skb.len();
        assert!(dp.process(&mut skb, 0).is_forward());
        assert_eq!(skb.len(), before + 8);
        let parsed = ParsedPacket::parse(skb.packet.data()).unwrap();
        let srh = &parsed.require_srh().unwrap().srh;
        assert!(srh.find_tlv(TlvKind::Opaque(ADD_TLV_TYPE)).is_some());
    }

    #[test]
    fn owd_encap_and_end_dm_round_trip() {
        // Ingress router: encapsulate every packet towards the DM SID.
        let mut ingress = Seg6Datapath::new(addr("fc00::a0"));
        ingress.add_route("::/0".parse().unwrap(), vec![Nexthop::via(addr("fe80::1"), 1)]);
        let encap = load(
            owd_encap_program(OwdEncapConfig {
                dm_sid: addr("fc00::d1"),
                controller: addr("2001:db8::c0"),
                controller_port: 9999,
                ratio: 1,
            }),
            &HashMap::new(),
            &ingress.helpers,
        )
        .unwrap();
        ingress.attach_lwt_bpf(
            "2001:db8:2::/48".parse().unwrap(),
            LwtBpfAttachment { hook: LwtHook::Xmit, prog: encap },
        );
        let mut skb =
            Skb::new(build_ipv6_udp_packet(addr("2001:db8::1"), addr("2001:db8:2::9"), 1, 2, &[0u8; 32], 64));
        assert!(ingress.process(&mut skb, 1_000).is_forward());
        let parsed = ParsedPacket::parse(skb.packet.data()).unwrap();
        assert_eq!(parsed.outer.dst, addr("fc00::d1"));
        let srh = &parsed.require_srh().unwrap().srh;
        assert_eq!(srh.segments_left, 1);
        match srh.find_tlv(TlvKind::DelayMeasurement) {
            Some(SrhTlv::DelayMeasurement { tx_timestamp_ns }) => assert_eq!(*tx_timestamp_ns, 1_000),
            other => panic!("missing DM TLV: {other:?}"),
        }
        match srh.find_tlv(TlvKind::Controller) {
            Some(SrhTlv::Controller { addr: a, port }) => {
                assert_eq!(*a, addr("2001:db8::c0"));
                assert_eq!(*port, 9999);
            }
            other => panic!("missing controller TLV: {other:?}"),
        }

        // End.DM router: decapsulate, emit the perf event, forward the inner
        // packet.
        let mut dm_router = Seg6Datapath::new(addr("fc00::d1"));
        dm_router.add_route("2001:db8:2::/48".parse().unwrap(), vec![Nexthop::via(addr("fe80::5"), 5)]);
        let perf = PerfEventArray::new(16);
        let perf_handle: MapHandle = perf.clone();
        let mut maps = HashMap::new();
        maps.insert(1u32, perf_handle);
        let dm_prog = load(end_dm_program(1), &maps, &dm_router.helpers).unwrap();
        dm_router.add_local_sid("fc00::d1".parse().unwrap(), Seg6LocalAction::EndBpf { prog: dm_prog });

        // The packet must first be advanced to the DM SID: simulate the
        // in-between forwarding by handing it straight to the DM router (the
        // outer destination is already the DM SID because it was the only
        // other segment).
        let mut skb = Skb { rx_timestamp_ns: 5_000, ..skb };
        let verdict = dm_router.process(&mut skb, 5_000);
        assert_eq!(verdict, Verdict::Forward { oif: 5, neighbour: addr("fe80::5") });
        // The packet was decapsulated back to the original one.
        let parsed = ParsedPacket::parse(skb.packet.data()).unwrap();
        assert!(parsed.srh.is_none());
        assert_eq!(parsed.outer.dst, addr("2001:db8:2::9"));
        // And the delay report reached the ring buffer.
        let event = perf.perf_buffer().unwrap().poll().expect("perf event");
        let report = DelayEvent::parse(&event.data).unwrap();
        assert_eq!(report.tx_timestamp_ns, 1_000);
        assert_eq!(report.rx_timestamp_ns, 5_000);
        assert_eq!(report.controller, addr("2001:db8::c0"));
        assert_eq!(report.controller_port, 9999);
        assert_eq!(report.one_way_delay_ns(), 4_000);
    }

    #[test]
    fn owd_encap_sampling_respects_the_ratio() {
        let mut ingress = Seg6Datapath::new(addr("fc00::a0"));
        ingress.add_route("::/0".parse().unwrap(), vec![Nexthop::via(addr("fe80::1"), 1)]);
        let encap = load(
            owd_encap_program(OwdEncapConfig {
                dm_sid: addr("fc00::d1"),
                controller: addr("2001:db8::c0"),
                controller_port: 9999,
                ratio: 10,
            }),
            &HashMap::new(),
            &ingress.helpers,
        )
        .unwrap();
        ingress.attach_lwt_bpf(
            "2001:db8:2::/48".parse().unwrap(),
            LwtBpfAttachment { hook: LwtHook::Xmit, prog: encap },
        );
        let mut encapsulated = 0;
        let total = 200;
        for i in 0..total {
            let mut skb = Skb::new(build_ipv6_udp_packet(
                addr("2001:db8::1"),
                addr("2001:db8:2::9"),
                1,
                2,
                &[0u8; 32],
                64,
            ));
            assert!(ingress.process(&mut skb, i).is_forward());
            if ParsedPacket::parse(skb.packet.data()).unwrap().srh.is_some() {
                encapsulated += 1;
            }
        }
        // Sampling is pseudo-random; with ratio 10 over 200 packets we
        // expect around 20 encapsulations, certainly not 0 or all.
        assert!(encapsulated > 3 && encapsulated < 60, "encapsulated {encapsulated}");
    }

    #[test]
    fn wrr_encap_balances_according_to_weights() {
        let mut cpe = Seg6Datapath::new(addr("fc00::c0"));
        cpe.add_route("::/0".parse().unwrap(), vec![Nexthop::via(addr("fe80::1"), 1)]);
        let (state, config) = wrr_maps(5, 3, addr("fd00::a1"), addr("fd00::a2"));
        let mut maps = HashMap::new();
        maps.insert(2u32, state);
        maps.insert(3u32, config);
        let prog = load(wrr_encap_program(2, 3), &maps, &cpe.helpers).unwrap();
        cpe.attach_lwt_bpf("2001:db8::/32".parse().unwrap(), LwtBpfAttachment { hook: LwtHook::Xmit, prog });
        let mut per_path = [0u32; 2];
        for _ in 0..160 {
            let mut skb =
                Skb::new(build_ipv6_udp_packet(addr("fc00::c0"), addr("2001:db8::9"), 1, 2, &[0u8; 64], 64));
            assert!(cpe.process(&mut skb, 0).is_forward());
            let parsed = ParsedPacket::parse(skb.packet.data()).unwrap();
            match parsed.outer.dst {
                d if d == addr("fd00::a1") => per_path[0] += 1,
                d if d == addr("fd00::a2") => per_path[1] += 1,
                other => panic!("unexpected outer destination {other}"),
            }
        }
        // Weights 5:3 over 160 packets → exactly 100 / 60.
        assert_eq!(per_path[0] + per_path[1], 160);
        assert_eq!(per_path[0], 100, "distribution {per_path:?}");
        assert_eq!(per_path[1], 60, "distribution {per_path:?}");
    }

    #[test]
    fn end_oamp_reports_ecmp_nexthops() {
        let mut hop = Seg6Datapath::new(addr("fc00::21"));
        hop.helpers = oam_helper_registry();
        hop.add_route(
            "2001:db8::/32".parse().unwrap(),
            vec![Nexthop::via(addr("fe80::1"), 1), Nexthop::via(addr("fe80::2"), 2)],
        );
        let perf = PerfEventArray::new(16);
        let perf_handle: MapHandle = perf.clone();
        let mut maps = HashMap::new();
        maps.insert(1u32, perf_handle);
        let prog = load(end_oamp_program(1), &maps, &hop.helpers).unwrap();
        hop.add_local_sid("fc00::21".parse().unwrap(), Seg6LocalAction::EndBpf { prog });

        // The prober sends an SRv6 probe whose first segment is this hop's
        // OAMP SID and whose final destination is the traceroute target,
        // with a reply-to TLV.
        let mut srh = SegmentRoutingHeader::from_path(proto::UDP, &[addr("fc00::21"), addr("2001:db8::99")]);
        srh.tlvs.push(SrhTlv::OamReplyTo { addr: addr("2001:db8::50"), port: 33434 });
        let pkt = build_srv6_udp_packet(addr("2001:db8::50"), &srh, 33434, 33434, &[0u8; 16], 64);
        let mut skb = Skb::new(pkt);
        let verdict = hop.process(&mut skb, 0);
        assert!(verdict.is_forward());
        let event = perf.perf_buffer().unwrap().poll().expect("perf event");
        let report = OamEvent::parse(&event.data).unwrap();
        assert_eq!(report.queried_dst, addr("2001:db8::99"));
        assert_eq!(report.reply_to, addr("2001:db8::50"));
        assert_eq!(report.reply_port, 33434);
        assert_eq!(report.nexthops, vec![addr("fe80::1"), addr("fe80::2")]);
    }

    #[test]
    fn end_oamp_ignores_probes_without_the_tlv() {
        let mut hop = Seg6Datapath::new(addr("fc00::21"));
        hop.helpers = oam_helper_registry();
        hop.add_route("2001:db8::/32".parse().unwrap(), vec![Nexthop::via(addr("fe80::1"), 1)]);
        let perf = PerfEventArray::new(16);
        let mut maps = HashMap::new();
        let perf_handle: MapHandle = perf.clone();
        maps.insert(1u32, perf_handle);
        let prog = load(end_oamp_program(1), &maps, &hop.helpers).unwrap();
        hop.add_local_sid("fc00::21".parse().unwrap(), Seg6LocalAction::EndBpf { prog });
        let mut skb = srv6_skb(&["fc00::21", "2001:db8::99"]);
        assert!(hop.process(&mut skb, 0).is_forward());
        assert!(perf.perf_buffer().unwrap().is_empty());
    }
}
