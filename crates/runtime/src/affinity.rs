//! CPU affinity and NUMA placement for shard threads.
//!
//! A shard thread that migrates between cores drags its cache footprint
//! (and, on multi-socket hosts, its memory locality) along with it. This
//! module gives the pool the two placement primitives real datapaths use:
//! `sched_setaffinity(2)` to pin each shard to one core, and the sysfs
//! NUMA topology (`/sys/devices/system/node/`) to report which node a
//! pinned core's first-touch allocations land on.
//!
//! The syscall FFI is libc-free in the repository's sense — `extern "C"`
//! declarations of the wrappers std already links, like srv6d's
//! `signal(2)` and `ebpf-vm::codegen`'s `mmap`. Non-Linux hosts compile
//! clean: pinning reports [`std::io::ErrorKind::Unsupported`] and the
//! topology probes return nothing, so callers need no `cfg` of their own.

use std::io;
use std::str::FromStr;

/// How the pool maps shard threads onto CPU cores.
///
/// Policies resolve against the *available* core list (the process
/// affinity mask, so container cpusets are respected) at spawn time via
/// [`PinPolicy::plan`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// No pinning: threads float wherever the scheduler puts them.
    #[default]
    None,
    /// Shard `i` → the `i`-th available core (wrapping): dense packing,
    /// shares caches, leaves the remaining cores free.
    Compact,
    /// Shards spread evenly across the available cores: shard `i` of `w`
    /// → core `i * cores / w` — maximises cache and memory-channel
    /// spacing on big hosts.
    Spread,
    /// An explicit core list: shard `i` → `cores[i % len]`.
    Explicit(Vec<u32>),
}

impl PinPolicy {
    /// Resolves the policy to one target core per shard, against the
    /// `cores` this process may run on. `None` entries mean "leave this
    /// shard unpinned" (always the case for [`PinPolicy::None`], and for
    /// every shard when the core list is empty).
    pub fn plan(&self, workers: u32, cores: &[u32]) -> Vec<Option<u32>> {
        let workers = workers.max(1) as usize;
        if cores.is_empty() {
            return vec![None; workers];
        }
        (0..workers)
            .map(|i| match self {
                PinPolicy::None => None,
                PinPolicy::Compact => Some(cores[i % cores.len()]),
                PinPolicy::Spread => Some(cores[(i * cores.len()) / workers % cores.len()]),
                PinPolicy::Explicit(list) => {
                    if list.is_empty() {
                        None
                    } else {
                        Some(list[i % list.len()])
                    }
                }
            })
            .collect()
    }
}

impl FromStr for PinPolicy {
    type Err = String;

    /// Parses `none`, `compact`, `spread`, or an explicit comma-separated
    /// core list like `0,2,4` — the grammar srv6d's `pin =` key uses.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "none" => Ok(PinPolicy::None),
            "compact" => Ok(PinPolicy::Compact),
            "spread" => Ok(PinPolicy::Spread),
            list => {
                let cores: Result<Vec<u32>, _> = list.split(',').map(|c| c.trim().parse::<u32>()).collect();
                match cores {
                    Ok(cores) if !cores.is_empty() => Ok(PinPolicy::Explicit(cores)),
                    _ => Err(format!(
                        "bad pin policy '{s}' (expected none/compact/spread or a core list like 0,2,4)"
                    )),
                }
            }
        }
    }
}

impl std::fmt::Display for PinPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinPolicy::None => f.write_str("none"),
            PinPolicy::Compact => f.write_str("compact"),
            PinPolicy::Spread => f.write_str("spread"),
            PinPolicy::Explicit(cores) => {
                for (i, c) in cores.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

/// Size of the affinity mask we exchange with the kernel: 1024 CPUs, the
/// kernel's own `CPU_SETSIZE`.
const MASK_WORDS: usize = 1024 / 64;

#[cfg(target_os = "linux")]
mod sys {
    use super::MASK_WORDS;
    use std::io;

    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
    }

    /// Pins the calling thread to `core` alone.
    pub fn pin_current_thread(core: u32) -> io::Result<()> {
        if core as usize >= MASK_WORDS * 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("core {core} beyond the {}-cpu mask", MASK_WORDS * 64),
            ));
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core as usize / 64] |= 1u64 << (core % 64);
        // SAFETY: the mask is a valid, initialised buffer of exactly
        // `cpusetsize` bytes; pid 0 targets the calling thread.
        let rc = unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// The cores the calling thread may run on, ascending.
    pub fn allowed_cores() -> Option<Vec<u32>> {
        let mut mask = [0u64; MASK_WORDS];
        // SAFETY: the mask buffer is writable for exactly `cpusetsize`
        // bytes; pid 0 targets the calling thread.
        let rc = unsafe { sched_getaffinity(0, MASK_WORDS * 8, mask.as_mut_ptr()) };
        if rc != 0 {
            return None;
        }
        let mut cores = Vec::new();
        for (w, word) in mask.iter().enumerate() {
            for b in 0..64 {
                if word & (1u64 << b) != 0 {
                    cores.push((w * 64 + b) as u32);
                }
            }
        }
        Some(cores)
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use std::io;

    pub fn pin_current_thread(_core: u32) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "thread pinning requires Linux"))
    }

    pub fn allowed_cores() -> Option<Vec<u32>> {
        None
    }
}

/// Pins the calling thread to `core` alone (`sched_setaffinity(2)` with a
/// one-bit mask). `Unsupported` off Linux; other errors mean the core
/// does not exist or the cpuset forbids it.
pub fn pin_current_thread(core: u32) -> io::Result<()> {
    sys::pin_current_thread(core)
}

/// The cores this thread is allowed to run on, ascending — the universe
/// pin policies resolve against. Falls back to `0..available_parallelism`
/// where the affinity mask cannot be read (non-Linux).
pub fn available_cores() -> Vec<u32> {
    if let Some(cores) = sys::allowed_cores() {
        if !cores.is_empty() {
            return cores;
        }
    }
    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    (0..n as u32).collect()
}

/// The NUMA node `cpu` belongs to, from sysfs
/// (`/sys/devices/system/node/node<k>/cpulist`). `None` when the topology
/// is not exposed (non-Linux, or a kernel without NUMA).
pub fn numa_node_of_cpu(cpu: u32) -> Option<u32> {
    numa_nodes().into_iter().find(|(_, cpus)| cpus.contains(&cpu)).map(|(node, _)| node)
}

/// The host's NUMA topology: each node id with its CPU list, ascending.
/// Empty when sysfs does not expose one.
pub fn numa_nodes() -> Vec<(u32, Vec<u32>)> {
    let mut nodes = Vec::new();
    let Ok(entries) = std::fs::read_dir("/sys/devices/system/node") else {
        return nodes;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(id) = name.to_str().and_then(|n| n.strip_prefix("node")) else {
            continue;
        };
        let Ok(id) = id.parse::<u32>() else {
            continue;
        };
        let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) else {
            continue;
        };
        nodes.push((id, parse_cpulist(&list)));
    }
    nodes.sort_by_key(|(id, _)| *id);
    nodes
}

/// Parses the kernel's cpulist format: `0-3,8,10-11`.
fn parse_cpulist(list: &str) -> Vec<u32> {
    let mut cpus = Vec::new();
    for part in list.trim().split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                if let (Ok(lo), Ok(hi)) = (lo.parse::<u32>(), hi.parse::<u32>()) {
                    cpus.extend(lo..=hi);
                }
            }
            None => {
                if let Ok(cpu) = part.parse::<u32>() {
                    cpus.push(cpu);
                }
            }
        }
    }
    cpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_parse_and_display() {
        assert_eq!("none".parse::<PinPolicy>().unwrap(), PinPolicy::None);
        assert_eq!("compact".parse::<PinPolicy>().unwrap(), PinPolicy::Compact);
        assert_eq!("spread".parse::<PinPolicy>().unwrap(), PinPolicy::Spread);
        assert_eq!(" 0, 2,4 ".parse::<PinPolicy>().unwrap(), PinPolicy::Explicit(vec![0, 2, 4]));
        assert!("fastest".parse::<PinPolicy>().is_err());
        assert!("".parse::<PinPolicy>().is_err());
        assert_eq!(PinPolicy::Explicit(vec![1, 3]).to_string(), "1,3");
        assert_eq!(PinPolicy::Spread.to_string(), "spread");
    }

    #[test]
    fn plans_map_shards_to_cores() {
        let cores = [0, 1, 2, 3, 4, 5, 6, 7];
        assert_eq!(PinPolicy::None.plan(4, &cores), vec![None; 4]);
        assert_eq!(PinPolicy::Compact.plan(3, &cores), vec![Some(0), Some(1), Some(2)]);
        // Spread spaces 2 shards half the core list apart.
        assert_eq!(PinPolicy::Spread.plan(2, &cores), vec![Some(0), Some(4)]);
        assert_eq!(PinPolicy::Spread.plan(4, &cores), vec![Some(0), Some(2), Some(4), Some(6)]);
        // Explicit lists wrap; oversubscription is the operator's call.
        assert_eq!(PinPolicy::Explicit(vec![6, 7]).plan(3, &cores), vec![Some(6), Some(7), Some(6)]);
        // Sparse affinity masks (cgroup cpusets) are respected, not
        // assumed contiguous.
        assert_eq!(PinPolicy::Compact.plan(2, &[3, 9]), vec![Some(3), Some(9)]);
        // No visible cores → nothing to pin to.
        assert_eq!(PinPolicy::Compact.plan(2, &[]), vec![None, None]);
    }

    #[test]
    fn cpulist_parser_handles_ranges() {
        assert_eq!(parse_cpulist("0-3,8,10-11\n"), vec![0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(parse_cpulist("0"), vec![0]);
        assert_eq!(parse_cpulist(""), Vec::<u32>::new());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_the_current_thread_works() {
        let cores = available_cores();
        assert!(!cores.is_empty());
        let core = cores[0];
        pin_current_thread(core).expect("pin to an allowed core");
        // The mask now contains exactly that core.
        assert_eq!(sys::allowed_cores().unwrap(), vec![core]);
        // Restore the original mask for whatever shares this thread.
        restore_mask(&cores);
        assert_eq!(sys::allowed_cores().unwrap(), cores);
        // An impossible core is an error, not a panic.
        assert!(pin_current_thread(100_000).is_err());
    }

    #[cfg(target_os = "linux")]
    fn restore_mask(cores: &[u32]) {
        #[allow(unsafe_code)]
        {
            extern "C" {
                fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
            }
            let mut mask = [0u64; MASK_WORDS];
            for &c in cores {
                mask[c as usize / 64] |= 1u64 << (c % 64);
            }
            // SAFETY: valid mask buffer of the declared size.
            let rc = unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) };
            assert_eq!(rc, 0);
        }
    }
}
